// fastiov_sim — the command-line front end to the simulator.
//
// Runs one concurrent-startup (or churn) experiment under any baseline and
// reports either a human-readable summary or machine-readable JSON; can
// also export the per-container timeline as a Chrome trace
// (chrome://tracing / https://ui.perfetto.dev).
//
// Examples:
//   fastiov_sim --stack=fastiov --concurrency=200
//   fastiov_sim --stack=vanilla --app=image --arrival=poisson --rate=40
//   fastiov_sim --stack=fastiov --waves=3 --json
//   fastiov_sim --stack=vanilla --trace=/tmp/startup.trace.json
#include <fstream>
#include <iostream>

#include "src/cli/flags.h"
#include "src/cluster/cluster.h"
#include "src/experiments/churn_experiment.h"
#include "src/experiments/multi_cell.h"
#include "src/experiments/result_json.h"
#include "src/experiments/startup_experiment.h"
#include "src/fault/fault.h"
#include "src/stats/blocked_time.h"
#include "src/stats/fault_stats.h"
#include "src/stats/lock_stats.h"
#include "src/stats/table.h"
#include "src/stats/json_writer.h"
#include "src/stats/trace_export.h"

using namespace fastiov;

namespace {

void WriteSummaryText(const ExperimentResult& r) {
  std::printf("stack %s, %d containers (%s arrivals), seed %lu\n\n", r.config.name.c_str(),
              r.options.concurrency, ArrivalPatternName(r.options.arrival),
              static_cast<unsigned long>(r.options.seed));
  TextTable table({"metric", "value"});
  table.AddRow({"startup mean", FormatSeconds(r.startup.Mean()) + " s"});
  table.AddRow({"startup p99", FormatSeconds(r.startup.Percentile(99)) + " s"});
  table.AddRow({"startup min/max", FormatSeconds(r.startup.Min()) + " / " +
                                       FormatSeconds(r.startup.Max()) + " s"});
  table.AddRow({"VF-related mean", FormatSeconds(r.vf_related.Mean()) + " s"});
  if (!r.task_completion.Empty()) {
    table.AddRow({"task completion mean", FormatSeconds(r.task_completion.Mean()) + " s"});
    table.AddRow(
        {"task completion p99", FormatSeconds(r.task_completion.Percentile(99)) + " s"});
  }
  table.AddRow({"residue reads", std::to_string(r.residue_reads)});
  table.AddRow({"corruptions", std::to_string(r.corruptions)});
  table.AddRow({"devset lock waits", std::to_string(r.devset_lock_contention)});
  table.AddRow({"pages zeroed", std::to_string(r.pages_zeroed)});
  if (r.fault_stats.has_value()) {
    table.AddRow({"aborted containers", std::to_string(r.aborted_containers)});
  }
  table.Print(std::cout);
  if (r.fault_stats.has_value()) {
    std::printf("\nfault injection:\n");
    PrintFaultStatsTable(*r.fault_stats, std::cout);
  }
  std::printf("\nstep shares of average startup:\n");
  for (const std::string& step : r.timeline.StepNames()) {
    std::printf("  %-12s %s\n", step.c_str(),
                FormatPercent(r.timeline.StepShareOfAverage(step)).c_str());
  }
  if (r.observability != nullptr) {
    std::printf("\ntop contended locks:\n");
    PrintLockReport(r.observability->lock_stats.ByTotalWait(), std::cout, /*max_rows=*/10);
    if (r.blocked_time.has_value()) {
      std::printf("\nblocked-time attribution (per phase, by cause):\n");
      PrintBlockedTimeReport(*r.blocked_time, std::cout);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("stack", "fastiov",
                  "baseline: vanilla|fastiov|fastiov-{L,A,S,D}|fastiov-vdpa|nonet|ipvtap|"
                  "unfixed|pre<pct>");
  flags.AddInt("concurrency", 200, "containers started concurrently");
  flags.AddInt("memory-mb", 512, "guest memory per container (MiB)");
  flags.AddDouble("vcpus", 0.5, "vCPU allocation per container");
  flags.AddString("app", "none", "serverless task: none|image|compression|scientific|inference");
  flags.AddInt("seed", 42, "simulation seed (runs are deterministic per seed)");
  flags.AddString("arrival", "burst", "arrival process: burst|uniform|poisson");
  flags.AddDouble("rate", 50.0, "arrival rate (containers/s) for uniform/poisson");
  flags.AddInt("waves", 1, "churn mode: start/run/terminate this many waves");
  flags.AddInt("cells", 1,
               "simulate this many independent hosts in one process (cell i "
               "uses seed+i); results are byte-identical at any --cell-threads");
  flags.AddInt("cell-threads", 1,
               "worker threads for multi-cell execution (0 = all cores)");
  flags.AddInt("lookahead-us", 0,
               "conservative lookahead in microseconds for multi-cell runs "
               "(0 = uncoupled cells, single window)");
  flags.AddBool("json", false, "emit machine-readable JSON instead of tables");
  flags.AddBool("metrics", false,
                "collect contention-aware observability: lock stats, blocked-time "
                "attribution, counter tracks (adds an 'observability' JSON section "
                "and enriches --trace; never perturbs the simulation)");
  flags.AddString("trace", "", "write a Chrome trace of the timeline to this file");
  flags.AddString("fault-plan", "",
                  "fault schedule 'site:p=0.1,kind=transient;site2:nth=3,...' "
                  "(sites: vfio-group vfio-dev dma-map dma-pin vf-bind vf-flr "
                  "link-up vdpa-attach kvm-memslot cni virtiofs guest-boot "
                  "ipam-alloc cni-assign registry-fetch)");
  flags.AddInt("fault-seed", 1, "seed for the fault injector's private RNG");
  flags.AddInt("cluster-hosts", 0,
               "cluster mode: simulate this many hosts plus a shared control-plane "
               "cell (IPAM pool, CNI service, image registry); launches come from a "
               "synthetic trace placed by --sched-policy");
  flags.AddString("sched-policy", "least-loaded",
                  "cluster scheduler policy: bin-pack|least-loaded|locality");
  flags.AddInt("cluster-trace", 1000, "cluster mode: launches in the synthetic trace");
  flags.AddDouble("cluster-rate", 1000.0,
                  "cluster mode: cluster-wide launch arrival rate (launches/s)");
  flags.AddInt("cluster-zones", 8, "cluster mode: locality zones in the trace");
  flags.AddInt("cluster-seed", -1,
               "cluster mode: seed for trace generation and the host simulations "
               "(-1 = use --seed); replaying a seed reproduces the run exactly");
  flags.AddInt("cluster-rtt-us", 200,
               "cluster mode: one-way host<->control-plane latency in microseconds "
               "(also the conservative lookahead)");
  flags.AddInt("cluster-dwell-ms", 2000,
               "cluster mode: container lifetime after ready, before stop (ms)");
  flags.AddString("cp-fault-plan", "",
                  "cluster mode: fault plan for the control-plane sites "
                  "(ipam-alloc cni-assign registry-fetch)");
  flags.AddBool("profile-driver", false,
                "cluster mode: collect the parallel driver's per-phase wall-time "
                "breakdown (deliver/execute/plan) in the exec stats");

  std::string error;
  if (!flags.Parse(argc, argv, &error)) {
    std::fprintf(stderr, "error: %s\n\n%s", error.c_str(),
                 flags.HelpText(argv[0]).c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::fputs(flags.HelpText(argv[0]).c_str(), stdout);
    return 0;
  }

  auto stack = StackConfig::FromName(flags.GetString("stack"));
  if (!stack.has_value()) {
    std::fprintf(stderr, "error: unknown stack '%s'\n", flags.GetString("stack").c_str());
    return 2;
  }
  stack->guest_memory_bytes = static_cast<uint64_t>(flags.GetInt("memory-mb")) * kMiB;
  stack->vcpus = flags.GetDouble("vcpus");

  std::optional<ServerlessApp> app;
  if (flags.GetString("app") != "none") {
    app = ServerlessApp::FromName(flags.GetString("app"));
    if (!app.has_value()) {
      std::fprintf(stderr, "error: unknown app '%s'\n", flags.GetString("app").c_str());
      return 2;
    }
  }

  if (flags.GetInt("cluster-hosts") > 0) {
    const std::optional<int64_t> lookahead_us =
        flags.GetInt("lookahead-us") > 0
            ? std::optional<int64_t>(flags.GetInt("lookahead-us"))
            : std::nullopt;
    if (auto cli_error = ValidateClusterCli(
            static_cast<int>(flags.GetInt("cluster-hosts")),
            static_cast<int>(flags.GetInt("cells")),
            static_cast<int>(flags.GetInt("waves")), !flags.GetString("trace").empty(),
            lookahead_us, flags.GetInt("cluster-rtt-us"))) {
      std::fprintf(stderr, "error: %s\n", cli_error->c_str());
      return 2;
    }
    auto policy = ClusterSchedPolicyFromName(flags.GetString("sched-policy"));
    if (!policy.has_value()) {
      std::fprintf(stderr,
                   "error: unknown --sched-policy '%s' "
                   "(bin-pack|least-loaded|locality)\n",
                   flags.GetString("sched-policy").c_str());
      return 2;
    }
    ClusterOptions cluster;
    cluster.hosts = static_cast<int>(flags.GetInt("cluster-hosts"));
    cluster.threads = static_cast<int>(flags.GetInt("cell-threads"));
    cluster.policy = *policy;
    cluster.trace.launches = static_cast<uint64_t>(flags.GetInt("cluster-trace"));
    cluster.trace.arrival_rate_per_s = flags.GetDouble("cluster-rate");
    cluster.trace.zones = static_cast<uint32_t>(flags.GetInt("cluster-zones"));
    cluster.seed = flags.GetInt("cluster-seed") >= 0
                       ? static_cast<uint64_t>(flags.GetInt("cluster-seed"))
                       : static_cast<uint64_t>(flags.GetInt("seed"));
    cluster.stack = *stack;
    cluster.app = app;
    cluster.rtt = Microseconds(flags.GetInt("cluster-rtt-us"));
    cluster.dwell = Milliseconds(flags.GetInt("cluster-dwell-ms"));
    cluster.collect_metrics = flags.GetBool("metrics");
    cluster.profile_driver = flags.GetBool("profile-driver");
    if (!flags.GetString("fault-plan").empty()) {
      std::string plan_error;
      auto plan = FaultPlan::Parse(flags.GetString("fault-plan"), &plan_error);
      if (!plan.has_value()) {
        std::fprintf(stderr, "error: bad --fault-plan: %s\n", plan_error.c_str());
        return 2;
      }
      plan->seed = static_cast<uint64_t>(flags.GetInt("fault-seed"));
      cluster.host_fault_plan = std::move(plan);
    }
    if (!flags.GetString("cp-fault-plan").empty()) {
      std::string plan_error;
      auto plan = FaultPlan::Parse(flags.GetString("cp-fault-plan"), &plan_error);
      if (!plan.has_value()) {
        std::fprintf(stderr, "error: bad --cp-fault-plan: %s\n", plan_error.c_str());
        return 2;
      }
      plan->seed = static_cast<uint64_t>(flags.GetInt("fault-seed")) + 1;
      cluster.control_plane_fault_plan = std::move(plan);
    }
    const ClusterResult r = RunClusterExperiment(cluster);
    if (flags.GetBool("json")) {
      WriteClusterResultJson(r, std::cout, /*include_exec=*/true);
      std::cout << '\n';
    } else {
      PrintClusterReport(r, std::cout);
    }
    return 0;
  }

  if (flags.GetInt("waves") > 1) {
    ChurnOptions options;
    options.waves = static_cast<int>(flags.GetInt("waves"));
    options.concurrency_per_wave = static_cast<int>(flags.GetInt("concurrency"));
    options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
    options.app = app;
    const ChurnResult r = RunChurnExperiment(*stack, options);
    if (flags.GetBool("json")) {
      JsonWriter json(std::cout);
      json.BeginObject();
      json.KV("stack", r.config.name);
      json.KV("waves", static_cast<int64_t>(options.waves));
      json.Key("wave_startup_mean_seconds");
      json.BeginArray();
      for (const Summary& w : r.wave_startup) {
        json.Value(w.Mean());
      }
      json.EndArray();
      json.KV("frames_reused", r.frames_reused);
      json.KV("residue_reads", r.residue_reads);
      json.KV("corruptions", r.corruptions);
      json.EndObject();
      std::cout << '\n';
    } else {
      std::printf("churn: %d waves x %d containers, stack %s\n", options.waves,
                  options.concurrency_per_wave, r.config.name.c_str());
      for (size_t w = 0; w < r.wave_startup.size(); ++w) {
        std::printf("  wave %zu: avg %.2fs p99 %.2fs\n", w + 1, r.wave_startup[w].Mean(),
                    r.wave_startup[w].Percentile(99));
      }
      std::printf("  frames reused %lu, residue reads %lu, corruptions %lu\n",
                  static_cast<unsigned long>(r.frames_reused),
                  static_cast<unsigned long>(r.residue_reads),
                  static_cast<unsigned long>(r.corruptions));
    }
    return 0;
  }

  ExperimentOptions options;
  options.concurrency = static_cast<int>(flags.GetInt("concurrency"));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  options.app = app;
  const std::string arrival = flags.GetString("arrival");
  if (arrival == "uniform") {
    options.arrival = ArrivalPattern::kUniform;
  } else if (arrival == "poisson") {
    options.arrival = ArrivalPattern::kPoisson;
  } else if (arrival != "burst") {
    std::fprintf(stderr, "error: unknown arrival pattern '%s'\n", arrival.c_str());
    return 2;
  }
  options.arrival_rate_per_s = flags.GetDouble("rate");
  options.collect_metrics = flags.GetBool("metrics");
  if (!flags.GetString("fault-plan").empty()) {
    std::string plan_error;
    auto plan = FaultPlan::Parse(flags.GetString("fault-plan"), &plan_error);
    if (!plan.has_value()) {
      std::fprintf(stderr, "error: bad --fault-plan: %s\n", plan_error.c_str());
      return 2;
    }
    plan->seed = static_cast<uint64_t>(flags.GetInt("fault-seed"));
    options.fault_plan = std::move(plan);
  }

  if (flags.GetInt("cells") > 1) {
    if (flags.GetInt("waves") > 1 || !flags.GetString("trace").empty()) {
      std::fprintf(stderr, "error: --cells does not combine with --waves or --trace\n");
      return 2;
    }
    MultiCellOptions mc;
    mc.cells = static_cast<int>(flags.GetInt("cells"));
    mc.cell_threads = static_cast<int>(flags.GetInt("cell-threads"));
    if (flags.GetInt("lookahead-us") > 0) {
      mc.lookahead = Microseconds(flags.GetInt("lookahead-us"));
    }
    // Stream cells through as they complete: each result is serialized (or
    // printed) and freed before the next arrives, so --cells 1000 does not
    // hold a thousand timelines alive. The "parallel" stats section moves
    // after "results" because execution stats only exist once the last cell
    // finished.
    if (flags.GetBool("json")) {
      JsonWriter json(std::cout);
      json.BeginObject();
      json.KV("cells", static_cast<int64_t>(mc.cells));
      json.Key("results");
      json.BeginArray();
      const MultiCellStreamStats stats = RunMultiCellStream(
          *stack, options, mc,
          [&](int, ExperimentResult&& cell) { WriteExperimentResultJson(cell, json); });
      json.EndArray();
      json.Key("parallel");
      json.BeginObject();
      json.KV("threads_used", static_cast<int64_t>(stats.threads_used));
      json.KV("streamed", stats.streamed);
      json.KV("windows", stats.exec.windows);
      json.KV("messages_delivered", stats.exec.messages_delivered);
      json.KV("wall_seconds", stats.wall_seconds);
      json.KV("utilization", stats.exec.Utilization());
      json.EndObject();
      json.EndObject();
      std::cout << '\n';
    } else {
      std::printf("%d cells x %d containers, stack %s\n", mc.cells, options.concurrency,
                  stack->name.c_str());
      Summary startup;
      const MultiCellStreamStats stats = RunMultiCellStream(
          *stack, options, mc, [&](int i, ExperimentResult&& cell) {
            std::printf("  cell %d: avg %.3fs p99 %.3fs (seed %lu)\n", i,
                        cell.startup.Mean(), cell.startup.Percentile(99),
                        static_cast<unsigned long>(cell.options.seed));
            startup.Merge(cell.startup);
          });
      std::printf("  fleet: avg %.3fs p99 %.3fs over %lu containers\n", startup.Mean(),
                  startup.Percentile(99), static_cast<unsigned long>(startup.Count()));
      std::printf("  %d threads, %.2fs wall%s\n", stats.threads_used, stats.wall_seconds,
                  stats.streamed
                      ? " (streamed)"
                      : (", " + std::to_string(stats.exec.windows) + " windows").c_str());
    }
    return 0;
  }

  const ExperimentResult r = RunStartupExperiment(*stack, options);
  if (flags.GetBool("json")) {
    WriteExperimentResultJson(r, std::cout);
    std::cout << '\n';
  } else {
    WriteSummaryText(r);
  }
  if (!flags.GetString("trace").empty()) {
    std::ofstream trace(flags.GetString("trace"));
    if (!trace) {
      std::fprintf(stderr, "error: cannot open trace file '%s'\n",
                   flags.GetString("trace").c_str());
      return 1;
    }
    TraceOptions trace_options;
    if (r.observability != nullptr) {
      trace_options.blocked = &r.observability->blocked;
      trace_options.counters = &r.observability->tracks;
    }
    if (!r.fault_events.empty()) {
      trace_options.fault_events = &r.fault_events;
    }
    ExportChromeTrace(r.timeline, trace, trace_options);
    std::fprintf(stderr, "trace written to %s (open in chrome://tracing)\n",
                 flags.GetString("trace").c_str());
  }
  return 0;
}
