// §7 extension: vDPA with the standard virtio guest driver.
#include "src/nic/vdpa.h"

#include <gtest/gtest.h>

#include "src/container/runtime.h"
#include "src/core/fastiovd.h"
#include "src/experiments/startup_experiment.h"

namespace fastiov {
namespace {

struct VdpaEnv {
  Simulation sim{1};
  HostSpec spec;
  CostModel cost;
  CpuPool cpu{sim, 56};
  PhysicalMemory pmem;
  Iommu iommu;
  PciBus bus{0x3b};
  PciIdAllocator pci_ids;
  SriovNic nic;
  MicroVm vm;
  Fastiovd fastiovd;
  VdpaBus vdpa;

  static constexpr uint64_t kRamBytes = 128 * kMiB;
  static constexpr uint64_t kRingBytes = 4 * kMiB;
  static constexpr uint64_t kRingGpa = kRamBytes - kRingBytes;

  VdpaEnv()
      : pmem(sim, [&] {
          spec.memory_bytes = 2 * kGiB;
          return spec;
        }(), cost, kHugePageSize),
        nic(sim, cpu, cost, spec, bus, pci_ids),
        vm(sim, cpu, pmem, cost, 1000),
        fastiovd(sim, cpu, pmem, cost),
        vdpa(sim, cpu, cost) {
    pmem.set_cpu(&cpu);
    nic.CreateVfs(8);
    vm.AddRegion("ram", RegionType::kRam, 0, kRamBytes);
  }

  void Run(Task t) {
    sim.Spawn(std::move(t));
    sim.Run();
  }

  IommuDomain* MapRamLazy() {
    IommuDomain* domain = iommu.CreateDomain();
    GuestMemoryRegion* ram = vm.FindRegion("ram");
    Run([&]() -> Task {
      std::vector<PageRun> runs;
      co_await pmem.RetrievePages(vm.pid(), ram->frames.size(), &runs);
      co_await fastiovd.RegisterPages(vm.pid(), std::span<const PageRun>(runs), 0);
      vm.SetFaultHook(&fastiovd);
      ram->frames.AssignRuns(runs);
      ram->dma_mapped = true;
      uint64_t gpa = 0;
      for (const PageRun& run : runs) {
        domain->MapRange(gpa, run, kHugePageSize);
        gpa += run.count * kHugePageSize;
      }
    }());
    return domain;
  }
};

TEST(VdpaBusTest, AddDeviceSerializesAndCounts) {
  VdpaEnv env;
  for (int i = 0; i < 4; ++i) {
    env.sim.Spawn(env.vdpa.AddDevice(env.nic.vf(i)));
  }
  env.sim.Run();
  EXPECT_EQ(env.vdpa.devices_added(), 4u);
  EXPECT_GT(env.vdpa.lock_contention(), 0u);
}

TEST(VirtioNetDriverTest, LifecycleWithoutMailbox) {
  VdpaEnv env;
  IommuDomain* domain = env.MapRamLazy();
  VirtualFunction* vf = env.nic.AllocateFreeVf();
  VirtioNetDriver driver(env.sim, env.cpu, env.cost, env.vm, *vf, env.nic, *domain,
                         VdpaEnv::kRingGpa, VdpaEnv::kRingBytes);
  SimTime up_at;
  env.Run([&]() -> Task {
    co_await driver.Initialize();
    co_await driver.AssignAddresses();
    up_at = env.sim.Now();
  }());
  EXPECT_TRUE(driver.interface_up());
  EXPECT_FALSE(vf->mac().empty());
  // No 420 ms firmware-link settle: the interface is up far faster than the
  // vendor driver's path.
  EXPECT_LT(up_at, CostModel{}.vf_link_settle);
  EXPECT_EQ(env.nic.mailbox_lock().contention_count(), 0u);
}

TEST(VirtioNetDriverTest, SafeUnderLazyZeroingByConstruction) {
  // The §7 property: the FastIOV virtio frontend proactively faults the
  // rings, so lazy zeroing is safe regardless of vendor-driver behaviour —
  // there is no "driver forgot to scrub" failure mode to inject.
  VdpaEnv env;
  IommuDomain* domain = env.MapRamLazy();
  VirtualFunction* vf = env.nic.AllocateFreeVf();
  VirtioNetDriver driver(env.sim, env.cpu, env.cost, env.vm, *vf, env.nic, *domain,
                         VdpaEnv::kRingGpa, VdpaEnv::kRingBytes);
  env.Run([&]() -> Task {
    co_await driver.Initialize();
    co_await driver.AssignAddresses();
    co_await driver.Receive(2 * kMiB);
  }());
  EXPECT_EQ(driver.corrupted_reads(), 0u);
  EXPECT_EQ(driver.dma_translation_failures(), 0u);
  EXPECT_EQ(env.vm.residue_reads(), 0u);
}

// --- end-to-end pipeline under vDPA ---

TEST(VdpaPipelineTest, StartupCompletesCleanly) {
  const ExperimentResult r =
      RunStartupExperiment(StackConfig::FastIovVdpa(), [] {
        ExperimentOptions o;
        o.concurrency = 40;
        return o;
      }());
  EXPECT_EQ(r.startup.Count(), 40u);
  EXPECT_EQ(r.residue_reads, 0u);
  EXPECT_EQ(r.corruptions, 0u);
  // No VFIO devset traffic at all.
  EXPECT_EQ(r.devset_lock_contention, 0u);
}

TEST(VdpaPipelineTest, SafeEvenWithUncooperativeDriverKnob) {
  // With the vendor passthrough driver, disabling ring scrubbing corrupts
  // data (nic_test). Under vDPA the knob is irrelevant: the virtio frontend
  // protects the rings itself.
  StackConfig config = StackConfig::FastIovVdpa();
  config.driver_zeroes_dma_buffers = false;
  ExperimentOptions o;
  o.concurrency = 20;
  o.app = ServerlessApp::Image();
  const ExperimentResult r = RunStartupExperiment(config, o);
  EXPECT_EQ(r.corruptions, 0u);
  EXPECT_EQ(r.residue_reads, 0u);
}

TEST(VdpaPipelineTest, ComparableToFastIovAtScale) {
  // The §7 open question: vDPA's concurrent-startup behaviour. It should be
  // in FastIOV's ballpark (and far below vanilla).
  ExperimentOptions o;
  o.concurrency = 100;
  const double vdpa = RunStartupExperiment(StackConfig::FastIovVdpa(), o).startup.Mean();
  const double fast = RunStartupExperiment(StackConfig::FastIov(), o).startup.Mean();
  const double vanilla = RunStartupExperiment(StackConfig::Vanilla(), o).startup.Mean();
  EXPECT_LT(vdpa, vanilla * 0.5);
  EXPECT_NEAR(vdpa, fast, fast * 0.35);
}

TEST(VdpaPipelineTest, TaskCompletionWorks) {
  ExperimentOptions o;
  o.concurrency = 20;
  o.app = ServerlessApp::Compression();
  const ExperimentResult r = RunStartupExperiment(StackConfig::FastIovVdpa(), o);
  EXPECT_EQ(r.task_completion.Count(), 20u);
  EXPECT_GT(r.task_completion.Mean(), r.startup.Mean());
}

}  // namespace
}  // namespace fastiov
