#include "src/simcore/resources.h"

#include <gtest/gtest.h>

#include <vector>

namespace fastiov {
namespace {

constexpr double kTolerance = 1e-3;  // seconds; bandwidth timers add ~1ns

void ExpectNear(SimTime actual, double expected_seconds) {
  EXPECT_NEAR(actual.ToSecondsF(), expected_seconds, kTolerance);
}

// --- CpuPool (processor sharing) ---

Task ComputeAndLog(Simulation& sim, CpuPool& cpu, SimTime cost, std::vector<int64_t>* ends) {
  co_await cpu.Compute(cost);
  ends->push_back(sim.Now().ns());
}

TEST(CpuPoolTest, SingleJobRunsAtFullSpeed) {
  Simulation sim;
  CpuPool cpu(sim, 4);
  std::vector<int64_t> ends;
  sim.Spawn(ComputeAndLog(sim, cpu, Milliseconds(100), &ends));
  sim.Run();
  ExpectNear(sim.Now(), 0.1);
}

TEST(CpuPoolTest, JobsWithinCoreCountDoNotContend) {
  Simulation sim;
  CpuPool cpu(sim, 4);
  std::vector<int64_t> ends;
  for (int i = 0; i < 4; ++i) {
    sim.Spawn(ComputeAndLog(sim, cpu, Milliseconds(100), &ends));
  }
  sim.Run();
  ExpectNear(sim.Now(), 0.1);
}

TEST(CpuPoolTest, OversubscriptionStretchesProportionally) {
  Simulation sim;
  CpuPool cpu(sim, 2);
  std::vector<int64_t> ends;
  for (int i = 0; i < 8; ++i) {
    sim.Spawn(ComputeAndLog(sim, cpu, Milliseconds(100), &ends));
  }
  sim.Run();
  // 8 jobs x 100ms on 2 cores = 400ms of wall time under fair sharing.
  ExpectNear(sim.Now(), 0.4);
  // All jobs finish together (identical demands, equal shares).
  for (int64_t e : ends) {
    EXPECT_NEAR(static_cast<double>(e) * 1e-9, 0.4, kTolerance);
  }
}

TEST(CpuPoolTest, ShortJobNotConvoyedBehindLongJob) {
  Simulation sim;
  CpuPool cpu(sim, 1);
  std::vector<int64_t> ends;
  sim.Spawn(ComputeAndLog(sim, cpu, Milliseconds(1000), &ends));
  sim.Spawn(ComputeAndLog(sim, cpu, Milliseconds(10), &ends));
  sim.Run();
  // Under PS the 10ms job finishes at ~20ms (half rate), far before the
  // 1s job; a FIFO queue would have held it for the full second.
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_NEAR(static_cast<double>(ends[0]) * 1e-9, 0.02, kTolerance);
  EXPECT_NEAR(static_cast<double>(ends[1]) * 1e-9, 1.01, kTolerance);
}

TEST(CpuPoolTest, BusyTimeAccountsDemand) {
  Simulation sim;
  CpuPool cpu(sim, 2);
  std::vector<int64_t> ends;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn(ComputeAndLog(sim, cpu, Milliseconds(50), &ends));
  }
  sim.Run();
  ExpectNear(cpu.busy_core_time(), 0.15);
}

TEST(CpuPoolTest, ZeroCostCompletesInstantly) {
  Simulation sim;
  CpuPool cpu(sim, 1);
  std::vector<int64_t> ends;
  sim.Spawn(ComputeAndLog(sim, cpu, SimTime::Zero(), &ends));
  sim.Run();
  EXPECT_EQ(sim.Now(), SimTime::Zero());
}

// --- BandwidthResource ---

Task TransferAndLog(Simulation& sim, BandwidthResource& bw, double amount, double cap,
                    std::vector<int64_t>* ends) {
  co_await bw.Transfer(amount, cap);
  ends->push_back(sim.Now().ns());
}

TEST(BandwidthTest, SingleFlowUsesFullCapacity) {
  Simulation sim;
  BandwidthResource bw(sim, 100.0);  // units per second
  std::vector<int64_t> ends;
  sim.Spawn(TransferAndLog(sim, bw, 50.0, BandwidthResource::kUncapped, &ends));
  sim.Run();
  ExpectNear(sim.Now(), 0.5);
}

TEST(BandwidthTest, TwoFlowsShareFairly) {
  Simulation sim;
  BandwidthResource bw(sim, 100.0);
  std::vector<int64_t> ends;
  sim.Spawn(TransferAndLog(sim, bw, 50.0, BandwidthResource::kUncapped, &ends));
  sim.Spawn(TransferAndLog(sim, bw, 50.0, BandwidthResource::kUncapped, &ends));
  sim.Run();
  // Each gets 50 u/s -> both finish at 1s.
  ExpectNear(sim.Now(), 1.0);
}

TEST(BandwidthTest, ShortFlowFinishesEarlyAndLongFlowSpeedsUp) {
  Simulation sim;
  BandwidthResource bw(sim, 100.0);
  std::vector<int64_t> ends;
  sim.Spawn(TransferAndLog(sim, bw, 10.0, BandwidthResource::kUncapped, &ends));
  sim.Spawn(TransferAndLog(sim, bw, 100.0, BandwidthResource::kUncapped, &ends));
  sim.Run();
  ASSERT_EQ(ends.size(), 2u);
  // Flow A: 10 units at 50/s -> 0.2s. Flow B: 10 units by 0.2s, then 90
  // more at 100/s -> 1.1s.
  EXPECT_NEAR(static_cast<double>(ends[0]) * 1e-9, 0.2, kTolerance);
  EXPECT_NEAR(static_cast<double>(ends[1]) * 1e-9, 1.1, kTolerance);
}

TEST(BandwidthTest, PerFlowCapLimitsRate) {
  Simulation sim;
  BandwidthResource bw(sim, 100.0);
  std::vector<int64_t> ends;
  sim.Spawn(TransferAndLog(sim, bw, 10.0, 10.0, &ends));
  sim.Run();
  // Capped at 10/s despite 100/s being free.
  ExpectNear(sim.Now(), 1.0);
}

TEST(BandwidthTest, WaterFillingRedistributesCapacity) {
  Simulation sim;
  BandwidthResource bw(sim, 100.0);
  std::vector<int64_t> ends;
  // One capped flow (10/s) plus one uncapped: the uncapped flow gets the
  // remaining 90/s, not just the 50/s fair share.
  sim.Spawn(TransferAndLog(sim, bw, 10.0, 10.0, &ends));
  sim.Spawn(TransferAndLog(sim, bw, 90.0, BandwidthResource::kUncapped, &ends));
  sim.Run();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_NEAR(static_cast<double>(ends[0]) * 1e-9, 1.0, kTolerance);
  EXPECT_NEAR(static_cast<double>(ends[1]) * 1e-9, 1.0, kTolerance);
}

TEST(BandwidthTest, LateArrivalSlowsExistingFlow) {
  Simulation sim;
  BandwidthResource bw(sim, 100.0);
  std::vector<int64_t> ends;
  auto scenario = [](Simulation& s, BandwidthResource& b, std::vector<int64_t>* out) -> Task {
    Process p1 = s.Spawn(TransferAndLog(s, b, 100.0, BandwidthResource::kUncapped, out));
    co_await s.Delay(Milliseconds(500));
    Process p2 = s.Spawn(TransferAndLog(s, b, 50.0, BandwidthResource::kUncapped, out));
    co_await p1.Join();
    co_await p2.Join();
  };
  sim.Spawn(scenario(sim, bw, &ends));
  sim.Run();
  ASSERT_EQ(ends.size(), 2u);
  // Flow 1: 50 units by 0.5s, then shares 50/s until done at 1.5s.
  // Flow 2: 50 units at 50/s -> also 1.5s.
  EXPECT_NEAR(static_cast<double>(ends[0]) * 1e-9, 1.5, kTolerance);
  EXPECT_NEAR(static_cast<double>(ends[1]) * 1e-9, 1.5, kTolerance);
}

TEST(BandwidthTest, TotalTransferredAccumulates) {
  Simulation sim;
  BandwidthResource bw(sim, 100.0);
  std::vector<int64_t> ends;
  sim.Spawn(TransferAndLog(sim, bw, 30.0, BandwidthResource::kUncapped, &ends));
  sim.Spawn(TransferAndLog(sim, bw, 20.0, BandwidthResource::kUncapped, &ends));
  sim.Run();
  EXPECT_DOUBLE_EQ(bw.total_transferred(), 50.0);
  EXPECT_EQ(bw.active_flows(), 0u);
}

TEST(BandwidthTest, ZeroAmountCompletesInstantly) {
  Simulation sim;
  BandwidthResource bw(sim, 100.0);
  std::vector<int64_t> ends;
  sim.Spawn(TransferAndLog(sim, bw, 0.0, BandwidthResource::kUncapped, &ends));
  sim.Run();
  EXPECT_EQ(sim.Now(), SimTime::Zero());
}

// Property sweep: N identical flows on capacity C finish at N*amount/C.
class BandwidthFairnessTest : public ::testing::TestWithParam<int> {};

TEST_P(BandwidthFairnessTest, NFlowsFinishTogether) {
  const int n = GetParam();
  Simulation sim;
  BandwidthResource bw(sim, 200.0);
  std::vector<int64_t> ends;
  for (int i = 0; i < n; ++i) {
    sim.Spawn(TransferAndLog(sim, bw, 100.0, BandwidthResource::kUncapped, &ends));
  }
  sim.Run();
  const double expected = static_cast<double>(n) * 100.0 / 200.0;
  ExpectNear(sim.Now(), expected);
  for (int64_t e : ends) {
    EXPECT_NEAR(static_cast<double>(e) * 1e-9, expected, kTolerance);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BandwidthFairnessTest, ::testing::Values(1, 2, 3, 5, 8, 16, 64));

}  // namespace
}  // namespace fastiov
