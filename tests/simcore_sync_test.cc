#include "src/simcore/sync.h"

#include <gtest/gtest.h>

#include <vector>

namespace fastiov {
namespace {

// --- SimEvent ---

Task WaitAndLog(Simulation& sim, SimEvent& ev, std::vector<int>* log, int id) {
  co_await ev.Wait();
  log->push_back(id);
  (void)sim;
}

TEST(SimEventTest, SetWakesAllWaiters) {
  Simulation sim;
  SimEvent ev(sim);
  std::vector<int> log;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn(WaitAndLog(sim, ev, &log, i));
  }
  sim.ScheduleCallback(Milliseconds(5), [&] { ev.Set(); });
  sim.Run();
  EXPECT_EQ(log, std::vector<int>({0, 1, 2}));
  EXPECT_EQ(sim.Now(), Milliseconds(5));
}

TEST(SimEventTest, WaitOnSetEventDoesNotSuspend) {
  Simulation sim;
  SimEvent ev(sim);
  ev.Set();
  std::vector<int> log;
  auto t = [](Simulation& s, SimEvent& e, std::vector<int>* l) -> Task {
    co_await e.Wait();
    l->push_back(1);
    EXPECT_EQ(s.Now(), SimTime::Zero());
  };
  sim.Spawn(t(sim, ev, &log));
  sim.Run();
  EXPECT_EQ(log.size(), 1u);
}

TEST(SimEventTest, ResetAllowsReuse) {
  Simulation sim;
  SimEvent ev(sim);
  ev.Set();
  EXPECT_TRUE(ev.IsSet());
  ev.Reset();
  EXPECT_FALSE(ev.IsSet());
}

// --- SimMutex ---

Task LockHoldUnlock(Simulation& sim, SimMutex& mu, SimTime hold, std::vector<int>* log,
                    int id) {
  co_await mu.Lock();
  log->push_back(id);
  co_await sim.Delay(hold);
  mu.Unlock();
}

TEST(SimMutexTest, SerializesCriticalSections) {
  Simulation sim;
  SimMutex mu(sim);
  std::vector<int> log;
  for (int i = 0; i < 4; ++i) {
    sim.Spawn(LockHoldUnlock(sim, mu, Milliseconds(10), &log, i));
  }
  sim.Run();
  EXPECT_EQ(log, std::vector<int>({0, 1, 2, 3}));
  // 4 holders x 10ms, strictly serialized.
  EXPECT_EQ(sim.Now(), Milliseconds(40));
  EXPECT_FALSE(mu.IsLocked());
}

TEST(SimMutexTest, ContentionCountOnlyCountsWaiters) {
  Simulation sim;
  SimMutex mu(sim);
  std::vector<int> log;
  for (int i = 0; i < 4; ++i) {
    sim.Spawn(LockHoldUnlock(sim, mu, Milliseconds(1), &log, i));
  }
  sim.Run();
  EXPECT_EQ(mu.contention_count(), 3u);  // the first acquisition was free
}

TEST(SimMutexTest, UncontendedLockIsImmediate) {
  Simulation sim;
  SimMutex mu(sim);
  auto t = [](Simulation& s, SimMutex& m) -> Task {
    co_await m.Lock();
    EXPECT_EQ(s.Now(), SimTime::Zero());
    m.Unlock();
  };
  sim.Spawn(t(sim, mu));
  sim.Run();
  EXPECT_EQ(mu.contention_count(), 0u);
}

TEST(SimMutexTest, GuardUnlocksOnScopeExit) {
  Simulation sim;
  SimMutex mu(sim);
  std::vector<int> log;
  auto holder = [](Simulation& s, SimMutex& m, std::vector<int>* l) -> Task {
    co_await m.Lock();
    SimMutexGuard guard(m);
    l->push_back(1);
    co_await s.Delay(Milliseconds(5));
  };
  sim.Spawn(holder(sim, mu, &log));
  sim.Spawn(LockHoldUnlock(sim, mu, Milliseconds(1), &log, 2));
  sim.Run();
  EXPECT_EQ(log, std::vector<int>({1, 2}));
  EXPECT_FALSE(mu.IsLocked());
}

// --- SimRwLock ---

Task Reader(Simulation& sim, SimRwLock& lock, SimTime hold, std::vector<std::pair<int, int64_t>>* log,
            int id) {
  co_await lock.LockRead();
  log->push_back({id, sim.Now().ns()});
  co_await sim.Delay(hold);
  lock.UnlockRead();
}

Task Writer(Simulation& sim, SimRwLock& lock, SimTime hold, std::vector<std::pair<int, int64_t>>* log,
            int id) {
  co_await lock.LockWrite();
  log->push_back({id, sim.Now().ns()});
  co_await sim.Delay(hold);
  lock.UnlockWrite();
}

TEST(SimRwLockTest, ReadersProceedInParallel) {
  Simulation sim;
  SimRwLock lock(sim);
  std::vector<std::pair<int, int64_t>> log;
  for (int i = 0; i < 5; ++i) {
    sim.Spawn(Reader(sim, lock, Milliseconds(10), &log, i));
  }
  sim.Run();
  // All readers entered at t=0; total time = one hold, not five.
  EXPECT_EQ(sim.Now(), Milliseconds(10));
  for (const auto& [id, t] : log) {
    EXPECT_EQ(t, 0);
  }
}

TEST(SimRwLockTest, WritersAreExclusive) {
  Simulation sim;
  SimRwLock lock(sim);
  std::vector<std::pair<int, int64_t>> log;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn(Writer(sim, lock, Milliseconds(10), &log, i));
  }
  sim.Run();
  EXPECT_EQ(sim.Now(), Milliseconds(30));
  EXPECT_EQ(log[0].second, 0);
  EXPECT_EQ(log[1].second, Milliseconds(10).ns());
  EXPECT_EQ(log[2].second, Milliseconds(20).ns());
}

TEST(SimRwLockTest, WriterExcludesReaders) {
  Simulation sim;
  SimRwLock lock(sim);
  std::vector<std::pair<int, int64_t>> log;
  sim.Spawn(Writer(sim, lock, Milliseconds(10), &log, 100));
  sim.Spawn(Reader(sim, lock, Milliseconds(5), &log, 1));
  sim.Spawn(Reader(sim, lock, Milliseconds(5), &log, 2));
  sim.Run();
  // Readers start only after the writer releases, then run in parallel.
  EXPECT_EQ(log[0].first, 100);
  EXPECT_EQ(log[1].second, Milliseconds(10).ns());
  EXPECT_EQ(log[2].second, Milliseconds(10).ns());
  EXPECT_EQ(sim.Now(), Milliseconds(15));
}

TEST(SimRwLockTest, FifoPreventsWriterStarvation) {
  Simulation sim;
  SimRwLock lock(sim);
  std::vector<std::pair<int, int64_t>> log;
  auto scenario = [](Simulation& s, SimRwLock& l,
                     std::vector<std::pair<int, int64_t>>* out) -> Task {
    // Reader 1 holds; writer queues; reader 2 arrives later and must wait
    // behind the writer (strict FIFO), not barge in with reader 1.
    Process r1 = s.Spawn(Reader(s, l, Milliseconds(10), out, 1));
    co_await s.Delay(Milliseconds(1));
    Process w = s.Spawn(Writer(s, l, Milliseconds(10), out, 2));
    co_await s.Delay(Milliseconds(1));
    Process r2 = s.Spawn(Reader(s, l, Milliseconds(10), out, 3));
    co_await r1.Join();
    co_await w.Join();
    co_await r2.Join();
  };
  sim.Spawn(scenario(sim, lock, &log));
  sim.Run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].first, 1);
  EXPECT_EQ(log[1].first, 2);  // writer before the late reader
  EXPECT_EQ(log[1].second, Milliseconds(10).ns());
  EXPECT_EQ(log[2].first, 3);
  EXPECT_EQ(log[2].second, Milliseconds(20).ns());
}

TEST(SimRwLockTest, ConsecutiveQueuedReadersAdmittedTogether) {
  Simulation sim;
  SimRwLock lock(sim);
  std::vector<std::pair<int, int64_t>> log;
  auto scenario = [](Simulation& s, SimRwLock& l,
                     std::vector<std::pair<int, int64_t>>* out) -> Task {
    Process w = s.Spawn(Writer(s, l, Milliseconds(10), out, 1));
    co_await s.Delay(Milliseconds(1));
    Process r1 = s.Spawn(Reader(s, l, Milliseconds(10), out, 2));
    Process r2 = s.Spawn(Reader(s, l, Milliseconds(10), out, 3));
    co_await w.Join();
    co_await r1.Join();
    co_await r2.Join();
  };
  sim.Spawn(scenario(sim, lock, &log));
  sim.Run();
  // Both readers start together when the writer releases.
  EXPECT_EQ(log[1].second, Milliseconds(10).ns());
  EXPECT_EQ(log[2].second, Milliseconds(10).ns());
  EXPECT_EQ(sim.Now(), Milliseconds(20));
}

// --- SimSemaphore ---

Task AcquireHold(Simulation& sim, SimSemaphore& sem, SimTime hold, std::vector<int64_t>* starts) {
  co_await sem.Acquire();
  starts->push_back(sim.Now().ns());
  co_await sim.Delay(hold);
  sem.Release();
}

TEST(SimSemaphoreTest, AllowsCountConcurrentHolders) {
  Simulation sim;
  SimSemaphore sem(sim, 2);
  std::vector<int64_t> starts;
  for (int i = 0; i < 4; ++i) {
    sim.Spawn(AcquireHold(sim, sem, Milliseconds(10), &starts));
  }
  sim.Run();
  ASSERT_EQ(starts.size(), 4u);
  EXPECT_EQ(starts[0], 0);
  EXPECT_EQ(starts[1], 0);
  EXPECT_EQ(starts[2], Milliseconds(10).ns());
  EXPECT_EQ(starts[3], Milliseconds(10).ns());
  EXPECT_EQ(sem.available(), 2);
}

TEST(SimSemaphoreTest, AvailableTracksHolders) {
  Simulation sim;
  SimSemaphore sem(sim, 3);
  auto t = [](Simulation& /*sim*/, SimSemaphore& sm) -> Task {
    co_await sm.Acquire();
    EXPECT_EQ(sm.available(), 2);
    co_await sm.Acquire();
    EXPECT_EQ(sm.available(), 1);
    sm.Release();
    sm.Release();
    EXPECT_EQ(sm.available(), 3);
    co_return;
  };
  sim.Spawn(t(sim, sem));
  sim.Run();
}

}  // namespace
}  // namespace fastiov
