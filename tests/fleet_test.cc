// Fleet-scale streaming pipeline smoke (~10^3 launches): the streamed
// multi-cell path must be byte-identical to the buffered path, bounding the
// timeline must not move a result byte, and the streaming-capable Summary
// must match pure exact mode below the switchover threshold — the three
// identities the fleet tier of simbench relies on, pinned here at a size
// ctest can afford.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/experiments/multi_cell.h"
#include "src/experiments/result_json.h"
#include "src/experiments/startup_experiment.h"
#include "src/stats/digest.h"
#include "src/stats/json_writer.h"
#include "src/stats/summary.h"

namespace fastiov {
namespace {

constexpr int kCells = 4;
constexpr int kPerCell = 250;  // 4 x 250 = 10^3 launches

ExperimentOptions FleetOptions() {
  ExperimentOptions opt;
  opt.concurrency = kPerCell;
  return opt;
}

TEST(FleetSmokeTest, StreamedResultsByteIdenticalToBuffered) {
  MultiCellOptions mc;
  mc.cells = kCells;
  mc.cell_threads = 1;

  DigestOstream streamed;
  std::vector<int> order;
  const MultiCellStreamStats stats = RunMultiCellStream(
      StackConfig::FastIov(), FleetOptions(), mc,
      [&](int index, ExperimentResult&& cell) {
        order.push_back(index);
        JsonWriter json(streamed);
        WriteExperimentResultJson(cell, json);
        streamed << '\n';
      });
  EXPECT_TRUE(stats.streamed);
  EXPECT_EQ(stats.cells, kCells);
  ASSERT_EQ(order.size(), static_cast<size_t>(kCells));
  for (int i = 0; i < kCells; ++i) {
    EXPECT_EQ(order[i], i) << "sink must receive cells in index order";
  }

  const MultiCellResult buffered =
      RunMultiCellExperiment(StackConfig::FastIov(), FleetOptions(), mc);
  Fnv1a64 reference;
  reference.Update(MultiCellDigest(buffered));
  EXPECT_EQ(streamed.bytes(), reference.bytes());
  EXPECT_EQ(streamed.value(), reference.value());
}

TEST(FleetSmokeTest, BoundedTimelineDoesNotMoveResultBytes) {
  // All result statistics come from the always-on aggregate step sums, so
  // keeping spans for only the first 8 containers (out of 250) must leave
  // the serialized result untouched.
  ExperimentOptions bounded = FleetOptions();
  bounded.timeline_span_sample = 8;
  ExperimentOptions unbounded = FleetOptions();
  const ExperimentResult b = RunStartupExperiment(StackConfig::FastIov(), bounded);
  const ExperimentResult u = RunStartupExperiment(StackConfig::FastIov(), unbounded);
  EXPECT_EQ(ExperimentResultJson(b), ExperimentResultJson(u));
  // The bounding itself took effect: sampled lanes keep spans, later ones not.
  EXPECT_FALSE(b.timeline.Container(0).spans.empty());
  EXPECT_TRUE(b.timeline.Container(kPerCell - 1).spans.empty());
  EXPECT_FALSE(u.timeline.Container(kPerCell - 1).spans.empty());
}

TEST(FleetSmokeTest, StreamingCapableSummaryMatchesPureExactBelowThreshold) {
  // Below the switchover threshold the streaming-capable Summary must be a
  // byte-for-byte no-op: the same experiment serialized under the default
  // limit (65536, never reached at 250 samples) and under kUnlimited (the
  // pre-streaming behavior) must match exactly.
  const size_t saved = Summary::DefaultExactLimit();
  const ExperimentResult with_default =
      RunStartupExperiment(StackConfig::FastIov(), FleetOptions());
  Summary::SetDefaultExactLimit(Summary::kUnlimited);
  const ExperimentResult pure_exact =
      RunStartupExperiment(StackConfig::FastIov(), FleetOptions());
  Summary::SetDefaultExactLimit(saved);
  EXPECT_EQ(ExperimentResultJson(with_default), ExperimentResultJson(pure_exact));
}

TEST(FleetSmokeTest, FleetAggregateCrossesSwitchoverDeterministically) {
  // A fleet-wide aggregate with a small exact limit crosses into streaming
  // mid-merge; merging the same cells in the same order twice must land on
  // bit-identical statistics.
  MultiCellOptions mc;
  mc.cells = kCells;
  mc.cell_threads = 1;
  std::vector<Summary> per_cell;
  RunMultiCellStream(StackConfig::FastIov(), FleetOptions(), mc,
                     [&](int, ExperimentResult&& cell) {
                       per_cell.push_back(cell.startup);
                     });
  ASSERT_EQ(per_cell.size(), static_cast<size_t>(kCells));

  auto fold = [&] {
    Summary fleet(100);  // 1000 samples total: crosses during the first cell
    for (const Summary& s : per_cell) {
      fleet.Merge(s);
    }
    return fleet;
  };
  const Summary a = fold();
  const Summary b = fold();
  ASSERT_TRUE(a.streaming());
  EXPECT_EQ(a.Count(), static_cast<size_t>(kCells * kPerCell));
  EXPECT_DOUBLE_EQ(a.Mean(), b.Mean());
  EXPECT_DOUBLE_EQ(a.Percentile(50), b.Percentile(50));
  EXPECT_DOUBLE_EQ(a.Percentile(99), b.Percentile(99));
  EXPECT_DOUBLE_EQ(a.Min(), b.Min());
  EXPECT_DOUBLE_EQ(a.Max(), b.Max());

  // And the streamed aggregate tracks the exact one: same count/min/max/sum,
  // percentiles within the histogram's bin width.
  Summary exact(Summary::kUnlimited);
  for (const Summary& s : per_cell) {
    exact.Merge(s);
  }
  EXPECT_EQ(a.Count(), exact.Count());
  EXPECT_DOUBLE_EQ(a.Min(), exact.Min());
  EXPECT_DOUBLE_EQ(a.Max(), exact.Max());
  EXPECT_DOUBLE_EQ(a.Sum(), exact.Sum());
  EXPECT_NEAR(a.Percentile(99), exact.Percentile(99), 0.03 * exact.Percentile(99));
}

}  // namespace
}  // namespace fastiov
