// JsonWriter edge cases: the three sinks must produce byte-identical output
// (streamed fleet digests are computed over the ostream sink while tests
// compare string-sink documents — any divergence would fake a determinism
// failure), escaping must cover the full control range, and deep nesting
// must not blow up.
#include "src/stats/json_writer.h"

#include <cmath>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace fastiov {
namespace {

// One document exercising every value path: nested containers, escapes,
// integer widths, doubles, bools, null, raw embedding.
void WriteSampleDocument(JsonWriter& json) {
  json.BeginObject();
  json.KV("name", "fleet \"α\" run\n\ttab");
  json.KV("count", static_cast<int64_t>(-42));
  json.KV("big", static_cast<uint64_t>(18446744073709551615ull));
  json.KV("ratio", 0.25);
  json.KV("tiny", 1e-30);
  json.KV("flag", true);
  json.Key("missing");
  json.Null();
  json.Key("nested");
  json.BeginArray();
  json.Value("plain");
  json.BeginObject().KV("inner", 7).EndObject();
  json.RawValue("{\"raw\":[1,2,3]}");
  json.EndArray();
  json.EndObject();
}

TEST(JsonWriterTest, AllThreeSinksProduceIdenticalBytes) {
  JsonWriter internal;
  WriteSampleDocument(internal);

  std::string external;
  JsonWriter to_string(external);
  WriteSampleDocument(to_string);

  std::ostringstream os;
  {
    JsonWriter to_stream(os);
    WriteSampleDocument(to_stream);
  }

  EXPECT_EQ(internal.str(), external);
  EXPECT_EQ(internal.str(), os.str());
  EXPECT_FALSE(internal.str().empty());
}

TEST(JsonWriterTest, ControlCharactersEscapedAsUnicode) {
  JsonWriter json;
  std::string raw;
  for (char c = 1; c < 0x20; ++c) {
    raw.push_back(c);
  }
  json.Value(raw);
  const std::string out = json.str();
  // The named short escapes the writer emits.
  EXPECT_NE(out.find("\\n"), std::string::npos);
  EXPECT_NE(out.find("\\r"), std::string::npos);
  EXPECT_NE(out.find("\\t"), std::string::npos);
  // Everything else (including \b and \f) as \u00XX.
  EXPECT_NE(out.find("\\u0001"), std::string::npos);
  EXPECT_NE(out.find("\\u0008"), std::string::npos);
  EXPECT_NE(out.find("\\u000c"), std::string::npos);
  EXPECT_NE(out.find("\\u001f"), std::string::npos);
  // No raw control byte may survive.
  for (char c = 1; c < 0x20; ++c) {
    EXPECT_EQ(out.find(c), std::string::npos) << static_cast<int>(c);
  }
}

TEST(JsonWriterTest, QuoteAndBackslashEscaped) {
  JsonWriter json;
  json.Value("a\"b\\c");
  EXPECT_EQ(json.str(), "\"a\\\"b\\\\c\"");
}

TEST(JsonWriterTest, EscapeStaticMatchesValuePath) {
  const std::string raw = "line1\nline2\t\"quoted\"\\x";
  JsonWriter json;
  json.Value(raw);
  EXPECT_EQ(json.str(), "\"" + JsonWriter::Escape(raw) + "\"");
}

TEST(JsonWriterTest, RawValueParticipatesInCommaPlacement) {
  JsonWriter json;
  json.BeginArray();
  json.RawValue("1");
  json.RawValue("{\"k\":\"v\"}");
  json.Value(3);
  json.EndArray();
  EXPECT_EQ(json.str(), "[1,{\"k\":\"v\"},3]");
}

TEST(JsonWriterTest, RawValueAsObjectMember) {
  JsonWriter json;
  json.BeginObject();
  json.Key("embedded");
  json.RawValue("[null,true]");
  json.KV("after", 1);
  json.EndObject();
  EXPECT_EQ(json.str(), "{\"embedded\":[null,true],\"after\":1}");
}

TEST(JsonWriterTest, DeepNestingRoundTrips) {
  constexpr int kDepth = 1000;
  JsonWriter json;
  for (int i = 0; i < kDepth; ++i) {
    json.BeginArray();
  }
  json.Value(1);
  for (int i = 0; i < kDepth; ++i) {
    json.EndArray();
  }
  const std::string out = json.str();
  EXPECT_EQ(out.size(), 2u * kDepth + 1);
  EXPECT_EQ(out.substr(0, 3), "[[[");
  EXPECT_EQ(out.substr(out.size() - 3), "]]]");
  EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(JsonWriterTest, NonFiniteDoublesSerializeAsNull) {
  JsonWriter json;
  json.BeginArray();
  json.Value(std::nan(""));
  json.Value(HUGE_VAL);
  json.Value(-HUGE_VAL);
  json.Value(1.5);
  json.EndArray();
  EXPECT_EQ(json.str(), "[null,null,null,1.5]");
}

TEST(JsonWriterTest, TakeStringMovesDocumentOut) {
  JsonWriter json;
  json.BeginObject();
  json.KV("k", 1);
  json.EndObject();
  std::string doc = json.TakeString();
  EXPECT_EQ(doc, "{\"k\":1}");
}

TEST(JsonWriterTest, ExternalStringSinkAppends) {
  // The writer appends to the caller's buffer — callers stream multiple
  // documents into one string (the sweep digest does exactly this).
  std::string out = "prefix:";
  JsonWriter json(out);
  json.BeginObject();
  json.KV("a", true);
  json.EndObject();
  EXPECT_EQ(out, "prefix:{\"a\":true}");
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter json;
  json.BeginObject();
  json.Key("obj");
  json.BeginObject().EndObject();
  json.Key("arr");
  json.BeginArray().EndArray();
  json.EndObject();
  EXPECT_EQ(json.str(), "{\"obj\":{},\"arr\":[]}");
}

TEST(JsonWriterTest, KeysAreEscapedToo) {
  JsonWriter json;
  json.BeginObject();
  json.KV("we\"ird\nkey", 1);
  json.EndObject();
  EXPECT_EQ(json.str(), "{\"we\\\"ird\\nkey\":1}");
}

}  // namespace
}  // namespace fastiov
