// Verifies the lock-relation matrix of Fig. 8a for both devset lock
// policies: inter-child parallel (hierarchical only), intra-child,
// intra-parent and parent-child mutually exclusive.
#include "src/vfio/lock_policy.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace fastiov {
namespace {

constexpr SimTime kHold = Milliseconds(10);

Task DeviceOp(Simulation& sim, DevsetLockPolicy& policy, int child,
              std::vector<int64_t>* starts) {
  co_await policy.AcquireDeviceOp(child);
  starts->push_back(sim.Now().ns());
  co_await sim.Delay(kHold);
  policy.ReleaseDeviceOp(child);
}

Task GlobalOp(Simulation& sim, DevsetLockPolicy& policy, std::vector<int64_t>* starts) {
  co_await policy.AcquireGlobalOp();
  starts->push_back(sim.Now().ns());
  co_await sim.Delay(kHold);
  policy.ReleaseGlobalOp();
}

enum class PolicyKind { kGlobalMutex, kHierarchical };

std::unique_ptr<DevsetLockPolicy> MakePolicy(Simulation& sim, PolicyKind kind, int children) {
  std::unique_ptr<DevsetLockPolicy> p;
  if (kind == PolicyKind::kGlobalMutex) {
    p = std::make_unique<GlobalMutexPolicy>(sim);
  } else {
    p = std::make_unique<HierarchicalLockPolicy>(sim);
  }
  for (int i = 0; i < children; ++i) {
    p->AddChild(i);
  }
  return p;
}

class LockPolicyTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(LockPolicyTest, IntraChildOperationsSerialize) {
  Simulation sim;
  auto policy = MakePolicy(sim, GetParam(), 4);
  std::vector<int64_t> starts;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn(DeviceOp(sim, *policy, /*child=*/0, &starts));
  }
  sim.Run();
  EXPECT_EQ(sim.Now(), kHold * 3.0);
  EXPECT_EQ(starts[1] - starts[0], kHold.ns());
}

TEST_P(LockPolicyTest, GlobalOperationsSerialize) {
  Simulation sim;
  auto policy = MakePolicy(sim, GetParam(), 4);
  std::vector<int64_t> starts;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn(GlobalOp(sim, *policy, &starts));
  }
  sim.Run();
  EXPECT_EQ(sim.Now(), kHold * 3.0);
}

TEST_P(LockPolicyTest, GlobalExcludesDeviceOp) {
  Simulation sim;
  auto policy = MakePolicy(sim, GetParam(), 4);
  std::vector<int64_t> starts;
  sim.Spawn(GlobalOp(sim, *policy, &starts));
  sim.Spawn(DeviceOp(sim, *policy, 0, &starts));
  sim.Run();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], 0);
  EXPECT_EQ(starts[1], kHold.ns());
}

TEST_P(LockPolicyTest, DeviceOpExcludesGlobal) {
  Simulation sim;
  auto policy = MakePolicy(sim, GetParam(), 4);
  std::vector<int64_t> starts;
  sim.Spawn(DeviceOp(sim, *policy, 2, &starts));
  sim.Spawn(GlobalOp(sim, *policy, &starts));
  sim.Run();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[1], kHold.ns());
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, LockPolicyTest,
                         ::testing::Values(PolicyKind::kGlobalMutex,
                                           PolicyKind::kHierarchical),
                         [](const auto& info) {
                           return info.param == PolicyKind::kGlobalMutex ? "GlobalMutex"
                                                                         : "Hierarchical";
                         });

// The distinguishing behaviour: inter-child parallelism.

TEST(GlobalMutexPolicyTest, InterChildOperationsSerialize) {
  Simulation sim;
  auto policy = MakePolicy(sim, PolicyKind::kGlobalMutex, 8);
  std::vector<int64_t> starts;
  for (int i = 0; i < 8; ++i) {
    sim.Spawn(DeviceOp(sim, *policy, i, &starts));
  }
  sim.Run();
  // The vanilla global mutex serializes opens of *different* VFs (§3.2.2).
  EXPECT_EQ(sim.Now(), kHold * 8.0);
}

TEST(HierarchicalPolicyTest, InterChildOperationsRunInParallel) {
  Simulation sim;
  auto policy = MakePolicy(sim, PolicyKind::kHierarchical, 8);
  std::vector<int64_t> starts;
  for (int i = 0; i < 8; ++i) {
    sim.Spawn(DeviceOp(sim, *policy, i, &starts));
  }
  sim.Run();
  // §4.2.1: ac-read + ac-mutex_i are independent across children.
  EXPECT_EQ(sim.Now(), kHold);
  for (int64_t t : starts) {
    EXPECT_EQ(t, 0);
  }
}

TEST(HierarchicalPolicyTest, GlobalWaitsForAllReaders) {
  Simulation sim;
  auto policy = MakePolicy(sim, PolicyKind::kHierarchical, 4);
  std::vector<int64_t> starts;
  for (int i = 0; i < 4; ++i) {
    sim.Spawn(DeviceOp(sim, *policy, i, &starts));
  }
  sim.Spawn(GlobalOp(sim, *policy, &starts));
  sim.Run();
  ASSERT_EQ(starts.size(), 5u);
  // Device ops all start at 0; the global op waits for every read lock.
  EXPECT_EQ(starts[4], kHold.ns());
  EXPECT_EQ(sim.Now(), kHold * 2.0);
}

TEST(HierarchicalPolicyTest, DeviceOpsQueuedBehindGlobalAreParallelAfterIt) {
  Simulation sim;
  auto policy = MakePolicy(sim, PolicyKind::kHierarchical, 4);
  std::vector<int64_t> starts;
  sim.Spawn(GlobalOp(sim, *policy, &starts));
  for (int i = 0; i < 4; ++i) {
    sim.Spawn(DeviceOp(sim, *policy, i, &starts));
  }
  sim.Run();
  EXPECT_EQ(sim.Now(), kHold * 2.0);
  for (size_t i = 1; i < starts.size(); ++i) {
    EXPECT_EQ(starts[i], kHold.ns());
  }
}

TEST(HierarchicalPolicyTest, ContentionCountAggregatesParentAndChildren) {
  Simulation sim;
  auto policy = MakePolicy(sim, PolicyKind::kHierarchical, 2);
  std::vector<int64_t> starts;
  sim.Spawn(DeviceOp(sim, *policy, 0, &starts));
  sim.Spawn(DeviceOp(sim, *policy, 0, &starts));  // child-mutex contention
  sim.Spawn(GlobalOp(sim, *policy, &starts));     // parent rwlock contention
  sim.Run();
  EXPECT_GE(policy->contention_count(), 2u);
}

TEST(HierarchicalPolicyTest, AddChildIsIdempotent) {
  Simulation sim;
  HierarchicalLockPolicy policy(sim);
  policy.AddChild(3);
  policy.AddChild(3);
  policy.AddChild(1);
  std::vector<int64_t> starts;
  sim.Spawn(DeviceOp(sim, policy, 3, &starts));
  sim.Spawn(DeviceOp(sim, policy, 1, &starts));
  sim.Run();
  EXPECT_EQ(sim.Now(), kHold);
}

}  // namespace
}  // namespace fastiov
