#include "src/stats/summary.h"

#include <gtest/gtest.h>

#include "src/stats/table.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace fastiov {
namespace {

TEST(SummaryTest, EmptySummaryIsSafe) {
  Summary s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 0.0);
  EXPECT_DOUBLE_EQ(s.Max(), 0.0);
}

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.Count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.Stddev(), 2.0);
}

TEST(SummaryTest, PercentileExactOnSortedRanks) {
  Summary s;
  for (int i = 1; i <= 101; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 51.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 101.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 100.0);
}

TEST(SummaryTest, PercentileInterpolates) {
  Summary s;
  s.Add(0.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 2.5);
}

TEST(SummaryTest, PercentileSingleSample) {
  Summary s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 3.5);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 3.5);
}

TEST(SummaryTest, PercentileClampsOutOfRange) {
  Summary s;
  s.Add(1.0);
  s.Add(2.0);
  EXPECT_DOUBLE_EQ(s.Percentile(-5), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(150), 2.0);
}

TEST(SummaryTest, AddAfterPercentileInvalidatesCache) {
  Summary s;
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 1.0);
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 5.0);
}

TEST(SummaryTest, AddTimeConvertsToSeconds) {
  Summary s;
  s.AddTime(Milliseconds(1500));
  EXPECT_DOUBLE_EQ(s.Mean(), 1.5);
}

TEST(SummaryTest, MergeCombinesSamples) {
  Summary a;
  a.Add(1.0);
  a.Add(2.0);
  Summary b;
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 3u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
}

// --- streaming mode: the exact->histogram switchover ----------------------

TEST(SummaryStreamingTest, DefaultLimitIsHighEnoughForReferenceConfigs) {
  // Every reference experiment config stays below this, so their results are
  // byte-identical to the pre-streaming implementation by construction.
  EXPECT_GE(Summary::DefaultExactLimit(), 65536u);
  Summary s;
  EXPECT_EQ(s.exact_limit(), Summary::DefaultExactLimit());
}

TEST(SummaryStreamingTest, ActivatesOnlyAboveLimit) {
  Summary s(100);
  for (int i = 0; i < 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_FALSE(s.streaming());
  EXPECT_EQ(s.samples().size(), 100u);
  s.Add(100.0);
  EXPECT_TRUE(s.streaming());
  EXPECT_TRUE(s.samples().empty());  // retained samples folded and freed
  EXPECT_EQ(s.Count(), 101u);
}

TEST(SummaryStreamingTest, MomentsIdenticalAcrossModes) {
  Summary exact(Summary::kUnlimited);
  Summary streaming(64);
  for (int i = 0; i < 5000; ++i) {
    const double v = 0.5 + static_cast<double>(i % 997) * 0.01;
    exact.Add(v);
    streaming.Add(v);
  }
  ASSERT_TRUE(streaming.streaming());
  ASSERT_FALSE(exact.streaming());
  // Count/Sum/Min/Max are tracked incrementally on both paths: bit-identical.
  EXPECT_EQ(streaming.Count(), exact.Count());
  EXPECT_DOUBLE_EQ(streaming.Sum(), exact.Sum());
  EXPECT_DOUBLE_EQ(streaming.Min(), exact.Min());
  EXPECT_DOUBLE_EQ(streaming.Max(), exact.Max());
  EXPECT_DOUBLE_EQ(streaming.Mean(), exact.Mean());
  // Variance switches from two-pass to the moment formula: equal up to fp
  // rounding, not bitwise.
  EXPECT_NEAR(streaming.Variance(), exact.Variance(), 1e-9 * exact.Variance() + 1e-12);
}

TEST(SummaryStreamingTest, PercentilesWithinBinWidthOfExact) {
  Summary exact(Summary::kUnlimited);
  Summary streaming(128);
  for (int i = 0; i < 100000; ++i) {
    const double v = 0.001 + static_cast<double>((i * 7919) % 10007) * 0.003;
    exact.Add(v);
    streaming.Add(v);
  }
  ASSERT_TRUE(streaming.streaming());
  for (double p : {1.0, 25.0, 50.0, 90.0, 99.0, 99.9}) {
    const double e = exact.Percentile(p);
    const double s = streaming.Percentile(p);
    // ~32 sub-bins per octave => relative bin width ~2.2%; interpolation
    // within the bin keeps the error well inside it.
    EXPECT_NEAR(s, e, 0.03 * e) << "p" << p;
    EXPECT_GE(s, streaming.Min());
    EXPECT_LE(s, streaming.Max());
  }
  EXPECT_DOUBLE_EQ(streaming.Percentile(0), exact.Min());
  EXPECT_DOUBLE_EQ(streaming.Percentile(100), exact.Max());
}

TEST(SummaryStreamingTest, SwitchoverIsDeterministic) {
  // Same insertion order, same limit => the fold happens at the same point
  // and every statistic matches bit for bit.
  Summary a(50);
  Summary b(50);
  for (int i = 0; i < 1000; ++i) {
    const double v = 1.0 + static_cast<double>((i * 31) % 113);
    a.Add(v);
    b.Add(v);
  }
  EXPECT_DOUBLE_EQ(a.Percentile(50), b.Percentile(50));
  EXPECT_DOUBLE_EQ(a.Percentile(99), b.Percentile(99));
  EXPECT_DOUBLE_EQ(a.Mean(), b.Mean());
  EXPECT_DOUBLE_EQ(a.Variance(), b.Variance());
}

TEST(SummaryStreamingTest, MergeExactIntoStreaming) {
  Summary streaming(10);
  for (int i = 0; i < 100; ++i) {
    streaming.Add(static_cast<double>(i));
  }
  ASSERT_TRUE(streaming.streaming());
  Summary exact;
  exact.Add(1000.0);
  exact.Add(2000.0);
  streaming.Merge(exact);
  EXPECT_EQ(streaming.Count(), 102u);
  EXPECT_DOUBLE_EQ(streaming.Max(), 2000.0);
  EXPECT_DOUBLE_EQ(streaming.Min(), 0.0);
}

TEST(SummaryStreamingTest, MergeStreamingForcesStreaming) {
  Summary a;  // exact, default limit
  a.Add(1.0);
  a.Add(2.0);
  Summary b(10);
  for (int i = 0; i < 50; ++i) {
    b.Add(3.0);
  }
  ASSERT_TRUE(b.streaming());
  a.Merge(b);
  EXPECT_TRUE(a.streaming());
  EXPECT_EQ(a.Count(), 52u);
  EXPECT_DOUBLE_EQ(a.Min(), 1.0);
  EXPECT_DOUBLE_EQ(a.Max(), 3.0);
  EXPECT_DOUBLE_EQ(a.Sum(), 153.0);
}

TEST(SummaryStreamingTest, MergeOfExactSidesStaysExact) {
  Summary a;
  a.Add(1.0);
  Summary b;
  b.Add(2.0);
  a.Merge(b);
  EXPECT_FALSE(a.streaming());
  EXPECT_EQ(a.samples().size(), 2u);
}

TEST(SummaryStreamingTest, NegativeAndZeroSamples) {
  // The log-binned histogram handles sign via mirrored bins and zero via the
  // underflow catch-all; order statistics stay clamped to [min, max].
  Summary s(4);
  for (double v : {-5.0, -1.0, 0.0, 0.0, 1.0, 5.0, -2.5, 3.5}) {
    s.Add(v);
  }
  ASSERT_TRUE(s.streaming());
  EXPECT_DOUBLE_EQ(s.Min(), -5.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  EXPECT_GE(s.Percentile(50), s.Min());
  EXPECT_LE(s.Percentile(50), s.Max());
}

TEST(SummaryStreamingTest, CdfStreamingMonotoneAndEndsAtMax) {
  Summary s(100);
  for (int i = 0; i < 5000; ++i) {
    s.Add(1.0 + static_cast<double>(i % 37));
  }
  ASSERT_TRUE(s.streaming());
  const auto cdf = ComputeCdf(s, 32);
  ASSERT_FALSE(cdf.empty());
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 37.0);
}

TEST(SummaryStreamingTest, SortedSamplesCachedViewMatchesSortedCopy) {
  Summary s;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    s.Add(v);
  }
  const std::vector<double>& sorted = s.SortedSamples();
  ASSERT_EQ(sorted.size(), 5u);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  // Adding invalidates the cache; the re-sorted view includes the new sample.
  s.Add(0.5);
  EXPECT_DOUBLE_EQ(s.SortedSamples().front(), 0.5);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);   // bin 0
  h.Add(3.0);   // bin 1
  h.Add(9.99);  // bin 4
  h.Add(-5.0);  // clamps to bin 0
  h.Add(42.0);  // clamps to bin 4
  EXPECT_EQ(h.TotalCount(), 5u);
  EXPECT_EQ(h.BinCount(0), 2u);
  EXPECT_EQ(h.BinCount(1), 1u);
  EXPECT_EQ(h.BinCount(4), 2u);
  EXPECT_DOUBLE_EQ(h.BinLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BinHigh(0), 2.0);
  EXPECT_DOUBLE_EQ(h.BinLow(4), 8.0);
}

TEST(CdfTest, MonotoneAndEndsAtOne) {
  Summary s;
  for (int i = 0; i < 1000; ++i) {
    s.Add(static_cast<double>(i % 37));
  }
  const auto cdf = ComputeCdf(s, 32);
  ASSERT_FALSE(cdf.empty());
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 36.0);
}

TEST(CdfTest, EmptySummaryGivesEmptyCdf) {
  Summary s;
  EXPECT_TRUE(ComputeCdf(s).empty());
}

TEST(TableTest, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer-name", "2.5"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"x"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("| x"), std::string::npos);
}

TEST(FormatTest, Formatters) {
  EXPECT_EQ(FormatSeconds(16.204), "16.20");
  EXPECT_EQ(FormatPercent(0.481), "48.1%");
  EXPECT_EQ(FormatDouble(3.14159, 3), "3.142");
}

}  // namespace
}  // namespace fastiov
