#include "src/stats/summary.h"

#include <gtest/gtest.h>

#include "src/stats/table.h"

#include <sstream>

namespace fastiov {
namespace {

TEST(SummaryTest, EmptySummaryIsSafe) {
  Summary s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 0.0);
  EXPECT_DOUBLE_EQ(s.Max(), 0.0);
}

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.Count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.Stddev(), 2.0);
}

TEST(SummaryTest, PercentileExactOnSortedRanks) {
  Summary s;
  for (int i = 1; i <= 101; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 51.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 101.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 100.0);
}

TEST(SummaryTest, PercentileInterpolates) {
  Summary s;
  s.Add(0.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 2.5);
}

TEST(SummaryTest, PercentileSingleSample) {
  Summary s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 3.5);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 3.5);
}

TEST(SummaryTest, PercentileClampsOutOfRange) {
  Summary s;
  s.Add(1.0);
  s.Add(2.0);
  EXPECT_DOUBLE_EQ(s.Percentile(-5), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(150), 2.0);
}

TEST(SummaryTest, AddAfterPercentileInvalidatesCache) {
  Summary s;
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 1.0);
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 5.0);
}

TEST(SummaryTest, AddTimeConvertsToSeconds) {
  Summary s;
  s.AddTime(Milliseconds(1500));
  EXPECT_DOUBLE_EQ(s.Mean(), 1.5);
}

TEST(SummaryTest, MergeCombinesSamples) {
  Summary a;
  a.Add(1.0);
  a.Add(2.0);
  Summary b;
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 3u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);   // bin 0
  h.Add(3.0);   // bin 1
  h.Add(9.99);  // bin 4
  h.Add(-5.0);  // clamps to bin 0
  h.Add(42.0);  // clamps to bin 4
  EXPECT_EQ(h.TotalCount(), 5u);
  EXPECT_EQ(h.BinCount(0), 2u);
  EXPECT_EQ(h.BinCount(1), 1u);
  EXPECT_EQ(h.BinCount(4), 2u);
  EXPECT_DOUBLE_EQ(h.BinLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BinHigh(0), 2.0);
  EXPECT_DOUBLE_EQ(h.BinLow(4), 8.0);
}

TEST(CdfTest, MonotoneAndEndsAtOne) {
  Summary s;
  for (int i = 0; i < 1000; ++i) {
    s.Add(static_cast<double>(i % 37));
  }
  const auto cdf = ComputeCdf(s, 32);
  ASSERT_FALSE(cdf.empty());
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 36.0);
}

TEST(CdfTest, EmptySummaryGivesEmptyCdf) {
  Summary s;
  EXPECT_TRUE(ComputeCdf(s).empty());
}

TEST(TableTest, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer-name", "2.5"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"x"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("| x"), std::string::npos);
}

TEST(FormatTest, Formatters) {
  EXPECT_EQ(FormatSeconds(16.204), "16.20");
  EXPECT_EQ(FormatPercent(0.481), "48.1%");
  EXPECT_EQ(FormatDouble(3.14159, 3), "3.142");
}

}  // namespace
}  // namespace fastiov
