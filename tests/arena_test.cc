// Tests for the slab/arena pool behind coroutine frames, process state, and
// oversized event closures (src/simcore/arena.h): size-class recycling,
// upstream fallback for oversized blocks, the lazy pooling toggle, and the
// PoolAllocator adapter.
#include "src/simcore/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

namespace fastiov {
namespace {

using Stats = FramePool::Stats;

Stats Delta(const Stats& before) {
  const Stats now = FramePool::ThreadStats();
  Stats d;
  d.allocs = now.allocs - before.allocs;
  d.frees = now.frees - before.frees;
  d.pool_hits = now.pool_hits - before.pool_hits;
  d.slab_carves = now.slab_carves - before.slab_carves;
  d.upstream_allocs = now.upstream_allocs - before.upstream_allocs;
  d.slab_bytes = now.slab_bytes - before.slab_bytes;
  d.generation_resets = now.generation_resets - before.generation_resets;
  d.outstanding = now.outstanding;
  return d;
}

TEST(FramePoolTest, RecyclesFreedBlocksOfSameClass) {
  const Stats before = FramePool::ThreadStats();
  void* p = FramePool::Allocate(100);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 100);
  FramePool::Deallocate(p, 100);
  // Same size class (64-byte granularity): the freed block must come back.
  void* q = FramePool::Allocate(128);
  EXPECT_EQ(q, p);
  FramePool::Deallocate(q, 128);
  const Stats d = Delta(before);
  EXPECT_EQ(d.allocs, 2u);
  EXPECT_EQ(d.frees, 2u);
  EXPECT_GE(d.pool_hits, 1u);
}

TEST(FramePoolTest, SlabCarveServesManyNodes) {
  const Stats before = FramePool::ThreadStats();
  constexpr size_t kCount = FramePool::kSlabBytes / 256;  // one slab's worth
  std::vector<void*> blocks;
  blocks.reserve(kCount);
  for (size_t i = 0; i < kCount; ++i) {
    blocks.push_back(FramePool::Allocate(256));
  }
  const Stats mid = Delta(before);
  // At most two carves for a slab's worth of one class (the first carve may
  // land partway into a warm free list).
  EXPECT_LE(mid.slab_carves, 2u);
  for (void* p : blocks) {
    FramePool::Deallocate(p, 256);
  }
  const Stats d = Delta(before);
  EXPECT_EQ(d.allocs, kCount);
  EXPECT_EQ(d.frees, kCount);
}

TEST(FramePoolTest, OversizedAllocationsGoUpstream) {
  const Stats before = FramePool::ThreadStats();
  void* p = FramePool::Allocate(FramePool::kMaxPooledBytes + 1);
  ASSERT_NE(p, nullptr);
  FramePool::Deallocate(p, FramePool::kMaxPooledBytes + 1);
  const Stats d = Delta(before);
  EXPECT_EQ(d.upstream_allocs, 1u);
}

TEST(FramePoolTest, AlignmentSuitsMaxAlign) {
  for (size_t bytes : {1u, 64u, 65u, 500u, 2048u}) {
    void* p = FramePool::Allocate(bytes);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(std::max_align_t), 0u)
        << "bytes=" << bytes;
    FramePool::Deallocate(p, bytes);
  }
}

TEST(FramePoolTest, PoolingToggleIsAdoptedOnlyWhenIdle) {
  ASSERT_TRUE(FramePool::pooling_enabled());
  const Stats entry = FramePool::ThreadStats();
  // This test needs the thread at zero outstanding pooled allocations to
  // observe regime adoption; under a harness that holds live frames the
  // scenario is not constructible, so skip rather than misreport.
  if (entry.outstanding != 0) {
    GTEST_SKIP() << "thread has outstanding pooled allocations";
  }
  void* held = FramePool::Allocate(64);
  FramePool::SetPoolingEnabled(false);
  EXPECT_FALSE(FramePool::pooling_enabled());
  // Outstanding allocation: the thread must stay in the pooled regime so
  // `held` is freed by the regime that produced it.
  const Stats before_second = FramePool::ThreadStats();
  void* second = FramePool::Allocate(64);
  EXPECT_EQ(Delta(before_second).upstream_allocs, 0u);
  FramePool::Deallocate(second, 64);
  FramePool::Deallocate(held, 64);
  // Idle now: the next allocation adopts the disabled regime and goes
  // upstream.
  const Stats before_third = FramePool::ThreadStats();
  void* third = FramePool::Allocate(64);
  EXPECT_EQ(Delta(before_third).upstream_allocs, 1u);
  FramePool::Deallocate(third, 64);
  FramePool::SetPoolingEnabled(true);
  // Re-adopt the enabled regime so later tests see a pooled thread.
  FramePool::Deallocate(FramePool::Allocate(64), 64);
}

TEST(FramePoolTest, GenerationResetRestoresSequentialLayout) {
  const Stats entry = FramePool::ThreadStats();
  // The reset fires when the thread reaches zero outstanding allocations;
  // under a harness holding live frames the scenario is not constructible.
  if (entry.outstanding != 0) {
    GTEST_SKIP() << "thread has outstanding pooled allocations";
  }
  std::vector<void*> first;
  for (int i = 0; i < 8; ++i) {
    first.push_back(FramePool::Allocate(64));
  }
  // Freeing in allocation order builds a reversed LIFO free list; without
  // the generation reset the next round would hand the blocks back in
  // reverse. The reset rewinds the slab chain instead, so the second
  // generation must see the exact same addresses in the same order.
  for (void* p : first) {
    FramePool::Deallocate(p, 64);
  }
  EXPECT_GE(Delta(entry).generation_resets, 1u);
  std::vector<void*> second;
  for (int i = 0; i < 8; ++i) {
    second.push_back(FramePool::Allocate(64));
  }
  EXPECT_EQ(first, second);
  for (void* p : second) {
    FramePool::Deallocate(p, 64);
  }
}

TEST(PoolAllocatorTest, WorksWithAllocateShared) {
  struct Payload {
    uint64_t a = 1;
    uint64_t b = 2;
  };
  const Stats before = FramePool::ThreadStats();
  {
    auto sp = std::allocate_shared<Payload>(PoolAllocator<Payload>());
    EXPECT_EQ(sp->a + sp->b, 3u);
  }
  const Stats d = Delta(before);
  EXPECT_GE(d.allocs, 1u);
  EXPECT_EQ(d.allocs, d.frees);
}

TEST(PoolAllocatorTest, AllInstancesCompareEqual) {
  PoolAllocator<int> a;
  PoolAllocator<double> b;
  EXPECT_TRUE(a == PoolAllocator<int>(b));
  EXPECT_FALSE(a != PoolAllocator<int>(b));
}

}  // namespace
}  // namespace fastiov
