// End-to-end pipeline tests: every baseline stack boots containers to
// readiness with zero correctness violations; structural properties of the
// timeline hold; failure injection reproduces the §4.3.2 crash scenarios.
#include "src/container/runtime.h"

#include <gtest/gtest.h>

#include "src/experiments/startup_experiment.h"

namespace fastiov {
namespace {

struct PipelineEnv {
  Simulation sim;
  Host host;
  ContainerRuntime runtime;

  explicit PipelineEnv(const StackConfig& config, uint64_t seed = 7)
      : sim(seed), host(sim, HostSpec{}, CostModel{}, config), runtime(host) {}

  void StartContainers(int n, const ServerlessApp* app = nullptr) {
    auto root = [](PipelineEnv* env, int count, const ServerlessApp* a) -> Task {
      co_await env->host.PrepareSharedImage();
      if (env->host.config().cni == CniKind::kVanillaFixed ||
          env->host.config().cni == CniKind::kFastIov) {
        env->host.PreBindVfsToVfio();
      }
      if (env->host.config().decoupled_zeroing) {
        env->host.fastiovd().StartBackgroundZeroer();
      }
      std::vector<Process> ps;
      for (int i = 0; i < count; ++i) {
        ps.push_back(env->sim.Spawn(env->runtime.StartContainer(a)));
      }
      co_await WaitAll(std::move(ps));
      env->host.fastiovd().StopBackgroundZeroer();
    };
    sim.Spawn(root(this, n, app));
    sim.Run();
  }
};

class AllStacksTest : public ::testing::TestWithParam<StackConfig> {};

TEST_P(AllStacksTest, ContainersReachReadyWithoutViolations) {
  PipelineEnv env(GetParam());
  env.StartContainers(8);
  ASSERT_EQ(env.runtime.instances().size(), 8u);
  for (const auto& inst : env.runtime.instances()) {
    EXPECT_TRUE(inst->ready);
    EXPECT_GT(inst->vm->ept_faults(), 0u);
  }
  EXPECT_EQ(env.runtime.TotalResidueReads(), 0u);
  EXPECT_EQ(env.runtime.TotalCorruptions(), 0u);
  EXPECT_EQ(env.host.timeline().StartupSummary().Count(), 8u);
  EXPECT_GT(env.host.timeline().StartupSummary().Min(), 0.0);
}

TEST_P(AllStacksTest, TaskCompletionRecordedWithApp) {
  const ServerlessApp app = ServerlessApp::Image();
  PipelineEnv env(GetParam());
  env.StartContainers(4, &app);
  const Summary completion = env.host.timeline().TaskCompletionSummary();
  ASSERT_EQ(completion.Count(), 4u);
  // Completion strictly after readiness.
  EXPECT_GT(completion.Mean(), env.host.timeline().StartupSummary().Mean());
  EXPECT_EQ(env.runtime.TotalResidueReads(), 0u);
  EXPECT_EQ(env.runtime.TotalCorruptions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Baselines, AllStacksTest,
    ::testing::Values(StackConfig::NoNetwork(), StackConfig::Vanilla(),
                      StackConfig::VanillaUnfixed(), StackConfig::FastIov(),
                      StackConfig::FastIovWithout('L'), StackConfig::FastIovWithout('A'),
                      StackConfig::FastIovWithout('S'), StackConfig::FastIovWithout('D'),
                      StackConfig::PreZero(0.5), StackConfig::Ipvtap()),
    [](const auto& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

TEST(PipelineTest, SriovStacksRecordVfSpans) {
  PipelineEnv env(StackConfig::Vanilla());
  env.StartContainers(4);
  for (const auto& inst : env.runtime.instances()) {
    const auto& lane = env.host.timeline().Container(inst->timeline_id);
    EXPECT_GT(lane.StepTime(kStepVfioDev), SimTime::Zero());
    EXPECT_GT(lane.StepTime(kStepDmaRam), SimTime::Zero());
    EXPECT_GT(lane.StepTime(kStepDmaImage), SimTime::Zero());
    EXPECT_GT(lane.StepTime(kStepVfDriver), SimTime::Zero());
    EXPECT_GT(lane.StepTime(kStepCgroup), SimTime::Zero());
    EXPECT_GT(lane.StepTime(kStepVirtioFs), SimTime::Zero());
  }
}

TEST(PipelineTest, NoNetworkStackHasNoVfWork) {
  PipelineEnv env(StackConfig::NoNetwork());
  env.StartContainers(4);
  for (const auto& inst : env.runtime.instances()) {
    EXPECT_EQ(inst->vf, nullptr);
    EXPECT_EQ(inst->driver, nullptr);
    EXPECT_EQ(VfRelatedTime(env.host.timeline().Container(inst->timeline_id)),
              SimTime::Zero());
  }
}

TEST(PipelineTest, IpvtapRecordsAddCniSpan) {
  PipelineEnv env(StackConfig::Ipvtap());
  env.StartContainers(4);
  for (const auto& inst : env.runtime.instances()) {
    const auto& lane = env.host.timeline().Container(inst->timeline_id);
    EXPECT_GT(lane.StepTime(kStepAddCni), SimTime::Zero());
    EXPECT_EQ(lane.StepTime(kStepVfioDev), SimTime::Zero());
  }
}

TEST(PipelineTest, FastIovVfDriverSpanIsOffCriticalPath) {
  PipelineEnv env(StackConfig::FastIov());
  env.StartContainers(4);
  for (const auto& inst : env.runtime.instances()) {
    const auto& lane = env.host.timeline().Container(inst->timeline_id);
    // Critical-path accounting excludes the async span...
    EXPECT_EQ(lane.StepTime(kStepVfDriver), SimTime::Zero());
    // ...but the span itself was recorded.
    bool saw_async_span = false;
    for (const Span& span : lane.spans) {
      if (lane.StepNameOf(span) == kStepVfDriver) {
        EXPECT_TRUE(span.off_critical_path);
        saw_async_span = true;
      }
    }
    EXPECT_TRUE(saw_async_span);
  }
}

TEST(PipelineTest, AsyncNetworkInitEventuallyBringsInterfaceUp) {
  PipelineEnv env(StackConfig::FastIov());
  env.StartContainers(4);
  // sim.Run() drains everything, including the async network processes.
  for (const auto& inst : env.runtime.instances()) {
    ASSERT_NE(inst->driver, nullptr);
    EXPECT_TRUE(inst->driver->interface_up());
    EXPECT_FALSE(inst->vf->mac().empty());
  }
}

TEST(PipelineTest, SyncStackHasInterfaceUpAtReady) {
  PipelineEnv env(StackConfig::Vanilla());
  env.StartContainers(4);
  for (const auto& inst : env.runtime.instances()) {
    EXPECT_TRUE(inst->driver->interface_up());
  }
}

TEST(PipelineTest, VfsAssignedUniquely) {
  PipelineEnv env(StackConfig::FastIov());
  env.StartContainers(8);
  std::set<int> vf_indices;
  for (const auto& inst : env.runtime.instances()) {
    ASSERT_NE(inst->vf, nullptr);
    EXPECT_EQ(inst->vf->assigned_pid(), inst->pid);
    vf_indices.insert(inst->vf->vf_index());
  }
  EXPECT_EQ(vf_indices.size(), 8u);
}

TEST(PipelineTest, DmaMappedRamIsFullyPopulatedAndPinned) {
  PipelineEnv env(StackConfig::Vanilla());
  env.StartContainers(2);
  for (const auto& inst : env.runtime.instances()) {
    GuestMemoryRegion* ram = inst->vm->FindRegion("ram");
    ASSERT_NE(ram, nullptr);
    EXPECT_TRUE(ram->dma_mapped);
    EXPECT_TRUE(ram->frames.fully_populated());
    for (PageId id : ram->frames.Flatten()) {
      ASSERT_NE(id, kInvalidPage);
      EXPECT_GE(env.host.pmem().frame(id).pin_count, 1);
    }
  }
}

TEST(PipelineTest, SkipImageSharesPageCacheFrames) {
  PipelineEnv env(StackConfig::FastIov());
  env.StartContainers(3);
  const auto& shared = env.host.shared_image_frames();
  ASSERT_FALSE(shared.empty());
  for (const auto& inst : env.runtime.instances()) {
    GuestMemoryRegion* image = inst->vm->FindRegion("image");
    EXPECT_TRUE(image->shared_backing);
    EXPECT_FALSE(image->dma_mapped);
    EXPECT_EQ(image->frames.Flatten(), shared);
  }
}

TEST(PipelineTest, VanillaImageIsPrivatelyMapped) {
  PipelineEnv env(StackConfig::Vanilla());
  env.StartContainers(2);
  GuestMemoryRegion* a = env.runtime.instances()[0]->vm->FindRegion("image");
  GuestMemoryRegion* b = env.runtime.instances()[1]->vm->FindRegion("image");
  EXPECT_TRUE(a->dma_mapped);
  EXPECT_FALSE(a->shared_backing);
  EXPECT_NE(a->frames.Flatten(), b->frames.Flatten());
}

TEST(PipelineTest, DisablingInstantZeroListDestroysKernel) {
  // Failure injection for §4.3.2 exception 1: without the instant-zeroing
  // list, lazy zeroing scrubs the hypervisor-written kernel on first fetch.
  StackConfig broken = StackConfig::FastIov();
  broken.instant_zero_list = false;
  PipelineEnv env(broken);
  env.StartContainers(2);
  EXPECT_GT(env.runtime.TotalCorruptions(), 0u);
}

TEST(PipelineTest, DisablingProactiveFaultsCorruptsVirtioData) {
  StackConfig broken = StackConfig::FastIov();
  broken.proactive_virtio_faults = false;
  PipelineEnv env(broken);
  env.StartContainers(2);
  EXPECT_GT(env.runtime.TotalCorruptions(), 0u);
}

TEST(PipelineTest, UnfixedCniMuchSlowerThanFixed) {
  PipelineEnv unfixed(StackConfig::VanillaUnfixed());
  unfixed.StartContainers(64);
  PipelineEnv fixed(StackConfig::Vanilla());
  fixed.StartContainers(64);
  // §5: the bind/rebind serialization costs minutes at 200; at 64 it must
  // already be a large multiple of the fixed CNI's startup.
  EXPECT_GT(unfixed.host.timeline().StartupSummary().Mean(),
            2.0 * fixed.host.timeline().StartupSummary().Mean());
}

TEST(PipelineTest, LazyZeroTableDrainedAfterStartup) {
  PipelineEnv env(StackConfig::FastIov());
  env.StartContainers(4);
  // Faults plus the background scrubber eventually clear every deferred
  // page; nothing may linger as unscrubbed residue in a mapped region.
  EXPECT_EQ(env.host.fastiovd().total_pending_pages(), 0u);
  EXPECT_GT(env.host.fastiovd().fault_zeroed_pages(), 0u);
  EXPECT_GT(env.host.fastiovd().background_zeroed_pages(), 0u);
}

}  // namespace
}  // namespace fastiov
