// Unit tests for the pending-event queues (src/simcore/event_queue.h): the
// (when, seq) dispatch contract, FIFO tie-break stability, the calendar
// queue's tier routing (immediate lane / due heap / ring / overflow), window
// advancement with bucket-width adaptation, and randomized cross-checking of
// CalendarQueue against EventHeap under simulator-shaped traffic.
#include "src/simcore/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <utility>
#include <vector>

#include "src/simcore/time.h"

namespace fastiov {
namespace {

QueuedEvent Ev(int64_t when_ns, uint64_t seq) {
  return QueuedEvent{Nanoseconds(when_ns), seq, EventAction{}};
}

// Pops everything, returning (when_ns, seq) pairs in dispatch order.
template <typename Queue>
std::vector<std::pair<int64_t, uint64_t>> Drain(Queue& q) {
  std::vector<std::pair<int64_t, uint64_t>> out;
  while (!q.Empty()) {
    QueuedEvent ev = q.PopTop();
    out.emplace_back(ev.when.ns(), ev.seq);
  }
  return out;
}

TEST(EventHeapTest, PopsInTimeOrder) {
  EventHeap h;
  h.Push(Ev(300, 0));
  h.Push(Ev(100, 1));
  h.Push(Ev(200, 2));
  const auto order = Drain(h);
  const std::vector<std::pair<int64_t, uint64_t>> want = {{100, 1}, {200, 2}, {300, 0}};
  EXPECT_EQ(order, want);
}

TEST(EventHeapTest, TiesBreakInSchedulingOrder) {
  EventHeap h;
  for (uint64_t seq = 0; seq < 64; ++seq) {
    h.Push(Ev(1000, seq));
  }
  const auto order = Drain(h);
  ASSERT_EQ(order.size(), 64u);
  for (uint64_t seq = 0; seq < 64; ++seq) {
    EXPECT_EQ(order[seq].second, seq);
  }
}

TEST(CalendarQueueTest, TiesBreakInSchedulingOrder) {
  CalendarQueue q;
  for (uint64_t seq = 0; seq < 64; ++seq) {
    q.Push(Ev(1000, seq));
  }
  const auto order = Drain(q);
  ASSERT_EQ(order.size(), 64u);
  for (uint64_t seq = 0; seq < 64; ++seq) {
    EXPECT_EQ(order[seq].second, seq);
  }
}

TEST(CalendarQueueTest, ImmediateLanePreservesFifoAcrossInterleavedPops) {
  CalendarQueue q;
  q.Push(Ev(100, 0));
  QueuedEvent first = q.PopTop();
  EXPECT_EQ(first.seq, 0u);
  // Wakeups at the already-dispatched timestamp land in the immediate lane
  // and must come out in scheduling order, ahead of anything later.
  q.Push(Ev(100, 1));
  q.Push(Ev(100, 2));
  q.Push(Ev(250, 3));
  q.Push(Ev(100, 4));
  const auto order = Drain(q);
  const std::vector<std::pair<int64_t, uint64_t>> want = {
      {100, 1}, {100, 2}, {100, 4}, {250, 3}};
  EXPECT_EQ(order, want);
  EXPECT_GE(q.stats().immediate_pushes, 3u);
}

TEST(CalendarQueueTest, ImmediateLaneGrowsPastInitialCapacity) {
  CalendarQueue q;
  q.Push(Ev(10, 0));
  (void)q.PopTop();
  // Well past the 64-slot initial ring capacity, forcing in-place growth
  // while the lane holds live entries.
  for (uint64_t seq = 1; seq <= 500; ++seq) {
    q.Push(Ev(10, seq));
  }
  const auto order = Drain(q);
  ASSERT_EQ(order.size(), 500u);
  for (uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(order[i].second, i + 1);
  }
}

TEST(CalendarQueueTest, FarFutureEventsRouteThroughOverflow) {
  CalendarQueue q;
  // Spread far beyond any initial window so most pushes overflow, then make
  // sure the drain is still globally ordered and every window advance keeps
  // the events intact.
  std::vector<std::pair<int64_t, uint64_t>> want;
  uint64_t seq = 0;
  for (int64_t ms = 1000; ms >= 1; --ms) {
    const int64_t ns = ms * 1'000'000;
    q.Push(Ev(ns, seq));
    want.emplace_back(ns, seq);
    ++seq;
  }
  EXPECT_GT(q.stats().overflow_pushes, 0u);
  std::sort(want.begin(), want.end());
  EXPECT_EQ(Drain(q), want);
  EXPECT_GT(q.stats().windows_advanced, 0u);
}

TEST(CalendarQueueTest, BucketWidthAdaptsToSparseTraffic) {
  CalendarQueue q;
  const int64_t initial = q.stats().bucket_ns;
  // A few events spread over seconds: each window dispatches almost nothing,
  // so the bucket width must grow toward the event spacing.
  uint64_t seq = 0;
  for (int64_t s = 1; s <= 40; ++s) {
    q.Push(Ev(s * 1'000'000'000, seq++));
  }
  (void)Drain(q);
  EXPECT_GT(q.stats().bucket_ns, initial);
}

TEST(CalendarQueueTest, BucketWidthAdaptsToDenseTraffic) {
  CalendarQueue q;
  const int64_t initial = q.stats().bucket_ns;
  // Tens of thousands of events packed into the first window: it dispatches
  // far more events than it has buckets, so when the window next advances
  // (onto the far-future timer) the width must shrink. Adaptation happens at
  // window boundaries, hence the overflow event to force one.
  uint64_t seq = 0;
  for (int64_t t = 0; t < 50'000; ++t) {
    q.Push(Ev(t, seq++));
  }
  q.Push(Ev(1'000'000'000, seq++));
  (void)Drain(q);
  EXPECT_LT(q.stats().bucket_ns, initial);
}

TEST(CalendarQueueTest, DenseInWindowTrafficTriggersRebuild) {
  CalendarQueue q;
  const int64_t initial = q.stats().bucket_ns;
  // Thousands of events within the first bucket and never any overflow: the
  // window boundary is never crossed, so only the due-occupancy rebuild can
  // adapt. Without it this degenerates into a plain binary heap.
  uint64_t seq = 0;
  std::vector<std::pair<int64_t, uint64_t>> want;
  for (int64_t t = 0; t < 4000; ++t) {
    const int64_t ns = (t * 37) % 4001;  // dense, shuffled, all < initial width
    q.Push(Ev(ns, seq));
    want.emplace_back(ns, seq);
    ++seq;
  }
  EXPECT_GT(q.stats().rebuilds, 0u);
  EXPECT_LT(q.stats().bucket_ns, initial);
  std::sort(want.begin(), want.end());
  EXPECT_EQ(Drain(q), want);
}

// Adversarial pattern: the entire workload lands on one far-future
// timestamp, far beyond the initial window. Every push takes the overflow
// rung, and when the window finally jumps there the rung must hand the
// pileup back in FIFO order — cross-checked against the heap reference.
TEST(CalendarQueueTest, AllFarFutureSingleTimestampDrainsThroughOverflowRung) {
  CalendarQueue cal;
  EventHeap heap;
  const int64_t far = int64_t{5} * 1'000'000'000;
  for (uint64_t seq = 0; seq < 5000; ++seq) {
    cal.Push(Ev(far, seq));
    heap.Push(Ev(far, seq));
  }
  EXPECT_EQ(cal.stats().overflow_pushes, 5000u);
  EXPECT_EQ(Drain(cal), Drain(heap));
  EXPECT_GT(cal.stats().windows_advanced, 0u);
}

// Adversarial pattern: everything piles into a handful of nanoseconds — a
// single bucket at the initial width — while pops interleave with pushes, so
// the due-occupancy rebuild fires mid-window with live events in flight. The
// rebuild must not reorder, duplicate, or drop anything relative to the heap.
TEST(CalendarQueueTest, SingleBucketPileupWithInterleavedPopsMatchesHeap) {
  CalendarQueue cal;
  EventHeap heap;
  std::mt19937_64 rng(0x9111e09);
  uint64_t seq = 0;
  int64_t now_ns = 0;
  size_t pending = 0;
  for (int op = 0; op < 30'000; ++op) {
    if (pending == 0 || (rng() % 100) < 60) {
      const int64_t when = now_ns + static_cast<int64_t>(rng() % 64);
      cal.Push(Ev(when, seq));
      heap.Push(Ev(when, seq));
      ++seq;
      ++pending;
    } else {
      const QueuedEvent a = cal.PopTop();
      const QueuedEvent b = heap.PopTop();
      ASSERT_EQ(a.when.ns(), b.when.ns()) << "op " << op;
      ASSERT_EQ(a.seq, b.seq) << "op " << op;
      now_ns = b.when.ns();
      --pending;
    }
  }
  EXPECT_EQ(Drain(cal), Drain(heap));
  EXPECT_GT(cal.stats().rebuilds, 0u);
}

// Adversarial pattern: timestamps pinned to exact multiples of the bucket
// width — the classic off-by-one hazard when the window advances or the
// width is rebuilt mid-drain. An event exactly at window_end must never be
// dispatched a window early nor lost by the advance; pushed in descending
// order to stress routing into past-relative positions of the ring.
TEST(CalendarQueueTest, WindowBoundaryTimestampsSurviveAdvancesAndRebuilds) {
  CalendarQueue cal;
  EventHeap heap;
  const int64_t width = cal.stats().bucket_ns;
  ASSERT_GT(width, 0);
  uint64_t seq = 0;
  for (int64_t k = 256; k >= 0; --k) {
    for (int rep = 0; rep < 4; ++rep) {
      cal.Push(Ev(k * width, seq));
      heap.Push(Ev(k * width, seq));
      ++seq;
    }
  }
  // One far-future timer drags the drain across many window advances.
  cal.Push(Ev(width * 100'000, seq));
  heap.Push(Ev(width * 100'000, seq));
  EXPECT_EQ(Drain(cal), Drain(heap));
  EXPECT_GT(cal.stats().windows_advanced, 0u);
}

TEST(CalendarQueueTest, ReserveKeepsLiveImmediateEntries) {
  CalendarQueue q;
  q.Push(Ev(5, 0));
  (void)q.PopTop();
  for (uint64_t seq = 1; seq <= 10; ++seq) {
    q.Push(Ev(5, seq));
  }
  q.Reserve(2048);
  const auto order = Drain(q);
  ASSERT_EQ(order.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i].second, i + 1);
  }
}

// Drives CalendarQueue and EventHeap with an identical, simulator-shaped
// operation stream (pushes never target before the last dispatched
// timestamp, exactly the Simulation::ScheduleAction contract) and demands
// identical dispatch sequences.
TEST(CalendarQueueTest, RandomizedMatchesHeapReference) {
  for (uint64_t trial = 0; trial < 8; ++trial) {
    std::mt19937_64 rng(0x5eed0000 + trial);
    CalendarQueue cal;
    EventHeap heap;
    uint64_t seq = 0;
    int64_t now_ns = 0;
    size_t pending = 0;
    std::vector<std::pair<int64_t, uint64_t>> cal_order;
    std::vector<std::pair<int64_t, uint64_t>> heap_order;
    for (int op = 0; op < 20'000; ++op) {
      const bool push = pending == 0 || (rng() % 100) < 55;
      if (push) {
        // Mix of same-timestamp wakeups, near-future handoffs, bucket-scale
        // delays, and far-future timers (overflow territory).
        int64_t delta = 0;
        switch (rng() % 4) {
          case 0: delta = 0; break;
          case 1: delta = static_cast<int64_t>(rng() % 512); break;
          case 2: delta = static_cast<int64_t>(rng() % 2'000'000); break;
          default: delta = static_cast<int64_t>(rng() % 40'000'000'000); break;
        }
        cal.Push(Ev(now_ns + delta, seq));
        heap.Push(Ev(now_ns + delta, seq));
        ++seq;
        ++pending;
      } else {
        const QueuedEvent a = cal.PopTop();
        const QueuedEvent b = heap.PopTop();
        cal_order.emplace_back(a.when.ns(), a.seq);
        heap_order.emplace_back(b.when.ns(), b.seq);
        now_ns = b.when.ns();
        --pending;
      }
    }
    while (!heap.Empty()) {
      const QueuedEvent a = cal.PopTop();
      const QueuedEvent b = heap.PopTop();
      cal_order.emplace_back(a.when.ns(), a.seq);
      heap_order.emplace_back(b.when.ns(), b.seq);
    }
    EXPECT_TRUE(cal.Empty());
    ASSERT_EQ(cal_order, heap_order) << "trial " << trial;
  }
}

TEST(EventQueueFacadeTest, PolicySelectsImplementation) {
  EventQueue cal(SchedulerPolicy::kCalendar);
  EXPECT_EQ(cal.policy(), SchedulerPolicy::kCalendar);
  EXPECT_NE(cal.calendar_stats(), nullptr);

  EventQueue heap(SchedulerPolicy::kHeap);
  EXPECT_EQ(heap.policy(), SchedulerPolicy::kHeap);
  EXPECT_EQ(heap.calendar_stats(), nullptr);

  for (auto* q : {&cal, &heap}) {
    q->Push(Ev(20, 0));
    q->Push(Ev(10, 1));
    EXPECT_EQ(q->Size(), 2u);
    EXPECT_EQ(q->NextTime().ns(), 10);
    EXPECT_EQ(q->PopTop().seq, 1u);
    EXPECT_EQ(q->PopTop().seq, 0u);
    EXPECT_TRUE(q->Empty());
  }
}

TEST(EventQueueFacadeTest, DefaultPolicyIsProcessWide) {
  const SchedulerPolicy saved = DefaultSchedulerPolicy();
  SetDefaultSchedulerPolicy(SchedulerPolicy::kHeap);
  EXPECT_EQ(DefaultSchedulerPolicy(), SchedulerPolicy::kHeap);
  SetDefaultSchedulerPolicy(saved);
  EXPECT_EQ(DefaultSchedulerPolicy(), saved);
  EXPECT_STREQ(SchedulerPolicyName(SchedulerPolicy::kCalendar), "calendar");
  EXPECT_STREQ(SchedulerPolicyName(SchedulerPolicy::kHeap), "heap");
}

}  // namespace
}  // namespace fastiov
