// Experiment-level properties: the paper's headline claims hold as
// qualitative invariants of the simulation at reduced scale (the bench
// binaries regenerate the full-scale numbers).
#include "src/experiments/startup_experiment.h"

#include <gtest/gtest.h>

namespace fastiov {
namespace {

ExperimentOptions SmallRun(int concurrency = 50, uint64_t seed = 42) {
  ExperimentOptions o;
  o.concurrency = concurrency;
  o.seed = seed;
  return o;
}

TEST(ExperimentTest, DeterministicForSameSeed) {
  const ExperimentResult a = RunStartupExperiment(StackConfig::Vanilla(), SmallRun(30, 5));
  const ExperimentResult b = RunStartupExperiment(StackConfig::Vanilla(), SmallRun(30, 5));
  ASSERT_EQ(a.startup.Count(), b.startup.Count());
  EXPECT_EQ(a.startup.samples(), b.startup.samples());
  EXPECT_EQ(a.pages_zeroed, b.pages_zeroed);
}

TEST(ExperimentTest, DifferentSeedsDiffer) {
  const ExperimentResult a = RunStartupExperiment(StackConfig::Vanilla(), SmallRun(30, 5));
  const ExperimentResult b = RunStartupExperiment(StackConfig::Vanilla(), SmallRun(30, 6));
  EXPECT_NE(a.startup.samples(), b.startup.samples());
}

TEST(ExperimentTest, FastIovBeatsVanillaOnAverageAndTail) {
  const ExperimentResult vanilla = RunStartupExperiment(StackConfig::Vanilla(), SmallRun());
  const ExperimentResult fast = RunStartupExperiment(StackConfig::FastIov(), SmallRun());
  EXPECT_LT(fast.startup.Mean(), vanilla.startup.Mean());
  EXPECT_LT(fast.startup.Percentile(99.0), vanilla.startup.Percentile(99.0));
}

TEST(ExperimentTest, NoNetIsTheFloor) {
  const ExperimentResult nonet = RunStartupExperiment(StackConfig::NoNetwork(), SmallRun());
  const ExperimentResult fast = RunStartupExperiment(StackConfig::FastIov(), SmallRun());
  const ExperimentResult vanilla = RunStartupExperiment(StackConfig::Vanilla(), SmallRun());
  EXPECT_LT(nonet.startup.Mean(), fast.startup.Mean());
  EXPECT_LT(fast.startup.Mean(), vanilla.startup.Mean());
}

TEST(ExperimentTest, EveryVariantSitsBetweenFastIovAndVanilla) {
  const ExperimentOptions o = SmallRun(100);
  const double vanilla = RunStartupExperiment(StackConfig::Vanilla(), o).startup.Mean();
  const double fast = RunStartupExperiment(StackConfig::FastIov(), o).startup.Mean();
  for (char removed : {'L', 'A', 'S', 'D'}) {
    const double v =
        RunStartupExperiment(StackConfig::FastIovWithout(removed), o).startup.Mean();
    EXPECT_GT(v, fast) << "removing " << removed << " must hurt";
    EXPECT_LT(v, vanilla * 1.05) << "variant " << removed << " must not exceed vanilla";
  }
}

TEST(ExperimentTest, VfRelatedTimeCollapsesUnderFastIov) {
  const ExperimentOptions o = SmallRun(100);
  const ExperimentResult vanilla = RunStartupExperiment(StackConfig::Vanilla(), o);
  const ExperimentResult fast = RunStartupExperiment(StackConfig::FastIov(), o);
  // Headline claim: ~96% reduction of VF-related time; require >= 85% at
  // this reduced concurrency.
  EXPECT_LT(fast.vf_related.Mean(), 0.15 * vanilla.vf_related.Mean());
}

TEST(ExperimentTest, PreZeroingHelpsProportionally) {
  const ExperimentOptions o = SmallRun(100);
  const double vanilla = RunStartupExperiment(StackConfig::Vanilla(), o).startup.Mean();
  const double pre50 = RunStartupExperiment(StackConfig::PreZero(0.5), o).startup.Mean();
  const double pre100 = RunStartupExperiment(StackConfig::PreZero(1.0), o).startup.Mean();
  EXPECT_LT(pre100, vanilla);
  EXPECT_LE(pre100, pre50 * 1.02);  // more pre-zeroing never hurts (2% noise)
  // But pre-zeroing alone cannot reach FastIOV (§6.2, third conclusion).
  const double fast = RunStartupExperiment(StackConfig::FastIov(), o).startup.Mean();
  EXPECT_LT(fast, pre100);
}

TEST(ExperimentTest, LockContentionVanishesWithDecomposition) {
  const ExperimentOptions o = SmallRun(100);
  const ExperimentResult vanilla = RunStartupExperiment(StackConfig::Vanilla(), o);
  const ExperimentResult fast = RunStartupExperiment(StackConfig::FastIov(), o);
  EXPECT_GT(vanilla.devset_lock_contention, 50u);
  EXPECT_LT(fast.devset_lock_contention, vanilla.devset_lock_contention / 10);
}

TEST(ExperimentTest, DecoupledZeroingMovesWorkOffTheMapPath) {
  const ExperimentOptions o = SmallRun(50);
  const ExperimentResult fast = RunStartupExperiment(StackConfig::FastIov(), o);
  EXPECT_GT(fast.fault_zeroed_pages, 0u);
  EXPECT_GT(fast.background_zeroed_pages, 0u);
  const ExperimentResult vanilla = RunStartupExperiment(StackConfig::Vanilla(), o);
  EXPECT_EQ(vanilla.fault_zeroed_pages, 0u);
  EXPECT_EQ(vanilla.background_zeroed_pages, 0u);
}

// Security/correctness sweep: no configuration in the baseline matrix may
// ever leak residue to a guest or destroy live data.
class NoViolationsTest : public ::testing::TestWithParam<StackConfig> {};

TEST_P(NoViolationsTest, ZeroResidueReadsAndCorruptions) {
  const ExperimentResult r = RunStartupExperiment(GetParam(), SmallRun(40));
  EXPECT_EQ(r.residue_reads, 0u);
  EXPECT_EQ(r.corruptions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, NoViolationsTest,
    ::testing::Values(StackConfig::NoNetwork(), StackConfig::Vanilla(),
                      StackConfig::VanillaUnfixed(), StackConfig::FastIov(),
                      StackConfig::FastIovWithout('L'), StackConfig::FastIovWithout('A'),
                      StackConfig::FastIovWithout('S'), StackConfig::FastIovWithout('D'),
                      StackConfig::PreZero(0.1), StackConfig::PreZero(0.5),
                      StackConfig::PreZero(1.0), StackConfig::Ipvtap()),
    [](const auto& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

// Concurrency scaling (Fig. 13a shape): startup grows with concurrency and
// FastIOV's advantage widens.
class ConcurrencyScalingTest : public ::testing::TestWithParam<int> {};

TEST_P(ConcurrencyScalingTest, FastIovWinsAtEveryConcurrency) {
  const int n = GetParam();
  const ExperimentResult vanilla =
      RunStartupExperiment(StackConfig::Vanilla(), SmallRun(n));
  const ExperimentResult fast = RunStartupExperiment(StackConfig::FastIov(), SmallRun(n));
  EXPECT_LT(fast.startup.Mean(), vanilla.startup.Mean());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConcurrencyScalingTest, ::testing::Values(10, 50, 100, 200));

TEST(ExperimentTest, VanillaStartupGrowsWithConcurrency) {
  const double at10 = RunStartupExperiment(StackConfig::Vanilla(), SmallRun(10)).startup.Mean();
  const double at100 =
      RunStartupExperiment(StackConfig::Vanilla(), SmallRun(100)).startup.Mean();
  const double at200 =
      RunStartupExperiment(StackConfig::Vanilla(), SmallRun(200)).startup.Mean();
  EXPECT_LT(at10, at100);
  EXPECT_LT(at100, at200);
  // The devset serialization makes growth super-linear in this range.
  EXPECT_GT(at200 / at10, 3.0);
}

TEST(ExperimentTest, ReductionRatioGrowsWithConcurrency) {
  // Fig. 13a: "The reduction is more obvious with a higher concurrency".
  auto ratio = [](int n) {
    const double v = RunStartupExperiment(StackConfig::Vanilla(), SmallRun(n)).startup.Mean();
    const double f = RunStartupExperiment(StackConfig::FastIov(), SmallRun(n)).startup.Mean();
    return 1.0 - f / v;
  };
  EXPECT_GT(ratio(200), ratio(20));
}

TEST(ExperimentTest, MemorySweepHurtsVanillaMore) {
  // Fig. 13b: growing per-container memory inflates vanilla (eager zeroing)
  // far more than FastIOV.
  auto run = [](const StackConfig& base, uint64_t mem) {
    StackConfig c = base;
    c.guest_memory_bytes = mem;
    return RunStartupExperiment(c, SmallRun(50)).startup.Mean();
  };
  const double vanilla_small = run(StackConfig::Vanilla(), 512 * kMiB);
  const double vanilla_large = run(StackConfig::Vanilla(), 2 * kGiB);
  const double fast_small = run(StackConfig::FastIov(), 512 * kMiB);
  const double fast_large = run(StackConfig::FastIov(), 2 * kGiB);
  const double vanilla_growth = vanilla_large / vanilla_small;
  const double fast_growth = fast_large / fast_small;
  EXPECT_GT(vanilla_growth, 1.15);
  EXPECT_LT(fast_growth, vanilla_growth);
}

TEST(ExperimentTest, TimelineHasAllContainers) {
  const ExperimentResult r = RunStartupExperiment(StackConfig::Vanilla(), SmallRun(25));
  EXPECT_EQ(r.timeline.NumContainers(), 25u);
  EXPECT_EQ(r.startup.Count(), 25u);
}

}  // namespace
}  // namespace fastiov
