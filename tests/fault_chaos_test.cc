// Chaos/property testing: randomized start/stop/fault interleavings across
// many seeds, asserting the system-wide safety invariants after every run —
// no leaked pinned pages, frames, VFs, VFIO opens, or fastiovd state; every
// container either reached ready or was cleanly aborted; and no
// cross-tenant corruption, ever.
//
// The FaultChaosQuick suite is a 4-seed subset wired into the `smoke` ctest
// label; the full sweep runs 52 seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/container/runtime.h"
#include "src/fault/fault.h"
#include "src/simcore/rng.h"

namespace fastiov {
namespace {

// The sites a randomized plan may arm. kPhaseTimeout is synthesized by the
// runtime, never planned.
constexpr FaultSite kInjectableSites[] = {
    FaultSite::kVfioGroupOpen, FaultSite::kVfioDeviceOpen, FaultSite::kDmaMap,
    FaultSite::kDmaPin,        FaultSite::kVfBind,         FaultSite::kVfFlr,
    FaultSite::kVfLinkUp,      FaultSite::kVdpaAttach,     FaultSite::kKvmMemslot,
    FaultSite::kCni,           FaultSite::kVirtioFs,       FaultSite::kGuestBoot,
};

FaultPlan RandomPlan(uint64_t seed) {
  Rng rng(seed * 0x9e3779b9u + 7);
  FaultPlan plan;
  plan.seed = seed;
  for (const FaultSite site : kInjectableSites) {
    if (rng.NextDouble() >= 0.45) {
      continue;  // leave this site healthy
    }
    SiteFaultSpec spec;
    if (rng.NextDouble() < 0.25) {
      spec.nth_call = static_cast<uint64_t>(rng.UniformInt(1, 8));
    } else {
      spec.probability = rng.Uniform(0.02, 0.35);
    }
    spec.transient = rng.NextDouble() < 0.7;
    if (rng.NextDouble() < 0.4) {
      spec.penalty = Milliseconds(rng.UniformInt(1, 8));
    }
    if (rng.NextDouble() < 0.2) {
      spec.max_faults = static_cast<uint64_t>(rng.UniformInt(1, 5));
    }
    plan.sites[site] = spec;
  }
  return plan;
}

StackConfig ConfigForSeed(uint64_t seed) {
  switch (seed % 4) {
    case 0:
      return StackConfig::FastIov();
    case 1:
      return StackConfig::Vanilla();
    case 2:
      return StackConfig::FastIovVdpa();
    default: {
      // FastIOV with a per-phase deadline armed: timeouts synthesize
      // permanent kPhaseTimeout faults on top of the injected ones.
      StackConfig config = StackConfig::FastIov();
      config.phase_timeout = Milliseconds(400);
      return config;
    }
  }
}

// One chaos episode: two waves of starts with randomized faults, stops of
// the ready containers in shuffled order between and after, then the leak
// and safety invariants.
void RunChaosSeed(uint64_t seed) {
  SCOPED_TRACE("chaos seed " + std::to_string(seed));
  const StackConfig config = ConfigForSeed(seed);
  const FaultPlan plan = RandomPlan(seed);
  FaultInjector injector(plan);
  Simulation sim(seed);
  sim.set_fault_injector(&injector);
  Host host(sim, HostSpec{}, CostModel{}, config);
  ContainerRuntime runtime(host);
  Rng shuffle_rng(seed + 101);

  auto start_wave = [](Simulation* s, Host* h, ContainerRuntime* rt, int count,
                       bool first) -> Task {
    if (first) {
      co_await h->PrepareSharedImage();
      if (h->config().UsesSriov() && h->config().cni != CniKind::kVanillaUnfixed) {
        h->PreBindVfsToVfio();
      }
    }
    if (h->config().decoupled_zeroing) {
      h->fastiovd().StartBackgroundZeroer();
    }
    std::vector<Process> ps;
    for (int i = 0; i < count; ++i) {
      ps.push_back(s->Spawn(rt->StartContainer(nullptr)));
    }
    co_await WaitAll(std::move(ps));
    h->fastiovd().StopBackgroundZeroer();
  };
  auto stop_ready = [](Simulation* s, ContainerRuntime* rt, Host* h, Rng* rng) -> Task {
    if (h->config().decoupled_zeroing) {
      h->fastiovd().StartBackgroundZeroer();
    }
    std::vector<ContainerInstance*> ready;
    for (const auto& inst : rt->instances()) {
      if (inst->ready) {
        ready.push_back(inst.get());
      }
    }
    // Fisher-Yates with the test's own stream: teardown order is part of
    // the property being fuzzed.
    for (size_t i = ready.size(); i > 1; --i) {
      std::swap(ready[i - 1], ready[static_cast<size_t>(rng->UniformInt(
                                  0, static_cast<int64_t>(i) - 1))]);
    }
    std::vector<Process> ps;
    for (ContainerInstance* inst : ready) {
      ps.push_back(s->Spawn(rt->StopContainer(*inst)));
    }
    co_await WaitAll(std::move(ps));
    h->fastiovd().StopBackgroundZeroer();
  };

  const int wave = 8;
  sim.Spawn(start_wave(&sim, &host, &runtime, wave, /*first=*/true));
  sim.Run();
  sim.Spawn(stop_ready(&sim, &runtime, &host, &shuffle_rng));
  sim.Run();
  sim.Spawn(start_wave(&sim, &host, &runtime, wave, /*first=*/false));
  sim.Run();
  sim.Spawn(stop_ready(&sim, &runtime, &host, &shuffle_rng));
  sim.Run();

  // --- invariants --------------------------------------------------------
  // Every container either reached ready (and was stopped) or aborted
  // cleanly; nobody is left half-started.
  for (const auto& inst : runtime.instances()) {
    EXPECT_TRUE(inst->terminated) << "cid " << inst->cid;
    EXPECT_FALSE(inst->ready) << "cid " << inst->cid;
    EXPECT_EQ(inst->vf, nullptr) << "cid " << inst->cid;
    EXPECT_EQ(inst->vfio_dev, nullptr) << "cid " << inst->cid;
    EXPECT_EQ(inst->vfio_container, nullptr) << "cid " << inst->cid;
  }
  // No leaked pinned pages and no leaked frames: only the host's shared
  // image copy stays resident.
  EXPECT_EQ(host.pmem().total_pinned_pages(), 0u);
  EXPECT_EQ(host.pmem().used_pages(), host.shared_image_frames().size());
  // Every VF back in the pool, unconfigured.
  for (size_t i = 0; i < host.nic().num_vfs(); ++i) {
    const VirtualFunction* vf = host.nic().vf(static_cast<int>(i));
    EXPECT_LT(vf->assigned_pid(), 0) << "vf " << i;
    EXPECT_FALSE(vf->configured()) << "vf " << i;
  }
  // No VFIO device left open, no fastiovd registration left behind, no
  // IOMMU domain leaked.
  EXPECT_EQ(host.devset().TotalOpenCount(), 0);
  EXPECT_EQ(host.fastiovd().total_pending_pages(), 0u);
  EXPECT_EQ(host.iommu().num_domains(), 0u);
  // Safety: faults may slow containers down or abort them, but must never
  // corrupt another tenant's data or leak residue to a guest.
  EXPECT_EQ(runtime.TotalCorruptions(), 0u);
  EXPECT_EQ(runtime.TotalResidueReads(), 0u);
}

// Small subset for the smoke label / fault_chaos_quick target: one seed per
// stack-config flavor.
TEST(FaultChaosQuick, FourSeedsAcrossConfigs) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    RunChaosSeed(seed);
  }
}

TEST(FaultChaosTest, FiftySeedSweepLeaksNothing) {
  for (uint64_t seed = 4; seed < 56; ++seed) {
    RunChaosSeed(seed);
  }
}

// --- cluster chaos -------------------------------------------------------
// Seeded random fault plans over the control-plane sites (plus a random
// subset of host-local sites) on a 4-host cluster. The fleet invariants must
// hold under any mix of gate rejections and mid-pipeline aborts: every
// launch accounted for exactly once, every IP conserved, zero leaks, zero
// corruption.

FaultPlan RandomControlPlanePlan(uint64_t seed) {
  Rng rng(seed * 0x9e3779b9u + 23);
  constexpr FaultSite kCpSites[] = {FaultSite::kIpamAlloc, FaultSite::kCniAssign,
                                    FaultSite::kRegistryFetch};
  FaultPlan plan;
  plan.seed = seed + 1;
  for (const FaultSite site : kCpSites) {
    if (rng.NextDouble() >= 0.6) {
      continue;
    }
    SiteFaultSpec spec;
    spec.probability = rng.Uniform(0.05, 0.3);
    spec.transient = rng.NextDouble() < 0.6;
    if (rng.NextDouble() < 0.3) {
      spec.penalty = Milliseconds(rng.UniformInt(1, 5));
    }
    plan.sites[site] = spec;
  }
  return plan;
}

void RunClusterChaosSeed(uint64_t seed) {
  SCOPED_TRACE("cluster chaos seed " + std::to_string(seed));
  ClusterOptions options;
  options.hosts = 4;
  options.trace.launches = 32;
  options.trace.arrival_rate_per_s = 400.0;
  options.trace.zones = 4;
  options.seed = seed;
  options.rtt = Milliseconds(1);
  options.dwell = Milliseconds(200);
  options.policy = static_cast<ClusterSchedPolicy>(seed % 3);
  options.control_plane_fault_plan = RandomControlPlanePlan(seed);
  options.host_fault_plan = RandomPlan(seed);

  const ClusterResult r = RunClusterExperiment(options);
  uint64_t assigned_total = 0;
  for (const ClusterHostOutcome& host : r.host_results) {
    const ClusterHostExtras& e = host.extras;
    // Exact accounting even under aborted teardowns: nothing double-counted,
    // nothing lost.
    EXPECT_EQ(e.completed + e.cp_rejected + e.aborted, e.assigned);
    EXPECT_EQ(e.final_live_instances, 0u);
    EXPECT_EQ(e.end_pinned_pages, 0u);
    EXPECT_EQ(e.end_used_pages, e.end_shared_image_pages);
    EXPECT_EQ(e.end_vfio_open, 0u);
    EXPECT_EQ(e.end_fastiovd_pending, 0u);
    EXPECT_EQ(e.end_iommu_domains, 0u);
    EXPECT_EQ(e.end_nic_vfs_in_use, 0u);
    EXPECT_EQ(host.result.corruptions, 0u);
    EXPECT_EQ(host.result.residue_reads, 0u);
    assigned_total += e.assigned;
  }
  EXPECT_EQ(assigned_total, options.trace.launches);
  ASSERT_TRUE(r.control_plane.has_value());
  // IPAM conservation: grants minus releases equals zero at quiescence, no
  // matter which gates faulted.
  EXPECT_EQ(r.control_plane->ipam_free_end, r.control_plane->ipam_pool);
}

TEST(ClusterChaosQuick, TwoSeeds) {
  for (uint64_t seed = 0; seed < 2; ++seed) {
    RunClusterChaosSeed(seed);
  }
}

TEST(ClusterChaosTest, TwelveSeedSweepLeaksNothing) {
  for (uint64_t seed = 2; seed < 14; ++seed) {
    RunClusterChaosSeed(seed);
  }
}

// Cluster chaos episodes replay identically: the digest is a pure function
// of the options, fault plans included.
TEST(ClusterChaosTest, EpisodesAreReplayable) {
  for (uint64_t seed : {1u, 6u}) {
    ClusterOptions options;
    options.hosts = 4;
    options.trace.launches = 24;
    options.trace.arrival_rate_per_s = 400.0;
    options.seed = seed;
    options.rtt = Milliseconds(1);
    options.dwell = Milliseconds(200);
    options.control_plane_fault_plan = RandomControlPlanePlan(seed);
    options.host_fault_plan = RandomPlan(seed);
    const std::string a = ClusterDigest(RunClusterExperiment(options));
    const std::string b = ClusterDigest(RunClusterExperiment(options));
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

// Replays of the same chaos episode are event-identical: the injector's
// private stream plus the simulation seed fully determine the outcome.
TEST(FaultChaosTest, EpisodesAreReplayable) {
  for (uint64_t seed : {3u, 17u, 29u}) {
    auto run_once = [&](uint64_t s) {
      const StackConfig config = ConfigForSeed(s);
      FaultInjector injector(RandomPlan(s));
      Simulation sim(s);
      sim.set_fault_injector(&injector);
      Host host(sim, HostSpec{}, CostModel{}, config);
      ContainerRuntime runtime(host);
      auto root = [](Simulation* sm, Host* h, ContainerRuntime* rt) -> Task {
        co_await h->PrepareSharedImage();
        if (h->config().UsesSriov() && h->config().cni != CniKind::kVanillaUnfixed) {
          h->PreBindVfsToVfio();
        }
        if (h->config().decoupled_zeroing) {
          h->fastiovd().StartBackgroundZeroer();
        }
        std::vector<Process> ps;
        for (int i = 0; i < 6; ++i) {
          ps.push_back(sm->Spawn(rt->StartContainer(nullptr)));
        }
        co_await WaitAll(std::move(ps));
        h->fastiovd().StopBackgroundZeroer();
      };
      sim.Spawn(root(&sim, &host, &runtime));
      sim.Run();
      struct Outcome {
        int64_t end_ns;
        uint64_t injected;
        uint64_t retried;
        uint64_t recovered;
        uint64_t aborted;
      };
      return Outcome{sim.Now().ns(), injector.TotalInjected(), injector.TotalRetried(),
                     injector.TotalRecovered(), injector.TotalAborted()};
    };
    const auto a = run_once(seed);
    const auto b = run_once(seed);
    EXPECT_EQ(a.end_ns, b.end_ns) << "seed " << seed;
    EXPECT_EQ(a.injected, b.injected) << "seed " << seed;
    EXPECT_EQ(a.retried, b.retried) << "seed " << seed;
    EXPECT_EQ(a.recovered, b.recovered) << "seed " << seed;
    EXPECT_EQ(a.aborted, b.aborted) << "seed " << seed;
  }
}

}  // namespace
}  // namespace fastiov
