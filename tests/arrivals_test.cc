#include "src/workload/arrivals.h"

#include <gtest/gtest.h>

#include "src/experiments/startup_experiment.h"

namespace fastiov {
namespace {

TEST(ArrivalScheduleTest, BurstUsesDispatchGap) {
  Rng rng(1);
  const auto s =
      ArrivalSchedule::Generate(ArrivalPattern::kBurst, 5, 0.0, Milliseconds(1), rng);
  ASSERT_EQ(s.times.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(s.times[i], Milliseconds(i));
  }
  EXPECT_EQ(s.MakeSpan(), Milliseconds(4));
}

TEST(ArrivalScheduleTest, UniformSpacing) {
  Rng rng(1);
  const auto s =
      ArrivalSchedule::Generate(ArrivalPattern::kUniform, 4, 10.0, SimTime::Zero(), rng);
  ASSERT_EQ(s.times.size(), 4u);
  EXPECT_EQ(s.times[0], SimTime::Zero());
  EXPECT_EQ(s.times[1], Milliseconds(100));
  EXPECT_EQ(s.times[3], Milliseconds(300));
}

TEST(ArrivalScheduleTest, PoissonMeanInterArrival) {
  Rng rng(7);
  const auto s =
      ArrivalSchedule::Generate(ArrivalPattern::kPoisson, 20000, 100.0, SimTime::Zero(), rng);
  // Mean inter-arrival 10ms -> makespan ~ 200s.
  EXPECT_NEAR(s.MakeSpan().ToSecondsF(), 200.0, 5.0);
  for (size_t i = 1; i < s.times.size(); ++i) {
    EXPECT_GE(s.times[i], s.times[i - 1]);
  }
}

TEST(ArrivalScheduleTest, PoissonIsDeterministicPerRng) {
  Rng a(7);
  Rng b(7);
  const auto s1 = ArrivalSchedule::Generate(ArrivalPattern::kPoisson, 50, 10.0, {}, a);
  const auto s2 = ArrivalSchedule::Generate(ArrivalPattern::kPoisson, 50, 10.0, {}, b);
  EXPECT_EQ(s1.times, s2.times);
}

TEST(ArrivalScheduleTest, EmptySchedule) {
  Rng rng(1);
  const auto s = ArrivalSchedule::Generate(ArrivalPattern::kBurst, 0, 0.0, {}, rng);
  EXPECT_TRUE(s.times.empty());
  EXPECT_EQ(s.MakeSpan(), SimTime::Zero());
}

TEST(ArrivalScheduleTest, PatternNames) {
  EXPECT_STREQ(ArrivalPatternName(ArrivalPattern::kBurst), "burst");
  EXPECT_STREQ(ArrivalPatternName(ArrivalPattern::kUniform), "uniform");
  EXPECT_STREQ(ArrivalPatternName(ArrivalPattern::kPoisson), "poisson");
}

TEST(ArrivalExperimentTest, OpenLoopLowersContention) {
  // Spreading 100 invocations at 20/s gives every container a quieter host
  // than the closed burst.
  ExperimentOptions burst;
  burst.concurrency = 100;
  ExperimentOptions open = burst;
  open.arrival = ArrivalPattern::kPoisson;
  open.arrival_rate_per_s = 20.0;
  const double burst_mean =
      RunStartupExperiment(StackConfig::Vanilla(), burst).startup.Mean();
  const double open_mean = RunStartupExperiment(StackConfig::Vanilla(), open).startup.Mean();
  EXPECT_LT(open_mean, burst_mean * 0.8);
}

TEST(ArrivalExperimentTest, FastIovStillWinsUnderOpenLoop) {
  ExperimentOptions options;
  options.concurrency = 100;
  options.arrival = ArrivalPattern::kPoisson;
  options.arrival_rate_per_s = 60.0;
  const double vanilla =
      RunStartupExperiment(StackConfig::Vanilla(), options).startup.Mean();
  const double fast = RunStartupExperiment(StackConfig::FastIov(), options).startup.Mean();
  EXPECT_LT(fast, vanilla);
}

TEST(ArrivalExperimentTest, HigherRateApproachesBurstBehaviour) {
  ExperimentOptions slow;
  slow.concurrency = 80;
  slow.arrival = ArrivalPattern::kUniform;
  slow.arrival_rate_per_s = 5.0;
  ExperimentOptions fast_rate = slow;
  fast_rate.arrival_rate_per_s = 500.0;
  const double slow_mean =
      RunStartupExperiment(StackConfig::Vanilla(), slow).startup.Mean();
  const double fast_mean =
      RunStartupExperiment(StackConfig::Vanilla(), fast_rate).startup.Mean();
  EXPECT_GT(fast_mean, slow_mean);  // denser arrivals, more contention
}

}  // namespace
}  // namespace fastiov
