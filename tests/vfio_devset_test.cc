#include "src/vfio/vfio.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/nic/sriov_nic.h"

namespace fastiov {
namespace {

struct DevsetFixture {
  Simulation sim{1};
  HostSpec spec;
  CostModel cost;
  CpuPool cpu{sim, 56};
  PciBus bus{0x3b};
  PciIdAllocator pci_ids;
  std::vector<std::unique_ptr<VirtualFunction>> vfs;

  DevsetFixture() {
    for (int i = 0; i < 16; ++i) {
      vfs.push_back(std::make_unique<VirtualFunction>(
          pci_ids, PciAddress{0, 0x3b, static_cast<uint8_t>(2 + i / 8), static_cast<uint8_t>(i % 8)},
          i));
      bus.AddDevice(vfs.back().get());
    }
  }

  std::unique_ptr<DevSet> MakeDevset(bool hierarchical) {
    std::unique_ptr<DevsetLockPolicy> policy;
    if (hierarchical) {
      policy = std::make_unique<HierarchicalLockPolicy>(sim);
    } else {
      policy = std::make_unique<GlobalMutexPolicy>(sim);
    }
    auto devset = std::make_unique<DevSet>(sim, cpu, cost, &bus, std::move(policy),
                                           /*scan_on_open=*/!hierarchical);
    for (auto& vf : vfs) {
      devset->AddDevice(vf.get());
    }
    return devset;
  }
};

TEST(DevsetTest, AddDeviceBindsVfio) {
  DevsetFixture f;
  auto devset = f.MakeDevset(false);
  EXPECT_EQ(devset->num_devices(), 16u);
  EXPECT_EQ(f.vfs[0]->bound_driver(), BoundDriver::kVfio);
  EXPECT_EQ(devset->device(3)->pci(), f.vfs[3].get());
  EXPECT_EQ(devset->device(3)->index_in_devset(), 3);
}

TEST(DevsetTest, OpenIncrementsCounts) {
  DevsetFixture f;
  auto devset = f.MakeDevset(false);
  auto op = [&]() -> Task {
    co_await devset->OpenDevice(devset->device(0));
    co_await devset->OpenDevice(devset->device(1));
    co_await devset->OpenDevice(devset->device(1));
  };
  f.sim.Spawn(op());
  f.sim.Run();
  EXPECT_EQ(devset->device(0)->open_count(), 1);
  EXPECT_EQ(devset->device(1)->open_count(), 2);
  EXPECT_EQ(devset->TotalOpenCount(), 3);
  EXPECT_EQ(devset->opens_performed(), 3u);
}

TEST(DevsetTest, CloseDecrementsCounts) {
  DevsetFixture f;
  auto devset = f.MakeDevset(false);
  auto op = [&]() -> Task {
    co_await devset->OpenDevice(devset->device(0));
    co_await devset->CloseDevice(devset->device(0));
  };
  f.sim.Spawn(op());
  f.sim.Run();
  EXPECT_EQ(devset->TotalOpenCount(), 0);
}

TEST(DevsetTest, BusResetRefusedWhileAnyDeviceOpen) {
  DevsetFixture f;
  auto devset = f.MakeDevset(false);
  bool reset_ok = true;
  auto op = [&]() -> Task {
    co_await devset->OpenDevice(devset->device(5));
    co_await devset->TryBusReset(&reset_ok);
  };
  f.sim.Spawn(op());
  f.sim.Run();
  EXPECT_FALSE(reset_ok);
}

TEST(DevsetTest, BusResetSucceedsWhenAllClosed) {
  DevsetFixture f;
  auto devset = f.MakeDevset(false);
  bool reset_ok = false;
  auto op = [&]() -> Task {
    co_await devset->OpenDevice(devset->device(5));
    co_await devset->CloseDevice(devset->device(5));
    co_await devset->TryBusReset(&reset_ok);
  };
  f.sim.Spawn(op());
  f.sim.Run();
  EXPECT_TRUE(reset_ok);
}

TEST(DevsetTest, VanillaConcurrentOpensSerialize) {
  DevsetFixture f;
  auto devset = f.MakeDevset(false);
  for (int i = 0; i < 8; ++i) {
    f.sim.Spawn(devset->OpenDevice(devset->device(i)));
  }
  f.sim.Run();
  const SimTime serialized = f.sim.Now();

  // Same workload under the hierarchical policy.
  DevsetFixture g;
  auto fast = g.MakeDevset(true);
  for (int i = 0; i < 8; ++i) {
    g.sim.Spawn(fast->OpenDevice(fast->device(i)));
  }
  g.sim.Run();
  const SimTime parallel = g.sim.Now();

  // Lock decomposition plus the removed scan must be several times faster.
  EXPECT_GT(serialized.ToSecondsF(), 3.0 * parallel.ToSecondsF());
  EXPECT_GT(devset->lock_policy().contention_count(), 0u);
}

TEST(DevsetTest, VanillaOpenCostScalesWithBusPopulation) {
  // The scan-on-open walks every device on the bus, so a denser bus makes
  // each open slower (§3.2.2).
  auto run_with_devices = [](int n) {
    Simulation sim(1);
    HostSpec spec;
    CostModel cost;
    cost.jitter_sigma = 0.0;  // deterministic costs for exact comparison
    CpuPool cpu(sim, 56);
    PciBus bus(0);
    PciIdAllocator pci_ids;
    std::vector<std::unique_ptr<VirtualFunction>> vfs;
    for (int i = 0; i < n; ++i) {
      vfs.push_back(std::make_unique<VirtualFunction>(
          pci_ids, PciAddress{0, 0, static_cast<uint8_t>(i / 8), static_cast<uint8_t>(i % 8)}, i));
      bus.AddDevice(vfs.back().get());
    }
    DevSet devset(sim, cpu, cost, &bus, std::make_unique<GlobalMutexPolicy>(sim), true);
    for (auto& vf : vfs) {
      devset.AddDevice(vf.get());
    }
    sim.Spawn(devset.OpenDevice(devset.device(0)));
    sim.Run();
    return sim.Now();
  };
  const SimTime sparse = run_with_devices(8);
  const SimTime dense = run_with_devices(128);
  EXPECT_GT(dense.ns(), sparse.ns());
  // 120 extra devices at the per-device scan cost.
  const SimTime expected_delta = CostModel{}.vfio_pci_scan_per_device * 120.0;
  EXPECT_NEAR((dense - sparse).ToSecondsF(), expected_delta.ToSecondsF(), 1e-4);
}

TEST(DevsetTest, HierarchicalOpenSkipsScan) {
  DevsetFixture f;
  f.cost.jitter_sigma = 0.0;
  auto devset = f.MakeDevset(true);
  f.sim.Spawn(devset->OpenDevice(devset->device(0)));
  f.sim.Run();
  // Only bookkeeping + fd setup, far below one bus scan (16 x 310us = 5ms).
  EXPECT_LT(f.sim.Now().ToSecondsF(),
            (f.cost.vfio_open_bookkeeping + f.cost.vfio_device_fd_cpu).ToSecondsF() * 3.0);
}

}  // namespace
}  // namespace fastiov
