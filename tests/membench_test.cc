// §6.5: FastIOV's memory-access overhead is a one-time fault-path probe,
// keeping throughput/latency degradation under 1%.
#include "src/workload/membench.h"

#include <gtest/gtest.h>

#include "src/core/fastiovd.h"

namespace fastiov {
namespace {

struct BenchEnv {
  Simulation sim{1};
  HostSpec spec;
  CostModel cost;
  CpuPool cpu{sim, 56};
  PhysicalMemory pmem;
  MicroVm vm;
  Fastiovd fastiovd;

  explicit BenchEnv(bool lazy)
      : pmem(sim, [&] {
          spec.memory_bytes = 2 * kGiB;
          return spec;
        }(), cost, kHugePageSize),
        vm(sim, cpu, pmem, cost, 1000),
        fastiovd(sim, cpu, pmem, cost) {
    pmem.set_cpu(&cpu);
    GuestMemoryRegion& ram = vm.AddRegion("ram", RegionType::kRam, 0, 256 * kMiB);
    Task setup = [](BenchEnv* env, GuestMemoryRegion* region, bool defer) -> Task {
      std::vector<PageRun> runs;
      co_await env->pmem.RetrievePages(env->vm.pid(), region->frames.size(), &runs);
      if (defer) {
        co_await env->fastiovd.RegisterPages(env->vm.pid(), std::span<const PageRun>(runs), 0);
      } else {
        co_await env->pmem.ZeroPages(runs);
      }
      region->frames.AssignRuns(runs);
      region->dma_mapped = true;
    }(this, &ram, lazy);
    sim.Spawn(std::move(setup));
    sim.Run();
    if (lazy) {
      vm.SetFaultHook(&fastiovd);
    }
  }

  MembenchResult Run() {
    MembenchResult result;
    MembenchOptions options;
    sim.Spawn(RunMembench(sim, cpu, vm, options, &result));
    sim.Run();
    return result;
  }
};

TEST(MembenchTest, ProducesPlausibleNumbers) {
  BenchEnv env(/*lazy=*/false);
  const MembenchResult r = env.Run();
  // Throughput near the single-core memcpy rate.
  EXPECT_GT(r.memcpy_throughput_bps, 5.0 * static_cast<double>(kGiB));
  EXPECT_LT(r.memcpy_throughput_bps, 6.5 * static_cast<double>(kGiB));
  // Latency near the DRAM round trip.
  EXPECT_GT(r.random_read_latency_ns, 80.0);
  EXPECT_LT(r.random_read_latency_ns, 100.0);
  // Window is 64 MiB of 2 MiB pages.
  EXPECT_EQ(r.ept_faults_during_bench, 32u);
}

TEST(MembenchTest, FastIovDegradationUnderOnePercent) {
  BenchEnv vanilla(/*lazy=*/false);
  BenchEnv fastiov(/*lazy=*/true);
  const MembenchResult v = vanilla.Run();
  const MembenchResult f = fastiov.Run();

  const double throughput_loss = 1.0 - f.memcpy_throughput_bps / v.memcpy_throughput_bps;
  const double latency_gain = f.random_read_latency_ns / v.random_read_latency_ns - 1.0;
  EXPECT_LT(throughput_loss, 0.01);
  EXPECT_LT(latency_gain, 0.01);
  EXPECT_GE(throughput_loss, 0.0);  // lazy zeroing cannot be faster here
}

TEST(MembenchTest, SecondRunHasNoFaultsAtAll) {
  BenchEnv env(/*lazy=*/true);
  const MembenchResult first = env.Run();
  EXPECT_GT(first.ept_faults_during_bench, 0u);
  const MembenchResult second = env.Run();
  EXPECT_EQ(second.ept_faults_during_bench, 0u);
  // With all pages resident the second run is (marginally) faster than the
  // first, which paid the fault-time; steady state differs by well under 1%.
  EXPECT_GE(second.memcpy_throughput_bps, first.memcpy_throughput_bps);
  EXPECT_NEAR(second.memcpy_throughput_bps / first.memcpy_throughput_bps, 1.0, 0.01);
}

}  // namespace
}  // namespace fastiov
