// Edge cases of the runtime pipeline not covered by the matrix tests:
// guest layout geometry, large allocations, IPvtap with applications,
// unfixed CNI with devset growth, vDPA churn, and partial-teardown
// correctness when a start aborts at specific pipeline phases.
#include <gtest/gtest.h>

#include "src/container/runtime.h"
#include "src/experiments/churn_experiment.h"
#include "src/experiments/startup_experiment.h"
#include "src/fault/fault.h"

namespace fastiov {
namespace {

TEST(GuestLayoutTest, GeometryIsConsistent) {
  const GuestLayout l = GuestLayout::For(512 * kMiB, 256 * kMiB, 48 * kMiB, kHugePageSize);
  EXPECT_EQ(l.ram_bytes, 512 * kMiB);
  EXPECT_EQ(l.readonly_bytes, 48 * kMiB);
  // The NIC rings live at the top of RAM.
  EXPECT_EQ(l.nic_ring_gpa + l.nic_ring_bytes, l.ram_bytes);
  // The image region sits directly above RAM.
  EXPECT_EQ(l.image_gpa, l.ram_bytes);
  // virtioFS vring page directly precedes the buffer.
  EXPECT_EQ(l.virtiofs_vring_gpa + kHugePageSize, l.virtiofs_buffer_gpa);
  // All windows are disjoint and inside RAM.
  EXPECT_LT(l.readonly_bytes, l.virtiofs_vring_gpa);
  EXPECT_LT(l.virtiofs_buffer_gpa + l.virtiofs_buffer_bytes, l.boot_ws_gpa);
  EXPECT_LT(l.boot_ws_gpa + l.boot_ws_bytes, l.app_ws_gpa);
  EXPECT_LT(l.app_ws_gpa, l.nic_ring_gpa);
}

TEST(GuestLayoutTest, ScalesWithMemory) {
  const GuestLayout small = GuestLayout::For(512 * kMiB, 256 * kMiB, 48 * kMiB, kHugePageSize);
  const GuestLayout large = GuestLayout::For(4 * kGiB, 256 * kMiB, 48 * kMiB, kHugePageSize);
  EXPECT_EQ(large.nic_ring_gpa + large.nic_ring_bytes, 4 * kGiB);
  EXPECT_EQ(large.image_gpa, 4 * kGiB);
  // Fixed windows do not move.
  EXPECT_EQ(small.boot_ws_gpa, large.boot_ws_gpa);
}

TEST(RuntimeEdgeTest, LargeMemoryContainersComplete) {
  StackConfig config = StackConfig::Vanilla();
  config.guest_memory_bytes = 8 * kGiB;
  ExperimentOptions options;
  options.concurrency = 5;
  const ExperimentResult r = RunStartupExperiment(config, options);
  EXPECT_EQ(r.startup.Count(), 5u);
  EXPECT_EQ(r.residue_reads, 0u);
  // 5 x (8 GiB RAM + 256 MiB image) of eager zeroing.
  EXPECT_EQ(r.pages_zeroed, 5u * (8 * kGiB + 256 * kMiB) / kHugePageSize + 128);
}

TEST(RuntimeEdgeTest, IpvtapRunsApplications) {
  ExperimentOptions options;
  options.concurrency = 15;
  options.app = ServerlessApp::Compression();
  const ExperimentResult r = RunStartupExperiment(StackConfig::Ipvtap(), options);
  EXPECT_EQ(r.task_completion.Count(), 15u);
  EXPECT_EQ(r.residue_reads, 0u);
  EXPECT_EQ(r.corruptions, 0u);
}

TEST(RuntimeEdgeTest, UnfixedCniRunsAppsAndGrowsDevset) {
  Simulation sim(3);
  Host host(sim, HostSpec{}, CostModel{}, StackConfig::VanillaUnfixed());
  ContainerRuntime runtime(host);
  const ServerlessApp app = ServerlessApp::Image();
  auto root = [](Simulation* s, Host* h, ContainerRuntime* rt,
                 const ServerlessApp* a) -> Task {
    co_await h->PrepareSharedImage();
    std::vector<Process> ps;
    for (int i = 0; i < 6; ++i) {
      ps.push_back(s->Spawn(rt->StartContainer(a)));
    }
    co_await WaitAll(std::move(ps));
  };
  sim.Spawn(root(&sim, &host, &runtime, &app));
  sim.Run();
  // The unfixed CNI binds each VF into the devset at rebind time.
  EXPECT_EQ(host.devset().num_devices(), 6u);
  EXPECT_EQ(runtime.TotalCorruptions(), 0u);
}

TEST(RuntimeEdgeTest, VdpaChurnRecyclesCleanly) {
  ChurnOptions options;
  options.waves = 2;
  options.concurrency_per_wave = 10;
  const ChurnResult r = RunChurnExperiment(StackConfig::FastIovVdpa(), options);
  EXPECT_GT(r.frames_reused, 0u);
  EXPECT_EQ(r.residue_reads, 0u);
  EXPECT_EQ(r.corruptions, 0u);
}

TEST(RuntimeEdgeTest, SingleContainerIsTheFloor) {
  ExperimentOptions one;
  one.concurrency = 1;
  const double single = RunStartupExperiment(StackConfig::FastIov(), one).startup.Mean();
  ExperimentOptions many;
  many.concurrency = 100;
  const double crowd = RunStartupExperiment(StackConfig::FastIov(), many).startup.Mean();
  EXPECT_LT(single, crowd);
  EXPECT_GT(single, 0.5);  // the pipeline has real uncontended work
}

TEST(RuntimeEdgeTest, ZeroConcurrencyIsANoop) {
  ExperimentOptions options;
  options.concurrency = 0;
  const ExperimentResult r = RunStartupExperiment(StackConfig::FastIov(), options);
  EXPECT_EQ(r.startup.Count(), 0u);
  EXPECT_EQ(r.residue_reads, 0u);
}

TEST(RuntimeEdgeTest, InterruptsAreRelayedDuringDownloads) {
  ExperimentOptions options;
  options.concurrency = 5;
  options.app = ServerlessApp::Inference();  // 52 MiB through 4 MiB rings
  Simulation sim(3);
  Host host(sim, HostSpec{}, CostModel{}, StackConfig::FastIov());
  ContainerRuntime runtime(host);
  const ServerlessApp app = *options.app;
  auto root = [](Simulation* s, Host* h, ContainerRuntime* rt,
                 const ServerlessApp* a) -> Task {
    co_await h->PrepareSharedImage();
    h->PreBindVfsToVfio();
    h->fastiovd().StartBackgroundZeroer();
    std::vector<Process> ps;
    for (int i = 0; i < 5; ++i) {
      ps.push_back(s->Spawn(rt->StartContainer(a)));
    }
    co_await WaitAll(std::move(ps));
    h->fastiovd().StopBackgroundZeroer();
  };
  sim.Spawn(root(&sim, &host, &runtime, &app));
  sim.Run();
  for (const auto& inst : runtime.instances()) {
    // 52 MiB / 4 MiB ring = 13 chunks -> 13 interrupts.
    EXPECT_EQ(inst->vm->interrupts_received(), 13u);
  }
}

// Starts one FastIOV container under a plan whose single permanent fault
// lands at `spec_site`, and asserts the abort unwound everything:
// PhysicalMemory back to the shared-image baseline, nothing pinned, the VF
// recycled, no VFIO open left behind.
void ExpectCleanAbortAt(FaultSite site, uint64_t nth) {
  SCOPED_TRACE(std::string("abort at ") + FaultSiteName(site));
  Simulation sim(5);
  FaultPlan plan;
  plan.sites[site] = SiteFaultSpec{.nth_call = nth, .transient = false};
  FaultInjector injector(plan);
  sim.set_fault_injector(&injector);
  Host host(sim, HostSpec{}, CostModel{}, StackConfig::FastIov());
  ContainerRuntime runtime(host);
  auto root = [](Simulation* s, Host* h, ContainerRuntime* rt) -> Task {
    co_await h->PrepareSharedImage();
    h->PreBindVfsToVfio();
    h->fastiovd().StartBackgroundZeroer();
    co_await s->Spawn(rt->StartContainer(nullptr), "container").Join();
    h->fastiovd().StopBackgroundZeroer();
  };
  sim.Spawn(root(&sim, &host, &runtime));
  sim.Run();

  ASSERT_EQ(runtime.instances().size(), 1u);
  const ContainerInstance& inst = *runtime.instances().front();
  EXPECT_TRUE(inst.aborted);
  EXPECT_TRUE(inst.terminated);
  EXPECT_FALSE(inst.ready);
  EXPECT_EQ(inst.vf, nullptr);
  EXPECT_EQ(inst.vfio_dev, nullptr);
  EXPECT_EQ(inst.vfio_container, nullptr);
  EXPECT_EQ(injector.counters(site).aborted, 1u);
  // Memory accounting back to the baseline: the shared image copy is the
  // only thing resident, and nothing stays pinned or pending.
  EXPECT_EQ(host.pmem().total_pinned_pages(), 0u);
  EXPECT_EQ(host.pmem().used_pages(), host.shared_image_frames().size());
  EXPECT_EQ(host.fastiovd().total_pending_pages(), 0u);
  EXPECT_EQ(host.devset().TotalOpenCount(), 0);
  for (size_t i = 0; i < host.nic().num_vfs(); ++i) {
    EXPECT_LT(host.nic().vf(static_cast<int>(i))->assigned_pid(), 0);
  }
}

TEST(RuntimeAbortTest, PreVfioAbortRestoresBaseline) {
  // The CNI phase fails before any VFIO or DMA state exists.
  ExpectCleanAbortAt(FaultSite::kCni, 1);
}

TEST(RuntimeAbortTest, PostDmaMapAbortRestoresBaseline) {
  // Device registration fails after guest RAM was DMA-mapped and pinned.
  ExpectCleanAbortAt(FaultSite::kVfioDeviceOpen, 1);
}

TEST(RuntimeAbortTest, MidBootAbortRestoresBaseline) {
  // The guest fails to boot after the full VFIO attach completed.
  ExpectCleanAbortAt(FaultSite::kGuestBoot, 1);
}

TEST(RuntimeAbortTest, DmaPinAbortFreesRetrievedFrames) {
  // Pinning fails mid-map: the frames handed out by the allocator must go
  // straight back without ever being registered or pinned.
  ExpectCleanAbortAt(FaultSite::kDmaPin, 1);
}

// Regression: the link bring-up process used to be spawned detached, so a
// teardown racing firmware link negotiation let the process dereference the
// driver and VF it had already freed. StopContainer must join it.
TEST(RuntimeEdgeTest, StopContainerJoinsLinkUpProcess) {
  Simulation sim(11);
  Host host(sim, HostSpec{}, CostModel{}, StackConfig::FastIov());
  ContainerRuntime runtime(host);
  auto root = [](Host* h, ContainerRuntime* rt) -> Task {
    co_await h->PrepareSharedImage();
    h->PreBindVfsToVfio();
    h->fastiovd().StartBackgroundZeroer();
    // No app: StartContainer returns at ready, while the async network init
    // (and its link negotiation) may still be in flight.
    co_await rt->StartContainer(nullptr);
    ContainerInstance& inst = *rt->instances().front();
    EXPECT_TRUE(inst.ready);
    co_await rt->StopContainer(inst);
    EXPECT_TRUE(inst.async_net.Done());
    EXPECT_TRUE(inst.link_up.Done());
    EXPECT_EQ(inst.vf, nullptr);
    h->fastiovd().StopBackgroundZeroer();
  };
  sim.Spawn(root(&host, &runtime));
  sim.Run();
  EXPECT_EQ(host.pmem().total_pinned_pages(), 0u);
  EXPECT_EQ(host.pmem().used_pages(), host.shared_image_frames().size());
}

}  // namespace
}  // namespace fastiov
