// The fastiovd kernel module: two-tier lazy-zero table, instant-zeroing
// list, EPT-fault zeroing, background scrubber, and the fault/scrub race.
#include "src/core/fastiovd.h"

#include <gtest/gtest.h>

namespace fastiov {
namespace {

struct FastiovdFixture : public ::testing::Test {
  Simulation sim{1};
  HostSpec spec;
  CostModel cost;
  CpuPool cpu{sim, 56};
  PhysicalMemory pmem;
  Fastiovd fastiovd;

  FastiovdFixture()
      : pmem(sim, [&] {
          spec.memory_bytes = 4 * kGiB;
          return spec;
        }(), cost, kHugePageSize),
        fastiovd(sim, cpu, pmem, cost) {
    pmem.set_cpu(&cpu);
  }

  void Run(Task t) {
    sim.Spawn(std::move(t));
    sim.Run();
  }

  std::vector<PageId> Retrieve(int pid, uint64_t n) {
    std::vector<PageId> pages;
    Run([&]() -> Task { co_await pmem.RetrievePages(pid, n, &pages); }());
    return pages;
  }
};

TEST_F(FastiovdFixture, RegisterDefersZeroing) {
  auto pages = Retrieve(1, 8);
  Run([&]() -> Task { co_await fastiovd.RegisterPages(1, pages, 0); }());
  EXPECT_EQ(fastiovd.pending_pages(1), 8u);
  EXPECT_EQ(pmem.total_pages_zeroed(), 0u);
  for (PageId id : pages) {
    EXPECT_TRUE(pmem.frame(id).in_lazy_table);
    EXPECT_EQ(pmem.frame(id).content, PageContent::kResidue);
  }
}

TEST_F(FastiovdFixture, InstantRangeZeroedAtRegistration) {
  fastiovd.RegisterInstantZeroRange(1, 0, 8 * kMiB);  // first 4 pages
  auto pages = Retrieve(1, 8);
  Run([&]() -> Task { co_await fastiovd.RegisterPages(1, pages, 0); }());
  EXPECT_EQ(fastiovd.instant_zeroed_pages(), 4u);
  EXPECT_EQ(fastiovd.pending_pages(1), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pmem.frame(pages[i]).content, PageContent::kZeroed);
  }
  for (size_t i = 4; i < 8; ++i) {
    EXPECT_EQ(pmem.frame(pages[i]).content, PageContent::kResidue);
  }
}

TEST_F(FastiovdFixture, InstantRangeRespectsGpaBase) {
  fastiovd.RegisterInstantZeroRange(1, 1 * kGiB, 4 * kMiB);
  auto pages = Retrieve(1, 4);
  // Register pages whose GPA starts at 1 GiB: the first two fall in range.
  Run([&]() -> Task { co_await fastiovd.RegisterPages(1, pages, 1 * kGiB); }());
  EXPECT_EQ(fastiovd.instant_zeroed_pages(), 2u);
  EXPECT_EQ(fastiovd.pending_pages(1), 2u);
}

TEST_F(FastiovdFixture, FaultZeroesAndRemoves) {
  auto pages = Retrieve(1, 4);
  Run([&]() -> Task { co_await fastiovd.RegisterPages(1, pages, 0); }());
  bool zeroed_here = false;
  Run([&]() -> Task { co_await fastiovd.OnEptFault(1, pages[0], &zeroed_here); }());
  EXPECT_TRUE(zeroed_here);
  EXPECT_EQ(pmem.frame(pages[0]).content, PageContent::kZeroed);
  EXPECT_FALSE(pmem.frame(pages[0]).in_lazy_table);
  EXPECT_EQ(fastiovd.pending_pages(1), 3u);
  EXPECT_EQ(fastiovd.fault_zeroed_pages(), 1u);
}

TEST_F(FastiovdFixture, FaultOnUntrackedPageIsNoop) {
  auto pages = Retrieve(1, 1);
  bool zeroed_here = false;
  Run([&]() -> Task { co_await fastiovd.OnEptFault(1, pages[0], &zeroed_here); }());
  EXPECT_FALSE(zeroed_here);
  EXPECT_EQ(pmem.frame(pages[0]).content, PageContent::kResidue);
}

TEST_F(FastiovdFixture, DoubleFaultZeroesOnce) {
  auto pages = Retrieve(1, 1);
  Run([&]() -> Task { co_await fastiovd.RegisterPages(1, pages, 0); }());
  Run([&]() -> Task {
    co_await fastiovd.OnEptFault(1, pages[0], nullptr);
    co_await fastiovd.OnEptFault(1, pages[0], nullptr);
  }());
  EXPECT_EQ(fastiovd.fault_zeroed_pages(), 1u);
}

TEST_F(FastiovdFixture, BackgroundScrubberDrainsTable) {
  auto pages = Retrieve(1, 64);
  Run([&]() -> Task { co_await fastiovd.RegisterPages(1, pages, 0); }());
  EXPECT_EQ(fastiovd.total_pending_pages(), 64u);
  fastiovd.StartBackgroundZeroer();
  // Let the scrubber run for a while, then stop it.
  auto stopper = [&]() -> Task {
    co_await sim.Delay(Seconds(30.0));
    fastiovd.StopBackgroundZeroer();
  };
  sim.Spawn(stopper());
  sim.Run();
  EXPECT_EQ(fastiovd.total_pending_pages(), 0u);
  EXPECT_EQ(fastiovd.background_zeroed_pages(), 64u);
  for (PageId id : pages) {
    EXPECT_EQ(pmem.frame(id).content, PageContent::kZeroed);
  }
}

TEST_F(FastiovdFixture, ScrubberAndFaultsSplitTheWork) {
  auto pages = Retrieve(1, 64);
  Run([&]() -> Task { co_await fastiovd.RegisterPages(1, pages, 0); }());
  fastiovd.StartBackgroundZeroer();
  auto faulter = [&]() -> Task {
    for (int i = 0; i < 64; i += 2) {
      co_await sim.Delay(Milliseconds(3));
      co_await fastiovd.OnEptFault(1, pages[i], nullptr);
    }
    co_await sim.Delay(Seconds(30.0));
    fastiovd.StopBackgroundZeroer();
  };
  sim.Spawn(faulter());
  sim.Run();
  EXPECT_EQ(fastiovd.total_pending_pages(), 0u);
  EXPECT_EQ(fastiovd.fault_zeroed_pages() + fastiovd.background_zeroed_pages(), 64u);
  for (PageId id : pages) {
    EXPECT_EQ(pmem.frame(id).content, PageContent::kZeroed);
  }
}

TEST_F(FastiovdFixture, FaultDuringScrubRoundWaitsForCompletion) {
  // A fault on a page the scrubber has claimed must observe the zeroed
  // content, never the residue (the KVM-waits-for-notification path).
  auto pages = Retrieve(1, 8);
  Run([&]() -> Task { co_await fastiovd.RegisterPages(1, pages, 0); }());
  fastiovd.StartBackgroundZeroer();
  bool fault_done = false;
  auto faulter = [&]() -> Task {
    // Land the fault just after a scrub round begins (period is 50ms, the
    // batch includes our page).
    co_await sim.Delay(cost.background_zero_period + Microseconds(100));
    co_await fastiovd.OnEptFault(1, pages[0], nullptr);
    EXPECT_EQ(pmem.frame(pages[0]).content, PageContent::kZeroed);
    fault_done = true;
    co_await sim.Delay(Seconds(10.0));
    fastiovd.StopBackgroundZeroer();
  };
  sim.Spawn(faulter());
  sim.Run();
  EXPECT_TRUE(fault_done);
}

TEST_F(FastiovdFixture, ForgetVmDropsState) {
  auto pages = Retrieve(1, 8);
  Run([&]() -> Task { co_await fastiovd.RegisterPages(1, pages, 0); }());
  fastiovd.RegisterInstantZeroRange(1, 0, 4 * kMiB);
  fastiovd.ForgetVm(1);
  EXPECT_EQ(fastiovd.pending_pages(1), 0u);
  for (PageId id : pages) {
    EXPECT_FALSE(pmem.frame(id).in_lazy_table);
  }
  // A later fault on a forgotten page is a no-op.
  bool zeroed_here = false;
  Run([&]() -> Task { co_await fastiovd.OnEptFault(1, pages[0], &zeroed_here); }());
  EXPECT_FALSE(zeroed_here);
}

TEST_F(FastiovdFixture, TwoTierTableSeparatesVms) {
  auto a = Retrieve(1, 4);
  auto b = Retrieve(2, 6);
  Run([&]() -> Task {
    co_await fastiovd.RegisterPages(1, a, 0);
    co_await fastiovd.RegisterPages(2, b, 0);
  }());
  EXPECT_EQ(fastiovd.pending_pages(1), 4u);
  EXPECT_EQ(fastiovd.pending_pages(2), 6u);
  EXPECT_EQ(fastiovd.total_pending_pages(), 10u);
  fastiovd.ForgetVm(1);
  EXPECT_EQ(fastiovd.total_pending_pages(), 6u);
}

}  // namespace
}  // namespace fastiov
