// Name resolution for the CLI (stacks, apps) and the multi-seed repetition
// helper.
#include <gtest/gtest.h>

#include "src/container/stack_config.h"
#include "src/experiments/repeated.h"
#include "src/workload/serverless.h"

namespace fastiov {
namespace {

TEST(StackFromNameTest, ResolvesEveryBaseline) {
  EXPECT_EQ(StackConfig::FromName("vanilla")->name, "Vanilla");
  EXPECT_EQ(StackConfig::FromName("fastiov")->name, "FastIOV");
  EXPECT_EQ(StackConfig::FromName("nonet")->name, "No-Net");
  EXPECT_EQ(StackConfig::FromName("no-net")->name, "No-Net");
  EXPECT_EQ(StackConfig::FromName("ipvtap")->name, "IPvtap");
  EXPECT_EQ(StackConfig::FromName("unfixed")->name, "Vanilla-unfixed");
  EXPECT_EQ(StackConfig::FromName("fastiov-vdpa")->name, "FastIOV-vDPA");
  EXPECT_EQ(StackConfig::FromName("vdpa")->name, "FastIOV-vDPA");
}

TEST(StackFromNameTest, ResolvesVariants) {
  for (char removed : {'L', 'A', 'S', 'D'}) {
    std::string name = "fastiov-";
    name += static_cast<char>(tolower(removed));
    const auto config = StackConfig::FromName(name);
    ASSERT_TRUE(config.has_value()) << name;
    EXPECT_EQ(config->name, std::string("FastIOV-") + removed);
  }
}

TEST(StackFromNameTest, ResolvesPreZeroPercentages) {
  const auto pre10 = StackConfig::FromName("pre10");
  ASSERT_TRUE(pre10.has_value());
  EXPECT_DOUBLE_EQ(pre10->prezero_fraction, 0.1);
  const auto pre100 = StackConfig::FromName("PRE100");
  ASSERT_TRUE(pre100.has_value());
  EXPECT_DOUBLE_EQ(pre100->prezero_fraction, 1.0);
}

TEST(StackFromNameTest, CaseInsensitive) {
  EXPECT_TRUE(StackConfig::FromName("FastIOV").has_value());
  EXPECT_TRUE(StackConfig::FromName("VANILLA").has_value());
}

TEST(StackFromNameTest, RejectsUnknownAndMalformed) {
  EXPECT_FALSE(StackConfig::FromName("bogus").has_value());
  EXPECT_FALSE(StackConfig::FromName("").has_value());
  EXPECT_FALSE(StackConfig::FromName("pre0").has_value());
  EXPECT_FALSE(StackConfig::FromName("pre999").has_value());
  EXPECT_FALSE(StackConfig::FromName("fastiov-x").has_value());
}

TEST(AppFromNameTest, ResolvesAllApps) {
  for (const ServerlessApp& app : ServerlessApp::All()) {
    const auto byname = ServerlessApp::FromName(app.name);
    ASSERT_TRUE(byname.has_value());
    EXPECT_EQ(byname->input_bytes, app.input_bytes);
  }
  EXPECT_TRUE(ServerlessApp::FromName("IMAGE").has_value());
  EXPECT_TRUE(ServerlessApp::FromName("inference").has_value());
  EXPECT_FALSE(ServerlessApp::FromName("hello").has_value());
  EXPECT_FALSE(ServerlessApp::FromName("").has_value());
}

TEST(RepeatedTest, AggregatesAcrossSeeds) {
  ExperimentOptions options;
  options.concurrency = 20;
  options.seed = 100;
  options.keep_runs = true;  // this test inspects the per-run results
  const RepeatedResult r = RunRepeated(StackConfig::FastIov(), options, 4);
  EXPECT_EQ(r.repeats, 4);
  ASSERT_EQ(r.runs.size(), 4u);
  // Seeds differ, so the runs differ...
  EXPECT_NE(r.runs[0].startup.samples(), r.runs[1].startup.samples());
  // ...but each mean is inside the aggregate envelope.
  for (const ExperimentResult& run : r.runs) {
    EXPECT_GE(run.startup.Mean(), r.startup_mean.min);
    EXPECT_LE(run.startup.Mean(), r.startup_mean.max);
  }
  EXPECT_GT(r.startup_mean.mean, 0.0);
  EXPECT_GE(r.startup_p99.mean, r.startup_mean.mean);
}

TEST(RepeatedTest, TaskMetricsOnlyWithApp) {
  ExperimentOptions options;
  options.concurrency = 10;
  const RepeatedResult no_app = RunRepeated(StackConfig::FastIov(), options, 2);
  EXPECT_DOUBLE_EQ(no_app.task_mean.mean, 0.0);
  options.app = ServerlessApp::Image();
  const RepeatedResult with_app = RunRepeated(StackConfig::FastIov(), options, 2);
  EXPECT_GT(with_app.task_mean.mean, with_app.startup_mean.mean);
}

TEST(RepeatedTest, SingleRepeatHasZeroSpread) {
  ExperimentOptions options;
  options.concurrency = 10;
  const RepeatedResult r = RunRepeated(StackConfig::Vanilla(), options, 1);
  EXPECT_DOUBLE_EQ(r.startup_mean.stddev, 0.0);
  EXPECT_DOUBLE_EQ(r.startup_mean.min, r.startup_mean.max);
}

}  // namespace
}  // namespace fastiov
