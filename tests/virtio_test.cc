// The para-virtualized data path and §4.3.2's second exception: virtio
// shared-buffer fills vs. lazy zeroing, with and without proactive faults.
#include "src/virtio/virtio.h"

#include <gtest/gtest.h>

#include "src/core/fastiovd.h"

namespace fastiov {
namespace {

struct VirtioEnv {
  Simulation sim{1};
  HostSpec spec;
  CostModel cost;
  CpuPool cpu{sim, 56};
  PhysicalMemory pmem;
  BandwidthResource fs_bw{sim, 6.0 * static_cast<double>(kGiB)};
  MicroVm vm;
  Fastiovd fastiovd;

  static constexpr uint64_t kBufferGpa = 64 * kMiB;
  static constexpr uint64_t kBufferBytes = 4 * kMiB;

  VirtioEnv()
      : pmem(sim, [&] {
          spec.memory_bytes = 2 * kGiB;
          return spec;
        }(), cost, kHugePageSize),
        vm(sim, cpu, pmem, cost, 1000),
        fastiovd(sim, cpu, pmem, cost) {
    pmem.set_cpu(&cpu);
    vm.AddRegion("ram", RegionType::kRam, 0, 128 * kMiB);
  }

  void Run(Task t) {
    sim.Spawn(std::move(t));
    sim.Run();
  }

  // Populate RAM as a DMA-mapped region with deferred zeroing (FastIOV).
  void PopulateLazy() {
    GuestMemoryRegion* ram = vm.FindRegion("ram");
    Run([&]() -> Task {
      std::vector<PageRun> runs;
      co_await pmem.RetrievePages(vm.pid(), ram->frames.size(), &runs);
      ram->frames.AssignRuns(runs);
      ram->dma_mapped = true;
      co_await fastiovd.RegisterPages(vm.pid(), std::span<const PageRun>(runs), 0);
    }());
    vm.SetFaultHook(&fastiovd);
  }

  // Populate RAM eagerly zeroed (vanilla).
  void PopulateEager() {
    GuestMemoryRegion* ram = vm.FindRegion("ram");
    Run([&]() -> Task {
      std::vector<PageRun> runs;
      co_await pmem.RetrievePages(vm.pid(), ram->frames.size(), &runs);
      co_await pmem.ZeroPages(runs);
      ram->frames.AssignRuns(runs);
      ram->dma_mapped = true;
    }());
  }
};

TEST(VirtQueueTest, PostAndPop) {
  VirtioEnv env;
  env.PopulateEager();
  VirtQueue vq(env.vm, VirtioEnv::kBufferGpa - kHugePageSize);
  env.Run([&]() -> Task { co_await vq.GuestPost(VirtioEnv::kBufferGpa, 1024); }());
  EXPECT_EQ(vq.depth(), 1u);
  VirtQueue::Descriptor desc{};
  ASSERT_TRUE(vq.HostPop(&desc));
  EXPECT_EQ(desc.buffer_gpa, VirtioEnv::kBufferGpa);
  EXPECT_EQ(desc.length, 1024u);
  EXPECT_FALSE(vq.HostPop(&desc));
}

TEST(VirtQueueTest, PostTouchesVringPage) {
  VirtioEnv env;
  env.PopulateEager();
  VirtQueue vq(env.vm, VirtioEnv::kBufferGpa - kHugePageSize);
  env.Run([&]() -> Task { co_await vq.GuestPost(VirtioEnv::kBufferGpa, 64); }());
  EXPECT_GE(env.vm.ept_faults(), 1u);
}

TEST(VirtioFsTest, EagerZeroingReadsAreClean) {
  VirtioEnv env;
  env.PopulateEager();
  VirtioFs fs(env.sim, env.cpu, env.cost, env.vm, env.fs_bw, VirtioEnv::kBufferGpa,
              VirtioEnv::kBufferBytes);
  env.Run([&]() -> Task { co_await fs.GuestReadFile(8 * kMiB, /*proactive_faults=*/false); }());
  EXPECT_EQ(fs.corrupted_reads(), 0u);
  EXPECT_EQ(env.vm.residue_reads(), 0u);
  EXPECT_EQ(fs.reads_completed(), 1u);
}

TEST(VirtioFsTest, LazyZeroingWithProactiveFaultsIsCorrect) {
  // FastIOV's fix: fault the buffer in before the backend writes.
  VirtioEnv env;
  env.PopulateLazy();
  VirtioFs fs(env.sim, env.cpu, env.cost, env.vm, env.fs_bw, VirtioEnv::kBufferGpa,
              VirtioEnv::kBufferBytes);
  env.Run([&]() -> Task { co_await fs.GuestReadFile(8 * kMiB, /*proactive_faults=*/true); }());
  EXPECT_EQ(fs.corrupted_reads(), 0u);
  EXPECT_EQ(env.vm.residue_reads(), 0u);
}

TEST(VirtioFsTest, LazyZeroingWithoutProactiveFaultsCorruptsData) {
  // Failure injection: without the proactive faults, the first guest read
  // EPT-faults the buffer and fastiovd zeroes away the file data the
  // backend just wrote — exactly the §4.3.2 exception-2 crash scenario.
  VirtioEnv env;
  env.PopulateLazy();
  VirtioFs fs(env.sim, env.cpu, env.cost, env.vm, env.fs_bw, VirtioEnv::kBufferGpa,
              VirtioEnv::kBufferBytes);
  env.Run([&]() -> Task { co_await fs.GuestReadFile(4 * kMiB, /*proactive_faults=*/false); }());
  EXPECT_GT(fs.corrupted_reads(), 0u);
}

TEST(VirtioFsTest, SecondReadReusesFaultedBuffer) {
  VirtioEnv env;
  env.PopulateLazy();
  VirtioFs fs(env.sim, env.cpu, env.cost, env.vm, env.fs_bw, VirtioEnv::kBufferGpa,
              VirtioEnv::kBufferBytes);
  env.Run([&]() -> Task {
    co_await fs.GuestReadFile(4 * kMiB, true);
    co_await fs.GuestReadFile(4 * kMiB, true);
  }());
  EXPECT_EQ(fs.corrupted_reads(), 0u);
  EXPECT_EQ(fs.reads_completed(), 2u);
  // Buffer pages fault only once despite two transfers.
  const uint64_t buffer_pages = VirtioEnv::kBufferBytes / kHugePageSize;
  EXPECT_LE(env.vm.ept_faults(), buffer_pages + 2);  // + vring page
}

TEST(VirtioFsTest, LargeReadChunksThroughBuffer) {
  VirtioEnv env;
  env.PopulateEager();
  VirtioFs fs(env.sim, env.cpu, env.cost, env.vm, env.fs_bw, VirtioEnv::kBufferGpa,
              VirtioEnv::kBufferBytes);
  env.Run([&]() -> Task { co_await fs.GuestReadFile(32 * kMiB, false); }());
  // 32 MiB through a 4 MiB window: one read completed, no corruption.
  EXPECT_EQ(fs.reads_completed(), 1u);
  EXPECT_EQ(fs.corrupted_reads(), 0u);
}

TEST(VirtioFsTest, TransferChargesFsBandwidth) {
  VirtioEnv env;
  env.PopulateEager();
  VirtioFs fs(env.sim, env.cpu, env.cost, env.vm, env.fs_bw, VirtioEnv::kBufferGpa,
              VirtioEnv::kBufferBytes);
  env.Run([&]() -> Task { co_await fs.GuestReadFile(12 * kMiB, false); }());
  EXPECT_DOUBLE_EQ(env.fs_bw.total_transferred(), static_cast<double>(12 * kMiB));
}

TEST(VirtioFsTest, OnDemandRegionAllocatedByHostWrites) {
  // No DMA mapping at all (no-network stack): the backend's writes allocate
  // the buffer pages through host page faults.
  VirtioEnv env;
  VirtioFs fs(env.sim, env.cpu, env.cost, env.vm, env.fs_bw, VirtioEnv::kBufferGpa,
              VirtioEnv::kBufferBytes);
  env.Run([&]() -> Task { co_await fs.GuestReadFile(4 * kMiB, false); }());
  EXPECT_EQ(fs.corrupted_reads(), 0u);
  EXPECT_EQ(env.vm.residue_reads(), 0u);
}

}  // namespace
}  // namespace fastiov
