#include "src/container/stack_config.h"

#include <gtest/gtest.h>

namespace fastiov {
namespace {

TEST(StackConfigTest, FastIovEnablesAllFourOptimizations) {
  const StackConfig c = StackConfig::FastIov();
  EXPECT_EQ(c.name, "FastIOV");
  EXPECT_EQ(c.cni, CniKind::kFastIov);
  EXPECT_TRUE(c.lock_decomposition);
  EXPECT_TRUE(c.async_vf_init);
  EXPECT_TRUE(c.skip_image_mapping);
  EXPECT_TRUE(c.decoupled_zeroing);
  EXPECT_TRUE(c.UsesSriov());
}

TEST(StackConfigTest, VanillaDisablesAllOptimizations) {
  const StackConfig c = StackConfig::Vanilla();
  EXPECT_FALSE(c.lock_decomposition);
  EXPECT_FALSE(c.async_vf_init);
  EXPECT_FALSE(c.skip_image_mapping);
  EXPECT_FALSE(c.decoupled_zeroing);
  EXPECT_DOUBLE_EQ(c.prezero_fraction, 0.0);
  EXPECT_TRUE(c.UsesSriov());
}

TEST(StackConfigTest, VariantsRemoveExactlyOne) {
  const StackConfig l = StackConfig::FastIovWithout('L');
  EXPECT_EQ(l.name, "FastIOV-L");
  EXPECT_FALSE(l.lock_decomposition);
  EXPECT_TRUE(l.async_vf_init && l.skip_image_mapping && l.decoupled_zeroing);

  const StackConfig a = StackConfig::FastIovWithout('A');
  EXPECT_FALSE(a.async_vf_init);
  EXPECT_TRUE(a.lock_decomposition && a.skip_image_mapping && a.decoupled_zeroing);

  const StackConfig s = StackConfig::FastIovWithout('S');
  EXPECT_FALSE(s.skip_image_mapping);
  EXPECT_TRUE(s.lock_decomposition && s.async_vf_init && s.decoupled_zeroing);

  const StackConfig d = StackConfig::FastIovWithout('D');
  EXPECT_FALSE(d.decoupled_zeroing);
  EXPECT_TRUE(d.lock_decomposition && d.async_vf_init && d.skip_image_mapping);
}

TEST(StackConfigTest, PreZeroNaming) {
  EXPECT_EQ(StackConfig::PreZero(0.1).name, "Pre10");
  EXPECT_EQ(StackConfig::PreZero(0.5).name, "Pre50");
  EXPECT_EQ(StackConfig::PreZero(1.0).name, "Pre100");
  EXPECT_DOUBLE_EQ(StackConfig::PreZero(0.5).prezero_fraction, 0.5);
}

TEST(StackConfigTest, NonSriovKinds) {
  EXPECT_FALSE(StackConfig::NoNetwork().UsesSriov());
  EXPECT_FALSE(StackConfig::Ipvtap().UsesSriov());
  EXPECT_TRUE(StackConfig::VanillaUnfixed().UsesSriov());
}

TEST(StackConfigTest, CorrectnessKnobsDefaultSafe) {
  const StackConfig c = StackConfig::FastIov();
  EXPECT_TRUE(c.instant_zero_list);
  EXPECT_TRUE(c.proactive_virtio_faults);
  EXPECT_TRUE(c.driver_zeroes_dma_buffers);
}

TEST(StackConfigTest, KindNames) {
  EXPECT_STREQ(CniKindName(CniKind::kNoNetwork), "no-network");
  EXPECT_STREQ(CniKindName(CniKind::kVanillaFixed), "sriov-cni");
  EXPECT_STREQ(CniKindName(CniKind::kVanillaUnfixed), "sriov-cni-unfixed");
  EXPECT_STREQ(CniKindName(CniKind::kFastIov), "fastiov-cni");
  EXPECT_STREQ(CniKindName(CniKind::kIpvtap), "ipvtap");
}

TEST(StackConfigTest, DefaultResources) {
  const StackConfig c = StackConfig::Vanilla();
  EXPECT_EQ(c.guest_memory_bytes, 512 * kMiB);
  EXPECT_DOUBLE_EQ(c.vcpus, 0.5);
  EXPECT_TRUE(c.hugepages);
}

}  // namespace
}  // namespace fastiov
