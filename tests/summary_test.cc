// Gap-fill for Summary::Percentile edge cases and Histogram bucket
// boundaries — the metrics registry and the lock-stats reports lean on these
// exact semantics, so they get their own focused suite.
#include "src/stats/summary.h"

#include <gtest/gtest.h>

namespace fastiov {
namespace {

TEST(PercentileEdgeTest, EmptySummaryIsZeroAtEveryPercentile) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 0.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 0.0);
}

TEST(PercentileEdgeTest, SingleSampleIsEveryPercentile) {
  Summary s;
  s.Add(7.25);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 7.25);
  EXPECT_DOUBLE_EQ(s.Percentile(42.5), 7.25);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 7.25);
}

TEST(PercentileEdgeTest, P0IsMinAndP100IsMaxOnUnsortedInput) {
  Summary s;
  for (double v : {5.0, -3.0, 12.0, 0.5, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), s.Min());
  EXPECT_DOUBLE_EQ(s.Percentile(0), -3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), s.Max());
  EXPECT_DOUBLE_EQ(s.Percentile(100), 12.0);
}

TEST(PercentileEdgeTest, MergeThenPercentileSeesTheUnion) {
  Summary a;
  for (int i = 1; i <= 50; ++i) {
    a.Add(static_cast<double>(i));
  }
  // Force the sorted cache so Merge must invalidate it.
  EXPECT_DOUBLE_EQ(a.Percentile(100), 50.0);
  Summary b;
  for (int i = 51; i <= 101; ++i) {
    b.Add(static_cast<double>(i));
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), 101u);
  EXPECT_DOUBLE_EQ(a.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(a.Percentile(50), 51.0);
  EXPECT_DOUBLE_EQ(a.Percentile(100), 101.0);
  EXPECT_DOUBLE_EQ(a.Sum(), 101.0 * 102.0 / 2.0);
}

TEST(PercentileEdgeTest, MergingAnEmptySummaryChangesNothing) {
  Summary a;
  a.Add(1.0);
  a.Add(3.0);
  Summary empty;
  a.Merge(empty);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_DOUBLE_EQ(a.Percentile(50), 2.0);

  Summary target;
  target.Merge(a);
  EXPECT_EQ(target.Count(), 2u);
  EXPECT_DOUBLE_EQ(target.Percentile(100), 3.0);
}

TEST(HistogramBoundaryTest, InteriorBoundaryValueLandsInUpperBin) {
  // Bins over [0, 10): [0,2) [2,4) [4,6) [6,8) [8,10).
  Histogram h(0.0, 10.0, 5);
  h.Add(2.0);  // exactly on the bin 0 / bin 1 edge -> bin 1
  h.Add(4.0);  // -> bin 2
  h.Add(8.0);  // -> bin 4
  EXPECT_EQ(h.BinCount(0), 0u);
  EXPECT_EQ(h.BinCount(1), 1u);
  EXPECT_EQ(h.BinCount(2), 1u);
  EXPECT_EQ(h.BinCount(4), 1u);
  EXPECT_EQ(h.TotalCount(), 3u);
}

TEST(HistogramBoundaryTest, RangeEdgesClampToEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.0);   // lo -> bin 0
  h.Add(10.0);  // hi (exclusive) clamps to the last bin
  EXPECT_EQ(h.BinCount(0), 1u);
  EXPECT_EQ(h.BinCount(4), 1u);
}

TEST(HistogramBoundaryTest, BinEdgesTileTheRangeExactly) {
  Histogram h(1.0, 5.0, 4);
  EXPECT_DOUBLE_EQ(h.BinLow(0), 1.0);
  for (size_t i = 0; i + 1 < h.NumBins(); ++i) {
    EXPECT_DOUBLE_EQ(h.BinHigh(i), h.BinLow(i + 1));
  }
  EXPECT_DOUBLE_EQ(h.BinHigh(h.NumBins() - 1), 5.0);
}

}  // namespace
}  // namespace fastiov
