// Serverless task-completion properties (§6.6 / Figs. 15-16 shapes).
#include "src/workload/serverless.h"

#include <gtest/gtest.h>

#include "src/container/runtime.h"
#include "src/experiments/startup_experiment.h"

namespace fastiov {
namespace {

ExperimentOptions AppRun(const ServerlessApp& app, int concurrency = 50, uint64_t seed = 42) {
  ExperimentOptions o;
  o.concurrency = concurrency;
  o.seed = seed;
  o.app = app;
  return o;
}

TEST(ServerlessAppTest, PresetsAreOrderedByComputeDemand) {
  const auto apps = ServerlessApp::All();
  ASSERT_EQ(apps.size(), 4u);
  EXPECT_EQ(apps[0].name, "Image");
  EXPECT_EQ(apps[1].name, "Compression");
  EXPECT_EQ(apps[2].name, "Scientific");
  EXPECT_EQ(apps[3].name, "Inference");
  for (size_t i = 1; i < apps.size(); ++i) {
    EXPECT_GT(apps[i].compute_cpu_seconds, apps[i - 1].compute_cpu_seconds);
  }
  EXPECT_EQ(apps[1].input_bytes, static_cast<uint64_t>(9.7 * kMiB));  // the 9.7 MB zip input
}

TEST(ServerlessTest, CompletionIncludesStartupDownloadCompute) {
  const ServerlessApp app = ServerlessApp::Compression();
  const ExperimentResult r = RunStartupExperiment(StackConfig::FastIov(), AppRun(app, 20));
  ASSERT_EQ(r.task_completion.Count(), 20u);
  // Completion exceeds startup by at least the vCPU-capped compute time.
  const double min_compute = app.compute_cpu_seconds / StackConfig::FastIov().vcpus;
  EXPECT_GE(r.task_completion.Min(), r.startup.Min() + min_compute * 0.9);
}

TEST(ServerlessTest, FastIovReducesCompletionForEveryApp) {
  for (const ServerlessApp& app : ServerlessApp::All()) {
    const ExperimentResult vanilla =
        RunStartupExperiment(StackConfig::Vanilla(), AppRun(app));
    const ExperimentResult fast = RunStartupExperiment(StackConfig::FastIov(), AppRun(app));
    EXPECT_LT(fast.task_completion.Mean(), vanilla.task_completion.Mean()) << app.name;
    EXPECT_LT(fast.task_completion.Percentile(99.0),
              vanilla.task_completion.Percentile(99.0))
        << app.name;
  }
}

TEST(ServerlessTest, ReductionRatioShrinksWithTaskLength) {
  // Fig. 15: Image (short) benefits most, Inference (long) least, because
  // the startup saving is a fixed amount of the total.
  std::vector<double> ratios;
  for (const ServerlessApp& app : ServerlessApp::All()) {
    const double v =
        RunStartupExperiment(StackConfig::Vanilla(), AppRun(app)).task_completion.Mean();
    const double f =
        RunStartupExperiment(StackConfig::FastIov(), AppRun(app)).task_completion.Mean();
    ratios.push_back(1.0 - f / v);
  }
  for (size_t i = 1; i < ratios.size(); ++i) {
    EXPECT_LT(ratios[i], ratios[i - 1]) << "apps must be ordered by decreasing benefit";
  }
  EXPECT_GT(ratios.front(), 0.15);  // Image: large benefit
  EXPECT_LT(ratios.back(), 0.30);   // Inference: small benefit
}

TEST(ServerlessTest, DownloadsFlowThroughTheVfDataPlane) {
  const ServerlessApp app = ServerlessApp::Inference();
  Simulation sim(42);
  Host host(sim, HostSpec{}, CostModel{}, StackConfig::FastIov());
  ContainerRuntime runtime(host);
  auto root = [](Simulation* s, Host* h, ContainerRuntime* rt,
                 const ServerlessApp* a) -> Task {
    co_await h->PrepareSharedImage();
    h->PreBindVfsToVfio();
    h->fastiovd().StartBackgroundZeroer();
    std::vector<Process> ps;
    for (int i = 0; i < 10; ++i) {
      ps.push_back(s->Spawn(rt->StartContainer(a)));
    }
    co_await WaitAll(std::move(ps));
    h->fastiovd().StopBackgroundZeroer();
  };
  sim.Spawn(root(&sim, &host, &runtime, &app));
  sim.Run();
  // 10 downloads of the model over the NIC.
  EXPECT_DOUBLE_EQ(host.nic().data_plane().total_transferred(),
                   10.0 * static_cast<double>(app.input_bytes));
}

TEST(ServerlessTest, MoreVcpusShortenExecution) {
  // Fig. 16e-h: FastIOV lets apps reap the benefit of larger allocations.
  const ServerlessApp app = ServerlessApp::Scientific();
  auto run = [&](double vcpus, uint64_t mem) {
    StackConfig c = StackConfig::FastIov();
    c.vcpus = vcpus;
    c.guest_memory_bytes = mem;
    return RunStartupExperiment(c, AppRun(app, 30)).task_completion.Mean();
  };
  const double small = run(0.5, 512 * kMiB);
  const double large = run(2.0, 2 * kGiB);
  EXPECT_LT(large, small);
}

TEST(ServerlessTest, HigherConcurrencyWidensFastIovAdvantage) {
  // Fig. 16a-d shape.
  const ServerlessApp app = ServerlessApp::Image();
  auto ratio = [&](int n) {
    const double v =
        RunStartupExperiment(StackConfig::Vanilla(), AppRun(app, n)).task_completion.Mean();
    const double f =
        RunStartupExperiment(StackConfig::FastIov(), AppRun(app, n)).task_completion.Mean();
    return 1.0 - f / v;
  };
  EXPECT_GT(ratio(150), ratio(15));
}

TEST(ServerlessTest, NoViolationsDuringAppExecution) {
  for (const ServerlessApp& app : ServerlessApp::All()) {
    const ExperimentResult r = RunStartupExperiment(StackConfig::FastIov(), AppRun(app, 20));
    EXPECT_EQ(r.residue_reads, 0u) << app.name;
    EXPECT_EQ(r.corruptions, 0u) << app.name;
  }
}

}  // namespace
}  // namespace fastiov
