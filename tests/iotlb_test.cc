// IOTLB: LRU behaviour, invalidation, and the cached-translation path the
// DMA engine uses.
#include "src/iommu/iotlb.h"

#include <gtest/gtest.h>

#include "src/iommu/iommu.h"

namespace fastiov {
namespace {

TEST(IoTlbTest, MissThenHit) {
  IoTlb tlb(4);
  EXPECT_FALSE(tlb.Lookup(1));
  tlb.Insert(1);
  EXPECT_TRUE(tlb.Lookup(1));
  EXPECT_EQ(tlb.misses(), 1u);
  EXPECT_EQ(tlb.hits(), 1u);
}

TEST(IoTlbTest, LruEviction) {
  IoTlb tlb(2);
  tlb.Insert(1);
  tlb.Insert(2);
  tlb.Insert(3);  // evicts 1
  EXPECT_FALSE(tlb.Lookup(1));
  EXPECT_TRUE(tlb.Lookup(2));
  EXPECT_TRUE(tlb.Lookup(3));
  EXPECT_EQ(tlb.size(), 2u);
}

TEST(IoTlbTest, LookupRefreshesRecency) {
  IoTlb tlb(2);
  tlb.Insert(1);
  tlb.Insert(2);
  EXPECT_TRUE(tlb.Lookup(1));  // 1 becomes most recent
  tlb.Insert(3);               // evicts 2, not 1
  EXPECT_TRUE(tlb.Lookup(1));
  EXPECT_FALSE(tlb.Lookup(2));
}

TEST(IoTlbTest, ReinsertIsIdempotent) {
  IoTlb tlb(2);
  tlb.Insert(1);
  tlb.Insert(1);
  EXPECT_EQ(tlb.size(), 1u);
}

TEST(IoTlbTest, InvalidateSingleAndFlush) {
  IoTlb tlb(4);
  tlb.Insert(1);
  tlb.Insert(2);
  tlb.Invalidate(1);
  EXPECT_FALSE(tlb.Lookup(1));
  EXPECT_TRUE(tlb.Lookup(2));
  tlb.Flush();
  EXPECT_EQ(tlb.size(), 0u);
  EXPECT_FALSE(tlb.Lookup(2));
}

TEST(IoTlbTest, InvalidateMissingIsNoop) {
  IoTlb tlb(4);
  tlb.Invalidate(42);
  EXPECT_EQ(tlb.size(), 0u);
}

TEST(IoTlbTest, InvalidateRangeDropsOnlyInRangeTags) {
  IoTlb tlb(8);
  for (uint64_t tag = 0; tag < 8; ++tag) {
    tlb.Insert(tag);
  }
  tlb.InvalidateRange(2, 4);  // tags 2..5
  EXPECT_TRUE(tlb.Lookup(0));
  EXPECT_TRUE(tlb.Lookup(1));
  EXPECT_FALSE(tlb.Lookup(2));
  EXPECT_FALSE(tlb.Lookup(5));
  EXPECT_TRUE(tlb.Lookup(6));
  EXPECT_TRUE(tlb.Lookup(7));
}

TEST(IoTlbTest, InvalidateRangeLargerThanTlbScansOnce) {
  IoTlb tlb(4);
  tlb.Insert(10);
  tlb.Insert(11);
  tlb.Insert((1 << 20) + 5000);
  // Range far wider than the TLB capacity: exercises the scan path.
  tlb.InvalidateRange(0, 1 << 20);
  EXPECT_EQ(tlb.size(), 1u);
  EXPECT_TRUE(tlb.Lookup((1 << 20) + 5000));
  tlb.InvalidateRange(0, 0);  // empty range is a no-op
  EXPECT_EQ(tlb.size(), 1u);
}

TEST(IommuDomainTest, TranslateCachedInstallsAndHits) {
  Iommu iommu;
  IommuDomain* d = iommu.CreateDomain();
  d->Map(0, 7, kHugePageSize);
  // First device access: miss + walk + install.
  auto t1 = d->TranslateCached(0x1000);
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->page, 7u);
  EXPECT_EQ(d->iotlb().misses(), 1u);
  // Same IOVA page again: hit.
  auto t2 = d->TranslateCached(0x1800);
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(d->iotlb().hits(), 1u);
}

TEST(IommuDomainTest, RingBufferLocalityHitsDominate) {
  Iommu iommu;
  IommuDomain* d = iommu.CreateDomain();
  for (uint64_t i = 0; i < 8; ++i) {
    d->Map(i * kHugePageSize, i, kHugePageSize);
  }
  // A ring: the device cycles over the same two 4 KiB-granule pages.
  for (int round = 0; round < 100; ++round) {
    d->TranslateCached(0x0);
    d->TranslateCached(0x1000);
  }
  EXPECT_EQ(d->iotlb().misses(), 2u);
  EXPECT_EQ(d->iotlb().hits(), 198u);
}

TEST(IommuDomainTest, UnmapInvalidatesTlbEntry) {
  Iommu iommu;
  IommuDomain* d = iommu.CreateDomain();
  d->Map(0, 7, kSmallPageSize);
  EXPECT_TRUE(d->TranslateCached(0).has_value());
  d->Unmap(0);
  // Entry gone from both table and TLB; a stale hit must not resurrect it.
  EXPECT_FALSE(d->TranslateCached(0).has_value());
}

TEST(IommuDomainTest, UnmapHugePageInvalidatesAllCachedGranules) {
  // Regression: the IOTLB is tagged at 4 KiB granularity, so unmapping a
  // 2 MiB page must invalidate every granule tag, not just the first one.
  // The old code invalidated only iova/kSmallPageSize, leaving stale hits
  // for the other 511 granules.
  Iommu iommu;
  IommuDomain* d = iommu.CreateDomain();
  d->Map(0, 7, kHugePageSize);
  // Populate several distinct granule tags inside the huge page.
  EXPECT_TRUE(d->TranslateCached(0x0).has_value());
  EXPECT_TRUE(d->TranslateCached(0x1000).has_value());
  EXPECT_TRUE(d->TranslateCached(kHugePageSize - kSmallPageSize).has_value());
  EXPECT_EQ(d->iotlb().size(), 3u);
  d->Unmap(0);
  EXPECT_FALSE(d->TranslateCached(0x0).has_value());
  EXPECT_FALSE(d->TranslateCached(0x1000).has_value());
  EXPECT_FALSE(d->TranslateCached(kHugePageSize - kSmallPageSize).has_value());
}

TEST(IommuDomainTest, UnmapRangeInvalidatesAllCachedGranules) {
  Iommu iommu;
  IommuDomain* d = iommu.CreateDomain();
  ASSERT_TRUE(d->MapRange(0, PageRun{100, 4}, kSmallPageSize));
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(d->TranslateCached(i * kSmallPageSize).has_value());
  }
  EXPECT_EQ(d->UnmapRange(0, 4, kSmallPageSize), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(d->TranslateCached(i * kSmallPageSize).has_value());
  }
}

TEST(IommuDomainTest, TranslateCachedMissOnUnmappedDoesNotPollute) {
  Iommu iommu;
  IommuDomain* d = iommu.CreateDomain();
  EXPECT_FALSE(d->TranslateCached(0x5000).has_value());
  EXPECT_EQ(d->iotlb().size(), 0u);
}

}  // namespace
}  // namespace fastiov
