// IOTLB: LRU behaviour, invalidation, and the cached-translation path the
// DMA engine uses.
#include "src/iommu/iotlb.h"

#include <gtest/gtest.h>

#include "src/iommu/iommu.h"

namespace fastiov {
namespace {

TEST(IoTlbTest, MissThenHit) {
  IoTlb tlb(4);
  EXPECT_FALSE(tlb.Lookup(1));
  tlb.Insert(1);
  EXPECT_TRUE(tlb.Lookup(1));
  EXPECT_EQ(tlb.misses(), 1u);
  EXPECT_EQ(tlb.hits(), 1u);
}

TEST(IoTlbTest, LruEviction) {
  IoTlb tlb(2);
  tlb.Insert(1);
  tlb.Insert(2);
  tlb.Insert(3);  // evicts 1
  EXPECT_FALSE(tlb.Lookup(1));
  EXPECT_TRUE(tlb.Lookup(2));
  EXPECT_TRUE(tlb.Lookup(3));
  EXPECT_EQ(tlb.size(), 2u);
}

TEST(IoTlbTest, LookupRefreshesRecency) {
  IoTlb tlb(2);
  tlb.Insert(1);
  tlb.Insert(2);
  EXPECT_TRUE(tlb.Lookup(1));  // 1 becomes most recent
  tlb.Insert(3);               // evicts 2, not 1
  EXPECT_TRUE(tlb.Lookup(1));
  EXPECT_FALSE(tlb.Lookup(2));
}

TEST(IoTlbTest, ReinsertIsIdempotent) {
  IoTlb tlb(2);
  tlb.Insert(1);
  tlb.Insert(1);
  EXPECT_EQ(tlb.size(), 1u);
}

TEST(IoTlbTest, InvalidateSingleAndFlush) {
  IoTlb tlb(4);
  tlb.Insert(1);
  tlb.Insert(2);
  tlb.Invalidate(1);
  EXPECT_FALSE(tlb.Lookup(1));
  EXPECT_TRUE(tlb.Lookup(2));
  tlb.Flush();
  EXPECT_EQ(tlb.size(), 0u);
  EXPECT_FALSE(tlb.Lookup(2));
}

TEST(IoTlbTest, InvalidateMissingIsNoop) {
  IoTlb tlb(4);
  tlb.Invalidate(42);
  EXPECT_EQ(tlb.size(), 0u);
}

TEST(IommuDomainTest, TranslateCachedInstallsAndHits) {
  Iommu iommu;
  IommuDomain* d = iommu.CreateDomain();
  d->Map(0, 7, kHugePageSize);
  // First device access: miss + walk + install.
  auto t1 = d->TranslateCached(0x1000);
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->page, 7u);
  EXPECT_EQ(d->iotlb().misses(), 1u);
  // Same IOVA page again: hit.
  auto t2 = d->TranslateCached(0x1800);
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(d->iotlb().hits(), 1u);
}

TEST(IommuDomainTest, RingBufferLocalityHitsDominate) {
  Iommu iommu;
  IommuDomain* d = iommu.CreateDomain();
  for (uint64_t i = 0; i < 8; ++i) {
    d->Map(i * kHugePageSize, i, kHugePageSize);
  }
  // A ring: the device cycles over the same two 4 KiB-granule pages.
  for (int round = 0; round < 100; ++round) {
    d->TranslateCached(0x0);
    d->TranslateCached(0x1000);
  }
  EXPECT_EQ(d->iotlb().misses(), 2u);
  EXPECT_EQ(d->iotlb().hits(), 198u);
}

TEST(IommuDomainTest, UnmapInvalidatesTlbEntry) {
  Iommu iommu;
  IommuDomain* d = iommu.CreateDomain();
  d->Map(0, 7, kSmallPageSize);
  EXPECT_TRUE(d->TranslateCached(0).has_value());
  d->Unmap(0);
  // Entry gone from both table and TLB; a stale hit must not resurrect it.
  EXPECT_FALSE(d->TranslateCached(0).has_value());
}

TEST(IommuDomainTest, TranslateCachedMissOnUnmappedDoesNotPollute) {
  Iommu iommu;
  IommuDomain* d = iommu.CreateDomain();
  EXPECT_FALSE(d->TranslateCached(0x5000).has_value());
  EXPECT_EQ(d->iotlb().size(), 0u);
}

}  // namespace
}  // namespace fastiov
