// NUMA-aware allocation: home-node preference, spillover, remote-zeroing
// penalty, and single-node equivalence.
#include <gtest/gtest.h>

#include "src/experiments/startup_experiment.h"
#include "src/mem/physical_memory.h"

namespace fastiov {
namespace {

struct NumaEnv {
  Simulation sim{1};
  HostSpec spec;
  CostModel cost;
  CpuPool cpu{sim, 8};
  PhysicalMemory pmem;

  explicit NumaEnv(int nodes, uint64_t memory = 1 * kGiB, double penalty = 1.45)
      : pmem(sim, [&] {
          spec.memory_bytes = memory;
          spec.numa_nodes = nodes;
          spec.remote_zeroing_penalty = penalty;
          return spec;
        }(), cost, kHugePageSize) {
    pmem.set_cpu(&cpu);
  }

  std::vector<PageId> Retrieve(int owner, uint64_t n) {
    std::vector<PageId> pages;
    sim.Spawn([](NumaEnv* e, int o, uint64_t count, std::vector<PageId>* out) -> Task {
      co_await e->pmem.RetrievePages(o, count, out);
    }(this, owner, n, &pages));
    sim.Run();
    return pages;
  }

  SimTime Zero(const std::vector<PageId>& pages) {
    const SimTime before = sim.Now();
    sim.Spawn([](NumaEnv* e, const std::vector<PageId>* p) -> Task {
      co_await e->pmem.ZeroPages(*p);
    }(this, &pages));
    sim.Run();
    return sim.Now() - before;
  }
};

TEST(NumaTest, FramesAreStripedAcrossNodes) {
  NumaEnv env(2);
  EXPECT_EQ(env.pmem.numa_nodes(), 2);
  EXPECT_EQ(env.pmem.NodeOfFrame(0), 0);
  EXPECT_EQ(env.pmem.NodeOfFrame(env.pmem.total_pages() - 1), 1);
  EXPECT_EQ(env.pmem.free_pages_on_node(0) + env.pmem.free_pages_on_node(1),
            env.pmem.total_pages());
}

TEST(NumaTest, HomeNodeRoundRobin) {
  NumaEnv env(2);
  EXPECT_EQ(env.pmem.HomeNode(1000), 0);
  EXPECT_EQ(env.pmem.HomeNode(1001), 1);
  EXPECT_EQ(env.pmem.HomeNode(0), 0);   // host allocations on node 0
  EXPECT_EQ(env.pmem.HomeNode(-1), 0);
}

TEST(NumaTest, AllocationPrefersHomeNode) {
  NumaEnv env(2);
  const auto pages = env.Retrieve(/*owner=*/1001, 64);  // home node 1
  for (PageId id : pages) {
    EXPECT_EQ(env.pmem.NodeOfFrame(id), 1);
  }
  EXPECT_EQ(env.pmem.local_allocations(), 64u);
  EXPECT_EQ(env.pmem.remote_allocations(), 0u);
}

TEST(NumaTest, SpillsToRemoteNodeWhenHomeExhausted) {
  NumaEnv env(2, 256 * kMiB);  // 128 pages, 64 per node
  const auto first = env.Retrieve(1000, 64);  // drains node 0
  EXPECT_EQ(env.pmem.free_pages_on_node(0), 0u);
  const auto second = env.Retrieve(1000, 32);  // must spill to node 1
  for (PageId id : second) {
    EXPECT_EQ(env.pmem.NodeOfFrame(id), 1);
  }
  EXPECT_GT(env.pmem.remote_allocations(), 0u);
}

TEST(NumaTest, RemoteZeroingIsSlower) {
  NumaEnv env(2, 256 * kMiB, /*penalty=*/2.0);
  env.cost.jitter_sigma = 0.0;
  // Local pages for pid 1000 (node 0).
  const auto local = env.Retrieve(1000, 32);
  const SimTime local_time = env.Zero(local);
  // Drain node 0, then allocate remote pages for another node-0 pid.
  env.Retrieve(1000, 32);  // node 0 now empty (64 total)
  const auto remote = env.Retrieve(1002, 32);  // home 0, gets node 1
  for (PageId id : remote) {
    EXPECT_EQ(env.pmem.NodeOfFrame(id), 1);
  }
  const SimTime remote_time = env.Zero(remote);
  // Penalty 2.0 -> remote zeroing takes ~2x as long.
  EXPECT_NEAR(remote_time.ToSecondsF() / local_time.ToSecondsF(), 2.0, 0.25);
}

TEST(NumaTest, SingleNodeHasNoRemoteAllocations) {
  NumaEnv env(1);
  env.Retrieve(1001, 128);
  EXPECT_EQ(env.pmem.numa_nodes(), 1);
  EXPECT_EQ(env.pmem.remote_allocations(), 0u);
}

TEST(NumaTest, FreeReturnsToOwningNode) {
  NumaEnv env(2);
  const auto pages = env.Retrieve(1001, 16);
  const uint64_t node1_before = env.pmem.free_pages_on_node(1);
  env.pmem.FreePages(pages);
  EXPECT_EQ(env.pmem.free_pages_on_node(1), node1_before + 16);
}

TEST(NumaTest, FullLoadExperimentSpillsButStaysCorrect) {
  // At 200 containers x (512 MiB + image) the per-node pools are unbalanced
  // by the pid round-robin and the host's shared image; spillover must not
  // break anything.
  ExperimentOptions options;
  options.concurrency = 100;
  const ExperimentResult r = RunStartupExperiment(StackConfig::Vanilla(), options);
  EXPECT_EQ(r.residue_reads, 0u);
  EXPECT_EQ(r.corruptions, 0u);
}

TEST(NumaTest, SingleNodeHostMatchesBaselineShape) {
  // Collapsing to one node must not change the qualitative result.
  ExperimentOptions one;
  one.concurrency = 60;
  one.host.numa_nodes = 1;
  ExperimentOptions two = one;
  two.host.numa_nodes = 2;
  const double v1 = RunStartupExperiment(StackConfig::Vanilla(), one).startup.Mean();
  const double v2 = RunStartupExperiment(StackConfig::Vanilla(), two).startup.Mean();
  EXPECT_NEAR(v1, v2, 0.35 * v1);
}

}  // namespace
}  // namespace fastiov
