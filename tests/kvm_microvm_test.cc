// Guest memory regions, EPT faulting, on-demand allocation and the
// residue-observation property.
#include "src/kvm/microvm.h"

#include <gtest/gtest.h>

namespace fastiov {
namespace {

struct VmFixture : public ::testing::Test {
  Simulation sim{1};
  HostSpec spec;
  CostModel cost;
  CpuPool cpu{sim, 56};
  PhysicalMemory pmem;
  MicroVm vm;

  VmFixture()
      : pmem(sim, [&] {
          spec.memory_bytes = 4 * kGiB;
          return spec;
        }(), cost, kHugePageSize),
        vm(sim, cpu, pmem, cost, /*pid=*/1000) {
    pmem.set_cpu(&cpu);
  }

  void Run(Task t) {
    sim.Spawn(std::move(t));
    sim.Run();
  }

  // Populates a region with freshly retrieved (residue) frames.
  void Populate(GuestMemoryRegion& region) {
    Run([&]() -> Task {
      std::vector<PageRun> runs;
      co_await pmem.RetrievePages(vm.pid(), region.frames.size(), &runs);
      region.frames.AssignRuns(runs);
      region.dma_mapped = true;
    }());
  }
};

TEST_F(VmFixture, RegionLookup) {
  vm.AddRegion("ram", RegionType::kRam, 0, 512 * kMiB);
  vm.AddRegion("image", RegionType::kImage, 512 * kMiB, 256 * kMiB);
  EXPECT_NE(vm.FindRegion("ram"), nullptr);
  EXPECT_EQ(vm.FindRegion("nope"), nullptr);
  EXPECT_EQ(vm.RegionForGpa(100 * kMiB)->name, "ram");
  EXPECT_EQ(vm.RegionForGpa(600 * kMiB)->name, "image");
  EXPECT_EQ(vm.RegionForGpa(2 * kGiB), nullptr);
  EXPECT_EQ(vm.FindRegion("ram")->frames.size(), 256u);
}

TEST_F(VmFixture, EptFaultOncePerPage) {
  GuestMemoryRegion& ram = vm.AddRegion("ram", RegionType::kRam, 0, 64 * kMiB);
  Populate(ram);
  Run([&]() -> Task { co_await vm.TouchRange(0, 64 * kMiB, /*write=*/true); }());
  EXPECT_EQ(vm.ept_faults(), 32u);
  EXPECT_EQ(vm.ept().num_entries(), 32u);
  // Second pass: no further faults.
  Run([&]() -> Task { co_await vm.TouchRange(0, 64 * kMiB, /*write=*/false); }());
  EXPECT_EQ(vm.ept_faults(), 32u);
}

TEST_F(VmFixture, SubPageTouchFaultsWholePage) {
  GuestMemoryRegion& ram = vm.AddRegion("ram", RegionType::kRam, 0, 64 * kMiB);
  Populate(ram);
  Run([&]() -> Task { co_await vm.TouchRange(100, 8, /*write=*/false); }());
  EXPECT_EQ(vm.ept_faults(), 1u);
}

TEST_F(VmFixture, OnDemandAllocationZeroesPages) {
  // Without DMA mapping (no-network path), pages materialize at first touch
  // pre-zeroed by the host kernel.
  vm.AddRegion("ram", RegionType::kRam, 0, 64 * kMiB);
  Run([&]() -> Task { co_await vm.TouchRange(0, 8 * kMiB, /*write=*/false); }());
  EXPECT_EQ(vm.pages_allocated_on_demand(), 4u);
  EXPECT_EQ(vm.residue_reads(), 0u);
  // Untouched pages stay unallocated (region has 32 pages; 4 touched).
  EXPECT_EQ(vm.FindRegion("ram")->frames.Get(31), kInvalidPage);
}

TEST_F(VmFixture, ReadingUnzeroedDmaPageObservesResidue) {
  // A DMA-mapped region whose zeroing never happened: the guest reads
  // another tenant's residue. This is the leak eager/lazy zeroing prevents.
  GuestMemoryRegion& ram = vm.AddRegion("ram", RegionType::kRam, 0, 16 * kMiB);
  Populate(ram);
  Run([&]() -> Task { co_await vm.TouchRange(0, 16 * kMiB, /*write=*/false); }());
  EXPECT_EQ(vm.residue_reads(), 8u);
}

TEST_F(VmFixture, WritesDoNotCountResidue) {
  GuestMemoryRegion& ram = vm.AddRegion("ram", RegionType::kRam, 0, 16 * kMiB);
  Populate(ram);
  Run([&]() -> Task { co_await vm.TouchRange(0, 16 * kMiB, /*write=*/true); }());
  EXPECT_EQ(vm.residue_reads(), 0u);
  EXPECT_EQ(pmem.frame(ram.frames.Get(0)).content, PageContent::kData);
}

TEST_F(VmFixture, HostWriteBypassesEptAndSetsData) {
  GuestMemoryRegion& ram = vm.AddRegion("ram", RegionType::kRam, 0, 16 * kMiB);
  Populate(ram);
  vm.HostWritePages(ram, 0, 4);
  EXPECT_EQ(vm.ept_faults(), 0u);  // host writes do not touch the EPT
  EXPECT_EQ(pmem.frame(ram.frames.Get(0)).content, PageContent::kData);
  // Guest later reads the hypervisor-written data: fault but no residue.
  Run([&]() -> Task { co_await vm.TouchRange(0, 8 * kMiB, /*write=*/false); }());
  EXPECT_EQ(vm.residue_reads(), 0u);
  EXPECT_EQ(vm.ept_faults(), 4u);
}

class ZeroingHook : public EptFaultHook {
 public:
  explicit ZeroingHook(PhysicalMemory& pmem) : pmem_(&pmem) {}
  Task OnEptFault(int /*pid*/, PageId page, bool* zeroed_here) override {
    ++calls;
    if (pmem_->frame(page).content == PageContent::kResidue) {
      co_await pmem_->ZeroPage(page);
      ++zeroed;
      if (zeroed_here != nullptr) {
        *zeroed_here = true;
      }
    }
  }
  PhysicalMemory* pmem_;
  int calls = 0;
  int zeroed = 0;
};

TEST_F(VmFixture, FaultHookInvokedBeforeAccess) {
  GuestMemoryRegion& ram = vm.AddRegion("ram", RegionType::kRam, 0, 16 * kMiB);
  Populate(ram);
  ZeroingHook hook(pmem);
  vm.SetFaultHook(&hook);
  Run([&]() -> Task { co_await vm.TouchRange(0, 16 * kMiB, /*write=*/false); }());
  EXPECT_EQ(hook.calls, 8);
  EXPECT_EQ(hook.zeroed, 8);
  // The hook scrubbed each page before the read: no residue observed.
  EXPECT_EQ(vm.residue_reads(), 0u);
}

TEST_F(VmFixture, ProactiveFaultPopulatesEpt) {
  GuestMemoryRegion& ram = vm.AddRegion("ram", RegionType::kRam, 0, 16 * kMiB);
  Populate(ram);
  ZeroingHook hook(pmem);
  vm.SetFaultHook(&hook);
  Run([&]() -> Task { co_await vm.ProactiveFault(4 * kMiB, 4 * kMiB); }());
  EXPECT_EQ(vm.ept().num_entries(), 2u);
  EXPECT_EQ(hook.zeroed, 2);
}

TEST_F(VmFixture, ReleaseMemoryFreesUnpinnedOwnedFrames) {
  GuestMemoryRegion& ram = vm.AddRegion("ram", RegionType::kRam, 0, 16 * kMiB);
  Populate(ram);
  const uint64_t used_before = pmem.used_pages();
  vm.ReleaseMemory();
  EXPECT_EQ(pmem.used_pages(), used_before - 8);
  EXPECT_EQ(ram.frames.Get(0), kInvalidPage);
}

TEST_F(VmFixture, ReleaseMemorySkipsSharedBacking) {
  GuestMemoryRegion& image = vm.AddRegion("image", RegionType::kImage, 0, 16 * kMiB);
  std::vector<PageId> shared;
  Run([&]() -> Task { co_await pmem.RetrievePages(0, 8, &shared); }());
  image.frames.AssignPages(shared);
  image.shared_backing = true;
  const uint64_t used_before = pmem.used_pages();
  vm.ReleaseMemory();
  EXPECT_EQ(pmem.used_pages(), used_before);  // shared page cache untouched
}

TEST_F(VmFixture, EptFaultChargesTime) {
  GuestMemoryRegion& ram = vm.AddRegion("ram", RegionType::kRam, 0, 64 * kMiB);
  Populate(ram);
  Run([&]() -> Task { co_await vm.TouchRange(0, 64 * kMiB, /*write=*/true); }());
  const SimTime first_pass = sim.Now();
  EXPECT_GT(first_pass, SimTime::Zero());
  Run([&]() -> Task { co_await vm.TouchRange(0, 64 * kMiB, /*write=*/true); }());
  // Second pass is free: all entries present.
  EXPECT_EQ(sim.Now(), first_pass);
}

}  // namespace
}  // namespace fastiov
