#include "src/simcore/simulation.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace fastiov {
namespace {

Task Record(Simulation& sim, SimTime delay, std::vector<int>* log, int id) {
  co_await sim.Delay(delay);
  log->push_back(id);
}

TEST(SimulationTest, StartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.Now(), SimTime::Zero());
}

TEST(SimulationTest, DelayAdvancesClock) {
  Simulation sim;
  std::vector<int> log;
  sim.Spawn(Record(sim, Milliseconds(5), &log, 1));
  sim.Run();
  EXPECT_EQ(sim.Now(), Milliseconds(5));
  EXPECT_EQ(log, std::vector<int>({1}));
}

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> log;
  sim.Spawn(Record(sim, Milliseconds(30), &log, 3));
  sim.Spawn(Record(sim, Milliseconds(10), &log, 1));
  sim.Spawn(Record(sim, Milliseconds(20), &log, 2));
  sim.Run();
  EXPECT_EQ(log, std::vector<int>({1, 2, 3}));
}

TEST(SimulationTest, SameTimestampFifoOrder) {
  Simulation sim;
  std::vector<int> log;
  for (int i = 0; i < 10; ++i) {
    sim.Spawn(Record(sim, Milliseconds(5), &log, i));
  }
  sim.Run();
  std::vector<int> expected;
  for (int i = 0; i < 10; ++i) {
    expected.push_back(i);
  }
  EXPECT_EQ(log, expected);
}

TEST(SimulationTest, ScheduleCallback) {
  Simulation sim;
  bool fired = false;
  sim.ScheduleCallback(Milliseconds(7), [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), Milliseconds(7));
}

TEST(SimulationTest, SchedulingIntoThePastThrows) {
  Simulation sim;
  sim.ScheduleCallback(Milliseconds(10), [] {});
  sim.Run();
  ASSERT_EQ(sim.Now(), Milliseconds(10));
  // Time only moves forward; an event before now would silently time-travel,
  // so it must be rejected loudly instead.
  EXPECT_THROW(sim.ScheduleCallback(Milliseconds(5), [] {}), std::logic_error);
  try {
    sim.ScheduleCallback(Milliseconds(5), [] {});
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("in the past"), std::string::npos) << what;
  }
  // Scheduling exactly at `now` stays legal (zero-delay events are common).
  bool fired = false;
  sim.ScheduleCallback(Milliseconds(10), [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
}

Task AwaitChild(Simulation& sim, std::vector<int>* log) {
  co_await Record(sim, Milliseconds(3), log, 1);
  log->push_back(2);
}

TEST(SimulationTest, AwaitingChildTaskRunsItToCompletion) {
  Simulation sim;
  std::vector<int> log;
  sim.Spawn(AwaitChild(sim, &log));
  sim.Run();
  EXPECT_EQ(log, std::vector<int>({1, 2}));
  EXPECT_EQ(sim.Now(), Milliseconds(3));
}

Task JoinBoth(Simulation& sim, std::vector<int>* log) {
  Process p1 = sim.Spawn(Record(sim, Milliseconds(10), log, 1));
  Process p2 = sim.Spawn(Record(sim, Milliseconds(5), log, 2));
  co_await p1.Join();
  co_await p2.Join();
  log->push_back(3);
}

TEST(SimulationTest, SpawnRunsConcurrently) {
  Simulation sim;
  std::vector<int> log;
  sim.Spawn(JoinBoth(sim, &log));
  sim.Run();
  // p2 (5ms) finishes before p1 (10ms); join order does not matter.
  EXPECT_EQ(log, std::vector<int>({2, 1, 3}));
  EXPECT_EQ(sim.Now(), Milliseconds(10));
}

TEST(SimulationTest, JoinAfterCompletionDoesNotBlock) {
  Simulation sim;
  std::vector<int> log;
  auto outer = [](Simulation& s, std::vector<int>* l) -> Task {
    Process p = s.Spawn(Record(s, Milliseconds(1), l, 1));
    co_await s.Delay(Milliseconds(50));
    co_await p.Join();  // long done
    l->push_back(2);
  };
  sim.Spawn(outer(sim, &log));
  sim.Run();
  EXPECT_EQ(log, std::vector<int>({1, 2}));
}

Task Throws(Simulation& sim) {
  co_await sim.Delay(Milliseconds(1));
  throw std::runtime_error("boom");
}

TEST(SimulationTest, UnjoinedExceptionSurfacesFromRun) {
  Simulation sim;
  sim.Spawn(Throws(sim));
  EXPECT_THROW(sim.Run(), std::runtime_error);
}

Task JoinsThrower(Simulation& sim, bool* caught) {
  Process p = sim.Spawn(Throws(sim));
  try {
    co_await p.Join();
  } catch (const std::runtime_error&) {
    *caught = true;
  }
}

TEST(SimulationTest, JoinPropagatesException) {
  Simulation sim;
  bool caught = false;
  sim.Spawn(JoinsThrower(sim, &caught));
  sim.Run();  // must NOT rethrow: the exception was consumed by Join
  EXPECT_TRUE(caught);
}

Task ThrowsThroughChild(Simulation& sim, bool* caught) {
  try {
    co_await Throws(sim);
  } catch (const std::runtime_error&) {
    *caught = true;
  }
}

TEST(SimulationTest, ChildTaskExceptionPropagatesToAwaiter) {
  Simulation sim;
  bool caught = false;
  sim.Spawn(ThrowsThroughChild(sim, &caught));
  sim.Run();
  EXPECT_TRUE(caught);
}

TEST(SimulationTest, WaitAllJoinsEverything) {
  Simulation sim;
  std::vector<int> log;
  auto outer = [](Simulation& s, std::vector<int>* l) -> Task {
    std::vector<Process> ps;
    for (int i = 0; i < 5; ++i) {
      ps.push_back(s.Spawn(Record(s, Milliseconds(i + 1), l, i)));
    }
    co_await WaitAll(std::move(ps));
    l->push_back(99);
  };
  sim.Spawn(outer(sim, &log));
  sim.Run();
  EXPECT_EQ(log.back(), 99);
  EXPECT_EQ(log.size(), 6u);
}

TEST(SimulationTest, RunUntilStopsAtBoundary) {
  Simulation sim;
  std::vector<int> log;
  sim.Spawn(Record(sim, Milliseconds(10), &log, 1));
  sim.Spawn(Record(sim, Milliseconds(30), &log, 2));
  sim.RunUntil(Milliseconds(20));
  EXPECT_EQ(log, std::vector<int>({1}));
  EXPECT_EQ(sim.Now(), Milliseconds(20));
  sim.Run();
  EXPECT_EQ(log, std::vector<int>({1, 2}));
}

TEST(SimulationTest, EventCountIsDeterministic) {
  auto run = [] {
    Simulation sim(99);
    std::vector<int> log;
    for (int i = 0; i < 20; ++i) {
      sim.Spawn(Record(sim, Milliseconds(sim.rng().UniformInt(1, 50)), &log, i));
    }
    sim.Run();
    return std::make_pair(sim.num_events_processed(), log);
  };
  auto [n1, log1] = run();
  auto [n2, log2] = run();
  EXPECT_EQ(n1, n2);
  EXPECT_EQ(log1, log2);
}

TEST(SimulationTest, ProcessDoneFlag) {
  Simulation sim;
  std::vector<int> log;
  Process p = sim.Spawn(Record(sim, Milliseconds(1), &log, 1));
  EXPECT_FALSE(p.Done());
  sim.Run();
  EXPECT_TRUE(p.Done());
}

}  // namespace
}  // namespace fastiov
