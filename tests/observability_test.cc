// End-to-end tests for the contention-aware observability layer: the
// zero-perturbation contract (metrics-on results are byte-identical modulo
// the appended "observability" section), the §3/Fig. 6 contention narrative
// (vanilla's devset global mutex dominates; FastIOV demotes it), blocked-time
// attribution, counter tracks, and fault instants in the unified trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "src/experiments/result_json.h"
#include "src/experiments/startup_experiment.h"
#include "src/fault/fault.h"
#include "src/stats/blocked_time.h"
#include "src/stats/json_reader.h"
#include "src/stats/lock_stats.h"
#include "src/stats/observability.h"
#include "src/stats/trace_export.h"

namespace fastiov {
namespace {

ExperimentResult RunCase(const StackConfig& config, int concurrency, bool metrics,
                         ArrivalPattern arrival = ArrivalPattern::kBurst) {
  ExperimentOptions options;
  options.concurrency = concurrency;
  options.arrival = arrival;
  options.collect_metrics = metrics;
  return RunStartupExperiment(config, options);
}

// The PR 3 digest contract: enabling the probes must not move a single byte
// of the pre-existing result JSON — the metrics-on document is exactly the
// metrics-off document with an "observability" member appended before the
// closing brace.
void ExpectByteIdenticalModuloObservability(const StackConfig& config,
                                            ArrivalPattern arrival) {
  const std::string off = ExperimentResultJson(RunCase(config, 50, false, arrival));
  const std::string on = ExperimentResultJson(RunCase(config, 50, true, arrival));
  ASSERT_FALSE(off.empty());
  EXPECT_EQ(off.find("\"observability\""), std::string::npos);
  ASSERT_NE(on.find("\"observability\""), std::string::npos);
  const std::string off_body = off.substr(0, off.size() - 1);  // drop final '}'
  ASSERT_GT(on.size(), off.size());
  EXPECT_EQ(on.substr(0, off_body.size()), off_body);
  EXPECT_EQ(on.back(), '}');
}

TEST(ObservabilityDigestTest, VanillaByteIdentical) {
  ExpectByteIdenticalModuloObservability(StackConfig::Vanilla(), ArrivalPattern::kBurst);
}

TEST(ObservabilityDigestTest, FastIovByteIdentical) {
  ExpectByteIdenticalModuloObservability(StackConfig::FastIov(), ArrivalPattern::kBurst);
}

TEST(ObservabilityDigestTest, FastIovPoissonByteIdentical) {
  ExpectByteIdenticalModuloObservability(StackConfig::FastIov(), ArrivalPattern::kPoisson);
}

TEST(ObservabilityDigestTest, PreZeroByteIdentical) {
  ExpectByteIdenticalModuloObservability(StackConfig::PreZero(1.0), ArrivalPattern::kBurst);
}

TEST(ObservabilityDigestTest, MetricsRunIsRepeatable) {
  const std::string a = ExperimentResultJson(RunCase(StackConfig::Vanilla(), 50, true));
  const std::string b = ExperimentResultJson(RunCase(StackConfig::Vanilla(), 50, true));
  EXPECT_EQ(a, b);
}

// §3 / Fig. 6: at 50 concurrent vanilla startups, the VFIO devset global
// mutex is the top lock by total wait time, and the wait dwarfs every other
// lock. FastIOV's hierarchical locking demotes it.
TEST(ContentionReportTest, VanillaTopLockIsDevsetGlobal) {
  const ExperimentResult r = RunCase(StackConfig::Vanilla(), 50, true);
  ASSERT_NE(r.observability, nullptr);
  const auto locks = r.observability->lock_stats.ByTotalWait();
  ASSERT_FALSE(locks.empty());
  EXPECT_EQ(locks.front()->name(), "vfio.devset.global");
  EXPECT_GT(locks.front()->contended(), 0u);
  ASSERT_GE(locks.size(), 2u);
  EXPECT_GT(locks.front()->wait_seconds().Sum(), locks[1]->wait_seconds().Sum());
  // The blocked-by edges name real waiter/holder container lanes.
  EXPECT_FALSE(locks.front()->blocked_by().empty());
}

TEST(ContentionReportTest, FastIovDemotesDevsetGlobal) {
  const ExperimentResult r = RunCase(StackConfig::FastIov(), 50, true);
  ASSERT_NE(r.observability, nullptr);
  const auto locks = r.observability->lock_stats.ByTotalWait();
  ASSERT_FALSE(locks.empty());
  EXPECT_NE(locks.front()->name(), "vfio.devset.global");
  for (const LockStats* lock : locks) {
    if (lock->name() == "vfio.devset.global") {
      // Hierarchical locking: the global lock is all but idle.
      EXPECT_LT(lock->wait_seconds().Sum(), locks.front()->wait_seconds().Sum());
    }
  }
}

TEST(BlockedTimeTest, VanillaAttributesTheTailToTheDevsetLock) {
  const ExperimentResult r = RunCase(StackConfig::Vanilla(), 50, true);
  ASSERT_TRUE(r.blocked_time.has_value());
  const BlockedTimeReport& report = *r.blocked_time;
  EXPECT_GT(report.mean_startup_seconds, 0.0);
  EXPECT_GE(report.p99_startup_seconds, report.mean_startup_seconds);
  ASSERT_FALSE(report.rows.empty());
  bool saw_devset_wait = false;
  for (const BlockedTimeRow& row : report.rows) {
    EXPECT_GE(row.mean_seconds, 0.0);
    EXPECT_GE(row.share_of_mean, 0.0);
    EXPECT_GE(row.tail_seconds, 0.0);
    if (row.phase == kStepVfioDev && row.cause == "lock-wait:vfio.devset.global") {
      saw_devset_wait = true;
      // Tab.-1 narrative: the devset lock wait is a large share of both the
      // mean and the p99 tail at this concurrency.
      EXPECT_GT(row.share_of_mean, 0.2);
      EXPECT_GT(row.share_of_p99_tail, row.share_of_mean);
      EXPECT_GT(row.events, 0u);
    }
  }
  EXPECT_TRUE(saw_devset_wait);
}

TEST(BlockedTimeTest, WorkResidualPresentForCriticalPhases) {
  const ExperimentResult r = RunCase(StackConfig::FastIov(), 20, true);
  ASSERT_TRUE(r.blocked_time.has_value());
  int work_rows = 0;
  for (const BlockedTimeRow& row : r.blocked_time->rows) {
    if (row.cause == "work") {
      ++work_rows;
      EXPECT_EQ(row.events, 0u);
    }
  }
  EXPECT_GE(work_rows, 3);
}

TEST(CounterTrackTest, AtLeastThreeTracksArePopulated) {
  const ExperimentResult r = RunCase(StackConfig::FastIov(), 20, true);
  ASSERT_NE(r.observability, nullptr);
  const CounterTrackSet& tracks = r.observability->tracks;
  ASSERT_GE(tracks.size(), 4u);
  int populated = 0;
  for (size_t i = 0; i < tracks.size(); ++i) {
    if (!tracks.at(i).points().empty()) {
      ++populated;
    }
  }
  EXPECT_GE(populated, 3);
}

TEST(CounterTrackTest, VfsInUseRisesAndReturnsToZeroAcrossChurn) {
  const ExperimentResult r = RunCase(StackConfig::FastIov(), 10, true);
  ASSERT_NE(r.observability, nullptr);
  const CounterTrackSet& tracks = r.observability->tracks;
  const CounterTrack* vfs = nullptr;
  for (size_t i = 0; i < tracks.size(); ++i) {
    if (tracks.at(i).name() == "nic.vfs_in_use") {
      vfs = &tracks.at(i);
    }
  }
  ASSERT_NE(vfs, nullptr);
  ASSERT_FALSE(vfs->points().empty());
  double peak = 0.0;
  for (const CounterPoint& p : vfs->points()) {
    peak = std::max(peak, p.value);
  }
  EXPECT_DOUBLE_EQ(peak, 10.0);  // every container holds a VF at the burst peak
}

TEST(ObservabilityJsonTest, SectionParsesAndNamesTheTopLock) {
  const ExperimentResult r = RunCase(StackConfig::Vanilla(), 50, true);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonReader::Parse(ExperimentResultJson(r), &doc, &error)) << error;
  const JsonValue* obs = doc.Find("observability");
  ASSERT_NE(obs, nullptr);
  const JsonValue* locks = obs->Find("locks");
  ASSERT_NE(locks, nullptr);
  ASSERT_FALSE(locks->AsArray().empty());
  EXPECT_EQ(locks->AsArray().front().GetString("name"), "vfio.devset.global");
  const JsonValue* metrics = obs->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(metrics->Find("counters"), nullptr);
  const JsonValue* blocked = obs->Find("blocked_time");
  ASSERT_NE(blocked, nullptr);
  EXPECT_GT(blocked->GetDouble("mean_startup_seconds"), 0.0);
}

TEST(UnifiedTraceTest, FaultPlanRunEmitsInstantsAndLockWaitSlices) {
  std::string error;
  auto plan = FaultPlan::Parse("vfio-dev:p=0.5,penalty_ms=2", &error);
  ASSERT_TRUE(plan.has_value()) << error;
  ExperimentOptions options;
  options.concurrency = 20;
  options.collect_metrics = true;
  options.fault_plan = std::move(plan);
  const ExperimentResult r = RunStartupExperiment(StackConfig::FastIov(), options);
  ASSERT_NE(r.observability, nullptr);
  ASSERT_FALSE(r.fault_events.empty());

  TraceOptions trace_options;
  trace_options.blocked = &r.observability->blocked;
  trace_options.counters = &r.observability->tracks;
  trace_options.fault_events = &r.fault_events;
  std::ostringstream os;
  ExportChromeTrace(r.timeline, os, trace_options);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(out.find("lock-wait:"), std::string::npos);
  EXPECT_NE(out.find("fault injected: vfio-dev"), std::string::npos);

  JsonValue doc;
  ASSERT_TRUE(JsonReader::Parse(out, &doc, &error)) << error;
}

TEST(MetricsFoldTest, RegistryCarriesRunCountersAndLockStats) {
  const ExperimentResult r = RunCase(StackConfig::Vanilla(), 20, true);
  ASSERT_NE(r.observability, nullptr);
  const MetricsRegistry& m = r.observability->metrics;
  EXPECT_TRUE(m.Has("mem.pages_zeroed"));
  EXPECT_TRUE(m.Has("vfio.devset.lock_contention"));
  EXPECT_TRUE(m.Has("lock.vfio.devset.global.acquisitions"));
  const Summary* startup = m.FindSummary("startup.seconds");
  ASSERT_NE(startup, nullptr);
  EXPECT_EQ(startup->Count(), 20u);
  EXPECT_EQ(m.Counter("vfio.devset.lock_contention"), r.devset_lock_contention);
}

}  // namespace
}  // namespace fastiov
