// SR-IOV NIC, guest VF driver lifecycle, DMA receive path, and §4.3.2's
// third exception (NIC DMA into never-faulted ring buffers).
#include <gtest/gtest.h>

#include "src/core/fastiovd.h"
#include "src/nic/sriov_nic.h"
#include "src/nic/vf_driver.h"
#include "src/vfio/vfio.h"

namespace fastiov {
namespace {

struct NicEnv {
  Simulation sim{1};
  HostSpec spec;
  CostModel cost;
  CpuPool cpu{sim, 56};
  PhysicalMemory pmem;
  Iommu iommu;
  PciBus bus{0x3b};
  PciIdAllocator pci_ids;
  SriovNic nic;
  MicroVm vm;
  Fastiovd fastiovd;

  static constexpr uint64_t kRamBytes = 128 * kMiB;
  static constexpr uint64_t kRingBytes = 4 * kMiB;
  static constexpr uint64_t kRingGpa = kRamBytes - kRingBytes;

  NicEnv()
      : pmem(sim, [&] {
          spec.memory_bytes = 2 * kGiB;
          return spec;
        }(), cost, kHugePageSize),
        nic(sim, cpu, cost, spec, bus, pci_ids),
        vm(sim, cpu, pmem, cost, 1000),
        fastiovd(sim, cpu, pmem, cost) {
    pmem.set_cpu(&cpu);
    nic.CreateVfs(16);
    vm.AddRegion("ram", RegionType::kRam, 0, kRamBytes);
  }

  void Run(Task t) {
    sim.Spawn(std::move(t));
    sim.Run();
  }

  // DMA-map guest RAM into an IOMMU domain with the given zeroing mode.
  IommuDomain* MapRam(bool lazy) {
    IommuDomain* domain = iommu.CreateDomain();
    GuestMemoryRegion* ram = vm.FindRegion("ram");
    Run([&]() -> Task {
      std::vector<PageRun> runs;
      co_await pmem.RetrievePages(vm.pid(), ram->frames.size(), &runs);
      if (lazy) {
        co_await fastiovd.RegisterPages(vm.pid(), std::span<const PageRun>(runs), 0);
        vm.SetFaultHook(&fastiovd);
      } else {
        co_await pmem.ZeroPages(runs);
      }
      ram->frames.AssignRuns(runs);
      ram->dma_mapped = true;
      uint64_t gpa = 0;
      for (const PageRun& run : runs) {
        domain->MapRange(gpa, run, kHugePageSize);
        gpa += run.count * kHugePageSize;
      }
    }());
    return domain;
  }
};

TEST(SriovNicTest, CreateAndAllocateVfs) {
  NicEnv env;
  EXPECT_EQ(env.nic.num_vfs(), 16u);
  EXPECT_EQ(env.bus.num_devices(), 16u);
  VirtualFunction* vf = env.nic.AllocateFreeVf();
  ASSERT_NE(vf, nullptr);
  EXPECT_TRUE(vf->configured());
  VirtualFunction* vf2 = env.nic.AllocateFreeVf();
  EXPECT_NE(vf, vf2);
  env.nic.ReleaseVf(vf);
  EXPECT_FALSE(vf->configured());
}

TEST(SriovNicTest, AllocationExhausts) {
  NicEnv env;
  for (int i = 0; i < 16; ++i) {
    EXPECT_NE(env.nic.AllocateFreeVf(), nullptr);
  }
  EXPECT_EQ(env.nic.AllocateFreeVf(), nullptr);
}

TEST(SriovNicTest, VfIdentity) {
  NicEnv env;
  VirtualFunction* vf = env.nic.vf(3);
  EXPECT_EQ(vf->vf_index(), 3);
  EXPECT_EQ(vf->ConfigRead16(kPciVendorId), kIntelVendorId);
  EXPECT_EQ(vf->ConfigRead16(kPciDeviceId), kE810VfDeviceId);
  EXPECT_EQ(vf->reset_scope(), ResetScope::kBus);
}

TEST(SriovNicTest, ConfigureVfSerializesOnPfLock) {
  NicEnv env;
  for (int i = 0; i < 4; ++i) {
    env.sim.Spawn(env.nic.ConfigureVf(env.nic.vf(i)));
  }
  env.sim.Run();
  // 4 configs through the PF lock: at least 4x the crit section.
  EXPECT_GE(env.sim.Now().ns(), (CostModel{}.pf_driver_lock_crit * 4.0).ns() / 2);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(env.nic.vf(i)->configured());
  }
}

TEST(SriovNicTest, DmaWriteTranslatesAndTagsData) {
  NicEnv env;
  IommuDomain* domain = env.MapRam(/*lazy=*/false);
  const uint64_t failures = env.nic.DmaWrite(*domain, env.vm, NicEnv::kRingGpa, 1 * kMiB);
  EXPECT_EQ(failures, 0u);
  GuestMemoryRegion* ram = env.vm.FindRegion("ram");
  const uint64_t ring_first = NicEnv::kRingGpa / kHugePageSize;
  EXPECT_EQ(env.pmem.frame(ram->frames.Get(ring_first)).content, PageContent::kData);
}

TEST(SriovNicTest, DmaWriteToUnmappedIovaFails) {
  NicEnv env;
  IommuDomain* domain = env.iommu.CreateDomain();  // empty domain
  const uint64_t failures = env.nic.DmaWrite(*domain, env.vm, 0, 4 * kMiB);
  EXPECT_EQ(failures, 2u);
  EXPECT_EQ(domain->translation_faults(), 2u);
}

TEST(VfDriverTest, LifecycleOrdering) {
  NicEnv env;
  IommuDomain* domain = env.MapRam(false);
  VirtualFunction* vf = env.nic.AllocateFreeVf();
  VfDriver driver(env.sim, env.cpu, env.cost, env.vm, *vf, env.nic, *domain, NicEnv::kRingGpa,
                  NicEnv::kRingBytes);
  EXPECT_FALSE(driver.initialized());
  env.Run([&]() -> Task {
    co_await driver.Initialize();
    EXPECT_TRUE(driver.initialized());
    EXPECT_FALSE(driver.interface_up());
    env.sim.Spawn(driver.BringUpLink());
    co_await driver.AssignAddresses();
    EXPECT_TRUE(driver.link_settled());
    EXPECT_TRUE(driver.interface_up());
  }());
  EXPECT_TRUE(vf->bus_master_enabled());
  EXPECT_FALSE(vf->mac().empty());
  EXPECT_FALSE(vf->ip().empty());
}

TEST(VfDriverTest, AgentPollsUntilLinkSettles) {
  NicEnv env;
  IommuDomain* domain = env.MapRam(false);
  VirtualFunction* vf = env.nic.AllocateFreeVf();
  VfDriver driver(env.sim, env.cpu, env.cost, env.vm, *vf, env.nic, *domain, NicEnv::kRingGpa,
                  NicEnv::kRingBytes);
  SimTime up_at;
  env.Run([&]() -> Task {
    co_await driver.Initialize();
    env.sim.Spawn(driver.BringUpLink());
    co_await driver.AssignAddresses();
    up_at = env.sim.Now();
  }());
  // The interface comes up only after the link-settle delay.
  EXPECT_GE(up_at.ns(), (env.cost.vf_link_settle / 4.0).ns());
}

TEST(VfDriverTest, MailboxSerializesLinkBringup) {
  NicEnv env;
  IommuDomain* domain = env.MapRam(false);
  std::vector<std::unique_ptr<VfDriver>> drivers;
  for (int i = 0; i < 4; ++i) {
    drivers.push_back(std::make_unique<VfDriver>(env.sim, env.cpu, env.cost, env.vm,
                                                 *env.nic.vf(i), env.nic, *domain,
                                                 NicEnv::kRingGpa, NicEnv::kRingBytes));
  }
  env.Run([&]() -> Task {
    std::vector<Process> ps;
    for (auto& d : drivers) {
      co_await d->Initialize();
    }
    for (auto& d : drivers) {
      ps.push_back(env.sim.Spawn(d->BringUpLink()));
    }
    co_await WaitAll(std::move(ps));
  }());
  EXPECT_GT(env.nic.mailbox_lock().contention_count(), 0u);
}

TEST(VfDriverTest, ReceiveDeliversCleanDataEagerly) {
  NicEnv env;
  IommuDomain* domain = env.MapRam(false);
  VirtualFunction* vf = env.nic.AllocateFreeVf();
  VfDriver driver(env.sim, env.cpu, env.cost, env.vm, *vf, env.nic, *domain, NicEnv::kRingGpa,
                  NicEnv::kRingBytes);
  env.Run([&]() -> Task {
    co_await driver.Initialize();
    env.sim.Spawn(driver.BringUpLink());
    co_await driver.AssignAddresses();
    co_await driver.Receive(2 * kMiB);
  }());
  EXPECT_EQ(driver.corrupted_reads(), 0u);
  EXPECT_EQ(driver.dma_translation_failures(), 0u);
  EXPECT_EQ(env.vm.residue_reads(), 0u);
}

TEST(VfDriverTest, ReceiveUnderLazyZeroingIsSafeWhenDriverScrubsRings) {
  // Standard drivers zero their rings at allocation, which EPT-faults the
  // pages before the NIC's first DMA — the property §4.3.2 relies on.
  NicEnv env;
  IommuDomain* domain = env.MapRam(/*lazy=*/true);
  VirtualFunction* vf = env.nic.AllocateFreeVf();
  VfDriver driver(env.sim, env.cpu, env.cost, env.vm, *vf, env.nic, *domain, NicEnv::kRingGpa,
                  NicEnv::kRingBytes);
  env.Run([&]() -> Task {
    co_await driver.Initialize(/*zero_rx_buffers=*/true);
    env.sim.Spawn(driver.BringUpLink());
    co_await driver.AssignAddresses();
    co_await driver.Receive(2 * kMiB);
  }());
  EXPECT_EQ(driver.corrupted_reads(), 0u);
  EXPECT_EQ(env.vm.residue_reads(), 0u);
}

TEST(VfDriverTest, ReceiveUnderLazyZeroingCorruptsWithoutRingScrub) {
  // Failure injection: a (hypothetical) driver that skips ring zeroing
  // leaves the pages in the lazy table; the guest's first read after the
  // DMA write triggers the fault and fastiovd destroys the payload.
  NicEnv env;
  IommuDomain* domain = env.MapRam(/*lazy=*/true);
  VirtualFunction* vf = env.nic.AllocateFreeVf();
  VfDriver driver(env.sim, env.cpu, env.cost, env.vm, *vf, env.nic, *domain, NicEnv::kRingGpa,
                  NicEnv::kRingBytes);
  env.Run([&]() -> Task {
    co_await driver.Initialize(/*zero_rx_buffers=*/false);
    env.sim.Spawn(driver.BringUpLink());
    co_await driver.AssignAddresses();
    co_await driver.Receive(2 * kMiB);
  }());
  EXPECT_GT(driver.corrupted_reads(), 0u);
}

TEST(VfDriverTest, ReceiveChargesDataPlane) {
  NicEnv env;
  IommuDomain* domain = env.MapRam(false);
  VirtualFunction* vf = env.nic.AllocateFreeVf();
  VfDriver driver(env.sim, env.cpu, env.cost, env.vm, *vf, env.nic, *domain, NicEnv::kRingGpa,
                  NicEnv::kRingBytes);
  env.Run([&]() -> Task {
    co_await driver.Initialize();
    env.sim.Spawn(driver.BringUpLink());
    co_await driver.AssignAddresses();
    co_await driver.Receive(10 * kMiB);
  }());
  EXPECT_DOUBLE_EQ(env.nic.data_plane().total_transferred(),
                   static_cast<double>(10 * kMiB));
}

}  // namespace
}  // namespace fastiov
