# Configures, builds, and runs test binaries under a sanitizer in a nested
# build tree. Invoked by ctest (see tests/CMakeLists.txt):
#
#   cmake -DSAN=ASAN|TSAN -DSRC_DIR=<repo> -DBIN_DIR=<build>
#         [-DTARGETS=<name>[,<name>...]] -P sanitizer_chaos.cmake
#
# TARGETS is a comma-separated list of gtest binaries to build and run
# (commas because ctest would split a semicolon list into separate
# arguments); it defaults to the chaos suite. The nested tree lives inside
# the main build directory and is shared by every invocation with the same
# SAN, so reruns only pay for an incremental rebuild.
if(NOT SAN OR NOT SRC_DIR OR NOT BIN_DIR)
  message(FATAL_ERROR "SAN, SRC_DIR and BIN_DIR must all be set")
endif()
if(NOT TARGETS)
  set(TARGETS "fault_chaos_test")
endif()
string(REPLACE "," ";" target_list "${TARGETS}")

string(TOLOWER "${SAN}" san_lower)
set(build_dir "${BIN_DIR}/sanitize-${san_lower}")

execute_process(
  COMMAND "${CMAKE_COMMAND}" -S "${SRC_DIR}" -B "${build_dir}"
          -DFASTIOV_${SAN}=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "configure of ${SAN} build failed")
endif()

foreach(target IN LISTS target_list)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" --build "${build_dir}" --target ${target}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "build of ${target} under ${SAN} failed")
  endif()

  execute_process(
    COMMAND "${build_dir}/tests/${target}"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${target} failed under ${SAN}")
  endif()
endforeach()
