# Configures, builds, and runs the chaos test suite under a sanitizer in a
# nested build tree. Invoked by ctest (see tests/CMakeLists.txt):
#
#   cmake -DSAN=ASAN|TSAN -DSRC_DIR=<repo> -DBIN_DIR=<build> -P sanitizer_chaos.cmake
#
# The nested tree lives inside the main build directory, so reruns only pay
# for an incremental rebuild.
if(NOT SAN OR NOT SRC_DIR OR NOT BIN_DIR)
  message(FATAL_ERROR "SAN, SRC_DIR and BIN_DIR must all be set")
endif()

string(TOLOWER "${SAN}" san_lower)
set(build_dir "${BIN_DIR}/sanitize-${san_lower}")

execute_process(
  COMMAND "${CMAKE_COMMAND}" -S "${SRC_DIR}" -B "${build_dir}"
          -DFASTIOV_${SAN}=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "configure of ${SAN} build failed")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" --build "${build_dir}" --target fault_chaos_test
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "build of fault_chaos_test under ${SAN} failed")
endif()

execute_process(
  COMMAND "${build_dir}/tests/fault_chaos_test"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fault_chaos_test failed under ${SAN}")
endif()
