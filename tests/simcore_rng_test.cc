#include "src/simcore/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fastiov {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(5, 5), 5);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Exponential(2.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, LogNormalPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 0.5), 0.0);
  }
}

TEST(RngTest, JitterStaysWithinClamp) {
  Rng rng(23);
  const SimTime base = Milliseconds(100);
  for (int i = 0; i < 10000; ++i) {
    const SimTime v = rng.Jitter(base, 0.5);
    EXPECT_GE(v, base / 4.0);
    EXPECT_LE(v, base * 8.0);
  }
}

TEST(RngTest, JitterZeroSigmaIsIdentity) {
  Rng rng(29);
  EXPECT_EQ(rng.Jitter(Milliseconds(10), 0.0), Milliseconds(10));
  EXPECT_EQ(rng.Jitter(SimTime::Zero(), 0.5), SimTime::Zero());
}

TEST(RngTest, JitterMeanNearBase) {
  Rng rng(31);
  const SimTime base = Milliseconds(100);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Jitter(base, 0.18).ToSecondsF();
  }
  // Lognormal with sigma 0.18 has mean exp(sigma^2/2) ~ 1.016x the base.
  EXPECT_NEAR(sum / n, 0.1 * std::exp(0.18 * 0.18 / 2.0), 0.002);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(37);
  Rng fork = a.Fork();
  // The fork should not replay the parent's sequence.
  Rng b(37);
  b.NextU64();  // align with post-fork parent state
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (fork.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LE(same, 1);
}

}  // namespace
}  // namespace fastiov
