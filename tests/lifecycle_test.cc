// Container lifecycle: teardown, VF recycling, frame reuse across tenants,
// and the churn experiment's cross-tenant isolation guarantees.
#include <gtest/gtest.h>

#include "src/container/runtime.h"
#include "src/experiments/churn_experiment.h"

namespace fastiov {
namespace {

struct LifecycleEnv {
  Simulation sim;
  Host host;
  ContainerRuntime runtime;

  explicit LifecycleEnv(const StackConfig& config, uint64_t seed = 9)
      : sim(seed), host(sim, HostSpec{}, CostModel{}, config), runtime(host) {}

  void StartAll(int n) {
    auto root = [](LifecycleEnv* env, int count) -> Task {
      co_await env->host.PrepareSharedImage();
      if (env->host.config().UsesSriov() &&
          env->host.config().cni != CniKind::kVanillaUnfixed) {
        env->host.PreBindVfsToVfio();
      }
      if (env->host.config().decoupled_zeroing) {
        env->host.fastiovd().StartBackgroundZeroer();
      }
      std::vector<Process> ps;
      for (int i = 0; i < count; ++i) {
        ps.push_back(env->sim.Spawn(env->runtime.StartContainer(nullptr)));
      }
      co_await WaitAll(std::move(ps));
      env->host.fastiovd().StopBackgroundZeroer();
    };
    sim.Spawn(root(this, n));
    sim.Run();
  }

  void StopAll() {
    auto root = [](LifecycleEnv* env) -> Task {
      if (env->host.config().decoupled_zeroing) {
        env->host.fastiovd().StartBackgroundZeroer();
      }
      std::vector<Process> ps;
      for (const auto& inst : env->runtime.instances()) {
        if (inst->ready) {
          ps.push_back(env->sim.Spawn(env->runtime.StopContainer(*inst)));
        }
      }
      co_await WaitAll(std::move(ps));
      env->host.fastiovd().StopBackgroundZeroer();
    };
    sim.Spawn(root(this));
    sim.Run();
  }
};

TEST(LifecycleTest, StopReleasesEverything) {
  LifecycleEnv env(StackConfig::FastIov());
  env.StartAll(4);
  const uint64_t used_mid = env.host.pmem().used_pages();
  EXPECT_GT(used_mid, 0u);
  env.StopAll();
  for (const auto& inst : env.runtime.instances()) {
    EXPECT_TRUE(inst->terminated);
    EXPECT_FALSE(inst->ready);
    EXPECT_EQ(inst->vf, nullptr);
    EXPECT_EQ(inst->vfio_container, nullptr);
  }
  // Only the shared image copy remains resident.
  EXPECT_EQ(env.host.pmem().used_pages(), env.host.shared_image_frames().size());
  EXPECT_EQ(env.host.devset().TotalOpenCount(), 0);
  EXPECT_EQ(env.host.fastiovd().total_pending_pages(), 0u);
  EXPECT_EQ(env.host.iommu().num_domains(), 0u);
}

TEST(LifecycleTest, VfsAreRecycledForNewContainers) {
  LifecycleEnv env(StackConfig::FastIov());
  env.StartAll(4);
  std::set<int> first_wave_vfs;
  for (const auto& inst : env.runtime.instances()) {
    first_wave_vfs.insert(inst->vf->vf_index());
  }
  env.StopAll();
  env.StartAll(4);
  std::set<int> second_wave_vfs;
  for (size_t i = 4; i < env.runtime.instances().size(); ++i) {
    second_wave_vfs.insert(env.runtime.instances()[i]->vf->vf_index());
  }
  EXPECT_EQ(first_wave_vfs, second_wave_vfs);  // the same VFs, recycled
}

TEST(LifecycleTest, BusResetPossibleAfterAllClosed) {
  LifecycleEnv env(StackConfig::Vanilla());
  env.StartAll(3);
  env.StopAll();
  bool ok = false;
  auto reset = [](LifecycleEnv* e, bool* out) -> Task {
    co_await e->host.devset().TryBusReset(out);
  };
  env.sim.Spawn(reset(&env, &ok));
  env.sim.Run();
  EXPECT_TRUE(ok);
}

TEST(LifecycleTest, FreedFramesKeepResidue) {
  LifecycleEnv env(StackConfig::Vanilla());
  env.StartAll(2);
  env.StopAll();
  // Guests dirtied memory (boot working set etc.); their freed frames must
  // still carry that data — scrubbing is the *allocator's customer's* job.
  uint64_t residue_frames = 0;
  for (PageId id = 0; id < env.host.pmem().total_pages(); ++id) {
    const PageFrame& f = env.host.pmem().frame(id);
    if (f.owner == -1 && f.content == PageContent::kResidue && f.ever_owned) {
      ++residue_frames;
    }
  }
  EXPECT_GT(residue_frames, 0u);
}

// --- churn experiment ---

ChurnOptions SmallChurn(int waves = 3, int per_wave = 20) {
  ChurnOptions o;
  o.waves = waves;
  o.concurrency_per_wave = per_wave;
  return o;
}

class ChurnIsolationTest : public ::testing::TestWithParam<StackConfig> {};

TEST_P(ChurnIsolationTest, NoCrossTenantLeaksUnderChurn) {
  const ChurnResult r = RunChurnExperiment(GetParam(), SmallChurn());
  ASSERT_EQ(r.wave_startup.size(), 3u);
  // Later waves really did receive recycled frames...
  EXPECT_GT(r.frames_reused, 0u);
  // ...and nobody ever saw another tenant's bytes.
  EXPECT_EQ(r.residue_reads, 0u);
  EXPECT_EQ(r.corruptions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Stacks, ChurnIsolationTest,
                         ::testing::Values(StackConfig::Vanilla(), StackConfig::FastIov(),
                                           StackConfig::PreZero(0.5)),
                         [](const auto& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(ChurnTest, DisablingZeroingLeaksResidueAcrossTenants) {
  // The insecure ablation: skip zeroing entirely. The first wave is clean
  // (fresh frames), but later waves read the previous tenants' memory.
  StackConfig insecure = StackConfig::FastIov();
  insecure.decoupled_zeroing = false;
  insecure.insecure_no_zeroing = true;
  const ChurnResult r = RunChurnExperiment(insecure, SmallChurn());
  EXPECT_GT(r.frames_reused, 0u);
  EXPECT_GT(r.residue_reads, 0u) << "without zeroing, recycled frames leak";
}

TEST(ChurnTest, WaveStartupTimesAreStable) {
  const ChurnResult r = RunChurnExperiment(StackConfig::FastIov(), SmallChurn(4, 25));
  ASSERT_EQ(r.wave_startup.size(), 4u);
  const double first = r.wave_startup.front().Mean();
  for (const Summary& wave : r.wave_startup) {
    EXPECT_NEAR(wave.Mean(), first, first * 0.5) << "no degradation across waves";
  }
}

TEST(ChurnTest, PreZeroPoolDepletesAcrossWaves) {
  // Pre-zeroed frames are a one-time budget: churn burns through the pool,
  // and later waves pay eager zeroing again (the §6.2 criticism of
  // pre-zeroing under high memory utilization).
  StackConfig pre = StackConfig::PreZero(0.02);  // tiny pool
  const ChurnResult r = RunChurnExperiment(pre, SmallChurn(3, 20));
  EXPECT_GT(r.pages_zeroed, 0u);
  // Wave 1 enjoys the pool; a later wave must be slower or equal.
  EXPECT_GE(r.wave_startup.back().Mean(), r.wave_startup.front().Mean() * 0.8);
}

TEST(ChurnTest, DeterministicAcrossRuns) {
  const ChurnResult a = RunChurnExperiment(StackConfig::FastIov(), SmallChurn());
  const ChurnResult b = RunChurnExperiment(StackConfig::FastIov(), SmallChurn());
  ASSERT_EQ(a.all_startup.Count(), b.all_startup.Count());
  EXPECT_EQ(a.all_startup.samples(), b.all_startup.samples());
  EXPECT_EQ(a.frames_reused, b.frames_reused);
}

}  // namespace
}  // namespace fastiov
