// Calibration regression guard: pins the headline reproduction numbers to
// bands around the paper's results, so an accidental cost-model change that
// breaks the shape fails CI instead of silently shipping.
//
// Bands are deliberately loose (the claim is shape, not microseconds); see
// EXPERIMENTS.md for the exact measured values.
#include <gtest/gtest.h>

#include "src/experiments/repeated.h"

namespace fastiov {
namespace {

struct Calibration {
  ExperimentResult nonet;
  ExperimentResult vanilla;
  ExperimentResult fastiov;

  static const Calibration& Get() {
    static const Calibration c = [] {
      ExperimentOptions o;
      o.concurrency = 200;
      Calibration result{RunStartupExperiment(StackConfig::NoNetwork(), o),
                         RunStartupExperiment(StackConfig::Vanilla(), o),
                         RunStartupExperiment(StackConfig::FastIov(), o)};
      return result;
    }();
    return c;
  }
};

TEST(CalibrationTest, VanillaAverageNearPaper) {
  // Paper: 16.2 s at concurrency 200.
  EXPECT_GT(Calibration::Get().vanilla.startup.Mean(), 13.0);
  EXPECT_LT(Calibration::Get().vanilla.startup.Mean(), 20.0);
}

TEST(CalibrationTest, NoNetAverageNearPaper) {
  // Paper: ~4.0 s.
  EXPECT_GT(Calibration::Get().nonet.startup.Mean(), 3.0);
  EXPECT_LT(Calibration::Get().nonet.startup.Mean(), 6.0);
}

TEST(CalibrationTest, EndToEndReductionNearPaper) {
  // Paper: 65.7%.
  const double reduction = 1.0 - Calibration::Get().fastiov.startup.Mean() /
                                     Calibration::Get().vanilla.startup.Mean();
  EXPECT_GT(reduction, 0.55);
  EXPECT_LT(reduction, 0.75);
}

TEST(CalibrationTest, TailReductionNearPaper) {
  // Paper: 75.4% at p99.
  const double reduction = 1.0 - Calibration::Get().fastiov.startup.Percentile(99) /
                                     Calibration::Get().vanilla.startup.Percentile(99);
  EXPECT_GT(reduction, 0.65);
  EXPECT_LT(reduction, 0.85);
}

TEST(CalibrationTest, VfRelatedReductionNearPaper) {
  // Paper: 96.1%.
  const double reduction = 1.0 - Calibration::Get().fastiov.vf_related.Mean() /
                                     Calibration::Get().vanilla.vf_related.Mean();
  EXPECT_GT(reduction, 0.90);
}

TEST(CalibrationTest, VfioDevDominatesVanilla) {
  // Tab. 1: 4-vfio-dev is ~48% of the average, ~59% of the p99.
  const auto& vanilla = Calibration::Get().vanilla;
  const double avg_share = vanilla.timeline.StepShareOfAverage(kStepVfioDev);
  EXPECT_GT(avg_share, 0.40);
  EXPECT_LT(avg_share, 0.62);
  EXPECT_GT(vanilla.timeline.StepShareOfP99(kStepVfioDev), avg_share);
}

TEST(CalibrationTest, VfRelatedShareNearPaper) {
  // Tab. 1: VF-related steps are >70% of the average startup.
  const auto& vanilla = Calibration::Get().vanilla;
  double share = 0.0;
  for (const char* step : {kStepDmaRam, kStepDmaImage, kStepVfioDev, kStepVfDriver}) {
    share += vanilla.timeline.StepShareOfAverage(step);
  }
  EXPECT_GT(share, 0.65);
  EXPECT_LT(share, 0.85);
}

TEST(CalibrationTest, StableAcrossSeeds) {
  // Seeds must wiggle the result, not move it: 3 seeds of vanilla@100 stay
  // within ~10% relative stddev.
  ExperimentOptions o;
  o.concurrency = 100;
  const RepeatedResult r = RunRepeated(StackConfig::Vanilla(), o, 3);
  EXPECT_LT(r.startup_mean.stddev, 0.10 * r.startup_mean.mean);
  EXPECT_GT(r.startup_mean.min, 0.0);
}

}  // namespace
}  // namespace fastiov
