#include "src/cli/flags.h"

#include <gtest/gtest.h>

#include <optional>

#include "src/cluster/cluster.h"

namespace fastiov {
namespace {

FlagParser MakeParser() {
  FlagParser p;
  p.AddString("stack", "fastiov", "baseline name");
  p.AddInt("concurrency", 200, "containers");
  p.AddDouble("rate", 50.0, "arrival rate");
  p.AddBool("json", false, "machine output");
  return p;
}

bool Parse(FlagParser& p, std::vector<const char*> args, std::string* error) {
  args.insert(args.begin(), "prog");
  return p.Parse(static_cast<int>(args.size()), args.data(), error);
}

TEST(FlagsTest, DefaultsWithoutArgs) {
  FlagParser p = MakeParser();
  std::string error;
  ASSERT_TRUE(Parse(p, {}, &error));
  EXPECT_EQ(p.GetString("stack"), "fastiov");
  EXPECT_EQ(p.GetInt("concurrency"), 200);
  EXPECT_DOUBLE_EQ(p.GetDouble("rate"), 50.0);
  EXPECT_FALSE(p.GetBool("json"));
}

TEST(FlagsTest, EqualsSyntax) {
  FlagParser p = MakeParser();
  std::string error;
  ASSERT_TRUE(Parse(p, {"--stack=vanilla", "--concurrency=50", "--rate=12.5"}, &error));
  EXPECT_EQ(p.GetString("stack"), "vanilla");
  EXPECT_EQ(p.GetInt("concurrency"), 50);
  EXPECT_DOUBLE_EQ(p.GetDouble("rate"), 12.5);
}

TEST(FlagsTest, SpaceSyntax) {
  FlagParser p = MakeParser();
  std::string error;
  ASSERT_TRUE(Parse(p, {"--stack", "ipvtap", "--concurrency", "10"}, &error));
  EXPECT_EQ(p.GetString("stack"), "ipvtap");
  EXPECT_EQ(p.GetInt("concurrency"), 10);
}

TEST(FlagsTest, BareBooleanFlag) {
  FlagParser p = MakeParser();
  std::string error;
  ASSERT_TRUE(Parse(p, {"--json"}, &error));
  EXPECT_TRUE(p.GetBool("json"));
}

TEST(FlagsTest, ExplicitBooleanValues) {
  FlagParser p = MakeParser();
  std::string error;
  ASSERT_TRUE(Parse(p, {"--json=true"}, &error));
  EXPECT_TRUE(p.GetBool("json"));
  FlagParser q = MakeParser();
  ASSERT_TRUE(Parse(q, {"--json=0"}, &error));
  EXPECT_FALSE(q.GetBool("json"));
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagParser p = MakeParser();
  std::string error;
  EXPECT_FALSE(Parse(p, {"--bogus=1"}, &error));
  EXPECT_NE(error.find("unknown flag"), std::string::npos);
}

TEST(FlagsTest, BadIntegerFails) {
  FlagParser p = MakeParser();
  std::string error;
  EXPECT_FALSE(Parse(p, {"--concurrency=many"}, &error));
  EXPECT_NE(error.find("expects an integer"), std::string::npos);
}

TEST(FlagsTest, BadDoubleFails) {
  FlagParser p = MakeParser();
  std::string error;
  EXPECT_FALSE(Parse(p, {"--rate=fast"}, &error));
  EXPECT_NE(error.find("expects a number"), std::string::npos);
}

TEST(FlagsTest, BadBoolFails) {
  FlagParser p = MakeParser();
  std::string error;
  EXPECT_FALSE(Parse(p, {"--json=yes"}, &error));
  EXPECT_NE(error.find("expects true/false"), std::string::npos);
}

TEST(FlagsTest, MissingValueFails) {
  FlagParser p = MakeParser();
  std::string error;
  EXPECT_FALSE(Parse(p, {"--stack"}, &error));
  EXPECT_NE(error.find("missing a value"), std::string::npos);
}

TEST(FlagsTest, HelpRequested) {
  FlagParser p = MakeParser();
  std::string error;
  ASSERT_TRUE(Parse(p, {"--help"}, &error));
  EXPECT_TRUE(p.help_requested());
  const std::string help = p.HelpText("prog");
  EXPECT_NE(help.find("--stack"), std::string::npos);
  EXPECT_NE(help.find("default: fastiov"), std::string::npos);
}

TEST(FlagsTest, PositionalArguments) {
  FlagParser p = MakeParser();
  std::string error;
  ASSERT_TRUE(Parse(p, {"input.txt", "--json", "more"}, &error));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.txt");
  EXPECT_EQ(p.positional()[1], "more");
}

TEST(FlagsTest, NegativeNumbers) {
  FlagParser p = MakeParser();
  std::string error;
  ASSERT_TRUE(Parse(p, {"--concurrency=-5", "--rate=-1.5"}, &error));
  EXPECT_EQ(p.GetInt("concurrency"), -5);
  EXPECT_DOUBLE_EQ(p.GetDouble("rate"), -1.5);
}

// --- cluster-mode flag contradictions (fastiov_sim) ----------------------
// ValidateClusterCli is the single gate for flag combinations that have no
// coherent meaning in cluster mode; each rejection names the offending flag.

TEST(ClusterCliTest, AcceptsPlainClusterRun) {
  EXPECT_FALSE(ValidateClusterCli(/*cluster_hosts=*/4, /*cells=*/1, /*waves=*/1,
                                  /*chrome_trace=*/false, /*lookahead_us=*/std::nullopt,
                                  /*rtt_us=*/200)
                   .has_value());
}

TEST(ClusterCliTest, AcceptsExplicitMatchingLookahead) {
  EXPECT_FALSE(ValidateClusterCli(4, 1, 1, false, /*lookahead_us=*/200, /*rtt_us=*/200)
                   .has_value());
}

TEST(ClusterCliTest, NonClusterRunsAreUntouched) {
  // cluster_hosts <= 0 means cluster mode is off: any combination passes.
  EXPECT_FALSE(ValidateClusterCli(0, 8, 3, true, 50, 200).has_value());
}

TEST(ClusterCliTest, RejectsCellsWithClusterHosts) {
  const auto error = ValidateClusterCli(4, /*cells=*/8, 1, false, std::nullopt, 200);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("--cells"), std::string::npos);
  EXPECT_NE(error->find("--cluster-hosts"), std::string::npos);
}

TEST(ClusterCliTest, RejectsWavesWithClusterHosts) {
  const auto error = ValidateClusterCli(4, 1, /*waves=*/3, false, std::nullopt, 200);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("--waves"), std::string::npos);
}

TEST(ClusterCliTest, RejectsChromeTraceWithClusterHosts) {
  const auto error = ValidateClusterCli(4, 1, 1, /*chrome_trace=*/true, std::nullopt, 200);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("--trace"), std::string::npos);
}

TEST(ClusterCliTest, RejectsLookaheadBelowControlPlaneRtt) {
  const auto error = ValidateClusterCli(4, 1, 1, false, /*lookahead_us=*/50, /*rtt_us=*/200);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("below the control-plane minimum"), std::string::npos);
  EXPECT_NE(error->find("200"), std::string::npos);
}

TEST(ClusterCliTest, RejectsLookaheadAboveControlPlaneRtt) {
  const auto error = ValidateClusterCli(4, 1, 1, false, /*lookahead_us=*/500, /*rtt_us=*/200);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("conservative"), std::string::npos);
}

}  // namespace
}  // namespace fastiov
