// Tests for the conservative parallel cell driver (src/simcore/parallel_exec):
// determinism across thread counts, cross-cell message timing, enforcement of
// the conservative-synchronization contract, the exception policy, and the
// uncoupled single-window degenerate case. The cells here are toys — plain
// callbacks, no coroutines — but they follow the real lifecycle contract: all
// sim-side state is created in CellBegin and destroyed in CellEnd/CellAbandon
// on the owning worker thread. Assertions on worker-thread state are recorded
// as flags and checked on the main thread after RunCells returns.
#include "src/simcore/parallel_exec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/simcore/simulation.h"
#include "src/simcore/time.h"

namespace fastiov {
namespace {

// A ring cell: receives a token, records the delivery, and forwards it to the
// next cell until the token has made `max_hops` hops. Cells flagged `starts`
// inject a token at t=0 (from a scheduled event, not from CellBegin — the
// port cannot send before the first window).
class RingCell : public SimCell {
 public:
  RingCell(uint32_t index, uint32_t num_cells, uint64_t max_hops, SimTime latency,
           bool starts)
      : index_(index),
        num_cells_(num_cells),
        max_hops_(max_hops),
        latency_(latency),
        starts_(starts) {}

  Simulation& cell_sim() override { return *sim_; }

  void CellBegin(CellPort* port) override {
    port_ = port;
    sim_.emplace(1000 + index_);
    if (starts_) {
      sim_->ScheduleCallback(SimTime::Zero(), [this] {
        port_->Send((index_ + 1) % num_cells_, latency_, /*kind=*/1, /*payload=*/0);
      });
    }
  }

  void OnCellMessage(const CellMessage& msg) override {
    timing_ok_ = timing_ok_ && sim_->Now() == msg.deliver_at &&
                 msg.deliver_at.ns() == msg.sent_at.ns() + latency_.ns();
    log_.emplace_back(msg.deliver_at.ns(), msg.payload);
    if (msg.payload + 1 < max_hops_) {
      port_->Send((index_ + 1) % num_cells_, latency_, /*kind=*/1, msg.payload + 1);
    }
  }

  void CellEnd() override {
    sim_.reset();
    ended_ = true;
  }
  void CellAbandon() noexcept override { sim_.reset(); }

  const std::vector<std::pair<int64_t, uint64_t>>& log() const { return log_; }
  bool ended() const { return ended_; }
  bool timing_ok() const { return timing_ok_; }

 private:
  uint32_t index_;
  uint32_t num_cells_;
  uint64_t max_hops_;
  SimTime latency_;
  bool starts_;
  CellPort* port_ = nullptr;
  std::optional<Simulation> sim_;
  std::vector<std::pair<int64_t, uint64_t>> log_;
  bool ended_ = false;
  bool timing_ok_ = true;
};

struct RingRun {
  std::vector<std::vector<std::pair<int64_t, uint64_t>>> logs;
  ParallelExecStats stats;
};

// Runs a ring of `num_cells` cells. With `two_tokens`, cell 0 and the middle
// cell each inject a token, so several cells are active in the same window
// and the deterministic merge order actually matters.
RingRun RunRing(int threads, uint32_t num_cells, uint64_t hops, bool two_tokens) {
  const SimTime latency = Microseconds(5);
  std::vector<std::unique_ptr<RingCell>> cells;
  std::vector<SimCell*> ptrs;
  for (uint32_t i = 0; i < num_cells; ++i) {
    const bool starts = i == 0 || (two_tokens && i == num_cells / 2);
    cells.push_back(std::make_unique<RingCell>(i, num_cells, hops, latency, starts));
    ptrs.push_back(cells.back().get());
  }
  ParallelExecOptions opt;
  opt.threads = threads;
  opt.lookahead = latency;
  RingRun run;
  run.stats = RunCells(ptrs, opt);
  for (auto& cell : cells) {
    EXPECT_TRUE(cell->ended());
    EXPECT_TRUE(cell->timing_ok());
    run.logs.push_back(cell->log());
  }
  return run;
}

TEST(ParallelExecTest, RingIsDeterministicAcrossThreadCounts) {
  const RingRun r1 = RunRing(1, 4, 40, /*two_tokens=*/true);
  const RingRun r2 = RunRing(2, 4, 40, /*two_tokens=*/true);
  const RingRun r4 = RunRing(4, 4, 40, /*two_tokens=*/true);
  EXPECT_EQ(r1.logs, r2.logs);
  EXPECT_EQ(r1.logs, r4.logs);
  EXPECT_EQ(r1.stats.messages_delivered, r2.stats.messages_delivered);
  EXPECT_EQ(r1.stats.messages_delivered, r4.stats.messages_delivered);
  EXPECT_EQ(r1.stats.windows, r4.stats.windows);
  // Two tokens of 40 hops each.
  EXPECT_EQ(r1.stats.messages_delivered, 80u);
}

TEST(ParallelExecTest, MessageWakesCellWithNoEventsOfItsOwn) {
  // Cell 1 schedules nothing; its only activity is the delivered token. The
  // planner must still pick its inbox up as the next global event.
  const RingRun run = RunRing(2, 2, 1, /*two_tokens=*/false);
  ASSERT_EQ(run.logs.size(), 2u);
  EXPECT_TRUE(run.logs[0].empty());
  const std::vector<std::pair<int64_t, uint64_t>> want = {{Microseconds(5).ns(), 0}};
  EXPECT_EQ(run.logs[1], want);
  EXPECT_EQ(run.stats.messages_delivered, 1u);
}

TEST(ParallelExecTest, SendBelowLookaheadThrowsConservativeViolation) {
  // latency 1us against a 10us lookahead: the message could land inside the
  // window that produced it, which conservative sync must reject.
  std::vector<std::unique_ptr<RingCell>> cells;
  cells.push_back(std::make_unique<RingCell>(0, 2, 1, Microseconds(1), /*starts=*/true));
  cells.push_back(std::make_unique<RingCell>(1, 2, 1, Microseconds(1), /*starts=*/false));
  std::vector<SimCell*> ptrs = {cells[0].get(), cells[1].get()};
  ParallelExecOptions opt;
  opt.threads = 2;
  opt.lookahead = Microseconds(10);
  EXPECT_THROW(RunCells(ptrs, opt), std::logic_error);
}

// A cell whose only event throws. Used to pin the exception policy: the
// driver abandons the failing cell, lets every healthy cell finish, and
// rethrows the lowest-index failure.
class ThrowCell : public SimCell {
 public:
  ThrowCell(uint32_t index, std::string what) : index_(index), what_(std::move(what)) {}

  Simulation& cell_sim() override { return *sim_; }
  void CellBegin(CellPort* /*port*/) override {
    sim_.emplace(1);
    sim_->ScheduleCallback(Microseconds(static_cast<int64_t>(index_) + 1),
                           [this] { throw std::runtime_error(what_); });
  }
  void CellEnd() override { sim_.reset(); }
  void CellAbandon() noexcept override {
    sim_.reset();
    abandoned_ = true;
  }
  bool abandoned() const { return abandoned_; }

 private:
  uint32_t index_;
  std::string what_;
  std::optional<Simulation> sim_;
  bool abandoned_ = false;
};

TEST(ParallelExecTest, LowestIndexFailureWinsAndHealthyCellsFinish) {
  RingCell healthy0(0, 4, 0, Microseconds(5), /*starts=*/false);
  ThrowCell bad1(1, "boom-1");
  RingCell healthy2(2, 4, 0, Microseconds(5), /*starts=*/false);
  ThrowCell bad3(3, "boom-3");
  const std::vector<SimCell*> ptrs = {&healthy0, &bad1, &healthy2, &bad3};
  ParallelExecOptions opt;
  opt.threads = 2;
  try {
    RunCells(ptrs, opt);
    FAIL() << "RunCells should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom-1");
  }
  EXPECT_TRUE(bad1.abandoned());
  EXPECT_TRUE(bad3.abandoned());
  EXPECT_TRUE(healthy0.ended());
  EXPECT_TRUE(healthy2.ended());
}

// Purely local work: a short self-rescheduling callback chain, no ports.
class LocalCell : public SimCell {
 public:
  explicit LocalCell(int events) : events_(events) {}

  Simulation& cell_sim() override { return *sim_; }
  void CellBegin(CellPort* /*port*/) override {
    sim_.emplace(7);
    for (int i = 0; i < events_; ++i) {
      sim_->ScheduleCallback(Microseconds(i + 1), [this] { ++fired_; });
    }
  }
  void CellEnd() override {
    sim_.reset();
    ended_ = true;
  }
  void CellAbandon() noexcept override { sim_.reset(); }
  int fired() const { return fired_; }
  bool ended() const { return ended_; }

 private:
  int events_;
  std::optional<Simulation> sim_;
  int fired_ = 0;
  bool ended_ = false;
};

TEST(ParallelExecTest, UncoupledCellsRunInOneWindow) {
  // Default lookahead (Max): no cross-cell traffic, so every cell runs to
  // completion with a single planning round — the FastIOV fleet regime.
  std::vector<std::unique_ptr<LocalCell>> cells;
  std::vector<SimCell*> ptrs;
  for (int i = 0; i < 4; ++i) {
    cells.push_back(std::make_unique<LocalCell>(10));
    ptrs.push_back(cells.back().get());
  }
  ParallelExecOptions opt;
  opt.threads = 4;
  const ParallelExecStats stats = RunCells(ptrs, opt);
  EXPECT_EQ(stats.windows, 1u);
  EXPECT_EQ(stats.messages_delivered, 0u);
  for (auto& cell : cells) {
    EXPECT_TRUE(cell->ended());
    EXPECT_EQ(cell->fired(), 10);
  }
}

TEST(ParallelExecTest, StatsShapeAndClamping) {
  std::vector<std::unique_ptr<LocalCell>> cells;
  std::vector<SimCell*> ptrs;
  for (int i = 0; i < 3; ++i) {
    cells.push_back(std::make_unique<LocalCell>(2));
    ptrs.push_back(cells.back().get());
  }
  ParallelExecOptions opt;
  opt.threads = 8;  // more threads than cells: clamped to 3
  const ParallelExecStats stats = RunCells(ptrs, opt);
  EXPECT_EQ(stats.threads_used, 3);
  EXPECT_EQ(stats.worker_busy_seconds.size(), 3u);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GE(stats.Utilization(), 0.0);
}

TEST(ParallelExecTest, ThreadsZeroMeansHardwareConcurrency) {
  LocalCell cell(2);
  const std::vector<SimCell*> ptrs = {&cell};
  ParallelExecOptions opt;
  opt.threads = 0;
  const ParallelExecStats stats = RunCells(ptrs, opt);
  EXPECT_EQ(stats.threads_used, 1);  // clamped to the single cell
  EXPECT_EQ(cell.fired(), 2);
}

TEST(ParallelExecTest, EmptyAndInvalidInputs) {
  const ParallelExecStats stats = RunCells({}, ParallelExecOptions{});
  EXPECT_EQ(stats.threads_used, 0);
  EXPECT_EQ(stats.windows, 0u);

  LocalCell cell(1);
  const std::vector<SimCell*> with_null = {&cell, nullptr};
  EXPECT_THROW(RunCells(with_null, ParallelExecOptions{}), std::invalid_argument);
}

// ---- Earliest-send horizons & idle-cell elision (adversarial cases) ----

// With latency == lookahead, a message sent at the window's first event lands
// exactly AT the horizon — the boundary is half-open, so the delivery must be
// held to the next window, never executed inside the one that produced it.
TEST(ParallelExecTest, MessageExactlyAtHorizonIsHeldToNextWindow) {
  const RingRun run = RunRing(2, 2, 1, /*two_tokens=*/false);
  // Window 1: cell 0 sends at t=0; deliver_at == window_end (5us). Window 2:
  // cell 1 executes the delivery. Exactly two planned windows, no third.
  EXPECT_EQ(run.stats.windows, 2u);
  const std::vector<std::pair<int64_t, uint64_t>> want = {{Microseconds(5).ns(), 0}};
  EXPECT_EQ(run.logs[1], want);
}

// A cell with `ticks` local events 1us apart that sends a single message to
// cell 1 from the last tick. With `promise`, NextSendBound declares that
// send time up front, so the planner can widen the window across all the
// intermediate ticks instead of stepping lookahead-by-lookahead.
class TickerCell : public SimCell {
 public:
  TickerCell(int ticks, SimTime latency, bool promise)
      : ticks_(ticks), latency_(latency), promise_(promise) {}

  Simulation& cell_sim() override { return *sim_; }
  void CellBegin(CellPort* port) override {
    port_ = port;
    sim_.emplace(3);
    for (int i = 1; i <= ticks_; ++i) {
      const bool last = i == ticks_;
      sim_->ScheduleCallback(Microseconds(i), [this, last] {
        ++fired_;
        if (last) {
          port_->Send(1, latency_, /*kind=*/1, /*payload=*/99);
        }
      });
    }
  }
  SimTime NextSendBound(SimTime next_event, SimTime earliest_inbox) override {
    if (!promise_) {
      return SimCell::NextSendBound(next_event, earliest_inbox);
    }
    // The only send happens at the final tick; max() keeps the bound sound
    // after the send too (no events left -> the default is already Max).
    return std::max(Microseconds(ticks_),
                    SimCell::NextSendBound(next_event, earliest_inbox));
  }
  void CellEnd() override { sim_.reset(); }
  void CellAbandon() noexcept override { sim_.reset(); }
  int fired() const { return fired_; }

 private:
  int ticks_;
  SimTime latency_;
  bool promise_;
  CellPort* port_ = nullptr;
  std::optional<Simulation> sim_;
  int fired_ = 0;
};

struct TickerRun {
  int fired = 0;
  std::vector<std::pair<int64_t, uint64_t>> sink_log;
  ParallelExecStats stats;
};

TickerRun RunTicker(int threads, bool promise, bool elide) {
  TickerCell ticker(10, Microseconds(1), promise);
  RingCell sink(1, 2, /*max_hops=*/1, Microseconds(1), /*starts=*/false);
  ParallelExecOptions opt;
  opt.threads = threads;
  opt.lookahead = Microseconds(1);
  opt.elide_idle_cells = elide;
  TickerRun run;
  run.stats = RunCells({&ticker, &sink}, opt);
  EXPECT_TRUE(sink.ended());
  EXPECT_TRUE(sink.timing_ok());
  run.fired = ticker.fired();
  run.sink_log = sink.log();
  return run;
}

// The quiescent sink is elided for every ticker-only window, then woken by
// the one message; and an honest NextSendBound promise collapses the ten
// 1us-lookahead windows into one wide window plus the delivery window —
// without moving a byte of the observable result.
TEST(ParallelExecTest, SendBoundWidensWindowsAndElidedCellStillWakes) {
  const TickerRun base = RunTicker(2, /*promise=*/false, /*elide=*/true);
  const TickerRun wide = RunTicker(2, /*promise=*/true, /*elide=*/true);
  const std::vector<std::pair<int64_t, uint64_t>> want = {{Microseconds(11).ns(), 99}};
  EXPECT_EQ(base.sink_log, want);
  EXPECT_EQ(wide.sink_log, want);
  EXPECT_EQ(base.fired, 10);
  EXPECT_EQ(wide.fired, 10);
  // Without the promise: one window per tick plus the delivery window. With
  // it: one widened window plus the delivery window.
  EXPECT_GT(base.stats.windows, wide.stats.windows);
  EXPECT_EQ(wide.stats.windows, 2u);
  EXPECT_GT(wide.stats.mean_window_span_us, 1.0);  // wider than the lookahead
  // The sink had nothing due while the ticker ticked: elided, not executed.
  EXPECT_GT(base.stats.cell_rounds_elided, 0u);
  EXPECT_EQ(base.stats.cell_rounds + base.stats.cell_rounds_elided,
            base.stats.windows * 2);
  EXPECT_EQ(wide.stats.cell_rounds + wide.stats.cell_rounds_elided,
            wide.stats.windows * 2);
}

// Elision is a pure scheduling optimization: turning it off runs every cell
// every window and must reproduce the identical observable result.
TEST(ParallelExecTest, ElisionOnOffIsByteIdentical) {
  for (const int threads : {1, 2}) {
    const TickerRun on = RunTicker(threads, /*promise=*/false, /*elide=*/true);
    const TickerRun off = RunTicker(threads, /*promise=*/false, /*elide=*/false);
    EXPECT_EQ(on.sink_log, off.sink_log) << "threads=" << threads;
    EXPECT_EQ(on.fired, off.fired) << "threads=" << threads;
    EXPECT_EQ(on.stats.windows, off.stats.windows) << "threads=" << threads;
    EXPECT_EQ(on.stats.messages_delivered, off.stats.messages_delivered);
    EXPECT_EQ(off.stats.cell_rounds_elided, 0u);
    EXPECT_EQ(off.stats.cell_rounds, off.stats.windows * 2);
    EXPECT_GT(on.stats.cell_rounds_elided, 0u);
  }
}

// A cell that promises "I will never send" and then sends. The planner may
// have widened the window on the strength of that promise, so the send must
// throw rather than deliver a possibly-late message.
class LiarCell : public SimCell {
 public:
  Simulation& cell_sim() override { return *sim_; }
  void CellBegin(CellPort* port) override {
    port_ = port;
    sim_.emplace(9);
    sim_->ScheduleCallback(Microseconds(5), [this] {
      port_->Send(1, Microseconds(10), /*kind=*/1, /*payload=*/0);
    });
  }
  SimTime NextSendBound(SimTime /*next_event*/, SimTime /*earliest_inbox*/) override {
    return SimTime::Max();
  }
  void CellEnd() override { sim_.reset(); }
  void CellAbandon() noexcept override {
    sim_.reset();
    abandoned_ = true;
  }
  bool abandoned() const { return abandoned_; }

 private:
  CellPort* port_ = nullptr;
  std::optional<Simulation> sim_;
  bool abandoned_ = false;
};

TEST(ParallelExecTest, NextSendBoundViolationThrows) {
  LiarCell liar;
  RingCell sink(1, 2, /*max_hops=*/1, Microseconds(10), /*starts=*/false);
  ParallelExecOptions opt;
  opt.threads = 2;
  opt.lookahead = Microseconds(10);
  try {
    RunCells({&liar, &sink}, opt);
    FAIL() << "RunCells should have rethrown the bound violation";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("NextSendBound"), std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(liar.abandoned());
  EXPECT_TRUE(sink.ended());  // the healthy cell still finishes
}

}  // namespace
}  // namespace fastiov
