#include "src/stats/json_writer.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/stats/trace_export.h"

namespace fastiov {
namespace {

std::string Write(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream os;
  JsonWriter json(os);
  body(json);
  return os.str();
}

TEST(JsonWriterTest, EmptyObjectAndArray) {
  EXPECT_EQ(Write([](JsonWriter& j) { j.BeginObject().EndObject(); }), "{}");
  EXPECT_EQ(Write([](JsonWriter& j) { j.BeginArray().EndArray(); }), "[]");
}

TEST(JsonWriterTest, KeyValuePairsWithCommas) {
  const std::string out = Write([](JsonWriter& j) {
    j.BeginObject().KV("a", static_cast<int64_t>(1)).KV("b", "x").KV("c", true).EndObject();
  });
  EXPECT_EQ(out, "{\"a\":1,\"b\":\"x\",\"c\":true}");
}

TEST(JsonWriterTest, NestedStructures) {
  const std::string out = Write([](JsonWriter& j) {
    j.BeginObject();
    j.Key("list");
    j.BeginArray().Value(static_cast<int64_t>(1)).Value(static_cast<int64_t>(2)).EndArray();
    j.Key("obj");
    j.BeginObject().KV("x", 3.5).EndObject();
    j.EndObject();
  });
  EXPECT_EQ(out, "{\"list\":[1,2],\"obj\":{\"x\":3.5}}");
}

TEST(JsonWriterTest, ArrayOfObjects) {
  const std::string out = Write([](JsonWriter& j) {
    j.BeginArray();
    j.BeginObject().KV("i", static_cast<int64_t>(0)).EndObject();
    j.BeginObject().KV("i", static_cast<int64_t>(1)).EndObject();
    j.EndArray();
  });
  EXPECT_EQ(out, "[{\"i\":0},{\"i\":1}]");
}

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonWriter::Escape(std::string_view("\x01", 1)), "\\u0001");
  const std::string out =
      Write([](JsonWriter& j) { j.BeginObject().KV("k\n", "v\"").EndObject(); });
  EXPECT_EQ(out, "{\"k\\n\":\"v\\\"\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  const std::string out = Write([](JsonWriter& j) {
    j.BeginArray().Value(std::numeric_limits<double>::infinity()).Value(1.5).EndArray();
  });
  EXPECT_EQ(out, "[null,1.5]");
}

TEST(JsonWriterTest, ExplicitNull) {
  EXPECT_EQ(Write([](JsonWriter& j) { j.BeginObject().Key("x").Null().EndObject(); }),
            "{\"x\":null}");
}

TEST(TraceExportTest, EmitsEventsForSpansAndStartup) {
  TimelineRecorder rec;
  const int id = rec.RegisterContainer(Seconds(1.0));
  rec.RecordSpan(id, kStepVfioDev, Seconds(1.5), Seconds(2.5));
  rec.RecordSpan(id, kStepVfDriver, Seconds(2.5), Seconds(3.0), /*off_critical_path=*/true);
  rec.MarkReady(id, Seconds(3.5));
  rec.MarkTaskDone(id, Seconds(5.0));

  std::ostringstream os;
  ExportChromeTrace(rec, os);
  const std::string out = os.str();

  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"startup\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"4-vfio-dev\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"task\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"container-0\""), std::string::npos);
  // Off-critical-path spans go to tid 1.
  EXPECT_NE(out.find("\"tid\":1"), std::string::npos);
  // Durations are microseconds: the vfio span is 1s = 1e6 us.
  EXPECT_NE(out.find("\"dur\":1000000"), std::string::npos);
}

TEST(TraceExportTest, BalancedJson) {
  TimelineRecorder rec;
  for (int i = 0; i < 3; ++i) {
    const int id = rec.RegisterContainer(SimTime::Zero());
    rec.RecordSpan(id, kStepCgroup, SimTime::Zero(), Milliseconds(10));
    rec.MarkReady(id, Milliseconds(20));
  }
  std::ostringstream os;
  ExportChromeTrace(rec, os);
  const std::string out = os.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'), std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['), std::count(out.begin(), out.end(), ']'));
}

}  // namespace
}  // namespace fastiov
