// Tests for multi-cell experiments (src/experiments/multi_cell): a fleet of
// HostCells in one process must be exactly N standalone runs — byte-for-byte
// in the serialized result JSON — at any thread count and lookahead, with
// nothing leaking between cells (the point of removing the last process-wide
// state reachable from Host).
#include "src/experiments/multi_cell.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/experiments/result_json.h"
#include "src/experiments/startup_experiment.h"

namespace fastiov {
namespace {

ExperimentOptions SmallOptions(int concurrency) {
  ExperimentOptions options;
  options.concurrency = concurrency;
  return options;
}

// Satellite: two cells in one process, each identical to the standalone run
// with the same seed. This is the isolation test — before PciDevice's
// process-global id counter was removed, the second Host in a process saw
// different device ids than the first.
TEST(MultiCellTest, CellsMatchStandaloneRuns) {
  const ExperimentOptions base = SmallOptions(8);
  MultiCellOptions mc;
  mc.cells = 2;
  mc.cell_threads = 1;
  const MultiCellResult multi = RunMultiCellExperiment(StackConfig::FastIov(), base, mc);
  ASSERT_EQ(multi.cells.size(), 2u);
  for (int i = 0; i < 2; ++i) {
    ExperimentOptions solo = base;
    solo.seed = base.seed + static_cast<uint64_t>(i);
    const ExperimentResult standalone = RunStartupExperiment(StackConfig::FastIov(), solo);
    EXPECT_EQ(ExperimentResultJson(multi.cells[static_cast<size_t>(i)]),
              ExperimentResultJson(standalone))
        << "cell " << i;
  }
}

// Same-seed runs executed back to back in one process must serialize
// identically — a regression guard against any hidden process-global state
// reachable from Host (id counters, caches, statics).
TEST(MultiCellTest, RepeatedRunsInOneProcessAreIdentical) {
  const ExperimentOptions options = SmallOptions(6);
  const std::string first =
      ExperimentResultJson(RunStartupExperiment(StackConfig::FastIov(), options));
  const std::string second =
      ExperimentResultJson(RunStartupExperiment(StackConfig::FastIov(), options));
  EXPECT_EQ(first, second);
}

TEST(MultiCellTest, DigestInvariantAcrossThreadCounts) {
  const ExperimentOptions base = SmallOptions(6);
  MultiCellOptions mc;
  mc.cells = 4;
  mc.cell_threads = 1;
  const std::string d1 =
      MultiCellDigest(RunMultiCellExperiment(StackConfig::FastIov(), base, mc));
  mc.cell_threads = 2;
  const std::string d2 =
      MultiCellDigest(RunMultiCellExperiment(StackConfig::FastIov(), base, mc));
  mc.cell_threads = 4;
  const std::string d4 =
      MultiCellDigest(RunMultiCellExperiment(StackConfig::FastIov(), base, mc));
  ASSERT_FALSE(d1.empty());
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1, d4);
}

// HostCells never talk to each other, so a finite lookahead only chops the
// run into many windows — it must not move a byte relative to the uncoupled
// single-window execution.
TEST(MultiCellTest, WindowedLookaheadMatchesUncoupled) {
  const ExperimentOptions base = SmallOptions(5);
  MultiCellOptions mc;
  mc.cells = 2;
  mc.cell_threads = 2;
  const MultiCellResult uncoupled =
      RunMultiCellExperiment(StackConfig::FastIov(), base, mc);
  EXPECT_EQ(uncoupled.exec.windows, 1u);

  mc.lookahead = Microseconds(100);
  const MultiCellResult windowed =
      RunMultiCellExperiment(StackConfig::FastIov(), base, mc);
  EXPECT_GT(windowed.exec.windows, 1u);
  EXPECT_EQ(MultiCellDigest(uncoupled), MultiCellDigest(windowed));
}

TEST(MultiCellTest, ExecStatsReflectTheFleet) {
  const ExperimentOptions base = SmallOptions(4);
  MultiCellOptions mc;
  mc.cells = 3;
  mc.cell_threads = 8;  // clamped to the 3 cells
  const MultiCellResult result = RunMultiCellExperiment(StackConfig::FastIov(), base, mc);
  EXPECT_EQ(result.exec.threads_used, 3);
  EXPECT_EQ(result.exec.worker_busy_seconds.size(), 3u);
  EXPECT_EQ(result.exec.messages_delivered, 0u);
  EXPECT_GT(result.exec.wall_seconds, 0.0);
}

TEST(MultiCellTest, RejectsNonPositiveCellCount) {
  MultiCellOptions mc;
  mc.cells = 0;
  EXPECT_THROW(RunMultiCellExperiment(StackConfig::FastIov(), SmallOptions(2), mc),
               std::invalid_argument);
}

}  // namespace
}  // namespace fastiov
