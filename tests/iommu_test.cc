#include "src/iommu/iommu.h"

#include <gtest/gtest.h>

#include "src/config/cost_model.h"

namespace fastiov {
namespace {

TEST(IoPageTableTest, MapAndTranslateSmallPage) {
  IoPageTable t;
  ASSERT_TRUE(t.Map(0x1000, 42, kSmallPageSize));
  const auto tr = t.Translate(0x1000);
  ASSERT_TRUE(tr.has_value());
  EXPECT_EQ(tr->page, 42u);
  EXPECT_EQ(tr->page_size, kSmallPageSize);
  EXPECT_EQ(tr->offset, 0u);
}

TEST(IoPageTableTest, TranslateOffsetWithinPage) {
  IoPageTable t;
  ASSERT_TRUE(t.Map(0x2000, 7, kSmallPageSize));
  const auto tr = t.Translate(0x2abc);
  ASSERT_TRUE(tr.has_value());
  EXPECT_EQ(tr->page, 7u);
  EXPECT_EQ(tr->offset, 0xabcu);
}

TEST(IoPageTableTest, HugePageMapping) {
  IoPageTable t;
  ASSERT_TRUE(t.Map(4 * kHugePageSize, 9, kHugePageSize));
  const auto tr = t.Translate(4 * kHugePageSize + 0x12345);
  ASSERT_TRUE(tr.has_value());
  EXPECT_EQ(tr->page, 9u);
  EXPECT_EQ(tr->page_size, kHugePageSize);
  EXPECT_EQ(tr->offset, 0x12345u);
}

TEST(IoPageTableTest, UnmappedTranslationFails) {
  IoPageTable t;
  EXPECT_FALSE(t.Translate(0x5000).has_value());
  ASSERT_TRUE(t.Map(0x1000, 1, kSmallPageSize));
  EXPECT_FALSE(t.Translate(0x2000).has_value());
}

TEST(IoPageTableTest, DoubleMapFails) {
  IoPageTable t;
  ASSERT_TRUE(t.Map(0x1000, 1, kSmallPageSize));
  EXPECT_FALSE(t.Map(0x1000, 2, kSmallPageSize));
  // Original mapping intact.
  EXPECT_EQ(t.Translate(0x1000)->page, 1u);
}

TEST(IoPageTableTest, SmallMapUnderHugeMappingFails) {
  IoPageTable t;
  ASSERT_TRUE(t.Map(0, 1, kHugePageSize));
  EXPECT_FALSE(t.Map(0x1000, 2, kSmallPageSize));
}

TEST(IoPageTableTest, UnmapRemovesOnlyTarget) {
  IoPageTable t;
  ASSERT_TRUE(t.Map(0x1000, 1, kSmallPageSize));
  ASSERT_TRUE(t.Map(0x2000, 2, kSmallPageSize));
  EXPECT_TRUE(t.Unmap(0x1000));
  EXPECT_FALSE(t.Translate(0x1000).has_value());
  EXPECT_TRUE(t.Translate(0x2000).has_value());
  EXPECT_EQ(t.num_mappings(), 1u);
}

TEST(IoPageTableTest, UnmapMissingReturnsFalse) {
  IoPageTable t;
  EXPECT_FALSE(t.Unmap(0x1000));
}

TEST(IoPageTableTest, RemapAfterUnmap) {
  IoPageTable t;
  ASSERT_TRUE(t.Map(0x1000, 1, kSmallPageSize));
  ASSERT_TRUE(t.Unmap(0x1000));
  EXPECT_TRUE(t.Map(0x1000, 3, kSmallPageSize));
  EXPECT_EQ(t.Translate(0x1000)->page, 3u);
}

TEST(IoPageTableTest, TablePageCountGrowsWithSpread) {
  IoPageTable t;
  EXPECT_EQ(t.num_table_pages(), 1u);  // root only
  // One 4 KiB mapping needs 3 intermediate nodes below the root.
  t.Map(0x1000, 1, kSmallPageSize);
  EXPECT_EQ(t.num_table_pages(), 4u);
  // A second mapping nearby reuses the whole path.
  t.Map(0x2000, 2, kSmallPageSize);
  EXPECT_EQ(t.num_table_pages(), 4u);
  // A mapping in a distant 512 GiB region allocates a fresh path.
  t.Map(1ull << 40, 3, kSmallPageSize);
  EXPECT_EQ(t.num_table_pages(), 7u);
}

TEST(IoPageTableTest, UnmapReclaimsEmptyTableNodes) {
  IoPageTable t;
  t.Map(0x1000, 1, kSmallPageSize);
  EXPECT_EQ(t.num_table_pages(), 4u);
  t.Unmap(0x1000);
  // All three intermediate nodes were empty and got reclaimed.
  EXPECT_EQ(t.num_table_pages(), 1u);
  // The table remains usable.
  EXPECT_TRUE(t.Map(0x1000, 2, kSmallPageSize));
  EXPECT_EQ(t.num_table_pages(), 4u);
}

TEST(IoPageTableTest, UnmapKeepsSharedNodes) {
  IoPageTable t;
  t.Map(0x1000, 1, kSmallPageSize);
  t.Map(0x2000, 2, kSmallPageSize);  // shares the whole path
  t.Unmap(0x1000);
  // The sibling still needs the path.
  EXPECT_EQ(t.num_table_pages(), 4u);
  EXPECT_TRUE(t.Translate(0x2000).has_value());
  t.Unmap(0x2000);
  EXPECT_EQ(t.num_table_pages(), 1u);
}

TEST(IoPageTableTest, HugePageUsesShorterPath) {
  IoPageTable t;
  t.Map(0, 1, kHugePageSize);
  // Root + 1 intermediate level (leaf lives at level 2).
  EXPECT_EQ(t.num_table_pages(), 3u);
}

TEST(IoPageTableTest, ManyMappingsCount) {
  IoPageTable t;
  for (uint64_t i = 0; i < 256; ++i) {
    ASSERT_TRUE(t.Map(i * kHugePageSize, i, kHugePageSize));
  }
  EXPECT_EQ(t.num_mappings(), 256u);
  for (uint64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(t.Translate(i * kHugePageSize)->page, i);
  }
}

TEST(IommuTest, DomainsAreIsolated) {
  Iommu iommu;
  IommuDomain* a = iommu.CreateDomain();
  IommuDomain* b = iommu.CreateDomain();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->id(), b->id());
  a->Map(0x1000, 1, kSmallPageSize);
  EXPECT_TRUE(a->Translate(0x1000).has_value());
  EXPECT_FALSE(b->Translate(0x1000).has_value());
}

TEST(IommuTest, DestroyDomainRemovesIt) {
  Iommu iommu;
  IommuDomain* a = iommu.CreateDomain();
  const int id = a->id();
  EXPECT_EQ(iommu.domain(id), a);
  iommu.DestroyDomain(id);
  EXPECT_EQ(iommu.domain(id), nullptr);
  EXPECT_EQ(iommu.num_domains(), 0u);
}

TEST(IommuTest, DeviceAttachDetach) {
  Iommu iommu;
  IommuDomain* d = iommu.CreateDomain();
  d->AttachDevice(5);
  d->AttachDevice(9);
  EXPECT_EQ(d->devices().size(), 2u);
  d->DetachDevice(5);
  ASSERT_EQ(d->devices().size(), 1u);
  EXPECT_EQ(d->devices()[0], 9);
}

TEST(IommuTest, TranslationFaultCounter) {
  Iommu iommu;
  IommuDomain* d = iommu.CreateDomain();
  EXPECT_EQ(d->translation_faults(), 0u);
  d->CountTranslationFault();
  d->CountTranslationFault();
  EXPECT_EQ(d->translation_faults(), 2u);
}

}  // namespace
}  // namespace fastiov
