#include "src/pci/pci.h"

#include <gtest/gtest.h>

namespace fastiov {
namespace {

TEST(PciAddressTest, ToStringFormat) {
  PciAddress addr{0, 0x3b, 0x02, 0x1};
  EXPECT_EQ(addr.ToString(), "0000:3b:02.1");
  PciAddress addr2{0x10, 0xff, 0x1f, 0x7};
  EXPECT_EQ(addr2.ToString(), "0010:ff:1f.7");
}

TEST(PciAddressTest, Ordering) {
  PciAddress a{0, 1, 0, 0};
  PciAddress b{0, 1, 0, 1};
  PciAddress c{0, 2, 0, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (PciAddress{0, 1, 0, 0}));
}

TEST(PciDeviceTest, VendorDeviceIdsInConfigSpace) {
  PciIdAllocator ids;
  PciDevice dev(ids, {0, 1, 2, 3}, kIntelVendorId, kE810VfDeviceId, ResetScope::kBus, "vf0");
  EXPECT_EQ(dev.ConfigRead16(kPciVendorId), kIntelVendorId);
  EXPECT_EQ(dev.ConfigRead16(kPciDeviceId), kE810VfDeviceId);
  EXPECT_EQ(dev.name(), "vf0");
  EXPECT_EQ(dev.reset_scope(), ResetScope::kBus);
}

TEST(PciDeviceTest, ConfigReadWriteWidths) {
  PciIdAllocator ids;
  PciDevice dev(ids, {}, 0x1234, 0x5678, ResetScope::kFunction, "d");
  dev.ConfigWrite32(kPciBar0, 0xdeadbeef);
  EXPECT_EQ(dev.ConfigRead32(kPciBar0), 0xdeadbeefu);
  EXPECT_EQ(dev.ConfigRead16(kPciBar0), 0xbeef);
  EXPECT_EQ(dev.ConfigRead8(kPciBar0 + 3), 0xde);
  dev.ConfigWrite8(kPciBar0, 0x01);
  EXPECT_EQ(dev.ConfigRead32(kPciBar0), 0xdeadbe01u);
}

TEST(PciDeviceTest, BusMasterBit) {
  PciIdAllocator ids;
  PciDevice dev(ids, {}, 1, 2, ResetScope::kBus, "d");
  EXPECT_FALSE(dev.bus_master_enabled());
  dev.ConfigWrite16(kPciCommand, dev.ConfigRead16(kPciCommand) | kPciCommandBusMaster);
  EXPECT_TRUE(dev.bus_master_enabled());
}

TEST(PciDeviceTest, UniqueIds) {
  PciIdAllocator ids;
  PciDevice a(ids, {}, 1, 1, ResetScope::kBus, "a");
  PciDevice b(ids, {}, 1, 1, ResetScope::kBus, "b");
  EXPECT_NE(a.id(), b.id());
}

TEST(PciDeviceTest, IdSequencesAreIndependentPerAllocator) {
  // Two id spaces in one process start from zero independently — the
  // property that makes two HostCells byte-identical replicas of each other.
  PciIdAllocator ids_a;
  PciIdAllocator ids_b;
  for (int i = 0; i < 4; ++i) {
    PciDevice da(ids_a, {}, 1, 1, ResetScope::kBus, "a");
    PciDevice db(ids_b, {}, 1, 1, ResetScope::kBus, "b");
    EXPECT_EQ(da.id(), i);
    EXPECT_EQ(db.id(), da.id());
  }
}

TEST(PciDeviceTest, DriverBinding) {
  PciIdAllocator ids;
  PciDevice dev(ids, {}, 1, 2, ResetScope::kBus, "d");
  EXPECT_EQ(dev.bound_driver(), BoundDriver::kNone);
  dev.BindDriver(BoundDriver::kVfio);
  EXPECT_EQ(dev.bound_driver(), BoundDriver::kVfio);
}

TEST(PciBusTest, AddFindRemove) {
  PciBus bus(0x3b);
  PciIdAllocator ids;
  PciDevice a(ids, {0, 0x3b, 1, 0}, 1, 1, ResetScope::kBus, "a");
  PciDevice b(ids, {0, 0x3b, 1, 1}, 1, 1, ResetScope::kBus, "b");
  bus.AddDevice(&a);
  bus.AddDevice(&b);
  EXPECT_EQ(bus.num_devices(), 2u);
  EXPECT_EQ(bus.Find({0, 0x3b, 1, 1}), &b);
  EXPECT_EQ(bus.Find({0, 0x3b, 9, 0}), nullptr);
  bus.RemoveDevice(&a);
  EXPECT_EQ(bus.num_devices(), 1u);
  EXPECT_EQ(bus.Find({0, 0x3b, 1, 0}), nullptr);
}

TEST(PciBusTest, BusNumber) {
  PciBus bus(7);
  EXPECT_EQ(bus.number(), 7);
}

}  // namespace
}  // namespace fastiov
