// System-wide invariants, checked after full experiment runs across the
// baseline matrix. These hold regardless of configuration:
//   I1  page conservation: used + free == total, always
//   I2  pin balance: after teardown, no frame stays pinned
//   I3  ownership: a frame is owned by at most one live VM
//   I4  EPT consistency: every EPT entry maps to a frame the VM owns (or
//       shares), and faults == entries for first-touch workloads
//   I5  lazy-table hygiene: no frame is flagged in_lazy_table after the
//       background scrubber stops and tables are drained
//   I6  mapped-implies-populated: DMA-mapped regions have no holes
#include <gtest/gtest.h>

#include <unordered_map>

#include "src/container/runtime.h"
#include "src/experiments/startup_experiment.h"

namespace fastiov {
namespace {

struct MatrixEnv {
  Simulation sim;
  Host host;
  ContainerRuntime runtime;

  explicit MatrixEnv(const StackConfig& config) : sim(13), host(sim, HostSpec{}, CostModel{}, config), runtime(host) {}

  void Run(int containers, bool teardown) {
    auto root = [](MatrixEnv* env, int n, bool stop) -> Task {
      co_await env->host.PrepareSharedImage();
      if (env->host.config().cni == CniKind::kVanillaFixed ||
          env->host.config().cni == CniKind::kFastIov) {
        env->host.PreBindVfsToVfio();
      }
      if (env->host.config().decoupled_zeroing) {
        env->host.fastiovd().StartBackgroundZeroer();
      }
      std::vector<Process> ps;
      for (int i = 0; i < n; ++i) {
        ps.push_back(env->sim.Spawn(env->runtime.StartContainer(nullptr)));
      }
      co_await WaitAll(std::move(ps));
      if (stop) {
        std::vector<Process> stops;
        for (const auto& inst : env->runtime.instances()) {
          stops.push_back(env->sim.Spawn(env->runtime.StopContainer(*inst)));
        }
        co_await WaitAll(std::move(stops));
      }
      env->host.fastiovd().StopBackgroundZeroer();
    };
    sim.Spawn(root(this, containers, teardown));
    sim.Run();
  }
};

std::vector<StackConfig> Matrix() {
  return {StackConfig::NoNetwork(),          StackConfig::Vanilla(),
          StackConfig::FastIov(),            StackConfig::FastIovWithout('L'),
          StackConfig::FastIovWithout('D'),  StackConfig::PreZero(0.5),
          StackConfig::Ipvtap(),             StackConfig::FastIovVdpa()};
}

class InvariantsTest : public ::testing::TestWithParam<StackConfig> {};

TEST_P(InvariantsTest, PageAccountingAndOwnershipWhileRunning) {
  MatrixEnv env(GetParam());
  env.Run(6, /*teardown=*/false);
  PhysicalMemory& pmem = env.host.pmem();

  // I1: conservation.
  EXPECT_EQ(pmem.used_pages() + pmem.free_pages(), pmem.total_pages());

  // I3: each owned frame belongs to exactly one live pid (or the host).
  std::unordered_map<int32_t, uint64_t> frames_per_owner;
  uint64_t owned = 0;
  for (PageId id = 0; id < pmem.total_pages(); ++id) {
    const PageFrame& f = pmem.frame(id);
    if (f.owner != -1) {
      ++owned;
      ++frames_per_owner[f.owner];
    }
  }
  EXPECT_EQ(owned, pmem.used_pages());
  std::set<int> live_pids{0};  // 0 = host-owned (shared image)
  for (const auto& inst : env.runtime.instances()) {
    live_pids.insert(inst->pid);
  }
  for (const auto& [owner, count] : frames_per_owner) {
    EXPECT_TRUE(live_pids.count(owner)) << "frame owned by unknown pid " << owner;
  }

  // I4: EPT entries point at frames of the owning VM (or shared backing).
  for (const auto& inst : env.runtime.instances()) {
    for (const GuestMemoryRegion& region : inst->vm->regions()) {
      const uint64_t pages = region.size / pmem.page_size();
      for (uint64_t i = 0; i < pages; ++i) {
        const uint64_t gpa_page = region.gpa_base / pmem.page_size() + i;
        const auto entry = inst->vm->ept().Lookup(gpa_page);
        if (entry.has_value()) {
          EXPECT_EQ(*entry, region.frames.Get(i));
          const int32_t owner = pmem.frame(*entry).owner;
          EXPECT_TRUE(owner == inst->pid || (region.shared_backing && owner == 0))
              << "EPT entry maps a frame the VM does not own";
        }
      }
    }
    // I6: DMA-mapped regions are fully populated.
    for (const GuestMemoryRegion& region : inst->vm->regions()) {
      if (region.dma_mapped) {
        EXPECT_TRUE(region.frames.fully_populated());
      }
    }
  }
}

TEST_P(InvariantsTest, CleanStateAfterTeardown) {
  MatrixEnv env(GetParam());
  env.Run(6, /*teardown=*/true);
  PhysicalMemory& pmem = env.host.pmem();

  // I1 again.
  EXPECT_EQ(pmem.used_pages() + pmem.free_pages(), pmem.total_pages());
  // Only the host's shared image stays resident.
  EXPECT_EQ(pmem.used_pages(), env.host.shared_image_frames().size());

  for (PageId id = 0; id < pmem.total_pages(); ++id) {
    const PageFrame& f = pmem.frame(id);
    // I2: nothing pinned.
    EXPECT_EQ(f.pin_count, 0) << "leaked pin on frame " << id;
    // I5: no stale lazy-table flags.
    EXPECT_FALSE(f.in_lazy_table) << "stale lazy-table flag on frame " << id;
    // I3: only the host may still own frames.
    if (f.owner != -1) {
      EXPECT_EQ(f.owner, 0);
    }
  }
  EXPECT_EQ(env.host.fastiovd().total_pending_pages(), 0u);
  EXPECT_EQ(env.host.devset().TotalOpenCount(), 0);
}

INSTANTIATE_TEST_SUITE_P(Matrix, InvariantsTest, ::testing::ValuesIn(Matrix()),
                         [](const auto& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(InvariantsTest, FirstTouchFaultCountMatchesEptEntries) {
  MatrixEnv env(StackConfig::FastIov());
  env.Run(4, false);
  for (const auto& inst : env.runtime.instances()) {
    EXPECT_EQ(inst->vm->ept_faults(), inst->vm->ept().num_entries());
  }
}

}  // namespace
}  // namespace fastiov
