#include "src/stats/metrics.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/stats/json_reader.h"
#include "src/stats/json_writer.h"

namespace fastiov {
namespace {

TEST(MetricsRegistryTest, CountersIncrementAndSet) {
  MetricsRegistry m;
  EXPECT_EQ(m.Counter("vfio.devset.opens"), 0u);
  m.IncCounter("vfio.devset.opens");
  m.IncCounter("vfio.devset.opens", 4);
  EXPECT_EQ(m.Counter("vfio.devset.opens"), 5u);
  m.SetCounter("vfio.devset.opens", 2);
  EXPECT_EQ(m.Counter("vfio.devset.opens"), 2u);
}

TEST(MetricsRegistryTest, GaugesHoldLastValue) {
  MetricsRegistry m;
  EXPECT_DOUBLE_EQ(m.Gauge("mem.free_pages"), 0.0);
  m.SetGauge("mem.free_pages", 1024.0);
  m.SetGauge("mem.free_pages", 512.0);
  EXPECT_DOUBLE_EQ(m.Gauge("mem.free_pages"), 512.0);
}

TEST(MetricsRegistryTest, SummariesObserveAndMerge) {
  MetricsRegistry m;
  EXPECT_EQ(m.FindSummary("startup.seconds"), nullptr);
  m.Observe("startup.seconds", 1.0);
  m.Observe("startup.seconds", 3.0);
  Summary extra;
  extra.Add(5.0);
  m.MergeSummary("startup.seconds", extra);
  const Summary* s = m.FindSummary("startup.seconds");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->Count(), 3u);
  EXPECT_DOUBLE_EQ(s->Mean(), 3.0);
  EXPECT_DOUBLE_EQ(s->Percentile(100), 5.0);
}

TEST(MetricsRegistryTest, HasAndNumMetricsSpanAllKinds) {
  MetricsRegistry m;
  EXPECT_FALSE(m.Has("a.b.c"));
  m.IncCounter("a.b.c");
  m.SetGauge("d.e", 1.0);
  m.Observe("f.g", 2.0);
  EXPECT_TRUE(m.Has("a.b.c"));
  EXPECT_TRUE(m.Has("d.e"));
  EXPECT_TRUE(m.Has("f.g"));
  EXPECT_EQ(m.NumMetrics(), 3u);
}

TEST(MetricsRegistryTest, WriteJsonRoundTrips) {
  MetricsRegistry m;
  m.SetCounter("mem.pages_zeroed", 42);
  m.SetGauge("nic.vfs_in_use", 7.0);
  m.Observe("lock.vfio.devset.global.wait_seconds", 0.5);
  m.Observe("lock.vfio.devset.global.wait_seconds", 1.5);

  std::ostringstream os;
  JsonWriter json(os);
  m.WriteJson(json);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonReader::Parse(os.str(), &doc, &error)) << error;
  const JsonValue* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->GetDouble("mem.pages_zeroed"), 42.0);
  const JsonValue* gauges = doc.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->GetDouble("nic.vfs_in_use"), 7.0);
  const JsonValue* summaries = doc.Find("summaries");
  ASSERT_NE(summaries, nullptr);
  const JsonValue* wait = summaries->Find("lock.vfio.devset.global.wait_seconds");
  ASSERT_NE(wait, nullptr);
  EXPECT_DOUBLE_EQ(wait->GetDouble("count"), 2.0);
  EXPECT_DOUBLE_EQ(wait->GetDouble("mean"), 1.0);
  EXPECT_DOUBLE_EQ(wait->GetDouble("max"), 1.5);
}

TEST(MetricsRegistryTest, JsonKeysAreSortedDeterministically) {
  MetricsRegistry m;
  m.IncCounter("z.last");
  m.IncCounter("a.first");
  std::ostringstream os;
  JsonWriter json(os);
  m.WriteJson(json);
  const std::string out = os.str();
  EXPECT_LT(out.find("a.first"), out.find("z.last"));
}

}  // namespace
}  // namespace fastiov
