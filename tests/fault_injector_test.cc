// Deterministic fault injection: plan parsing, trigger semantics, the
// replay guarantee (same seed + plan => identical run), and the disabled
// guarantee (no injector => bit-identical to a build without the subsystem).
#include <gtest/gtest.h>

#include "src/container/runtime.h"
#include "src/experiments/result_json.h"
#include "src/experiments/startup_experiment.h"
#include "src/fault/fault.h"
#include "src/stats/fault_stats.h"

namespace fastiov {
namespace {

TEST(FaultPlanTest, ParsesFullGrammar) {
  std::string error;
  const auto plan = FaultPlan::Parse(
      "vfio-dev:p=0.25,penalty_ms=5;dma-pin:nth=3,kind=permanent,max=2", &error);
  ASSERT_TRUE(plan.has_value()) << error;
  const SiteFaultSpec& dev = plan->sites.at(FaultSite::kVfioDeviceOpen);
  EXPECT_DOUBLE_EQ(dev.probability, 0.25);
  EXPECT_EQ(dev.penalty, Milliseconds(5));
  EXPECT_TRUE(dev.transient);
  EXPECT_EQ(dev.nth_call, 0u);
  const SiteFaultSpec& pin = plan->sites.at(FaultSite::kDmaPin);
  EXPECT_EQ(pin.nth_call, 3u);
  EXPECT_FALSE(pin.transient);
  EXPECT_EQ(pin.max_faults, 2u);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(FaultPlan::Parse("no-such-site:p=0.5", &error).has_value());
  EXPECT_NE(error.find("unknown fault site"), std::string::npos);
  EXPECT_FALSE(FaultPlan::Parse("vfio-dev", &error).has_value());
  EXPECT_FALSE(FaultPlan::Parse("vfio-dev:p", &error).has_value());
  EXPECT_FALSE(FaultPlan::Parse("vfio-dev:p=1.5", &error).has_value());
  EXPECT_FALSE(FaultPlan::Parse("vfio-dev:nth=0", &error).has_value());
  EXPECT_FALSE(FaultPlan::Parse("vfio-dev:kind=sometimes", &error).has_value());
  EXPECT_FALSE(FaultPlan::Parse("vfio-dev:frobnicate=1", &error).has_value());
}

TEST(FaultPlanTest, ToStringRoundTrips) {
  std::string error;
  const auto plan = FaultPlan::Parse(
      "cni:p=0.1,kind=permanent;link-up:nth=2,penalty_ms=4,max=7", &error);
  ASSERT_TRUE(plan.has_value()) << error;
  const auto reparsed = FaultPlan::Parse(plan->ToString(), &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  ASSERT_EQ(reparsed->sites.size(), plan->sites.size());
  for (const auto& [site, spec] : plan->sites) {
    const SiteFaultSpec& other = reparsed->sites.at(site);
    EXPECT_DOUBLE_EQ(other.probability, spec.probability);
    EXPECT_EQ(other.nth_call, spec.nth_call);
    EXPECT_EQ(other.transient, spec.transient);
    EXPECT_EQ(other.penalty, spec.penalty);
    EXPECT_EQ(other.max_faults, spec.max_faults);
  }
}

TEST(FaultSiteTest, NamesRoundTrip) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    const auto site = static_cast<FaultSite>(i);
    const std::string name = FaultSiteName(site);
    EXPECT_NE(name, "?");
    const auto back = FaultSiteFromName(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, site);
  }
  EXPECT_FALSE(FaultSiteFromName("bogus").has_value());
}

// Drives `calls` MaybeInject invocations at one site and returns which of
// them threw.
std::vector<bool> DriveSite(FaultInjector& injector, FaultSite site, int calls) {
  Simulation sim(1);
  std::vector<bool> fired(calls, false);
  auto probe = [](Simulation* s, FaultInjector* inj, FaultSite target,
                  std::vector<bool>* out) -> Task {
    for (size_t i = 0; i < out->size(); ++i) {
      try {
        co_await inj->MaybeInject(*s, target);
      } catch (const FaultError& e) {
        EXPECT_EQ(e.site(), target);
        (*out)[i] = true;
      }
    }
  };
  sim.Spawn(probe(&sim, &injector, site, &fired));
  sim.Run();
  return fired;
}

TEST(FaultInjectorTest, NthCallFiresExactlyOnce) {
  FaultPlan plan;
  plan.sites[FaultSite::kCni] = SiteFaultSpec{.nth_call = 3, .transient = false};
  FaultInjector injector(plan);
  const std::vector<bool> fired = DriveSite(injector, FaultSite::kCni, 6);
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(injector.counters(FaultSite::kCni).calls, 6u);
  EXPECT_EQ(injector.counters(FaultSite::kCni).injected, 1u);
  EXPECT_EQ(injector.counters(FaultSite::kCni).permanent_injected, 1u);
}

TEST(FaultInjectorTest, ProbabilityDrawsAreReplayable) {
  FaultPlan plan;
  plan.seed = 77;
  plan.sites[FaultSite::kDmaMap] = SiteFaultSpec{.probability = 0.4};
  FaultInjector a(plan);
  FaultInjector b(plan);
  const std::vector<bool> fired_a = DriveSite(a, FaultSite::kDmaMap, 200);
  const std::vector<bool> fired_b = DriveSite(b, FaultSite::kDmaMap, 200);
  EXPECT_EQ(fired_a, fired_b);
  EXPECT_GT(a.TotalInjected(), 0u);
  // A different injector seed produces a different schedule.
  plan.seed = 78;
  FaultInjector c(plan);
  EXPECT_NE(DriveSite(c, FaultSite::kDmaMap, 200), fired_a);
}

TEST(FaultInjectorTest, MaxFaultsCapsInjection) {
  FaultPlan plan;
  plan.sites[FaultSite::kVfLinkUp] = SiteFaultSpec{.probability = 1.0, .max_faults = 2};
  FaultInjector injector(plan);
  const std::vector<bool> fired = DriveSite(injector, FaultSite::kVfLinkUp, 5);
  EXPECT_EQ(fired, (std::vector<bool>{true, true, false, false, false}));
}

TEST(FaultInjectorTest, PenaltyChargesSimulatedTime) {
  FaultPlan plan;
  plan.sites[FaultSite::kGuestBoot] = SiteFaultSpec{.nth_call = 1, .penalty = Milliseconds(7)};
  FaultInjector injector(plan);
  Simulation sim(1);
  auto probe = [](Simulation* s, FaultInjector* inj) -> Task {
    try {
      co_await inj->MaybeInject(*s, FaultSite::kGuestBoot);
    } catch (const FaultError&) {
    }
    EXPECT_EQ(s->Now(), Milliseconds(7));
  };
  sim.Spawn(probe(&sim, &injector));
  sim.Run();
}

// With no fault plan the instrumented pipeline must be bit-identical to one
// without the subsystem: same event stream, same RNG draws, same digests.
// An armed-but-silent plan (probability 0) must be identical too — the
// injector draws only from its own stream.
TEST(FaultInjectorTest, DisabledRunsAreBitIdentical) {
  ExperimentOptions plain;
  plain.concurrency = 12;
  const ExperimentResult base = RunStartupExperiment(StackConfig::FastIov(), plain);

  ExperimentOptions armed = plain;
  armed.fault_plan = FaultPlan{};
  armed.fault_plan->sites[FaultSite::kVfioDeviceOpen] = SiteFaultSpec{.probability = 0.0};
  const ExperimentResult silent = RunStartupExperiment(StackConfig::FastIov(), armed);

  // Simulated-time metrics are doubles computed from the event stream;
  // bitwise equality means the streams were identical.
  EXPECT_EQ(base.startup.Mean(), silent.startup.Mean());
  EXPECT_EQ(base.startup.Percentile(99), silent.startup.Percentile(99));
  EXPECT_EQ(base.startup.Min(), silent.startup.Min());
  EXPECT_EQ(base.startup.Max(), silent.startup.Max());
  EXPECT_EQ(base.vf_related.Mean(), silent.vf_related.Mean());
  EXPECT_EQ(base.pages_zeroed, silent.pages_zeroed);
  EXPECT_EQ(base.residue_reads, silent.residue_reads);
  EXPECT_EQ(base.corruptions, silent.corruptions);
  ASSERT_TRUE(silent.fault_stats.has_value());
  EXPECT_EQ(silent.fault_stats->total_injected, 0u);
  EXPECT_EQ(silent.aborted_containers, 0u);
  EXPECT_FALSE(base.fault_stats.has_value());
}

TEST(FaultInjectorTest, SameSeedAndPlanReplaysByteIdentically) {
  std::string error;
  auto plan = FaultPlan::Parse(
      "vfio-dev:p=0.3,penalty_ms=5;dma-pin:p=0.15;link-up:p=0.25;cni:nth=5,kind=permanent",
      &error);
  ASSERT_TRUE(plan.has_value()) << error;
  plan->seed = 1234;
  ExperimentOptions options;
  options.concurrency = 16;
  options.fault_plan = plan;
  const ExperimentResult a = RunStartupExperiment(StackConfig::FastIov(), options);
  const ExperimentResult b = RunStartupExperiment(StackConfig::FastIov(), options);
  EXPECT_GT(a.fault_stats->total_injected, 0u);
  EXPECT_EQ(ExperimentResultJson(a), ExperimentResultJson(b));
}

TEST(FaultInjectorTest, TransientFaultIsRetriedAndRecovered) {
  FaultPlan plan;
  plan.sites[FaultSite::kVfioDeviceOpen] = SiteFaultSpec{.nth_call = 1, .transient = true};
  ExperimentOptions options;
  options.concurrency = 3;
  options.fault_plan = plan;
  const ExperimentResult r = RunStartupExperiment(StackConfig::FastIov(), options);
  ASSERT_TRUE(r.fault_stats.has_value());
  const FaultStatsReport& stats = *r.fault_stats;
  EXPECT_EQ(stats.total_injected, 1u);
  EXPECT_EQ(stats.total_retried, 1u);
  EXPECT_EQ(stats.total_recovered, 1u);
  EXPECT_EQ(stats.total_aborted, 0u);
  EXPECT_EQ(r.aborted_containers, 0u);
  EXPECT_EQ(r.startup.Count(), 3u);  // everyone still came up
  EXPECT_EQ(r.corruptions, 0u);
}

TEST(FaultInjectorTest, PermanentFaultAbortsWithoutLeaks) {
  Simulation sim(9);
  FaultPlan plan;
  plan.sites[FaultSite::kDmaPin] = SiteFaultSpec{.nth_call = 2, .transient = false};
  FaultInjector injector(plan);
  sim.set_fault_injector(&injector);
  Host host(sim, HostSpec{}, CostModel{}, StackConfig::FastIov());
  ContainerRuntime runtime(host);
  auto root = [](Simulation* s, Host* h, ContainerRuntime* rt) -> Task {
    co_await h->PrepareSharedImage();
    h->PreBindVfsToVfio();
    h->fastiovd().StartBackgroundZeroer();
    std::vector<Process> ps;
    for (int i = 0; i < 4; ++i) {
      ps.push_back(s->Spawn(rt->StartContainer(nullptr)));
    }
    co_await WaitAll(std::move(ps));
    h->fastiovd().StopBackgroundZeroer();
  };
  sim.Spawn(root(&sim, &host, &runtime));
  sim.Run();

  int aborted = 0;
  int ready = 0;
  for (const auto& inst : runtime.instances()) {
    if (inst->aborted) {
      ++aborted;
      EXPECT_TRUE(inst->terminated);
      EXPECT_FALSE(inst->ready);
      EXPECT_EQ(inst->vf, nullptr);
      EXPECT_EQ(inst->vfio_container, nullptr);
      EXPECT_EQ(inst->vfio_dev, nullptr);
    } else {
      EXPECT_TRUE(inst->ready);
      ++ready;
    }
  }
  EXPECT_EQ(aborted, 1);
  EXPECT_EQ(ready, 3);
  EXPECT_EQ(injector.counters(FaultSite::kDmaPin).aborted, 1u);
  // The aborted container's VF went back to the pool.
  int assigned = 0;
  for (size_t i = 0; i < host.nic().num_vfs(); ++i) {
    if (host.nic().vf(static_cast<int>(i))->assigned_pid() >= 0) {
      ++assigned;
    }
  }
  EXPECT_EQ(assigned, 3);
  EXPECT_EQ(runtime.TotalCorruptions(), 0u);
}

}  // namespace
}  // namespace fastiov
