#include "src/stats/json_reader.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/stats/json_writer.h"

namespace fastiov {
namespace {

JsonValue MustParse(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(JsonReader::Parse(text, &v, &error)) << error;
  return v;
}

TEST(JsonReaderTest, Scalars) {
  EXPECT_DOUBLE_EQ(MustParse("3.25").AsDouble(), 3.25);
  EXPECT_DOUBLE_EQ(MustParse("-17").AsDouble(), -17.0);
  EXPECT_DOUBLE_EQ(MustParse("2.5e3").AsDouble(), 2500.0);
  EXPECT_EQ(MustParse("\"hi\"").AsString(), "hi");
  EXPECT_TRUE(MustParse("true").AsBool());
  EXPECT_FALSE(MustParse("false").AsBool());
  EXPECT_TRUE(MustParse("null").is_null());
}

TEST(JsonReaderTest, StringEscapes) {
  EXPECT_EQ(MustParse("\"a\\\"b\\\\c\\nd\"").AsString(), "a\"b\\c\nd");
  EXPECT_EQ(MustParse("\"tab\\there\"").AsString(), "tab\there");
}

TEST(JsonReaderTest, NestedObjectsAndArrays) {
  const JsonValue doc =
      MustParse("{\"a\":{\"b\":[1,2,{\"c\":true}]},\"d\":[]}");
  ASSERT_TRUE(doc.is_object());
  const JsonValue* a = doc.Find("a");
  ASSERT_NE(a, nullptr);
  const JsonValue* b = a->Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->AsArray().size(), 3u);
  EXPECT_EQ(b->AsArray()[0].AsInt(), 1);
  EXPECT_TRUE(b->AsArray()[2].Find("c")->AsBool());
  EXPECT_TRUE(doc.Find("d")->AsArray().empty());
}

TEST(JsonReaderTest, MembersPreserveInsertionOrder) {
  const JsonValue doc = MustParse("{\"z\":1,\"a\":2,\"m\":3}");
  ASSERT_EQ(doc.Members().size(), 3u);
  EXPECT_EQ(doc.Members()[0].first, "z");
  EXPECT_EQ(doc.Members()[1].first, "a");
  EXPECT_EQ(doc.Members()[2].first, "m");
}

TEST(JsonReaderTest, LookupsWithFallbacks) {
  const JsonValue doc = MustParse("{\"x\":1.5,\"s\":\"v\"}");
  EXPECT_EQ(doc.Find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(doc.GetDouble("x"), 1.5);
  EXPECT_DOUBLE_EQ(doc.GetDouble("missing", -1.0), -1.0);
  EXPECT_EQ(doc.GetString("s"), "v");
  EXPECT_EQ(doc.GetString("missing", "dflt"), "dflt");
  // Non-objects have no members.
  EXPECT_EQ(MustParse("[1]").Find("x"), nullptr);
}

TEST(JsonReaderTest, RejectsMalformedDocuments) {
  for (const char* bad : {"{", "[1,", "\"unterminated", "{\"a\"}", "tru",
                          "{\"a\":1} trailing", "", "{\"a\":01x}"}) {
    JsonValue v;
    std::string error;
    EXPECT_FALSE(JsonReader::Parse(bad, &v, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonReaderTest, RoundTripsJsonWriterOutput) {
  std::ostringstream os;
  JsonWriter json(os);
  json.BeginObject();
  json.KV("name", "vfio.devset.global");
  json.KV("count", static_cast<uint64_t>(49));
  json.KV("wait", 109.493);
  json.KV("escaped", "line\nbreak \"quoted\"");
  json.Key("rows");
  json.BeginArray().Value(1.0).Value(-2.5).EndArray();
  json.KV("flag", true);
  json.Key("nothing");
  json.Null();
  json.EndObject();

  const JsonValue doc = MustParse(os.str());
  EXPECT_EQ(doc.GetString("name"), "vfio.devset.global");
  EXPECT_EQ(doc.Find("count")->AsInt(), 49);
  EXPECT_DOUBLE_EQ(doc.GetDouble("wait"), 109.493);
  EXPECT_EQ(doc.GetString("escaped"), "line\nbreak \"quoted\"");
  ASSERT_EQ(doc.Find("rows")->AsArray().size(), 2u);
  EXPECT_DOUBLE_EQ(doc.Find("rows")->AsArray()[1].AsDouble(), -2.5);
  EXPECT_TRUE(doc.Find("flag")->AsBool());
  EXPECT_TRUE(doc.Find("nothing")->is_null());
}

}  // namespace
}  // namespace fastiov
