#include "src/mem/physical_memory.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fastiov {
namespace {

struct MemFixture {
  Simulation sim{1};
  HostSpec spec;
  CostModel cost;
  CpuPool cpu{sim, 8};
  PhysicalMemory pmem;

  explicit MemFixture(uint64_t memory_bytes = 1 * kGiB, double fragmentation = 0.0)
      : pmem(sim, [&] {
          spec.memory_bytes = memory_bytes;
          return spec;
        }(), cost, kHugePageSize, fragmentation) {
    pmem.set_cpu(&cpu);
  }

  // Runs a memory operation to completion and returns elapsed sim time.
  template <typename F>
  SimTime RunOp(F&& f) {
    const SimTime before = sim.Now();
    sim.Spawn(f());
    sim.Run();
    return sim.Now() - before;
  }
};

TEST(PhysicalMemoryTest, PageAccounting) {
  MemFixture f;
  EXPECT_EQ(f.pmem.page_size(), kHugePageSize);
  EXPECT_EQ(f.pmem.total_pages(), 512u);  // 1 GiB / 2 MiB
  EXPECT_EQ(f.pmem.free_pages(), 512u);
}

TEST(PhysicalMemoryTest, RetrieveAssignsOwnerAndResidue) {
  MemFixture f;
  std::vector<PageId> pages;
  f.RunOp([&]() -> Task { co_await f.pmem.RetrievePages(7, 10, &pages); });
  ASSERT_EQ(pages.size(), 10u);
  EXPECT_EQ(f.pmem.used_pages(), 10u);
  for (PageId id : pages) {
    EXPECT_EQ(f.pmem.frame(id).owner, 7);
    EXPECT_EQ(f.pmem.frame(id).content, PageContent::kResidue);
    EXPECT_EQ(f.pmem.frame(id).pin_count, 0);
  }
}

TEST(PhysicalMemoryTest, OutOfMemoryThrows) {
  MemFixture f;
  std::vector<PageId> pages;
  bool threw = false;
  auto op = [&]() -> Task {
    try {
      co_await f.pmem.RetrievePages(1, 100000, &pages);
    } catch (const std::runtime_error&) {
      threw = true;
    }
  };
  f.sim.Spawn(op());
  f.sim.Run();
  EXPECT_TRUE(threw);
}

TEST(PhysicalMemoryTest, FreeReturnsPagesAndKeepsResidue) {
  MemFixture f;
  std::vector<PageId> pages;
  f.RunOp([&]() -> Task {
    co_await f.pmem.RetrievePages(1, 4, &pages);
    co_await f.pmem.ZeroPages(pages);
  });
  // Owner writes data into two pages.
  f.pmem.frame(pages[0]).content = PageContent::kData;
  f.pmem.frame(pages[1]).content = PageContent::kData;
  f.pmem.FreePages(pages);
  EXPECT_EQ(f.pmem.used_pages(), 0u);
  // Written pages become residue; untouched zeroed pages stay zeroed.
  EXPECT_EQ(f.pmem.frame(pages[0]).content, PageContent::kResidue);
  EXPECT_EQ(f.pmem.frame(pages[2]).content, PageContent::kZeroed);
  EXPECT_EQ(f.pmem.frame(pages[0]).owner, -1);
}

TEST(PhysicalMemoryTest, ReusedFrameCarriesResidueToNextOwner) {
  MemFixture f;
  std::vector<PageId> first;
  f.RunOp([&]() -> Task { co_await f.pmem.RetrievePages(1, 1, &first); });
  f.pmem.frame(first[0]).content = PageContent::kData;  // tenant 1 secret
  f.pmem.FreePages(first);

  // Drain the free list until the same frame comes around again.
  std::vector<PageId> next;
  f.RunOp([&]() -> Task { co_await f.pmem.RetrievePages(2, 512, &next); });
  bool found = false;
  for (PageId id : next) {
    if (id == first[0]) {
      found = true;
      EXPECT_EQ(f.pmem.frame(id).content, PageContent::kResidue);
    }
  }
  EXPECT_TRUE(found);
}

TEST(PhysicalMemoryTest, ZeroPagesScrubsAndCounts) {
  MemFixture f;
  std::vector<PageId> pages;
  f.RunOp([&]() -> Task {
    co_await f.pmem.RetrievePages(1, 8, &pages);
    co_await f.pmem.ZeroPages(pages);
  });
  for (PageId id : pages) {
    EXPECT_EQ(f.pmem.frame(id).content, PageContent::kZeroed);
  }
  EXPECT_EQ(f.pmem.total_pages_zeroed(), 8u);
}

TEST(PhysicalMemoryTest, ZeroingTakesTimeProportionalToBytes) {
  MemFixture f;
  std::vector<PageId> small;
  std::vector<PageId> large;
  const SimTime t_small = f.RunOp([&]() -> Task {
    co_await f.pmem.RetrievePages(1, 4, &small);
    co_await f.pmem.ZeroPages(small);
  });
  const SimTime t_large = f.RunOp([&]() -> Task {
    co_await f.pmem.RetrievePages(1, 64, &large);
    co_await f.pmem.ZeroPages(large);
  });
  EXPECT_GT(t_large.ns(), t_small.ns());
  // 16x the bytes -> roughly 16x the zeroing time (retrieval is minor).
  EXPECT_NEAR(static_cast<double>(t_large.ns()) / static_cast<double>(t_small.ns()), 16.0,
              4.0);
}

TEST(PhysicalMemoryTest, PreZeroPoolConsumedFirst) {
  MemFixture f;
  f.pmem.PreZeroFreePages(0.5);
  EXPECT_EQ(f.pmem.prezeroed_available(), 256u);
  std::vector<PageId> pages;
  f.RunOp([&]() -> Task { co_await f.pmem.RetrievePages(1, 100, &pages); });
  // All 100 came from the front of the free list, which was pre-zeroed.
  for (PageId id : pages) {
    EXPECT_EQ(f.pmem.frame(id).content, PageContent::kZeroed);
  }
  EXPECT_EQ(f.pmem.prezeroed_available(), 156u);
}

TEST(PhysicalMemoryTest, PreZeroFractionOne) {
  MemFixture f;
  f.pmem.PreZeroFreePages(1.0);
  EXPECT_EQ(f.pmem.prezeroed_available(), f.pmem.total_pages());
}

TEST(PhysicalMemoryTest, PinUnpinTracksCounts) {
  MemFixture f;
  std::vector<PageId> pages;
  f.RunOp([&]() -> Task {
    co_await f.pmem.RetrievePages(1, 4, &pages);
    co_await f.pmem.PinPages(pages);
  });
  for (PageId id : pages) {
    EXPECT_EQ(f.pmem.frame(id).pin_count, 1);
  }
  f.pmem.UnpinPages(pages);
  for (PageId id : pages) {
    EXPECT_EQ(f.pmem.frame(id).pin_count, 0);
  }
}

TEST(PhysicalMemoryTest, FragmentationIncreasesBatchCount) {
  MemFixture contiguous(1 * kGiB, 0.0);
  MemFixture fragmented(1 * kGiB, 0.9);
  std::vector<PageId> a;
  std::vector<PageId> b;
  contiguous.RunOp([&]() -> Task { co_await contiguous.pmem.RetrievePages(1, 256, &a); });
  fragmented.RunOp([&]() -> Task { co_await fragmented.pmem.RetrievePages(1, 256, &b); });
  EXPECT_GT(fragmented.pmem.total_batches_retrieved(),
            2 * contiguous.pmem.total_batches_retrieved());
}

TEST(PhysicalMemoryTest, FullFragmentationDegeneratesToSinglePages) {
  MemFixture f(64 * kMiB, 1.0);
  std::vector<PageId> pages;
  f.RunOp([&]() -> Task { co_await f.pmem.RetrievePages(1, 16, &pages); });
  EXPECT_EQ(f.pmem.total_batches_retrieved(), 16u);
}

TEST(PhysicalMemoryTest, RetrievedRunsNeverSpanNumaNodes) {
  // Default HostSpec has 2 NUMA nodes: 1 GiB -> 256 pages per node. Owner 1
  // homes on node 1, drains it, and spills onto node 0; even where the two
  // node slabs are adjacent in the frame space, no extent crosses over.
  MemFixture f;
  ASSERT_EQ(f.pmem.numa_nodes(), 2);
  std::vector<PageRun> runs;
  f.RunOp([&]() -> Task { co_await f.pmem.RetrievePages(1, 400, &runs); });
  EXPECT_EQ(PageCountOfRuns(runs), 400u);
  for (const PageRun& run : runs) {
    EXPECT_EQ(f.pmem.NodeOfFrame(run.first), f.pmem.NodeOfFrame(run.last()))
        << "run [" << run.first << ", +" << run.count << ") spans nodes";
  }
}

TEST(PhysicalMemoryTest, FullFragmentationYieldsSinglePageRuns) {
  // fragmentation=1.0 means every free extent is one page long: the run API
  // must degenerate to per-page allocations, not hide the fragmentation by
  // coalescing batches that happen to be adjacent.
  MemFixture f(64 * kMiB, 1.0);
  std::vector<PageRun> runs;
  f.RunOp([&]() -> Task { co_await f.pmem.RetrievePages(1, 16, &runs); });
  EXPECT_EQ(runs.size(), 16u);
  for (const PageRun& run : runs) {
    EXPECT_EQ(run.count, 1u);
  }
}

TEST(PhysicalMemoryTest, FreeThenRetrieveReusesLifoAtRunGranularity) {
  MemFixture f;
  std::vector<PageRun> a;
  std::vector<PageRun> b;
  f.RunOp([&]() -> Task {
    co_await f.pmem.RetrievePages(1, 16, &a);
    co_await f.pmem.RetrievePages(2, 16, &b);
  });
  f.pmem.FreePages(std::span<const PageRun>(a));
  // The freed extents sit at the front of the free store: the next
  // allocation gets exactly those frames back, run for run.
  std::vector<PageRun> again;
  f.RunOp([&]() -> Task { co_await f.pmem.RetrievePages(3, 16, &again); });
  EXPECT_EQ(FlattenRuns(again), FlattenRuns(a));
  for (PageId id : FlattenRuns(again)) {
    EXPECT_EQ(f.pmem.frame(id).owner, 3);
  }
}

TEST(PhysicalMemoryTest, RefillCacheBatchesSinglePageRetrievals) {
  MemFixture f;
  PageId first = kInvalidPage;
  f.RunOp([&]() -> Task { co_await f.pmem.RetrieveSinglePage(5, &first); });
  ASSERT_NE(first, kInvalidPage);
  // One batched retrieval filled the cache; the next 7 pulls are free.
  EXPECT_EQ(f.pmem.refill_cached_pages(5), PhysicalMemory::kRefillCachePages - 1);
  const uint64_t batches_after_first = f.pmem.total_batches_retrieved();
  std::vector<PageId> rest;
  f.RunOp([&]() -> Task {
    for (int i = 0; i < 7; ++i) {
      PageId id = kInvalidPage;
      co_await f.pmem.RetrieveSinglePage(5, &id);
      rest.push_back(id);
    }
  });
  EXPECT_EQ(f.pmem.total_batches_retrieved(), batches_after_first);
  EXPECT_EQ(f.pmem.refill_cached_pages(5), 0u);
  // The 9th pull refills again.
  f.RunOp([&]() -> Task { co_await f.pmem.RetrieveSinglePage(5, &first); });
  EXPECT_GT(f.pmem.total_batches_retrieved(), batches_after_first);
}

TEST(PhysicalMemoryTest, DrainRefillCacheReturnsPages) {
  MemFixture f;
  PageId id = kInvalidPage;
  f.RunOp([&]() -> Task { co_await f.pmem.RetrieveSinglePage(5, &id); });
  EXPECT_EQ(f.pmem.used_pages(), PhysicalMemory::kRefillCachePages);
  // The page handed out stays allocated; the cached remainder goes back.
  const PageId handed_out[] = {id};
  f.pmem.FreePages(std::span<const PageId>(handed_out));
  f.pmem.DrainRefillCache(5);
  EXPECT_EQ(f.pmem.used_pages(), 0u);
  EXPECT_EQ(f.pmem.refill_cached_pages(5), 0u);
}

TEST(PhysicalMemoryTest, SmallPageGeometry) {
  Simulation sim;
  HostSpec spec;
  spec.memory_bytes = 64 * kMiB;
  CostModel cost;
  CpuPool cpu(sim, 4);
  PhysicalMemory pmem(sim, spec, cost, kSmallPageSize);
  pmem.set_cpu(&cpu);
  EXPECT_EQ(pmem.total_pages(), 16384u);
}

}  // namespace
}  // namespace fastiov
