// Cluster conformance & property suite (src/cluster/): the determinism
// contract — byte-identical ClusterDigest across driver thread counts and
// event-queue backends for every scheduler policy — plus trace replay
// identity, placement properties, the single-host-bypass == standalone pin,
// and the fleet-level safety invariants (IPAM conservation, zero leaks).
#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cluster/scheduler.h"
#include "src/cluster/trace.h"
#include "src/experiments/result_json.h"
#include "src/experiments/startup_experiment.h"

namespace fastiov {
namespace {

// Small but non-trivial: enough launches that every gate queues, small
// enough that the {threads} x {backend} x {policy} matrix stays fast. The
// 1 ms RTT keeps the conservative window count low without changing any
// semantics (lookahead == RTT either way).
ClusterOptions SmallCluster(ClusterSchedPolicy policy) {
  ClusterOptions options;
  options.hosts = 3;
  options.policy = policy;
  options.trace.launches = 36;
  options.trace.arrival_rate_per_s = 300.0;
  options.trace.zones = 6;
  options.seed = 7;
  options.rtt = Milliseconds(1);
  options.dwell = Milliseconds(200);
  return options;
}

TEST(ClusterTrace, ReplayIsIdentity) {
  ClusterTraceSpec spec;
  spec.launches = 500;
  spec.arrival_rate_per_s = 800.0;
  const std::vector<ClusterLaunch> a = GenerateLaunchTrace(spec, 7);
  const std::vector<ClusterLaunch> b = GenerateLaunchTrace(spec, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].arrival.ns(), b[i].arrival.ns());
    EXPECT_EQ(a[i].zone, b[i].zone);
    EXPECT_EQ(a[i].image_id, b[i].image_id);
    EXPECT_EQ(a[i].image_mb, b[i].image_mb);
  }
  // A different seed is a different trace.
  const std::vector<ClusterLaunch> c = GenerateLaunchTrace(spec, 8);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].arrival.ns() != c[i].arrival.ns() || a[i].zone != c[i].zone;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ClusterTrace, ArrivalsAreOrderedAndIdsSequential) {
  ClusterTraceSpec spec;
  spec.launches = 300;
  const std::vector<ClusterLaunch> trace = GenerateLaunchTrace(spec, 11);
  ASSERT_EQ(trace.size(), 300u);
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].id, static_cast<uint32_t>(i));
    EXPECT_LT(trace[i].zone, spec.zones);
    if (i > 0) {
      EXPECT_GE(trace[i].arrival.ns(), trace[i - 1].arrival.ns());
    }
  }
}

TEST(ClusterScheduler, BinPackFillsInHostOrder) {
  const std::vector<ClusterLaunch> trace = GenerateLaunchTrace({.launches = 40}, 3);
  const ClusterPlacement p =
      PlaceLaunches(trace, /*hosts=*/4, /*slots_per_host=*/10, ClusterSchedPolicy::kBinPack);
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(p.host_of[i], static_cast<int>(i / 10)) << "launch " << i;
  }
}

TEST(ClusterScheduler, LeastLoadedIsBalanced) {
  const std::vector<ClusterLaunch> trace = GenerateLaunchTrace({.launches = 40}, 3);
  const ClusterPlacement p =
      PlaceLaunches(trace, /*hosts=*/4, /*slots_per_host=*/0, ClusterSchedPolicy::kLeastLoaded);
  EXPECT_DOUBLE_EQ(p.Imbalance(), 1.0);
  for (uint64_t n : p.per_host) {
    EXPECT_EQ(n, 10u);
  }
}

TEST(ClusterScheduler, LocalityPrefersZoneHost) {
  // hosts == zones and ample slots: every launch lands on its zone host.
  ClusterTraceSpec spec;
  spec.launches = 60;
  spec.zones = 4;
  const std::vector<ClusterLaunch> trace = GenerateLaunchTrace(spec, 5);
  const ClusterPlacement p =
      PlaceLaunches(trace, /*hosts=*/4, /*slots_per_host=*/60, ClusterSchedPolicy::kLocality);
  EXPECT_DOUBLE_EQ(p.LocalityHitRate(), 1.0);
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(p.host_of[i], static_cast<int>(trace[i].zone % 4));
  }
}

TEST(ClusterScheduler, CapFallbackPlacesEveryLaunch) {
  const std::vector<ClusterLaunch> trace = GenerateLaunchTrace({.launches = 10}, 9);
  for (const ClusterSchedPolicy policy :
       {ClusterSchedPolicy::kBinPack, ClusterSchedPolicy::kLeastLoaded,
        ClusterSchedPolicy::kLocality}) {
    const ClusterPlacement p = PlaceLaunches(trace, /*hosts=*/2, /*slots_per_host=*/1, policy);
    uint64_t total = 0;
    for (uint64_t n : p.per_host) {
      total += n;
    }
    EXPECT_EQ(total, 10u) << ClusterSchedPolicyName(policy);
  }
}

// The headline determinism contract: one digest per policy across the whole
// {1,2,4 driver threads} x {heap, calendar} matrix. Thread count 2 splits
// the 4 cells unevenly across workers, exercising a due-list shape that
// neither 1 nor 4 threads hits.
TEST(ClusterSchedEquiv, DigestInvariantAcrossThreadsAndBackends) {
  for (const ClusterSchedPolicy policy :
       {ClusterSchedPolicy::kBinPack, ClusterSchedPolicy::kLeastLoaded,
        ClusterSchedPolicy::kLocality}) {
    SCOPED_TRACE(ClusterSchedPolicyName(policy));
    std::string reference;
    for (const int threads : {1, 2, 4}) {
      for (const SchedulerPolicy backend :
           {SchedulerPolicy::kHeap, SchedulerPolicy::kCalendar}) {
        ClusterOptions options = SmallCluster(policy);
        options.threads = threads;
        options.scheduler = backend;
        const std::string digest = ClusterDigest(RunClusterExperiment(options));
        if (reference.empty()) {
          reference = digest;
          EXPECT_FALSE(reference.empty());
        } else {
          EXPECT_EQ(digest, reference)
              << "threads=" << threads << " backend=" << static_cast<int>(backend);
        }
      }
    }
  }
}

TEST(ClusterSchedEquiv, SeedReplayIsIdentityAndSeedsDiffer) {
  ClusterOptions options = SmallCluster(ClusterSchedPolicy::kLeastLoaded);
  const std::string first = ClusterDigest(RunClusterExperiment(options));
  const std::string second = ClusterDigest(RunClusterExperiment(options));
  EXPECT_EQ(first, second);
  options.seed = 8;
  EXPECT_NE(ClusterDigest(RunClusterExperiment(options)), first);
}

// Fault injection disables the cells' earliest-send promises (an injected
// fault can reply with zero service time), dropping the planner back to the
// default bound. That fallback path must stay thread-invariant too.
TEST(ClusterSchedEquiv, FaultInjectionDigestInvariantAcrossThreads) {
  ClusterOptions options = SmallCluster(ClusterSchedPolicy::kLeastLoaded);
  FaultPlan cp_plan;
  cp_plan.seed = 99;
  SiteFaultSpec cp_spec;
  cp_spec.probability = 0.2;
  cp_spec.transient = true;
  cp_spec.penalty = Milliseconds(1);
  cp_plan.sites[FaultSite::kIpamAlloc] = cp_spec;
  options.control_plane_fault_plan = cp_plan;
  FaultPlan host_plan;
  host_plan.seed = 17;
  SiteFaultSpec host_spec;
  host_spec.probability = 0.1;
  host_spec.transient = false;
  host_spec.penalty = Milliseconds(2);
  host_plan.sites[FaultSite::kVfioDeviceOpen] = host_spec;
  options.host_fault_plan = host_plan;
  std::string reference;
  for (const int threads : {1, 4}) {
    options.threads = threads;
    const std::string digest = ClusterDigest(RunClusterExperiment(options));
    if (reference.empty()) {
      reference = digest;
      EXPECT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(digest, reference) << "threads=" << threads;
    }
  }
}

// Driver bookkeeping: profiling is observability-only (same digest), and the
// per-window accounting is self-consistent — every planned window classifies
// every cell as either run or elided, and this coupled workload elides some.
TEST(ClusterSchedEquiv, DriverStatsConsistentAndProfilingMovesNoBytes) {
  ClusterOptions options = SmallCluster(ClusterSchedPolicy::kLeastLoaded);
  options.threads = 4;
  const ClusterResult plain = RunClusterExperiment(options);
  options.profile_driver = true;
  const ClusterResult profiled = RunClusterExperiment(options);
  EXPECT_EQ(ClusterDigest(plain), ClusterDigest(profiled));
  const uint64_t cells = static_cast<uint64_t>(options.hosts) + 1;  // + control plane
  for (const ClusterResult* r : {&plain, &profiled}) {
    EXPECT_GT(r->exec.windows, 0u);
    EXPECT_EQ(r->exec.cell_rounds + r->exec.cell_rounds_elided,
              r->exec.windows * cells);
    EXPECT_GT(r->exec.cell_rounds_elided, 0u);
    EXPECT_GT(r->exec.mean_window_span_us, 0.0);
  }
  // The profiled run actually collected the per-phase breakdown.
  EXPECT_GT(profiled.exec.profile_execute_seconds, 0.0);
  EXPECT_EQ(plain.exec.profile_execute_seconds, 0.0);
}

// A one-host cluster in bypass mode IS the standalone experiment: the host
// cell runs the base closed-burst orchestration, so its serialized result
// must match RunStartupExperiment byte for byte.
TEST(ClusterConformance, SingleHostBypassMatchesStandalone) {
  ClusterOptions options;
  options.hosts = 1;
  options.trace.launches = 12;
  options.seed = 21;
  options.bypass_control_plane = true;
  const ClusterResult cluster = RunClusterExperiment(options);
  ASSERT_EQ(cluster.host_results.size(), 1u);

  const ExperimentOptions solo = ClusterHostBaseOptions(options, /*host_index=*/0,
                                                        /*assigned=*/12);
  const ExperimentResult standalone = RunStartupExperiment(options.stack, solo);
  EXPECT_EQ(ExperimentResultJson(cluster.host_results[0].result),
            ExperimentResultJson(standalone));
}

// Fleet safety: every launch is accounted for exactly once, every IP goes
// back to the pool, and no host leaks pages, VFs, VFIO opens, fastiovd
// registrations, or IOMMU domains.
TEST(ClusterConformance, AccountingAndLeakInvariants) {
  ClusterOptions options = SmallCluster(ClusterSchedPolicy::kLocality);
  options.hosts = 2;
  const ClusterResult r = RunClusterExperiment(options);
  ASSERT_EQ(r.host_results.size(), 2u);
  uint64_t assigned_total = 0;
  for (const ClusterHostOutcome& host : r.host_results) {
    const ClusterHostExtras& e = host.extras;
    EXPECT_EQ(e.completed + e.cp_rejected + e.aborted, e.assigned);
    EXPECT_EQ(e.final_live_instances, 0u);
    EXPECT_EQ(e.end_pinned_pages, 0u);
    // Only the host's shared image copy stays resident.
    EXPECT_EQ(e.end_used_pages, e.end_shared_image_pages);
    EXPECT_EQ(e.end_vfio_open, 0u);
    EXPECT_EQ(e.end_fastiovd_pending, 0u);
    EXPECT_EQ(e.end_iommu_domains, 0u);
    EXPECT_EQ(e.end_nic_vfs_in_use, 0u);
    EXPECT_EQ(host.result.corruptions, 0u);
    EXPECT_EQ(host.result.residue_reads, 0u);
    assigned_total += e.assigned;
  }
  EXPECT_EQ(assigned_total, options.trace.launches);
  EXPECT_EQ(r.completed + r.cp_rejected + r.aborted, options.trace.launches);
  ASSERT_TRUE(r.control_plane.has_value());
  // IPAM conservation: with every container stopped, the free pool is back
  // to its full size.
  EXPECT_EQ(r.control_plane->ipam_free_end, r.control_plane->ipam_pool);
}

// An exhausted IPAM pool rejects rather than deadlocks, and conservation
// still holds at the end.
TEST(ClusterConformance, IpamExhaustionRejectsCleanly) {
  ClusterOptions options;
  options.hosts = 2;
  options.trace.launches = 12;
  options.trace.arrival_rate_per_s = 2000.0;
  options.trace.zones = 2;
  options.trace.image_mb = {64};
  options.seed = 13;
  options.rtt = Milliseconds(1);
  // Longer than any start pipeline + registry backlog: no IP is released
  // until every launch has passed the IPAM gate, so exactly pool-many grants.
  options.dwell = Seconds(30.0);
  options.control_plane.ipam_pool = 5;
  const ClusterResult r = RunClusterExperiment(options);
  ASSERT_TRUE(r.control_plane.has_value());
  EXPECT_EQ(r.control_plane->ipam.granted, 5u);
  EXPECT_EQ(r.cp_rejected, 7u);
  EXPECT_EQ(r.completed, 5u);
  EXPECT_EQ(r.control_plane->ipam_free_end, 5u);
}

}  // namespace
}  // namespace fastiov
