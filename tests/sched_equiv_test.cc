// The scheduler determinism contract: the calendar queue and the reference
// binary heap must be *observationally identical* — every serialized result
// byte, on every workload. These tests hold both policies to it on the four
// reference configurations the PR 3 digest tests pinned down, on randomized
// property workloads (seeded; both page sizes; fault plans on and off), and
// on raw same-timestamp FIFO ordering. They also pin the arena pools to the
// same contract: pooling on/off must not move a byte.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "src/experiments/multi_cell.h"
#include "src/experiments/result_json.h"
#include "src/experiments/startup_experiment.h"
#include "src/simcore/arena.h"
#include "src/simcore/event_queue.h"
#include "src/simcore/simulation.h"
#include "src/simcore/task.h"

namespace fastiov {
namespace {

std::string RunJson(const StackConfig& config, ExperimentOptions options,
                    SchedulerPolicy policy) {
  options.scheduler = policy;
  return ExperimentResultJson(RunStartupExperiment(config, options));
}

void ExpectPoliciesIdentical(const StackConfig& config,
                             const ExperimentOptions& options) {
  const std::string heap = RunJson(config, options, SchedulerPolicy::kHeap);
  const std::string calendar = RunJson(config, options, SchedulerPolicy::kCalendar);
  ASSERT_FALSE(heap.empty());
  EXPECT_EQ(heap, calendar)
      << "config=" << config.name << " concurrency=" << options.concurrency
      << " seed=" << options.seed;
}

ExperimentOptions ReferenceOptions(ArrivalPattern arrival = ArrivalPattern::kBurst) {
  ExperimentOptions options;
  options.concurrency = 50;
  options.arrival = arrival;
  return options;
}

// The four PR 3 reference configurations, at concurrency 50.
TEST(SchedEquivDigestTest, Vanilla) {
  ExpectPoliciesIdentical(StackConfig::Vanilla(), ReferenceOptions());
}

TEST(SchedEquivDigestTest, FastIov) {
  ExpectPoliciesIdentical(StackConfig::FastIov(), ReferenceOptions());
}

TEST(SchedEquivDigestTest, FastIovPoisson) {
  ExpectPoliciesIdentical(StackConfig::FastIov(),
                          ReferenceOptions(ArrivalPattern::kPoisson));
}

TEST(SchedEquivDigestTest, PreZero100) {
  ExpectPoliciesIdentical(StackConfig::PreZero(1.0), ReferenceOptions());
}

// Property test: randomized workloads across stacks, concurrency, seeds,
// arrival processes, page sizes, and fault plans. Any divergence prints the
// generating parameters for replay.
TEST(SchedEquivPropertyTest, RandomizedWorkloads) {
  std::mt19937_64 rng(20260806);
  const std::vector<StackConfig (*)()> stacks = {
      &StackConfig::Vanilla, &StackConfig::FastIov, &StackConfig::FastIovVdpa,
      &StackConfig::Ipvtap};
  for (int trial = 0; trial < 10; ++trial) {
    StackConfig config = stacks[rng() % stacks.size()]();
    config.hugepages = (rng() % 2) == 0;  // both page sizes
    ExperimentOptions options;
    options.concurrency = 1 + static_cast<int>(rng() % 32);
    options.seed = rng();
    switch (rng() % 3) {
      case 0: options.arrival = ArrivalPattern::kBurst; break;
      case 1: options.arrival = ArrivalPattern::kUniform; break;
      default: options.arrival = ArrivalPattern::kPoisson; break;
    }
    options.arrival_rate_per_s = 20.0 + static_cast<double>(rng() % 80);
    if ((rng() % 2) == 0) {
      FaultPlan plan;
      plan.seed = rng();
      SiteFaultSpec spec;
      spec.probability = 0.1;
      spec.transient = (rng() % 2) == 0;
      spec.penalty = Milliseconds(2);
      plan.sites[(rng() % 2) == 0 ? FaultSite::kVfioDeviceOpen
                                  : FaultSite::kDmaPin] = spec;
      options.fault_plan = plan;
    }
    SCOPED_TRACE("trial " + std::to_string(trial) + " stack=" + config.name +
                 " hugepages=" + std::to_string(config.hugepages) +
                 " concurrency=" + std::to_string(options.concurrency) +
                 " seed=" + std::to_string(options.seed) +
                 " fault=" + std::to_string(options.fault_plan.has_value()));
    ExpectPoliciesIdentical(config, options);
  }
}

// Arena pools may only influence addresses: pooled and unpooled runs must
// serialize identically under either scheduler.
TEST(SchedEquivDigestTest, ArenaPoolingDoesNotMoveBytes) {
  ASSERT_TRUE(FramePool::pooling_enabled());
  const std::string pooled =
      RunJson(StackConfig::FastIov(), ReferenceOptions(), SchedulerPolicy::kCalendar);
  FramePool::SetPoolingEnabled(false);
  const std::string unpooled =
      RunJson(StackConfig::FastIov(), ReferenceOptions(), SchedulerPolicy::kCalendar);
  FramePool::SetPoolingEnabled(true);
  EXPECT_EQ(pooled, unpooled);
}

// The full equivalence matrix over the parallel driver: a 4-cell fleet must
// produce one digest across {heap, calendar} x {1, 2, 4 threads} x {pooled,
// unpooled}. This is the thread axis of the determinism contract — worker
// count and scheduling interleaving (including the cells-per-worker split,
// which 2 threads exercises differently from 1 and 4) may only change
// wall-clock, never bytes.
TEST(SchedEquivDigestTest, MultiCellThreadSchedulerPoolingMatrix) {
  ExperimentOptions base;
  base.concurrency = 10;
  MultiCellOptions mc;
  mc.cells = 4;
  auto digest = [&](SchedulerPolicy policy, int threads, bool pooled) {
    FramePool::SetPoolingEnabled(pooled);
    ExperimentOptions options = base;
    options.scheduler = policy;
    mc.cell_threads = threads;
    const std::string d =
        MultiCellDigest(RunMultiCellExperiment(StackConfig::FastIov(), options, mc));
    FramePool::SetPoolingEnabled(true);
    return d;
  };
  const std::string reference = digest(SchedulerPolicy::kCalendar, 1, true);
  ASSERT_FALSE(reference.empty());
  for (const SchedulerPolicy policy : {SchedulerPolicy::kHeap, SchedulerPolicy::kCalendar}) {
    for (const int threads : {1, 2, 4}) {
      for (const bool pooled : {true, false}) {
        EXPECT_EQ(digest(policy, threads, pooled), reference)
            << "policy=" << SchedulerPolicyName(policy) << " threads=" << threads
            << " pooled=" << pooled;
      }
    }
  }
}

// A standalone run and a 1-cell fleet are the same computation; the parallel
// driver must not add or move a byte around it.
TEST(SchedEquivDigestTest, SingleCellFleetMatchesStandalone) {
  ExperimentOptions options;
  options.concurrency = 10;
  const std::string standalone =
      ExperimentResultJson(RunStartupExperiment(StackConfig::FastIov(), options));
  MultiCellOptions mc;
  mc.cells = 1;
  mc.cell_threads = 1;
  const MultiCellResult fleet = RunMultiCellExperiment(StackConfig::FastIov(), options, mc);
  ASSERT_EQ(fleet.cells.size(), 1u);
  EXPECT_EQ(ExperimentResultJson(fleet.cells[0]) + "\n", MultiCellDigest(fleet));
  EXPECT_EQ(ExperimentResultJson(fleet.cells[0]), standalone);
}

// Raw engine-level FIFO stability: N processes spawned at one timestamp run
// in spawn order, under both policies, including re-wakeups at the same
// timestamp through the immediate lane.
TEST(SchedEquivFifoTest, SameTimestampSpawnOrderIsStable) {
  auto run_order = [](SchedulerPolicy policy) {
    Simulation sim(7, policy);
    std::vector<int> order;
    auto proc = [](Simulation& sim, std::vector<int>& order, int id) -> Task {
      order.push_back(id);
      co_await sim.Delay(Microseconds(10));
      order.push_back(100 + id);
      co_await sim.Delay(SimTime::Zero());  // same-timestamp re-wakeup
      order.push_back(200 + id);
    };
    std::vector<Process> procs;
    for (int i = 0; i < 64; ++i) {
      procs.push_back(sim.Spawn(proc(sim, order, i)));
    }
    sim.Run();
    return order;
  };
  const std::vector<int> heap_order = run_order(SchedulerPolicy::kHeap);
  const std::vector<int> cal_order = run_order(SchedulerPolicy::kCalendar);
  ASSERT_EQ(heap_order.size(), 64u * 3);
  EXPECT_EQ(heap_order, cal_order);
  // Within each wave, processes run in spawn order.
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(heap_order[static_cast<size_t>(i)], i);
  }
}

}  // namespace
}  // namespace fastiov
