#include "src/experiments/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/experiments/repeated.h"
#include "src/experiments/result_json.h"

namespace fastiov {
namespace {

ExperimentOptions SmallOptions(int concurrency = 15) {
  ExperimentOptions o;
  o.concurrency = concurrency;
  o.seed = 7;
  o.keep_runs = true;
  return o;
}

// The tentpole guarantee: the parallel path produces byte-identical results
// to the sequential path for the same (config × seed) matrix — checked on
// the full JSON serialization of every run, timeline shares and counters
// included.
TEST(SweepTest, ParallelMatchesSequentialByteIdentical) {
  const std::vector<StackConfig> configs = {StackConfig::Vanilla(), StackConfig::FastIov(),
                                            StackConfig::NoNetwork()};
  const std::vector<uint64_t> seeds = {7, 8, 9};
  const std::vector<SweepCell> cells = CrossProduct(configs, SmallOptions(), seeds);

  const std::vector<ExperimentResult> sequential = RunSweep(cells, /*jobs=*/1);
  const std::vector<ExperimentResult> parallel = RunSweep(cells, /*jobs=*/4);

  ASSERT_EQ(sequential.size(), cells.size());
  ASSERT_EQ(parallel.size(), cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(ExperimentResultJson(sequential[i]), ExperimentResultJson(parallel[i]))
        << "cell " << i << " diverged between jobs=1 and jobs=4";
  }
}

TEST(SweepTest, RepeatedParallelMatchesSequential) {
  const ExperimentOptions options = SmallOptions(10);
  const RepeatedResult sequential =
      RunRepeated(StackConfig::FastIov(), options, /*repeats=*/4, /*jobs=*/1);
  const RepeatedResult parallel =
      RunRepeated(StackConfig::FastIov(), options, /*repeats=*/4, /*jobs=*/4);
  EXPECT_EQ(RepeatedResultJson(sequential), RepeatedResultJson(parallel));
  ASSERT_EQ(parallel.runs.size(), 4u);
  // Per-run results, not four copies of one run.
  EXPECT_NE(parallel.runs[0].startup.samples(), parallel.runs[1].startup.samples());
}

TEST(SweepTest, KeepRunsIsOptIn) {
  ExperimentOptions options = SmallOptions(10);
  options.keep_runs = false;
  const RepeatedResult dropped = RunRepeated(StackConfig::FastIov(), options, 3, 2);
  EXPECT_TRUE(dropped.runs.empty());
  EXPECT_GT(dropped.startup_mean.mean, 0.0);

  options.keep_runs = true;
  const RepeatedResult kept = RunRepeated(StackConfig::FastIov(), options, 3, 2);
  EXPECT_EQ(kept.runs.size(), 3u);
  // The aggregate does not depend on retention.
  EXPECT_DOUBLE_EQ(dropped.startup_mean.mean, kept.startup_mean.mean);
  EXPECT_DOUBLE_EQ(dropped.startup_p99.max, kept.startup_p99.max);
}

TEST(SweepTest, CrossProductIsRowMajor) {
  ExperimentOptions base;
  base.seed = 0;
  const std::vector<SweepCell> cells =
      CrossProduct({StackConfig::Vanilla(), StackConfig::FastIov()}, base, {1, 2, 3});
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0].config.name, "Vanilla");
  EXPECT_EQ(cells[0].options.seed, 1u);
  EXPECT_EQ(cells[2].options.seed, 3u);
  EXPECT_EQ(cells[3].config.name, "FastIOV");
  EXPECT_EQ(cells[3].options.seed, 1u);
}

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  const size_t n = 100;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, 4, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, Jobs1RunsInlineInOrder) {
  // jobs=1 is the promise "--jobs 1 is the exact old behaviour": same
  // thread, strict index order, no pool.
  std::vector<size_t> order;
  const std::thread::id main_thread = std::this_thread::get_id();
  bool all_on_main_thread = true;
  ParallelFor(10, 1, [&](size_t i) {
    order.push_back(i);
    all_on_main_thread = all_on_main_thread && std::this_thread::get_id() == main_thread;
  });
  EXPECT_TRUE(all_on_main_thread);
  ASSERT_EQ(order.size(), 10u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ParallelForTest, WorkerExceptionPropagates) {
  EXPECT_THROW(
      ParallelFor(16, 4,
                  [&](size_t i) {
                    if (i == 11) {
                      throw std::runtime_error("cell failure");
                    }
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, LowestIndexExceptionWinsDeterministically) {
  // Two different failures in one sweep: the caller must always see the
  // lowest-index one, regardless of which worker hit which first.
  for (int attempt = 0; attempt < 8; ++attempt) {
    try {
      ParallelFor(16, 4, [&](size_t i) {
        if (i == 3) {
          throw std::logic_error("first failure");
        }
        if (i == 12) {
          throw std::runtime_error("later failure");
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::logic_error&) {
      // expected: index 3 outranks index 12
    }
  }
}

TEST(ParallelForTest, SequentialExceptionPropagatesToo) {
  EXPECT_THROW(ParallelFor(4, 1,
                           [](size_t i) {
                             if (i == 2) {
                               throw std::runtime_error("boom");
                             }
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, HandlesEmptyAndOversubscribed) {
  int calls = 0;
  ParallelFor(0, 4, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  // More workers than items must not hang or skip work.
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(3, 16, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, StealingDrainsImbalancedWork) {
  // One enormous cell dealt to worker 0; the other workers must steal the
  // rest instead of idling behind it. Completion (not timing) is asserted —
  // a deadlocked or starved pool would hang this test.
  std::atomic<int> done{0};
  ParallelFor(32, 4, [&](size_t i) {
    if (i == 0) {
      // Simulate the slow cell with real (small) work, not sleep, so the
      // test stays fast under TSan.
      volatile double sink = 0.0;
      for (int k = 0; k < 200000; ++k) {
        sink = sink + static_cast<double>(k);
      }
    }
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 32);
}

}  // namespace
}  // namespace fastiov
