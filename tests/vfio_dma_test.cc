// DMA memory mapping (Fig. 6): retrieve -> zero -> pin -> map, under each
// zeroing policy.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/vfio/vfio.h"

namespace fastiov {
namespace {

struct DmaEnv {
  Simulation sim{1};
  HostSpec spec;
  CostModel cost;
  CpuPool cpu{sim, 56};
  PhysicalMemory pmem;
  Iommu iommu;

  DmaEnv()
      : pmem(sim, [&] {
          spec.memory_bytes = 4 * kGiB;
          return spec;
        }(), cost, kHugePageSize) {
    pmem.set_cpu(&cpu);
  }

  void Run(Task t) {
    sim.Spawn(std::move(t));
    sim.Run();
  }
};

class RecordingRegistry : public LazyZeroRegistry {
 public:
  Task RegisterPages(int pid, std::span<const PageRun> runs, uint64_t gpa_base) override {
    last_pid = pid;
    last_gpa_base = gpa_base;
    for (const PageRun& run : runs) {
      for (PageId id = run.first; id < run.first + run.count; ++id) {
        registered.push_back(id);
      }
    }
    co_return;
  }
  int last_pid = -1;
  uint64_t last_gpa_base = 0;
  std::vector<PageId> registered;
};

TEST(DmaTest, EagerMapZeroesPinsAndMaps) {
  DmaEnv env;
  auto& sim = env.sim;
  auto& cpu = env.cpu;
  auto& cost = env.cost;
  auto& pmem = env.pmem;
  auto& iommu = env.iommu;
  auto Run = [&](Task t) { env.Run(std::move(t)); };
  (void)sim; (void)cpu; (void)cost; (void)pmem; (void)iommu; (void)Run;

  VfioContainer container(sim, cpu, cost, pmem, iommu);
  DmaMapOptions options;
  options.pid = 42;
  options.zeroing = ZeroingMode::kEager;
  std::vector<PageRun> runs;
  Run([&]() -> Task { co_await container.MapDma(0, 64 * kMiB, options, &runs); }());

  const std::vector<PageId> pages = FlattenRuns(runs);
  ASSERT_EQ(pages.size(), 32u);
  for (size_t i = 0; i < pages.size(); ++i) {
    const PageFrame& frame = pmem.frame(pages[i]);
    EXPECT_EQ(frame.owner, 42);
    EXPECT_EQ(frame.content, PageContent::kZeroed);
    EXPECT_EQ(frame.pin_count, 1);
    const auto tr = container.domain()->Translate(i * kHugePageSize);
    ASSERT_TRUE(tr.has_value());
    EXPECT_EQ(tr->page, pages[i]);
  }
  EXPECT_EQ(container.mappings().size(), 1u);
}

TEST(DmaTest, EagerZeroingDominatesMapTime) {
  DmaEnv env;
  auto& sim = env.sim;
  auto& cpu = env.cpu;
  auto& cost = env.cost;
  auto& pmem = env.pmem;
  auto& iommu = env.iommu;
  auto Run = [&](Task t) { env.Run(std::move(t)); };
  (void)sim; (void)cpu; (void)cost; (void)pmem; (void)iommu; (void)Run;

  // §3.2.3 P3: with hugepages, zeroing is >93% of the DMA-mapping time.
  VfioContainer container(sim, cpu, cost, pmem, iommu);
  DmaMapOptions eager;
  eager.pid = 1;
  eager.zeroing = ZeroingMode::kEager;
  Run([&]() -> Task { co_await container.MapDma(0, 512 * kMiB, eager, nullptr); }());
  const SimTime with_zeroing = sim.Now();

  // The same mapping with a no-op lazy registry measures everything else.
  DmaEnv other;
  VfioContainer container2(other.sim, other.cpu, other.cost, other.pmem, other.iommu);
  RecordingRegistry registry;
  DmaMapOptions lazy;
  lazy.pid = 1;
  lazy.zeroing = ZeroingMode::kDecoupled;
  lazy.lazy_registry = &registry;
  other.Run([&]() -> Task { co_await container2.MapDma(0, 512 * kMiB, lazy, nullptr); }());
  const SimTime without_zeroing = other.sim.Now();

  EXPECT_LT(without_zeroing.ToSecondsF(), with_zeroing.ToSecondsF() * 0.07);
}

TEST(DmaTest, PreZeroedPoolSkipsScrubbing) {
  DmaEnv env;
  auto& sim = env.sim;
  auto& cpu = env.cpu;
  auto& cost = env.cost;
  auto& pmem = env.pmem;
  auto& iommu = env.iommu;
  auto Run = [&](Task t) { env.Run(std::move(t)); };
  (void)sim; (void)cpu; (void)cost; (void)pmem; (void)iommu; (void)Run;

  pmem.PreZeroFreePages(1.0);
  VfioContainer container(sim, cpu, cost, pmem, iommu);
  DmaMapOptions options;
  options.pid = 1;
  options.zeroing = ZeroingMode::kPreZeroed;
  const uint64_t zeroed_before = pmem.total_pages_zeroed();
  Run([&]() -> Task { co_await container.MapDma(0, 128 * kMiB, options, nullptr); }());
  // Nothing needed scrubbing at map time.
  EXPECT_EQ(pmem.total_pages_zeroed(), zeroed_before);
}

TEST(DmaTest, PreZeroedPartialPoolScrubsOnlyDirtyPages) {
  DmaEnv env;
  auto& sim = env.sim;
  auto& cpu = env.cpu;
  auto& cost = env.cost;
  auto& pmem = env.pmem;
  auto& iommu = env.iommu;
  auto Run = [&](Task t) { env.Run(std::move(t)); };
  (void)sim; (void)cpu; (void)cost; (void)pmem; (void)iommu; (void)Run;

  pmem.PreZeroFreePages(0.5);
  VfioContainer container(sim, cpu, cost, pmem, iommu);
  DmaMapOptions options;
  options.pid = 1;
  options.zeroing = ZeroingMode::kPreZeroed;
  std::vector<PageRun> runs;
  // Map more than the pre-zeroed pool (0.5 * 2048 pages = 1024).
  Run([&]() -> Task { co_await container.MapDma(0, 3 * kGiB, options, &runs); }());
  const uint64_t dirty = 1536u - 1024u;
  EXPECT_EQ(pmem.total_pages_zeroed(), dirty);
  for (PageId id : FlattenRuns(runs)) {
    EXPECT_EQ(pmem.frame(id).content, PageContent::kZeroed);
  }
}

TEST(DmaTest, DecoupledRegistersPagesWithGpaBase) {
  DmaEnv env;
  auto& sim = env.sim;
  auto& cpu = env.cpu;
  auto& cost = env.cost;
  auto& pmem = env.pmem;
  auto& iommu = env.iommu;
  auto Run = [&](Task t) { env.Run(std::move(t)); };
  (void)sim; (void)cpu; (void)cost; (void)pmem; (void)iommu; (void)Run;

  VfioContainer container(sim, cpu, cost, pmem, iommu);
  RecordingRegistry registry;
  DmaMapOptions options;
  options.pid = 9;
  options.zeroing = ZeroingMode::kDecoupled;
  options.lazy_registry = &registry;
  std::vector<PageRun> runs;
  Run([&]() -> Task {
    co_await container.MapDma(1 * kGiB, 32 * kMiB, options, &runs);
  }());
  const std::vector<PageId> pages = FlattenRuns(runs);
  EXPECT_EQ(registry.last_pid, 9);
  EXPECT_EQ(registry.last_gpa_base, 1 * kGiB);
  EXPECT_EQ(registry.registered, pages);
  // Pages were NOT zeroed by the map path.
  for (PageId id : pages) {
    EXPECT_EQ(pmem.frame(id).content, PageContent::kResidue);
    EXPECT_EQ(pmem.frame(id).pin_count, 1);
  }
}

TEST(DmaTest, DecoupledWithoutRegistryThrows) {
  DmaEnv env;
  auto& sim = env.sim;
  auto& cpu = env.cpu;
  auto& cost = env.cost;
  auto& pmem = env.pmem;
  auto& iommu = env.iommu;
  auto Run = [&](Task t) { env.Run(std::move(t)); };
  (void)sim; (void)cpu; (void)cost; (void)pmem; (void)iommu; (void)Run;

  VfioContainer container(sim, cpu, cost, pmem, iommu);
  DmaMapOptions options;
  options.zeroing = ZeroingMode::kDecoupled;
  bool threw = false;
  Run([&]() -> Task {
    try {
      co_await container.MapDma(0, 2 * kMiB, options, nullptr);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
  }());
  EXPECT_TRUE(threw);
}

TEST(DmaTest, MultipleMappingsDisjointIova) {
  DmaEnv env;
  auto& sim = env.sim;
  auto& cpu = env.cpu;
  auto& cost = env.cost;
  auto& pmem = env.pmem;
  auto& iommu = env.iommu;
  auto Run = [&](Task t) { env.Run(std::move(t)); };
  (void)sim; (void)cpu; (void)cost; (void)pmem; (void)iommu; (void)Run;

  VfioContainer container(sim, cpu, cost, pmem, iommu);
  DmaMapOptions options;
  options.pid = 1;
  Run([&]() -> Task {
    co_await container.MapDma(0, 16 * kMiB, options, nullptr);
    co_await container.MapDma(1 * kGiB, 16 * kMiB, options, nullptr);
  }());
  EXPECT_EQ(container.mappings().size(), 2u);
  EXPECT_TRUE(container.domain()->Translate(0).has_value());
  EXPECT_TRUE(container.domain()->Translate(1 * kGiB).has_value());
  EXPECT_FALSE(container.domain()->Translate(2 * kGiB).has_value());
}

TEST(DmaTest, UnmapAllUnpinsAndClearsTranslations) {
  DmaEnv env;
  auto& sim = env.sim;
  auto& cpu = env.cpu;
  auto& cost = env.cost;
  auto& pmem = env.pmem;
  auto& iommu = env.iommu;
  auto Run = [&](Task t) { env.Run(std::move(t)); };
  (void)sim; (void)cpu; (void)cost; (void)pmem; (void)iommu; (void)Run;

  VfioContainer container(sim, cpu, cost, pmem, iommu);
  DmaMapOptions options;
  options.pid = 1;
  std::vector<PageRun> runs;
  Run([&]() -> Task { co_await container.MapDma(0, 16 * kMiB, options, &runs); }());
  container.UnmapAll();
  EXPECT_TRUE(container.mappings().empty());
  EXPECT_FALSE(container.domain()->Translate(0).has_value());
  for (PageId id : FlattenRuns(runs)) {
    EXPECT_EQ(pmem.frame(id).pin_count, 0);
  }
}

TEST(DmaTest, MapDmaPrepinnedUsesExistingFrames) {
  DmaEnv env;
  auto& sim = env.sim;
  auto& cpu = env.cpu;
  auto& cost = env.cost;
  auto& pmem = env.pmem;
  auto& iommu = env.iommu;
  auto Run = [&](Task t) { env.Run(std::move(t)); };
  (void)sim; (void)cpu; (void)cost; (void)pmem; (void)iommu; (void)Run;

  VfioContainer container(sim, cpu, cost, pmem, iommu);
  std::vector<PageId> pages;
  Run([&]() -> Task {
    co_await pmem.RetrievePages(1, 4, &pages);
    co_await pmem.ZeroPages(pages);
    co_await container.MapDmaPrepinned(0, pages);
  }());
  EXPECT_EQ(container.domain()->Translate(0)->page, pages[0]);
  EXPECT_EQ(pmem.frame(pages[0]).pin_count, 1);
}

TEST(DmaTest, ContainerDestructorReleasesDomain) {
  DmaEnv env;
  auto& sim = env.sim;
  auto& cpu = env.cpu;
  auto& cost = env.cost;
  auto& pmem = env.pmem;
  auto& iommu = env.iommu;
  auto Run = [&](Task t) { env.Run(std::move(t)); };
  (void)sim; (void)cpu; (void)cost; (void)pmem; (void)iommu; (void)Run;

  const size_t before = iommu.num_domains();
  {
    VfioContainer container(sim, cpu, cost, pmem, iommu);
    EXPECT_EQ(iommu.num_domains(), before + 1);
  }
  EXPECT_EQ(iommu.num_domains(), before);
}

}  // namespace
}  // namespace fastiov
