#include "src/stats/timeline.h"

#include <gtest/gtest.h>

namespace fastiov {
namespace {

TEST(TimelineTest, RegisterAssignsSequentialIds) {
  TimelineRecorder rec;
  EXPECT_EQ(rec.RegisterContainer(SimTime::Zero()), 0);
  EXPECT_EQ(rec.RegisterContainer(Milliseconds(1)), 1);
  EXPECT_EQ(rec.NumContainers(), 2u);
}

TEST(TimelineTest, StartupTimeIsReadyMinusStart) {
  TimelineRecorder rec;
  const int id = rec.RegisterContainer(Seconds(1.0));
  rec.MarkReady(id, Seconds(3.5));
  EXPECT_EQ(rec.Container(id).StartupTime(), Seconds(2.5));
  Summary s = rec.StartupSummary();
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
}

TEST(TimelineTest, StepTimeSumsSpans) {
  TimelineRecorder rec;
  const int id = rec.RegisterContainer(SimTime::Zero());
  rec.RecordSpan(id, kStepDmaRam, Seconds(0.0), Seconds(1.0));
  rec.RecordSpan(id, kStepDmaRam, Seconds(2.0), Seconds(2.5));
  rec.RecordSpan(id, kStepVfioDev, Seconds(1.0), Seconds(2.0));
  EXPECT_EQ(rec.Container(id).StepTime(kStepDmaRam), Seconds(1.5));
  EXPECT_EQ(rec.Container(id).StepTime(kStepVfioDev), Seconds(1.0));
  EXPECT_EQ(rec.Container(id).StepTime(kStepCgroup), SimTime::Zero());
}

TEST(TimelineTest, OffCriticalPathSpansExcluded) {
  TimelineRecorder rec;
  const int id = rec.RegisterContainer(SimTime::Zero());
  rec.RecordSpan(id, kStepVfDriver, Seconds(0.0), Seconds(1.0), /*off_critical_path=*/true);
  EXPECT_EQ(rec.Container(id).StepTime(kStepVfDriver), SimTime::Zero());
  // The span is still stored for inspection.
  EXPECT_EQ(rec.Container(id).spans.size(), 1u);
}

TEST(TimelineTest, StepShareOfAverage) {
  TimelineRecorder rec;
  for (int i = 0; i < 4; ++i) {
    const int id = rec.RegisterContainer(SimTime::Zero());
    rec.RecordSpan(id, kStepVfioDev, SimTime::Zero(), Seconds(2.0));
    rec.MarkReady(id, Seconds(4.0));
  }
  EXPECT_NEAR(rec.StepShareOfAverage(kStepVfioDev), 0.5, 1e-12);
}

TEST(TimelineTest, StepShareOfP99UsesSlowestContainers) {
  TimelineRecorder rec;
  // 99 fast containers without the step, one slow container dominated by it.
  for (int i = 0; i < 99; ++i) {
    const int id = rec.RegisterContainer(SimTime::Zero());
    rec.MarkReady(id, Seconds(1.0));
  }
  const int slow = rec.RegisterContainer(SimTime::Zero());
  rec.RecordSpan(slow, kStepVfioDev, SimTime::Zero(), Seconds(8.0));
  rec.MarkReady(slow, Seconds(10.0));
  EXPECT_NEAR(rec.StepShareOfP99(kStepVfioDev), 0.8, 1e-12);
  EXPECT_NEAR(rec.StepShareOfAverage(kStepVfioDev), (8.0 / 100.0) / (1.0 * 0.99 + 0.1), 1e-9);
}

TEST(TimelineTest, TaskCompletionOnlyForContainersWithTasks) {
  TimelineRecorder rec;
  const int a = rec.RegisterContainer(SimTime::Zero());
  rec.MarkReady(a, Seconds(1.0));
  rec.MarkTaskDone(a, Seconds(5.0));
  const int b = rec.RegisterContainer(SimTime::Zero());
  rec.MarkReady(b, Seconds(2.0));
  Summary s = rec.TaskCompletionSummary();
  EXPECT_EQ(s.Count(), 1u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
}

TEST(TimelineTest, StepNamesInFirstSeenOrder) {
  TimelineRecorder rec;
  const int id = rec.RegisterContainer(SimTime::Zero());
  rec.RecordSpan(id, kStepVirtioFs, SimTime::Zero(), Seconds(1.0));
  rec.RecordSpan(id, kStepCgroup, SimTime::Zero(), Seconds(1.0));
  rec.RecordSpan(id, kStepVirtioFs, Seconds(1.0), Seconds(2.0));
  const auto names = rec.StepNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], kStepVirtioFs);
  EXPECT_EQ(names[1], kStepCgroup);
}

TEST(TimelineTest, EmptyRecorderSharesAreZero) {
  TimelineRecorder rec;
  EXPECT_DOUBLE_EQ(rec.StepShareOfAverage(kStepCgroup), 0.0);
  EXPECT_DOUBLE_EQ(rec.StepShareOfP99(kStepCgroup), 0.0);
}

// --- interning ------------------------------------------------------------

TEST(TimelineTest, SpanStepResolvesThroughRecorder) {
  TimelineRecorder rec;
  const int id = rec.RegisterContainer(SimTime::Zero());
  rec.RecordSpan(id, kStepDmaRam, SimTime::Zero(), Seconds(1.0));
  const ContainerTimeline& lane = rec.Container(id);
  ASSERT_EQ(lane.spans.size(), 1u);
  EXPECT_EQ(lane.StepNameOf(lane.spans[0]), kStepDmaRam);
  // Both lane and recorder resolve the interned id to the same string.
  EXPECT_EQ(rec.StepName(lane.spans[0].step), kStepDmaRam);
}

TEST(TimelineTest, InterningDeduplicatesAcrossLanes) {
  TimelineRecorder rec;
  const int a = rec.RegisterContainer(SimTime::Zero());
  const int b = rec.RegisterContainer(SimTime::Zero());
  rec.RecordSpan(a, kStepVfioDev, SimTime::Zero(), Seconds(1.0));
  rec.RecordSpan(b, kStepVfioDev, Seconds(1.0), Seconds(2.0));
  EXPECT_EQ(rec.Container(a).spans[0].step, rec.Container(b).spans[0].step);
}

TEST(TimelineTest, CopiedRecorderResolvesNamesIndependently) {
  TimelineRecorder rec;
  const int id = rec.RegisterContainer(SimTime::Zero());
  rec.RecordSpan(id, kStepVirtioFs, SimTime::Zero(), Seconds(1.0));
  TimelineRecorder copy = rec;   // lanes' name-table pointers must be fixed up
  rec = TimelineRecorder();      // destroy the original's table
  const ContainerTimeline& lane = copy.Container(id);
  EXPECT_EQ(lane.StepNameOf(lane.spans[0]), kStepVirtioFs);
  EXPECT_EQ(lane.StepTime(kStepVirtioFs), Seconds(1.0));
}

// --- bounded span recording -----------------------------------------------

TEST(TimelineBoundedTest, SpansElidedBeyondSampleLimit) {
  TimelineRecorder rec;
  rec.set_span_sample_limit(2);
  for (int i = 0; i < 5; ++i) {
    const int id = rec.RegisterContainer(SimTime::Zero());
    rec.RecordSpan(id, kStepDmaRam, SimTime::Zero(), Seconds(1.0));
    rec.MarkReady(id, Seconds(2.0));
  }
  EXPECT_EQ(rec.Container(0).spans.size(), 1u);
  EXPECT_EQ(rec.Container(1).spans.size(), 1u);
  EXPECT_TRUE(rec.Container(2).spans.empty());
  EXPECT_TRUE(rec.Container(4).spans.empty());
}

TEST(TimelineBoundedTest, AggregateStatsUnchangedByBounding) {
  // The per-lane step-time sums are maintained independently of the span
  // vectors, so every statistic the result JSON is built from is identical
  // whether or not a lane keeps its spans.
  TimelineRecorder full;
  TimelineRecorder bounded;
  bounded.set_span_sample_limit(1);
  for (TimelineRecorder* rec : {&full, &bounded}) {
    for (int i = 0; i < 4; ++i) {
      const int id = rec->RegisterContainer(SimTime::Zero());
      rec->RecordSpan(id, kStepVfioDev, SimTime::Zero(), Seconds(2.0));
      rec->RecordSpan(id, kStepDmaRam, Seconds(2.0), Seconds(3.0));
      rec->RecordSpan(id, kStepVfDriver, Seconds(3.0), Seconds(4.0),
                      /*off_critical_path=*/true);
      rec->MarkReady(id, Seconds(4.0));
    }
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(bounded.Container(i).StepTime(kStepVfioDev),
              full.Container(i).StepTime(kStepVfioDev));
    EXPECT_EQ(bounded.Container(i).StepTime(kStepDmaRam),
              full.Container(i).StepTime(kStepDmaRam));
    // Off-critical-path spans are excluded from sums on both paths.
    EXPECT_EQ(bounded.Container(i).StepTime(kStepVfDriver), SimTime::Zero());
  }
  EXPECT_DOUBLE_EQ(bounded.StepShareOfAverage(kStepVfioDev),
                   full.StepShareOfAverage(kStepVfioDev));
  EXPECT_DOUBLE_EQ(bounded.StepShareOfP99(kStepVfioDev),
                   full.StepShareOfP99(kStepVfioDev));
  EXPECT_EQ(bounded.StepNames(), full.StepNames());
  EXPECT_EQ(bounded.Container(3).spans.size(), 0u);
  EXPECT_EQ(full.Container(3).spans.size(), 3u);
}

TEST(TimelineBoundedTest, StepSummaryIdenticalUnderBounding) {
  TimelineRecorder full;
  TimelineRecorder bounded;
  bounded.set_span_sample_limit(0);  // keep no spans at all
  for (TimelineRecorder* rec : {&full, &bounded}) {
    for (int i = 0; i < 3; ++i) {
      const int id = rec->RegisterContainer(SimTime::Zero());
      rec->RecordSpan(id, kStepCgroup, SimTime::Zero(), Seconds(0.5 + i));
      rec->MarkReady(id, Seconds(2.0 + i));
    }
  }
  const Summary f = full.StepSummary(kStepCgroup);
  const Summary b = bounded.StepSummary(kStepCgroup);
  ASSERT_EQ(b.Count(), f.Count());
  EXPECT_DOUBLE_EQ(b.Mean(), f.Mean());
  EXPECT_DOUBLE_EQ(b.Max(), f.Max());
}

}  // namespace
}  // namespace fastiov
