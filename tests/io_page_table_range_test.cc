// MapRange/UnmapRange must be observationally equivalent to per-page
// Map/Unmap: same Translate results, same num_table_pages, same overlap
// rejection — only the number of radix descents (wall-clock) differs.
#include "src/iommu/io_page_table.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "src/mem/page.h"

namespace fastiov {
namespace {

constexpr uint64_t kSmall = 1ull << IoPageTable::kLeafShift;
constexpr uint64_t kHuge = 1ull << IoPageTable::kHugeShift;

// Applies the same mapping through both implementations and asserts they
// are indistinguishable to Translate().
void ExpectEquivalent(const IoPageTable& a, const IoPageTable& b, uint64_t iova_begin,
                      uint64_t iova_end, uint64_t step) {
  ASSERT_EQ(a.num_mappings(), b.num_mappings());
  ASSERT_EQ(a.num_table_pages(), b.num_table_pages());
  for (uint64_t iova = iova_begin; iova < iova_end; iova += step) {
    const auto ta = a.Translate(iova);
    const auto tb = b.Translate(iova);
    ASSERT_EQ(ta.has_value(), tb.has_value()) << "iova " << iova;
    if (ta.has_value()) {
      EXPECT_EQ(ta->page, tb->page) << "iova " << iova;
      EXPECT_EQ(ta->page_size, tb->page_size) << "iova " << iova;
      EXPECT_EQ(ta->offset, tb->offset) << "iova " << iova;
    }
  }
}

TEST(IoPageTableRangeTest, MapRangeMatchesPerPageSmall) {
  IoPageTable per_page;
  IoPageTable ranged;
  // 1200 small pages: crosses two leaf-node boundaries (512 entries each).
  const PageRun run{500, 1200};
  for (uint64_t i = 0; i < run.count; ++i) {
    ASSERT_TRUE(per_page.Map(i * kSmall, run.first + i, kSmall));
  }
  ASSERT_TRUE(ranged.MapRange(0, run, kSmall));
  ExpectEquivalent(per_page, ranged, 0, (run.count + 8) * kSmall, kSmall);
}

TEST(IoPageTableRangeTest, MapRangeMatchesPerPageHuge) {
  IoPageTable per_page;
  IoPageTable ranged;
  // 700 huge pages: crosses a 1 GiB (level-2 node) boundary.
  const PageRun run{64, 700};
  for (uint64_t i = 0; i < run.count; ++i) {
    ASSERT_TRUE(per_page.Map(i * kHuge, run.first + i, kHuge));
  }
  ASSERT_TRUE(ranged.MapRange(0, run, kHuge));
  ExpectEquivalent(per_page, ranged, 0, (run.count + 8) * kHuge, kHuge);
}

TEST(IoPageTableRangeTest, MapRangeUnalignedStartAndConflictPrefix) {
  IoPageTable per_page;
  IoPageTable ranged;
  // Pre-existing mapping at page index 5 causes both to fail mid-range,
  // leaving the identical already-installed prefix behind.
  ASSERT_TRUE(per_page.Map(5 * kSmall, 999, kSmall));
  ASSERT_TRUE(ranged.Map(5 * kSmall, 999, kSmall));
  bool per_page_ok = true;
  for (uint64_t i = 0; i < 8 && per_page_ok; ++i) {
    per_page_ok = per_page.Map((2 + i) * kSmall, 100 + i, kSmall);
  }
  const bool ranged_ok = ranged.MapRange(2 * kSmall, PageRun{100, 8}, kSmall);
  EXPECT_FALSE(per_page_ok);
  EXPECT_FALSE(ranged_ok);
  ExpectEquivalent(per_page, ranged, 0, 16 * kSmall, kSmall);
}

TEST(IoPageTableRangeTest, MapExtentsMatchesPerPage) {
  IoPageTable per_page;
  IoPageTable extents;
  // Discontiguous frames at consecutive IOVAs — MapDma's shape. Extent
  // lengths chosen so several share one leaf node and one crosses a
  // leaf-node boundary.
  const std::vector<PageRun> runs = {{4000, 17}, {90, 3}, {2200, 640}, {7, 1}, {512, 40}};
  uint64_t iova = 16 * kSmall;
  for (const PageRun& run : runs) {
    for (uint64_t i = 0; i < run.count; ++i) {
      ASSERT_TRUE(per_page.Map(iova, run.first + i, kSmall));
      iova += kSmall;
    }
  }
  ASSERT_TRUE(extents.MapExtents(16 * kSmall, runs, kSmall));
  ExpectEquivalent(per_page, extents, 0, iova + 8 * kSmall, kSmall);
}

TEST(IoPageTableRangeTest, MapExtentsConflictLeavesPerPagePrefix) {
  IoPageTable per_page;
  IoPageTable extents;
  // Pre-existing mapping at page 25 conflicts midway through the second run.
  ASSERT_TRUE(per_page.Map(25 * kSmall, 9999, kSmall));
  ASSERT_TRUE(extents.Map(25 * kSmall, 9999, kSmall));
  const std::vector<PageRun> runs = {{100, 20}, {300, 10}};
  uint64_t iova = 0;
  bool ok = true;
  for (const PageRun& run : runs) {
    for (uint64_t i = 0; ok && i < run.count; ++i) {
      ok = per_page.Map(iova, run.first + i, kSmall);
      if (ok) {
        iova += kSmall;
      }
    }
  }
  ASSERT_FALSE(ok);
  ASSERT_FALSE(extents.MapExtents(0, runs, kSmall));
  ExpectEquivalent(per_page, extents, 0, 40 * kSmall, kSmall);
}

TEST(IoPageTableRangeTest, UnmapRangeMatchesPerPage) {
  IoPageTable per_page;
  IoPageTable ranged;
  const PageRun run{0, 1024};
  for (uint64_t i = 0; i < run.count; ++i) {
    ASSERT_TRUE(per_page.Map(i * kSmall, run.first + i, kSmall));
  }
  ASSERT_TRUE(ranged.MapRange(0, run, kSmall));
  // Unmap an interior span covering partial leaf nodes on both ends.
  uint64_t removed_per_page = 0;
  for (uint64_t i = 100; i < 900; ++i) {
    removed_per_page += per_page.Unmap(i * kSmall) ? 1 : 0;
  }
  const uint64_t removed_ranged = ranged.UnmapRange(100 * kSmall, 800, kSmall);
  EXPECT_EQ(removed_per_page, 800u);
  EXPECT_EQ(removed_ranged, 800u);
  ExpectEquivalent(per_page, ranged, 0, (run.count + 8) * kSmall, kSmall);
}

TEST(IoPageTableRangeTest, UnmapRangeSkipsHolesLikePerPage) {
  IoPageTable per_page;
  IoPageTable ranged;
  for (uint64_t i = 0; i < 16; i += 2) {  // every other page mapped
    ASSERT_TRUE(per_page.Map(i * kSmall, 100 + i, kSmall));
    ASSERT_TRUE(ranged.Map(i * kSmall, 100 + i, kSmall));
  }
  uint64_t removed_per_page = 0;
  for (uint64_t i = 0; i < 16; ++i) {
    removed_per_page += per_page.Unmap(i * kSmall) ? 1 : 0;
  }
  const uint64_t removed_ranged = ranged.UnmapRange(0, 16, kSmall);
  EXPECT_EQ(removed_ranged, removed_per_page);
  ExpectEquivalent(per_page, ranged, 0, 20 * kSmall, kSmall);
}

TEST(IoPageTableRangeTest, UnmapRangeAtSmallGranuleRemovesCoveringHugePage) {
  // A 4 KiB-granular unmap over a huge-page mapping removes the whole huge
  // mapping, exactly as per-page Unmap(iova) would.
  IoPageTable per_page;
  IoPageTable ranged;
  ASSERT_TRUE(per_page.Map(0, 7, kHuge));
  ASSERT_TRUE(ranged.Map(0, 7, kHuge));
  uint64_t removed_per_page = 0;
  for (uint64_t i = 0; i < 4; ++i) {
    removed_per_page += per_page.Unmap(i * kSmall) ? 1 : 0;
  }
  const uint64_t removed_ranged = ranged.UnmapRange(0, 4, kSmall);
  EXPECT_EQ(removed_per_page, 1u);
  EXPECT_EQ(removed_ranged, 1u);
  ExpectEquivalent(per_page, ranged, 0, kHuge, kSmall);
}

TEST(IoPageTableRangeTest, TableFullyReclaimedAfterUnmapRange) {
  IoPageTable table;
  ASSERT_TRUE(table.MapRange(0, PageRun{0, 2048}, kSmall));
  EXPECT_GT(table.num_table_pages(), 1u);
  EXPECT_EQ(table.UnmapRange(0, 2048, kSmall), 2048u);
  EXPECT_EQ(table.num_mappings(), 0u);
  EXPECT_EQ(table.num_table_pages(), 1u);  // only the root remains
}

// Property-style check: a random interleaving of range maps and unmaps
// stays equivalent to the per-page implementation at every step.
void RandomChurn(uint64_t page_size, uint32_t seed) {
  std::mt19937 rng(seed);
  IoPageTable per_page;
  IoPageTable ranged;
  const uint64_t kSlots = 4096;
  std::vector<bool> mapped(kSlots, false);
  PageId next_frame = 1;
  for (int op = 0; op < 200; ++op) {
    const uint64_t begin = rng() % kSlots;
    const uint64_t count = 1 + rng() % 600;
    const uint64_t end = std::min(begin + count, kSlots);
    if (rng() % 2 == 0) {
      const PageRun run{next_frame, end - begin};
      next_frame += run.count;
      bool expect_ok = true;
      for (uint64_t i = begin; i < end; ++i) {
        if (mapped[i]) {
          expect_ok = false;
          break;
        }
        mapped[i] = true;
      }
      if (!expect_ok) {
        // Roll the shadow state forward only over the installed prefix.
        for (uint64_t i = begin; i < end; ++i) {
          if (!per_page.Translate(i * page_size).has_value()) {
            mapped[i] = false;
          }
        }
      }
      bool per_page_ok = true;
      for (uint64_t i = begin; i < end && per_page_ok; ++i) {
        per_page_ok = per_page.Map(i * page_size, run.first + (i - begin), page_size);
      }
      const bool ranged_ok = ranged.MapRange(begin * page_size, run, page_size);
      ASSERT_EQ(per_page_ok, ranged_ok) << "op " << op;
      // Re-sync shadow state from the table (conflict leaves a prefix).
      for (uint64_t i = begin; i < end; ++i) {
        mapped[i] = per_page.Translate(i * page_size).has_value();
      }
    } else {
      uint64_t removed_per_page = 0;
      for (uint64_t i = begin; i < end; ++i) {
        removed_per_page += per_page.Unmap(i * page_size) ? 1 : 0;
        mapped[i] = false;
      }
      const uint64_t removed_ranged = ranged.UnmapRange(begin * page_size, end - begin,
                                                        page_size);
      ASSERT_EQ(removed_per_page, removed_ranged) << "op " << op;
    }
    ASSERT_EQ(per_page.num_mappings(), ranged.num_mappings()) << "op " << op;
    ASSERT_EQ(per_page.num_table_pages(), ranged.num_table_pages()) << "op " << op;
  }
  ExpectEquivalent(per_page, ranged, 0, kSlots * page_size, page_size);
}

TEST(IoPageTableRangeTest, RandomChurnSmallPages) { RandomChurn(kSmall, 1234); }
TEST(IoPageTableRangeTest, RandomChurnHugePages) { RandomChurn(kHuge, 5678); }

}  // namespace
}  // namespace fastiov
