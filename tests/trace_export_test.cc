// The unified trace exporter: golden output for a minimal timeline, distinct
// thread rows per off-critical-path span kind, and the observability layers
// (lock-wait slices, counter tracks, fault instants).
#include "src/stats/trace_export.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "src/fault/fault.h"
#include "src/stats/blocked_time.h"
#include "src/stats/counter_track.h"
#include "src/stats/json_reader.h"
#include "src/stats/timeline.h"

namespace fastiov {
namespace {

JsonValue ParseTrace(const std::string& text) {
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(JsonReader::Parse(text, &doc, &error)) << error;
  return doc;
}

// thread_name metadata per pid: row name -> tid.
std::map<std::string, int64_t> ThreadRows(const JsonValue& doc, int64_t pid) {
  std::map<std::string, int64_t> rows;
  for (const JsonValue& e : doc.Find("traceEvents")->AsArray()) {
    if (e.GetString("ph") == "M" && e.GetString("name") == "thread_name" &&
        e.GetDouble("pid") == static_cast<double>(pid)) {
      rows[e.Find("args")->GetString("name")] = static_cast<int64_t>(e.GetDouble("tid"));
    }
  }
  return rows;
}

// The exact bytes for a minimal one-container timeline: the golden pins the
// event schema (field order, microsecond timestamps, metadata placement) that
// Perfetto/chrome://tracing consumes.
TEST(TraceExportGoldenTest, MinimalTimeline) {
  TimelineRecorder rec;
  const int id = rec.RegisterContainer(SimTime::Zero());
  rec.RecordSpan(id, kStepCgroup, SimTime::Zero(), Milliseconds(2));
  rec.RecordSpan(id, kStepVfDriver, Milliseconds(2), Milliseconds(5),
                 /*off_critical_path=*/true);
  rec.MarkReady(id, Milliseconds(4));

  std::ostringstream os;
  ExportChromeTrace(rec, os);
  const std::string expected =
      "{\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"container-0\"}},"
      "{\"name\":\"startup\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0,\"dur\":4000},"
      "{\"name\":\"0-cgroup\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0,\"dur\":2000},"
      "{\"name\":\"5-vf-driver\",\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":2000,\"dur\":3000},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"critical-path\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,"
      "\"args\":{\"name\":\"async 5-vf-driver\"}}"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(TraceExportTest, DistinctThreadRowPerOffCriticalSpanKind) {
  TimelineRecorder rec;
  const int id = rec.RegisterContainer(SimTime::Zero());
  rec.RecordSpan(id, kStepVfioDev, SimTime::Zero(), Milliseconds(1));
  // Two different background span kinds plus the supervised link-up aux span:
  // each must land on its own named row, not a shared "async" row.
  rec.RecordSpan(id, kStepVfDriver, Milliseconds(1), Milliseconds(3),
                 /*off_critical_path=*/true);
  rec.RecordSpan(id, kStepAddCni, Milliseconds(1), Milliseconds(2),
                 /*off_critical_path=*/true);
  rec.RecordAuxSpan(id, "link-up", Milliseconds(3), Milliseconds(6));
  rec.MarkReady(id, Milliseconds(2));

  std::ostringstream os;
  ExportChromeTrace(rec, os);
  const JsonValue doc = ParseTrace(os.str());

  const std::map<std::string, int64_t> rows = ThreadRows(doc, 0);
  ASSERT_EQ(rows.count("critical-path"), 1u);
  ASSERT_EQ(rows.count("async 5-vf-driver"), 1u);
  ASSERT_EQ(rows.count("async addCNI"), 1u);
  ASSERT_EQ(rows.count("link-up"), 1u);
  EXPECT_EQ(rows.at("critical-path"), 0);
  EXPECT_NE(rows.at("async 5-vf-driver"), rows.at("async addCNI"));
  EXPECT_NE(rows.at("async 5-vf-driver"), rows.at("link-up"));

  // Every span event must sit on the row matching its kind.
  for (const JsonValue& e : doc.Find("traceEvents")->AsArray()) {
    if (e.GetString("ph") != "X") {
      continue;
    }
    const int64_t tid = static_cast<int64_t>(e.GetDouble("tid"));
    const std::string name = e.GetString("name");
    if (name == kStepVfDriver) {
      EXPECT_EQ(tid, rows.at("async 5-vf-driver"));
    } else if (name == kStepAddCni) {
      EXPECT_EQ(tid, rows.at("async addCNI"));
    } else if (name == "link-up") {
      EXPECT_EQ(tid, rows.at("link-up"));
    } else {
      EXPECT_EQ(tid, 0) << name;
    }
  }
}

TEST(TraceExportTest, EmitsWaitSlicesCounterTracksAndFaultInstants) {
  TimelineRecorder rec;
  const int id = rec.RegisterContainer(SimTime::Zero());
  rec.RecordSpan(id, kStepVfioDev, SimTime::Zero(), Milliseconds(10));
  rec.MarkReady(id, Milliseconds(10));

  BlockedTimeRecorder blocked;
  blocked.Record(id, kStepVfioDev, "lock-wait:vfio.devset.global", Milliseconds(1),
                 Milliseconds(7));

  CounterTrackSet tracks;
  CounterTrack* frames = tracks.Create("mem.free_frames");
  frames->Record(SimTime::Zero(), 100.0);
  frames->Record(Milliseconds(5), 60.0);

  std::vector<FaultTraceEvent> faults;
  faults.push_back(FaultTraceEvent{Milliseconds(3), FaultSite::kVfioDeviceOpen,
                                   FaultTraceEvent::Kind::kInjected, /*transient=*/true});
  faults.push_back(FaultTraceEvent{Milliseconds(4), FaultSite::kVfioDeviceOpen,
                                   FaultTraceEvent::Kind::kRecovered});

  TraceOptions options;
  options.blocked = &blocked;
  options.counters = &tracks;
  options.fault_events = &faults;
  std::ostringstream os;
  ExportChromeTrace(rec, os, options);
  const JsonValue doc = ParseTrace(os.str());

  const std::map<std::string, int64_t> rows = ThreadRows(doc, 0);
  ASSERT_EQ(rows.count("waits"), 1u);

  bool saw_wait = false, saw_counter = false, saw_instant = false, saw_host = false;
  for (const JsonValue& e : doc.Find("traceEvents")->AsArray()) {
    const std::string ph = e.GetString("ph");
    const std::string name = e.GetString("name");
    if (ph == "X" && name == "lock-wait:vfio.devset.global") {
      saw_wait = true;
      EXPECT_EQ(static_cast<int64_t>(e.GetDouble("tid")), rows.at("waits"));
      EXPECT_EQ(e.Find("args")->GetString("phase"), kStepVfioDev);
      EXPECT_DOUBLE_EQ(e.GetDouble("dur"), 6000.0);  // 6 ms in us
    } else if (ph == "C" && name == "mem.free_frames") {
      saw_counter = true;
      EXPECT_GT(e.Find("args")->GetDouble("value"), 0.0);
    } else if (ph == "i") {
      saw_instant = true;
      EXPECT_EQ(e.GetString("s"), "g");
      EXPECT_EQ(e.Find("args")->GetString("site"), "vfio-dev");
    } else if (ph == "M" && name == "process_name" &&
               e.Find("args")->GetString("name") == "host") {
      saw_host = true;
    }
  }
  EXPECT_TRUE(saw_wait);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_host);
}

TEST(TraceExportTest, NoObservabilityOptionsMeansNoHostProcess) {
  TimelineRecorder rec;
  const int id = rec.RegisterContainer(SimTime::Zero());
  rec.RecordSpan(id, kStepCgroup, SimTime::Zero(), Milliseconds(1));
  rec.MarkReady(id, Milliseconds(1));
  std::ostringstream os;
  ExportChromeTrace(rec, os);
  EXPECT_EQ(os.str().find("\"host\""), std::string::npos);
  EXPECT_EQ(os.str().find("\"ph\":\"C\""), std::string::npos);
  EXPECT_EQ(os.str().find("\"ph\":\"i\""), std::string::npos);
}

}  // namespace
}  // namespace fastiov
