#include "src/simcore/time.h"

#include <gtest/gtest.h>

namespace fastiov {
namespace {

TEST(SimTimeTest, ConstructorsAndAccessors) {
  EXPECT_EQ(SimTime().ns(), 0);
  EXPECT_EQ(Nanoseconds(42).ns(), 42);
  EXPECT_EQ(Microseconds(3).ns(), 3000);
  EXPECT_EQ(Milliseconds(2).ns(), 2'000'000);
  EXPECT_EQ(Seconds(1.5).ns(), 1'500'000'000);
}

TEST(SimTimeTest, Conversions) {
  EXPECT_DOUBLE_EQ(Seconds(2.0).ToSecondsF(), 2.0);
  EXPECT_DOUBLE_EQ(Milliseconds(1500).ToSecondsF(), 1.5);
  EXPECT_DOUBLE_EQ(Milliseconds(2).ToMillisF(), 2.0);
  EXPECT_DOUBLE_EQ(Microseconds(7).ToMicrosF(), 7.0);
}

TEST(SimTimeTest, Comparison) {
  EXPECT_LT(Milliseconds(1), Milliseconds(2));
  EXPECT_EQ(Milliseconds(1000), Seconds(1.0));
  EXPECT_GE(Seconds(1.0), Milliseconds(999));
  EXPECT_EQ(SimTime::Zero(), SimTime(0));
  EXPECT_GT(SimTime::Max(), Seconds(1e9));
}

TEST(SimTimeTest, Arithmetic) {
  EXPECT_EQ(Milliseconds(1) + Milliseconds(2), Milliseconds(3));
  EXPECT_EQ(Milliseconds(5) - Milliseconds(2), Milliseconds(3));
  SimTime t = Milliseconds(1);
  t += Milliseconds(1);
  EXPECT_EQ(t, Milliseconds(2));
  t -= Milliseconds(2);
  EXPECT_EQ(t, SimTime::Zero());
}

TEST(SimTimeTest, ScalarMultiplyDivide) {
  EXPECT_EQ(Milliseconds(10) * 2.5, Milliseconds(25));
  EXPECT_EQ(Milliseconds(10) / 2.0, Milliseconds(5));
  EXPECT_DOUBLE_EQ(Milliseconds(10) / Milliseconds(4), 2.5);
}

TEST(SimTimeTest, MultiplyByZeroAndNegative) {
  EXPECT_EQ(Milliseconds(10) * 0.0, SimTime::Zero());
  EXPECT_EQ(Milliseconds(10) * -1.0, Milliseconds(-10));
  EXPECT_LT(Milliseconds(-10), SimTime::Zero());
}

TEST(SimTimeTest, ToStringPicksAdaptiveUnit) {
  EXPECT_EQ(Seconds(12.2).ToString(), "12.20s");
  EXPECT_EQ(Milliseconds(460).ToString(), "460.00ms");
  EXPECT_EQ(Microseconds(12).ToString(), "12.00us");
  EXPECT_EQ(Nanoseconds(999).ToString(), "999ns");
}

}  // namespace
}  // namespace fastiov
