#include "src/pci/pci.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>

namespace fastiov {

std::string PciAddress::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04x:%02x:%02x.%x", domain, bus, device, function);
  return buf;
}

PciDevice::PciDevice(PciIdAllocator& ids, PciAddress addr, uint16_t vendor_id,
                     uint16_t device_id, ResetScope reset_scope, std::string name)
    : id_(ids.Next()), addr_(addr), name_(std::move(name)), reset_scope_(reset_scope) {
  ConfigWrite16(kPciVendorId, vendor_id);
  ConfigWrite16(kPciDeviceId, device_id);
}

uint8_t PciDevice::ConfigRead8(uint16_t offset) const {
  assert(offset < config_.size());
  return config_[offset];
}

uint16_t PciDevice::ConfigRead16(uint16_t offset) const {
  assert(offset + 1 < config_.size());
  uint16_t v = 0;
  std::memcpy(&v, &config_[offset], sizeof(v));
  return v;
}

uint32_t PciDevice::ConfigRead32(uint16_t offset) const {
  assert(offset + 3 < config_.size());
  uint32_t v = 0;
  std::memcpy(&v, &config_[offset], sizeof(v));
  return v;
}

void PciDevice::ConfigWrite8(uint16_t offset, uint8_t value) {
  assert(offset < config_.size());
  config_[offset] = value;
}

void PciDevice::ConfigWrite16(uint16_t offset, uint16_t value) {
  assert(offset + 1 < config_.size());
  std::memcpy(&config_[offset], &value, sizeof(value));
}

void PciDevice::ConfigWrite32(uint16_t offset, uint32_t value) {
  assert(offset + 3 < config_.size());
  std::memcpy(&config_[offset], &value, sizeof(value));
}

void PciBus::AddDevice(PciDevice* dev) {
  assert(dev != nullptr);
  assert(Find(dev->address()) == nullptr && "duplicate BDF on bus");
  devices_.push_back(dev);
}

void PciBus::RemoveDevice(PciDevice* dev) { std::erase(devices_, dev); }

PciDevice* PciBus::Find(const PciAddress& addr) const {
  auto it = std::find_if(devices_.begin(), devices_.end(),
                         [&](PciDevice* d) { return d->address() == addr; });
  return it == devices_.end() ? nullptr : *it;
}

}  // namespace fastiov
