// Minimal PCI model: addresses, config space, devices, buses.
//
// VFIO devset membership is defined by reset scope (§3.2.2): devices that
// only support bus-level reset share a devset with every other device on
// their bus, so the bus scan during VFIO open is proportional to the bus
// population. This module provides that structure.
#ifndef SRC_PCI_PCI_H_
#define SRC_PCI_PCI_H_

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace fastiov {

struct PciAddress {
  uint16_t domain = 0;
  uint8_t bus = 0;
  uint8_t device = 0;
  uint8_t function = 0;

  friend auto operator<=>(const PciAddress&, const PciAddress&) = default;
  std::string ToString() const;  // "0000:3b:02.1"
};

// Standard configuration-space header offsets we model.
inline constexpr uint16_t kPciVendorId = 0x00;
inline constexpr uint16_t kPciDeviceId = 0x02;
inline constexpr uint16_t kPciCommand = 0x04;
inline constexpr uint16_t kPciStatus = 0x06;
inline constexpr uint16_t kPciHeaderType = 0x0e;
inline constexpr uint16_t kPciBar0 = 0x10;
inline constexpr uint16_t kPciCommandBusMaster = 0x4;

// Intel E810 identifiers (PF and iavf VF).
inline constexpr uint16_t kIntelVendorId = 0x8086;
inline constexpr uint16_t kE810PfDeviceId = 0x1593;
inline constexpr uint16_t kE810VfDeviceId = 0x1889;

enum class ResetScope {
  kFunction,  // FLR: reset without touching siblings -> devset of its own
  kSlot,      // slot-level reset
  kBus,       // bus-level reset: shares a devset with all bus siblings
};

enum class BoundDriver { kNone, kHostNetdev, kVfio };

// Per-cell PCI device id allocator. A device id is an identity key within
// one simulated host (IOMMU attach bookkeeping, VFIO group membership) and
// never feeds any reported number. Each host/cell owns its own allocator, so
// two cells constructed in one process assign identical id sequences and
// share no state — the property the parallel driver's isolation tests pin
// down (there used to be a process-wide atomic counter here; it was the last
// hidden global reachable from Host).
class PciIdAllocator {
 public:
  int Next() { return next_id_++; }

 private:
  int next_id_ = 0;
};

class PciDevice {
 public:
  PciDevice(PciIdAllocator& ids, PciAddress addr, uint16_t vendor_id, uint16_t device_id,
            ResetScope reset_scope, std::string name);
  virtual ~PciDevice() = default;

  int id() const { return id_; }
  const PciAddress& address() const { return addr_; }
  const std::string& name() const { return name_; }
  ResetScope reset_scope() const { return reset_scope_; }

  uint8_t ConfigRead8(uint16_t offset) const;
  uint16_t ConfigRead16(uint16_t offset) const;
  uint32_t ConfigRead32(uint16_t offset) const;
  void ConfigWrite8(uint16_t offset, uint8_t value);
  void ConfigWrite16(uint16_t offset, uint16_t value);
  void ConfigWrite32(uint16_t offset, uint32_t value);

  BoundDriver bound_driver() const { return bound_driver_; }
  void BindDriver(BoundDriver d) { bound_driver_ = d; }

  bool bus_master_enabled() const {
    return (ConfigRead16(kPciCommand) & kPciCommandBusMaster) != 0;
  }

 private:
  int id_;
  PciAddress addr_;
  std::string name_;
  ResetScope reset_scope_;
  BoundDriver bound_driver_ = BoundDriver::kNone;
  std::array<uint8_t, 256> config_{};
};

class PciBus {
 public:
  explicit PciBus(uint8_t number) : number_(number) {}

  uint8_t number() const { return number_; }
  void AddDevice(PciDevice* dev);
  void RemoveDevice(PciDevice* dev);
  const std::vector<PciDevice*>& devices() const { return devices_; }
  size_t num_devices() const { return devices_.size(); }

  PciDevice* Find(const PciAddress& addr) const;

 private:
  uint8_t number_;
  std::vector<PciDevice*> devices_;
};

}  // namespace fastiov

#endif  // SRC_PCI_PCI_H_
