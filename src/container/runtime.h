// The secure-container runtime pipeline (Kata-like), end to end per Fig. 4:
// cgroup -> NNS + CNI -> virtioFS -> hypervisor start -> VF attach (VFIO
// registration + DMA memory mapping) -> guest boot -> VF driver init +
// agent -> final setups -> ready [-> serverless task].
//
// Every baseline of §6.1 is a StackConfig: the pipeline consults it to pick
// the CNI flavor, the devset lock policy (via Host), the zeroing mode, the
// image-mapping skip, and sync-vs-async network initialization.
#ifndef SRC_CONTAINER_RUNTIME_H_
#define SRC_CONTAINER_RUNTIME_H_

#include <memory>
#include <vector>

#include "src/container/host.h"
#include "src/container/stack_config.h"
#include "src/fault/fault.h"
#include "src/kvm/microvm.h"
#include "src/nic/vdpa.h"
#include "src/nic/vf_driver.h"
#include "src/vfio/vfio.h"
#include "src/virtio/virtio.h"
#include "src/workload/serverless.h"

namespace fastiov {

// Guest physical layout (offsets within the RAM region).
struct GuestLayout {
  uint64_t ram_bytes = 0;
  uint64_t readonly_bytes = 0;     // BIOS + kernel at [0, readonly)
  uint64_t virtiofs_vring_gpa = 0;  // one page
  uint64_t virtiofs_buffer_gpa = 0;
  uint64_t virtiofs_buffer_bytes = 0;
  uint64_t boot_ws_gpa = 0;  // memory the guest dirties while booting
  uint64_t boot_ws_bytes = 0;
  uint64_t app_ws_gpa = 0;   // memory the application dirties
  uint64_t nic_ring_gpa = 0;
  uint64_t nic_ring_bytes = 0;
  uint64_t image_gpa = 0;    // image region base (above RAM)

  static GuestLayout For(uint64_t ram_bytes, uint64_t image_bytes, uint64_t readonly_bytes,
                         uint64_t page_size);
};

struct ContainerInstance {
  int cid = -1;
  int pid = -1;
  int timeline_id = -1;
  GuestLayout layout;
  std::unique_ptr<MicroVm> vm;
  std::unique_ptr<VfioContainer> vfio_container;
  VirtualFunction* vf = nullptr;
  VfioDevice* vfio_dev = nullptr;
  std::unique_ptr<VfDriver> driver;            // vendor passthrough driver
  std::unique_ptr<VirtioNetDriver> vnet_driver;  // vDPA mode (§7)
  std::unique_ptr<VirtioFs> virtiofs;
  Process async_net;  // FastIOV's asynchronously executed network init
  Process link_up;    // supervised firmware link negotiation
  bool ready = false;
  bool terminated = false;
  bool teardown_done = false;  // Stop/AbortContainer ran to completion
  bool aborted = false;        // start failed; resources were unwound
  bool vfio_dev_open = false;  // OpenDevice succeeded (CloseDevice owed)
  bool net_failed = false;     // async network init failed permanently
  uint64_t kernel_corruptions = 0;  // kernel/BIOS data destroyed by zeroing
};

class ContainerRuntime {
 public:
  explicit ContainerRuntime(Host& host);

  // Starts one container: returns when the container reports ready and, if
  // `app` is given, after the task completes (task-completion experiments).
  //
  // Under fault injection, transient faults are retried per-phase with
  // exponential backoff (StackConfig caps); a permanent fault or exhausted
  // retries unwind the partial setup via AbortContainer and return normally
  // with inst.aborted set — a failed start never leaks and never tears down
  // its siblings.
  Task StartContainer(const ServerlessApp* app) { return StartContainer(app, nullptr); }

  // As above, but additionally publishes the instance record through
  // `out_inst` as soon as it exists (before the first suspension), so an
  // open-loop caller — the cluster launch path — can stop or inspect exactly
  // the container this call created even while siblings start concurrently.
  Task StartContainer(const ServerlessApp* app, ContainerInstance** out_inst);

  // Terminates a running container: detaches and recycles the VF, unmaps
  // and unpins DMA memory, drops fastiovd state, and frees guest frames —
  // WITHOUT scrubbing them (freed memory keeps its residue; the next
  // owner's zeroing policy is what protects the next tenant).
  Task StopContainer(ContainerInstance& inst);

  // Unwinds a partially started container: exactly what was set up so far
  // is undone — DMA unmapped/unpinned, the VF FLR'd and recycled, frames
  // freed, fastiovd registrations dropped. Safe at any pipeline phase and
  // idempotent (re-entry is a no-op). `from_async` is set when the caller
  // IS the async network-init process (skips self-join).
  Task AbortContainer(ContainerInstance& inst, bool from_async = false);

  const std::vector<std::unique_ptr<ContainerInstance>>& instances() const {
    return instances_;
  }

  // Drops the bookkeeping records of fully terminated containers whose
  // supervision processes have finished, folding their correctness counters
  // into running totals first so TotalResidueReads/TotalCorruptions and
  // AbortedContainers keep reporting lifetime values. Long-lived hosts (the
  // cluster launch traces, 10^4+ launches per host) call this after each
  // stop so resident memory tracks the number of *live* containers, not the
  // number ever started. Memory-only: touches no simulated time and no RNG.
  // Returns the number of records reaped.
  size_t ReapTerminated();

  // Aggregated correctness counters across all instances, including reaped
  // ones.
  uint64_t TotalResidueReads() const;
  uint64_t TotalCorruptions() const;
  // Containers whose start was aborted (live records plus reaped ones).
  uint64_t AbortedContainers() const;

 private:
  Task SetupCgroup(ContainerInstance& inst);
  Task SetupNamespaceAndCni(ContainerInstance& inst);
  Task SetupVirtioFsDaemon(ContainerInstance& inst);
  Task CreateMicroVm(ContainerInstance& inst);
  // Builds the DmaMapOptions for this container's zeroing mode.
  DmaMapOptions MakeDmaOptions(ContainerInstance& inst) const;
  // QEMU memory setup: VFIO container + DMA mapping of guest RAM
  // (1-dma-ram; happens at microVM init, before device registration).
  Task MapGuestRam(ContainerInstance& inst);
  // DMA mapping of the image region (3-dma-image), or the skip path.
  Task MapGuestImage(ContainerInstance& inst);
  // VFIO device registration (4-vfio-dev) + remaining attach work.
  Task RegisterVfioDevice(ContainerInstance& inst);
  Task LoadGuestImageAndKernel(ContainerInstance& inst);
  Task BootGuest(ContainerInstance& inst);
  // Driver init + link bring-up + agent addressing; records the
  // 5-vf-driver span (flagged off-critical-path when async).
  Task NetworkInit(ContainerInstance& inst, bool off_critical_path);
  Task FinalSetup(ContainerInstance& inst);
  Task RunApp(ContainerInstance& inst, const ServerlessApp& app);

  // The phase sequence of StartContainer, with per-phase fault recovery;
  // throws FaultError when a start cannot complete.
  Task StartPipeline(ContainerInstance& inst);
  // Supervises BringUpLink in the background: retries transient link faults
  // and marks the link permanently failed when retries run out, so the
  // agent's poll loop always terminates.
  Task SupervisedLinkUp(ContainerInstance& inst);
  // Wraps NetworkInit when it runs asynchronously (§4.2.2): a permanent
  // failure after the container went ready aborts it in place; before
  // ready, it flags net_failed for the main path to act on.
  Task AsyncNetworkInit(ContainerInstance& inst);

  Host* host_;
  std::vector<std::unique_ptr<ContainerInstance>> instances_;
  int next_pid_ = 1000;
  // Monotonic container-id source; cids stay unique across ReapTerminated.
  int next_cid_ = 0;
  // Lifetime counters carried over from reaped instance records.
  uint64_t reaped_count_ = 0;
  uint64_t reaped_residue_reads_ = 0;
  uint64_t reaped_corruptions_ = 0;
  uint64_t reaped_aborted_ = 0;
};

}  // namespace fastiov

#endif  // SRC_CONTAINER_RUNTIME_H_
