#include "src/container/host.h"

namespace fastiov {
namespace {

std::unique_ptr<DevsetLockPolicy> MakeLockPolicy(Simulation& sim, const StackConfig& config) {
  if (config.lock_decomposition) {
    return std::make_unique<HierarchicalLockPolicy>(sim);
  }
  return std::make_unique<GlobalMutexPolicy>(sim);
}

}  // namespace

Host::Host(Simulation& sim, const HostSpec& spec, const CostModel& cost,
           const StackConfig& config)
    : sim_(&sim),
      spec_(spec),
      cost_(cost),
      config_(config),
      cpu_(sim, spec.physical_cores, "host.cpu"),
      guest_cpu_(sim, static_cast<double>(spec.logical_cores), "host.guest-cpu"),
      pmem_(sim, spec, cost, config.hugepages ? kHugePageSize : kSmallPageSize),
      virtiofs_bw_(sim, 6.0 * static_cast<double>(kGiB), "host.virtiofs-bw"),
      ipvtap_bw_(sim, cost.ipvtap_bandwidth_bps, "host.ipvtap-bw"),
      nic_bus_(0x3b),
      nic_(sim, cpu_, cost, spec, nic_bus_, pci_ids_),
      vdpa_bus_(sim, cpu_, cost),
      fastiovd_(sim, cpu_, pmem_, cost),
      cgroup_lock_(sim),
      virtiofs_lock_(sim),
      rtnl_lock_(sim),
      device_bind_lock_(sim) {
  pmem_.set_cpu(&cpu_);
  nic_.CreateVfs(spec.num_vfs);
  // The E810 has no slot-level reset, so every VF shares one devset
  // (§3.2.2). Vanilla scans the bus under the lock on every open; the
  // hierarchical policy only does per-device bookkeeping.
  devset_ = std::make_unique<DevSet>(sim, cpu_, cost, &nic_bus_, MakeLockPolicy(sim, config),
                                     /*scan_on_open=*/!config.lock_decomposition);
  if (config.prezero_fraction > 0.0) {
    pmem_.PreZeroFreePages(config.prezero_fraction);
  }
}

void Host::EnableObservability() {
  if (obs_ != nullptr) {
    return;
  }
  obs_ = std::make_shared<ObservabilityHub>();
  LockStatsRegistry* locks = &obs_->lock_stats;

  // Host-wide kernel locks.
  cgroup_lock_.Instrument(locks->Create("host.cgroup"));
  virtiofs_lock_.Instrument(locks->Create("host.virtiofs"));
  rtnl_lock_.Instrument(locks->Create("host.rtnl"));
  device_bind_lock_.Instrument(locks->Create("host.device-bind"));

  // Subsystem locks: the VFIO devset policy (global mutex or hierarchical
  // rwlock + per-child mutexes), the NIC PF-driver/mailbox locks, the vdpa
  // bus lock.
  devset_->lock_policy().Instrument(locks);
  vdpa_bus_.Instrument(locks);

  // Counter tracks for the unified trace.
  free_frames_track_ = obs_->tracks.Create("mem.free_frames");
  pinned_pages_track_ = obs_->tracks.Create("mem.pinned_pages");
  iommu_track_ = obs_->tracks.Create("iommu.mappings");
  vfs_track_ = obs_->tracks.Create("nic.vfs_in_use");
  pmem_.InstrumentTracks(free_frames_track_, pinned_pages_track_);
  iommu_.InstrumentTrack(sim_, iommu_track_);
  nic_.Instrument(locks, vfs_track_);
}

void Host::PreBindVfsToVfio() {
  for (size_t i = 0; i < nic_.num_vfs(); ++i) {
    devset_->AddDevice(nic_.vf(static_cast<int>(i)));
  }
}

Task Host::PrepareSharedImage() {
  if (!shared_image_frames_.empty()) {
    co_return;
  }
  const uint64_t pages = cost_.image_bytes / pmem_.page_size();
  co_await pmem_.RetrievePages(/*owner=*/0, pages, &shared_image_frames_);
  co_await pmem_.ZeroPages(shared_image_frames_);
  for (PageId id : shared_image_frames_) {
    pmem_.frame(id).content = PageContent::kData;  // page cache holds the image
  }
}

}  // namespace fastiov
