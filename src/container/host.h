// The simulated server: all shared hardware and kernel state one experiment
// run needs — CPU pools, physical memory, IOMMU, PCI bus, SR-IOV NIC, the
// VFIO devset (with the lock policy chosen by the stack config), fastiovd,
// host-wide kernel locks, and the timeline recorder.
#ifndef SRC_CONTAINER_HOST_H_
#define SRC_CONTAINER_HOST_H_

#include <memory>
#include <vector>

#include "src/config/cost_model.h"
#include "src/container/stack_config.h"
#include "src/core/fastiovd.h"
#include "src/iommu/iommu.h"
#include "src/mem/physical_memory.h"
#include "src/nic/sriov_nic.h"
#include "src/nic/vdpa.h"
#include "src/pci/pci.h"
#include "src/simcore/resources.h"
#include "src/simcore/simulation.h"
#include "src/simcore/sync.h"
#include "src/stats/observability.h"
#include "src/stats/timeline.h"
#include "src/vfio/vfio.h"

namespace fastiov {

class Host {
 public:
  Host(Simulation& sim, const HostSpec& spec, const CostModel& cost,
       const StackConfig& config);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  Simulation& sim() { return *sim_; }
  const HostSpec& spec() const { return spec_; }
  const CostModel& cost() const { return cost_; }
  const StackConfig& config() const { return config_; }

  CpuPool& cpu() { return cpu_; }
  BandwidthResource& guest_cpu() { return guest_cpu_; }
  BandwidthResource& virtiofs_bandwidth() { return virtiofs_bw_; }
  BandwidthResource& ipvtap_bandwidth() { return ipvtap_bw_; }
  PhysicalMemory& pmem() { return pmem_; }
  Iommu& iommu() { return iommu_; }
  PciBus& nic_bus() { return nic_bus_; }
  PciIdAllocator& pci_ids() { return pci_ids_; }
  SriovNic& nic() { return nic_; }
  DevSet& devset() { return *devset_; }
  VdpaBus& vdpa_bus() { return vdpa_bus_; }
  Fastiovd& fastiovd() { return fastiovd_; }
  TimelineRecorder& timeline() { return timeline_; }

  SimMutex& cgroup_lock() { return cgroup_lock_; }
  SimMutex& virtiofs_lock() { return virtiofs_lock_; }
  SimMutex& rtnl_lock() { return rtnl_lock_; }
  SimMutex& device_bind_lock() { return device_bind_lock_; }

  // Turns on contention-aware observability: creates the hub and attaches
  // named probes to every shared lock plus the standard counter tracks.
  // Purely memory-side — charges no simulated time and draws no randomness,
  // so instrumented runs stay event-identical to uninstrumented ones. Call
  // before containers start (idempotent).
  void EnableObservability();
  ObservabilityHub* observability() { return obs_.get(); }
  // Shared ownership so an ExperimentResult can keep the hub alive after the
  // Host (and the locks that reported into it) are gone.
  std::shared_ptr<ObservabilityHub> observability_ptr() { return obs_; }

  // Standard counter tracks (null until EnableObservability).
  CounterTrack* free_frames_track() { return free_frames_track_; }
  CounterTrack* pinned_pages_track() { return pinned_pages_track_; }
  CounterTrack* iommu_track() { return iommu_track_; }
  CounterTrack* vfs_track() { return vfs_track_; }

  // Pre-binds every VF to VFIO (the §5 fix; done once after host boot).
  // VanillaUnfixed skips this and binds per container start.
  void PreBindVfsToVfio();

  // Allocates the shared page-cache copy of the microVM image used when
  // image mapping is skipped (one copy per host, all VMs alias it).
  Task PrepareSharedImage();
  const std::vector<PageId>& shared_image_frames() const { return shared_image_frames_; }

 private:
  Simulation* sim_;
  HostSpec spec_;
  CostModel cost_;
  StackConfig config_;

  CpuPool cpu_;                  // physical cores, host-side work
  BandwidthResource guest_cpu_;  // logical-core capacity for guest compute
  PhysicalMemory pmem_;
  BandwidthResource virtiofs_bw_;
  BandwidthResource ipvtap_bw_;
  Iommu iommu_;
  PciBus nic_bus_;
  PciIdAllocator pci_ids_;  // per-host id space; see pci.h
  SriovNic nic_;
  std::unique_ptr<DevSet> devset_;
  VdpaBus vdpa_bus_;
  Fastiovd fastiovd_;
  TimelineRecorder timeline_;

  SimMutex cgroup_lock_;
  SimMutex virtiofs_lock_;
  SimMutex rtnl_lock_;
  SimMutex device_bind_lock_;

  std::shared_ptr<ObservabilityHub> obs_;
  CounterTrack* free_frames_track_ = nullptr;
  CounterTrack* pinned_pages_track_ = nullptr;
  CounterTrack* iommu_track_ = nullptr;
  CounterTrack* vfs_track_ = nullptr;

  std::vector<PageId> shared_image_frames_;
};

}  // namespace fastiov

#endif  // SRC_CONTAINER_HOST_H_
