#include "src/container/runtime.h"

#include <algorithm>
#include <cassert>
#include <exception>
#include <stdexcept>

namespace fastiov {
namespace {

// Wait-attribution context for one pipeline phase of one container: inert
// (a default WaitCtx) when observability is off, so every probe downstream
// stays a single null-check.
WaitCtx Ctx(Host& h, const ContainerInstance& inst, const char* phase) {
  ObservabilityHub* obs = h.observability();
  if (obs == nullptr) {
    return {};
  }
  return WaitCtx{&obs->blocked, inst.timeline_id, phase};
}

// Sites whose retry should FLR the VF first: the failed operation may have
// left per-VF hardware state behind (partial bind, stuck mailbox).
bool IsVfSite(FaultSite site) {
  return site == FaultSite::kVfBind || site == FaultSite::kVfioDeviceOpen ||
         site == FaultSite::kVdpaAttach || site == FaultSite::kVfLinkUp;
}

// Runs one pipeline phase with the fault-recovery policy: transient faults
// retry with exponential backoff (caps from StackConfig), VF-related
// retries FLR the VF first, and a phase that overruns its deadline raises a
// permanent kPhaseTimeout. `make` builds a fresh Task per attempt, so every
// phase body must tolerate re-entry (guards on already-acquired resources).
// With no injector and no deadline configured this is a plain pass-through:
// no extra events, no RNG draws, no time charges.
template <typename MakeTask>
Task RunPhaseWithRecovery(Host& h, ContainerInstance& inst, MakeTask make) {
  FaultInjector* injector = h.sim().fault_injector();
  const StackConfig& cfg = h.config();
  if (injector == nullptr && cfg.phase_timeout <= SimTime::Zero()) {
    co_await make();
    co_return;
  }
  const SimTime begin = h.sim().Now();
  SimTime backoff = cfg.fault_backoff_initial;
  int attempt = 0;
  FaultSite last_site = FaultSite::kPhaseTimeout;
  bool had_fault = false;
  for (;;) {
    bool retry = false;
    try {
      co_await make();
    } catch (const FaultError& e) {
      if (!e.transient() || attempt >= cfg.fault_retry_limit) {
        throw;
      }
      last_site = e.site();
      retry = true;
    }
    if (!retry) {
      break;
    }
    had_fault = true;
    ++attempt;
    if (injector != nullptr) {
      injector->NoteRetry(last_site, h.sim().Now());
    }
    if (IsVfSite(last_site) && inst.vf != nullptr) {
      // A fault during the reset itself just folds into the next attempt.
      try {
        co_await h.nic().ResetVf(inst.vf);
      } catch (const FaultError&) {
      }
    }
    co_await h.sim().Delay(backoff);
    backoff = std::min(backoff * cfg.fault_backoff_multiplier, cfg.fault_backoff_max);
  }
  if (had_fault && injector != nullptr) {
    injector->NoteRecovered(last_site, h.sim().Now());
  }
  if (cfg.phase_timeout > SimTime::Zero() && h.sim().Now() - begin > cfg.phase_timeout) {
    throw FaultError(FaultSite::kPhaseTimeout, /*transient=*/false);
  }
}

}  // namespace

GuestLayout GuestLayout::For(uint64_t ram_bytes, uint64_t image_bytes,
                             uint64_t readonly_bytes, uint64_t page_size) {
  assert(ram_bytes >= 256 * kMiB && "microVM needs at least 256 MiB of RAM");
  GuestLayout l;
  l.ram_bytes = ram_bytes;
  l.readonly_bytes = readonly_bytes;
  l.virtiofs_vring_gpa = 64 * kMiB - page_size;
  l.virtiofs_buffer_gpa = 64 * kMiB;
  l.virtiofs_buffer_bytes = 4 * kMiB;
  l.boot_ws_gpa = 72 * kMiB;
  l.boot_ws_bytes = 56 * kMiB;
  l.app_ws_gpa = 136 * kMiB;
  l.nic_ring_bytes = 4 * kMiB;
  l.nic_ring_gpa = ram_bytes - l.nic_ring_bytes;
  l.image_gpa = ram_bytes;  // image region sits directly above RAM
  (void)image_bytes;
  return l;
}

ContainerRuntime::ContainerRuntime(Host& host) : host_(&host) {}

Task ContainerRuntime::SetupCgroup(ContainerInstance& inst) {
  auto& h = *host_;
  const SimTime begin = h.sim().Now();
  // Heavier kernel-side contention for the software CNI ([42], Fig. 14):
  // its pause-container and veth bookkeeping lengthen the cgroup sections.
  SimTime crit = h.cost().cgroup_lock_crit;
  if (h.config().cni == CniKind::kIpvtap) {
    crit += h.cost().ipvtap_cgroup_extra_crit;
  }
  const WaitCtx ctx = Ctx(h, inst, kStepCgroup);
  co_await h.cgroup_lock().Lock(ctx);
  co_await h.cpu().Compute(h.sim().rng().Jitter(crit, h.cost().jitter_sigma), ctx);
  h.cgroup_lock().Unlock();
  co_await h.cpu().Compute(h.sim().rng().Jitter(h.cost().cgroup_cpu, h.cost().jitter_sigma),
                           ctx);
  h.timeline().RecordSpan(inst.timeline_id, kStepCgroup, begin, h.sim().Now());
}

Task ContainerRuntime::SetupNamespaceAndCni(ContainerInstance& inst) {
  auto& h = *host_;
  auto& rng = h.sim().rng();
  if (FaultInjector* injector = h.sim().fault_injector()) {
    co_await injector->MaybeInject(h.sim(), FaultSite::kCni);
  }
  const WaitCtx ctx = Ctx(h, inst, kStepAddCni);
  co_await h.cpu().Compute(rng.Jitter(h.cost().nns_create_cpu, h.cost().jitter_sigma), ctx);

  switch (h.config().cni) {
    case CniKind::kNoNetwork:
      break;
    case CniKind::kVanillaUnfixed: {
      // A retry after a VF-side fault keeps the VF it already holds.
      if (inst.vf == nullptr) {
        inst.vf = h.nic().AllocateFreeVf();
      }
      if (inst.vf == nullptr) {
        throw std::runtime_error("no free VF");
      }
      co_await h.nic().ConfigureVf(inst.vf, ctx);
      // The §5 implementation flaw: bind the VF to the host network driver
      // (device_lock + driver probe, serialized host-wide), create the real
      // netdev, move it into the container NNS.
      co_await h.device_bind_lock().Lock(ctx);
      co_await h.cpu().Compute(
          rng.Jitter(h.cost().host_driver_bind_crit, h.cost().jitter_sigma), ctx);
      h.device_bind_lock().Unlock();
      co_await h.cpu().Compute(rng.Jitter(h.cost().host_driver_bind_cpu, h.cost().jitter_sigma),
                               ctx);
      inst.vf->BindDriver(BoundDriver::kHostNetdev);
      co_await h.cpu().Compute(h.cost().cni_nns_move_cpu, ctx);
      break;
    }
    case CniKind::kVanillaFixed:
    case CniKind::kFastIov: {
      if (inst.vf == nullptr) {
        inst.vf = h.nic().AllocateFreeVf();
      }
      if (inst.vf == nullptr) {
        throw std::runtime_error("no free VF");
      }
      co_await h.nic().ConfigureVf(inst.vf, ctx);
      // Dummy Linux interface stands in for the VF netdev (§5), so the VF
      // stays bound to VFIO.
      co_await h.cpu().Compute(rng.Jitter(h.cost().cni_dummy_netdev_cpu, h.cost().jitter_sigma),
                               ctx);
      co_await h.cpu().Compute(h.cost().cni_nns_move_cpu, ctx);
      break;
    }
    case CniKind::kIpvtap: {
      // Software CNI: create + configure the virtual device under the
      // kernel's global network lock (Fig. 14's `addCNI`).
      const SimTime begin = h.sim().Now();
      co_await h.rtnl_lock().Lock(ctx);
      co_await h.cpu().Compute(rng.Jitter(h.cost().ipvtap_rtnl_crit, h.cost().jitter_sigma),
                               ctx);
      h.rtnl_lock().Unlock();
      co_await h.cpu().Compute(rng.Jitter(h.cost().ipvtap_create_cpu, h.cost().jitter_sigma),
                               ctx);
      co_await h.cpu().Compute(h.cost().cni_nns_move_cpu, ctx);
      h.timeline().RecordSpan(inst.timeline_id, kStepAddCni, begin, h.sim().Now());
      break;
    }
  }
}

Task ContainerRuntime::SetupVirtioFsDaemon(ContainerInstance& inst) {
  auto& h = *host_;
  if (FaultInjector* injector = h.sim().fault_injector()) {
    co_await injector->MaybeInject(h.sim(), FaultSite::kVirtioFs);
  }
  const SimTime begin = h.sim().Now();
  const WaitCtx ctx = Ctx(h, inst, kStepVirtioFs);
  // vhost-user socket registration serializes host-wide.
  co_await h.virtiofs_lock().Lock(ctx);
  co_await h.cpu().Compute(
      h.sim().rng().Jitter(h.cost().virtiofs_lock_crit, h.cost().jitter_sigma), ctx);
  h.virtiofs_lock().Unlock();
  co_await h.cpu().Compute(
      h.sim().rng().Jitter(h.cost().virtiofs_daemon_cpu, h.cost().jitter_sigma), ctx);
  h.timeline().RecordSpan(inst.timeline_id, kStepVirtioFs, begin, h.sim().Now());
}

Task ContainerRuntime::CreateMicroVm(ContainerInstance& inst) {
  auto& h = *host_;
  co_await h.cpu().Compute(h.sim().rng().Jitter(h.cost().qemu_start_cpu, h.cost().jitter_sigma));
  // A retry discards the previous hypervisor instance wholesale; no frames
  // are allocated until the DMA-map phases, so nothing leaks here.
  inst.vm = std::make_unique<MicroVm>(h.sim(), h.cpu(), h.pmem(), h.cost(), inst.pid);
  co_await inst.vm->RegisterRegion("ram", RegionType::kRam, 0, inst.layout.ram_bytes);
  co_await inst.vm->RegisterRegion("image", RegionType::kImage, inst.layout.image_gpa,
                                   h.cost().image_bytes);
}

DmaMapOptions ContainerRuntime::MakeDmaOptions(ContainerInstance& inst) const {
  auto& h = *host_;
  DmaMapOptions options;
  options.pid = inst.pid;
  if (h.config().insecure_no_zeroing) {
    options.zeroing = ZeroingMode::kNone;
  } else if (h.config().decoupled_zeroing) {
    options.zeroing = ZeroingMode::kDecoupled;
    options.lazy_registry = &h.fastiovd();
  } else if (h.config().prezero_fraction > 0.0) {
    options.zeroing = ZeroingMode::kPreZeroed;
  } else {
    options.zeroing = ZeroingMode::kEager;
  }
  return options;
}

Task ContainerRuntime::MapGuestRam(ContainerInstance& inst) {
  auto& h = *host_;
  if (FaultInjector* injector = h.sim().fault_injector()) {
    // Opening the VFIO group/container fails before any state is created.
    co_await injector->MaybeInject(h.sim(), FaultSite::kVfioGroupOpen);
  }
  // A retry rebuilds the container from scratch; a failed MapDma leaves no
  // mappings behind (see VfioContainer::MapDma), so destroying the previous
  // container here cannot strand pinned frames.
  inst.vfio_container = std::make_unique<VfioContainer>(h.sim(), h.cpu(), h.cost(), h.pmem(),
                                                        h.iommu());
  if (h.config().decoupled_zeroing && h.config().instant_zero_list) {
    // Hypervisor-prewritten regions (BIOS + kernel) must be zeroed at map
    // time (§4.3.2, exception 1).
    h.fastiovd().RegisterInstantZeroRange(inst.pid, 0, inst.layout.readonly_bytes);
  }
  GuestMemoryRegion* ram = inst.vm->FindRegion("ram");
  const SimTime begin = h.sim().Now();
  std::vector<PageRun> runs;
  DmaMapOptions options = MakeDmaOptions(inst);
  options.wait_ctx = Ctx(h, inst, kStepDmaRam);
  co_await inst.vfio_container->MapDma(0, inst.layout.ram_bytes, options, &runs);
  ram->frames.AssignRuns(runs);
  ram->dma_mapped = true;
  h.timeline().RecordSpan(inst.timeline_id, kStepDmaRam, begin, h.sim().Now());
}

Task ContainerRuntime::MapGuestImage(ContainerInstance& inst) {
  auto& h = *host_;
  GuestMemoryRegion* image = inst.vm->FindRegion("image");
  if (h.config().skip_image_mapping) {
    // FastIOV §4.3.1: the hypervisor is told about the image region and
    // falls back to its non-DMA logic — here, the host-shared page-cache
    // copy backs the region, with no per-VM mapping work at all.
    image->frames.AssignPages(h.shared_image_frames());
    image->shared_backing = true;
    co_return;
  }
  const SimTime begin = h.sim().Now();
  if (h.config().decoupled_zeroing && h.config().instant_zero_list) {
    // The image is hypervisor-written before launch, so with decoupled
    // zeroing it must be on the instant list (or be skipped entirely).
    h.fastiovd().RegisterInstantZeroRange(inst.pid, inst.layout.image_gpa,
                                          h.cost().image_bytes);
  }
  std::vector<PageRun> runs;
  DmaMapOptions options = MakeDmaOptions(inst);
  options.wait_ctx = Ctx(h, inst, kStepDmaImage);
  co_await inst.vfio_container->MapDma(inst.layout.image_gpa, h.cost().image_bytes, options,
                                       &runs);
  image->frames.AssignRuns(runs);
  image->dma_mapped = true;
  h.timeline().RecordSpan(inst.timeline_id, kStepDmaImage, begin, h.sim().Now());
}

Task ContainerRuntime::RegisterVfioDevice(ContainerInstance& inst) {
  auto& h = *host_;
  auto& rng = h.sim().rng();
  const WaitCtx ctx = Ctx(h, inst, kStepVfioDev);

  if (h.config().use_vdpa) {
    // §7: the VF is registered with the vDPA framework instead of being
    // opened through VFIO — no devset lock is involved at all.
    const SimTime begin = h.sim().Now();
    co_await h.vdpa_bus().AddDevice(inst.vf, ctx);
    h.timeline().RecordSpan(inst.timeline_id, kStepVfioDev, begin, h.sim().Now());
    inst.vfio_container->domain()->AttachDevice(inst.vf->id());
    inst.vf->set_assigned_pid(inst.pid);
    co_await h.cpu().Compute(rng.Jitter(h.cost().vfio_attach_misc_cpu, h.cost().jitter_sigma),
                             ctx);
    co_return;
  }

  if (h.config().cni == CniKind::kVanillaUnfixed) {
    // Unbind from the host driver and rebind to VFIO — the costly rebinding
    // stage the fixed CNI eliminates (§5). A retry after OpenDevice failed
    // keeps the devset entry from the first attempt.
    if (inst.vfio_dev == nullptr) {
      co_await h.device_bind_lock().Lock(ctx);
      co_await h.cpu().Compute(rng.Jitter(h.cost().vfio_rebind_crit, h.cost().jitter_sigma),
                               ctx);
      h.device_bind_lock().Unlock();
      co_await h.cpu().Compute(rng.Jitter(h.cost().vfio_rebind_cpu, h.cost().jitter_sigma),
                               ctx);
      inst.vfio_dev = h.devset().AddDevice(inst.vf);
    }
  } else {
    // Pre-bound at host boot (§5 fix): devset index == VF index.
    inst.vfio_dev = h.devset().device(inst.vf->vf_index());
  }

  // VFIO device registration: Fig. 5's dominant 4-vfio-dev step.
  {
    const SimTime begin = h.sim().Now();
    co_await h.devset().OpenDevice(inst.vfio_dev, ctx);
    inst.vfio_dev_open = true;
    h.timeline().RecordSpan(inst.timeline_id, kStepVfioDev, begin, h.sim().Now());
  }
  inst.vfio_container->domain()->AttachDevice(inst.vf->id());
  inst.vf->set_assigned_pid(inst.pid);

  // Interrupt routing, PCIe emulation, etc.
  co_await h.cpu().Compute(rng.Jitter(h.cost().vfio_attach_misc_cpu, h.cost().jitter_sigma),
                           ctx);
}

Task ContainerRuntime::LoadGuestImageAndKernel(ContainerInstance& inst) {
  auto& h = *host_;
  GuestMemoryRegion* ram = inst.vm->FindRegion("ram");
  const uint64_t page_size = h.pmem().page_size();
  const uint64_t ro_pages = inst.layout.readonly_bytes / page_size;

  // For a VM without DMA-mapped RAM the kernel pages are allocated on the
  // hypervisor's host page faults (allocate + host zeroing).
  std::vector<uint64_t> missing;
  for (uint64_t i = 0; i < ro_pages; ++i) {
    if (ram->frames.Get(i) == kInvalidPage) {
      missing.push_back(i);
    }
  }
  if (!missing.empty()) {
    std::vector<PageRun> fresh;
    co_await h.pmem().RetrievePages(inst.pid, missing.size(), &fresh);
    co_await h.pmem().ZeroPages(fresh);
    size_t mi = 0;
    for (const PageRun& run : fresh) {
      for (PageId frame = run.first; frame < run.first + run.count; ++frame) {
        ram->frames.Set(missing[mi++], frame);
      }
    }
  }
  co_await h.cpu().Compute(
      h.sim().rng().Jitter(h.cost().hypervisor_prewrite_cpu, h.cost().jitter_sigma));
  // Hypervisor data writes bypass the EPT (§4.3.2, exception 1).
  inst.vm->HostWritePages(*ram, 0, ro_pages);

  GuestMemoryRegion* image = inst.vm->FindRegion("image");
  if (image->dma_mapped) {
    // Image content is copied into the VM's private, already-mapped frames.
    inst.vm->HostWritePages(*image, 0, image->frames.size());
  }
  // Shared-backed image frames already hold the page-cache content.
}

Task ContainerRuntime::BootGuest(ContainerInstance& inst) {
  auto& h = *host_;
  if (FaultInjector* injector = h.sim().fault_injector()) {
    co_await injector->MaybeInject(h.sim(), FaultSite::kGuestBoot);
  }
  // Recounted in full per boot attempt, so a retried boot cannot
  // double-count the same corrupted pages.
  inst.kernel_corruptions = 0;
  co_await h.cpu().Compute(h.sim().rng().Jitter(h.cost().guest_boot_cpu, h.cost().jitter_sigma));
  // Execute kernel/BIOS code: first guest accesses EPT-fault these pages.
  co_await inst.vm->TouchRange(0, inst.layout.readonly_bytes, /*write=*/false);
  // A correctly configured stack never zeroes hypervisor-prewritten pages;
  // if it did (instant-zero list disabled), the kernel is gone and the VM
  // would crash — we count instead of aborting so tests can assert on it.
  GuestMemoryRegion* ram = inst.vm->FindRegion("ram");
  const uint64_t ro_pages = inst.layout.readonly_bytes / h.pmem().page_size();
  for (uint64_t i = 0; i < ro_pages; ++i) {
    if (h.pmem().frame(ram->frames.Get(i)).content != PageContent::kData) {
      ++inst.kernel_corruptions;
    }
  }
  // Boot-time dirty working set.
  co_await inst.vm->TouchRange(inst.layout.boot_ws_gpa, inst.layout.boot_ws_bytes,
                               /*write=*/true);
}

Task ContainerRuntime::NetworkInit(ContainerInstance& inst, bool off_critical_path) {
  auto& h = *host_;
  if (h.config().use_vdpa) {
    const SimTime begin = h.sim().Now();
    co_await inst.vnet_driver->Initialize();
    h.timeline().RecordSpan(inst.timeline_id, kStepVfDriver, begin, h.sim().Now(),
                            off_critical_path);
    co_await inst.vnet_driver->AssignAddresses();
    co_return;
  }
  {
    const SimTime begin = h.sim().Now();
    co_await inst.driver->Initialize(h.config().driver_zeroes_dma_buffers);
    h.timeline().RecordSpan(inst.timeline_id, kStepVfDriver, begin, h.sim().Now(),
                            off_critical_path);
  }
  // Link negotiation proceeds in the background even in the serial flow.
  // The process handle is kept so teardown can join it (a detached link-up
  // process would otherwise race container teardown and touch freed state).
  inst.link_up = h.sim().Spawn(SupervisedLinkUp(inst), "link-up");
  co_await inst.driver->AssignAddresses();
}

Task ContainerRuntime::SupervisedLinkUp(ContainerInstance& inst) {
  auto& h = *host_;
  FaultInjector* injector = h.sim().fault_injector();
  const StackConfig& cfg = h.config();
  const SimTime link_begin = h.sim().Now();
  SimTime backoff = cfg.fault_backoff_initial;
  int attempt = 0;
  bool had_fault = false;
  for (;;) {
    bool retry = false;
    bool give_up = false;
    try {
      co_await inst.driver->BringUpLink(Ctx(h, inst, "link-up"));
    } catch (const FaultError& e) {
      if (e.transient() && attempt < cfg.fault_retry_limit) {
        retry = true;
      } else {
        give_up = true;
      }
    }
    if (give_up) {
      // Out of options: fail the link permanently so the agent's poll loop
      // and any interface waiters terminate instead of spinning forever.
      inst.driver->MarkLinkFailed();
      h.timeline().RecordAuxSpan(inst.timeline_id, "link-up", link_begin, h.sim().Now());
      co_return;
    }
    if (!retry) {
      break;
    }
    had_fault = true;
    ++attempt;
    if (injector != nullptr) {
      injector->NoteRetry(FaultSite::kVfLinkUp, h.sim().Now());
    }
    co_await h.sim().Delay(backoff);
    backoff = std::min(backoff * cfg.fault_backoff_multiplier, cfg.fault_backoff_max);
  }
  if (had_fault && injector != nullptr) {
    injector->NoteRecovered(FaultSite::kVfLinkUp, h.sim().Now());
  }
  h.timeline().RecordAuxSpan(inst.timeline_id, "link-up", link_begin, h.sim().Now());
}

Task ContainerRuntime::AsyncNetworkInit(ContainerInstance& inst) {
  auto& h = *host_;
  bool failed = false;
  try {
    co_await NetworkInit(inst, /*off_critical_path=*/true);
  } catch (const FaultError&) {
    failed = true;
  }
  if (!failed) {
    co_return;
  }
  inst.net_failed = true;
  if (inst.ready && !inst.terminated) {
    // The container already reported ready; a permanent network failure
    // surfaces as an in-place abort.
    if (FaultInjector* injector = h.sim().fault_injector()) {
      injector->NoteAborted(FaultSite::kVfLinkUp, h.sim().Now());
    }
    co_await AbortContainer(inst, /*from_async=*/true);
  }
  // Before ready, StartPipeline's tail check converts net_failed into a
  // pipeline failure and the main path unwinds.
}

Task ContainerRuntime::FinalSetup(ContainerInstance& inst) {
  auto& h = *host_;
  inst.virtiofs = std::make_unique<VirtioFs>(h.sim(), h.cpu(), h.cost(), *inst.vm,
                                             h.virtiofs_bandwidth(),
                                             inst.layout.virtiofs_buffer_gpa,
                                             inst.layout.virtiofs_buffer_bytes);
  co_await h.cpu().Compute(
      h.sim().rng().Jitter(h.cost().virtiofs_mount_cpu, h.cost().jitter_sigma));
  // The agent pulls container metadata/rootfs bits over virtioFS — the
  // para-virtualized transfer whose buffers FastIOV proactively faults.
  co_await inst.virtiofs->GuestReadFile(16 * kMiB, h.config().proactive_virtio_faults);
  co_await h.cpu().Compute(
      h.sim().rng().Jitter(h.cost().agent_final_setup_cpu, h.cost().jitter_sigma));
}

Task ContainerRuntime::RunApp(ContainerInstance& inst, const ServerlessApp& app) {
  auto& h = *host_;
  if (inst.terminated) {
    co_return;
  }
  // The task body begins by fetching its input; the agent has ensured the
  // interface is available by now (async flow waits here if it is not).
  if (h.config().UsesSriov() && h.config().use_vdpa) {
    if (!inst.vnet_driver->interface_up()) {
      co_await inst.vnet_driver->up_event().Wait();
    }
    co_await inst.vnet_driver->Receive(app.input_bytes);
  } else if (h.config().UsesSriov()) {
    if (!inst.driver->interface_up()) {
      co_await inst.driver->up_event().Wait();
    }
    if (inst.terminated || inst.driver->link_failed()) {
      // The link failed permanently (the container is aborting or already
      // aborted): the task cannot fetch its input.
      co_return;
    }
    co_await inst.driver->Receive(app.input_bytes);
  } else if (h.config().cni == CniKind::kIpvtap) {
    // Emulated data plane: wire time plus a host-side copy into guest
    // memory via the para-virtual path.
    co_await h.ipvtap_bandwidth().Transfer(static_cast<double>(app.input_bytes));
    co_await inst.vm->TouchRange(inst.layout.nic_ring_gpa,
                                 std::min<uint64_t>(app.input_bytes, inst.layout.nic_ring_bytes),
                                 /*write=*/true);
  }
  if (inst.terminated) {
    // Aborted while the input was in flight; the VM's memory is gone.
    co_return;
  }
  // Dirty the task's working set, then compute under the vCPU cap and the
  // host's logical-core capacity.
  co_await inst.vm->TouchRange(inst.layout.app_ws_gpa, app.working_set_bytes, /*write=*/true);
  co_await h.guest_cpu().Transfer(app.compute_cpu_seconds, h.config().vcpus);
}

Task ContainerRuntime::StartPipeline(ContainerInstance& inst) {
  auto& h = *host_;
  co_await SetupCgroup(inst);
  co_await RunPhaseWithRecovery(h, inst, [&] { return SetupNamespaceAndCni(inst); });
  // Kata starts virtiofsd before launching the hypervisor.
  co_await RunPhaseWithRecovery(h, inst, [&] { return SetupVirtioFsDaemon(inst); });
  co_await RunPhaseWithRecovery(h, inst, [&] { return CreateMicroVm(inst); });

  // QEMU machine init: guest RAM and the image region are DMA-mapped,
  // then the VFIO device itself is registered (Fig. 4 / Fig. 5).
  if (h.config().UsesSriov()) {
    if (h.config().decoupled_zeroing) {
      inst.vm->SetFaultHook(&h.fastiovd());
    }
    co_await RunPhaseWithRecovery(h, inst, [&] { return MapGuestRam(inst); });
    co_await RunPhaseWithRecovery(h, inst, [&] { return MapGuestImage(inst); });
    co_await RunPhaseWithRecovery(h, inst, [&] { return RegisterVfioDevice(inst); });
  } else {
    // No passthrough I/O: the image is shared page cache here too.
    GuestMemoryRegion* image = inst.vm->FindRegion("image");
    image->frames.AssignPages(h.shared_image_frames());
    image->shared_backing = true;
  }

  co_await LoadGuestImageAndKernel(inst);
  co_await RunPhaseWithRecovery(h, inst, [&] { return BootGuest(inst); });

  if (h.config().UsesSriov()) {
    if (h.config().use_vdpa) {
      inst.vnet_driver = std::make_unique<VirtioNetDriver>(
          h.sim(), h.cpu(), h.cost(), *inst.vm, *inst.vf, h.nic(),
          *inst.vfio_container->domain(), inst.layout.nic_ring_gpa,
          inst.layout.nic_ring_bytes);
    } else {
      inst.driver = std::make_unique<VfDriver>(h.sim(), h.cpu(), h.cost(), *inst.vm, *inst.vf,
                                               h.nic(), *inst.vfio_container->domain(),
                                               inst.layout.nic_ring_gpa,
                                               inst.layout.nic_ring_bytes);
    }
    if (h.config().async_vf_init) {
      // §4.2.2: overlap network initialization with the remaining setups.
      // Link-up faults retry inside SupervisedLinkUp; NetworkInit itself is
      // not re-runnable (it spawns the link process), so it is not wrapped.
      inst.async_net = h.sim().Spawn(AsyncNetworkInit(inst), "async-net");
    } else {
      co_await NetworkInit(inst, /*off_critical_path=*/false);
    }
  }

  co_await FinalSetup(inst);
  if (inst.net_failed) {
    // The asynchronous network init failed permanently before the container
    // reported ready: the start as a whole fails.
    throw FaultError(FaultSite::kVfLinkUp, /*transient=*/false);
  }
}

Task ContainerRuntime::StartContainer(const ServerlessApp* app, ContainerInstance** out_inst) {
  auto& h = *host_;
  auto inst_owner = std::make_unique<ContainerInstance>();
  ContainerInstance& inst = *inst_owner;
  inst.cid = next_cid_++;
  inst.pid = next_pid_++;
  inst.timeline_id = h.timeline().RegisterContainer(h.sim().Now());
  inst.layout = GuestLayout::For(h.config().guest_memory_bytes, h.cost().image_bytes,
                                 h.cost().readonly_region_bytes, h.pmem().page_size());
  instances_.push_back(std::move(inst_owner));
  if (out_inst != nullptr) {
    *out_inst = &inst;
  }

  bool failed = false;
  FaultSite fail_site = FaultSite::kPhaseTimeout;
  try {
    co_await StartPipeline(inst);
  } catch (const FaultError& e) {
    failed = true;
    fail_site = e.site();
  }
  if (failed) {
    if (FaultInjector* injector = h.sim().fault_injector()) {
      injector->NoteAborted(fail_site, h.sim().Now());
    }
    co_await AbortContainer(inst);
    co_return;
  }

  inst.ready = true;
  h.timeline().MarkReady(inst.timeline_id, h.sim().Now());

  if (app != nullptr) {
    co_await RunApp(inst, *app);
    if (!inst.terminated) {
      h.timeline().MarkTaskDone(inst.timeline_id, h.sim().Now());
    }
  }
}

Task ContainerRuntime::StopContainer(ContainerInstance& inst) {
  auto& h = *host_;
  if (inst.terminated) {
    co_return;
  }
  // An asynchronously initializing network must finish before the VF can be
  // detached safely, and the supervised link-up process must not outlive the
  // driver/VF state it references.
  co_await inst.async_net.Join();
  co_await inst.link_up.Join();
  if (inst.terminated) {
    // The async initializer aborted the container while we waited.
    co_return;
  }
  co_await h.cpu().Compute(
      h.sim().rng().Jitter(h.cost().container_teardown_cpu, h.cost().jitter_sigma));
  if (inst.vfio_dev != nullptr) {
    if (inst.vfio_dev_open) {
      co_await h.devset().CloseDevice(inst.vfio_dev);
      inst.vfio_dev_open = false;
    }
    inst.vfio_dev = nullptr;
  }
  if (inst.vfio_container) {
    inst.vfio_container->UnmapAll();
  }
  h.fastiovd().ForgetVm(inst.pid);
  if (inst.vm) {
    inst.vm->ReleaseMemory();
  }
  if (inst.vf != nullptr) {
    h.nic().ReleaseVf(inst.vf);
    inst.vf = nullptr;
  }
  inst.vfio_container.reset();
  inst.ready = false;
  inst.terminated = true;
  inst.teardown_done = true;
}

Task ContainerRuntime::AbortContainer(ContainerInstance& inst, bool from_async) {
  auto& h = *host_;
  if (inst.terminated) {
    co_return;
  }
  inst.terminated = true;
  inst.aborted = true;
  inst.ready = false;
  // A still-running async initializer must finish before its VF and driver
  // state can be torn down — unless we ARE that process (self-join hangs).
  if (!from_async) {
    co_await inst.async_net.Join();
  }
  co_await inst.link_up.Join();
  // Teardown CPU charge without jitter: the abort path only runs under fault
  // injection and must not consume draws from the main RNG stream.
  co_await h.cpu().Compute(h.cost().container_teardown_cpu);
  // Unwind exactly what was set up. Each member is only non-null/true if the
  // corresponding setup step completed, so the order below is the reverse of
  // the pipeline with every step conditional.
  if (inst.vfio_dev != nullptr && inst.vfio_dev_open) {
    co_await h.devset().CloseDevice(inst.vfio_dev);
  }
  inst.vfio_dev = nullptr;
  inst.vfio_dev_open = false;
  if (inst.vfio_container) {
    inst.vfio_container->UnmapAll();
  }
  h.fastiovd().ForgetVm(inst.pid);
  if (inst.vm) {
    inst.vm->ReleaseMemory();
  } else {
    // No VM yet: frames may still sit in this pid's refill cache.
    h.pmem().DrainRefillCache(inst.pid);
  }
  if (inst.vf != nullptr) {
    // FLR the VF before recycling it; a fault during the reset itself must
    // not leak the VF.
    try {
      co_await h.nic().ResetVf(inst.vf);
    } catch (const FaultError&) {
    }
    h.nic().ReleaseVf(inst.vf);
    inst.vf = nullptr;
  }
  inst.vfio_container.reset();
  inst.teardown_done = true;
}

namespace {

uint64_t InstanceResidueReads(const ContainerInstance& inst) {
  return inst.vm ? inst.vm->residue_reads() : 0;
}

uint64_t InstanceCorruptions(const ContainerInstance& inst) {
  uint64_t total = inst.kernel_corruptions;
  if (inst.virtiofs) {
    total += inst.virtiofs->corrupted_reads();
  }
  if (inst.driver) {
    total += inst.driver->corrupted_reads();
  }
  if (inst.vnet_driver) {
    total += inst.vnet_driver->corrupted_reads();
  }
  return total;
}

}  // namespace

size_t ContainerRuntime::ReapTerminated() {
  size_t reaped = 0;
  auto it = instances_.begin();
  while (it != instances_.end()) {
    ContainerInstance& inst = **it;
    // Only records whose teardown is fully settled: terminated with the
    // Stop/Abort coroutine run to completion (an abort sets `terminated`
    // immediately but keeps unwinding across suspensions), and neither
    // supervision process still running (a from_async abort can leave its
    // own process mid-flight for one more event).
    if (!inst.terminated || !inst.teardown_done || !inst.async_net.Done() ||
        !inst.link_up.Done()) {
      ++it;
      continue;
    }
    reaped_residue_reads_ += InstanceResidueReads(inst);
    reaped_corruptions_ += InstanceCorruptions(inst);
    if (inst.aborted) {
      ++reaped_aborted_;
    }
    ++reaped_count_;
    ++reaped;
    it = instances_.erase(it);
  }
  return reaped;
}

uint64_t ContainerRuntime::TotalResidueReads() const {
  uint64_t total = reaped_residue_reads_;
  for (const auto& inst : instances_) {
    total += InstanceResidueReads(*inst);
  }
  return total;
}

uint64_t ContainerRuntime::TotalCorruptions() const {
  uint64_t total = reaped_corruptions_;
  for (const auto& inst : instances_) {
    total += InstanceCorruptions(*inst);
  }
  return total;
}

uint64_t ContainerRuntime::AbortedContainers() const {
  uint64_t total = reaped_aborted_;
  for (const auto& inst : instances_) {
    if (inst->aborted) {
      ++total;
    }
  }
  return total;
}

}  // namespace fastiov
