// Configuration of the container network stack under test: which CNI, which
// FastIOV optimizations, which baseline knobs (§6.1).
#ifndef SRC_CONTAINER_STACK_CONFIG_H_
#define SRC_CONTAINER_STACK_CONFIG_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/config/cost_model.h"

namespace fastiov {

enum class CniKind {
  kNoNetwork,       // "No network" lower bound
  kVanillaUnfixed,  // original SR-IOV CNI with the §5 bind/rebind flaw
  kVanillaFixed,    // SR-IOV CNI with pre-bound VFIO ("Vanilla" everywhere)
  kFastIov,         // the FastIOV CNI plugin
  kIpvtap,          // basic software CNI (Fig. 14)
};

const char* CniKindName(CniKind kind);

struct StackConfig {
  std::string name = "vanilla";
  CniKind cni = CniKind::kVanillaFixed;

  // The four FastIOV optimizations (§4.1): Lock decomposition, Asynchronous
  // VF-driver init, mapping Skipping, Decoupled zeroing.
  bool lock_decomposition = false;
  bool async_vf_init = false;
  bool skip_image_mapping = false;
  bool decoupled_zeroing = false;

  // Memory pre-zeroing baseline (HawkEye-style): fraction of free memory
  // pre-zeroed during idle time. Only meaningful with eager zeroing.
  double prezero_fraction = 0.0;

  // Correctness knobs (failure injection for the §4.3.2 exceptions).
  bool insecure_no_zeroing = false;      // skip zeroing entirely (ablation)
  bool instant_zero_list = true;         // exception 1: hypervisor pre-writes
  bool proactive_virtio_faults = true;   // exception 2: virtio buffer fills
  bool driver_zeroes_dma_buffers = true;  // exception 3: NIC DMA rings

  // §7 extension: expose the VF to the guest through vDPA + the standard
  // virtio-net driver instead of the vendor passthrough driver.
  bool use_vdpa = false;

  // Per-container resources.
  uint64_t guest_memory_bytes = 512 * kMiB;
  double vcpus = 0.5;
  bool hugepages = true;

  // Recovery policy for injected pipeline faults (src/fault): transient
  // faults are retried up to fault_retry_limit times per phase with
  // exponential backoff; a permanent fault or exhausted retries abort the
  // container start via AbortContainer.
  int fault_retry_limit = 3;
  SimTime fault_backoff_initial = Milliseconds(5);
  double fault_backoff_multiplier = 2.0;
  SimTime fault_backoff_max = Milliseconds(250);
  // Per-phase deadline, checked after the phase (including retries)
  // completes; exceeding it aborts the start. Zero disables the check.
  SimTime phase_timeout = SimTime::Zero();

  // --- factory functions for the paper's baselines ---
  static StackConfig NoNetwork();
  static StackConfig VanillaUnfixed();
  static StackConfig Vanilla();
  static StackConfig FastIov();
  // FastIOV with one optimization removed: 'L', 'A', 'S' or 'D' (Fig. 11).
  static StackConfig FastIovWithout(char removed);
  // FastIOV over vDPA (§7): standard virtio guest driver, no vendor driver.
  static StackConfig FastIovVdpa();
  // Pre-zeroing baselines Pre10/Pre50/Pre100.
  static StackConfig PreZero(double fraction);
  static StackConfig Ipvtap();
  // Resolves a baseline by name ("vanilla", "fastiov", "fastiov-L",
  // "fastiov-vdpa", "nonet", "ipvtap", "unfixed", "pre50", ...);
  // case-insensitive. nullopt for unknown names.
  static std::optional<StackConfig> FromName(const std::string& name);

  bool UsesSriov() const {
    return cni == CniKind::kVanillaUnfixed || cni == CniKind::kVanillaFixed ||
           cni == CniKind::kFastIov;
  }
};

}  // namespace fastiov

#endif  // SRC_CONTAINER_STACK_CONFIG_H_
