#include "src/container/stack_config.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <cstdio>

namespace fastiov {

const char* CniKindName(CniKind kind) {
  switch (kind) {
    case CniKind::kNoNetwork:
      return "no-network";
    case CniKind::kVanillaUnfixed:
      return "sriov-cni-unfixed";
    case CniKind::kVanillaFixed:
      return "sriov-cni";
    case CniKind::kFastIov:
      return "fastiov-cni";
    case CniKind::kIpvtap:
      return "ipvtap";
  }
  return "?";
}

StackConfig StackConfig::NoNetwork() {
  StackConfig c;
  c.name = "No-Net";
  c.cni = CniKind::kNoNetwork;
  return c;
}

StackConfig StackConfig::VanillaUnfixed() {
  StackConfig c;
  c.name = "Vanilla-unfixed";
  c.cni = CniKind::kVanillaUnfixed;
  return c;
}

StackConfig StackConfig::Vanilla() {
  StackConfig c;
  c.name = "Vanilla";
  c.cni = CniKind::kVanillaFixed;
  return c;
}

StackConfig StackConfig::FastIov() {
  StackConfig c;
  c.name = "FastIOV";
  c.cni = CniKind::kFastIov;
  c.lock_decomposition = true;
  c.async_vf_init = true;
  c.skip_image_mapping = true;
  c.decoupled_zeroing = true;
  return c;
}

StackConfig StackConfig::FastIovWithout(char removed) {
  StackConfig c = FastIov();
  switch (removed) {
    case 'L':
      c.name = "FastIOV-L";
      c.lock_decomposition = false;
      break;
    case 'A':
      c.name = "FastIOV-A";
      c.async_vf_init = false;
      break;
    case 'S':
      c.name = "FastIOV-S";
      c.skip_image_mapping = false;
      break;
    case 'D':
      c.name = "FastIOV-D";
      c.decoupled_zeroing = false;
      break;
    default:
      assert(false && "removed must be one of L/A/S/D");
  }
  return c;
}

StackConfig StackConfig::FastIovVdpa() {
  StackConfig c = FastIov();
  c.name = "FastIOV-vDPA";
  c.use_vdpa = true;
  return c;
}

StackConfig StackConfig::PreZero(double fraction) {
  StackConfig c = Vanilla();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "Pre%d", static_cast<int>(fraction * 100.0 + 0.5));
  c.name = buf;
  c.prezero_fraction = fraction;
  return c;
}

StackConfig StackConfig::Ipvtap() {
  StackConfig c;
  c.name = "IPvtap";
  c.cni = CniKind::kIpvtap;
  return c;
}

std::optional<StackConfig> StackConfig::FromName(const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "vanilla") {
    return Vanilla();
  }
  if (lower == "fastiov") {
    return FastIov();
  }
  if (lower == "fastiov-l" || lower == "fastiov-a" || lower == "fastiov-s" ||
      lower == "fastiov-d") {
    return FastIovWithout(static_cast<char>(std::toupper(lower.back())));
  }
  if (lower == "fastiov-vdpa" || lower == "vdpa") {
    return FastIovVdpa();
  }
  if (lower == "nonet" || lower == "no-net" || lower == "none") {
    return NoNetwork();
  }
  if (lower == "ipvtap") {
    return Ipvtap();
  }
  if (lower == "unfixed" || lower == "vanilla-unfixed") {
    return VanillaUnfixed();
  }
  if (lower.rfind("pre", 0) == 0 && lower.size() > 3) {
    const double pct = std::strtod(lower.c_str() + 3, nullptr);
    if (pct > 0.0 && pct <= 100.0) {
      return PreZero(pct / 100.0);
    }
  }
  return std::nullopt;
}

}  // namespace fastiov
