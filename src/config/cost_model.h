// Calibrated cost model for the simulated testbed.
//
// The paper's testbed (§3.1): dual-socket Intel Xeon Gold 6348 (2 x 28 cores,
// hyper-threading on), 256 GB DDR4-3200, Intel E810 25 GbE NIC with 256 VFs,
// CentOS 7 / Linux 6.4, Kata v3.2 + Kata-QEMU, 0.5 vCPU + 512 MB per
// container, 2 MB hugepages.
//
// Every latency constant below is the *uncontended* cost of one operation;
// contention (lock queueing, CPU-core waves, shared memory/NIC bandwidth) is
// produced by the simulation, not baked into the constants. Values are
// calibrated so the vanilla/200-container run reproduces the paper's shape:
//   - vanilla average startup  ~16.2 s (§5), no-net average ~4 s (Fig. 1)
//   - step shares of Tab. 1 (4-vfio-dev 48.1%, 1-dma-ram 13.0%, ...)
//   - zeroing >93% of DMA-mapping time with hugepages (§3.2.3)
//   - fastest no-net container at concurrency 10 ~460 ms (Fig. 1)
#ifndef SRC_CONFIG_COST_MODEL_H_
#define SRC_CONFIG_COST_MODEL_H_

#include <cstdint>

#include "src/simcore/time.h"

namespace fastiov {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

inline constexpr uint64_t kSmallPageSize = 4 * kKiB;
inline constexpr uint64_t kHugePageSize = 2 * kMiB;

// Hardware description of the simulated server.
struct HostSpec {
  int physical_cores = 56;          // 2 x 28
  int logical_cores = 112;          // hyper-threading on
  uint64_t memory_bytes = 256 * kGiB;
  // Page-zeroing throughput of one uncontended thread (streaming stores to
  // cold huge pages)...
  double per_thread_zeroing_bps = 1.1 * static_cast<double>(kGiB);
  // ...and the aggregate DRAM write bandwidth all concurrent zeroing
  // threads share. ~11 threads saturate it; with 200 containers zeroing
  // 512 MiB each this cap is what stretches DMA mapping (§3.2.3).
  double zeroing_dram_bandwidth_bps = 34.0 * static_cast<double>(kGiB);
  // 25 GbE NIC, usable bandwidth (bytes/s).
  double nic_bandwidth_bps = 25e9 / 8.0 * 0.94;
  int num_vfs = 256;  // E810 VF limit
  // Dual-socket NUMA: memory is split across nodes; a container prefers its
  // node's frames, spilling to the remote node when local memory runs out.
  // Remote zeroing streams across the socket interconnect at a penalty.
  int numa_nodes = 2;
  double remote_zeroing_penalty = 1.45;
  // Home-node policy: true spreads containers round-robin across sockets
  // (kubelet's default); false packs them onto node 0 first (CPU-manager
  // packing), which is what provokes cross-socket spillover under pressure.
  bool numa_interleave_homes = true;
};

// Per-operation latencies. "cpu" costs occupy a core; "crit" costs are spent
// inside the named lock's critical section (occupying a core as well).
struct CostModel {
  // --- cgroup initialization (0-cgroup) ---
  SimTime cgroup_cpu = Milliseconds(80);          // hierarchy + controllers setup
  SimTime cgroup_lock_crit = Microseconds(1600);   // kernel cgroup_mutex section

  // --- network namespace + CNI plugin ---
  SimTime nns_create_cpu = Milliseconds(8);
  SimTime cni_vf_config_cpu = Milliseconds(6);     // PF driver: set VF params
  SimTime pf_driver_lock_crit = Microseconds(800);
  SimTime cni_dummy_netdev_cpu = Milliseconds(4);  // FastIOV/fixed CNI dummy interface
  SimTime cni_nns_move_cpu = Milliseconds(2);
  // Vanilla (unfixed) CNI only: bind VF to host netdev driver, then unbind
  // and rebind to VFIO at attach time. Each (re)bind does a device reset and
  // driver probe, serialized on the device lock (§5: "several minutes").
  SimTime host_driver_bind_cpu = Milliseconds(60);
  SimTime host_driver_bind_crit = Milliseconds(450);  // device_lock + probe + reset, serialized
  SimTime vfio_rebind_cpu = Milliseconds(40);
  SimTime vfio_rebind_crit = Milliseconds(300);

  // --- virtioFS (2-virtiofs) ---
  SimTime virtiofs_daemon_cpu = Milliseconds(600);  // virtiofsd start + shared dir setup
  // vhost-user socket registration and shared-dir bookkeeping serialize on
  // a host-wide lock, which is what stretches this step at concurrency 200.
  SimTime virtiofs_lock_crit = Milliseconds(2);
  SimTime virtiofs_mount_cpu = Milliseconds(60);

  // --- hypervisor / microVM ---
  SimTime qemu_start_cpu = Milliseconds(100);       // process + machine model build
  SimTime hypervisor_prewrite_cpu = Milliseconds(60);   // load BIOS/kernel into RAM
  SimTime guest_boot_cpu = Milliseconds(160);       // trimmed guest kernel boot
  SimTime agent_final_setup_cpu = Milliseconds(200);  // kata-agent init, mounts, sandbox ready

  // --- VFIO device registration (4-vfio-dev) ---
  // Critical section of one VF open under the devset lock: PCI bus scan over
  // all sibling devices plus open-count bookkeeping. The E810 exposes no
  // slot-level reset (§3.2.2), so all 256 VFs share one devset.
  SimTime vfio_pci_scan_per_device = Microseconds(365);
  SimTime vfio_open_bookkeeping = Milliseconds(2);
  SimTime vfio_device_fd_cpu = Milliseconds(3);     // fd setup, region info queries
  SimTime vfio_attach_misc_cpu = Milliseconds(24);  // interrupts, PCIe emulation

  // --- DMA memory mapping (1-dma-ram / 3-dma-image) ---
  SimTime page_retrieve_batch = Microseconds(18);   // per contiguous batch
  SimTime page_pin = Microseconds(9);               // per page
  SimTime iommu_map_entry = Microseconds(6);        // per page-table entry
  // Zeroing throughput is taken from HostSpec::zeroing_bandwidth_bps.

  // --- VF driver initialization in the guest (5-vf-driver) ---
  SimTime vf_pci_enumeration_cpu = Milliseconds(120);
  SimTime vf_netdev_register_cpu = Milliseconds(80);
  SimTime vf_configure_link_cpu = Milliseconds(160);
  // Guest agent: MAC/IP assignment, then wait for the interface to become
  // available; the availability wait is what §3.2.4 calls "a few hundred
  // milliseconds up to seconds".
  SimTime agent_ip_assign_cpu = Milliseconds(40);
  SimTime agent_poll_interval = Milliseconds(100);
  SimTime vf_link_settle = Milliseconds(420);       // firmware link negotiation
  // Link bring-up goes through the PF firmware mailbox, one VF at a time;
  // at high concurrency this queue is the §3.2.4 availability wait.
  SimTime pf_mailbox_crit = Milliseconds(26);

  // --- FastIOV-specific costs ---
  SimTime fastiovd_table_insert = Microseconds(1);  // per page, two-tier hash table
  SimTime ept_fault_base = Microseconds(2);         // KVM exit + EPT entry insert
  SimTime fastiovd_lookup = Nanoseconds(300);       // hash-table probe per fault
  SimTime background_zero_period = Milliseconds(50);
  uint64_t background_zero_batch_pages = 32;        // hugepages per scan round

  // --- software CNI (IPvtap, Fig. 14) ---
  SimTime ipvtap_create_cpu = Milliseconds(22);     // device create + config
  SimTime ipvtap_rtnl_crit = Milliseconds(62);      // kernel rtnl-style global lock
  SimTime ipvtap_cgroup_extra_crit = Milliseconds(20);  // extra cgroup contention [42]
  double ipvtap_bandwidth_bps = 9e9 / 8.0;          // emulated data plane, ~9 Gbps

  // Completion interrupts are relayed through the hypervisor (§2.2):
  // VM exit + injection + guest wakeup.
  SimTime interrupt_relay = Microseconds(7);

  // --- vDPA (§7 extension) ---
  // vDPA keeps the SR-IOV hardware data plane but exposes the device to the
  // guest through the standard virtio driver; the vendor-specific guest
  // driver (and its firmware-mailbox link dance) disappears.
  SimTime vdpa_dev_add_cpu = Milliseconds(14);     // host: vdpa dev add + bind
  SimTime vdpa_bus_crit = Milliseconds(3);         // vdpa bus lock
  SimTime virtio_net_probe_cpu = Milliseconds(35); // guest virtio-net probe
  SimTime virtio_feature_negotiation = Milliseconds(22);
  SimTime virtio_link_settle = Milliseconds(60);   // link via config space

  // --- teardown / recovery ---
  SimTime container_teardown_cpu = Milliseconds(55);  // cgroup/NNS removal, QEMU exit
  // VF function-level reset, issued before retrying a failed VF operation
  // and when recycling a VF out of a partially built container.
  SimTime vf_flr_cpu = Milliseconds(30);

  // --- misc ---
  double jitter_sigma = 0.10;      // lognormal sigma applied to step costs
  SimTime crictl_dispatch_gap = Microseconds(350);  // stagger between concurrent invokes

  // Guest image layout (§4.3.2): 256 MB microVM image; BIOS+kernel read-only
  // regions are ~9.4% of a 512 MB microVM => ~48 MB, instant-zeroed.
  uint64_t image_bytes = 256 * kMiB;
  uint64_t readonly_region_bytes = 48 * kMiB;
};

}  // namespace fastiov

#endif  // SRC_CONFIG_COST_MODEL_H_
