#include "src/simcore/time.h"

#include <cmath>
#include <cstdio>

namespace fastiov {

std::string SimTime::ToString() const {
  char buf[64];
  const double abs_ns = std::fabs(static_cast<double>(ns_));
  if (abs_ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ToSecondsF());
  } else if (abs_ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ToMillisF());
  } else if (abs_ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ToMicrosF());
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

}  // namespace fastiov
