// Synchronization primitives for simulated processes.
//
// These mirror the kernel primitives the paper's bottleneck analysis talks
// about: mutexes (the VFIO devset global lock), read/write locks (FastIOV's
// hierarchical framework), semaphores (bounded resources), and events
// (condition broadcast). All wakeups go through the simulation event queue,
// preserving FIFO determinism.
//
// Wait queues are intrusive FIFO lists whose nodes are the awaiter objects
// themselves. A co_await's awaiter lives in the waiting coroutine's frame
// for the whole suspension, so enqueueing a waiter allocates nothing, and
// enqueue, grant, and cancel are all O(1). A node whose frame is destroyed
// while still queued (a process torn down mid-wait on a fault-abort path)
// unlinks itself in its destructor, so a queue never holds a dangling
// handle — with the old value-based queues that removal was an O(n) scan at
// best and a use-after-free at worst.
//
// Accounting happens at *grant* time (inside await_ready for the fast path,
// inside the release path for queued waiters), so lock state is always
// consistent even while a woken waiter is still sitting in the event queue.
//
// Contention probes: a primitive can carry a LockStats* (attached by name via
// Instrument()); Lock()/LockRead()/LockWrite() accept a WaitCtx identifying
// the waiting container and pipeline phase. Probes record wait time, hold
// time, queue depth, and blocked-by edges at enqueue/grant/release. They are
// memory-only — no events, no simulated time, no RNG — so instrumented and
// uninstrumented runs are byte-identical.
#ifndef SRC_SIMCORE_SYNC_H_
#define SRC_SIMCORE_SYNC_H_

#include <coroutine>
#include <cstddef>
#include <cstdint>

#include "src/simcore/simulation.h"
#include "src/stats/blocked_time.h"
#include "src/stats/lock_stats.h"

namespace fastiov {

class WaitList;

// One queued waiter, embedded in an awaiter object (and therefore in the
// waiting coroutine's frame). Non-copyable: the queue holds its address.
struct WaitNode {
  std::coroutine_handle<> handle{};
  WaitCtx ctx{};
  SimTime enqueued{};
  bool is_writer = false;  // meaningful for SimRwLock waiters only

  WaitNode() = default;
  WaitNode(const WaitNode&) = delete;
  WaitNode& operator=(const WaitNode&) = delete;
  ~WaitNode();  // unlinks from its WaitList if still queued

 private:
  friend class WaitList;
  WaitNode* prev_ = nullptr;
  WaitNode* next_ = nullptr;
  WaitList* owner_ = nullptr;
};

// Intrusive FIFO list of WaitNodes: O(1) push, pop, and arbitrary removal.
class WaitList {
 public:
  WaitList() = default;
  WaitList(const WaitList&) = delete;
  WaitList& operator=(const WaitList&) = delete;

  bool Empty() const { return head_ == nullptr; }
  size_t size() const { return size_; }
  WaitNode* Front() const { return head_; }

  void PushBack(WaitNode* node);
  WaitNode* PopFront();
  void Remove(WaitNode* node);

 private:
  WaitNode* head_ = nullptr;
  WaitNode* tail_ = nullptr;
  size_t size_ = 0;
};

inline WaitNode::~WaitNode() {
  if (owner_ != nullptr) {
    owner_->Remove(this);
  }
}

// One-shot (resettable) broadcast event.
class SimEvent {
 public:
  explicit SimEvent(Simulation& sim) : sim_(&sim) {}

  bool IsSet() const { return set_; }

  // Wakes all current waiters at the current timestamp.
  void Set();
  void Reset() { set_ = false; }

  struct Awaiter {
    SimEvent* ev;
    WaitNode node{};
    bool await_ready() const noexcept { return ev->set_; }
    void await_suspend(std::coroutine_handle<> h) {
      node.handle = h;
      ev->waiters_.PushBack(&node);
    }
    void await_resume() const noexcept {}
  };
  Awaiter Wait() { return Awaiter{this}; }

 private:
  Simulation* sim_;
  bool set_ = false;
  WaitList waiters_;
};

// FIFO mutex. Ownership is handed directly to the next waiter on Unlock, so
// there is no barging.
class SimMutex {
 public:
  explicit SimMutex(Simulation& sim) : sim_(&sim) {}

  bool IsLocked() const { return locked_; }
  // Number of Lock() calls that had to wait; a direct contention metric.
  uint64_t contention_count() const { return contention_count_; }

  // Attaches a contention probe. Must be called before the simulation runs;
  // pass nullptr to detach.
  void Instrument(LockStats* stats) { stats_ = stats; }
  const LockStats* stats() const { return stats_; }

  struct LockAwaiter {
    SimMutex* m;
    WaitCtx ctx;
    WaitNode node{};
    bool await_ready() noexcept {
      if (!m->locked_) {
        m->locked_ = true;
        if (m->stats_ != nullptr) {
          m->stats_->OnAcquireFast();
          m->holder_lane_ = ctx.lane;
          m->acquired_at_ = m->sim_->Now();
        }
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ++m->contention_count_;
      if (m->stats_ != nullptr) {
        m->stats_->OnEnqueue(m->waiters_.size() + 1);
      }
      node.handle = h;
      node.ctx = ctx;
      node.enqueued = m->sim_->Now();
      m->waiters_.PushBack(&node);
    }
    void await_resume() const noexcept {}
  };
  LockAwaiter Lock(WaitCtx ctx = {}) { return LockAwaiter{this, ctx}; }
  void Unlock();

 private:
  Simulation* sim_;
  bool locked_ = false;
  uint64_t contention_count_ = 0;
  WaitList waiters_;
  // Probe state (unused unless stats_ is attached).
  LockStats* stats_ = nullptr;
  int holder_lane_ = -1;
  SimTime acquired_at_ = SimTime::Zero();
};

// RAII unlock helper; the lock must already be held by the current process:
//   co_await mu.Lock();
//   SimMutexGuard guard(mu);
class SimMutexGuard {
 public:
  explicit SimMutexGuard(SimMutex& mu) : mu_(&mu) {}
  SimMutexGuard(const SimMutexGuard&) = delete;
  SimMutexGuard& operator=(const SimMutexGuard&) = delete;
  ~SimMutexGuard() {
    if (mu_ != nullptr) {
      mu_->Unlock();
    }
  }
  void Release() { mu_ = nullptr; }

 private:
  SimMutex* mu_;
};

// Strictly FIFO read/write lock: a reader behind a waiting writer waits, so
// writers cannot starve. Consecutive readers at the queue head are admitted
// together.
class SimRwLock {
 public:
  explicit SimRwLock(Simulation& sim) : sim_(&sim) {}

  int active_readers() const { return active_readers_; }
  bool writer_active() const { return writer_active_; }
  uint64_t contention_count() const { return contention_count_; }

  // Attaches a contention probe. Hold times are recorded for write holds
  // (reader holds overlap and have no unlock identity); blocked-by edges
  // charge the waiter to the active writer, or lane -1 while readers hold.
  void Instrument(LockStats* stats) { stats_ = stats; }
  const LockStats* stats() const { return stats_; }

  struct ReadAwaiter {
    SimRwLock* l;
    WaitCtx ctx;
    WaitNode node{};
    bool await_ready() noexcept {
      if (!l->writer_active_ && l->queue_.Empty()) {
        ++l->active_readers_;
        if (l->stats_ != nullptr) {
          l->stats_->OnAcquireFast();
        }
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ++l->contention_count_;
      if (l->stats_ != nullptr) {
        l->stats_->OnEnqueue(l->queue_.size() + 1);
      }
      node.handle = h;
      node.ctx = ctx;
      node.enqueued = l->sim_->Now();
      node.is_writer = false;
      l->queue_.PushBack(&node);
    }
    void await_resume() const noexcept {}
  };
  ReadAwaiter LockRead(WaitCtx ctx = {}) { return ReadAwaiter{this, ctx}; }
  void UnlockRead();

  struct WriteAwaiter {
    SimRwLock* l;
    WaitCtx ctx;
    WaitNode node{};
    bool await_ready() noexcept {
      if (!l->writer_active_ && l->active_readers_ == 0 && l->queue_.Empty()) {
        l->writer_active_ = true;
        if (l->stats_ != nullptr) {
          l->stats_->OnAcquireFast();
          l->writer_lane_ = ctx.lane;
          l->writer_since_ = l->sim_->Now();
        }
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ++l->contention_count_;
      if (l->stats_ != nullptr) {
        l->stats_->OnEnqueue(l->queue_.size() + 1);
      }
      node.handle = h;
      node.ctx = ctx;
      node.enqueued = l->sim_->Now();
      node.is_writer = true;
      l->queue_.PushBack(&node);
    }
    void await_resume() const noexcept {}
  };
  WriteAwaiter LockWrite(WaitCtx ctx = {}) { return WriteAwaiter{this, ctx}; }
  void UnlockWrite();

 private:
  void DrainQueue(int releaser_lane);

  Simulation* sim_;
  int active_readers_ = 0;
  bool writer_active_ = false;
  uint64_t contention_count_ = 0;
  WaitList queue_;
  // Probe state (unused unless stats_ is attached).
  LockStats* stats_ = nullptr;
  int writer_lane_ = -1;
  SimTime writer_since_ = SimTime::Zero();
};

// FIFO counting semaphore.
class SimSemaphore {
 public:
  SimSemaphore(Simulation& sim, int64_t count) : sim_(&sim), available_(count) {}

  int64_t available() const { return available_; }
  size_t num_waiters() const { return waiters_.size(); }

  struct AcquireAwaiter {
    SimSemaphore* s;
    WaitNode node{};
    bool await_ready() noexcept {
      if (s->available_ > 0) {
        --s->available_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      node.handle = h;
      s->waiters_.PushBack(&node);
    }
    void await_resume() const noexcept {}
  };
  AcquireAwaiter Acquire() { return AcquireAwaiter{this}; }
  void Release();

 private:
  Simulation* sim_;
  int64_t available_;
  WaitList waiters_;
};

}  // namespace fastiov

#endif  // SRC_SIMCORE_SYNC_H_
