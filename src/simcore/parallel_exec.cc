#include "src/simcore/parallel_exec.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>

namespace fastiov {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// window_end = start + lookahead without overflowing SimTime::Max().
SimTime SaturatingAdd(SimTime a, SimTime b) {
  if (b.ns() >= SimTime::Max().ns() - a.ns()) {
    return SimTime::Max();
  }
  return a + b;
}

bool DeliverBefore(const CellMessage& a, const CellMessage& b) {
  if (a.deliver_at != b.deliver_at) {
    return a.deliver_at < b.deliver_at;
  }
  if (a.from_cell != b.from_cell) {
    return a.from_cell < b.from_cell;
  }
  return a.seq < b.seq;
}

}  // namespace

void CellPort::Send(uint32_t to_cell, SimTime latency, uint64_t kind, uint64_t payload) {
  if (sim_ == nullptr) {
    throw std::logic_error("CellPort::Send: cell is not running under RunCells");
  }
  if (to_cell >= num_cells_) {
    throw std::out_of_range("CellPort::Send: no cell " + std::to_string(to_cell));
  }
  if (latency < lookahead_) {
    throw std::logic_error(
        "CellPort::Send: latency " + latency.ToString() + " is below the lookahead " +
        lookahead_.ToString() +
        " — the message could arrive inside the current window, violating "
        "conservative synchronization");
  }
  CellMessage msg;
  msg.from_cell = from_;
  msg.to_cell = to_cell;
  msg.sent_at = sim_->Now();
  msg.deliver_at = SaturatingAdd(sim_->Now(), latency);
  if (msg.deliver_at == SimTime::Max()) {
    // "Deliver at infinity" — with the default (uncoupled) lookahead every
    // send lands here. Cross-cell messaging requires a finite lookahead.
    throw std::logic_error(
        "CellPort::Send: delivery time overflows simulated time (sending "
        "requires a finite lookahead in ParallelExecOptions)");
  }
  msg.seq = next_seq_++;
  msg.kind = kind;
  msg.payload = payload;
  outbox_.push_back(msg);
}

double ParallelExecStats::Utilization() const {
  if (wall_seconds <= 0.0 || worker_busy_seconds.empty()) {
    return 0.0;
  }
  double busy = 0.0;
  for (double s : worker_busy_seconds) {
    busy += s;
  }
  return busy / (wall_seconds * static_cast<double>(worker_busy_seconds.size()));
}

// The driver. Workers are pinned to cells round-robin by index; every shared
// field (window_end_, done_, inboxes) is only written inside the barrier's
// completion step, which the barrier orders before any worker resumes — the
// merge path is race-free by construction (and run under TSAN to prove it).
class ParallelRunner {
 public:
  ParallelRunner(const std::vector<SimCell*>& cells, const ParallelExecOptions& options)
      : lookahead_(options.lookahead) {
    int threads = options.threads;
    if (threads <= 0) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
      if (threads <= 0) {
        threads = 1;
      }
    }
    threads_ = std::max(1, std::min<int>(threads, static_cast<int>(cells.size())));
    cells_.resize(cells.size());
    ports_.resize(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      cells_[i].cell = cells[i];
      ports_[i].from_ = static_cast<uint32_t>(i);
      ports_[i].num_cells_ = static_cast<uint32_t>(cells.size());
      ports_[i].lookahead_ = lookahead_;
    }
    stats_.threads_used = threads_;
    stats_.worker_busy_seconds.assign(static_cast<size_t>(threads_), 0.0);
  }

  ParallelExecStats Run() {
    const auto t0 = Clock::now();
    auto on_complete = [this]() noexcept { Plan(); };
    std::barrier sync(static_cast<std::ptrdiff_t>(threads_), on_complete);

    auto worker = [&](int w) {
      for (;;) {
        RunRound(w);
        sync.arrive_and_wait();
        if (done_) {
          break;
        }
      }
      FinishCells(w);
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads_ - 1));
    for (int w = 1; w < threads_; ++w) {
      pool.emplace_back(worker, w);
    }
    worker(0);
    for (auto& t : pool) {
      t.join();
    }
    stats_.wall_seconds = SecondsSince(t0);

    for (auto& rt : cells_) {
      if (rt.error) {
        std::rethrow_exception(rt.error);
      }
    }
    return stats_;
  }

 private:
  struct CellRt {
    SimCell* cell = nullptr;
    std::vector<CellMessage> inbox;  // pending cross-cell deliveries
    std::exception_ptr error;
    bool alive = true;
  };

  // One window (or, in the first round, CellBegin) for worker w's cells.
  void RunRound(int w) {
    const auto t0 = Clock::now();
    for (size_t i = static_cast<size_t>(w); i < cells_.size();
         i += static_cast<size_t>(threads_)) {
      CellRt& rt = cells_[i];
      if (!rt.alive) {
        continue;
      }
      try {
        if (begin_round_) {
          ports_[i].sim_ = nullptr;  // set after CellBegin constructs the sim
          rt.cell->CellBegin(&ports_[i]);
          ports_[i].sim_ = &rt.cell->cell_sim();
        } else {
          DeliverDue(rt);
          rt.cell->ExecuteWindow(window_end_);
        }
      } catch (...) {
        rt.error = std::current_exception();
        rt.alive = false;
        rt.cell->CellAbandon();
      }
    }
    stats_.worker_busy_seconds[static_cast<size_t>(w)] += SecondsSince(t0);
  }

  // Schedules every inbox message due inside the coming window. The sort
  // order (deliver_at, from_cell, seq) fixes the receiver's event sequence
  // regardless of worker interleaving; messages at or beyond the horizon
  // stay pending for a later window.
  void DeliverDue(CellRt& rt) {
    if (rt.inbox.empty()) {
      return;
    }
    std::sort(rt.inbox.begin(), rt.inbox.end(), DeliverBefore);
    Simulation& sim = rt.cell->cell_sim();
    // A window ending at Max is unbounded (RunWindow runs to completion),
    // so everything pending is due.
    const bool unbounded = window_end_ == SimTime::Max();
    size_t delivered = 0;
    for (const CellMessage& msg : rt.inbox) {
      if (!unbounded && msg.deliver_at >= window_end_) {
        break;
      }
      SimCell* cell = rt.cell;
      sim.ScheduleCallback(msg.deliver_at, [cell, msg]() { cell->OnCellMessage(msg); });
      ++delivered;
    }
    rt.inbox.erase(rt.inbox.begin(),
                   rt.inbox.begin() + static_cast<std::ptrdiff_t>(delivered));
  }

  // Barrier completion: route outboxes, then plan the next window. Runs on
  // exactly one thread while every worker is parked, so it may touch all
  // shared state. noexcept — a bad_alloc here would terminate, which is the
  // honest outcome for an out-of-memory merge step.
  void Plan() noexcept {
    for (auto& port : ports_) {
      for (const CellMessage& msg : port.outbox_) {
        CellRt& target = cells_[msg.to_cell];
        if (target.alive) {
          target.inbox.push_back(msg);
          ++stats_.messages_delivered;
        }
      }
      port.outbox_.clear();
    }
    begin_round_ = false;

    bool any = false;
    SimTime next = SimTime::Max();
    for (CellRt& rt : cells_) {
      if (!rt.alive) {
        continue;
      }
      if (std::optional<SimTime> t = rt.cell->cell_sim().NextEventTime()) {
        next = std::min(next, *t);
        any = true;
      }
      for (const CellMessage& msg : rt.inbox) {
        next = std::min(next, msg.deliver_at);
        any = true;
      }
    }
    if (!any) {
      done_ = true;
      return;
    }
    window_end_ = SaturatingAdd(next, lookahead_);
    ++stats_.windows;
  }

  // All windows done: finalize worker w's cells in index order.
  void FinishCells(int w) {
    const auto t0 = Clock::now();
    for (size_t i = static_cast<size_t>(w); i < cells_.size();
         i += static_cast<size_t>(threads_)) {
      CellRt& rt = cells_[i];
      if (!rt.alive) {
        continue;
      }
      try {
        rt.cell->CellEnd();
      } catch (...) {
        rt.error = std::current_exception();
        rt.cell->CellAbandon();
      }
    }
    stats_.worker_busy_seconds[static_cast<size_t>(w)] += SecondsSince(t0);
  }

  const SimTime lookahead_;
  int threads_ = 1;
  std::vector<CellRt> cells_;
  std::vector<CellPort> ports_;
  bool begin_round_ = true;
  bool done_ = false;
  SimTime window_end_ = SimTime::Max();
  ParallelExecStats stats_;
};

ParallelExecStats RunCells(const std::vector<SimCell*>& cells,
                           const ParallelExecOptions& options) {
  if (cells.empty()) {
    ParallelExecStats stats;
    stats.threads_used = 0;
    return stats;
  }
  for (SimCell* cell : cells) {
    if (cell == nullptr) {
      throw std::invalid_argument("RunCells: null cell");
    }
  }
  ParallelRunner runner(cells, options);
  return runner.Run();
}

}  // namespace fastiov
