#include "src/simcore/parallel_exec.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>

namespace fastiov {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// window_end = start + lookahead without overflowing SimTime::Max().
SimTime SaturatingAdd(SimTime a, SimTime b) {
  if (b.ns() >= SimTime::Max().ns() - a.ns()) {
    return SimTime::Max();
  }
  return a + b;
}

bool DeliverBefore(const CellMessage& a, const CellMessage& b) {
  if (a.deliver_at != b.deliver_at) {
    return a.deliver_at < b.deliver_at;
  }
  if (a.from_cell != b.from_cell) {
    return a.from_cell < b.from_cell;
  }
  return a.seq < b.seq;
}

}  // namespace

void CellPort::Send(uint32_t to_cell, SimTime latency, uint64_t kind, uint64_t payload) {
  if (sim_ == nullptr) {
    throw std::logic_error("CellPort::Send: cell is not running under RunCells");
  }
  if (to_cell >= num_cells_) {
    throw std::out_of_range("CellPort::Send: no cell " + std::to_string(to_cell));
  }
  if (latency < lookahead_) {
    throw std::logic_error(
        "CellPort::Send: latency " + latency.ToString() + " is below the lookahead " +
        lookahead_.ToString() +
        " — the message could arrive inside the current window, violating "
        "conservative synchronization");
  }
  if (sim_->Now() < send_bound_) {
    // The cell's NextSendBound() promised no send before send_bound_; the
    // planner may have widened the window past another cell's events on the
    // strength of that promise, so a violation is a real conservatism bug,
    // not a recoverable condition.
    throw std::logic_error(
        "CellPort::Send: cell " + std::to_string(from_) + " sends at " +
        sim_->Now().ToString() + ", before the bound " + send_bound_.ToString() +
        " it promised via NextSendBound() — the current window may already be "
        "wider than conservative synchronization allows");
  }
  CellMessage msg;
  msg.from_cell = from_;
  msg.to_cell = to_cell;
  msg.sent_at = sim_->Now();
  msg.deliver_at = SaturatingAdd(sim_->Now(), latency);
  if (msg.deliver_at == SimTime::Max()) {
    // "Deliver at infinity" — with the default (uncoupled) lookahead every
    // send lands here. Cross-cell messaging requires a finite lookahead.
    throw std::logic_error(
        "CellPort::Send: delivery time overflows simulated time (sending "
        "requires a finite lookahead in ParallelExecOptions)");
  }
  msg.seq = next_seq_++;
  msg.kind = kind;
  msg.payload = payload;
  outbox_.push_back(msg);
}

double ParallelExecStats::Utilization() const {
  if (wall_seconds <= 0.0 || worker_busy_seconds.empty()) {
    return 0.0;
  }
  double busy = 0.0;
  for (double s : worker_busy_seconds) {
    busy += s;
  }
  return busy / (wall_seconds * static_cast<double>(worker_busy_seconds.size()));
}

// The driver. Workers are pinned to cells round-robin by index; every shared
// field (window_end_, done_, inboxes, due-lists) is only written inside the
// barrier's completion step, which the barrier orders before any worker
// resumes — the merge path is race-free by construction (and run under TSAN
// to prove it).
class ParallelRunner {
 public:
  ParallelRunner(const std::vector<SimCell*>& cells, const ParallelExecOptions& options)
      : lookahead_(options.lookahead),
        elide_(options.elide_idle_cells),
        profile_(options.profile) {
    int threads = options.threads;
    if (threads <= 0) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
      if (threads <= 0) {
        threads = 1;
      }
    }
    threads_ = std::max(1, std::min<int>(threads, static_cast<int>(cells.size())));
    cells_.resize(cells.size());
    ports_.resize(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      cells_[i].cell = cells[i];
      ports_[i].from_ = static_cast<uint32_t>(i);
      ports_[i].num_cells_ = static_cast<uint32_t>(cells.size());
      ports_[i].lookahead_ = lookahead_;
    }
    stats_.threads_used = threads_;
    stats_.worker_busy_seconds.assign(static_cast<size_t>(threads_), 0.0);
    barrier_wait_.assign(static_cast<size_t>(threads_), 0.0);
    deliver_seconds_.assign(static_cast<size_t>(threads_), 0.0);
    execute_seconds_.assign(static_cast<size_t>(threads_), 0.0);
    due_.resize(static_cast<size_t>(threads_));
    for (auto& d : due_) {
      d.reserve(cells.size() / static_cast<size_t>(threads_) + 1);
    }
    dirty_.reserve(cells.size());
  }

  ParallelExecStats Run() {
    const auto t0 = Clock::now();
    auto on_complete = [this]() noexcept { Plan(); };
    std::barrier sync(static_cast<std::ptrdiff_t>(threads_), on_complete);

    auto worker = [&](int w) {
      for (;;) {
        RunRound(w);
        const auto bt = Clock::now();
        sync.arrive_and_wait();
        barrier_wait_[static_cast<size_t>(w)] += SecondsSince(bt);
        if (done_) {
          break;
        }
      }
      FinishCells(w);
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads_ - 1));
    for (int w = 1; w < threads_; ++w) {
      pool.emplace_back(worker, w);
    }
    worker(0);
    for (auto& t : pool) {
      t.join();
    }
    stats_.wall_seconds = SecondsSince(t0);
    for (double s : barrier_wait_) {
      stats_.barrier_wait_seconds += s;
    }
    for (size_t w = 0; w < deliver_seconds_.size(); ++w) {
      stats_.profile_deliver_seconds += deliver_seconds_[w];
      stats_.profile_execute_seconds += execute_seconds_[w];
    }
    if (bounded_windows_ > 0) {
      stats_.mean_window_span_us = span_us_sum_ / static_cast<double>(bounded_windows_);
    }

    for (auto& rt : cells_) {
      if (rt.error) {
        std::rethrow_exception(rt.error);
      }
    }
    return stats_;
  }

 private:
  struct CellRt {
    SimCell* cell = nullptr;
    // Pending cross-cell deliveries. [inbox_head, inbox.size()) is the
    // pending region, kept sorted by DeliverBefore; storage is recycled
    // (clear, not deallocate) once drained, so steady-state routing does
    // not allocate.
    std::vector<CellMessage> inbox;
    size_t inbox_head = 0;
    size_t sorted_end = 0;  // appends past this point still need ordering
    // Cached by the planner so idle cells cost O(1) per window. Only
    // refreshed for cells that executed — an elided cell cannot change its
    // own queue.
    SimTime next_event = SimTime::Max();
    SimTime earliest_inbox = SimTime::Max();
    std::exception_ptr error;
    bool alive = true;
  };

  // One window (or, in the first round, CellBegin) for worker w's cells.
  void RunRound(int w) {
    const auto t0 = Clock::now();
    if (begin_round_) {
      for (size_t i = static_cast<size_t>(w); i < cells_.size();
           i += static_cast<size_t>(threads_)) {
        CellRt& rt = cells_[i];
        try {
          ports_[i].sim_ = nullptr;  // set after CellBegin constructs the sim
          rt.cell->CellBegin(&ports_[i]);
          ports_[i].sim_ = &rt.cell->cell_sim();
        } catch (...) {
          rt.error = std::current_exception();
          rt.alive = false;
          rt.cell->CellAbandon();
        }
      }
    } else {
      for (uint32_t i : due_[static_cast<size_t>(w)]) {
        CellRt& rt = cells_[i];
        if (!rt.alive) {
          continue;
        }
        try {
          if (profile_) {
            const auto dt0 = Clock::now();
            DeliverDue(rt);
            const auto et0 = Clock::now();
            rt.cell->ExecuteWindow(window_end_);
            execute_seconds_[static_cast<size_t>(w)] += SecondsSince(et0);
            deliver_seconds_[static_cast<size_t>(w)] +=
                std::chrono::duration<double>(et0 - dt0).count();
          } else {
            DeliverDue(rt);
            rt.cell->ExecuteWindow(window_end_);
          }
        } catch (...) {
          rt.error = std::current_exception();
          rt.alive = false;
          rt.cell->CellAbandon();
        }
      }
    }
    stats_.worker_busy_seconds[static_cast<size_t>(w)] += SecondsSince(t0);
  }

  // Schedules every inbox message due inside the coming window. The pending
  // region is already sorted by (deliver_at, from_cell, seq) — the total
  // order that fixes the receiver's event sequence regardless of worker
  // interleaving — so delivery is a linear scan from the head cursor.
  // Each scheduled delivery captures {cell, &msg}: 16 bytes, inside
  // EventAction's inline buffer, so the per-message path never allocates.
  // The pointer into inbox storage stays valid because appends/compaction
  // only happen in the planning step, after every delivery scheduled here
  // has executed (deliver_at < window_end, and ExecuteWindow drains all
  // events below the horizon).
  void DeliverDue(CellRt& rt) {
    const size_t size = rt.inbox.size();
    if (rt.inbox_head >= size) {
      return;
    }
    Simulation& sim = rt.cell->cell_sim();
    // A window ending at Max is unbounded (RunWindow runs to completion),
    // so everything pending is due.
    const bool unbounded = window_end_ == SimTime::Max();
    SimCell* cell = rt.cell;
    size_t i = rt.inbox_head;
    for (; i < size; ++i) {
      const CellMessage* msg = &rt.inbox[i];
      if (!unbounded && msg->deliver_at >= window_end_) {
        break;
      }
      sim.ScheduleCallback(msg->deliver_at, [cell, msg]() { cell->OnCellMessage(*msg); });
    }
    rt.inbox_head = i;
  }

  // Barrier completion: recycle inboxes, route outboxes, plan the next
  // window. Runs on exactly one thread while every worker is parked, so it
  // may touch all shared state. noexcept: with recycled inbox/outbox storage
  // the routing path performs no steady-state allocations, but first-time
  // growth of a pooled buffer (or an inplace_merge temp buffer on the rare
  // partially-drained-inbox path) can still throw bad_alloc, which
  // terminates — the honest outcome for an out-of-memory merge step.
  void Plan() noexcept {
    const auto t0 = Clock::now();
    // Phase 1: for every cell that executed, refresh its cached next-event
    // time and recycle drained inbox storage (before routing appends more).
    // Elided cells ran nothing, so their caches are already correct.
    if (begin_round_) {
      for (CellRt& rt : cells_) {
        RefreshAfterRun(rt);
      }
    } else {
      for (auto& due : due_) {
        for (uint32_t i : due) {
          RefreshAfterRun(cells_[i]);
        }
      }
    }

    // Phase 2: route outboxes in cell index order (determinism: the append
    // order below is fixed, and phase 3 re-establishes the total order).
    for (auto& port : ports_) {
      for (const CellMessage& msg : port.outbox_) {
        CellRt& target = cells_[msg.to_cell];
        if (target.alive) {
          if (target.inbox.size() == target.sorted_end) {
            dirty_.push_back(msg.to_cell);
          }
          target.inbox.push_back(msg);
          ++stats_.messages_delivered;
        }
      }
      port.outbox_.clear();
    }
    begin_round_ = false;

    // Phase 3: order the newly appended tail of each dirty inbox. The
    // pending prefix is already sorted; the common case (inbox fully
    // drained each window) needs only the tail sort.
    for (uint32_t i : dirty_) {
      CellRt& rt = cells_[i];
      auto mid = rt.inbox.begin() + static_cast<std::ptrdiff_t>(rt.sorted_end);
      std::sort(mid, rt.inbox.end(), DeliverBefore);
      if (rt.inbox_head < rt.sorted_end) {
        std::inplace_merge(rt.inbox.begin() + static_cast<std::ptrdiff_t>(rt.inbox_head),
                           mid, rt.inbox.end(), DeliverBefore);
      }
      rt.sorted_end = rt.inbox.size();
    }
    dirty_.clear();

    // Phase 4: plan the next window. global_next is the earliest possible
    // activity anywhere; min_bound is the earliest promised send. Clamping
    // the base to global_next guards progress against a pessimistic bound
    // (the window must always cover at least the next event), and is sound
    // because no cell can act — hence send — before global_next.
    SimTime global_next = SimTime::Max();
    SimTime min_bound = SimTime::Max();
    for (CellRt& rt : cells_) {
      if (!rt.alive) {
        continue;
      }
      rt.earliest_inbox = rt.inbox_head < rt.inbox.size()
                              ? rt.inbox[rt.inbox_head].deliver_at
                              : SimTime::Max();
      global_next = std::min(global_next, std::min(rt.next_event, rt.earliest_inbox));
    }
    if (global_next == SimTime::Max()) {
      done_ = true;
      stats_.profile_plan_seconds += SecondsSince(t0);
      return;
    }
    for (size_t i = 0; i < cells_.size(); ++i) {
      CellRt& rt = cells_[i];
      if (!rt.alive) {
        continue;
      }
      const SimTime bound = rt.cell->NextSendBound(rt.next_event, rt.earliest_inbox);
      ports_[i].send_bound_ = bound;
      min_bound = std::min(min_bound, bound);
    }
    window_end_ = SaturatingAdd(std::max(min_bound, global_next), lookahead_);

    for (auto& due : due_) {
      due.clear();
    }
    for (size_t i = 0; i < cells_.size(); ++i) {
      CellRt& rt = cells_[i];
      if (!rt.alive) {
        continue;
      }
      const SimTime local_next = std::min(rt.next_event, rt.earliest_inbox);
      if (!elide_ || local_next < window_end_) {
        due_[i % static_cast<size_t>(threads_)].push_back(static_cast<uint32_t>(i));
        ++stats_.cell_rounds;
      } else {
        ++stats_.cell_rounds_elided;
      }
    }
    ++stats_.windows;
    if (window_end_ != SimTime::Max()) {
      span_us_sum_ += (window_end_ - global_next).ToMicrosF();
      ++bounded_windows_;
    }
    stats_.profile_plan_seconds += SecondsSince(t0);
  }

  void RefreshAfterRun(CellRt& rt) {
    if (!rt.alive) {
      return;
    }
    if (rt.inbox_head > 0) {
      if (rt.inbox_head == rt.inbox.size()) {
        rt.inbox.clear();  // keeps capacity: the pooled steady state
      } else {
        rt.inbox.erase(rt.inbox.begin(),
                       rt.inbox.begin() + static_cast<std::ptrdiff_t>(rt.inbox_head));
      }
      rt.inbox_head = 0;
    }
    rt.sorted_end = rt.inbox.size();
    const std::optional<SimTime> t = rt.cell->cell_sim().NextEventTime();
    rt.next_event = t.has_value() ? *t : SimTime::Max();
  }

  // All windows done: finalize worker w's cells in index order.
  void FinishCells(int w) {
    const auto t0 = Clock::now();
    for (size_t i = static_cast<size_t>(w); i < cells_.size();
         i += static_cast<size_t>(threads_)) {
      CellRt& rt = cells_[i];
      if (!rt.alive) {
        continue;
      }
      try {
        rt.cell->CellEnd();
      } catch (...) {
        rt.error = std::current_exception();
        rt.cell->CellAbandon();
      }
    }
    stats_.worker_busy_seconds[static_cast<size_t>(w)] += SecondsSince(t0);
  }

  const SimTime lookahead_;
  const bool elide_;
  const bool profile_;
  int threads_ = 1;
  std::vector<CellRt> cells_;
  std::vector<CellPort> ports_;
  // Cells with work inside the coming window, per owning worker (cell i
  // belongs to worker i % threads). Built in Plan, read-only to workers.
  std::vector<std::vector<uint32_t>> due_;
  std::vector<uint32_t> dirty_;  // cells whose inbox grew this barrier
  bool begin_round_ = true;
  bool done_ = false;
  SimTime window_end_ = SimTime::Max();
  double span_us_sum_ = 0.0;
  uint64_t bounded_windows_ = 0;
  std::vector<double> barrier_wait_;
  std::vector<double> deliver_seconds_;
  std::vector<double> execute_seconds_;
  ParallelExecStats stats_;
};

ParallelExecStats RunCells(const std::vector<SimCell*>& cells,
                           const ParallelExecOptions& options) {
  if (cells.empty()) {
    ParallelExecStats stats;
    stats.threads_used = 0;
    return stats;
  }
  for (SimCell* cell : cells) {
    if (cell == nullptr) {
      throw std::invalid_argument("RunCells: null cell");
    }
  }
  ParallelRunner runner(cells, options);
  return runner.Run();
}

}  // namespace fastiov
