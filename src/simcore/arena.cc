#include "src/simcore/arena.h"

#include <atomic>
#include <cassert>
#include <new>
#include <vector>

namespace fastiov {
namespace {

std::atomic<bool> g_pooling_enabled{true};

// Free-list node overlaid on the first word of a freed block. Every pooled
// block is at least kClassBytes, so the overlay always fits.
struct FreeNode {
  FreeNode* next;
};

// Per-size-class slab state. Allocation is bump-first within the current
// slab; the free list only carries blocks freed mid-generation, so a fresh
// generation (after a reset) hands out addresses in strict slab order.
struct ClassState {
  FreeNode* free = nullptr;
  std::vector<char*> slabs;  // owned; released at thread exit only
  size_t slab_idx = 0;       // slab the bump pointer is in
  size_t offset = FramePool::kSlabBytes;  // next carve offset; full => advance
};

struct ThreadPool {
  ClassState classes[FramePool::kNumClasses];
  FramePool::Stats stats;
  // The pooling regime this thread is currently in; re-read from the global
  // switch only while outstanding == 0, so every allocation is freed under
  // the regime that produced it.
  bool pooling = true;

  ~ThreadPool() {
    for (ClassState& cs : classes) {
      for (char* slab : cs.slabs) {
        ::operator delete(slab);
      }
    }
  }
};

ThreadPool& Pool() {
  thread_local ThreadPool pool;
  return pool;
}

size_t ClassIndex(size_t bytes) {
  return (bytes + FramePool::kClassBytes - 1) / FramePool::kClassBytes - 1;
}

// Zero live allocations: rewind every class to the start of its slab chain
// and drop the free lists (all their blocks are inside the slabs, which the
// bump pointers now cover again). Successive generations therefore see the
// same, sequential address layout instead of the address entropy a LIFO
// free list accumulates across runs — layout drift is what made warm pools
// measurably slower than cold ones at the 5000-container scale.
void ResetGeneration(ThreadPool& tp) {
  for (ClassState& cs : tp.classes) {
    cs.free = nullptr;
    cs.slab_idx = 0;
    cs.offset = cs.slabs.empty() ? FramePool::kSlabBytes : 0;
  }
  ++tp.stats.generation_resets;
}

}  // namespace

void* FramePool::Allocate(size_t bytes) {
  if (bytes == 0) {
    bytes = 1;
  }
  ThreadPool& tp = Pool();
  if (tp.stats.outstanding == 0) {
    tp.pooling = g_pooling_enabled.load(std::memory_order_relaxed);
  }
  ++tp.stats.allocs;
  ++tp.stats.outstanding;
  if (!tp.pooling || bytes > kMaxPooledBytes) {
    ++tp.stats.upstream_allocs;
    return ::operator new(bytes);
  }
  const size_t cls = ClassIndex(bytes);
  ClassState& cs = tp.classes[cls];
  if (FreeNode* node = cs.free) {
    cs.free = node->next;
    ++tp.stats.pool_hits;
    return node;
  }
  // Bump-carve from the slab chain. operator new guarantees max_align_t
  // alignment and kClassBytes is a multiple of it, so every node is
  // suitably aligned for coroutine frames.
  const size_t node_bytes = (cls + 1) * kClassBytes;
  if (cs.offset + node_bytes > kSlabBytes) {
    if (cs.slab_idx + 1 < cs.slabs.size()) {
      ++cs.slab_idx;  // re-carve a slab retained from an earlier generation
    } else {
      cs.slabs.push_back(static_cast<char*>(::operator new(kSlabBytes)));
      cs.slab_idx = cs.slabs.size() - 1;
      tp.stats.slab_bytes += kSlabBytes;
      ++tp.stats.slab_carves;
    }
    cs.offset = 0;
  }
  char* p = cs.slabs[cs.slab_idx] + cs.offset;
  cs.offset += node_bytes;
  ++tp.stats.pool_hits;
  return p;
}

void FramePool::Deallocate(void* p, size_t bytes) noexcept {
  if (p == nullptr) {
    return;
  }
  if (bytes == 0) {
    bytes = 1;
  }
  ThreadPool& tp = Pool();
  ++tp.stats.frees;
  assert(tp.stats.outstanding > 0);
  --tp.stats.outstanding;
  if (!tp.pooling || bytes > kMaxPooledBytes) {
    ::operator delete(p);
  } else {
    const size_t cls = ClassIndex(bytes);
    FreeNode* node = static_cast<FreeNode*>(p);
    node->next = tp.classes[cls].free;
    tp.classes[cls].free = node;
  }
  if (tp.stats.outstanding == 0) {
    ResetGeneration(tp);
  }
}

void FramePool::SetPoolingEnabled(bool enabled) {
  g_pooling_enabled.store(enabled, std::memory_order_relaxed);
}

bool FramePool::pooling_enabled() {
  return g_pooling_enabled.load(std::memory_order_relaxed);
}

FramePool::Stats FramePool::ThreadStats() { return Pool().stats; }

}  // namespace fastiov
