#include "src/simcore/rng.h"

#include <cmath>

namespace fastiov {
namespace {

constexpr uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = RotL(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextU64() % span);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::Exponential(double mean) {
  double u = NextDouble();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(1.0 - u);
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::LogNormal(double log_mean, double log_sigma) {
  return std::exp(Normal(log_mean, log_sigma));
}

SimTime Rng::Jitter(SimTime base, double sigma) {
  if (sigma <= 0.0 || base == SimTime::Zero()) {
    return base;
  }
  const double factor = LogNormal(0.0, sigma);
  SimTime t = base * factor;
  const SimTime lo = base / 4.0;
  const SimTime hi = base * 8.0;
  if (t < lo) {
    return lo;
  }
  if (t > hi) {
    return hi;
  }
  return t;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace fastiov
