// Pending-event queues for the discrete-event engine.
//
// The queue's contract is strict: events leave in ascending (when, seq)
// order, where seq is the global scheduling sequence number. Every number
// the simulator produces is downstream of that order, so any queue
// implementation must be *observationally identical* — the digest-identity
// tests in sched_equiv_test hold both implementations to it byte-for-byte.
//
// Two implementations are provided, selectable per Simulation:
//
//   * EventHeap — the reference binary min-heap. O(log n) per operation,
//     simple enough to be obviously correct; the baseline every optimization
//     is measured (and verified) against.
//
//   * CalendarQueue — a two-tier calendar/ladder queue for the 1000+
//     concurrent-container regime, O(1) amortized per operation:
//
//       immediate lane   FIFO ring of events scheduled at (or before) the
//                        last dispatched timestamp — lock handoffs, event
//                        broadcasts, spawn wakeups. Pure append/pop.
//       due run          events inside the current calendar bucket, sorted
//                        once when the bucket becomes current and consumed
//                        by a head cursor — every pop is an O(1) cursor
//                        bump over an L1-hot array, not a heap sift.
//       overlay heap     late arrivals into the *current* bucket (pushed
//                        after its run was sorted); a min-heap that stays
//                        tiny because well-adapted buckets rarely receive
//                        in-bucket pushes.
//       calendar ring    kNumBuckets FIFO buckets of bucket_ns each covering
//                        the current window; append on push, sorted
//                        wholesale when the cursor reaches the bucket.
//       overflow rung    min-heap of events beyond the window; drained into
//                        the ring each time the window advances. The
//                        fallback that keeps far-future events O(log n)
//                        instead of O(window).
//
//     The bucket width adapts to the observed event density at two points:
//     window boundaries (pops per window steer growth/shrink) and an
//     overlay-occupancy trigger that rebuilds the window in place when the
//     current bucket keeps absorbing pushes it should be spreading across
//     the ring — the case where the whole workload fits inside the current
//     window and no boundary would ever be crossed. Sparse (ms-scale
//     timers) and dense (ns-scale handoffs) phases both keep buckets near
//     their occupancy sweet spot. All adaptation is driven by the event
//     sequence alone — no wall clock, no RNG — so it is exactly
//     reproducible.
#ifndef SRC_SIMCORE_EVENT_QUEUE_H_
#define SRC_SIMCORE_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/simcore/event_action.h"
#include "src/simcore/time.h"

namespace fastiov {

// Which pending-event queue a Simulation runs on. kCalendar is the default;
// kHeap is kept as the verification baseline and for A/B benchmarking.
enum class SchedulerPolicy { kCalendar, kHeap };

// Process-wide default applied to Simulations that do not pick a policy
// explicitly (mirrors SetLegacyPerPageDma in the mem layer: set it before
// runs start, not mid-run).
SchedulerPolicy DefaultSchedulerPolicy();
void SetDefaultSchedulerPolicy(SchedulerPolicy policy);
const char* SchedulerPolicyName(SchedulerPolicy policy);

struct QueuedEvent {
  SimTime when;
  uint64_t seq;
  EventAction action;
};

// Dispatch order: earlier time first; FIFO scheduling order on ties.
inline bool EarlierEvent(const QueuedEvent& a, const QueuedEvent& b) {
  if (a.when != b.when) {
    return a.when < b.when;
  }
  return a.seq < b.seq;
}

// Hand-rolled binary min-heap on (when, seq). Unlike std::priority_queue,
// whose const top() forces copying every event out before pop, PopTop()
// moves the root out — the event payload is move-only and moving it is
// the whole point of the small-buffer EventAction.
class EventHeap {
 public:
  void Reserve(size_t n) { events_.reserve(n); }
  bool Empty() const { return events_.empty(); }
  size_t Size() const { return events_.size(); }
  SimTime NextTime() const { return events_.front().when; }
  void Push(QueuedEvent ev);
  QueuedEvent PopTop();

 private:
  void SiftDown(size_t i);

  std::vector<QueuedEvent> events_;
};

// Occupancy counters a CalendarQueue exports for observability and tests.
struct CalendarQueueStats {
  uint64_t immediate_pushes = 0;  // landed in the immediate lane
  uint64_t due_pushes = 0;        // landed in the current bucket (overlay)
  uint64_t ring_pushes = 0;       // landed in a calendar bucket
  uint64_t overflow_pushes = 0;   // landed beyond the window
  uint64_t windows_advanced = 0;
  uint64_t rebuilds = 0;          // density-triggered in-window rebuilds
  int64_t bucket_ns = 0;          // current (adapted) bucket width
};

class CalendarQueue {
 public:
  CalendarQueue();

  void Reserve(size_t n);
  bool Empty() const { return size_ == 0; }
  size_t Size() const { return size_; }
  // Timestamp of the next event to dispatch. Settles internal cursors, so
  // non-const; requires !Empty().
  SimTime NextTime();
  QueuedEvent PopTop();
  void Push(QueuedEvent ev);

  const CalendarQueueStats& stats() const { return stats_; }

 private:
  static constexpr size_t kNumBuckets = 512;
  static constexpr int64_t kMinBucketNs = 64;
  static constexpr int64_t kMaxBucketNs = int64_t{1} << 40;  // ~18 simulated minutes
  // Occupancy targets steering bucket-width adaptation: aim for a handful of
  // events per bucket over a full window.
  static constexpr uint64_t kDenseWindow = kNumBuckets * 8;
  static constexpr uint64_t kSparseWindow = kNumBuckets / 4;
  // Overlay population past which the current bucket is clearly too wide
  // and the window is rebuilt around the pending span. The gate doubles
  // after each rebuild (and re-arms on bucket/window advance) so a
  // same-timestamp pile-up cannot trigger quadratic rebuild storms.
  static constexpr size_t kDueRebuildThreshold = 64;

  bool DueTierEmpty() const {
    return due_head_ == due_.size() && overlay_.empty();
  }
  void SettleDue();      // ensure the next event sits in the due tier
  void AdvanceWindow();  // ring exhausted: move the window, drain overflow
  // Re-bins due tier + ring (and any overflow the new window reaches) with
  // a bucket width derived from the pending span. O(pending), amortized by
  // the occupancy gate.
  void RebuildWindow();
  bool WantsRebuild() const {
    return overlay_.size() >= rebuild_gate_ && bucket_ns_ > kMinBucketNs;
  }
  void BinIntoWindow(QueuedEvent ev);

  // Immediate lane: events at or before the last dispatched timestamp,
  // stored FIFO in a growable ring buffer (push order == seq order, which is
  // exactly dispatch order for them).
  std::vector<QueuedEvent> immediate_;
  size_t imm_head_ = 0;
  size_t imm_count_ = 0;

  // Due run: the current bucket's events, sorted ascending by (when, seq),
  // consumed from due_head_. Late arrivals into the current bucket go to the
  // overlay_ min-heap instead of disturbing the sorted run.
  std::vector<QueuedEvent> due_;
  size_t due_head_ = 0;
  std::vector<QueuedEvent> overlay_;

  std::vector<std::vector<QueuedEvent>> ring_;
  size_t cursor_ = 0;  // ring index the due run was filled from
  size_t ring_count_ = 0;

  std::vector<QueuedEvent> overflow_;  // min-heap: events >= window_end_

  int64_t bucket_ns_ = 4096;
  int64_t window_start_ns_ = 0;
  int64_t window_end_ns_ = 0;
  int64_t cur_bucket_end_ns_ = 0;
  int64_t last_pop_ns_ = -1;
  uint64_t popped_in_window_ = 0;
  size_t rebuild_gate_ = kDueRebuildThreshold;

  size_t size_ = 0;
  CalendarQueueStats stats_;
};

// Policy-dispatching facade used by Simulation. The calendar structure is
// only materialized when the policy asks for it, so heap-policy Simulations
// stay as light as before.
class EventQueue {
 public:
  explicit EventQueue(SchedulerPolicy policy);

  SchedulerPolicy policy() const { return policy_; }
  void Reserve(size_t n);
  bool Empty() const { return calendar_ ? calendar_->Empty() : heap_.Empty(); }
  size_t Size() const { return calendar_ ? calendar_->Size() : heap_.Size(); }
  SimTime NextTime() { return calendar_ ? calendar_->NextTime() : heap_.NextTime(); }
  QueuedEvent PopTop() { return calendar_ ? calendar_->PopTop() : heap_.PopTop(); }
  void Push(QueuedEvent ev) {
    if (calendar_) {
      calendar_->Push(std::move(ev));
    } else {
      heap_.Push(std::move(ev));
    }
  }
  // nullptr under the heap policy.
  const CalendarQueueStats* calendar_stats() const {
    return calendar_ ? &calendar_->stats() : nullptr;
  }

 private:
  SchedulerPolicy policy_;
  EventHeap heap_;
  std::unique_ptr<CalendarQueue> calendar_;
};

}  // namespace fastiov

#endif  // SRC_SIMCORE_EVENT_QUEUE_H_
