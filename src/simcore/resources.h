// Contended hardware resources.
//
// CpuPool models a fixed number of cores with FIFO admission: a burst of N
// compute requests on C cores runs in waves, which is what produces the
// contention-versus-concurrency scaling in all of the paper's sweeps.
//
// BandwidthResource models processor-sharing of an aggregate bandwidth
// (host memory bandwidth for page zeroing, NIC bandwidth for downloads,
// CPU capacity for guest compute). Each flow may carry a per-flow rate cap
// (a single zeroing thread cannot exceed one core's memcpy speed; a guest
// cannot exceed its vCPU allocation); rates are assigned by water-filling.
#ifndef SRC_SIMCORE_RESOURCES_H_
#define SRC_SIMCORE_RESOURCES_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/simcore/simulation.h"
#include "src/simcore/sync.h"
#include "src/simcore/task.h"
#include "src/simcore/time.h"
#include "src/stats/blocked_time.h"

namespace fastiov {

// Processor-sharing bandwidth resource with optional per-flow rate caps.
class BandwidthResource {
 public:
  static constexpr double kUncapped = std::numeric_limits<double>::infinity();

  // capacity_per_second > 0 (bytes/s, core-seconds/s, ...). `name` labels the
  // resource in blocked-time attribution ("resource-wait:<name>"); unnamed
  // resources never attribute.
  BandwidthResource(Simulation& sim, double capacity_per_second,
                    std::string name = "");
  BandwidthResource(const BandwidthResource&) = delete;
  BandwidthResource& operator=(const BandwidthResource&) = delete;

  // Completes when `amount` has been transferred. The flow's instantaneous
  // rate is min(max_rate, water-filling fair share). When `ctx` is active,
  // the slowdown beyond the flow's ideal uncontended time is recorded as a
  // resource-wait interval — pure bookkeeping, no effect on timing.
  Task Transfer(double amount, double max_rate = kUncapped, WaitCtx ctx = {});

  const std::string& name() const { return name_; }
  double capacity_per_second() const { return capacity_; }
  size_t active_flows() const { return num_flows_; }
  double total_transferred() const { return total_; }

 private:
  // One in-flight Transfer. Lives in the transferring coroutine's frame and
  // links itself into the resource's intrusive FIFO flow list: joining and
  // leaving are O(1) and allocation-free (the former std::list<Flow*> paid a
  // node allocation per join). A flow whose frame dies mid-transfer unlinks
  // itself in its destructor instead of leaving a dangling pointer behind.
  struct Flow {
    double remaining;
    double max_rate;
    double rate = 0.0;  // assigned at the last reschedule
    SimEvent done;
    Flow* prev = nullptr;
    Flow* next = nullptr;
    BandwidthResource* owner = nullptr;

    Flow(const Flow&) = delete;
    Flow& operator=(const Flow&) = delete;
    Flow(double remaining_in, double max_rate_in, Simulation& sim)
        : remaining(remaining_in), max_rate(max_rate_in), done(sim) {}
    ~Flow() {
      if (owner != nullptr) {
        owner->Unlink(this);
      }
    }
  };

  Task TransferImpl(double amount, double max_rate, WaitCtx ctx);

  void Link(Flow* f);
  void Unlink(Flow* f);

  // Settle progress of all active flows up to Now() at their current rates.
  void Advance();
  // Water-fill rates, find the next completion, (re)arm the timer.
  void Reschedule();
  void AssignRates();
  void OnTimer(uint64_t generation);
  // Defers Reschedule to a single event at the current timestamp, so a batch
  // of joins/completions at one instant pays one water-fill pass instead of
  // one per operation. Rates are only consumed when simulated time advances,
  // and the flush always runs before that, so settled amounts are identical.
  void MarkDirty();
  void Flush();

  Simulation* sim_;
  double capacity_;
  std::string name_;
  double total_ = 0.0;
  Flow* flows_head_ = nullptr;  // FIFO: append at tail, iterate from head
  Flow* flows_tail_ = nullptr;
  size_t num_flows_ = 0;
  // Reused by AssignRates so water-filling never allocates in steady state.
  std::vector<Flow*> pending_scratch_;
  SimTime last_update_ = SimTime::Zero();
  uint64_t timer_generation_ = 0;
  bool flush_pending_ = false;
  // In practice every flow on a given resource carries the same cap (one
  // zeroing thread per flow, one vCPU per guest). Detecting that lets
  // Reschedule use a fused one-pass assign+min-ETA instead of the general
  // water-fill. Sticky-false once mixed caps are seen, until the list drains.
  double uniform_cap_ = 0.0;
  bool caps_uniform_ = true;
};

// A pool of CPU cores modeled as processor sharing, like the kernel's CFS:
// each runnable job progresses at min(1 core, cores / runnable). A burst of
// N jobs on C cores stretches every job by ~N/C, which produces the
// contention-versus-concurrency scaling of all the paper's sweeps without
// the convoy effect a FIFO queue would impose on short operations.
class CpuPool {
 public:
  CpuPool(Simulation& sim, int num_cores, std::string name = "");

  // Runs `cost` worth of single-threaded work (at most one core's rate).
  // Queueing delay beyond `cost` is attributed to `ctx` when active.
  Task Compute(SimTime cost, WaitCtx ctx = {});

  int num_cores() const { return num_cores_; }
  // Total core-time consumed so far; utilization = busy / (cores * elapsed).
  SimTime busy_core_time() const { return busy_core_time_; }
  size_t num_runnable() const { return ps_.active_flows(); }

 private:
  Task ComputeImpl(SimTime cost, WaitCtx ctx);

  Simulation* sim_;
  int num_cores_;
  BandwidthResource ps_;  // capacity: num_cores core-seconds per second
  SimTime busy_core_time_ = SimTime::Zero();
};


}  // namespace fastiov

#endif  // SRC_SIMCORE_RESOURCES_H_
