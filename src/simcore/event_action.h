// Small-buffer, move-only callable used as the event-queue payload.
//
// The dominant payload by far is a bare std::coroutine_handle<> (every
// Delay resumption and every sync-primitive wakeup). It gets a dedicated
// tag and is stored inline, so dispatching it is a direct resume with no
// type-erasure indirection and no allocation. Arbitrary callbacks whose
// closure fits the inline buffer are also stored inline; only oversized
// closures fall back to the heap — the cost the previous
// std::variant<coroutine_handle, std::function> payload paid for every
// callback regardless of size.
#ifndef SRC_SIMCORE_EVENT_ACTION_H_
#define SRC_SIMCORE_EVENT_ACTION_H_

#include <coroutine>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "src/simcore/arena.h"

namespace fastiov {

class EventAction {
 public:
  // Inline closure budget: enough for a this-pointer plus a few captured
  // words, which covers every callback the simulator schedules today. Sized
  // so a whole queued event (when + seq + action) fits one cache line —
  // queue moves are the scheduler's inner loop.
  static constexpr size_t kInlineBytes = 32;

  EventAction() noexcept = default;

  // NOLINTNEXTLINE(google-explicit-constructor): handles convert implicitly
  // so ScheduleHandle stays zero-ceremony at every call site.
  EventAction(std::coroutine_handle<> h) noexcept : kind_(Kind::kHandle) {
    ::new (static_cast<void*>(storage_)) std::coroutine_handle<>(h);
  }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventAction> &&
                !std::is_convertible_v<F&&, std::coroutine_handle<>> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor)
  EventAction(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      kind_ = Kind::kInline;
      ops_ = &InlineOps<Fn>::ops;
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    } else {
      kind_ = Kind::kHeap;
      ops_ = &HeapOps<Fn>::ops;
      ::new (static_cast<void*>(storage_)) Fn*(HeapOps<Fn>::Create(std::forward<F>(f)));
    }
  }

  EventAction(EventAction&& other) noexcept { MoveFrom(other); }

  EventAction& operator=(EventAction&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(other);
    }
    return *this;
  }

  EventAction(const EventAction&) = delete;
  EventAction& operator=(const EventAction&) = delete;

  ~EventAction() { Destroy(); }

  explicit operator bool() const noexcept { return kind_ != Kind::kEmpty; }

  // Invokes the payload. Coroutine handles are resumed directly without
  // going through the type-erased table.
  void operator()() {
    if (kind_ == Kind::kHandle) {
      Handle().resume();
    } else {
      ops_->invoke(storage_);
    }
  }

 private:
  enum class Kind : unsigned char { kEmpty, kHandle, kInline, kHeap };

  struct Ops {
    void (*invoke)(void* storage);
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct + destroy src
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* storage) { (*std::launder(static_cast<Fn*>(storage)))(); }
    static void Relocate(void* dst, void* src) noexcept {
      Fn* from = std::launder(static_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* storage) noexcept {
      std::launder(static_cast<Fn*>(storage))->~Fn();
    }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    // Oversized closures come from the arena pool unless they demand more
    // than fundamental alignment, which the pool does not provide.
    static constexpr bool kPooled = alignof(Fn) <= alignof(std::max_align_t);

    template <typename F>
    static Fn* Create(F&& f) {
      if constexpr (kPooled) {
        void* mem = FramePool::Allocate(sizeof(Fn));
        try {
          return ::new (mem) Fn(std::forward<F>(f));
        } catch (...) {
          FramePool::Deallocate(mem, sizeof(Fn));
          throw;
        }
      } else {
        return new Fn(std::forward<F>(f));
      }
    }

    static Fn* Ptr(void* storage) { return *std::launder(static_cast<Fn**>(storage)); }
    static void Invoke(void* storage) { (*Ptr(storage))(); }
    static void Relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn*(Ptr(src));
    }
    static void Destroy(void* storage) noexcept {
      Fn* ptr = Ptr(storage);
      if constexpr (kPooled) {
        ptr->~Fn();
        FramePool::Deallocate(ptr, sizeof(Fn));
      } else {
        delete ptr;
      }
    }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy};
  };

  std::coroutine_handle<>& Handle() noexcept {
    return *std::launder(reinterpret_cast<std::coroutine_handle<>*>(storage_));
  }

  void MoveFrom(EventAction& other) noexcept {
    kind_ = other.kind_;
    ops_ = other.ops_;
    switch (kind_) {
      case Kind::kEmpty:
        break;
      case Kind::kHandle:
        ::new (static_cast<void*>(storage_))
            std::coroutine_handle<>(other.Handle());
        break;
      case Kind::kInline:
      case Kind::kHeap:
        ops_->relocate(storage_, other.storage_);
        break;
    }
    other.kind_ = Kind::kEmpty;
    other.ops_ = nullptr;
  }

  void Destroy() noexcept {
    if (kind_ == Kind::kInline || kind_ == Kind::kHeap) {
      ops_->destroy(storage_);
    }
    kind_ = Kind::kEmpty;
    ops_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
  Kind kind_ = Kind::kEmpty;
};

}  // namespace fastiov

#endif  // SRC_SIMCORE_EVENT_ACTION_H_
