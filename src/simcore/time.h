// Simulated-time types for the discrete-event engine.
//
// All simulation timestamps and durations are integer nanoseconds. A strong
// type keeps them from mixing with ordinary integers (page counts, byte
// sizes) in the cost model.
#ifndef SRC_SIMCORE_TIME_H_
#define SRC_SIMCORE_TIME_H_

#include <cstdint>
#include <compare>
#include <string>

namespace fastiov {

// A duration (or absolute timestamp) in simulated nanoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(int64_t ns) : ns_(ns) {}

  constexpr int64_t ns() const { return ns_; }
  constexpr double ToSecondsF() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double ToMillisF() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr double ToMicrosF() const { return static_cast<double>(ns_) * 1e-3; }

  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime(ns_ + o.ns_); }
  constexpr SimTime operator-(SimTime o) const { return SimTime(ns_ - o.ns_); }
  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr SimTime operator*(double f) const {
    return SimTime(static_cast<int64_t>(static_cast<double>(ns_) * f));
  }
  constexpr SimTime operator/(double f) const {
    return SimTime(static_cast<int64_t>(static_cast<double>(ns_) / f));
  }
  // Ratio of two durations.
  constexpr double operator/(SimTime o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }

  static constexpr SimTime Zero() { return SimTime(0); }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  // Human-readable rendering with an adaptive unit, e.g. "12.20s", "460ms".
  std::string ToString() const;

 private:
  int64_t ns_ = 0;
};

constexpr SimTime Nanoseconds(int64_t v) { return SimTime(v); }
constexpr SimTime Microseconds(int64_t v) { return SimTime(v * 1000); }
constexpr SimTime Milliseconds(int64_t v) { return SimTime(v * 1000 * 1000); }
constexpr SimTime Seconds(double v) {
  return SimTime(static_cast<int64_t>(v * 1e9));
}

}  // namespace fastiov

#endif  // SRC_SIMCORE_TIME_H_
