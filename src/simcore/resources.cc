#include "src/simcore/resources.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fastiov {

CpuPool::CpuPool(Simulation& sim, int num_cores, std::string name)
    : sim_(&sim),
      num_cores_(num_cores),
      ps_(sim, static_cast<double>(num_cores), std::move(name)) {
  assert(num_cores > 0);
}

Task CpuPool::Compute(SimTime cost, WaitCtx ctx) {
  if (cost <= SimTime::Zero()) {
    // No frame, no event: zero-cost compute requests are common enough on the
    // start path that the coroutine frame alone shows up in profiles.
    return Task::Completed();
  }
  return ComputeImpl(cost, ctx);
}

Task CpuPool::ComputeImpl(SimTime cost, WaitCtx ctx) {
  busy_core_time_ += cost;
  co_await ps_.Transfer(cost.ToSecondsF(), /*max_rate=*/1.0, ctx);
}

BandwidthResource::BandwidthResource(Simulation& sim, double capacity_per_second,
                                     std::string name)
    : sim_(&sim), capacity_(capacity_per_second), name_(std::move(name)) {
  assert(capacity_per_second > 0.0);
}

void BandwidthResource::Link(Flow* f) {
  assert(f->owner == nullptr);
  f->owner = this;
  f->prev = flows_tail_;
  f->next = nullptr;
  if (flows_tail_ != nullptr) {
    flows_tail_->next = f;
  } else {
    flows_head_ = f;
  }
  flows_tail_ = f;
  if (num_flows_ == 0) {
    uniform_cap_ = f->max_rate;
    caps_uniform_ = true;
  } else if (f->max_rate != uniform_cap_) {
    caps_uniform_ = false;  // sticky until the list drains
  }
  ++num_flows_;
}

void BandwidthResource::Unlink(Flow* f) {
  assert(f->owner == this);
  if (f->prev != nullptr) {
    f->prev->next = f->next;
  } else {
    flows_head_ = f->next;
  }
  if (f->next != nullptr) {
    f->next->prev = f->prev;
  } else {
    flows_tail_ = f->prev;
  }
  f->prev = nullptr;
  f->next = nullptr;
  f->owner = nullptr;
  --num_flows_;
}

void BandwidthResource::Advance() {
  const SimTime now = sim_->Now();
  if (flows_head_ == nullptr || now <= last_update_) {
    last_update_ = now;
    return;
  }
  const double elapsed_s = (now - last_update_).ToSecondsF();
  for (Flow* f = flows_head_; f != nullptr; f = f->next) {
    f->remaining = std::max(0.0, f->remaining - f->rate * elapsed_s);
  }
  last_update_ = now;
}

void BandwidthResource::AssignRates() {
  // Water-filling: capped flows take min(cap, fair share); capacity they
  // leave on the table is redistributed among the uncapped/larger flows.
  pending_scratch_.clear();
  for (Flow* f = flows_head_; f != nullptr; f = f->next) {
    pending_scratch_.push_back(f);
  }
  auto& pending = pending_scratch_;
  double capacity_left = capacity_;
  bool progressed = true;
  while (!pending.empty() && progressed) {
    progressed = false;
    const double share = capacity_left / static_cast<double>(pending.size());
    // Stable compaction instead of per-element erase: the capped flows are
    // assigned (and capacity_left reduced) in exactly the same list order as
    // before, so every float result is bit-identical — but a pass over n
    // flows is O(n), not the O(n^2) that middle-of-vector erases cost when a
    // whole wave of equally-capped flows resolves at once.
    auto keep = pending.begin();
    for (Flow* f : pending) {
      if (f->max_rate <= share) {
        f->rate = f->max_rate;
        capacity_left -= f->max_rate;
        progressed = true;
      } else {
        *keep++ = f;
      }
    }
    pending.erase(keep, pending.end());
  }
  if (!pending.empty()) {
    const double share = capacity_left / static_cast<double>(pending.size());
    for (Flow* f : pending) {
      f->rate = share;
    }
  }
}

void BandwidthResource::Reschedule() {
  ++timer_generation_;
  if (flows_head_ == nullptr) {
    return;
  }
  double min_eta_s = std::numeric_limits<double>::infinity();
  if (caps_uniform_) {
    // Every flow carries the same cap m, so water-filling resolves in one
    // round: either m <= capacity/n and every flow is capped at m in the
    // first pass, or nobody caps and everyone gets exactly capacity/n — the
    // same division the general loop's final block performs. One fused pass
    // assigns the rate and finds the earliest completion. IEEE division by a
    // positive rate is monotone, so min_i(rem_i)/r == min_i(rem_i/r) bit for
    // bit and the timer lands on the identical timestamp.
    const double share = capacity_ / static_cast<double>(num_flows_);
    const double rate = uniform_cap_ <= share ? uniform_cap_ : share;
    double min_rem = std::numeric_limits<double>::infinity();
    for (Flow* f = flows_head_; f != nullptr; f = f->next) {
      f->rate = rate;
      min_rem = std::min(min_rem, f->remaining);
    }
    min_eta_s = min_rem / rate;
  } else {
    AssignRates();
    for (Flow* f = flows_head_; f != nullptr; f = f->next) {
      if (f->rate > 0.0) {
        min_eta_s = std::min(min_eta_s, f->remaining / f->rate);
      }
    }
  }
  assert(std::isfinite(min_eta_s));
  const SimTime when = sim_->Now() + Seconds(min_eta_s) + Nanoseconds(1);
  const uint64_t generation = timer_generation_;
  sim_->ScheduleCallback(when, [this, generation] { OnTimer(generation); });
}

void BandwidthResource::OnTimer(uint64_t generation) {
  if (generation != timer_generation_) {
    return;  // superseded by a newer schedule
  }
  Advance();
  constexpr double kEpsilon = 1e-3;
  for (Flow* f = flows_head_; f != nullptr;) {
    Flow* next = f->next;
    if (f->remaining <= kEpsilon) {
      Unlink(f);
      f->done.Set();
    }
    f = next;
  }
  // Completion wakes waiters at this same timestamp, and they often join new
  // flows right away; fold their water-fill into one deferred pass too.
  MarkDirty();
}

void BandwidthResource::MarkDirty() {
  if (flush_pending_) {
    return;
  }
  flush_pending_ = true;
  sim_->ScheduleCallback(sim_->Now(), [this] { Flush(); });
}

void BandwidthResource::Flush() {
  flush_pending_ = false;
  // Settle up to now at the rates that were in force when time last moved.
  // A flow that joined during this timestamp still carries rate 0, so the
  // settle leaves its remaining untouched — exactly what the old
  // advance-on-join produced.
  Advance();
  Reschedule();
}

Task BandwidthResource::Transfer(double amount, double max_rate, WaitCtx ctx) {
  if (amount <= 0.0) {
    // Same no-frame fast path as CpuPool::Compute: a zero transfer must not
    // pay a coroutine frame (or perturb the flow list) just to complete.
    return Task::Completed();
  }
  return TransferImpl(amount, max_rate, ctx);
}

Task BandwidthResource::TransferImpl(double amount, double max_rate, WaitCtx ctx) {
  assert(max_rate > 0.0);
  total_ += amount;
  const SimTime begin = sim_->Now();
  Flow flow{amount, max_rate, *sim_};
  Link(&flow);
  MarkDirty();
  co_await flow.done.Wait();
  if (ctx.active() && !name_.empty()) {
    // Anything beyond the flow's ideal uncontended duration is contention.
    const double ideal_s = amount / std::min(max_rate, capacity_);
    ctx.Record("resource-wait:" + name_, begin + Seconds(ideal_s), sim_->Now());
  }
}

}  // namespace fastiov
