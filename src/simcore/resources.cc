#include "src/simcore/resources.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fastiov {

CpuPool::CpuPool(Simulation& sim, int num_cores, std::string name)
    : sim_(&sim),
      num_cores_(num_cores),
      ps_(sim, static_cast<double>(num_cores), std::move(name)) {
  assert(num_cores > 0);
}

Task CpuPool::Compute(SimTime cost, WaitCtx ctx) {
  if (cost <= SimTime::Zero()) {
    co_return;
  }
  busy_core_time_ += cost;
  co_await ps_.Transfer(cost.ToSecondsF(), /*max_rate=*/1.0, ctx);
}

BandwidthResource::BandwidthResource(Simulation& sim, double capacity_per_second,
                                     std::string name)
    : sim_(&sim), capacity_(capacity_per_second), name_(std::move(name)) {
  assert(capacity_per_second > 0.0);
}

void BandwidthResource::Link(Flow* f) {
  assert(f->owner == nullptr);
  f->owner = this;
  f->prev = flows_tail_;
  f->next = nullptr;
  if (flows_tail_ != nullptr) {
    flows_tail_->next = f;
  } else {
    flows_head_ = f;
  }
  flows_tail_ = f;
  ++num_flows_;
}

void BandwidthResource::Unlink(Flow* f) {
  assert(f->owner == this);
  if (f->prev != nullptr) {
    f->prev->next = f->next;
  } else {
    flows_head_ = f->next;
  }
  if (f->next != nullptr) {
    f->next->prev = f->prev;
  } else {
    flows_tail_ = f->prev;
  }
  f->prev = nullptr;
  f->next = nullptr;
  f->owner = nullptr;
  --num_flows_;
}

void BandwidthResource::Advance() {
  const SimTime now = sim_->Now();
  if (flows_head_ == nullptr || now <= last_update_) {
    last_update_ = now;
    return;
  }
  const double elapsed_s = (now - last_update_).ToSecondsF();
  for (Flow* f = flows_head_; f != nullptr; f = f->next) {
    f->remaining = std::max(0.0, f->remaining - f->rate * elapsed_s);
  }
  last_update_ = now;
}

void BandwidthResource::AssignRates() {
  // Water-filling: capped flows take min(cap, fair share); capacity they
  // leave on the table is redistributed among the uncapped/larger flows.
  pending_scratch_.clear();
  for (Flow* f = flows_head_; f != nullptr; f = f->next) {
    pending_scratch_.push_back(f);
  }
  auto& pending = pending_scratch_;
  double capacity_left = capacity_;
  bool progressed = true;
  while (!pending.empty() && progressed) {
    progressed = false;
    const double share = capacity_left / static_cast<double>(pending.size());
    for (auto it = pending.begin(); it != pending.end();) {
      Flow* f = *it;
      if (f->max_rate <= share) {
        f->rate = f->max_rate;
        capacity_left -= f->max_rate;
        it = pending.erase(it);
        progressed = true;
      } else {
        ++it;
      }
    }
  }
  if (!pending.empty()) {
    const double share = capacity_left / static_cast<double>(pending.size());
    for (Flow* f : pending) {
      f->rate = share;
    }
  }
}

void BandwidthResource::Reschedule() {
  ++timer_generation_;
  if (flows_head_ == nullptr) {
    return;
  }
  AssignRates();
  double min_eta_s = std::numeric_limits<double>::infinity();
  for (Flow* f = flows_head_; f != nullptr; f = f->next) {
    if (f->rate > 0.0) {
      min_eta_s = std::min(min_eta_s, f->remaining / f->rate);
    }
  }
  assert(std::isfinite(min_eta_s));
  const SimTime when = sim_->Now() + Seconds(min_eta_s) + Nanoseconds(1);
  const uint64_t generation = timer_generation_;
  sim_->ScheduleCallback(when, [this, generation] { OnTimer(generation); });
}

void BandwidthResource::OnTimer(uint64_t generation) {
  if (generation != timer_generation_) {
    return;  // superseded by a newer schedule
  }
  Advance();
  constexpr double kEpsilon = 1e-3;
  for (Flow* f = flows_head_; f != nullptr;) {
    Flow* next = f->next;
    if (f->remaining <= kEpsilon) {
      Unlink(f);
      f->done.Set();
    }
    f = next;
  }
  Reschedule();
}

Task BandwidthResource::Transfer(double amount, double max_rate, WaitCtx ctx) {
  if (amount <= 0.0) {
    co_return;
  }
  assert(max_rate > 0.0);
  total_ += amount;
  const SimTime begin = sim_->Now();
  Flow flow{amount, max_rate, *sim_};
  Advance();
  Link(&flow);
  Reschedule();
  co_await flow.done.Wait();
  if (ctx.active() && !name_.empty()) {
    // Anything beyond the flow's ideal uncontended duration is contention.
    const double ideal_s = amount / std::min(max_rate, capacity_);
    ctx.Record("resource-wait:" + name_, begin + Seconds(ideal_s), sim_->Now());
  }
}

}  // namespace fastiov
