// The discrete-event simulation engine.
//
// Simulation owns a virtual clock and an event queue. Simulated activities
// are coroutines (Task); they are either awaited inline by a parent or
// spawned as concurrent processes with Spawn(). Events scheduled at the same
// timestamp fire in scheduling order, so runs are fully deterministic.
//
// A Simulation is strictly single-threaded: it must be constructed, driven,
// and destroyed on one thread. Concurrency across *runs* belongs to the
// sweep layer (src/experiments/sweep.h), which gives every run its own
// Simulation instance.
#ifndef SRC_SIMCORE_SIMULATION_H_
#define SRC_SIMCORE_SIMULATION_H_

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/simcore/event_action.h"
#include "src/simcore/event_queue.h"
#include "src/simcore/rng.h"
#include "src/simcore/task.h"
#include "src/simcore/time.h"

namespace fastiov {

class Simulation;
class FaultInjector;  // src/fault/fault.h

// Shared completion state of a spawned process.
struct ProcessState {
  Simulation* sim = nullptr;
  std::string name;
  bool done = false;
  std::exception_ptr exception;
  bool exception_consumed = false;
  std::vector<std::coroutine_handle<>> waiters;
};

// A copyable handle to a spawned process; co_await process.Join() blocks the
// awaiting coroutine until the process finishes (and rethrows its exception,
// if any).
class Process {
 public:
  Process() = default;
  explicit Process(std::shared_ptr<ProcessState> state) : state_(std::move(state)) {}

  bool Done() const { return !state_ || state_->done; }

  struct JoinAwaiter {
    ProcessState* state;
    bool await_ready() const noexcept { return state == nullptr || state->done; }
    void await_suspend(std::coroutine_handle<> h) { state->waiters.push_back(h); }
    void await_resume() const {
      if (state != nullptr && state->exception) {
        state->exception_consumed = true;
        std::rethrow_exception(state->exception);
      }
    }
  };
  JoinAwaiter Join() const { return JoinAwaiter{state_.get()}; }

 private:
  std::shared_ptr<ProcessState> state_;
};

class Simulation {
 public:
  // `policy` picks the pending-event queue (see event_queue.h); unset means
  // the process-wide default (SetDefaultSchedulerPolicy). Both policies are
  // observationally identical — results never depend on the choice.
  explicit Simulation(uint64_t seed = 1,
                      std::optional<SchedulerPolicy> policy = std::nullopt);
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime Now() const { return now_; }
  Rng& rng() { return rng_; }

  SchedulerPolicy scheduler_policy() const { return queue_.policy(); }
  // Calendar-queue occupancy counters; nullptr under the heap policy.
  const CalendarQueueStats* calendar_stats() const { return queue_.calendar_stats(); }

  // Optional deterministic fault injection (src/fault). Components consult
  // this before every failure-prone operation; nullptr (the default) means
  // no site is instrumented and no extra events or RNG draws occur.
  FaultInjector* fault_injector() const { return fault_injector_; }
  void set_fault_injector(FaultInjector* injector) { fault_injector_ = injector; }

  // Pre-sizes the event queue for a workload expected to keep up to `n`
  // events outstanding at once, so the hot loop never reallocates.
  void ReserveEvents(size_t n) { queue_.Reserve(n); }

  // Low-level scheduling. `when` must be >= Now(); scheduling into the past
  // throws std::logic_error.
  void ScheduleHandle(SimTime when, std::coroutine_handle<> h) {
    ScheduleAction(when, EventAction(h));
  }
  template <typename F>
  void ScheduleCallback(SimTime when, F&& cb) {
    ScheduleAction(when, EventAction(std::forward<F>(cb)));
  }

  // Starts a concurrent process; it first runs when the event loop reaches
  // the current timestamp's queue position.
  Process Spawn(Task task, std::string name = {});

  // co_await sim.Delay(d): resume after d of simulated time.
  struct DelayAwaiter {
    Simulation* sim;
    SimTime delay;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      sim->ScheduleHandle(sim->now_ + delay, h);
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter Delay(SimTime d) { return DelayAwaiter{this, d}; }

  // Runs until the event queue is empty. Rethrows the first exception from a
  // spawned process that nobody joined.
  void Run();

  // Runs while events exist at times <= t, then sets the clock to t.
  void RunUntil(SimTime t);

  // Conservative-window execution for the parallel driver (parallel_exec.h):
  // processes every event strictly before `horizon` and stops, leaving the
  // clock at the last dispatched event (the next window resumes exactly
  // where this one stopped — no clock jump, so the pop sequence is the same
  // one Run() would produce). horizon == SimTime::Max() delegates to Run(),
  // keeping the standalone hot loop untouched. Unjoined-process exceptions
  // are only rethrown once the queue is empty, as in Run().
  void RunWindow(SimTime horizon);

  // Timestamp of the earliest pending event, or nullopt when the queue is
  // empty. Non-const: the calendar queue settles cursors to answer.
  std::optional<SimTime> NextEventTime();

  uint64_t num_events_processed() const { return num_events_processed_; }

 private:
  friend class Process;

  void ScheduleAction(SimTime when, EventAction action);
  void MaybeRethrowUnjoined();

  SimTime now_ = SimTime::Zero();
  uint64_t next_seq_ = 0;
  uint64_t num_events_processed_ = 0;
  EventQueue queue_;
  std::vector<std::shared_ptr<ProcessState>> faulted_;
  Rng rng_;
  FaultInjector* fault_injector_ = nullptr;
};

// Awaits every process in the list (exceptions propagate from the first
// failing one encountered in order).
Task WaitAll(std::vector<Process> processes);

}  // namespace fastiov

#endif  // SRC_SIMCORE_SIMULATION_H_
