// A lazily-started coroutine task for simulation processes.
//
// Task is the unit of composition for simulated activities: a coroutine
// returning Task suspends on simulated time (Simulation::Delay), on
// synchronization primitives (SimMutex, SimEvent, ...), or on child Tasks.
// Awaiting a child Task runs it to completion within the parent's logical
// thread; true parallelism is obtained with Simulation::Spawn.
//
// Exceptions thrown inside a Task propagate to the awaiter, like ordinary
// function calls.
#ifndef SRC_SIMCORE_TASK_H_
#define SRC_SIMCORE_TASK_H_

#include <coroutine>
#include <exception>
#include <utility>

#include "src/simcore/arena.h"

namespace fastiov {

class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    // Coroutine frames are the single hottest allocation in a simulation
    // run (one per awaited child task); serve them from the arena pool.
    static void* operator new(size_t bytes) { return FramePool::Allocate(bytes); }
    static void operator delete(void* p, size_t bytes) noexcept {
      FramePool::Deallocate(p, bytes);
    }

    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    Task get_return_object() { return Task(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        // Symmetric transfer to whoever awaited us; the frame is destroyed
        // later by the owning Task object.
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  // An already-completed task: awaiting it resumes immediately and no
  // coroutine frame is ever allocated. The fast path for conditional
  // activities ("transfer zero bytes", "compute zero cost") whose callers
  // co_await unconditionally.
  static Task Completed() noexcept { return Task(Handle{}); }

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) {
        handle_.destroy();
      }
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) {
      handle_.destroy();
    }
  }

  bool Done() const { return !handle_ || handle_.done(); }

  // Awaiting a Task starts it (tasks are lazy) and resumes the awaiter when
  // the task completes. The temporary Task operand of a co_await expression
  // lives in the awaiting coroutine's frame for the whole suspension, so the
  // child frame stays valid.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() const {
        if (h && h.promise().exception) {
          std::rethrow_exception(h.promise().exception);
        }
      }
    };
    return Awaiter{handle_};
  }

  // Release ownership of the coroutine frame (used by Simulation::Spawn,
  // which wraps the task in a self-destroying root coroutine).
  Handle Release() { return std::exchange(handle_, {}); }

 private:
  explicit Task(Handle h) : handle_(h) {}
  Handle handle_;
};

}  // namespace fastiov

#endif  // SRC_SIMCORE_TASK_H_
