#include "src/simcore/event_queue.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <utility>

namespace fastiov {
namespace {

std::atomic<SchedulerPolicy> g_default_policy{SchedulerPolicy::kCalendar};

// Shared binary-heap kernels on a vector<QueuedEvent> ordered by
// EarlierEvent. Hand-rolled so the root can be moved out on pop.
void HeapPush(std::vector<QueuedEvent>& heap, QueuedEvent ev) {
  heap.push_back(std::move(ev));
  size_t i = heap.size() - 1;
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!EarlierEvent(heap[i], heap[parent])) {
      break;
    }
    std::swap(heap[i], heap[parent]);
    i = parent;
  }
}

void HeapSiftDown(std::vector<QueuedEvent>& heap, size_t i) {
  const size_t n = heap.size();
  for (;;) {
    const size_t left = 2 * i + 1;
    if (left >= n) {
      break;
    }
    const size_t right = left + 1;
    size_t smallest = left;
    if (right < n && EarlierEvent(heap[right], heap[left])) {
      smallest = right;
    }
    if (!EarlierEvent(heap[smallest], heap[i])) {
      break;
    }
    std::swap(heap[i], heap[smallest]);
    i = smallest;
  }
}

QueuedEvent HeapPop(std::vector<QueuedEvent>& heap) {
  QueuedEvent top = std::move(heap.front());
  if (heap.size() > 1) {
    heap.front() = std::move(heap.back());
  }
  heap.pop_back();
  if (!heap.empty()) {
    HeapSiftDown(heap, 0);
  }
  return top;
}

}  // namespace

SchedulerPolicy DefaultSchedulerPolicy() {
  return g_default_policy.load(std::memory_order_relaxed);
}

void SetDefaultSchedulerPolicy(SchedulerPolicy policy) {
  g_default_policy.store(policy, std::memory_order_relaxed);
}

const char* SchedulerPolicyName(SchedulerPolicy policy) {
  return policy == SchedulerPolicy::kCalendar ? "calendar" : "heap";
}

void EventHeap::Push(QueuedEvent ev) { HeapPush(events_, std::move(ev)); }

void EventHeap::SiftDown(size_t i) { HeapSiftDown(events_, i); }

QueuedEvent EventHeap::PopTop() { return HeapPop(events_); }

CalendarQueue::CalendarQueue() : ring_(kNumBuckets) {
  window_end_ns_ = window_start_ns_ + bucket_ns_ * static_cast<int64_t>(kNumBuckets);
  cur_bucket_end_ns_ = window_start_ns_ + bucket_ns_;
  stats_.bucket_ns = bucket_ns_;
}

void CalendarQueue::Reserve(size_t n) {
  // The immediate lane and due heap carry the hot traffic; the ring buckets
  // grow organically and keep their capacity across windows.
  const size_t hot = std::min<size_t>(n, 4096);
  due_.reserve(hot);
  if (immediate_.size() < hot) {
    size_t cap = 64;
    while (cap < hot) {
      cap *= 2;
    }
    // Ring buffer is empty whenever Reserve is called in practice, but stay
    // correct regardless: relocate live entries to the front.
    std::vector<QueuedEvent> grown(cap);
    for (size_t i = 0; i < imm_count_; ++i) {
      grown[i] = std::move(immediate_[(imm_head_ + i) & (immediate_.size() - 1)]);
    }
    immediate_ = std::move(grown);
    imm_head_ = 0;
  }
}

void CalendarQueue::Push(QueuedEvent ev) {
  const int64_t w = ev.when.ns();
  ++size_;
  if (w <= last_pop_ns_) {
    // Wakeup at the current timestamp: FIFO append. Push order is seq order,
    // and `when` never decreases across immediate pushes, so the lane is
    // already in (when, seq) order.
    if (imm_count_ == immediate_.size()) {
      const size_t cap = immediate_.empty() ? 64 : immediate_.size() * 2;
      std::vector<QueuedEvent> grown(cap);
      for (size_t i = 0; i < imm_count_; ++i) {
        grown[i] = std::move(immediate_[(imm_head_ + i) & (immediate_.size() - 1)]);
      }
      immediate_ = std::move(grown);
      imm_head_ = 0;
    }
    immediate_[(imm_head_ + imm_count_) & (immediate_.size() - 1)] = std::move(ev);
    ++imm_count_;
    ++stats_.immediate_pushes;
    return;
  }
  if (w < cur_bucket_end_ns_) {
    // The current bucket's run is already sorted and partially consumed, so
    // late arrivals go to the overlay heap instead.
    HeapPush(overlay_, std::move(ev));
    ++stats_.due_pushes;
    if (WantsRebuild()) {
      RebuildWindow();
    }
    return;
  }
  if (w < window_end_ns_) {
    ring_[static_cast<size_t>((w - window_start_ns_) / bucket_ns_)].push_back(std::move(ev));
    ++ring_count_;
    ++stats_.ring_pushes;
    return;
  }
  HeapPush(overflow_, std::move(ev));
  ++stats_.overflow_pushes;
}

void CalendarQueue::BinIntoWindow(QueuedEvent ev) {
  // Callers sort due_ (and reset due_head_) once all events are binned.
  const int64_t w = ev.when.ns();
  if (w < cur_bucket_end_ns_) {
    due_.push_back(std::move(ev));
  } else {
    ring_[static_cast<size_t>((w - window_start_ns_) / bucket_ns_)].push_back(std::move(ev));
    ++ring_count_;
  }
}

void CalendarQueue::RebuildWindow() {
  ++stats_.rebuilds;
  // Gather everything binned into the current window; overflow stays put.
  std::vector<QueuedEvent> pending;
  pending.reserve((due_.size() - due_head_) + overlay_.size() + ring_count_);
  for (size_t i = due_head_; i < due_.size(); ++i) {
    pending.push_back(std::move(due_[i]));
  }
  due_.clear();
  due_head_ = 0;
  for (QueuedEvent& ev : overlay_) {
    pending.push_back(std::move(ev));
  }
  overlay_.clear();
  if (ring_count_ > 0) {
    for (std::vector<QueuedEvent>& bucket : ring_) {
      for (QueuedEvent& ev : bucket) {
        pending.push_back(std::move(ev));
      }
      bucket.clear();
    }
    ring_count_ = 0;
  }
  int64_t min_ns = pending.front().when.ns();
  int64_t max_ns = min_ns;
  for (const QueuedEvent& ev : pending) {
    min_ns = std::min(min_ns, ev.when.ns());
    max_ns = std::max(max_ns, ev.when.ns());
  }
  // Spread the observed span over half the ring; the other half is headroom
  // before pushes start overflowing.
  const int64_t span = max_ns - min_ns + 1;
  bucket_ns_ = std::clamp(span / static_cast<int64_t>(kNumBuckets / 2) + 1,
                          kMinBucketNs, kMaxBucketNs);
  stats_.bucket_ns = bucket_ns_;
  window_start_ns_ = min_ns;
  window_end_ns_ = window_start_ns_ + bucket_ns_ * static_cast<int64_t>(kNumBuckets);
  cursor_ = 0;
  cur_bucket_end_ns_ = window_start_ns_ + bucket_ns_;
  for (QueuedEvent& ev : pending) {
    // w >= window_end is only reachable when the clamp floored the width, in
    // which case the tail of the span belongs in overflow.
    if (ev.when.ns() >= window_end_ns_) {
      HeapPush(overflow_, std::move(ev));
    } else {
      BinIntoWindow(std::move(ev));
    }
  }
  while (!overflow_.empty() && overflow_.front().when.ns() < window_end_ns_) {
    BinIntoWindow(HeapPop(overflow_));
  }
  std::sort(due_.begin(), due_.end(), EarlierEvent);
  due_head_ = 0;
  // A same-width rebuild must not re-trigger on the very next push: demand
  // the overlay double before rebuilding again within this window.
  rebuild_gate_ = std::max(kDueRebuildThreshold, rebuild_gate_ * 2);
}

void CalendarQueue::AdvanceWindow() {
  assert(!overflow_.empty());
  ++stats_.windows_advanced;
  rebuild_gate_ = kDueRebuildThreshold;
  // Adapt the bucket width to the observed density: a window that dispatched
  // far more events than buckets is too coarse (the due heap is doing the
  // work); one that dispatched almost none is too fine (the cursor is
  // walking empties and everything lands in overflow).
  if (popped_in_window_ > kDenseWindow) {
    bucket_ns_ = std::max(kMinBucketNs, bucket_ns_ / 2);
  } else if (popped_in_window_ < kSparseWindow) {
    bucket_ns_ = std::min(kMaxBucketNs, bucket_ns_ * 2);
  }
  popped_in_window_ = 0;
  stats_.bucket_ns = bucket_ns_;

  window_start_ns_ = overflow_.front().when.ns();
  window_end_ns_ = window_start_ns_ + bucket_ns_ * static_cast<int64_t>(kNumBuckets);
  cursor_ = 0;
  cur_bucket_end_ns_ = window_start_ns_ + bucket_ns_;
  while (!overflow_.empty() && overflow_.front().when.ns() < window_end_ns_) {
    BinIntoWindow(HeapPop(overflow_));
  }
  // Overflow pops arrive in ascending (when, seq) order, so the run is
  // already nearly sorted; the sort is a cheap verification pass.
  std::sort(due_.begin(), due_.end(), EarlierEvent);
  due_head_ = 0;
  // The overflow minimum defines window_start, so the first drained event
  // always lands in the due run.
  assert(!due_.empty());
}

void CalendarQueue::SettleDue() {
  assert(size_ > 0);
  while (DueTierEmpty()) {
    due_.clear();
    due_head_ = 0;
    if (ring_count_ == 0) {
      AdvanceWindow();
      return;
    }
    do {
      ++cursor_;
      assert(cursor_ < kNumBuckets);
    } while (ring_[cursor_].empty());
    cur_bucket_end_ns_ = window_start_ns_ + static_cast<int64_t>(cursor_ + 1) * bucket_ns_;
    // Swap the bucket into the (empty) due run and sort it once; from here
    // every pop is a cursor bump. The bucket inherits the run's old
    // capacity, recycling allocations across windows.
    due_.swap(ring_[cursor_]);
    ring_count_ -= due_.size();
    std::sort(due_.begin(), due_.end(), EarlierEvent);
    rebuild_gate_ = kDueRebuildThreshold;
  }
}

SimTime CalendarQueue::NextTime() {
  if (imm_count_ == 0 && DueTierEmpty()) {
    SettleDue();
  }
  const QueuedEvent* best = due_head_ < due_.size() ? &due_[due_head_] : nullptr;
  if (!overlay_.empty() && (best == nullptr || EarlierEvent(overlay_.front(), *best))) {
    best = &overlay_.front();
  }
  if (imm_count_ != 0) {
    const QueuedEvent& imm = immediate_[imm_head_];
    if (best == nullptr || EarlierEvent(imm, *best)) {
      best = &imm;
    }
  }
  return best->when;
}

QueuedEvent CalendarQueue::PopTop() {
  if (imm_count_ == 0 && DueTierEmpty()) {
    SettleDue();
  }
  --size_;
  ++popped_in_window_;
  // Three candidate sources; the immediate lane only holds events at or
  // before the last dispatched timestamp, so when populated it usually wins.
  const QueuedEvent* due_best = due_head_ < due_.size() ? &due_[due_head_] : nullptr;
  bool from_overlay = false;
  if (!overlay_.empty() && (due_best == nullptr || EarlierEvent(overlay_.front(), *due_best))) {
    due_best = &overlay_.front();
    from_overlay = true;
  }
  QueuedEvent ev;
  if (imm_count_ != 0 &&
      (due_best == nullptr || EarlierEvent(immediate_[imm_head_], *due_best))) {
    ev = std::move(immediate_[imm_head_]);
    imm_head_ = (imm_head_ + 1) & (immediate_.size() - 1);
    --imm_count_;
  } else if (from_overlay) {
    ev = HeapPop(overlay_);
  } else {
    ev = std::move(due_[due_head_]);
    ++due_head_;
  }
  last_pop_ns_ = ev.when.ns();
  return ev;
}

EventQueue::EventQueue(SchedulerPolicy policy) : policy_(policy) {
  if (policy_ == SchedulerPolicy::kCalendar) {
    calendar_ = std::make_unique<CalendarQueue>();
  }
}

void EventQueue::Reserve(size_t n) {
  if (calendar_) {
    calendar_->Reserve(n);
  } else {
    heap_.Reserve(n);
  }
}

}  // namespace fastiov
