// Slab/arena pools for the discrete-event hot path.
//
// A simulation run allocates the same few object shapes millions of times:
// coroutine frames (every awaited child Task), spawned-process root frames
// and ProcessState blocks, and the occasional oversized event closure. The
// general-purpose allocator charges a lock-free-list walk plus metadata for
// each, and its churn dominates the profile once the event engine itself is
// O(1). FramePool replaces it with thread-local, size-class segregated
// free lists carved out of large slabs:
//
//   * Allocate/Deallocate are a pointer bump/push in the common case.
//   * Slabs are never returned to the OS until thread exit, so a steady-state
//     run reaches a fixed working set and stops calling malloc entirely.
//   * Everything is thread-local. A Simulation is single-threaded by
//     contract (see simulation.h), and the sweep layer runs each cell to
//     completion on one worker, so frames never cross threads.
//   * When the thread drops to zero outstanding allocations (between runs),
//     the slab chains rewind and the free lists drop: the next generation
//     carves addresses in the same sequential order as a cold pool. Without
//     the rewind, LIFO free-list reuse accumulates address entropy run over
//     run and a warm pool ends up measurably slower than a cold one.
//
// Determinism contract: the pool influences *addresses only*. It performs no
// RNG draws, schedules no events, and reads no simulated time; pooled and
// unpooled runs must be byte-identical (asserted by sched_equiv_test).
//
// Pooling can be switched off globally (SetPoolingEnabled); each thread
// adopts the new setting only while it has zero outstanding allocations, so
// an allocation is always returned to the regime that produced it.
#ifndef SRC_SIMCORE_ARENA_H_
#define SRC_SIMCORE_ARENA_H_

#include <cstddef>
#include <cstdint>

namespace fastiov {

class FramePool {
 public:
  // Allocations at most this large are served from size-class free lists;
  // anything bigger goes straight to operator new (counted as upstream).
  static constexpr size_t kMaxPooledBytes = 2048;
  // Size-class granularity. 64 keeps every pooled node cache-line aligned
  // and bounds internal fragmentation at one line.
  static constexpr size_t kClassBytes = 64;
  static constexpr size_t kNumClasses = kMaxPooledBytes / kClassBytes;
  // Slab size carved into nodes when a class's free list runs dry.
  static constexpr size_t kSlabBytes = 64 * 1024;

  static void* Allocate(size_t bytes);
  static void Deallocate(void* p, size_t bytes) noexcept;

  // Global pooling switch (default on). Threads adopt a change lazily, at
  // the next Allocate issued while they have no outstanding allocations —
  // never in the middle of a run.
  static void SetPoolingEnabled(bool enabled);
  static bool pooling_enabled();

  // Allocation statistics of the calling thread, cumulative since thread
  // start. Callers wanting per-run numbers snapshot before/after the run.
  struct Stats {
    uint64_t allocs = 0;          // every Allocate call
    uint64_t frees = 0;           // every Deallocate call
    uint64_t pool_hits = 0;       // served from slab memory (bump or free list)
    uint64_t slab_carves = 0;     // a fresh slab was allocated for a class
    uint64_t upstream_allocs = 0; // served by operator new (oversized or pooling off)
    uint64_t slab_bytes = 0;      // total bytes held in slabs
    uint64_t outstanding = 0;     // live allocations right now
    uint64_t generation_resets = 0;  // slab rewinds at zero outstanding
  };
  static Stats ThreadStats();
};

// Minimal std-allocator adapter over FramePool, for allocate_shared and
// friends. All instances compare equal: memory from one can be returned
// through any other (on the same thread).
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  T* allocate(size_t n) {
    return static_cast<T*>(FramePool::Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) noexcept {
    FramePool::Deallocate(p, n * sizeof(T));
  }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) { return true; }
  friend bool operator!=(const PoolAllocator&, const PoolAllocator&) { return false; }
};

}  // namespace fastiov

#endif  // SRC_SIMCORE_ARENA_H_
