#include "src/simcore/sync.h"

#include <utility>

namespace fastiov {

void SimEvent::Set() {
  set_ = true;
  std::vector<std::coroutine_handle<>> waiters = std::move(waiters_);
  waiters_.clear();
  for (auto h : waiters) {
    sim_->ScheduleHandle(sim_->Now(), h);
  }
}

void SimMutex::Unlock() {
  const SimTime now = sim_->Now();
  if (stats_ != nullptr) {
    stats_->OnRelease(now - acquired_at_);
  }
  if (waiters_.empty()) {
    locked_ = false;
    holder_lane_ = -1;
    return;
  }
  // Direct handoff: the lock stays held on behalf of the next waiter.
  Waiter next = std::move(waiters_.front());
  waiters_.pop_front();
  if (stats_ != nullptr) {
    // The whole wait is charged to the holder releasing now (intermediate
    // holders during the wait are not tracked).
    stats_->OnGrant(now - next.enqueued, next.ctx.lane, holder_lane_);
    next.ctx.Record("lock-wait:" + stats_->name(), next.enqueued, now);
    holder_lane_ = next.ctx.lane;
    acquired_at_ = now;
  }
  sim_->ScheduleHandle(now, next.handle);
}

void SimRwLock::UnlockRead() {
  --active_readers_;
  if (active_readers_ == 0) {
    DrainQueue(/*releaser_lane=*/-1);
  }
}

void SimRwLock::UnlockWrite() {
  const int releaser = writer_lane_;
  if (stats_ != nullptr) {
    stats_->OnRelease(sim_->Now() - writer_since_);
  }
  writer_active_ = false;
  writer_lane_ = -1;
  DrainQueue(releaser);
}

void SimRwLock::DrainQueue(int releaser_lane) {
  const SimTime now = sim_->Now();
  while (!queue_.empty()) {
    Waiter& front = queue_.front();
    if (front.is_writer) {
      if (writer_active_ || active_readers_ > 0) {
        return;
      }
      writer_active_ = true;
      if (stats_ != nullptr) {
        stats_->OnGrant(now - front.enqueued, front.ctx.lane, releaser_lane);
        front.ctx.Record("lock-wait:" + stats_->name(), front.enqueued, now);
        writer_lane_ = front.ctx.lane;
        writer_since_ = now;
      }
      sim_->ScheduleHandle(now, front.handle);
      queue_.pop_front();
      return;  // a writer excludes everyone behind it
    }
    if (writer_active_) {
      return;
    }
    ++active_readers_;
    if (stats_ != nullptr) {
      stats_->OnGrant(now - front.enqueued, front.ctx.lane, releaser_lane);
      front.ctx.Record("lock-wait:" + stats_->name(), front.enqueued, now);
    }
    sim_->ScheduleHandle(now, front.handle);
    queue_.pop_front();
    // Keep admitting consecutive readers.
  }
}

void SimSemaphore::Release() {
  if (waiters_.empty()) {
    ++available_;
    return;
  }
  // Handoff: the permit passes directly to the next waiter.
  std::coroutine_handle<> next = waiters_.front();
  waiters_.pop_front();
  sim_->ScheduleHandle(sim_->Now(), next);
}

}  // namespace fastiov
