#include "src/simcore/sync.h"

#include <utility>

namespace fastiov {

void SimEvent::Set() {
  set_ = true;
  std::vector<std::coroutine_handle<>> waiters = std::move(waiters_);
  waiters_.clear();
  for (auto h : waiters) {
    sim_->ScheduleHandle(sim_->Now(), h);
  }
}

void SimMutex::Unlock() {
  if (waiters_.empty()) {
    locked_ = false;
    return;
  }
  // Direct handoff: the lock stays held on behalf of the next waiter.
  std::coroutine_handle<> next = waiters_.front();
  waiters_.pop_front();
  sim_->ScheduleHandle(sim_->Now(), next);
}

void SimRwLock::UnlockRead() {
  --active_readers_;
  if (active_readers_ == 0) {
    DrainQueue();
  }
}

void SimRwLock::UnlockWrite() {
  writer_active_ = false;
  DrainQueue();
}

void SimRwLock::DrainQueue() {
  while (!queue_.empty()) {
    Waiter& front = queue_.front();
    if (front.is_writer) {
      if (writer_active_ || active_readers_ > 0) {
        return;
      }
      writer_active_ = true;
      sim_->ScheduleHandle(sim_->Now(), front.handle);
      queue_.pop_front();
      return;  // a writer excludes everyone behind it
    }
    if (writer_active_) {
      return;
    }
    ++active_readers_;
    sim_->ScheduleHandle(sim_->Now(), front.handle);
    queue_.pop_front();
    // Keep admitting consecutive readers.
  }
}

void SimSemaphore::Release() {
  if (waiters_.empty()) {
    ++available_;
    return;
  }
  // Handoff: the permit passes directly to the next waiter.
  std::coroutine_handle<> next = waiters_.front();
  waiters_.pop_front();
  sim_->ScheduleHandle(sim_->Now(), next);
}

}  // namespace fastiov
