#include "src/simcore/sync.h"

#include <cassert>

namespace fastiov {

void WaitList::PushBack(WaitNode* node) {
  assert(node->owner_ == nullptr);
  node->owner_ = this;
  node->prev_ = tail_;
  node->next_ = nullptr;
  if (tail_ != nullptr) {
    tail_->next_ = node;
  } else {
    head_ = node;
  }
  tail_ = node;
  ++size_;
}

WaitNode* WaitList::PopFront() {
  WaitNode* node = head_;
  if (node != nullptr) {
    Remove(node);
  }
  return node;
}

void WaitList::Remove(WaitNode* node) {
  assert(node->owner_ == this);
  if (node->prev_ != nullptr) {
    node->prev_->next_ = node->next_;
  } else {
    head_ = node->next_;
  }
  if (node->next_ != nullptr) {
    node->next_->prev_ = node->prev_;
  } else {
    tail_ = node->prev_;
  }
  node->prev_ = nullptr;
  node->next_ = nullptr;
  node->owner_ = nullptr;
  --size_;
}

void SimEvent::Set() {
  set_ = true;
  // Waiters resume via the event queue in FIFO order; each node is popped
  // before its wakeup is scheduled, so a woken waiter can immediately Wait()
  // again (after a Reset) without colliding with its old node.
  while (WaitNode* node = waiters_.PopFront()) {
    sim_->ScheduleHandle(sim_->Now(), node->handle);
  }
}

void SimMutex::Unlock() {
  const SimTime now = sim_->Now();
  if (stats_ != nullptr) {
    stats_->OnRelease(now - acquired_at_);
  }
  WaitNode* next = waiters_.PopFront();
  if (next == nullptr) {
    locked_ = false;
    holder_lane_ = -1;
    return;
  }
  // Direct handoff: the lock stays held on behalf of the next waiter.
  if (stats_ != nullptr) {
    // The whole wait is charged to the holder releasing now (intermediate
    // holders during the wait are not tracked).
    stats_->OnGrant(now - next->enqueued, next->ctx.lane, holder_lane_);
    next->ctx.Record("lock-wait:" + stats_->name(), next->enqueued, now);
    holder_lane_ = next->ctx.lane;
    acquired_at_ = now;
  }
  sim_->ScheduleHandle(now, next->handle);
}

void SimRwLock::UnlockRead() {
  --active_readers_;
  if (active_readers_ == 0) {
    DrainQueue(/*releaser_lane=*/-1);
  }
}

void SimRwLock::UnlockWrite() {
  const int releaser = writer_lane_;
  if (stats_ != nullptr) {
    stats_->OnRelease(sim_->Now() - writer_since_);
  }
  writer_active_ = false;
  writer_lane_ = -1;
  DrainQueue(releaser);
}

void SimRwLock::DrainQueue(int releaser_lane) {
  const SimTime now = sim_->Now();
  while (WaitNode* front = queue_.Front()) {
    if (front->is_writer) {
      if (writer_active_ || active_readers_ > 0) {
        return;
      }
      writer_active_ = true;
      if (stats_ != nullptr) {
        stats_->OnGrant(now - front->enqueued, front->ctx.lane, releaser_lane);
        front->ctx.Record("lock-wait:" + stats_->name(), front->enqueued, now);
        writer_lane_ = front->ctx.lane;
        writer_since_ = now;
      }
      queue_.Remove(front);
      sim_->ScheduleHandle(now, front->handle);
      return;  // a writer excludes everyone behind it
    }
    if (writer_active_) {
      return;
    }
    ++active_readers_;
    if (stats_ != nullptr) {
      stats_->OnGrant(now - front->enqueued, front->ctx.lane, releaser_lane);
      front->ctx.Record("lock-wait:" + stats_->name(), front->enqueued, now);
    }
    queue_.Remove(front);
    sim_->ScheduleHandle(now, front->handle);
    // Keep admitting consecutive readers.
  }
}

void SimSemaphore::Release() {
  WaitNode* next = waiters_.PopFront();
  if (next == nullptr) {
    ++available_;
    return;
  }
  // Handoff: the permit passes directly to the next waiter.
  sim_->ScheduleHandle(sim_->Now(), next->handle);
}

}  // namespace fastiov
