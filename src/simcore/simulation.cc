#include "src/simcore/simulation.h"

#include <stdexcept>
#include <string>

#include "src/simcore/arena.h"

namespace fastiov {
namespace {

// Self-destroying coroutine used as the root of a spawned process. Its frame
// owns the user Task and the shared ProcessState.
class RootCoro {
 public:
  struct promise_type {
    // Root frames are allocated once per spawned process; pool them like
    // Task frames (see task.h).
    static void* operator new(size_t bytes) { return FramePool::Allocate(bytes); }
    static void operator delete(void* p, size_t bytes) noexcept {
      FramePool::Deallocate(p, bytes);
    }

    RootCoro get_return_object() {
      return RootCoro{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    // The body catches everything; reaching here with an exception is a bug.
    void unhandled_exception() { std::terminate(); }
  };

  std::coroutine_handle<> handle() const { return handle_; }

 private:
  explicit RootCoro(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

RootCoro RunRoot(Task task, std::shared_ptr<ProcessState> state) {
  try {
    co_await std::move(task);
  } catch (...) {
    state->exception = std::current_exception();
  }
  state->done = true;
  Simulation* sim = state->sim;
  for (auto waiter : state->waiters) {
    sim->ScheduleHandle(sim->Now(), waiter);
  }
  state->waiters.clear();
}

}  // namespace

Simulation::Simulation(uint64_t seed, std::optional<SchedulerPolicy> policy)
    : queue_(policy.value_or(DefaultSchedulerPolicy())), rng_(seed) {}

void Simulation::ScheduleAction(SimTime when, EventAction action) {
  if (when < now_) {
    throw std::logic_error("Simulation: cannot schedule an event at " + when.ToString() +
                           ", which is in the past (now is " + now_.ToString() + ")");
  }
  queue_.Push(QueuedEvent{when, next_seq_++, std::move(action)});
}

Process Simulation::Spawn(Task task, std::string name) {
  auto state = std::allocate_shared<ProcessState>(PoolAllocator<ProcessState>());
  state->sim = this;
  state->name = std::move(name);
  RootCoro root = RunRoot(std::move(task), state);
  ScheduleHandle(now_, root.handle());
  faulted_.push_back(state);  // tracked for unjoined-exception reporting
  return Process(state);
}

void Simulation::MaybeRethrowUnjoined() {
  for (auto& state : faulted_) {
    if (state->done && state->exception && !state->exception_consumed) {
      state->exception_consumed = true;
      std::rethrow_exception(state->exception);
    }
  }
}

void Simulation::Run() {
  while (!queue_.Empty()) {
    QueuedEvent ev = queue_.PopTop();
    now_ = ev.when;
    ++num_events_processed_;
    ev.action();
  }
  MaybeRethrowUnjoined();
}

void Simulation::RunWindow(SimTime horizon) {
  if (horizon == SimTime::Max()) {
    Run();
    return;
  }
  while (!queue_.Empty() && queue_.NextTime() < horizon) {
    QueuedEvent ev = queue_.PopTop();
    now_ = ev.when;
    ++num_events_processed_;
    ev.action();
  }
  if (queue_.Empty()) {
    MaybeRethrowUnjoined();
  }
}

std::optional<SimTime> Simulation::NextEventTime() {
  if (queue_.Empty()) {
    return std::nullopt;
  }
  return queue_.NextTime();
}

void Simulation::RunUntil(SimTime t) {
  while (!queue_.Empty() && queue_.NextTime() <= t) {
    QueuedEvent ev = queue_.PopTop();
    now_ = ev.when;
    ++num_events_processed_;
    ev.action();
  }
  if (t > now_) {
    now_ = t;
  }
  MaybeRethrowUnjoined();
}

Task WaitAll(std::vector<Process> processes) {
  for (auto& p : processes) {
    co_await p.Join();
  }
}

}  // namespace fastiov
