#include "src/simcore/simulation.h"

#include <cassert>
#include <stdexcept>

namespace fastiov {
namespace {

// Self-destroying coroutine used as the root of a spawned process. Its frame
// owns the user Task and the shared ProcessState.
class RootCoro {
 public:
  struct promise_type {
    RootCoro get_return_object() {
      return RootCoro{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    // The body catches everything; reaching here with an exception is a bug.
    void unhandled_exception() { std::terminate(); }
  };

  std::coroutine_handle<> handle() const { return handle_; }

 private:
  explicit RootCoro(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

RootCoro RunRoot(Task task, std::shared_ptr<ProcessState> state) {
  try {
    co_await std::move(task);
  } catch (...) {
    state->exception = std::current_exception();
  }
  state->done = true;
  Simulation* sim = state->sim;
  for (auto waiter : state->waiters) {
    sim->ScheduleHandle(sim->Now(), waiter);
  }
  state->waiters.clear();
}

}  // namespace

Simulation::Simulation(uint64_t seed) : rng_(seed) {}

void Simulation::ScheduleHandle(SimTime when, std::coroutine_handle<> h) {
  assert(when >= now_ && "cannot schedule into the past");
  queue_.push(Event{when, next_seq_++, h});
}

void Simulation::ScheduleCallback(SimTime when, std::function<void()> cb) {
  assert(when >= now_ && "cannot schedule into the past");
  queue_.push(Event{when, next_seq_++, std::move(cb)});
}

Process Simulation::Spawn(Task task, std::string name) {
  auto state = std::make_shared<ProcessState>();
  state->sim = this;
  state->name = std::move(name);
  RootCoro root = RunRoot(std::move(task), state);
  ScheduleHandle(now_, root.handle());
  faulted_.push_back(state);  // tracked for unjoined-exception reporting
  return Process(state);
}

void Simulation::Dispatch(Event& ev) {
  now_ = ev.when;
  ++num_events_processed_;
  if (std::holds_alternative<std::coroutine_handle<>>(ev.what)) {
    std::get<std::coroutine_handle<>>(ev.what).resume();
  } else {
    std::get<std::function<void()>>(ev.what)();
  }
}

void Simulation::MaybeRethrowUnjoined() {
  for (auto& state : faulted_) {
    if (state->done && state->exception && !state->exception_consumed) {
      state->exception_consumed = true;
      std::rethrow_exception(state->exception);
    }
  }
}

void Simulation::Run() {
  while (!queue_.empty()) {
    // priority_queue::top is const; copy the small event out.
    Event ev = queue_.top();
    queue_.pop();
    Dispatch(ev);
  }
  MaybeRethrowUnjoined();
}

void Simulation::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().when <= t) {
    Event ev = queue_.top();
    queue_.pop();
    Dispatch(ev);
  }
  if (t > now_) {
    now_ = t;
  }
  MaybeRethrowUnjoined();
}

Task WaitAll(std::vector<Process> processes) {
  for (auto& p : processes) {
    co_await p.Join();
  }
}

}  // namespace fastiov
