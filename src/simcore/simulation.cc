#include "src/simcore/simulation.h"

#include <stdexcept>
#include <string>

namespace fastiov {
namespace {

// Self-destroying coroutine used as the root of a spawned process. Its frame
// owns the user Task and the shared ProcessState.
class RootCoro {
 public:
  struct promise_type {
    RootCoro get_return_object() {
      return RootCoro{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    // The body catches everything; reaching here with an exception is a bug.
    void unhandled_exception() { std::terminate(); }
  };

  std::coroutine_handle<> handle() const { return handle_; }

 private:
  explicit RootCoro(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

RootCoro RunRoot(Task task, std::shared_ptr<ProcessState> state) {
  try {
    co_await std::move(task);
  } catch (...) {
    state->exception = std::current_exception();
  }
  state->done = true;
  Simulation* sim = state->sim;
  for (auto waiter : state->waiters) {
    sim->ScheduleHandle(sim->Now(), waiter);
  }
  state->waiters.clear();
}

}  // namespace

Simulation::Simulation(uint64_t seed) : rng_(seed) {}

void Simulation::EventHeap::Push(Event ev) {
  events_.push_back(std::move(ev));
  // Sift the new leaf up to its place.
  size_t i = events_.size() - 1;
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!Earlier(events_[i], events_[parent])) {
      break;
    }
    std::swap(events_[i], events_[parent]);
    i = parent;
  }
}

void Simulation::EventHeap::SiftDown(size_t i) {
  const size_t n = events_.size();
  for (;;) {
    const size_t left = 2 * i + 1;
    if (left >= n) {
      break;
    }
    const size_t right = left + 1;
    size_t smallest = left;
    if (right < n && Earlier(events_[right], events_[left])) {
      smallest = right;
    }
    if (!Earlier(events_[smallest], events_[i])) {
      break;
    }
    std::swap(events_[i], events_[smallest]);
    i = smallest;
  }
}

Simulation::Event Simulation::EventHeap::PopTop() {
  Event top = std::move(events_.front());
  if (events_.size() > 1) {
    events_.front() = std::move(events_.back());
  }
  events_.pop_back();
  if (!events_.empty()) {
    SiftDown(0);
  }
  return top;
}

void Simulation::ScheduleAction(SimTime when, EventAction action) {
  if (when < now_) {
    throw std::logic_error("Simulation: cannot schedule an event at " + when.ToString() +
                           ", which is in the past (now is " + now_.ToString() + ")");
  }
  queue_.Push(Event{when, next_seq_++, std::move(action)});
}

Process Simulation::Spawn(Task task, std::string name) {
  auto state = std::make_shared<ProcessState>();
  state->sim = this;
  state->name = std::move(name);
  RootCoro root = RunRoot(std::move(task), state);
  ScheduleHandle(now_, root.handle());
  faulted_.push_back(state);  // tracked for unjoined-exception reporting
  return Process(state);
}

void Simulation::MaybeRethrowUnjoined() {
  for (auto& state : faulted_) {
    if (state->done && state->exception && !state->exception_consumed) {
      state->exception_consumed = true;
      std::rethrow_exception(state->exception);
    }
  }
}

void Simulation::Run() {
  while (!queue_.Empty()) {
    Event ev = queue_.PopTop();
    now_ = ev.when;
    ++num_events_processed_;
    ev.action();
  }
  MaybeRethrowUnjoined();
}

void Simulation::RunUntil(SimTime t) {
  while (!queue_.Empty() && queue_.Top().when <= t) {
    Event ev = queue_.PopTop();
    now_ = ev.when;
    ++num_events_processed_;
    ev.action();
  }
  if (t > now_) {
    now_ = t;
  }
  MaybeRethrowUnjoined();
}

Task WaitAll(std::vector<Process> processes) {
  for (auto& p : processes) {
    co_await p.Join();
  }
}

}  // namespace fastiov
