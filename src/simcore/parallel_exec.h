// Conservative parallel execution of simulation cells.
//
// A SimCell is a self-contained simulation — its own Simulation (clock, event
// queue, RNG stream), its own model state, no globals shared with any other
// cell. RunCells() drives N cells on up to T worker threads using classic
// conservative (Chandy–Misra style) synchronization:
//
//   * Time is partitioned into global windows [start, start + lookahead).
//     Every cell executes its own events inside the current window on its
//     worker thread, in exactly the order its sequential scheduler would.
//   * Cross-cell interaction goes through CellPort::Send, which requires a
//     latency >= lookahead. A message sent at time t inside a window is
//     therefore delivered at t + latency >= window_end — never inside the
//     window that produced it — so cells never need to see each other's
//     state mid-window and no rollback is ever required.
//   * At each window boundary all workers meet at a barrier. The barrier's
//     completion step routes every outbox into the target inboxes in cell
//     index order, then plans the next window from the global minimum of
//     pending event times and pending deliveries.
//
// Two refinements keep the per-window cost proportional to the *active*
// cells, not the cell count:
//
//   * Earliest-send horizons. A cell may override NextSendBound() to promise
//     "I will not send before time B" — e.g. a host that knows its next
//     control-plane round trip, or a server that always delays >= its
//     minimum service time before replying. The planner widens the window to
//     max(min_i B_i, global-next-event) + lookahead. Conservatism argument:
//     cell i's first activity in a window is at or after
//     min(next_event_i, earliest_inbox_i) >= global-next-event, so any send
//     happens at t >= max(B_i, global-next-event), and its delivery at
//     t + latency >= t + lookahead lands at or beyond the window end — never
//     inside the window that produced it. CellPort::Send enforces the
//     promise: sending before the cell's declared bound throws.
//   * Idle-cell elision. A cell whose next event and earliest pending
//     delivery both lie at/beyond the horizon cannot execute anything this
//     window; the driver skips its DeliverDue/ExecuteWindow entirely
//     (tracked per-cell in the planning step, dispatched via per-worker
//     due-lists). Skipping is a semantic no-op — the cell's clock and queue
//     are untouched — so results are byte-identical with elision on or off
//     (ParallelExecOptions::elide_idle_cells pins this in tests).
//
// Determinism: delivery into a cell orders its inbox by (deliver_at,
// from_cell, per-sender seq) — a total order independent of which worker ran
// which cell when — and intra-cell execution is the sequential scheduler
// verbatim. Result bytes are identical at any thread count, including T=1
// (T=1 runs the same windowed protocol, just inline).
//
// Cells that never exchange messages (lookahead == SimTime::Max(), the
// default) degenerate to a single window: each cell runs to completion on
// its worker with exactly one barrier at the end. That is today's FastIOV
// regime — hosts in a fleet don't interact until the cluster layer lands —
// and it keeps the parallel path free of synchronization overhead.
//
// Thread-affinity contract: the driver calls CellBegin, ExecuteWindow,
// OnCellMessage, and CellEnd/CellAbandon for a given cell all on one worker
// thread (round-robin by cell index: worker w owns cells w, w+T, ...). Any
// state that allocates from the thread-local FramePool (coroutine frames,
// ProcessStates) must be created in CellBegin and destroyed in
// CellEnd/CellAbandon so allocation and deallocation meet on that worker;
// anything left for the cell's destructor is freed on whichever thread
// destroys the cell object.
#ifndef SRC_SIMCORE_PARALLEL_EXEC_H_
#define SRC_SIMCORE_PARALLEL_EXEC_H_

#include <cstdint>
#include <vector>

#include "src/simcore/simulation.h"
#include "src/simcore/time.h"

namespace fastiov {

// A cross-cell message. `kind` and `payload` are opaque to the driver.
struct CellMessage {
  uint32_t from_cell = 0;
  uint32_t to_cell = 0;
  SimTime sent_at = SimTime::Zero();
  SimTime deliver_at = SimTime::Zero();
  uint64_t seq = 0;  // per-sender send sequence; tie-breaks delivery order
  uint64_t kind = 0;
  uint64_t payload = 0;
};

class ParallelRunner;

// A cell's handle for sending cross-cell messages. Owned by the driver; valid
// from CellBegin until the run ends.
class CellPort {
 public:
  // Queues a message for `to_cell`, delivered at Now() + latency. Throws
  // std::logic_error if latency < lookahead (a conservative-synchronization
  // violation: the message could land inside the current window), if the
  // send happens before the bound the cell promised via NextSendBound()
  // (the cell lied to the planner — the window may already be too wide),
  // and std::out_of_range for an unknown cell.
  void Send(uint32_t to_cell, SimTime latency, uint64_t kind = 0, uint64_t payload = 0);

  uint32_t cell_index() const { return from_; }
  SimTime lookahead() const { return lookahead_; }

 private:
  friend class ParallelRunner;

  Simulation* sim_ = nullptr;
  uint32_t from_ = 0;
  uint32_t num_cells_ = 0;
  SimTime lookahead_ = SimTime::Max();
  SimTime send_bound_ = SimTime::Zero();  // set each window by the planner
  uint64_t next_seq_ = 0;
  std::vector<CellMessage> outbox_;
};

// Interface a cell implements to run under RunCells. Lifecycle on the owning
// worker thread: CellBegin -> {OnCellMessage*, ExecuteWindow}* -> CellEnd
// (or CellAbandon if this cell — or setup/teardown — threw).
class SimCell {
 public:
  virtual ~SimCell() = default;

  // The cell's simulation. Only called between CellBegin and CellEnd.
  virtual Simulation& cell_sim() = 0;

  // First call, before any window. Construct sim-side state and spawn root
  // processes here (not in the constructor — see the thread-affinity
  // contract above). `port` stays valid for the whole run.
  virtual void CellBegin(CellPort* port) = 0;

  // A cross-cell message scheduled at its deliver_at timestamp; runs as an
  // event inside the receiving cell's window, so cell_sim().Now() ==
  // msg.deliver_at.
  virtual void OnCellMessage(const CellMessage& msg) { (void)msg; }

  // The earliest simulated time at which this cell might call
  // CellPort::Send. Called in the planning step between windows with the
  // cell's cached next event time and its earliest pending inbox delivery
  // (both SimTime::Max() when none); the default — the first moment the
  // cell can execute anything at all — is always a sound promise. Cells
  // with domain knowledge (a fixed round trip, a minimum service delay)
  // return a later time to widen the window and cut barrier count; a
  // returned bound the cell then violates makes Send throw. The promise
  // only needs to hold until the planner asks again (the next barrier).
  virtual SimTime NextSendBound(SimTime next_event, SimTime earliest_inbox) {
    return next_event < earliest_inbox ? next_event : earliest_inbox;
  }

  // Runs the cell's events strictly before `horizon`. Override to wrap the
  // default with per-window accounting.
  virtual void ExecuteWindow(SimTime horizon) { cell_sim().RunWindow(horizon); }

  // Last call after the cell's queue (and inbox) drained. Collect results
  // and tear down sim-side state here.
  virtual void CellEnd() {}

  // Called instead of CellEnd when the cell is being discarded after an
  // exception (its own or a sibling failure does NOT trigger this — only
  // this cell's). Must not throw.
  virtual void CellAbandon() noexcept {}
};

struct ParallelExecOptions {
  // Worker threads. <= 0 means std::thread::hardware_concurrency(); always
  // clamped to the number of cells.
  int threads = 1;
  // The conservative lookahead: minimum cross-cell latency CellPort::Send
  // accepts, and the width of every execution window. SimTime::Max() (the
  // default) means the cells are uncoupled and each runs to completion in a
  // single window.
  SimTime lookahead = SimTime::Max();
  // Skip DeliverDue/ExecuteWindow for cells with nothing due this window.
  // Off exists only so tests can pin that elision is a semantic no-op.
  bool elide_idle_cells = true;
  // Collect the per-phase wall-time breakdown (deliver / execute / plan).
  // Costs two clock reads per cell-round, so it is opt-in.
  bool profile = false;
};

struct ParallelExecStats {
  int threads_used = 0;
  uint64_t windows = 0;
  uint64_t messages_delivered = 0;
  // Cell-window executions actually run vs skipped by idle-cell elision
  // (cell_rounds + cell_rounds_elided == windows * live cells).
  uint64_t cell_rounds = 0;
  uint64_t cell_rounds_elided = 0;
  double wall_seconds = 0.0;
  // Mean width of a bounded window (horizon - earliest pending activity),
  // in simulated microseconds; 0 when every window was unbounded. Widths
  // above the lookahead measure what earliest-send horizons bought.
  double mean_window_span_us = 0.0;
  // Total seconds workers spent parked at the window barrier (includes the
  // single-threaded planning step), summed across workers.
  double barrier_wait_seconds = 0.0;
  // Filled only when ParallelExecOptions::profile is set: wall seconds by
  // driver phase, summed across workers (plan is single-threaded).
  double profile_deliver_seconds = 0.0;
  double profile_execute_seconds = 0.0;
  double profile_plan_seconds = 0.0;
  // Per-worker time spent executing cells (vs waiting at barriers).
  std::vector<double> worker_busy_seconds;

  // Mean fraction of wall time the workers spent executing.
  double Utilization() const;
};

// Runs the cells to completion. Blocks until every cell has finished (or
// failed); rethrows the exception of the lowest-index failed cell, after all
// surviving cells have completed normally (same policy as sweep's
// ParallelFor).
ParallelExecStats RunCells(const std::vector<SimCell*>& cells,
                           const ParallelExecOptions& options);

}  // namespace fastiov

#endif  // SRC_SIMCORE_PARALLEL_EXEC_H_
