// Deterministic random number generation for simulations.
//
// xoshiro256++ keeps runs reproducible across platforms (std::mt19937 would
// too, but distributions in <random> are not portable across standard
// libraries, so we implement the few we need).
#ifndef SRC_SIMCORE_RNG_H_
#define SRC_SIMCORE_RNG_H_

#include <cstdint>

#include "src/simcore/time.h"

namespace fastiov {

// xoshiro256++ by Blackman & Vigna (public domain reference implementation).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Standard normal via Box-Muller (uses a cached second value).
  double Normal(double mean, double stddev);

  // Lognormal parameterized by the mean and relative sigma of the
  // *underlying normal* of log-space; convenient for latency jitter.
  double LogNormal(double log_mean, double log_sigma);

  // A duration jittered multiplicatively: base * LogNormal(0, sigma),
  // clamped to [base/4, base*8] so pathological tails cannot dominate.
  SimTime Jitter(SimTime base, double sigma);

  // Derive an independent stream (for per-container jitter).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fastiov

#endif  // SRC_SIMCORE_RNG_H_
