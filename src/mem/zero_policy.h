// Zeroing strategy used by the DMA-map path.
#ifndef SRC_MEM_ZERO_POLICY_H_
#define SRC_MEM_ZERO_POLICY_H_

#include <span>

#include "src/mem/page.h"
#include "src/mem/page_run.h"
#include "src/simcore/task.h"

namespace fastiov {

enum class ZeroingMode {
  // Vanilla: every retrieved page is scrubbed before the DMA map returns.
  kEager,
  // HawkEye-style baseline: pages pre-zeroed during idle time skip the
  // scrub; the rest are zeroed eagerly (the pre-zero pool lives in
  // PhysicalMemory).
  kPreZeroed,
  // FastIOV §4.3.2: pages are registered with fastiovd and zeroed lazily at
  // first access (EPT fault) or by the background scrubber.
  kDecoupled,
  // Ablation/failure-injection only: no zeroing at all. Fast and INSECURE —
  // the next tenant reads the previous tenant's memory. Exists to make the
  // cost of safety measurable and the hazard observable in tests.
  kNone,
};

const char* ZeroingModeName(ZeroingMode m);

// Implemented by fastiovd: receives extents whose zeroing was deferred.
// `gpa_base` is the guest-physical address of the first page of runs[0]
// (IOVA == GPA, §2.2; the runs back GPA-consecutive pages in order);
// fastiovd uses it to honor the instant-zeroing list, which is registered
// in GPA terms before the VM's memory is allocated.
class LazyZeroRegistry {
 public:
  virtual ~LazyZeroRegistry() = default;
  virtual Task RegisterPages(int pid, std::span<const PageRun> runs, uint64_t gpa_base) = 0;
};

}  // namespace fastiov

#endif  // SRC_MEM_ZERO_POLICY_H_
