// Extent representation for physical frames.
//
// The paper's P1-P3 sub-bottlenecks are all proportional to *page counts*,
// so the simulator charges per-page costs analytically — which means nothing
// on the hot path needs to materialize one element per page. A PageRun is a
// maximal contiguous extent of frames; allocation, zeroing, pinning, IOMMU
// mapping and memslot bookkeeping all operate on runs (the same batching
// real VFIO type1 performs when it calls iommu_map once per pinned extent).
//
// Invariant (see docs/ARCHITECTURE.md): consumers must not flatten runs back
// to per-page vectors on hot paths; FlattenRuns exists for tests and cold
// setup code only.
#ifndef SRC_MEM_PAGE_RUN_H_
#define SRC_MEM_PAGE_RUN_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "src/mem/page.h"

namespace fastiov {

// A contiguous extent of `count` frames starting at `first`.
struct PageRun {
  PageId first = kInvalidPage;
  uint64_t count = 0;

  PageId last() const { return first + count - 1; }
  bool operator==(const PageRun&) const = default;
};

// Total page count across runs.
inline uint64_t PageCountOfRuns(std::span<const PageRun> runs) {
  uint64_t total = 0;
  for (const PageRun& r : runs) {
    total += r.count;
  }
  return total;
}

// Appends a run, merging with the tail when frame-contiguous.
inline void AppendRunToRuns(std::vector<PageRun>* runs, PageRun run) {
  assert(run.count > 0);
  if (!runs->empty()) {
    PageRun& back = runs->back();
    if (run.first == back.first + back.count) {
      back.count += run.count;
      return;
    }
  }
  runs->push_back(run);
}

// Appends a single page, extending the tail run when contiguous.
inline void AppendPageToRuns(std::vector<PageRun>* runs, PageId page) {
  AppendRunToRuns(runs, PageRun{page, 1});
}

// Coalesces an ordered page list into maximal runs. Order is preserved:
// pages[i] lands at overall position i across the returned runs.
inline std::vector<PageRun> RunsFromPages(std::span<const PageId> pages) {
  std::vector<PageRun> runs;
  for (PageId id : pages) {
    AppendPageToRuns(&runs, id);
  }
  return runs;
}

// Expands runs to one PageId per page. Cold paths and tests only.
inline std::vector<PageId> FlattenRuns(std::span<const PageRun> runs) {
  std::vector<PageId> pages;
  pages.reserve(PageCountOfRuns(runs));
  for (const PageRun& r : runs) {
    for (uint64_t i = 0; i < r.count; ++i) {
      pages.push_back(r.first + i);
    }
  }
  return pages;
}

}  // namespace fastiov

#endif  // SRC_MEM_PAGE_RUN_H_
