#include "src/mem/physical_memory.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace fastiov {
namespace {

// Contiguous free runs rarely exceed this many pages on a loaded host.
constexpr uint64_t kMaxBatchPages = 64;

// Upper bound on materialized frames; keeps a 4 KiB-page configuration from
// requesting hundreds of millions of frame structs. Small-page experiments
// should use a reduced HostSpec::memory_bytes.
constexpr uint64_t kMaxModeledPages = 32ull << 20;

const char* kContentNames[] = {"residue", "zeroed", "data"};

}  // namespace

const char* PageContentName(PageContent c) {
  return kContentNames[static_cast<size_t>(c)];
}

PhysicalMemory::PhysicalMemory(Simulation& sim, const HostSpec& host, const CostModel& cost,
                               uint64_t page_size, double fragmentation)
    : sim_(&sim),
      cost_(cost),
      page_size_(page_size),
      total_pages_(host.memory_bytes / page_size),
      fragmentation_(std::clamp(fragmentation, 0.0, 1.0)),
      interleave_homes_(host.numa_interleave_homes),
      per_thread_zeroing_bps_(host.per_thread_zeroing_bps),
      remote_zeroing_penalty_(host.remote_zeroing_penalty),
      zero_dram_(sim, host.zeroing_dram_bandwidth_bps, "mem.zero-dram") {
  assert(page_size > 0);
  assert(host.numa_nodes > 0);
  assert(total_pages_ <= kMaxModeledPages &&
         "too many frames to model; reduce HostSpec::memory_bytes for small pages");
  frames_.resize(total_pages_);
  const auto nodes = static_cast<uint64_t>(host.numa_nodes);
  pages_per_node_ = (total_pages_ + nodes - 1) / nodes;
  free_runs_.resize(nodes);
  free_count_.assign(nodes, 0);
  // Boot state: each node's slab is one maximal extent.
  for (uint64_t n = 0; n < nodes; ++n) {
    const PageId begin = n * pages_per_node_;
    const PageId end = std::min(total_pages_, (n + 1) * pages_per_node_);
    if (begin < end) {
      free_runs_[n].push_back(FreeRun{begin, end - begin, /*recycled=*/false});
      free_count_[n] = end - begin;
    }
  }
}

void PhysicalMemory::PreZeroFreePages(double fraction) {
  // The idle-time scrubber works through each node's pool proportionally,
  // front-to-back in free-store order.
  for (size_t n = 0; n < free_runs_.size(); ++n) {
    const auto target = static_cast<uint64_t>(
        std::round(fraction * static_cast<double>(free_count_[n])));
    uint64_t done = 0;
    for (const FreeRun& run : free_runs_[n]) {
      for (PageId id = run.first; id < run.first + run.count; ++id) {
        if (done >= target) {
          break;
        }
        if (frames_[id].content == PageContent::kResidue) {
          frames_[id].content = PageContent::kZeroed;
          ++prezeroed_free_;
        }
        ++done;
      }
      if (done >= target) {
        break;
      }
    }
  }
}

uint64_t PhysicalMemory::NextBatchSize(uint64_t remaining) {
  const double shrink = 1.0 - fragmentation_;
  auto nominal = static_cast<uint64_t>(
      std::max(1.0, std::round(static_cast<double>(kMaxBatchPages) * shrink)));
  if (nominal > 1) {
    // Mild variability in free-run lengths.
    nominal = static_cast<uint64_t>(
        sim_->rng().UniformInt(static_cast<int64_t>(std::max<uint64_t>(1, nominal / 2)),
                               static_cast<int64_t>(nominal)));
  }
  return std::min(nominal, remaining);
}

PageRun PhysicalMemory::TakeRunFromNode(int node, int owner, uint64_t max_pages) {
  std::deque<FreeRun>& runs = free_runs_[node];
  assert(!runs.empty() && max_pages > 0);
  FreeRun& front = runs.front();
  const uint64_t take = std::min(front.count, max_pages);
  const PageRun out{front.first, take};
  front.first += take;
  front.count -= take;
  const bool recycled = front.recycled;
  if (front.count == 0) {
    runs.pop_front();
  }
  free_count_[node] -= take;
  if (recycled) {
    reused_allocations_ += take;
  }
  // FreePages left pin_count at 0 and in_lazy_table cleared, so the hot
  // loop only writes ownership; content stays whatever the pre-zero
  // scrubber or the previous owner left.
  for (PageId id = out.first; id < out.first + out.count; ++id) {
    PageFrame& f = frames_[id];
    assert(f.owner == -1 && f.pin_count == 0 && !f.in_lazy_table);
    f.owner = owner;
    if (f.content == PageContent::kZeroed) {
      assert(prezeroed_free_ > 0);
      --prezeroed_free_;
    }
  }
  return out;
}

Task PhysicalMemory::RetrievePages(int owner, uint64_t num_pages, std::vector<PageRun>* out,
                                   WaitCtx ctx) {
  assert(out != nullptr);
  if (num_pages > free_pages()) {
    throw std::runtime_error("PhysicalMemory: out of memory");
  }
  const int home = HomeNode(owner);
  uint64_t batches = 0;
  uint64_t remaining = num_pages;
  while (remaining > 0) {
    // Pick the node: home first, then spill to the fullest remote node.
    int node = home;
    if (free_count_[node] == 0) {
      uint64_t best = 0;
      for (int n = 0; n < numa_nodes(); ++n) {
        if (free_count_[n] > best) {
          best = free_count_[n];
          node = n;
        }
      }
    }
    const uint64_t batch = std::min(NextBatchSize(remaining), free_count_[node]);
    // A batch may straddle free-store extents (fragmentation limits the
    // extent lengths, not the batch accounting). Each batch models one free
    // extent, so runs coalesce within a batch but never across batches —
    // full fragmentation yields single-page runs — and never across a NUMA
    // boundary, keeping per-run locality analytic.
    const size_t batch_first_run = out->size();
    uint64_t got = 0;
    while (got < batch) {
      const PageRun run = TakeRunFromNode(node, owner, batch - got);
      got += run.count;
      // Takes within one batch all come from the same node's pool, so
      // adjacency alone makes merging safe.
      if (out->size() > batch_first_run &&
          out->back().first + out->back().count == run.first) {
        out->back().count += run.count;
      } else {
        out->push_back(run);
      }
    }
    if (node == home) {
      local_allocations_ += batch;
    } else {
      remote_allocations_ += batch;
    }
    remaining -= batch;
    ++batches;
  }
  used_pages_ += num_pages;
  SampleFreeTrack();
  batches_retrieved_ += batches;
  co_await cpu_->Compute(cost_.page_retrieve_batch * static_cast<double>(batches), ctx);
}

Task PhysicalMemory::RetrievePages(int owner, uint64_t num_pages, std::vector<PageId>* out,
                                   WaitCtx ctx) {
  // Flat compatibility overload: one free-store operation and one frame-state
  // update per page, the way the pre-extent allocator worked. Identical
  // batch structure, RNG draws and simulated cost as the run overload — only
  // the wall-clock bookkeeping is per-page.
  assert(out != nullptr);
  if (num_pages > free_pages()) {
    throw std::runtime_error("PhysicalMemory: out of memory");
  }
  const int home = HomeNode(owner);
  uint64_t batches = 0;
  uint64_t remaining = num_pages;
  while (remaining > 0) {
    int node = home;
    if (free_count_[node] == 0) {
      uint64_t best = 0;
      for (int n = 0; n < numa_nodes(); ++n) {
        if (free_count_[n] > best) {
          best = free_count_[n];
          node = n;
        }
      }
    }
    const uint64_t batch = std::min(NextBatchSize(remaining), free_count_[node]);
    for (uint64_t got = 0; got < batch; ++got) {
      const PageRun one = TakeRunFromNode(node, owner, 1);
      // The historical allocator refreshed this per-frame state on every
      // allocation; the values are already what FreePages left, but the
      // baseline's memory traffic is part of what it models.
      PageFrame& f = frames_[one.first];
      f.ever_owned = true;
      f.pin_count = 0;
      f.in_lazy_table = false;
      out->push_back(one.first);
    }
    if (node == home) {
      local_allocations_ += batch;
    } else {
      remote_allocations_ += batch;
    }
    remaining -= batch;
    ++batches;
  }
  used_pages_ += num_pages;
  SampleFreeTrack();
  batches_retrieved_ += batches;
  co_await cpu_->Compute(cost_.page_retrieve_batch * static_cast<double>(batches), ctx);
}

Task PhysicalMemory::RetrieveSinglePage(int owner, PageId* out, WaitCtx ctx) {
  assert(out != nullptr);
  if (refill_cache_[owner].empty()) {
    const uint64_t want = std::min<uint64_t>(kRefillCachePages, free_pages());
    if (want == 0) {
      throw std::runtime_error("PhysicalMemory: out of memory");
    }
    std::vector<PageRun> filled;
    co_await RetrievePages(owner, want, &filled, ctx);
    // Re-look-up after the await: another owner's refill may have rehashed
    // the cache map while this coroutine was suspended. Append (rather than
    // assign) so a concurrent same-owner refill cannot strand pages.
    std::vector<PageRun>& cache = refill_cache_[owner];
    for (const PageRun& run : filled) {
      AppendRunToRuns(&cache, run);
    }
  }
  std::vector<PageRun>& cache = refill_cache_[owner];
  PageRun& front = cache.front();
  *out = front.first;
  ++front.first;
  if (--front.count == 0) {
    cache.erase(cache.begin());
  }
}

void PhysicalMemory::DrainRefillCache(int owner) {
  auto it = refill_cache_.find(owner);
  if (it == refill_cache_.end()) {
    return;
  }
  FreePages(std::span<const PageRun>(it->second));
  refill_cache_.erase(it);
}

uint64_t PhysicalMemory::refill_cached_pages(int owner) const {
  auto it = refill_cache_.find(owner);
  return it == refill_cache_.end() ? 0 : PageCountOfRuns(it->second);
}

void PhysicalMemory::FreePages(std::span<const PageRun> runs) {
  uint64_t total = 0;
  for (const PageRun& whole : runs) {
    assert(whole.count > 0);
    // Split at node boundaries: the free store is per node, and run-based
    // consumers (FrameMap coalescing) may have merged across a boundary.
    PageRun rest = whole;
    while (rest.count > 0) {
      const int node = NodeOfFrame(rest.first);
      const PageId node_end = static_cast<PageId>(node + 1) * pages_per_node_;
      const PageRun run{rest.first, std::min<uint64_t>(rest.count, node_end - rest.first)};
      for (PageId id = run.first; id < run.first + run.count; ++id) {
        PageFrame& f = frames_[id];
        assert(f.owner != -1 && "double free");
        assert(f.pin_count == 0 && "freeing a pinned page");
        // Whatever the owner wrote lingers: that is the security hazard
        // eager / lazy zeroing must neutralize for the next owner.
        if (f.content == PageContent::kData) {
          f.content = PageContent::kResidue;
        }
        if (f.content == PageContent::kZeroed) {
          ++prezeroed_free_;
        }
        f.owner = -1;
        f.in_lazy_table = false;
        f.ever_owned = true;
      }
      // LIFO at run granularity: freshly freed extents are reallocated
      // first, like the kernel's per-CPU page caches — which is exactly
      // what makes cross-tenant residue a real hazard under churn.
      free_runs_[node].push_front(FreeRun{run.first, run.count, /*recycled=*/true});
      free_count_[node] += run.count;
      total += run.count;
      rest.first += run.count;
      rest.count -= run.count;
    }
  }
  used_pages_ -= total;
  SampleFreeTrack();
}

void PhysicalMemory::FreePages(std::span<const PageId> pages) {
  // Flat compatibility overload: one free-store push per page, like the
  // pre-extent per-frame free list — the store ends up holding single-page
  // extents, exactly as the historical allocator's free list did. Counters
  // and subsequent retrieval costs are unchanged (batches only depend on
  // free counts, not extent structure).
  for (PageId id : pages) {
    PageFrame& f = frames_[id];
    assert(f.owner != -1 && "double free");
    assert(f.pin_count == 0 && "freeing a pinned page");
    if (f.content == PageContent::kData) {
      f.content = PageContent::kResidue;
    }
    if (f.content == PageContent::kZeroed) {
      ++prezeroed_free_;
    }
    f.owner = -1;
    f.in_lazy_table = false;
    f.ever_owned = true;
    const int node = NodeOfFrame(id);
    free_runs_[node].push_front(FreeRun{id, 1, /*recycled=*/true});
    ++free_count_[node];
  }
  used_pages_ -= pages.size();
  SampleFreeTrack();
}

Task PhysicalMemory::ChargeZeroing(uint64_t total, uint64_t remote, WaitCtx ctx) {
  // Zeroing is a memset loop: one thread streams at per_thread rate when
  // DRAM is idle, but concurrent zeroers share the aggregate DRAM write
  // bandwidth — a dozen threads saturate it, and 200 containers each
  // zeroing 512 MiB crawl at the fair share (§3.2.3). The thread also burns
  // CPU while it streams; that load runs concurrently with the transfer.
  // Frames on a remote node stream across the socket interconnect at a
  // penalty, so the effective per-thread rate is blended by locality.
  const double remote_fraction = static_cast<double>(remote) / static_cast<double>(total);
  const double slowdown = 1.0 + (remote_zeroing_penalty_ - 1.0) * remote_fraction;
  const double rate = per_thread_zeroing_bps_ / slowdown;
  const double bytes = static_cast<double>(total * page_size_);
  Process cpu_load = sim_->Spawn(cpu_->Compute(Seconds(bytes / rate)));
  co_await zero_dram_.Transfer(bytes, rate, ctx);
  co_await cpu_load.Join();
  pages_zeroed_ += total;
}

Task PhysicalMemory::ZeroPages(std::span<const PageRun> runs, WaitCtx ctx) {
  const uint64_t total = PageCountOfRuns(runs);
  if (total == 0) {
    co_return;
  }
  // Locality is analytic over runs: within one node the remote contribution
  // is all-or-nothing, and a run that straddles a boundary (possible after
  // caller-side coalescing) is split arithmetically — the remote count comes
  // out exactly equal to the per-page accounting.
  const int home = HomeNode(frames_[runs.front().first].owner);
  uint64_t remote = 0;
  for (const PageRun& whole : runs) {
    assert(whole.count > 0);
    PageRun rest = whole;
    while (rest.count > 0) {
      const int node = NodeOfFrame(rest.first);
      const PageId node_end = static_cast<PageId>(node + 1) * pages_per_node_;
      const uint64_t span = std::min<uint64_t>(rest.count, node_end - rest.first);
      if (node != home) {
        remote += span;
      }
      rest.first += span;
      rest.count -= span;
    }
  }
  co_await ChargeZeroing(total, remote, ctx);
  for (const PageRun& run : runs) {
    for (PageId id = run.first; id < run.first + run.count; ++id) {
      MarkZeroed(frames_[id]);
    }
  }
}

Task PhysicalMemory::ZeroPages(std::span<const PageId> pages, WaitCtx ctx) {
  if (pages.empty()) {
    co_return;
  }
  const int home = HomeNode(frames_[pages.front()].owner);
  uint64_t remote = 0;
  for (PageId id : pages) {
    if (NodeOfFrame(id) != home) {
      ++remote;
    }
  }
  co_await ChargeZeroing(pages.size(), remote, ctx);
  for (PageId id : pages) {
    MarkZeroed(frames_[id]);
  }
}

Task PhysicalMemory::ZeroPage(PageId page, WaitCtx ctx) {
  const PageId one[] = {page};
  co_await ZeroPages(std::span<const PageId>(one), ctx);
}

Task PhysicalMemory::PinPages(std::span<const PageRun> runs, WaitCtx ctx) {
  uint64_t total = 0;
  for (const PageRun& run : runs) {
    for (PageId id = run.first; id < run.first + run.count; ++id) {
      ++frames_[id].pin_count;
    }
    total += run.count;
  }
  pinned_pages_ += total;
  SamplePinnedTrack();
  co_await cpu_->Compute(cost_.page_pin * static_cast<double>(total), ctx);
}

Task PhysicalMemory::PinPages(std::span<const PageId> pages, WaitCtx ctx) {
  for (PageId id : pages) {
    ++frames_[id].pin_count;
  }
  pinned_pages_ += pages.size();
  SamplePinnedTrack();
  co_await cpu_->Compute(cost_.page_pin * static_cast<double>(pages.size()), ctx);
}

void PhysicalMemory::UnpinPages(std::span<const PageRun> runs) {
  for (const PageRun& run : runs) {
    for (PageId id = run.first; id < run.first + run.count; ++id) {
      assert(frames_[id].pin_count > 0);
      --frames_[id].pin_count;
    }
    assert(pinned_pages_ >= run.count);
    pinned_pages_ -= run.count;
  }
  SamplePinnedTrack();
}

void PhysicalMemory::UnpinPages(std::span<const PageId> pages) {
  for (PageId id : pages) {
    assert(frames_[id].pin_count > 0);
    --frames_[id].pin_count;
  }
  assert(pinned_pages_ >= pages.size());
  pinned_pages_ -= pages.size();
  SamplePinnedTrack();
}

}  // namespace fastiov
