#include "src/mem/physical_memory.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace fastiov {
namespace {

// Contiguous free runs rarely exceed this many pages on a loaded host.
constexpr uint64_t kMaxBatchPages = 64;

// Upper bound on materialized frames; keeps a 4 KiB-page configuration from
// requesting hundreds of millions of frame structs. Small-page experiments
// should use a reduced HostSpec::memory_bytes.
constexpr uint64_t kMaxModeledPages = 32ull << 20;

const char* kContentNames[] = {"residue", "zeroed", "data"};

}  // namespace

const char* PageContentName(PageContent c) {
  return kContentNames[static_cast<size_t>(c)];
}

PhysicalMemory::PhysicalMemory(Simulation& sim, const HostSpec& host, const CostModel& cost,
                               uint64_t page_size, double fragmentation)
    : sim_(&sim),
      cost_(cost),
      page_size_(page_size),
      total_pages_(host.memory_bytes / page_size),
      fragmentation_(std::clamp(fragmentation, 0.0, 1.0)),
      interleave_homes_(host.numa_interleave_homes),
      per_thread_zeroing_bps_(host.per_thread_zeroing_bps),
      remote_zeroing_penalty_(host.remote_zeroing_penalty),
      zero_dram_(sim, host.zeroing_dram_bandwidth_bps) {
  assert(page_size > 0);
  assert(host.numa_nodes > 0);
  assert(total_pages_ <= kMaxModeledPages &&
         "too many frames to model; reduce HostSpec::memory_bytes for small pages");
  frames_.resize(total_pages_);
  const auto nodes = static_cast<uint64_t>(host.numa_nodes);
  pages_per_node_ = (total_pages_ + nodes - 1) / nodes;
  free_lists_.resize(nodes);
  for (PageId i = 0; i < total_pages_; ++i) {
    free_lists_[NodeOfFrame(i)].push_back(i);
  }
}

void PhysicalMemory::PreZeroFreePages(double fraction) {
  // The idle-time scrubber works through each node's pool proportionally.
  for (auto& free_list : free_lists_) {
    const auto target = static_cast<uint64_t>(
        std::round(fraction * static_cast<double>(free_list.size())));
    uint64_t done = 0;
    for (PageId id : free_list) {
      if (done >= target) {
        break;
      }
      if (frames_[id].content == PageContent::kResidue) {
        frames_[id].content = PageContent::kZeroed;
        ++prezeroed_free_;
      }
      ++done;
    }
  }
}

uint64_t PhysicalMemory::NextBatchSize(uint64_t remaining) {
  const double shrink = 1.0 - fragmentation_;
  auto nominal = static_cast<uint64_t>(
      std::max(1.0, std::round(static_cast<double>(kMaxBatchPages) * shrink)));
  if (nominal > 1) {
    // Mild variability in free-run lengths.
    nominal = static_cast<uint64_t>(
        sim_->rng().UniformInt(static_cast<int64_t>(std::max<uint64_t>(1, nominal / 2)),
                               static_cast<int64_t>(nominal)));
  }
  return std::min(nominal, remaining);
}

PageId PhysicalMemory::TakeFromNode(int node, int owner) {
  std::deque<PageId>& free_list = free_lists_[node];
  const PageId id = free_list.front();
  free_list.pop_front();
  PageFrame& f = frames_[id];
  assert(f.owner == -1);
  if (f.ever_owned) {
    ++reused_allocations_;
  }
  f.owner = owner;
  f.ever_owned = true;
  f.pin_count = 0;
  f.in_lazy_table = false;
  if (f.content == PageContent::kZeroed) {
    assert(prezeroed_free_ > 0);
    --prezeroed_free_;
  }
  return id;
}

Task PhysicalMemory::RetrievePages(int owner, uint64_t num_pages, std::vector<PageId>* out) {
  assert(out != nullptr);
  if (num_pages > free_pages()) {
    throw std::runtime_error("PhysicalMemory: out of memory");
  }
  const int home = HomeNode(owner);
  uint64_t batches = 0;
  uint64_t remaining = num_pages;
  while (remaining > 0) {
    // Pick the node: home first, then spill to the fullest remote node.
    int node = home;
    if (free_lists_[node].empty()) {
      uint64_t best = 0;
      for (int n = 0; n < numa_nodes(); ++n) {
        if (free_lists_[n].size() > best) {
          best = free_lists_[n].size();
          node = n;
        }
      }
    }
    const uint64_t batch =
        std::min(NextBatchSize(remaining), static_cast<uint64_t>(free_lists_[node].size()));
    for (uint64_t i = 0; i < batch; ++i) {
      out->push_back(TakeFromNode(node, owner));
    }
    if (node == home) {
      local_allocations_ += batch;
    } else {
      remote_allocations_ += batch;
    }
    remaining -= batch;
    ++batches;
  }
  used_pages_ += num_pages;
  batches_retrieved_ += batches;
  co_await cpu_->Compute(cost_.page_retrieve_batch * static_cast<double>(batches));
}

void PhysicalMemory::FreePages(std::span<const PageId> pages) {
  for (PageId id : pages) {
    PageFrame& f = frames_[id];
    assert(f.owner != -1 && "double free");
    assert(f.pin_count == 0 && "freeing a pinned page");
    // Whatever the owner wrote lingers: that is the security hazard eager /
    // lazy zeroing must neutralize for the next owner.
    if (f.content == PageContent::kData) {
      f.content = PageContent::kResidue;
    }
    if (f.content == PageContent::kZeroed) {
      ++prezeroed_free_;
    }
    f.owner = -1;
    f.in_lazy_table = false;
    // LIFO: freshly freed frames are reallocated first, like the kernel's
    // per-CPU page caches — which is exactly what makes cross-tenant
    // residue a real hazard under churn.
    free_lists_[NodeOfFrame(id)].push_front(id);
  }
  used_pages_ -= pages.size();
}

Task PhysicalMemory::ZeroPages(std::span<const PageId> pages) {
  if (pages.empty()) {
    co_return;
  }
  // Zeroing is a memset loop: one thread streams at per_thread rate when
  // DRAM is idle, but concurrent zeroers share the aggregate DRAM write
  // bandwidth — a dozen threads saturate it, and 200 containers each
  // zeroing 512 MiB crawl at the fair share (§3.2.3). The thread also burns
  // CPU while it streams; that load runs concurrently with the transfer.
  // Frames on a remote node stream across the socket interconnect at a
  // penalty, so the effective per-thread rate is blended by locality.
  const int home = HomeNode(frames_[pages.front()].owner);
  uint64_t remote = 0;
  for (PageId id : pages) {
    if (NodeOfFrame(id) != home) {
      ++remote;
    }
  }
  const double remote_fraction =
      static_cast<double>(remote) / static_cast<double>(pages.size());
  const double slowdown = 1.0 + (remote_zeroing_penalty_ - 1.0) * remote_fraction;
  const double rate = per_thread_zeroing_bps_ / slowdown;
  const double bytes = static_cast<double>(pages.size() * page_size_);
  Process cpu_load = sim_->Spawn(cpu_->Compute(Seconds(bytes / rate)));
  co_await zero_dram_.Transfer(bytes, rate);
  co_await cpu_load.Join();
  for (PageId id : pages) {
    frames_[id].content = PageContent::kZeroed;
  }
  pages_zeroed_ += pages.size();
}

Task PhysicalMemory::ZeroPage(PageId page) {
  const PageId one[] = {page};
  co_await ZeroPages(one);
}

Task PhysicalMemory::PinPages(std::span<const PageId> pages) {
  for (PageId id : pages) {
    ++frames_[id].pin_count;
  }
  co_await cpu_->Compute(cost_.page_pin * static_cast<double>(pages.size()));
}

void PhysicalMemory::UnpinPages(std::span<const PageId> pages) {
  for (PageId id : pages) {
    assert(frames_[id].pin_count > 0);
    --frames_[id].pin_count;
  }
}

}  // namespace fastiov
