// Physical page-frame model.
//
// Frames carry a content tag instead of real bytes: the tag is what lets the
// test suite prove the lazy-zeroing correctness properties of §4.3.2 (a
// guest must never observe kResidue, and data written by the hypervisor or a
// virtio backend must never be destroyed by a late zeroing).
#ifndef SRC_MEM_PAGE_H_
#define SRC_MEM_PAGE_H_

#include <cstdint>

namespace fastiov {

// Index of a physical page frame within PhysicalMemory.
using PageId = uint64_t;
inline constexpr PageId kInvalidPage = ~0ull;

enum class PageContent : uint8_t {
  kResidue,  // stale data from a previous owner — a leak if a guest reads it
  kZeroed,   // scrubbed
  kData,     // live data written by the current owner / hypervisor / device
};

const char* PageContentName(PageContent c);

// Packed to 8 bytes: the allocator, zeroing engine and pin path all sweep
// the frame array, so halving the per-frame footprint halves their memory
// traffic.
struct PageFrame {
  int32_t owner = -1;        // owning microVM pid, -1 while free
  uint16_t pin_count = 0;    // >0 prevents reclaim (DMA pinning)
  PageContent content = PageContent::kResidue;
  bool in_lazy_table : 1 = false;  // registered with fastiovd for deferred zeroing
  bool ever_owned : 1 = false;     // has belonged to some owner before (reuse tracking)
};
static_assert(sizeof(PageFrame) == 8, "keep the frame array sweep-friendly");

}  // namespace fastiov

#endif  // SRC_MEM_PAGE_H_
