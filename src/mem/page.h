// Physical page-frame model.
//
// Frames carry a content tag instead of real bytes: the tag is what lets the
// test suite prove the lazy-zeroing correctness properties of §4.3.2 (a
// guest must never observe kResidue, and data written by the hypervisor or a
// virtio backend must never be destroyed by a late zeroing).
#ifndef SRC_MEM_PAGE_H_
#define SRC_MEM_PAGE_H_

#include <cstdint>

namespace fastiov {

// Index of a physical page frame within PhysicalMemory.
using PageId = uint64_t;
inline constexpr PageId kInvalidPage = ~0ull;

enum class PageContent : uint8_t {
  kResidue,  // stale data from a previous owner — a leak if a guest reads it
  kZeroed,   // scrubbed
  kData,     // live data written by the current owner / hypervisor / device
};

const char* PageContentName(PageContent c);

struct PageFrame {
  PageContent content = PageContent::kResidue;
  int32_t owner = -1;       // owning microVM pid, -1 while free
  int32_t pin_count = 0;    // >0 prevents reclaim (DMA pinning)
  bool in_lazy_table = false;  // registered with fastiovd for deferred zeroing
  bool ever_owned = false;     // has belonged to some owner before (reuse tracking)
};

}  // namespace fastiov

#endif  // SRC_MEM_PAGE_H_
