// Run-compressed guest-frame table (memslot backing store).
//
// A GuestMemoryRegion used to hold one PageId per page — a 512 MiB guest is
// 131072 vector slots written and read one by one. FrameMap stores the same
// page_index -> frame relation as sorted runs: a DMA-mapped region is a
// handful of entries, and the EPT-fault path's single-page touches insert
// 1-page runs that coalesce with their neighbours lazily. Point lookups are
// O(log runs); nothing flattens on the hot path.
#ifndef SRC_MEM_FRAME_MAP_H_
#define SRC_MEM_FRAME_MAP_H_

#include <cassert>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "src/mem/page_run.h"

namespace fastiov {

class FrameMap {
 public:
  FrameMap() = default;

  // Sets the region size in pages; all slots start unpopulated.
  void Reset(uint64_t num_pages) {
    num_pages_ = num_pages;
    runs_.clear();
    populated_ = 0;
  }

  // Total page slots (populated or not).
  uint64_t size() const { return num_pages_; }
  uint64_t populated() const { return populated_; }
  bool fully_populated() const { return populated_ == num_pages_; }

  // Frame backing slot `index`, or kInvalidPage when unpopulated.
  PageId Get(uint64_t index) const {
    assert(index < num_pages_);
    auto it = runs_.upper_bound(index);
    if (it == runs_.begin()) {
      return kInvalidPage;
    }
    --it;
    const uint64_t offset = index - it->first;
    if (offset >= it->second.count) {
      return kInvalidPage;
    }
    return it->second.first + offset;
  }

  // Populates one slot (must be empty), merging with adjacent runs when the
  // frame is contiguous — the lazy split/merge of the EPT-fault path.
  void Set(uint64_t index, PageId frame) {
    assert(index < num_pages_);
    assert(frame != kInvalidPage);
    auto next = runs_.lower_bound(index);
    if (next != runs_.begin()) {
      auto prev = std::prev(next);
      assert(index >= prev->first + prev->second.count && "slot already populated");
      if (index == prev->first + prev->second.count &&
          frame == prev->second.first + prev->second.count) {
        ++prev->second.count;
        ++populated_;
        // The grown run may now touch its successor.
        if (next != runs_.end() && next->first == index + 1 &&
            next->second.first == frame + 1) {
          prev->second.count += next->second.count;
          runs_.erase(next);
        }
        return;
      }
    }
    assert((next == runs_.end() || next->first > index) && "slot already populated");
    if (next != runs_.end() && next->first == index + 1 && next->second.first == frame + 1) {
      const PageRun merged{frame, next->second.count + 1};
      runs_.erase(next);
      runs_.emplace(index, merged);
    } else {
      runs_.emplace(index, PageRun{frame, 1});
    }
    ++populated_;
  }

  // Replaces the content with `runs` laid out from slot 0 (the DMA-map
  // result: region pages 0..N-1 backed by the retrieved extents, in order).
  void AssignRuns(std::span<const PageRun> runs) {
    runs_.clear();
    populated_ = 0;
    uint64_t slot = 0;
    for (const PageRun& r : runs) {
      assert(r.count > 0);
      if (!runs_.empty()) {
        auto last = std::prev(runs_.end());
        if (last->first + last->second.count == slot &&
            last->second.first + last->second.count == r.first) {
          last->second.count += r.count;
          slot += r.count;
          populated_ += r.count;
          continue;
        }
      }
      runs_.emplace(slot, r);
      slot += r.count;
      populated_ += r.count;
    }
    assert(slot <= num_pages_ && "more frames than region slots");
  }

  // Replaces the content with a flat page list laid out from slot 0
  // (kInvalidPage entries stay unpopulated). Cold paths and tests.
  void AssignPages(std::span<const PageId> pages) {
    assert(pages.size() <= num_pages_);
    runs_.clear();
    populated_ = 0;
    for (uint64_t i = 0; i < pages.size(); ++i) {
      if (pages[i] != kInvalidPage) {
        Set(i, pages[i]);
      }
    }
  }

  // Drops all frames; the region size is unchanged.
  void Clear() {
    runs_.clear();
    populated_ = 0;
  }

  // Calls f(first_slot_index, run) for each populated run in slot order.
  template <typename F>
  void ForEachRun(F&& f) const {
    for (const auto& [index, run] : runs_) {
      f(index, run);
    }
  }

  // One PageId per slot, kInvalidPage in holes. Tests and cold paths only.
  std::vector<PageId> Flatten() const {
    std::vector<PageId> pages(num_pages_, kInvalidPage);
    for (const auto& [index, run] : runs_) {
      for (uint64_t i = 0; i < run.count; ++i) {
        pages[index + i] = run.first + i;
      }
    }
    return pages;
  }

  size_t num_runs() const { return runs_.size(); }

  bool operator==(const FrameMap&) const = default;

 private:
  uint64_t num_pages_ = 0;
  uint64_t populated_ = 0;
  std::map<uint64_t, PageRun> runs_;  // key: first slot index of the run
};

}  // namespace fastiov

#endif  // SRC_MEM_FRAME_MAP_H_
