// Host physical memory: NUMA-aware frame allocator, zeroing engine,
// pre-zero pool.
//
// The allocator is frame-granular at the configured page size (4 KiB or
// 2 MiB hugepages), split evenly across the host's NUMA nodes. The free
// store is run-structured: each node holds a deque of contiguous extents
// (PageRun), and retrieval hands out runs directly — the batch structure of
// §3.2.3/P2 falls out of the extent lengths, with a fragmentation factor
// shortening them. Allocations prefer the owner's home node and spill to
// remote nodes when the local one is exhausted. Runs never span NUMA nodes.
//
// All per-page costs (retrieval batches, zeroing bytes, pin charges) are
// computed analytically from run lengths; the span<const PageId> overloads
// exist for arbitrary non-contiguous page sets (fastiovd's background
// scrubber, tests) and charge identically.
//
// Zeroing is the heart of the paper's bottleneck 2: ZeroPages charges a
// shared DRAM-bandwidth resource (per-thread-capped), so 200 concurrent
// 512 MiB zeroing jobs contend exactly like the testbed's memory system;
// frames remote to the zeroing thread stream across the socket interconnect
// at a penalty.
#ifndef SRC_MEM_PHYSICAL_MEMORY_H_
#define SRC_MEM_PHYSICAL_MEMORY_H_

#include <cstdint>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/config/cost_model.h"
#include "src/mem/page.h"
#include "src/mem/page_run.h"
#include "src/simcore/resources.h"
#include "src/simcore/simulation.h"
#include "src/stats/blocked_time.h"
#include "src/stats/counter_track.h"

namespace fastiov {

class PhysicalMemory {
 public:
  // Single-page allocations (EPT-fault storms) refill a per-owner cache of
  // this many pages at once — the kernel per-CPU page-cache analog — so
  // fault paths pay the batched retrieval cost the model intends.
  static constexpr uint64_t kRefillCachePages = 8;

  // `page_size` is the allocation granule (kSmallPageSize or kHugePageSize).
  // `fragmentation` in [0,1]: 0 = fully contiguous free memory, 1 = every
  // batch degenerates to a single page.
  PhysicalMemory(Simulation& sim, const HostSpec& host, const CostModel& cost,
                 uint64_t page_size, double fragmentation = 0.0);

  uint64_t page_size() const { return page_size_; }
  uint64_t total_pages() const { return total_pages_; }
  uint64_t free_pages() const { return total_pages_ - used_pages_; }
  uint64_t used_pages() const { return used_pages_; }
  int numa_nodes() const { return static_cast<int>(free_runs_.size()); }

  // NUMA node a frame belongs to (frames are striped in contiguous slabs).
  int NodeOfFrame(PageId id) const { return static_cast<int>(id / pages_per_node_); }
  // Node a container's allocations prefer: round-robin by pid when homes
  // are interleaved, node 0 under a packing policy.
  int HomeNode(int owner) const {
    if (owner <= 0 || !interleave_homes_) {
      return 0;
    }
    return owner % numa_nodes();
  }
  uint64_t free_pages_on_node(int node) const { return free_count_[node]; }

  // Marks `fraction` of currently free pages as pre-zeroed (the HawkEye-style
  // baseline: zeroing performed during memory idle time, §6.1). Instant.
  void PreZeroFreePages(double fraction);
  uint64_t prezeroed_available() const { return prezeroed_free_; }

  // Retrieves `num_pages` free frames for `owner`, charging the per-batch
  // retrieval cost on the CPU pool. Appends contiguous runs to *out.
  // Allocation drains the owner's home node first, then spills to the other
  // nodes; runs never span NUMA nodes. Pre-zeroed frames arrive with
  // content kZeroed; the rest as kResidue.
  Task RetrievePages(int owner, uint64_t num_pages, std::vector<PageRun>* out,
                     WaitCtx ctx = {});
  // Flat-list compatibility overload (cold paths and tests): identical cost,
  // appends one PageId per page.
  Task RetrievePages(int owner, uint64_t num_pages, std::vector<PageId>* out,
                     WaitCtx ctx = {});

  // Single-page retrieval through the per-owner refill cache (EPT-fault
  // path). Charges a batched retrieval only when the cache is empty.
  Task RetrieveSinglePage(int owner, PageId* out, WaitCtx ctx = {});
  // Returns an owner's unused cached pages to the free pool (VM teardown).
  void DrainRefillCache(int owner);
  uint64_t refill_cached_pages(int owner) const;

  // Returns frames to their nodes' free pools (LIFO at run granularity —
  // freshly freed extents are reallocated first, like the kernel's per-CPU
  // page caches). Whatever the previous owner left in them remains. Runs
  // spanning a node boundary are split internally.
  void FreePages(std::span<const PageRun> runs);
  void FreePages(std::span<const PageId> pages);

  // Zeroes the given frames, charging the shared zeroing bandwidth; frames
  // remote to the (owner's) zeroing thread pay the interconnect penalty.
  // The run and flat-list overloads charge identically.
  Task ZeroPages(std::span<const PageRun> runs, WaitCtx ctx = {});
  Task ZeroPages(std::span<const PageId> pages, WaitCtx ctx = {});
  // Zeroes a single frame (EPT-fault path).
  Task ZeroPage(PageId page, WaitCtx ctx = {});

  // Pins frames for DMA, charging per-page pin cost on the CPU pool.
  Task PinPages(std::span<const PageRun> runs, WaitCtx ctx = {});
  Task PinPages(std::span<const PageId> pages, WaitCtx ctx = {});
  void UnpinPages(std::span<const PageRun> runs);
  void UnpinPages(std::span<const PageId> pages);

  PageFrame& frame(PageId id) { return frames_[id]; }
  const PageFrame& frame(PageId id) const { return frames_[id]; }

  CpuPool& cpu() { return *cpu_; }
  void set_cpu(CpuPool* cpu) { cpu_ = cpu; }

  // Attaches counter tracks sampled at every allocation/pin state change
  // (nullptr detaches). Memory-only; no effect on the simulation.
  void InstrumentTracks(CounterTrack* free_frames, CounterTrack* pinned) {
    free_track_ = free_frames;
    pinned_track_ = pinned;
  }

  // Statistics.
  // Host-wide sum of pin counts — 0 when no DMA mapping is live, which is
  // the leak invariant the chaos tests assert after full teardown.
  uint64_t total_pinned_pages() const { return pinned_pages_; }
  uint64_t total_pages_zeroed() const { return pages_zeroed_; }
  uint64_t total_batches_retrieved() const { return batches_retrieved_; }
  // Allocations that handed out a frame a previous owner had used.
  uint64_t reused_allocations() const { return reused_allocations_; }
  uint64_t local_allocations() const { return local_allocations_; }
  uint64_t remote_allocations() const { return remote_allocations_; }

 private:
  // A free-store extent. `recycled` marks extents that came back through
  // FreePages (every page in them has had an owner), so reuse accounting is
  // a per-run add instead of a per-page ever_owned scan on the hot
  // retrieval path.
  struct FreeRun {
    PageId first = 0;
    uint64_t count = 0;
    bool recycled = false;
  };

  // Number of pages the next retrieval batch can carry, given fragmentation.
  uint64_t NextBatchSize(uint64_t remaining);
  // Takes up to `max_pages` from the front extent of the node's pool (must
  // be non-empty) and marks them allocated to `owner`.
  PageRun TakeRunFromNode(int node, int owner, uint64_t max_pages);
  // Shared zeroing engine: charges DRAM bandwidth + CPU for `total` pages of
  // which `remote` are off the zeroing thread's node.
  Task ChargeZeroing(uint64_t total, uint64_t remote, WaitCtx ctx);
  // Stamp a frame zeroed, keeping the prezeroed-free stat consistent when
  // the frame was freed while the zeroing charge was in flight (an abort
  // teardown can release pages the background scrubber already claimed; the
  // write still lands, leaving a pre-zeroed free frame).
  void MarkZeroed(PageFrame& f) {
    if (f.owner == -1 && f.content != PageContent::kZeroed) {
      ++prezeroed_free_;
    }
    f.content = PageContent::kZeroed;
  }
  // Counter-track sampling helpers (single branch when uninstrumented).
  void SampleFreeTrack() {
    if (free_track_ != nullptr) {
      free_track_->Record(sim_->Now(), static_cast<double>(free_pages()));
    }
  }
  void SamplePinnedTrack() {
    if (pinned_track_ != nullptr) {
      pinned_track_->Record(sim_->Now(), static_cast<double>(pinned_pages_));
    }
  }

  Simulation* sim_;
  const CostModel cost_;
  uint64_t page_size_;
  uint64_t total_pages_;
  uint64_t pages_per_node_;
  uint64_t used_pages_ = 0;
  double fragmentation_;
  bool interleave_homes_;
  double per_thread_zeroing_bps_;
  double remote_zeroing_penalty_;
  BandwidthResource zero_dram_;
  CpuPool* cpu_ = nullptr;  // set by the host harness

  std::vector<PageFrame> frames_;
  std::vector<std::deque<FreeRun>> free_runs_;  // one extent list per NUMA node
  std::vector<uint64_t> free_count_;            // free pages per node
  std::unordered_map<int, std::vector<PageRun>> refill_cache_;  // per owner
  uint64_t prezeroed_free_ = 0;

  uint64_t pinned_pages_ = 0;
  uint64_t pages_zeroed_ = 0;
  uint64_t batches_retrieved_ = 0;
  uint64_t reused_allocations_ = 0;
  uint64_t local_allocations_ = 0;
  uint64_t remote_allocations_ = 0;

  CounterTrack* free_track_ = nullptr;
  CounterTrack* pinned_track_ = nullptr;
};

}  // namespace fastiov

#endif  // SRC_MEM_PHYSICAL_MEMORY_H_
