// virtio: vring and the virtioFS shared file system.
//
// This is the para-virtualization data path of §4.3.2's second exception:
// the guest posts a buffer address into the vring, the host backend writes
// file data into the shared buffer, and the guest reads it. If the buffer
// pages sit in fastiovd's lazy-zero table when the guest finally touches
// them, the fault handler would zero away the file data — so the FastIOV
// frontend proactively EPT-faults the buffer before posting it. A knob
// disables the proactive faults to demonstrate the corruption.
#ifndef SRC_VIRTIO_VIRTIO_H_
#define SRC_VIRTIO_VIRTIO_H_

#include <cstdint>
#include <deque>

#include "src/config/cost_model.h"
#include "src/kvm/microvm.h"
#include "src/simcore/resources.h"
#include "src/simcore/simulation.h"

namespace fastiov {

// A descriptor ring living in guest memory.
class VirtQueue {
 public:
  struct Descriptor {
    uint64_t buffer_gpa;
    uint64_t length;
  };

  // `ring_gpa`: guest address of the vring itself (one page).
  VirtQueue(MicroVm& vm, uint64_t ring_gpa);

  // Guest side: writes a descriptor into the ring (touches the vring page).
  Task GuestPost(uint64_t buffer_gpa, uint64_t length);

  // Host side: pops the next descriptor.
  bool HostPop(Descriptor* out);

  uint64_t ring_gpa() const { return ring_gpa_; }
  size_t depth() const { return ring_.size(); }

 private:
  MicroVm* vm_;
  uint64_t ring_gpa_;
  std::deque<Descriptor> ring_;
};

class VirtioFs {
 public:
  // `buffer_gpa`/`buffer_bytes`: the shared data buffer window in guest RAM;
  // the vring occupies the page right before it.
  VirtioFs(Simulation& sim, CpuPool& cpu, const CostModel& cost, MicroVm& vm,
           BandwidthResource& fs_bandwidth, uint64_t buffer_gpa, uint64_t buffer_bytes);

  // Guest reads `bytes` from a host file through the shared buffer.
  // `proactive_faults`: FastIOV's frontend change (read the first byte of
  // every buffer page before posting).
  Task GuestReadFile(uint64_t bytes, bool proactive_faults);

  uint64_t corrupted_reads() const { return corrupted_reads_; }
  uint64_t reads_completed() const { return reads_completed_; }

 private:
  // Host backend: ensure buffer pages exist, then write file data to them.
  Task HostWriteBuffer(uint64_t gpa, uint64_t bytes);

  Simulation* sim_;
  CpuPool* cpu_;
  const CostModel cost_;
  MicroVm* vm_;
  BandwidthResource* fs_bandwidth_;
  uint64_t buffer_gpa_;
  uint64_t buffer_bytes_;
  VirtQueue vring_;

  uint64_t corrupted_reads_ = 0;
  uint64_t reads_completed_ = 0;
};

}  // namespace fastiov

#endif  // SRC_VIRTIO_VIRTIO_H_
