#include "src/virtio/virtio.h"

#include <algorithm>
#include <cassert>

namespace fastiov {

VirtQueue::VirtQueue(MicroVm& vm, uint64_t ring_gpa) : vm_(&vm), ring_gpa_(ring_gpa) {}

Task VirtQueue::GuestPost(uint64_t buffer_gpa, uint64_t length) {
  // Writing the descriptor touches the vring page itself.
  co_await vm_->TouchRange(ring_gpa_, 64, /*write=*/true);
  ring_.push_back(Descriptor{buffer_gpa, length});
}

bool VirtQueue::HostPop(Descriptor* out) {
  if (ring_.empty()) {
    return false;
  }
  *out = ring_.front();
  ring_.pop_front();
  return true;
}

VirtioFs::VirtioFs(Simulation& sim, CpuPool& cpu, const CostModel& cost, MicroVm& vm,
                   BandwidthResource& fs_bandwidth, uint64_t buffer_gpa, uint64_t buffer_bytes)
    : sim_(&sim),
      cpu_(&cpu),
      cost_(cost),
      vm_(&vm),
      fs_bandwidth_(&fs_bandwidth),
      buffer_gpa_(buffer_gpa),
      buffer_bytes_(buffer_bytes),
      vring_(vm, buffer_gpa - vm.pmem().page_size()) {}

Task VirtioFs::HostWriteBuffer(uint64_t gpa, uint64_t bytes) {
  GuestMemoryRegion* region = vm_->RegionForGpa(gpa);
  assert(region != nullptr);
  const uint64_t page_size = vm_->pmem().page_size();
  const uint64_t first = (gpa - region->gpa_base) / page_size;
  const uint64_t pages = (bytes + page_size - 1) / page_size;
  // The backend writes through its HVA mapping; unallocated pages take a
  // host page fault (allocate + host-kernel zeroing) first.
  std::vector<uint64_t> missing;
  for (uint64_t i = 0; i < pages; ++i) {
    if (region->frames.Get(first + i) == kInvalidPage) {
      missing.push_back(first + i);
    }
  }
  if (!missing.empty()) {
    assert(!region->dma_mapped);
    std::vector<PageRun> fresh;
    co_await vm_->pmem().RetrievePages(vm_->pid(), missing.size(), &fresh);
    co_await vm_->pmem().ZeroPages(fresh);
    size_t mi = 0;
    for (const PageRun& run : fresh) {
      for (PageId frame = run.first; frame < run.first + run.count; ++frame) {
        region->frames.Set(missing[mi++], frame);
      }
    }
  }
  // Copy the file data (shared fs bandwidth).
  co_await fs_bandwidth_->Transfer(static_cast<double>(bytes));
  vm_->HostWritePages(*region, first, pages);
}

Task VirtioFs::GuestReadFile(uint64_t bytes, bool proactive_faults) {
  const uint64_t page_size = vm_->pmem().page_size();
  uint64_t remaining = bytes;
  while (remaining > 0) {
    const uint64_t chunk = std::min(remaining, buffer_bytes_);
    if (proactive_faults) {
      // FastIOV frontend: fault the buffer in before handing it to the host
      // so any pending lazy zeroing happens *now*, not after the backend
      // fills it.
      co_await vm_->ProactiveFault(buffer_gpa_, chunk);
    }
    co_await vring_.GuestPost(buffer_gpa_, chunk);
    VirtQueue::Descriptor desc{};
    const bool popped = vring_.HostPop(&desc);
    assert(popped);
    (void)popped;
    co_await HostWriteBuffer(desc.buffer_gpa, desc.length);
    // Guest consumes the data.
    co_await vm_->TouchRange(buffer_gpa_, chunk, /*write=*/false);
    GuestMemoryRegion* region = vm_->RegionForGpa(buffer_gpa_);
    const uint64_t first = (buffer_gpa_ - region->gpa_base) / page_size;
    const uint64_t pages = (chunk + page_size - 1) / page_size;
    for (uint64_t i = 0; i < pages; ++i) {
      const PageId frame = region->frames.Get(first + i);
      if (frame == kInvalidPage ||
          vm_->pmem().frame(frame).content != PageContent::kData) {
        // File data destroyed by a late lazy zeroing (§4.3.2, exception 2).
        ++corrupted_reads_;
      }
    }
    remaining -= chunk;
  }
  ++reads_completed_;
}

}  // namespace fastiov
