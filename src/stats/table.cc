#include "src/stats/table.h"

#include <algorithm>
#include <cstdio>

namespace fastiov {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", seconds);
  return buf;
}

std::string FormatPercent(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace fastiov
