#include "src/stats/metrics.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/stats/json_writer.h"

namespace fastiov {
namespace {

// Sorted (name, id) view over an id-keyed map, for deterministic export with
// the same lexicographic key order std::map used to provide.
template <typename Map>
std::vector<std::pair<const std::string*, const typename Map::mapped_type*>>
SortedByName(const NameTable& names, const Map& map) {
  std::vector<std::pair<const std::string*, const typename Map::mapped_type*>> out;
  out.reserve(map.size());
  for (const auto& [id, value] : map) {
    out.emplace_back(&names.Name(id), &value);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  return out;
}

}  // namespace

uint64_t MetricsRegistry::Counter(std::string_view name) const {
  const NameId id = names_.Find(name);
  if (id == kInvalidNameId) {
    return 0;
  }
  auto it = counters_.find(id);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::Gauge(std::string_view name) const {
  const NameId id = names_.Find(name);
  if (id == kInvalidNameId) {
    return 0.0;
  }
  auto it = gauges_.find(id);
  return it == gauges_.end() ? 0.0 : it->second;
}

const Summary* MetricsRegistry::FindSummary(std::string_view name) const {
  const NameId id = names_.Find(name);
  if (id == kInvalidNameId) {
    return nullptr;
  }
  auto it = summaries_.find(id);
  return it == summaries_.end() ? nullptr : &it->second;
}

bool MetricsRegistry::Has(std::string_view name) const {
  const NameId id = names_.Find(name);
  if (id == kInvalidNameId) {
    return false;
  }
  return counters_.count(id) > 0 || gauges_.count(id) > 0 ||
         summaries_.count(id) > 0;
}

void MetricsRegistry::WriteJson(JsonWriter& json) const {
  json.BeginObject();
  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, value] : SortedByName(names_, counters_)) {
    json.KV(*name, *value);
  }
  json.EndObject();
  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, value] : SortedByName(names_, gauges_)) {
    json.KV(*name, *value);
  }
  json.EndObject();
  json.Key("summaries");
  json.BeginObject();
  for (const auto& [name, s] : SortedByName(names_, summaries_)) {
    json.Key(*name);
    json.BeginObject()
        .KV("count", static_cast<uint64_t>(s->Count()))
        .KV("mean", s->Mean())
        .KV("p50", s->Percentile(50))
        .KV("p99", s->Percentile(99))
        .KV("max", s->Max())
        .EndObject();
  }
  json.EndObject();
  json.EndObject();
}

}  // namespace fastiov
