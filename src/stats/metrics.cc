#include "src/stats/metrics.h"

#include "src/stats/json_writer.h"

namespace fastiov {

uint64_t MetricsRegistry::Counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::Gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const Summary* MetricsRegistry::FindSummary(const std::string& name) const {
  auto it = summaries_.find(name);
  return it == summaries_.end() ? nullptr : &it->second;
}

bool MetricsRegistry::Has(const std::string& name) const {
  return counters_.count(name) > 0 || gauges_.count(name) > 0 ||
         summaries_.count(name) > 0;
}

void MetricsRegistry::WriteJson(JsonWriter& json) const {
  json.BeginObject();
  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, value] : counters_) {
    json.KV(name, value);
  }
  json.EndObject();
  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, value] : gauges_) {
    json.KV(name, value);
  }
  json.EndObject();
  json.Key("summaries");
  json.BeginObject();
  for (const auto& [name, s] : summaries_) {
    json.Key(name);
    json.BeginObject()
        .KV("count", static_cast<uint64_t>(s.Count()))
        .KV("mean", s.Mean())
        .KV("p50", s.Percentile(50))
        .KV("p99", s.Percentile(99))
        .KV("max", s.Max())
        .EndObject();
  }
  json.EndObject();
  json.EndObject();
}

}  // namespace fastiov
