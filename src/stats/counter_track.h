// Change-driven counter tracks for the unified trace (Perfetto "C" events):
// free frames, pinned pages, IOMMU mappings, VFs in use.
//
// Subsystems hold a nullable CounterTrack* and call Record at each mutation;
// when observability is off the pointer is null and the probe is a single
// branch. Sampling is change-driven — never a periodic process — so the
// track adds no simulation events.
#ifndef SRC_STATS_COUNTER_TRACK_H_
#define SRC_STATS_COUNTER_TRACK_H_

#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "src/simcore/time.h"

namespace fastiov {

struct CounterPoint {
  SimTime t;
  double value;
};

class CounterTrack {
 public:
  explicit CounterTrack(std::string name) : name_(std::move(name)) {}

  // Appends a point; coalesces same-timestamp updates (last write wins) and
  // drops no-op repeats so traces stay small.
  void Record(SimTime t, double value) {
    if (!points_.empty()) {
      if (points_.back().t == t) {
        points_.back().value = value;
        return;
      }
      if (points_.back().value == value) {
        return;
      }
    }
    points_.push_back(CounterPoint{t, value});
  }

  const std::string& name() const { return name_; }
  const std::vector<CounterPoint>& points() const { return points_; }

 private:
  std::string name_;
  std::vector<CounterPoint> points_;
};

// Owns tracks with stable addresses, in creation order.
class CounterTrackSet {
 public:
  CounterTrack* Create(const std::string& name) {
    store_.emplace_back(name);
    return &store_.back();
  }

  size_t size() const { return store_.size(); }
  const CounterTrack& at(size_t i) const { return store_[i]; }

 private:
  std::deque<CounterTrack> store_;
};

}  // namespace fastiov

#endif  // SRC_STATS_COUNTER_TRACK_H_
