// Plain-text table rendering for the benchmark harnesses that regenerate the
// paper's tables and figures.
#ifndef SRC_STATS_TABLE_H_
#define SRC_STATS_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace fastiov {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers shared by benches.
std::string FormatSeconds(double seconds);     // "16.20"
std::string FormatPercent(double fraction);    // 0.481 -> "48.1%"
std::string FormatDouble(double v, int precision = 2);

}  // namespace fastiov

#endif  // SRC_STATS_TABLE_H_
