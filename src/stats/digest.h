// Incremental FNV-1a 64-bit digest plus an ostream adapter, so result
// documents can be hashed as they stream out instead of being buffered whole.
#ifndef SRC_STATS_DIGEST_H_
#define SRC_STATS_DIGEST_H_

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <streambuf>
#include <string>
#include <string_view>

namespace fastiov {

// Incremental FNV-1a over a byte stream. Same polynomial for a single
// Update("abc") and Update("a"), Update("bc") — chunking never matters.
class Fnv1a64 {
 public:
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  uint64_t value() const { return state_; }
  size_t bytes() const { return bytes_; }
  std::string Hex() const;  // 16 lowercase hex digits

 private:
  uint64_t state_ = 0xcbf29ce484222325ull;
  size_t bytes_ = 0;
};

// A streambuf that folds every byte into an Fnv1a64 and optionally tees the
// bytes to a downstream stream. Lets callers compute a digest of streamed
// JSON without materializing the document.
class DigestStreambuf : public std::streambuf {
 public:
  explicit DigestStreambuf(std::ostream* tee = nullptr) : tee_(tee) {}

  const Fnv1a64& digest() const { return digest_; }

 protected:
  int_type overflow(int_type ch) override;
  std::streamsize xsputn(const char* s, std::streamsize n) override;

 private:
  Fnv1a64 digest_;
  std::ostream* tee_;
};

// Convenience ostream wrapper around DigestStreambuf.
class DigestOstream : public std::ostream {
 public:
  explicit DigestOstream(std::ostream* tee = nullptr)
      : std::ostream(&buf_), buf_(tee) {}

  uint64_t value() const { return buf_.digest().value(); }
  size_t bytes() const { return buf_.digest().bytes(); }
  std::string Hex() const { return buf_.digest().Hex(); }

 private:
  DigestStreambuf buf_;
};

}  // namespace fastiov

#endif  // SRC_STATS_DIGEST_H_
