#include "src/stats/lock_stats.h"

#include <algorithm>
#include <ostream>

#include "src/stats/table.h"

namespace fastiov {

std::vector<const LockStats*> LockStatsRegistry::ByTotalWait() const {
  std::vector<const LockStats*> out;
  out.reserve(store_.size());
  for (const LockStats& s : store_) {
    out.push_back(&s);
  }
  std::stable_sort(out.begin(), out.end(), [](const LockStats* a, const LockStats* b) {
    return a->wait_seconds().Sum() > b->wait_seconds().Sum();
  });
  return out;
}

void PrintLockReport(const std::vector<const LockStats*>& locks, std::ostream& os,
                     size_t max_rows) {
  TextTable table({"lock", "acquisitions", "contended", "wait-total", "wait-mean",
                   "wait-max", "hold-mean", "max-queue"});
  size_t emitted = 0;
  for (const LockStats* lock : locks) {
    if (max_rows != 0 && emitted >= max_rows) {
      break;
    }
    const Summary& w = lock->wait_seconds();
    table.AddRow({lock->name(), std::to_string(lock->acquisitions()),
                  std::to_string(lock->contended()), FormatSeconds(w.Sum()) + " s",
                  FormatSeconds(w.Mean()) + " s", FormatSeconds(w.Max()) + " s",
                  FormatSeconds(lock->hold_seconds().Mean()) + " s",
                  std::to_string(lock->max_queue_depth())});
    ++emitted;
  }
  table.Print(os);
}

}  // namespace fastiov
