// Minimal JSON parser (RFC 8259 subset) for tools that read back the
// simulator's own result JSON — primarily tools/simreport. No external
// dependencies; enough to round-trip everything JsonWriter emits.
#ifndef SRC_STATS_JSON_READER_H_
#define SRC_STATS_JSON_READER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace fastiov {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }

  // Object access. Members keep insertion order (matching the writer).
  const std::vector<std::pair<std::string, JsonValue>>& Members() const {
    return members_;
  }
  // Returns nullptr when the key is absent (or this is not an object).
  const JsonValue* Find(const std::string& key) const;
  // Convenience lookups with defaults.
  double GetDouble(const std::string& key, double fallback = 0.0) const;
  std::string GetString(const std::string& key, const std::string& fallback = "") const;

  static JsonValue MakeNull() { return JsonValue(); }

 private:
  friend class JsonReader;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

class JsonReader {
 public:
  // Parses a complete document. On failure returns std::nullopt-like null and
  // sets *error (when non-null) with a position-annotated message.
  static bool Parse(const std::string& text, JsonValue* out, std::string* error);

 private:
  JsonReader(const std::string& text, std::string* error)
      : text_(text), error_(error) {}
  bool ParseValue(JsonValue* out);
  bool ParseObject(JsonValue* out);
  bool ParseArray(JsonValue* out);
  bool ParseString(std::string* out);
  bool ParseNumber(JsonValue* out);
  bool ParseLiteral(const char* literal, JsonValue* out, JsonValue::Type type,
                    bool bool_value);
  void SkipWhitespace();
  bool Fail(const std::string& message);

  const std::string& text_;
  size_t pos_ = 0;
  std::string* error_;
};

}  // namespace fastiov

#endif  // SRC_STATS_JSON_READER_H_
