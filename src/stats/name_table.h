// Interned-name table: hot paths key metrics/locks/timeline steps on a
// 32-bit NameId instead of hashing and comparing strings per event.
#ifndef SRC_STATS_NAME_TABLE_H_
#define SRC_STATS_NAME_TABLE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace fastiov {

using NameId = uint32_t;
inline constexpr NameId kInvalidNameId = static_cast<NameId>(-1);

// Append-only intern table. Ids are dense and assigned in first-Intern order,
// so they are deterministic for a deterministic call sequence. Strings live in
// a deque (stable addresses — the lookup index holds views into them), and
// Name() references stay valid for the table's lifetime.
class NameTable {
 public:
  NameTable() = default;
  NameTable(const NameTable& other) { *this = other; }
  NameTable& operator=(const NameTable& other);
  // Moving a deque never relocates its elements, so the index's views into
  // the stored strings (including SSO buffers) stay valid.
  NameTable(NameTable&&) = default;
  NameTable& operator=(NameTable&&) = default;

  // Returns the id for `name`, interning it on first use.
  NameId Intern(std::string_view name);

  // Returns the id for `name` or kInvalidNameId if it was never interned.
  NameId Find(std::string_view name) const;

  const std::string& Name(NameId id) const { return names_[id]; }
  size_t size() const { return names_.size(); }

 private:
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, NameId> index_;
};

}  // namespace fastiov

#endif  // SRC_STATS_NAME_TABLE_H_
