// Sample summaries with exact percentiles.
#ifndef SRC_STATS_SUMMARY_H_
#define SRC_STATS_SUMMARY_H_

#include <cstddef>
#include <vector>

#include "src/simcore/time.h"

namespace fastiov {

// Collects double samples; percentiles are exact (computed on a sorted copy,
// cached until the next Add).
class Summary {
 public:
  void Add(double v);
  void AddTime(SimTime t) { Add(t.ToSecondsF()); }

  size_t Count() const { return samples_.size(); }
  bool Empty() const { return samples_.empty(); }
  double Sum() const { return sum_; }
  double Mean() const;
  double Min() const;
  double Max() const;
  double Variance() const;  // population variance
  double Stddev() const;

  // p in [0, 100]; linear interpolation between closest ranks.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }
  double P99() const { return Percentile(99.0); }

  const std::vector<double>& samples() const { return samples_; }

  // Merges another summary's samples into this one.
  void Merge(const Summary& other);

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  double sum_ = 0.0;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// A fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
// edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t num_bins);

  void Add(double v);
  size_t TotalCount() const { return total_; }
  size_t BinCount(size_t i) const { return bins_[i]; }
  size_t NumBins() const { return bins_.size(); }
  double BinLow(size_t i) const;
  double BinHigh(size_t i) const { return BinLow(i + 1); }

 private:
  double lo_;
  double hi_;
  std::vector<size_t> bins_;
  size_t total_ = 0;
};

// Points of an empirical CDF, for rendering distribution figures.
struct CdfPoint {
  double value;
  double fraction;  // P(X <= value)
};
std::vector<CdfPoint> ComputeCdf(const Summary& summary, size_t max_points = 64);

}  // namespace fastiov

#endif  // SRC_STATS_SUMMARY_H_
