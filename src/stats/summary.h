// Sample summaries: exact percentiles up to a pinned sample threshold, then a
// deterministic log-binned streaming histogram (O(1) memory per sample).
#ifndef SRC_STATS_SUMMARY_H_
#define SRC_STATS_SUMMARY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/simcore/time.h"

namespace fastiov {

// Collects double samples. Up to `exact_limit` samples the summary is exact:
// every sample is retained and percentiles are computed on a sorted copy
// (cached until the next Add), byte-identical to the historical behavior.
// When the count first exceeds the limit, the retained samples are folded —
// in insertion order — into a fixed-size log-linear histogram (~32 sub-bins
// per octave over ~2^-40..2^40, frexp-based, no libm log) and the sample
// vector is freed; from then on each Add is O(1) memory. Mean/Min/Max/Sum are
// tracked incrementally and identical in both modes; percentiles in streaming
// mode interpolate within a bin (relative error bounded by the ~1.6% bin
// width) and clamp to the observed [min, max].
class Summary {
 public:
  // Sentinel: never switch to streaming; pure exact mode.
  static constexpr size_t kUnlimited = static_cast<size_t>(-1);

  // Process-wide default for the exact-sample threshold (initially 65536).
  // All existing experiment configs stay below it, so their results are
  // byte-identical to the pre-streaming implementation.
  static size_t DefaultExactLimit();
  static void SetDefaultExactLimit(size_t limit);

  Summary() : exact_limit_(DefaultExactLimit()) {}
  explicit Summary(size_t exact_limit) : exact_limit_(exact_limit) {}

  void Add(double v);
  void AddTime(SimTime t) { Add(t.ToSecondsF()); }

  size_t Count() const { return count_; }
  bool Empty() const { return count_ == 0; }
  double Sum() const { return sum_; }
  double Mean() const;
  double Min() const { return min_; }
  double Max() const { return max_; }
  double Variance() const;  // population variance
  double Stddev() const;

  // p in [0, 100]; linear interpolation between closest ranks (exact mode)
  // or within the covering histogram bin (streaming mode).
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }
  double P99() const { return Percentile(99.0); }

  // True once the summary has spilled to the streaming histogram. samples()
  // and SortedSamples() are empty in that mode.
  bool streaming() const { return !bins_.empty(); }
  size_t exact_limit() const { return exact_limit_; }

  const std::vector<double>& samples() const { return samples_; }
  // Sorted view of the retained samples (exact mode). Sorted once and cached;
  // callers must not mutate. Empty in streaming mode.
  const std::vector<double>& SortedSamples() const;

  // Merges another summary's samples into this one. If both sides are exact
  // and the combined count stays under the limit, this is byte-identical to
  // re-adding the other side's samples in order.
  void Merge(const Summary& other);

 private:
  void EnsureSorted() const;
  void SwitchToStreaming();
  void AddToBins(double v);
  double ValueAtRank(double rank) const;  // streaming mode; rank in [0, n-1]

  std::vector<double> samples_;
  double sum_ = 0.0;
  double sumsq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  size_t count_ = 0;
  size_t exact_limit_;
  std::vector<uint64_t> bins_;  // empty until streaming mode activates
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// A fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
// edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t num_bins);

  void Add(double v);
  size_t TotalCount() const { return total_; }
  size_t BinCount(size_t i) const { return bins_[i]; }
  size_t NumBins() const { return bins_.size(); }
  double BinLow(size_t i) const;
  double BinHigh(size_t i) const { return BinLow(i + 1); }

 private:
  double lo_;
  double hi_;
  std::vector<size_t> bins_;
  size_t total_ = 0;
};

// Points of an empirical CDF, for rendering distribution figures.
struct CdfPoint {
  double value;
  double fraction;  // P(X <= value)
};
std::vector<CdfPoint> ComputeCdf(const Summary& summary, size_t max_points = 64);

}  // namespace fastiov

#endif  // SRC_STATS_SUMMARY_H_
