// Aggregates the per-run observability state: the lock-stats registry the
// sync primitives report into, the blocked-time recorder wait contexts point
// at, and the counter tracks subsystems sample into.
//
// A Host owns one hub when observability is enabled; subsystems receive raw
// pointers (nullable — null means "probes off", costing one branch).
#ifndef SRC_STATS_OBSERVABILITY_H_
#define SRC_STATS_OBSERVABILITY_H_

#include "src/stats/blocked_time.h"
#include "src/stats/counter_track.h"
#include "src/stats/lock_stats.h"
#include "src/stats/metrics.h"

namespace fastiov {

struct ObservabilityHub {
  MetricsRegistry metrics;
  LockStatsRegistry lock_stats;
  BlockedTimeRecorder blocked;
  CounterTrackSet tracks;
};

}  // namespace fastiov

#endif  // SRC_STATS_OBSERVABILITY_H_
