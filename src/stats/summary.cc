#include "src/stats/summary.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fastiov {

void Summary::Add(double v) {
  samples_.push_back(v);
  sum_ += v;
  sorted_valid_ = false;
}

double Summary::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return sum_ / static_cast<double>(samples_.size());
}

void Summary::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::Min() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Summary::Max() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Summary::Variance() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double mean = Mean();
  double acc = 0.0;
  for (double v : samples_) {
    acc += (v - mean) * (v - mean);
  }
  return acc / static_cast<double>(samples_.size());
}

double Summary::Stddev() const { return std::sqrt(Variance()); }

double Summary::Percentile(double p) const {
  EnsureSorted();
  if (sorted_.empty()) {
    return 0.0;
  }
  if (sorted_.size() == 1) {
    return sorted_.front();
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void Summary::Merge(const Summary& other) {
  for (double v : other.samples_) {
    Add(v);
  }
}

Histogram::Histogram(double lo, double hi, size_t num_bins)
    : lo_(lo), hi_(hi), bins_(num_bins, 0) {
  assert(hi > lo && num_bins > 0);
}

void Histogram::Add(double v) {
  const double span = hi_ - lo_;
  double idx = (v - lo_) / span * static_cast<double>(bins_.size());
  size_t bin = 0;
  if (idx >= static_cast<double>(bins_.size())) {
    bin = bins_.size() - 1;
  } else if (idx > 0.0) {
    bin = static_cast<size_t>(idx);
  }
  ++bins_[bin];
  ++total_;
}

double Histogram::BinLow(size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(bins_.size());
}

std::vector<CdfPoint> ComputeCdf(const Summary& summary, size_t max_points) {
  std::vector<CdfPoint> out;
  const size_t n = summary.Count();
  if (n == 0) {
    return out;
  }
  std::vector<double> sorted = summary.samples();
  std::sort(sorted.begin(), sorted.end());
  const size_t step = std::max<size_t>(1, n / max_points);
  for (size_t i = 0; i < n; i += step) {
    out.push_back({sorted[i], static_cast<double>(i + 1) / static_cast<double>(n)});
  }
  if (out.back().value != sorted.back() || out.back().fraction != 1.0) {
    out.push_back({sorted.back(), 1.0});
  }
  return out;
}

}  // namespace fastiov
