#include "src/stats/summary.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

namespace fastiov {
namespace {

// Log-linear bin layout for the streaming histogram. A positive value
// v = f * 2^e (frexp, f in [0.5, 1)) maps to octave e clamped to
// [kMinExp, kMaxExp] and sub-bin floor((f - 0.5) * 2 * kSubBins). Bin 0 is
// the underflow/non-positive catch-all. No libm log: the layout is exact
// integer arithmetic on the float's exponent, so it is deterministic across
// platforms and insertion orders.
constexpr int kMinExp = -40;  // 2^-40 ~ 9.1e-13
constexpr int kMaxExp = 40;   // 2^40  ~ 1.1e12
constexpr int kSubBins = 32;  // per octave -> bin width ~1.6% of the value
constexpr size_t kNumBins =
    1 + static_cast<size_t>(kMaxExp - kMinExp + 1) * kSubBins;

size_t BinIndex(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) {
    return 0;
  }
  int e = 0;
  const double f = std::frexp(v, &e);
  if (e < kMinExp) {
    return 0;
  }
  if (e > kMaxExp) {
    return kNumBins - 1;
  }
  int sub = static_cast<int>((f - 0.5) * (2 * kSubBins));
  sub = std::clamp(sub, 0, kSubBins - 1);
  return 1 + static_cast<size_t>(e - kMinExp) * kSubBins +
         static_cast<size_t>(sub);
}

double BinLowEdge(size_t i) {
  if (i == 0) {
    return 0.0;
  }
  const size_t rel = i - 1;
  const int e = kMinExp + static_cast<int>(rel / kSubBins);
  const int sub = static_cast<int>(rel % kSubBins);
  return std::ldexp(0.5 + static_cast<double>(sub) / (2.0 * kSubBins), e);
}

double BinHighEdge(size_t i) {
  if (i == 0) {
    return BinLowEdge(1);
  }
  return BinLowEdge(i + 1);
}

std::atomic<size_t> g_default_exact_limit{65536};

}  // namespace

size_t Summary::DefaultExactLimit() {
  return g_default_exact_limit.load(std::memory_order_relaxed);
}

void Summary::SetDefaultExactLimit(size_t limit) {
  g_default_exact_limit.store(limit, std::memory_order_relaxed);
}

void Summary::Add(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  sumsq_ += v * v;
  ++count_;
  if (!bins_.empty()) {
    ++bins_[BinIndex(v)];
    return;
  }
  samples_.push_back(v);
  sorted_valid_ = false;
  if (count_ > exact_limit_) {
    SwitchToStreaming();
  }
}

void Summary::SwitchToStreaming() {
  bins_.assign(kNumBins, 0);
  for (double v : samples_) {
    ++bins_[BinIndex(v)];
  }
  samples_.clear();
  samples_.shrink_to_fit();
  sorted_.clear();
  sorted_.shrink_to_fit();
  sorted_valid_ = false;
}

double Summary::Mean() const {
  if (count_ == 0) {
    return 0.0;
  }
  return sum_ / static_cast<double>(count_);
}

void Summary::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

const std::vector<double>& Summary::SortedSamples() const {
  EnsureSorted();
  return sorted_;
}

double Summary::Variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  if (streaming()) {
    const double n = static_cast<double>(count_);
    const double mean = sum_ / n;
    return std::max(0.0, sumsq_ / n - mean * mean);
  }
  const double mean = Mean();
  double acc = 0.0;
  for (double v : samples_) {
    acc += (v - mean) * (v - mean);
  }
  return acc / static_cast<double>(count_);
}

double Summary::Stddev() const { return std::sqrt(Variance()); }

double Summary::ValueAtRank(double rank) const {
  uint64_t before = 0;
  for (size_t i = 0; i < bins_.size(); ++i) {
    const uint64_t c = bins_[i];
    if (c == 0) {
      continue;
    }
    if (rank < static_cast<double>(before + c)) {
      const double lo = BinLowEdge(i);
      const double hi = BinHighEdge(i);
      const double within =
          (rank - static_cast<double>(before) + 0.5) / static_cast<double>(c);
      const double v = lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
      return std::clamp(v, min_, max_);
    }
    before += c;
  }
  return max_;
}

double Summary::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  if (count_ == 1) {
    return min_;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(count_ - 1);
  if (streaming()) {
    return ValueAtRank(rank);
  }
  EnsureSorted();
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void Summary::Merge(const Summary& other) {
  if (other.count_ == 0) {
    return;
  }
  if (!other.streaming()) {
    for (double v : other.samples_) {
      Add(v);
    }
    return;
  }
  // The other side already spilled: fold bins and moments directly.
  if (!streaming()) {
    SwitchToStreaming();
  }
  for (size_t i = 0; i < bins_.size(); ++i) {
    bins_[i] += other.bins_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  sumsq_ += other.sumsq_;
  count_ += other.count_;
}

Histogram::Histogram(double lo, double hi, size_t num_bins)
    : lo_(lo), hi_(hi), bins_(num_bins, 0) {
  assert(hi > lo && num_bins > 0);
}

void Histogram::Add(double v) {
  const double span = hi_ - lo_;
  double idx = (v - lo_) / span * static_cast<double>(bins_.size());
  size_t bin = 0;
  if (idx >= static_cast<double>(bins_.size())) {
    bin = bins_.size() - 1;
  } else if (idx > 0.0) {
    bin = static_cast<size_t>(idx);
  }
  ++bins_[bin];
  ++total_;
}

double Histogram::BinLow(size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(bins_.size());
}

std::vector<CdfPoint> ComputeCdf(const Summary& summary, size_t max_points) {
  std::vector<CdfPoint> out;
  const size_t n = summary.Count();
  if (n == 0) {
    return out;
  }
  if (summary.streaming()) {
    // Walk percentile ranks rather than raw bins so the values clamp to
    // [min, max] exactly like Percentile() does.
    const size_t steps = std::max<size_t>(2, max_points);
    out.reserve(steps);
    for (size_t i = 0; i < steps; ++i) {
      const double frac =
          static_cast<double>(i + 1) / static_cast<double>(steps);
      out.push_back({summary.Percentile(frac * 100.0), frac});
    }
    out.back().value = summary.Max();
    out.back().fraction = 1.0;
    return out;
  }
  const std::vector<double>& sorted = summary.SortedSamples();
  const size_t step = std::max<size_t>(1, n / max_points);
  for (size_t i = 0; i < n; i += step) {
    out.push_back({sorted[i], static_cast<double>(i + 1) / static_cast<double>(n)});
  }
  if (out.back().value != sorted.back() || out.back().fraction != 1.0) {
    out.push_back({sorted.back(), 1.0});
  }
  return out;
}

}  // namespace fastiov
