#include "src/stats/fault_stats.h"

#include "src/stats/json_writer.h"
#include "src/stats/table.h"

namespace fastiov {

FaultStatsReport FaultStatsReport::FromInjector(const FaultInjector& injector) {
  FaultStatsReport report;
  for (int i = 0; i < kNumFaultSites; ++i) {
    const FaultSite site = static_cast<FaultSite>(i);
    const SiteFaultCounters& c = injector.counters(site);
    const bool armed = injector.plan().sites.count(site) > 0;
    if (c.calls == 0 && c.aborted == 0 && !armed) {
      continue;
    }
    FaultSiteStats s;
    s.site = FaultSiteName(site);
    s.calls = c.calls;
    s.injected = c.injected;
    s.retried = c.retried;
    s.recovered = c.recovered;
    s.aborted = c.aborted;
    report.sites.push_back(std::move(s));
  }
  report.total_injected = injector.TotalInjected();
  report.total_retried = injector.TotalRetried();
  report.total_recovered = injector.TotalRecovered();
  report.total_aborted = injector.TotalAborted();
  return report;
}

void WriteFaultStatsJson(const FaultStatsReport& report, JsonWriter& json) {
  json.BeginObject();
  json.KV("injected", report.total_injected);
  json.KV("retried", report.total_retried);
  json.KV("recovered", report.total_recovered);
  json.KV("aborted", report.total_aborted);
  json.Key("sites");
  json.BeginObject();
  for (const FaultSiteStats& s : report.sites) {
    json.Key(s.site);
    json.BeginObject()
        .KV("calls", s.calls)
        .KV("injected", s.injected)
        .KV("retried", s.retried)
        .KV("recovered", s.recovered)
        .KV("aborted", s.aborted)
        .EndObject();
  }
  json.EndObject();
  json.EndObject();
}

void PrintFaultStatsTable(const FaultStatsReport& report, std::ostream& os) {
  TextTable table({"site", "calls", "injected", "retried", "recovered", "aborted"});
  for (const FaultSiteStats& s : report.sites) {
    table.AddRow({s.site, std::to_string(s.calls), std::to_string(s.injected),
                  std::to_string(s.retried), std::to_string(s.recovered),
                  std::to_string(s.aborted)});
  }
  table.AddRow({"total", "", std::to_string(report.total_injected),
                std::to_string(report.total_retried), std::to_string(report.total_recovered),
                std::to_string(report.total_aborted)});
  table.Print(os);
}

}  // namespace fastiov
