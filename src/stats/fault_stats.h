// Reporting helpers for the fault-injection counters: a plain snapshot
// struct (decoupled from the live FaultInjector so results outlive the
// simulation), a text table, and a JSON section.
#ifndef SRC_STATS_FAULT_STATS_H_
#define SRC_STATS_FAULT_STATS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/fault/fault.h"

namespace fastiov {

class JsonWriter;

struct FaultSiteStats {
  std::string site;
  uint64_t calls = 0;
  uint64_t injected = 0;
  uint64_t retried = 0;
  uint64_t recovered = 0;
  uint64_t aborted = 0;
};

struct FaultStatsReport {
  std::vector<FaultSiteStats> sites;  // sites that were reached or armed
  uint64_t total_injected = 0;
  uint64_t total_retried = 0;
  uint64_t total_recovered = 0;
  uint64_t total_aborted = 0;

  static FaultStatsReport FromInjector(const FaultInjector& injector);
};

// Writes the "fault_injection" object (caller supplies the surrounding
// object context and has already emitted the key, or wants a standalone
// value).
void WriteFaultStatsJson(const FaultStatsReport& report, JsonWriter& json);

void PrintFaultStatsTable(const FaultStatsReport& report, std::ostream& os);

}  // namespace fastiov

#endif  // SRC_STATS_FAULT_STATS_H_
