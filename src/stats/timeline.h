// Startup-timeline recording — the reproduction of the paper's asynchronous
// "logging tool" (§3.1) that breaks container startup into named steps
// (Fig. 5 / Tab. 1).
//
// Each container registers a lane; pipeline code records spans
// (step name, begin, end). Spans flagged `off_critical_path` (FastIOV's
// asynchronously executed VF driver init) are excluded from per-container
// startup accounting but still available for inspection.
//
// Memory model (fleet scale): step names are interned once into a NameTable
// and spans carry a 32-bit NameId, and every lane maintains an aggregate
// critical-path nanosecond sum per step id. Because simulated time is integer
// nanoseconds, those sums are bit-identical to re-walking the span list, so
// with `set_span_sample_limit(K)` the recorder can keep full span vectors for
// only the first K lanes (deterministic sample, for trace export) while all
// step/startup statistics remain byte-identical to unbounded recording.
#ifndef SRC_STATS_TIMELINE_H_
#define SRC_STATS_TIMELINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/simcore/time.h"
#include "src/stats/name_table.h"
#include "src/stats/summary.h"

namespace fastiov {

// Canonical step names used across the pipeline, matching Fig. 5.
inline constexpr const char kStepCgroup[] = "0-cgroup";
inline constexpr const char kStepDmaRam[] = "1-dma-ram";
inline constexpr const char kStepVirtioFs[] = "2-virtiofs";
inline constexpr const char kStepDmaImage[] = "3-dma-image";
inline constexpr const char kStepVfioDev[] = "4-vfio-dev";
inline constexpr const char kStepVfDriver[] = "5-vf-driver";
// Software-CNI steps (Fig. 14).
inline constexpr const char kStepAddCni[] = "addCNI";

struct Span {
  NameId step = kInvalidNameId;  // resolve via ContainerTimeline::StepNameOf
  SimTime begin;
  SimTime end;
  bool off_critical_path = false;

  SimTime duration() const { return end - begin; }
};

struct ContainerTimeline {
  int id = 0;
  SimTime start;       // startup command issued
  SimTime ready;       // container reported ready
  SimTime task_done;   // application finished (task-completion experiments)
  bool has_ready = false;  // false for containers that aborted before ready
  bool has_task_done = false;
  // Full span lists; empty for lanes beyond the recorder's span-sample limit.
  std::vector<Span> spans;
  // Auxiliary spans (e.g. the supervised link-up process): rendered in the
  // trace on their own thread rows but kept out of `spans` so step-share
  // accounting and step order never see them.
  std::vector<Span> aux_spans;
  // Aggregate critical-path time per step id — always maintained, even for
  // lanes whose span vectors are elided.
  std::vector<int64_t> step_ns;
  // The owning recorder's intern table (fixed up on recorder copy/move).
  const NameTable* names = nullptr;

  SimTime StartupTime() const { return ready - start; }
  // Total time spent in a step on the critical path.
  SimTime StepTime(std::string_view step) const;
  SimTime StepTimeId(NameId step) const {
    if (step == kInvalidNameId || static_cast<size_t>(step) >= step_ns.size()) {
      return SimTime::Zero();
    }
    return SimTime(step_ns[step]);
  }
  const std::string& StepNameOf(const Span& s) const { return names->Name(s.step); }
};

class TimelineRecorder {
 public:
  TimelineRecorder() = default;
  // Lanes hold a pointer to this recorder's NameTable; copies and moves must
  // re-point them at the destination table.
  TimelineRecorder(const TimelineRecorder& other) { *this = other; }
  TimelineRecorder& operator=(const TimelineRecorder& other);
  TimelineRecorder(TimelineRecorder&& other) noexcept { *this = std::move(other); }
  TimelineRecorder& operator=(TimelineRecorder&& other) noexcept;

  // Bounded recording: keep full span vectors only for the first `limit`
  // registered lanes. Aggregate step sums stay on for every lane, so all
  // summary/step statistics are unaffected — only trace export of unsampled
  // lanes loses per-span detail. Set before containers register.
  void set_span_sample_limit(size_t limit) { span_sample_limit_ = limit; }
  size_t span_sample_limit() const { return span_sample_limit_; }

  int RegisterContainer(SimTime start_time);
  void RecordSpan(int container_id, std::string_view step, SimTime begin, SimTime end,
                  bool off_critical_path = false);
  // Records an auxiliary span: trace-only, excluded from step accounting.
  void RecordAuxSpan(int container_id, std::string_view step, SimTime begin, SimTime end);
  void MarkReady(int container_id, SimTime t);
  void MarkTaskDone(int container_id, SimTime t);

  size_t NumContainers() const { return lanes_.size(); }
  const ContainerTimeline& Container(int id) const { return lanes_.at(id); }
  const std::vector<ContainerTimeline>& containers() const { return lanes_; }

  // Startup times (ready - start) across all containers.
  Summary StartupSummary() const;
  // Task-completion times for containers that ran an application.
  Summary TaskCompletionSummary() const;
  // Per-step critical-path durations across containers.
  Summary StepSummary(std::string_view step) const;

  // Tab. 1: share of a step in the average startup time — the mean of the
  // per-container step durations divided by the mean startup time.
  double StepShareOfAverage(std::string_view step) const;
  // Tab. 1: share of a step in the p99 tail — the step time of containers at
  // the startup-time p99, approximated by the mean step share among the
  // slowest 1% of containers.
  double StepShareOfP99(std::string_view step) const;

  // All distinct step names seen, in first-seen order.
  std::vector<std::string> StepNames() const;

  const NameTable& step_names() const { return names_; }
  const std::string& StepName(NameId id) const { return names_.Name(id); }

 private:
  void FixupLanePointers();

  std::vector<ContainerTimeline> lanes_;
  NameTable names_;
  std::vector<NameId> step_order_;
  size_t span_sample_limit_ = static_cast<size_t>(-1);
};

}  // namespace fastiov

#endif  // SRC_STATS_TIMELINE_H_
