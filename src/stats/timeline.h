// Startup-timeline recording — the reproduction of the paper's asynchronous
// "logging tool" (§3.1) that breaks container startup into named steps
// (Fig. 5 / Tab. 1).
//
// Each container registers a lane; pipeline code records spans
// (step name, begin, end). Spans flagged `off_critical_path` (FastIOV's
// asynchronously executed VF driver init) are excluded from per-container
// startup accounting but still available for inspection.
#ifndef SRC_STATS_TIMELINE_H_
#define SRC_STATS_TIMELINE_H_

#include <map>
#include <string>
#include <vector>

#include "src/simcore/time.h"
#include "src/stats/summary.h"

namespace fastiov {

// Canonical step names used across the pipeline, matching Fig. 5.
inline constexpr const char kStepCgroup[] = "0-cgroup";
inline constexpr const char kStepDmaRam[] = "1-dma-ram";
inline constexpr const char kStepVirtioFs[] = "2-virtiofs";
inline constexpr const char kStepDmaImage[] = "3-dma-image";
inline constexpr const char kStepVfioDev[] = "4-vfio-dev";
inline constexpr const char kStepVfDriver[] = "5-vf-driver";
// Software-CNI steps (Fig. 14).
inline constexpr const char kStepAddCni[] = "addCNI";

struct Span {
  std::string step;
  SimTime begin;
  SimTime end;
  bool off_critical_path = false;

  SimTime duration() const { return end - begin; }
};

struct ContainerTimeline {
  int id = 0;
  SimTime start;       // startup command issued
  SimTime ready;       // container reported ready
  SimTime task_done;   // application finished (task-completion experiments)
  bool has_ready = false;  // false for containers that aborted before ready
  bool has_task_done = false;
  std::vector<Span> spans;
  // Auxiliary spans (e.g. the supervised link-up process): rendered in the
  // trace on their own thread rows but kept out of `spans` so step-share
  // accounting and step_order_ never see them.
  std::vector<Span> aux_spans;

  SimTime StartupTime() const { return ready - start; }
  // Total time spent in a step on the critical path.
  SimTime StepTime(const std::string& step) const;
};

class TimelineRecorder {
 public:
  int RegisterContainer(SimTime start_time);
  void RecordSpan(int container_id, const std::string& step, SimTime begin, SimTime end,
                  bool off_critical_path = false);
  // Records an auxiliary span: trace-only, excluded from step accounting.
  void RecordAuxSpan(int container_id, const std::string& step, SimTime begin, SimTime end);
  void MarkReady(int container_id, SimTime t);
  void MarkTaskDone(int container_id, SimTime t);

  size_t NumContainers() const { return lanes_.size(); }
  const ContainerTimeline& Container(int id) const { return lanes_.at(id); }
  const std::vector<ContainerTimeline>& containers() const { return lanes_; }

  // Startup times (ready - start) across all containers.
  Summary StartupSummary() const;
  // Task-completion times for containers that ran an application.
  Summary TaskCompletionSummary() const;
  // Per-step critical-path durations across containers.
  Summary StepSummary(const std::string& step) const;

  // Tab. 1: share of a step in the average startup time — the mean of the
  // per-container step durations divided by the mean startup time.
  double StepShareOfAverage(const std::string& step) const;
  // Tab. 1: share of a step in the p99 tail — the step time of containers at
  // the startup-time p99, approximated by the mean step share among the
  // slowest 1% of containers.
  double StepShareOfP99(const std::string& step) const;

  // All distinct step names seen, in first-seen order.
  std::vector<std::string> StepNames() const;

 private:
  std::vector<ContainerTimeline> lanes_;
  std::vector<std::string> step_order_;
};

}  // namespace fastiov

#endif  // SRC_STATS_TIMELINE_H_
