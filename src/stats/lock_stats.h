// Per-lock contention statistics — the probe data behind the contention
// report (§3's lock analysis: who waited on which lock, for how long, at what
// queue depth, blocked by whom).
//
// A LockStats is attached to a SimMutex / SimRwLock by name; the primitive
// calls the hooks at enqueue / grant / release time. All hooks are memory-only
// (no events, no simulated time, no RNG), so attaching stats never changes a
// run's outcome.
#ifndef SRC_STATS_LOCK_STATS_H_
#define SRC_STATS_LOCK_STATS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/simcore/time.h"
#include "src/stats/name_table.h"
#include "src/stats/summary.h"

namespace fastiov {

// Directed contention edge: `waiter` container parked behind `holder`
// container on this lock. Lane -1 means "not a container" (infrastructure).
struct BlockedByEdge {
  uint64_t count = 0;
  double seconds = 0.0;
};

class LockStats {
 public:
  explicit LockStats(std::string name, NameId id = kInvalidNameId)
      : name_(std::move(name)), id_(id) {}

  // --- probe hooks (called by the sync primitives) ---
  void OnAcquireFast() { ++acquisitions_; }
  // A waiter parked; depth is the queue length including this waiter.
  void OnEnqueue(size_t depth) {
    ++contended_;
    queue_depth_sum_ += static_cast<uint64_t>(depth);
    if (depth > max_queue_depth_) {
      max_queue_depth_ = depth;
    }
  }
  // A parked waiter was granted the lock after `waited`.
  void OnGrant(SimTime waited, int waiter_lane, int holder_lane) {
    ++acquisitions_;
    wait_seconds_.AddTime(waited);
    BlockedByEdge& e = blocked_by_[{waiter_lane, holder_lane}];
    e.count += 1;
    e.seconds += waited.ToSecondsF();
  }
  void OnRelease(SimTime held) { hold_seconds_.AddTime(held); }

  // --- report accessors ---
  const std::string& name() const { return name_; }
  // Interned id within the owning registry (kInvalidNameId if standalone).
  NameId id() const { return id_; }
  uint64_t acquisitions() const { return acquisitions_; }
  uint64_t contended() const { return contended_; }
  size_t max_queue_depth() const { return max_queue_depth_; }
  // Mean queue length observed at enqueue time (0 when never contended).
  double mean_queue_depth() const {
    return contended_ == 0 ? 0.0
                           : static_cast<double>(queue_depth_sum_) /
                                 static_cast<double>(contended_);
  }
  // Wait-time distribution over *contended* acquisitions only.
  const Summary& wait_seconds() const { return wait_seconds_; }
  const Summary& hold_seconds() const { return hold_seconds_; }
  const std::map<std::pair<int, int>, BlockedByEdge>& blocked_by() const {
    return blocked_by_;
  }

 private:
  std::string name_;
  NameId id_ = kInvalidNameId;
  uint64_t acquisitions_ = 0;
  uint64_t contended_ = 0;
  uint64_t queue_depth_sum_ = 0;
  size_t max_queue_depth_ = 0;
  Summary wait_seconds_;
  Summary hold_seconds_;
  std::map<std::pair<int, int>, BlockedByEdge> blocked_by_;
};

// Owns LockStats objects with stable addresses (sync primitives keep raw
// pointers for the lifetime of the simulation). Creation order is preserved
// so reports and JSON are deterministic. Names are interned: lookups by name
// go through a u32 NameId index rather than string comparison.
class LockStatsRegistry {
 public:
  LockStats* Create(std::string_view name) {
    const NameId id = names_.Intern(name);
    store_.emplace_back(std::string(name), id);
    // Duplicate names are allowed (rare); the index keeps the first.
    index_.emplace(id, store_.size() - 1);
    return &store_.back();
  }

  size_t size() const { return store_.size(); }
  const LockStats& at(size_t i) const { return store_[i]; }

  // First lock created under `name`, or nullptr.
  const LockStats* Find(std::string_view name) const {
    const NameId id = names_.Find(name);
    if (id == kInvalidNameId) {
      return nullptr;
    }
    auto it = index_.find(id);
    return it == index_.end() ? nullptr : &store_[it->second];
  }

  // Locks sorted by total wait seconds, descending (ties: creation order).
  std::vector<const LockStats*> ByTotalWait() const;

 private:
  std::deque<LockStats> store_;  // deque: no reallocation, pointers stable
  NameTable names_;
  std::unordered_map<NameId, size_t> index_;
};

// Renders the top-N contended locks table shared by fastiov_sim and
// simreport. max_rows == 0 means all.
void PrintLockReport(const std::vector<const LockStats*>& locks, std::ostream& os,
                     size_t max_rows = 0);

}  // namespace fastiov

#endif  // SRC_STATS_LOCK_STATS_H_
