#include "src/stats/json_writer.h"

#include <cmath>
#include <cstdio>

namespace fastiov {

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes a key:value pair, no comma
  }
  if (!stack_.empty()) {
    if (stack_.back().has_item) {
      *os_ << ',';
    }
    stack_.back().has_item = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  *os_ << '{';
  stack_.push_back({});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  stack_.pop_back();
  *os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  *os_ << '[';
  stack_.push_back({});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  stack_.pop_back();
  *os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MaybeComma();
  *os_ << '"' << Escape(key) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  MaybeComma();
  *os_ << '"' << Escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  MaybeComma();
  if (std::isfinite(v)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    *os_ << buf;
  } else {
    *os_ << "null";  // JSON has no Inf/NaN
  }
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  MaybeComma();
  *os_ << v;
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  MaybeComma();
  *os_ << v;
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  MaybeComma();
  *os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  *os_ << "null";
  return *this;
}

JsonWriter& JsonWriter::RawValue(std::string_view json) {
  MaybeComma();
  *os_ << json;
  return *this;
}

std::string JsonWriter::Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace fastiov
