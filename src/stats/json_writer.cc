#include "src/stats/json_writer.h"

#include <cmath>
#include <cstdio>

namespace fastiov {
namespace {

// True for bytes that pass through the escaper unchanged.
inline bool IsClean(unsigned char c) {
  return c >= 0x20 && c != '"' && c != '\\';
}

}  // namespace

void JsonWriter::Write(std::string_view s) {
  if (str_ != nullptr) {
    str_->append(s.data(), s.size());
  } else {
    os_->write(s.data(), static_cast<std::streamsize>(s.size()));
  }
}

void JsonWriter::Put(char c) {
  if (str_ != nullptr) {
    str_->push_back(c);
  } else {
    os_->put(c);
  }
}

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes a key:value pair, no comma
  }
  if (!stack_.empty()) {
    if (stack_.back().has_item) {
      Put(',');
    }
    stack_.back().has_item = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  Put('{');
  stack_.push_back({});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  stack_.pop_back();
  Put('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  Put('[');
  stack_.push_back({});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  stack_.pop_back();
  Put(']');
  return *this;
}

void JsonWriter::WriteEscaped(std::string_view raw) {
  size_t i = 0;
  while (i < raw.size()) {
    // Fast path: emit the longest clean run in one write, no temporaries.
    size_t j = i;
    while (j < raw.size() && IsClean(static_cast<unsigned char>(raw[j]))) {
      ++j;
    }
    if (j > i) {
      Write(raw.substr(i, j - i));
      i = j;
    }
    if (i >= raw.size()) {
      break;
    }
    const char c = raw[i++];
    switch (c) {
      case '"':
        Write("\\\"");
        break;
      case '\\':
        Write("\\\\");
        break;
      case '\n':
        Write("\\n");
        break;
      case '\r':
        Write("\\r");
        break;
      case '\t':
        Write("\\t");
        break;
      default: {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        Write(buf);
      }
    }
  }
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MaybeComma();
  Put('"');
  WriteEscaped(key);
  Write("\":");
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  MaybeComma();
  Put('"');
  WriteEscaped(v);
  Put('"');
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  MaybeComma();
  if (std::isfinite(v)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    Write(buf);
  } else {
    Write("null");  // JSON has no Inf/NaN
  }
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  Write(buf);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  Write(buf);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  MaybeComma();
  Write(v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  Write("null");
  return *this;
}

JsonWriter& JsonWriter::RawValue(std::string_view json) {
  MaybeComma();
  Write(json);
  return *this;
}

std::string JsonWriter::Escape(std::string_view raw) {
  std::string out;
  JsonWriter w(out);
  w.WriteEscaped(raw);
  return out;
}

}  // namespace fastiov
