#include "src/stats/json_reader.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace fastiov {

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

double JsonValue::GetDouble(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->type() == Type::kNumber) ? v->AsDouble() : fallback;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->type() == Type::kString) ? v->AsString() : fallback;
}

bool JsonReader::Parse(const std::string& text, JsonValue* out, std::string* error) {
  JsonReader reader(text, error);
  reader.SkipWhitespace();
  if (!reader.ParseValue(out)) {
    return false;
  }
  reader.SkipWhitespace();
  if (reader.pos_ != text.size()) {
    return reader.Fail("trailing characters after document");
  }
  return true;
}

bool JsonReader::Fail(const std::string& message) {
  if (error_ != nullptr) {
    *error_ = message + " at offset " + std::to_string(pos_);
  }
  return false;
}

void JsonReader::SkipWhitespace() {
  while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                 text_[pos_] == '\n' || text_[pos_] == '\r')) {
    ++pos_;
  }
}

bool JsonReader::ParseValue(JsonValue* out) {
  SkipWhitespace();
  if (pos_ >= text_.size()) {
    return Fail("unexpected end of input");
  }
  const char c = text_[pos_];
  switch (c) {
    case '{':
      return ParseObject(out);
    case '[':
      return ParseArray(out);
    case '"':
      out->type_ = JsonValue::Type::kString;
      return ParseString(&out->string_);
    case 't':
      return ParseLiteral("true", out, JsonValue::Type::kBool, true);
    case 'f':
      return ParseLiteral("false", out, JsonValue::Type::kBool, false);
    case 'n':
      return ParseLiteral("null", out, JsonValue::Type::kNull, false);
    default:
      if (c == '-' || (c >= '0' && c <= '9')) {
        return ParseNumber(out);
      }
      return Fail(std::string("unexpected character '") + c + "'");
  }
}

bool JsonReader::ParseObject(JsonValue* out) {
  out->type_ = JsonValue::Type::kObject;
  ++pos_;  // '{'
  SkipWhitespace();
  if (pos_ < text_.size() && text_[pos_] == '}') {
    ++pos_;
    return true;
  }
  while (true) {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected object key");
    }
    std::string key;
    if (!ParseString(&key)) {
      return false;
    }
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != ':') {
      return Fail("expected ':' after key");
    }
    ++pos_;
    JsonValue value;
    if (!ParseValue(&value)) {
      return false;
    }
    out->members_.emplace_back(std::move(key), std::move(value));
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Fail("unterminated object");
    }
    if (text_[pos_] == ',') {
      ++pos_;
      continue;
    }
    if (text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    return Fail("expected ',' or '}' in object");
  }
}

bool JsonReader::ParseArray(JsonValue* out) {
  out->type_ = JsonValue::Type::kArray;
  ++pos_;  // '['
  SkipWhitespace();
  if (pos_ < text_.size() && text_[pos_] == ']') {
    ++pos_;
    return true;
  }
  while (true) {
    JsonValue value;
    if (!ParseValue(&value)) {
      return false;
    }
    out->array_.push_back(std::move(value));
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Fail("unterminated array");
    }
    if (text_[pos_] == ',') {
      ++pos_;
      continue;
    }
    if (text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    return Fail("expected ',' or ']' in array");
  }
}

bool JsonReader::ParseString(std::string* out) {
  ++pos_;  // opening quote
  out->clear();
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if (c == '"') {
      ++pos_;
      return true;
    }
    if (c == '\\') {
      if (pos_ + 1 >= text_.size()) {
        return Fail("dangling escape");
      }
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode (BMP only; the writer never emits surrogates).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
      continue;
    }
    out->push_back(c);
    ++pos_;
  }
  return Fail("unterminated string");
}

bool JsonReader::ParseNumber(JsonValue* out) {
  const size_t start = pos_;
  if (pos_ < text_.size() && text_[pos_] == '-') {
    ++pos_;
  }
  while (pos_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
          text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
          text_[pos_] == '+' || text_[pos_] == '-')) {
    ++pos_;
  }
  const std::string token = text_.substr(start, pos_ - start);
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0' || token.empty()) {
    pos_ = start;
    return Fail("malformed number");
  }
  out->type_ = JsonValue::Type::kNumber;
  out->number_ = value;
  return true;
}

bool JsonReader::ParseLiteral(const char* literal, JsonValue* out,
                              JsonValue::Type type, bool bool_value) {
  const size_t len = std::strlen(literal);
  if (text_.compare(pos_, len, literal) != 0) {
    return Fail(std::string("expected '") + literal + "'");
  }
  pos_ += len;
  out->type_ = type;
  out->bool_ = bool_value;
  return true;
}

}  // namespace fastiov
