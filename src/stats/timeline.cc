#include "src/stats/timeline.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace fastiov {

SimTime ContainerTimeline::StepTime(std::string_view step) const {
  if (names == nullptr) {
    return SimTime::Zero();
  }
  return StepTimeId(names->Find(step));
}

TimelineRecorder& TimelineRecorder::operator=(const TimelineRecorder& other) {
  if (this != &other) {
    lanes_ = other.lanes_;
    names_ = other.names_;
    step_order_ = other.step_order_;
    span_sample_limit_ = other.span_sample_limit_;
    FixupLanePointers();
  }
  return *this;
}

TimelineRecorder& TimelineRecorder::operator=(TimelineRecorder&& other) noexcept {
  if (this != &other) {
    lanes_ = std::move(other.lanes_);
    names_ = std::move(other.names_);
    step_order_ = std::move(other.step_order_);
    span_sample_limit_ = other.span_sample_limit_;
    FixupLanePointers();
  }
  return *this;
}

void TimelineRecorder::FixupLanePointers() {
  for (ContainerTimeline& lane : lanes_) {
    lane.names = &names_;
  }
}

int TimelineRecorder::RegisterContainer(SimTime start_time) {
  ContainerTimeline lane;
  lane.id = static_cast<int>(lanes_.size());
  lane.start = start_time;
  lane.ready = start_time;
  lane.names = &names_;
  lanes_.push_back(std::move(lane));
  return lanes_.back().id;
}

void TimelineRecorder::RecordSpan(int container_id, std::string_view step, SimTime begin,
                                  SimTime end, bool off_critical_path) {
  assert(container_id >= 0 && static_cast<size_t>(container_id) < lanes_.size());
  const NameId id = names_.Intern(step);
  if (std::find(step_order_.begin(), step_order_.end(), id) == step_order_.end()) {
    step_order_.push_back(id);
  }
  ContainerTimeline& lane = lanes_[container_id];
  if (!off_critical_path) {
    if (lane.step_ns.size() <= static_cast<size_t>(id)) {
      lane.step_ns.resize(static_cast<size_t>(id) + 1, 0);
    }
    lane.step_ns[id] += (end - begin).ns();
  }
  if (static_cast<size_t>(container_id) < span_sample_limit_) {
    lane.spans.push_back(Span{id, begin, end, off_critical_path});
  }
}

void TimelineRecorder::RecordAuxSpan(int container_id, std::string_view step, SimTime begin,
                                     SimTime end) {
  assert(container_id >= 0 && static_cast<size_t>(container_id) < lanes_.size());
  const NameId id = names_.Intern(step);
  if (static_cast<size_t>(container_id) < span_sample_limit_) {
    lanes_[container_id].aux_spans.push_back(
        Span{id, begin, end, /*off_critical_path=*/true});
  }
}

void TimelineRecorder::MarkReady(int container_id, SimTime t) {
  lanes_[container_id].ready = t;
  lanes_[container_id].has_ready = true;
}

void TimelineRecorder::MarkTaskDone(int container_id, SimTime t) {
  lanes_[container_id].task_done = t;
  lanes_[container_id].has_task_done = true;
}

Summary TimelineRecorder::StartupSummary() const {
  Summary s;
  for (const auto& lane : lanes_) {
    // Containers that aborted before reaching ready (fault-injection runs)
    // have no startup time; including their zero would skew the summary.
    if (lane.has_ready) {
      s.AddTime(lane.StartupTime());
    }
  }
  return s;
}

Summary TimelineRecorder::TaskCompletionSummary() const {
  Summary s;
  for (const auto& lane : lanes_) {
    if (lane.has_task_done) {
      s.AddTime(lane.task_done - lane.start);
    }
  }
  return s;
}

Summary TimelineRecorder::StepSummary(std::string_view step) const {
  const NameId id = names_.Find(step);
  Summary s;
  for (const auto& lane : lanes_) {
    s.AddTime(lane.StepTimeId(id));
  }
  return s;
}

double TimelineRecorder::StepShareOfAverage(std::string_view step) const {
  const Summary startup = StartupSummary();
  if (startup.Empty() || startup.Mean() <= 0.0) {
    return 0.0;
  }
  return StepSummary(step).Mean() / startup.Mean();
}

double TimelineRecorder::StepShareOfP99(std::string_view step) const {
  if (lanes_.empty()) {
    return 0.0;
  }
  const NameId id = names_.Find(step);
  // Rank containers by startup time; average the step share over the slowest
  // 1% (at least one container).
  std::vector<const ContainerTimeline*> by_time;
  by_time.reserve(lanes_.size());
  for (const auto& lane : lanes_) {
    by_time.push_back(&lane);
  }
  std::sort(by_time.begin(), by_time.end(), [](const auto* a, const auto* b) {
    return a->StartupTime() < b->StartupTime();
  });
  const size_t tail = std::max<size_t>(1, by_time.size() / 100);
  double share_sum = 0.0;
  size_t counted = 0;
  for (size_t i = by_time.size() - tail; i < by_time.size(); ++i) {
    const ContainerTimeline* lane = by_time[i];
    const double total = lane->StartupTime().ToSecondsF();
    if (total > 0.0) {
      share_sum += lane->StepTimeId(id).ToSecondsF() / total;
      ++counted;
    }
  }
  return counted > 0 ? share_sum / static_cast<double>(counted) : 0.0;
}

std::vector<std::string> TimelineRecorder::StepNames() const {
  std::vector<std::string> out;
  out.reserve(step_order_.size());
  for (NameId id : step_order_) {
    out.push_back(names_.Name(id));
  }
  return out;
}

}  // namespace fastiov
