#include "src/stats/timeline.h"

#include <algorithm>
#include <cassert>

namespace fastiov {

SimTime ContainerTimeline::StepTime(const std::string& step) const {
  SimTime total = SimTime::Zero();
  for (const Span& s : spans) {
    if (!s.off_critical_path && s.step == step) {
      total += s.duration();
    }
  }
  return total;
}

int TimelineRecorder::RegisterContainer(SimTime start_time) {
  ContainerTimeline lane;
  lane.id = static_cast<int>(lanes_.size());
  lane.start = start_time;
  lane.ready = start_time;
  lanes_.push_back(std::move(lane));
  return lanes_.back().id;
}

void TimelineRecorder::RecordSpan(int container_id, const std::string& step, SimTime begin,
                                  SimTime end, bool off_critical_path) {
  assert(container_id >= 0 && static_cast<size_t>(container_id) < lanes_.size());
  if (std::find(step_order_.begin(), step_order_.end(), step) == step_order_.end()) {
    step_order_.push_back(step);
  }
  lanes_[container_id].spans.push_back(Span{step, begin, end, off_critical_path});
}

void TimelineRecorder::RecordAuxSpan(int container_id, const std::string& step, SimTime begin,
                                     SimTime end) {
  assert(container_id >= 0 && static_cast<size_t>(container_id) < lanes_.size());
  lanes_[container_id].aux_spans.push_back(Span{step, begin, end, /*off_critical_path=*/true});
}

void TimelineRecorder::MarkReady(int container_id, SimTime t) {
  lanes_[container_id].ready = t;
  lanes_[container_id].has_ready = true;
}

void TimelineRecorder::MarkTaskDone(int container_id, SimTime t) {
  lanes_[container_id].task_done = t;
  lanes_[container_id].has_task_done = true;
}

Summary TimelineRecorder::StartupSummary() const {
  Summary s;
  for (const auto& lane : lanes_) {
    // Containers that aborted before reaching ready (fault-injection runs)
    // have no startup time; including their zero would skew the summary.
    if (lane.has_ready) {
      s.AddTime(lane.StartupTime());
    }
  }
  return s;
}

Summary TimelineRecorder::TaskCompletionSummary() const {
  Summary s;
  for (const auto& lane : lanes_) {
    if (lane.has_task_done) {
      s.AddTime(lane.task_done - lane.start);
    }
  }
  return s;
}

Summary TimelineRecorder::StepSummary(const std::string& step) const {
  Summary s;
  for (const auto& lane : lanes_) {
    s.AddTime(lane.StepTime(step));
  }
  return s;
}

double TimelineRecorder::StepShareOfAverage(const std::string& step) const {
  const Summary startup = StartupSummary();
  if (startup.Empty() || startup.Mean() <= 0.0) {
    return 0.0;
  }
  return StepSummary(step).Mean() / startup.Mean();
}

double TimelineRecorder::StepShareOfP99(const std::string& step) const {
  if (lanes_.empty()) {
    return 0.0;
  }
  // Rank containers by startup time; average the step share over the slowest
  // 1% (at least one container).
  std::vector<const ContainerTimeline*> by_time;
  by_time.reserve(lanes_.size());
  for (const auto& lane : lanes_) {
    by_time.push_back(&lane);
  }
  std::sort(by_time.begin(), by_time.end(), [](const auto* a, const auto* b) {
    return a->StartupTime() < b->StartupTime();
  });
  const size_t tail = std::max<size_t>(1, by_time.size() / 100);
  double share_sum = 0.0;
  size_t counted = 0;
  for (size_t i = by_time.size() - tail; i < by_time.size(); ++i) {
    const ContainerTimeline* lane = by_time[i];
    const double total = lane->StartupTime().ToSecondsF();
    if (total > 0.0) {
      share_sum += lane->StepTime(step).ToSecondsF() / total;
      ++counted;
    }
  }
  return counted > 0 ? share_sum / static_cast<double>(counted) : 0.0;
}

std::vector<std::string> TimelineRecorder::StepNames() const { return step_order_; }

}  // namespace fastiov
