#include "src/stats/digest.h"

#include <cstdio>

namespace fastiov {

void Fnv1a64::Update(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = state_;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<uint64_t>(p[i]);
    h *= 0x100000001b3ull;
  }
  state_ = h;
  bytes_ += len;
}

std::string Fnv1a64::Hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(state_));
  return std::string(buf, 16);
}

DigestStreambuf::int_type DigestStreambuf::overflow(int_type ch) {
  if (ch == traits_type::eof()) {
    return traits_type::not_eof(ch);
  }
  const char c = static_cast<char>(ch);
  digest_.Update(&c, 1);
  if (tee_ != nullptr) {
    tee_->put(c);
  }
  return ch;
}

std::streamsize DigestStreambuf::xsputn(const char* s, std::streamsize n) {
  digest_.Update(s, static_cast<size_t>(n));
  if (tee_ != nullptr) {
    tee_->write(s, n);
  }
  return n;
}

}  // namespace fastiov
