#include "src/stats/name_table.h"

namespace fastiov {

NameTable& NameTable::operator=(const NameTable& other) {
  if (this != &other) {
    names_ = other.names_;
    index_.clear();
    index_.reserve(names_.size());
    for (size_t i = 0; i < names_.size(); ++i) {
      index_.emplace(std::string_view(names_[i]), static_cast<NameId>(i));
    }
  }
  return *this;
}

NameId NameTable::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    return it->second;
  }
  const NameId id = static_cast<NameId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

NameId NameTable::Find(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidNameId : it->second;
}

}  // namespace fastiov
