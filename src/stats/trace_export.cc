#include "src/stats/trace_export.h"

#include <string>

#include "src/stats/json_writer.h"

namespace fastiov {
namespace {

// The synthetic process that carries host-wide counter tracks and fault
// instants; large enough to never collide with a container lane id.
constexpr int64_t kHostPid = 1 << 20;

// Per-container thread-row registry: row 0 is the critical path; every other
// row is created on first use, in emission order, so tids are deterministic.
class RowRegistry {
 public:
  RowRegistry() { rows_.push_back("critical-path"); }

  int64_t Tid(const std::string& name) {
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (rows_[i] == name) {
        return static_cast<int64_t>(i);
      }
    }
    rows_.push_back(name);
    return static_cast<int64_t>(rows_.size() - 1);
  }

  const std::vector<std::string>& rows() const { return rows_; }

 private:
  std::vector<std::string> rows_;
};

void EmitSpan(JsonWriter& json, const std::string& name, int64_t pid, int64_t tid,
              SimTime begin, SimTime dur) {
  json.BeginObject()
      .KV("name", name)
      .KV("ph", "X")
      .KV("pid", pid)
      .KV("tid", tid)
      .KV("ts", begin.ToMicrosF())
      .KV("dur", dur.ToMicrosF())
      .EndObject();
}

void EmitThreadName(JsonWriter& json, int64_t pid, int64_t tid, const std::string& name) {
  json.BeginObject()
      .KV("name", "thread_name")
      .KV("ph", "M")
      .KV("pid", pid)
      .KV("tid", tid)
      .Key("args")
      .BeginObject()
      .KV("name", name)
      .EndObject()
      .EndObject();
}

}  // namespace

void ExportChromeTrace(const TimelineRecorder& recorder, std::ostream& os,
                       const TraceOptions& options) {
  JsonWriter json(os);
  json.BeginObject();
  json.Key("traceEvents");
  json.BeginArray();
  for (const ContainerTimeline& lane : recorder.containers()) {
    const int64_t pid = lane.id;
    RowRegistry rows;
    // Process metadata: name the row after the container.
    json.BeginObject()
        .KV("name", "process_name")
        .KV("ph", "M")
        .KV("pid", pid)
        .Key("args")
        .BeginObject()
        .KV("name", "container-" + std::to_string(lane.id))
        .EndObject()
        .EndObject();
    // The whole startup as one umbrella event.
    EmitSpan(json, "startup", pid, 0, lane.start, lane.ready - lane.start);
    for (const Span& span : lane.spans) {
      const std::string& step = recorder.StepName(span.step);
      // Each off-critical-path span kind lands on its own thread row so
      // concurrent background work (async VF init) stays distinguishable
      // from the critical path and from other background rows.
      const int64_t tid = span.off_critical_path ? rows.Tid("async " + step) : 0;
      EmitSpan(json, step, pid, tid, span.begin, span.duration());
    }
    for (const Span& span : lane.aux_spans) {
      const std::string& step = recorder.StepName(span.step);
      EmitSpan(json, step, pid, rows.Tid(step), span.begin, span.duration());
    }
    if (lane.has_task_done) {
      EmitSpan(json, "task", pid, 0, lane.ready, lane.task_done - lane.ready);
    }
    if (options.blocked != nullptr) {
      for (const WaitInterval& w : options.blocked->Lane(lane.id)) {
        const int64_t tid = rows.Tid("waits");
        json.BeginObject()
            .KV("name", w.cause)
            .KV("ph", "X")
            .KV("pid", pid)
            .KV("tid", tid)
            .KV("ts", w.begin.ToMicrosF())
            .KV("dur", w.duration().ToMicrosF())
            .Key("args")
            .BeginObject()
            .KV("phase", w.phase)
            .EndObject()
            .EndObject();
      }
    }
    for (size_t i = 0; i < rows.rows().size(); ++i) {
      EmitThreadName(json, pid, static_cast<int64_t>(i), rows.rows()[i]);
    }
  }

  const bool have_counters = options.counters != nullptr && options.counters->size() > 0;
  const bool have_faults =
      options.fault_events != nullptr && !options.fault_events->empty();
  if (have_counters || have_faults) {
    json.BeginObject()
        .KV("name", "process_name")
        .KV("ph", "M")
        .KV("pid", kHostPid)
        .Key("args")
        .BeginObject()
        .KV("name", "host")
        .EndObject()
        .EndObject();
  }
  if (have_counters) {
    for (size_t i = 0; i < options.counters->size(); ++i) {
      const CounterTrack& track = options.counters->at(i);
      for (const CounterPoint& p : track.points()) {
        json.BeginObject()
            .KV("name", track.name())
            .KV("ph", "C")
            .KV("pid", kHostPid)
            .KV("ts", p.t.ToMicrosF())
            .Key("args")
            .BeginObject()
            .KV("value", p.value)
            .EndObject()
            .EndObject();
      }
    }
  }
  if (have_faults) {
    for (const FaultTraceEvent& e : *options.fault_events) {
      json.BeginObject()
          .KV("name", std::string("fault ") + FaultTraceEventKindName(e.kind) + ": " +
                          FaultSiteName(e.site))
          .KV("ph", "i")
          .KV("s", "g")
          .KV("pid", kHostPid)
          .KV("tid", static_cast<int64_t>(0))
          .KV("ts", e.t.ToMicrosF())
          .Key("args")
          .BeginObject()
          .KV("site", FaultSiteName(e.site))
          .KV("kind", FaultTraceEventKindName(e.kind))
          .KV("transient", e.transient)
          .EndObject()
          .EndObject();
    }
  }
  json.EndArray();
  json.KV("displayTimeUnit", "ms");
  json.EndObject();
  os << '\n';
}

}  // namespace fastiov
