#include "src/stats/trace_export.h"

#include "src/stats/json_writer.h"

namespace fastiov {

void ExportChromeTrace(const TimelineRecorder& recorder, std::ostream& os) {
  JsonWriter json(os);
  json.BeginObject();
  json.Key("traceEvents");
  json.BeginArray();
  for (const ContainerTimeline& lane : recorder.containers()) {
    // Process metadata: name the row after the container.
    json.BeginObject()
        .KV("name", "process_name")
        .KV("ph", "M")
        .KV("pid", static_cast<int64_t>(lane.id))
        .Key("args")
        .BeginObject()
        .KV("name", "container-" + std::to_string(lane.id))
        .EndObject()
        .EndObject();
    // The whole startup as one umbrella event.
    json.BeginObject()
        .KV("name", "startup")
        .KV("ph", "X")
        .KV("pid", static_cast<int64_t>(lane.id))
        .KV("tid", static_cast<int64_t>(0))
        .KV("ts", lane.start.ToMicrosF())
        .KV("dur", (lane.ready - lane.start).ToMicrosF())
        .EndObject();
    for (const Span& span : lane.spans) {
      json.BeginObject()
          .KV("name", span.step)
          .KV("ph", "X")
          .KV("pid", static_cast<int64_t>(lane.id))
          .KV("tid", static_cast<int64_t>(span.off_critical_path ? 1 : 0))
          .KV("ts", span.begin.ToMicrosF())
          .KV("dur", span.duration().ToMicrosF())
          .EndObject();
    }
    if (lane.has_task_done) {
      json.BeginObject()
          .KV("name", "task")
          .KV("ph", "X")
          .KV("pid", static_cast<int64_t>(lane.id))
          .KV("tid", static_cast<int64_t>(0))
          .KV("ts", lane.ready.ToMicrosF())
          .KV("dur", (lane.task_done - lane.ready).ToMicrosF())
          .EndObject();
    }
  }
  json.EndArray();
  json.KV("displayTimeUnit", "ms");
  json.EndObject();
  os << '\n';
}

}  // namespace fastiov
