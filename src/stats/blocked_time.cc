#include "src/stats/blocked_time.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "src/stats/table.h"
#include "src/stats/timeline.h"

namespace fastiov {

const std::vector<WaitInterval> BlockedTimeRecorder::kEmpty;

void WaitCtx::Record(const std::string& cause, SimTime begin, SimTime end) const {
  if (recorder == nullptr || end <= begin) {
    return;
  }
  recorder->Record(lane, phase, cause, begin, end);
}

void BlockedTimeRecorder::Record(int lane, const char* phase, const std::string& cause,
                                 SimTime begin, SimTime end) {
  if (lane < 0) {
    return;
  }
  if (static_cast<size_t>(lane) >= lanes_.size()) {
    lanes_.resize(static_cast<size_t>(lane) + 1);
  }
  lanes_[static_cast<size_t>(lane)].push_back(
      WaitInterval{phase, cause, begin, end});
}

const std::vector<WaitInterval>& BlockedTimeRecorder::Lane(int lane) const {
  if (lane < 0 || static_cast<size_t>(lane) >= lanes_.size()) {
    return kEmpty;
  }
  return lanes_[static_cast<size_t>(lane)];
}

namespace {

struct Bucket {
  double total_seconds = 0.0;
  double tail_seconds = 0.0;
  uint64_t events = 0;
};

}  // namespace

BlockedTimeReport BuildBlockedTimeReport(const BlockedTimeRecorder& recorder,
                                         const TimelineRecorder& timeline) {
  BlockedTimeReport report;

  std::vector<const ContainerTimeline*> ready;
  for (const ContainerTimeline& lane : timeline.containers()) {
    if (lane.has_ready) {
      ready.push_back(&lane);
    }
  }
  if (ready.empty()) {
    return report;
  }

  const Summary startup = timeline.StartupSummary();
  report.mean_startup_seconds = startup.Mean();
  report.p99_startup_seconds = startup.Percentile(99);

  // Tail set: slowest 1% (at least one), matching StepShareOfP99's convention.
  std::vector<const ContainerTimeline*> by_time = ready;
  std::sort(by_time.begin(), by_time.end(), [](const auto* a, const auto* b) {
    return a->StartupTime() < b->StartupTime();
  });
  const size_t tail_n = std::max<size_t>(1, by_time.size() / 100);
  std::vector<bool> in_tail(timeline.NumContainers(), false);
  double tail_startup_sum = 0.0;
  for (size_t i = by_time.size() - tail_n; i < by_time.size(); ++i) {
    in_tail[static_cast<size_t>(by_time[i]->id)] = true;
    tail_startup_sum += by_time[i]->StartupTime().ToSecondsF();
  }
  const double tail_mean_startup = tail_startup_sum / static_cast<double>(tail_n);

  // Phase ordering: timeline steps first, then phases only seen in waits.
  std::vector<std::string> phase_order = timeline.StepNames();
  auto note_phase = [&phase_order](const std::string& phase) {
    if (std::find(phase_order.begin(), phase_order.end(), phase) == phase_order.end()) {
      phase_order.push_back(phase);
    }
  };

  // (phase, cause) -> aggregate across containers. Also track per-(lane,
  // phase) wait totals so the "work" residual can be computed.
  std::map<std::pair<std::string, std::string>, Bucket> buckets;
  std::map<std::pair<int, std::string>, double> lane_phase_wait;
  for (const ContainerTimeline* lane : ready) {
    for (const WaitInterval& w : recorder.Lane(lane->id)) {
      note_phase(w.phase);
      Bucket& b = buckets[{w.phase, w.cause}];
      const double secs = w.duration().ToSecondsF();
      b.total_seconds += secs;
      b.events += 1;
      if (in_tail[static_cast<size_t>(lane->id)]) {
        b.tail_seconds += secs;
      }
      lane_phase_wait[{lane->id, w.phase}] += secs;
    }
  }

  // "work" residual per phase that has critical-path spans.
  for (const std::string& phase : phase_order) {
    Bucket work;
    bool has_span = false;
    for (const ContainerTimeline* lane : ready) {
      const double span = lane->StepTime(phase).ToSecondsF();
      if (span <= 0.0) {
        continue;
      }
      has_span = true;
      auto it = lane_phase_wait.find({lane->id, phase});
      const double waits = it == lane_phase_wait.end() ? 0.0 : it->second;
      const double residual = std::max(0.0, span - waits);
      work.total_seconds += residual;
      if (in_tail[static_cast<size_t>(lane->id)]) {
        work.tail_seconds += residual;
      }
    }
    if (has_span) {
      buckets[{phase, "work"}] = work;
    }
  }

  const double n = static_cast<double>(ready.size());
  for (const std::string& phase : phase_order) {
    // std::map keeps causes sorted: "lock-wait:*" < "resource-wait:*" < "work".
    for (const auto& [key, b] : buckets) {
      if (key.first != phase) {
        continue;
      }
      BlockedTimeRow row;
      row.phase = phase;
      row.cause = key.second;
      row.mean_seconds = b.total_seconds / n;
      row.share_of_mean =
          report.mean_startup_seconds > 0.0 ? row.mean_seconds / report.mean_startup_seconds
                                            : 0.0;
      row.tail_seconds = b.tail_seconds / static_cast<double>(tail_n);
      row.share_of_p99_tail =
          tail_mean_startup > 0.0 ? row.tail_seconds / tail_mean_startup : 0.0;
      row.events = b.events;
      report.rows.push_back(std::move(row));
    }
  }
  return report;
}

void PrintBlockedTimeReport(const BlockedTimeReport& report, std::ostream& os,
                            size_t max_rows) {
  TextTable table({"phase", "cause", "mean", "share-of-mean", "p99-tail", "share-of-tail"});
  size_t emitted = 0;
  for (const BlockedTimeRow& row : report.rows) {
    if (max_rows != 0 && emitted >= max_rows) {
      break;
    }
    table.AddRow({row.phase, row.cause, FormatSeconds(row.mean_seconds) + " s",
                  FormatPercent(row.share_of_mean), FormatSeconds(row.tail_seconds) + " s",
                  FormatPercent(row.share_of_p99_tail)});
    ++emitted;
  }
  table.Print(os);
}

}  // namespace fastiov
