// Minimal streaming JSON writer (objects, arrays, scalars, escaping).
// Used for the Chrome-trace export and the CLI's machine-readable output.
//
// Three sinks: an ostream (streaming export, incremental digests), an
// external std::string, or an internal string buffer (default ctor) read back
// via str()/TakeString(). All sinks produce byte-identical output; the escape
// path writes clean runs directly to the sink without a per-call temporary.
#ifndef SRC_STATS_JSON_WRITER_H_
#define SRC_STATS_JSON_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fastiov {

class JsonWriter {
 public:
  // Buffers into an internal string; read back with str()/TakeString().
  JsonWriter() : str_(&own_) {}
  explicit JsonWriter(std::ostream& os) : os_(&os) {}
  explicit JsonWriter(std::string& out) : str_(&out) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Inside an object: writes the key; the next value call completes the pair.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(double v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(bool v);
  JsonWriter& Null();

  // Emits pre-serialized JSON verbatim as the next value (e.g. a document
  // from result_json embedded in a larger report). The caller guarantees
  // well-formedness.
  JsonWriter& RawValue(std::string_view json);

  // Convenience: Key + Value.
  template <typename T>
  JsonWriter& KV(std::string_view key, T&& value) {
    Key(key);
    return Value(std::forward<T>(value));
  }

  // The buffered document (string-sink writers only).
  const std::string& str() const { return *str_; }
  std::string TakeString() { return std::move(*str_); }

  // Escapes per RFC 8259.
  static std::string Escape(std::string_view raw);

 private:
  void MaybeComma();
  void Write(std::string_view s);
  void Put(char c);
  void WriteEscaped(std::string_view raw);

  std::ostream* os_ = nullptr;
  std::string* str_ = nullptr;
  std::string own_;
  // One entry per open container: whether a value has been emitted at this
  // level (needs a comma) and whether the next token is an object value
  // (suppresses the comma after a key).
  struct Level {
    bool has_item = false;
  };
  std::vector<Level> stack_;
  bool pending_key_ = false;
};

}  // namespace fastiov

#endif  // SRC_STATS_JSON_WRITER_H_
