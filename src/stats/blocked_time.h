// Blocked-time attribution — decomposing each startup phase's wall time into
// lock-wait / resource-wait / work sub-intervals, per container.
//
// This reproduces the paper's Tab. 1 methodology analytically: instead of
// sampling kernel stacks, the simulator records every interval a container
// spends parked on a lock queue or throttled behind a shared resource, tagged
// with the pipeline phase it happened in. The remainder of a phase's span is
// "work".
//
// Determinism contract: recording is memory-only. It schedules no events,
// charges no simulated time, and draws from no RNG, so enabling it cannot
// perturb a run.
#ifndef SRC_STATS_BLOCKED_TIME_H_
#define SRC_STATS_BLOCKED_TIME_H_

#include <string>
#include <vector>

#include "src/simcore/time.h"

namespace fastiov {

class BlockedTimeRecorder;
class TimelineRecorder;

// Identifies *who* is waiting and *where in the pipeline* they are, so a lock
// or resource can attribute the wait interval back to a container phase.
// Passed by value through Lock()/Compute()/Transfer() call chains; a
// default-constructed ctx (no recorder) makes every probe a no-op branch.
struct WaitCtx {
  BlockedTimeRecorder* recorder = nullptr;
  int lane = -1;            // container id (TimelineRecorder lane)
  const char* phase = "";   // pipeline phase label, e.g. kStepVfioDev

  bool active() const { return recorder != nullptr; }
  // Records [begin, end) against this waiter; no-op when inactive or empty.
  void Record(const std::string& cause, SimTime begin, SimTime end) const;
};

// One attributed wait. `cause` is "lock-wait:<lock name>" or
// "resource-wait:<resource name>".
struct WaitInterval {
  std::string phase;
  std::string cause;
  SimTime begin;
  SimTime end;

  SimTime duration() const { return end - begin; }
};

// Per-container store of wait intervals. Lanes are container ids.
class BlockedTimeRecorder {
 public:
  void Record(int lane, const char* phase, const std::string& cause, SimTime begin,
              SimTime end);

  size_t NumLanes() const { return lanes_.size(); }
  const std::vector<WaitInterval>& Lane(int lane) const;

 private:
  std::vector<std::vector<WaitInterval>> lanes_;
  static const std::vector<WaitInterval> kEmpty;
};

// One row of the Tab.-1-style breakdown: how much of the mean startup and of
// the p99 tail a given (phase, cause) pair accounts for.
struct BlockedTimeRow {
  std::string phase;
  std::string cause;          // "lock-wait:<name>", "resource-wait:<name>", "work"
  double mean_seconds = 0.0;  // mean per-container seconds in this bucket
  double share_of_mean = 0.0; // mean_seconds / mean startup
  double tail_seconds = 0.0;  // mean seconds among the slowest 1% of containers
  double share_of_p99_tail = 0.0;
  uint64_t events = 0;        // number of recorded intervals (0 for "work")
};

struct BlockedTimeReport {
  double mean_startup_seconds = 0.0;
  double p99_startup_seconds = 0.0;
  std::vector<BlockedTimeRow> rows;  // phase-major, causes within a phase
};

// Joins the wait intervals against the phase spans in `timeline`. For each
// phase with a recorded span, emits one row per wait cause plus a residual
// "work" row (span minus attributed waits, floored at zero). Waits recorded
// in phases without a span (e.g. detached supervision) still get cause rows,
// just no "work" residual. Only containers that reached ready participate.
BlockedTimeReport BuildBlockedTimeReport(const BlockedTimeRecorder& recorder,
                                         const TimelineRecorder& timeline);

// Renders the report as the human-readable Tab.-1-style table.
void PrintBlockedTimeReport(const BlockedTimeReport& report, std::ostream& os,
                            size_t max_rows = 0);

}  // namespace fastiov

#endif  // SRC_STATS_BLOCKED_TIME_H_
