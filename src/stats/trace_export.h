// Chrome-trace (chrome://tracing / Perfetto) export of a startup timeline.
//
// Each container becomes a process row; each recorded step span becomes a
// complete ("X") duration event, so the Fig. 5 timeline can be explored
// interactively. Off-critical-path spans (FastIOV's async VF init) land on
// a separate thread row within the container's process.
#ifndef SRC_STATS_TRACE_EXPORT_H_
#define SRC_STATS_TRACE_EXPORT_H_

#include <ostream>

#include "src/stats/timeline.h"

namespace fastiov {

// Writes the Chrome trace-event JSON ("traceEvents" array format).
void ExportChromeTrace(const TimelineRecorder& recorder, std::ostream& os);

}  // namespace fastiov

#endif  // SRC_STATS_TRACE_EXPORT_H_
