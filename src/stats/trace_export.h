// Unified Chrome-trace (chrome://tracing / Perfetto) export.
//
// Each container becomes a process row. Within a container:
//   * tid 0 is the critical path (umbrella "startup" event, step spans,
//     the serverless task);
//   * each distinct off-critical-path span kind gets its own thread row
//     (FastIOV's async VF init vs. the supervised link-up process), so
//     overlapping background work no longer collapses onto one row;
//   * when blocked-time attribution is supplied, every recorded lock-wait /
//     resource-wait interval becomes a slice on a dedicated "waits" row.
// A synthetic "host" process carries the counter tracks (free frames,
// pinned pages, IOMMU mappings, VFs in use) as Perfetto "C" events and the
// fault-injection lifecycle as instant ("i") events.
#ifndef SRC_STATS_TRACE_EXPORT_H_
#define SRC_STATS_TRACE_EXPORT_H_

#include <ostream>
#include <vector>

#include "src/fault/fault.h"
#include "src/stats/blocked_time.h"
#include "src/stats/counter_track.h"
#include "src/stats/timeline.h"

namespace fastiov {

// Optional trace enrichments; all-null renders the plain timeline.
struct TraceOptions {
  const BlockedTimeRecorder* blocked = nullptr;       // lock/resource wait slices
  const CounterTrackSet* counters = nullptr;          // host counter tracks
  const std::vector<FaultTraceEvent>* fault_events = nullptr;  // instant events
};

// Writes the Chrome trace-event JSON ("traceEvents" array format).
void ExportChromeTrace(const TimelineRecorder& recorder, std::ostream& os,
                       const TraceOptions& options = {});

}  // namespace fastiov

#endif  // SRC_STATS_TRACE_EXPORT_H_
