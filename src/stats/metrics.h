// Central metrics registry — named counters, gauges, and Summary-backed
// distributions with hierarchical `subsystem.object.metric` names.
//
// The registry is the single export surface for the observability layer: at
// the end of a run the experiment harness folds subsystem counters, lock
// stats, and per-step distributions into one registry and serializes it into
// the result JSON (only when observability was requested, so default digests
// are untouched).
#ifndef SRC_STATS_METRICS_H_
#define SRC_STATS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/stats/summary.h"

namespace fastiov {

class JsonWriter;

class MetricsRegistry {
 public:
  // Counters: monotonically increasing event counts.
  void IncCounter(const std::string& name, uint64_t delta = 1) {
    counters_[name] += delta;
  }
  void SetCounter(const std::string& name, uint64_t value) { counters_[name] = value; }
  uint64_t Counter(const std::string& name) const;

  // Gauges: point-in-time values.
  void SetGauge(const std::string& name, double value) { gauges_[name] = value; }
  double Gauge(const std::string& name) const;

  // Distributions: Summary-backed (exact percentiles).
  void Observe(const std::string& name, double value) { summaries_[name].Add(value); }
  void MergeSummary(const std::string& name, const Summary& s) {
    summaries_[name].Merge(s);
  }
  const Summary* FindSummary(const std::string& name) const;

  bool Has(const std::string& name) const;
  size_t NumMetrics() const {
    return counters_.size() + gauges_.size() + summaries_.size();
  }

  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Summary>& summaries() const { return summaries_; }

  // {"counters":{...},"gauges":{...},"summaries":{name:{count,mean,p50,p99,
  // max},...}} — keys sorted (std::map), so output is deterministic.
  void WriteJson(JsonWriter& json) const;

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Summary> summaries_;
};

}  // namespace fastiov

#endif  // SRC_STATS_METRICS_H_
