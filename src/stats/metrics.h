// Central metrics registry — named counters, gauges, and Summary-backed
// distributions with hierarchical `subsystem.object.metric` names.
//
// The registry is the single export surface for the observability layer: at
// the end of a run the experiment harness folds subsystem counters, lock
// stats, and per-step distributions into one registry and serializes it into
// the result JSON (only when observability was requested, so default digests
// are untouched).
//
// Names are interned into a NameTable and the hot-path maps key on a 32-bit
// NameId, so repeated IncCounter/Observe calls never re-hash or copy the
// name string. JSON export still emits keys sorted lexicographically, byte
// identical to the historical std::map-keyed output.
#ifndef SRC_STATS_METRICS_H_
#define SRC_STATS_METRICS_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "src/stats/name_table.h"
#include "src/stats/summary.h"

namespace fastiov {

class JsonWriter;

class MetricsRegistry {
 public:
  // Counters: monotonically increasing event counts.
  void IncCounter(std::string_view name, uint64_t delta = 1) {
    counters_[names_.Intern(name)] += delta;
  }
  void SetCounter(std::string_view name, uint64_t value) {
    counters_[names_.Intern(name)] = value;
  }
  uint64_t Counter(std::string_view name) const;

  // Gauges: point-in-time values.
  void SetGauge(std::string_view name, double value) {
    gauges_[names_.Intern(name)] = value;
  }
  double Gauge(std::string_view name) const;

  // Distributions: Summary-backed (exact percentiles up to the streaming
  // threshold).
  void Observe(std::string_view name, double value) {
    summaries_[names_.Intern(name)].Add(value);
  }
  void MergeSummary(std::string_view name, const Summary& s) {
    summaries_[names_.Intern(name)].Merge(s);
  }
  const Summary* FindSummary(std::string_view name) const;

  bool Has(std::string_view name) const;
  size_t NumMetrics() const {
    return counters_.size() + gauges_.size() + summaries_.size();
  }

  // {"counters":{...},"gauges":{...},"summaries":{name:{count,mean,p50,p99,
  // max},...}} — keys sorted by name, so output is deterministic.
  void WriteJson(JsonWriter& json) const;

 private:
  NameTable names_;
  std::unordered_map<NameId, uint64_t> counters_;
  std::unordered_map<NameId, double> gauges_;
  std::unordered_map<NameId, Summary> summaries_;
};

}  // namespace fastiov

#endif  // SRC_STATS_METRICS_H_
