// Tinymembench-style in-guest memory benchmark (§6.5).
//
// Measures memcpy throughput (2048-byte blocks for a fixed duration) and
// random-read latency inside a booted microVM. The interesting property is
// the FastIOV overhead: the EPT-fault hook costs one hash probe per *first*
// page access and nothing afterwards, so steady-state numbers degrade by
// well under 1%.
#ifndef SRC_WORKLOAD_MEMBENCH_H_
#define SRC_WORKLOAD_MEMBENCH_H_

#include <cstdint>

#include "src/kvm/microvm.h"
#include "src/simcore/resources.h"
#include "src/simcore/simulation.h"

namespace fastiov {

struct MembenchResult {
  double memcpy_throughput_bps = 0.0;
  double random_read_latency_ns = 0.0;
  uint64_t ept_faults_during_bench = 0;
};

struct MembenchOptions {
  uint64_t window_gpa = 0;          // region the benchmark operates on
  uint64_t window_bytes = 64 * kMiB;
  double duration_seconds = 5.0;    // per memcpy round
  int memcpy_rounds = 10;
  uint64_t random_reads = 10'000'000;
  double memcpy_rate_bps = 6.0 * static_cast<double>(kGiB);  // one core's rate
  double dram_latency_ns = 90.0;
};

// Runs the benchmark in `vm`, charging simulated time for the copies, the
// random reads, and any EPT faults (including the fastiovd hook, when set).
Task RunMembench(Simulation& sim, CpuPool& cpu, MicroVm& vm, const MembenchOptions& options,
                 MembenchResult* result);

}  // namespace fastiov

#endif  // SRC_WORKLOAD_MEMBENCH_H_
