// Container-invocation arrival processes.
//
// The paper's measurements use a closed burst ("crictl concurrently creates
// 200 microVMs", §3.1), motivated by production statistics showing >200
// near-simultaneous invocations per server. Real serverless load is an
// open-loop process; this module generates burst, uniform and Poisson
// schedules so experiments can sweep both regimes.
#ifndef SRC_WORKLOAD_ARRIVALS_H_
#define SRC_WORKLOAD_ARRIVALS_H_

#include <vector>

#include "src/simcore/rng.h"
#include "src/simcore/time.h"

namespace fastiov {

enum class ArrivalPattern {
  kBurst,    // all at once, separated only by the dispatcher gap
  kUniform,  // evenly spaced at the given rate
  kPoisson,  // exponential inter-arrival times at the given rate
};

const char* ArrivalPatternName(ArrivalPattern p);

struct ArrivalSchedule {
  // Absolute invocation times, non-decreasing, starting at 0.
  std::vector<SimTime> times;

  SimTime MakeSpan() const { return times.empty() ? SimTime::Zero() : times.back(); }

  // `rate_per_second` applies to kUniform/kPoisson; `burst_gap` to kBurst.
  static ArrivalSchedule Generate(ArrivalPattern pattern, int count, double rate_per_second,
                                  SimTime burst_gap, Rng& rng);
};

}  // namespace fastiov

#endif  // SRC_WORKLOAD_ARRIVALS_H_
