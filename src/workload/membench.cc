#include "src/workload/membench.h"

namespace fastiov {

Task RunMembench(Simulation& sim, CpuPool& cpu, MicroVm& vm, const MembenchOptions& options,
                 MembenchResult* result) {
  const uint64_t faults_before = vm.ept_faults();

  // --- memcpy throughput: repeated 2048-byte block copies over the window.
  const SimTime copy_begin = sim.Now();
  double bytes_copied = 0.0;
  for (int round = 0; round < options.memcpy_rounds; ++round) {
    // First pass over the window pays the EPT faults (and the fastiovd
    // probe); the copies themselves run at the core's streaming rate.
    co_await vm.TouchRange(options.window_gpa, options.window_bytes, /*write=*/true);
    const double round_bytes = options.memcpy_rate_bps * options.duration_seconds;
    co_await cpu.Compute(Seconds(options.duration_seconds));
    bytes_copied += round_bytes;
  }
  const double copy_elapsed = (sim.Now() - copy_begin).ToSecondsF();
  result->memcpy_throughput_bps = bytes_copied / copy_elapsed;

  // --- random-read latency: pointer chasing across the (now resident)
  // window; every access is a DRAM round trip.
  const SimTime read_begin = sim.Now();
  co_await vm.TouchRange(options.window_gpa, options.window_bytes, /*write=*/false);
  co_await sim.Delay(
      Seconds(options.dram_latency_ns * 1e-9 * static_cast<double>(options.random_reads)));
  const double read_elapsed = (sim.Now() - read_begin).ToSecondsF();
  result->random_read_latency_ns =
      read_elapsed * 1e9 / static_cast<double>(options.random_reads);

  result->ept_faults_during_bench = vm.ept_faults() - faults_before;
}

}  // namespace fastiov
