#include "src/workload/arrivals.h"

#include <cassert>

namespace fastiov {

const char* ArrivalPatternName(ArrivalPattern p) {
  switch (p) {
    case ArrivalPattern::kBurst:
      return "burst";
    case ArrivalPattern::kUniform:
      return "uniform";
    case ArrivalPattern::kPoisson:
      return "poisson";
  }
  return "?";
}

ArrivalSchedule ArrivalSchedule::Generate(ArrivalPattern pattern, int count,
                                          double rate_per_second, SimTime burst_gap,
                                          Rng& rng) {
  assert(count >= 0);
  ArrivalSchedule schedule;
  schedule.times.reserve(count);
  SimTime t = SimTime::Zero();
  for (int i = 0; i < count; ++i) {
    schedule.times.push_back(t);
    switch (pattern) {
      case ArrivalPattern::kBurst:
        t += burst_gap;
        break;
      case ArrivalPattern::kUniform:
        assert(rate_per_second > 0.0);
        t += Seconds(1.0 / rate_per_second);
        break;
      case ArrivalPattern::kPoisson:
        assert(rate_per_second > 0.0);
        t += Seconds(rng.Exponential(1.0 / rate_per_second));
        break;
    }
  }
  return schedule;
}

}  // namespace fastiov
