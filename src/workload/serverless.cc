#include "src/workload/serverless.h"

#include <cctype>

namespace fastiov {

// Compute demands are calibrated to the paper's reduction ratios at
// concurrency 200 (Fig. 15): FastIOV saves a fixed ~10.6 s of startup, so
// the completion-time reduction shrinks as the task body grows — 53.5%
// (Image) down to 12.1% (Inference).

ServerlessApp ServerlessApp::Image() {
  return ServerlessApp{"Image", 1 * kMiB + 200 * kKiB, 1.7, 48 * kMiB};
}

ServerlessApp ServerlessApp::Compression() {
  return ServerlessApp{"Compression", static_cast<uint64_t>(9.7 * kMiB), 3.6, 64 * kMiB};
}

ServerlessApp ServerlessApp::Scientific() {
  return ServerlessApp{"Scientific", 2 * kMiB, 9.6, 96 * kMiB};
}

ServerlessApp ServerlessApp::Inference() {
  return ServerlessApp{"Inference", 52 * kMiB, 35.0, 160 * kMiB};
}

std::vector<ServerlessApp> ServerlessApp::All() {
  return {Image(), Compression(), Scientific(), Inference()};
}

std::optional<ServerlessApp> ServerlessApp::FromName(const std::string& name) {
  for (const ServerlessApp& app : All()) {
    if (app.name.size() == name.size()) {
      bool equal = true;
      for (size_t i = 0; i < name.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(app.name[i])) !=
            std::tolower(static_cast<unsigned char>(name[i]))) {
          equal = false;
          break;
        }
      }
      if (equal) {
        return app;
      }
    }
  }
  return std::nullopt;
}

}  // namespace fastiov
