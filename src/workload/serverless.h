// Serverless application models from the SeBS benchmark (§6.6).
//
// Each task downloads its input from the storage server through the
// container's network interface, then computes. The compute demand is
// expressed in CPU-seconds; the guest runs it at min(vCPU allocation,
// fair share of the host's logical cores), which reproduces both the
// 0.5-vCPU cap and the host-level contention at concurrency 200.
#ifndef SRC_WORKLOAD_SERVERLESS_H_
#define SRC_WORKLOAD_SERVERLESS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/config/cost_model.h"

namespace fastiov {

struct ServerlessApp {
  std::string name;
  uint64_t input_bytes;       // downloaded from the storage server
  double compute_cpu_seconds;  // CPU demand of the task body
  uint64_t working_set_bytes;  // guest memory the task touches

  // The four SeBS tasks used in §6.6.
  static ServerlessApp Image();        // thumbnail resize, 100x100
  static ServerlessApp Compression();  // zip a 9.7 MB file
  static ServerlessApp Scientific();   // BFS over a 100k-node graph
  static ServerlessApp Inference();    // ResNet-50 ImageNet classification

  static std::vector<ServerlessApp> All();
  // Case-insensitive lookup by name; nullptr-like empty optional if unknown.
  static std::optional<ServerlessApp> FromName(const std::string& name);
};

}  // namespace fastiov

#endif  // SRC_WORKLOAD_SERVERLESS_H_
