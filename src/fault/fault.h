// Deterministic fault injection for the startup pipeline.
//
// A FaultPlan names the injection sites that may fail (VFIO group/device
// registration, DMA map/pin, VF bind/FLR/link, vDPA attach, KVM memslots,
// CNI, virtioFS, guest boot) and how: per-call probability or an exact
// nth-call trigger, transient vs permanent, and an optional simulated-time
// penalty charged before the fault surfaces (a stuck firmware mailbox, an
// ioctl that times out).
//
// Determinism contract: the FaultInjector draws from its OWN xoshiro stream
// (seeded from the plan), never from the simulation RNG, and charges no
// simulated time unless a fault actually fires. Every call site guards on
// `sim.fault_injector() != nullptr`, so with no injector installed the
// instrumented build is event-for-event identical to one without the
// subsystem — simulated-time digests stay byte-identical.
#ifndef SRC_FAULT_FAULT_H_
#define SRC_FAULT_FAULT_H_

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/simcore/rng.h"
#include "src/simcore/task.h"
#include "src/simcore/time.h"

namespace fastiov {

class Simulation;

// Named injection sites, one per failure-prone pipeline interaction.
enum class FaultSite : int {
  kVfioGroupOpen = 0,  // VFIO group/container open before DMA mapping
  kVfioDeviceOpen,     // VFIO_GROUP_GET_DEVICE_FD (DevSet::OpenDevice)
  kDmaMap,             // VFIO_IOMMU_MAP_DMA entry
  kDmaPin,             // page pinning inside an in-flight DMA map
  kVfBind,             // CNI configuring the VF through the PF driver
  kVfFlr,              // VF function-level reset
  kVfLinkUp,           // firmware link negotiation (PF mailbox)
  kVdpaAttach,         // `vdpa dev add` (§7 path)
  kKvmMemslot,         // KVM_SET_USER_MEMORY_REGION
  kCni,                // network namespace / CNI plugin invocation
  kVirtioFs,           // virtiofsd spawn + vhost-user socket registration
  kGuestBoot,          // guest kernel fails to come up in time
  kPhaseTimeout,       // synthesized when a phase exceeds its deadline
  // Cluster control-plane sites (src/cluster/): the shared services every
  // host's launches queue through. Appended after the host-local sites so
  // existing site indices — and therefore existing fault-plan digests —
  // stay stable.
  kIpamAlloc,          // cluster IPAM pool allocation (etcd-backed)
  kCniAssign,          // cluster CNI assignment service
  kRegistryFetch,      // image-registry fetch over shared bandwidth
};
inline constexpr int kNumFaultSites = 16;

const char* FaultSiteName(FaultSite site);
std::optional<FaultSite> FaultSiteFromName(const std::string& name);

// Typed pipeline error. Transient faults are retried by the runtime (with
// exponential backoff); permanent ones abort the container start.
class FaultError : public std::runtime_error {
 public:
  FaultError(FaultSite site, bool transient);

  FaultSite site() const { return site_; }
  bool transient() const { return transient_; }

 private:
  FaultSite site_;
  bool transient_;
};

// How one site misbehaves.
struct SiteFaultSpec {
  double probability = 0.0;          // per-call fault probability
  uint64_t nth_call = 0;             // 1-based; fire on exactly this call (0 = off)
  bool transient = true;             // transient (retryable) vs permanent
  SimTime penalty = SimTime::Zero(); // simulated time lost before the fault surfaces
  uint64_t max_faults = UINT64_MAX;  // stop injecting after this many faults
};

// A full, replayable fault schedule. The per-site map is ordered so
// iteration (printing, serialization) is deterministic.
struct FaultPlan {
  uint64_t seed = 1;  // seeds the injector's private RNG
  std::map<FaultSite, SiteFaultSpec> sites;

  bool Empty() const { return sites.empty(); }

  // Parses "site:key=val,key=val;site2:..." where keys are
  //   p=<prob>  nth=<n>  kind=transient|permanent  penalty_ms=<ms>  max=<n>
  // e.g. "vfio-dev:p=0.2,penalty_ms=5;dma-pin:nth=3,kind=permanent".
  // Returns nullopt (with *error set) on malformed specs.
  static std::optional<FaultPlan> Parse(const std::string& spec, std::string* error);
  std::string ToString() const;
};

// One time-stamped fault-lifecycle event, kept for the unified trace
// (rendered as Perfetto instant events). Recording is memory-only: the log
// only grows when a fault actually fires or the runtime reacts to one, so
// fault-free runs carry an empty log.
struct FaultTraceEvent {
  enum class Kind { kInjected, kRetried, kRecovered, kAborted };

  SimTime t;
  FaultSite site;
  Kind kind;
  bool transient = false;  // meaningful for kInjected only
};

const char* FaultTraceEventKindName(FaultTraceEvent::Kind kind);

// Per-site outcome counters (surfaced through src/stats/fault_stats.h).
struct SiteFaultCounters {
  uint64_t calls = 0;      // times the site was reached
  uint64_t injected = 0;   // faults fired
  uint64_t transient_injected = 0;
  uint64_t permanent_injected = 0;
  uint64_t retried = 0;    // retry attempts triggered by this site
  uint64_t recovered = 0;  // phases that succeeded after >=1 fault here
  uint64_t aborted = 0;    // container starts this site's fault killed
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Consults the plan for one call at `site`. Charges the site's penalty as
  // a simulated delay, then throws FaultError when a fault fires; otherwise
  // returns without touching the clock. Never draws from the simulation RNG.
  Task MaybeInject(Simulation& sim, FaultSite site);

  // Recovery bookkeeping (called by ContainerRuntime). `now` stamps the
  // trace event; the counters themselves are time-free.
  void NoteRetry(FaultSite site, SimTime now) {
    ++counters_[Index(site)].retried;
    events_.push_back({now, site, FaultTraceEvent::Kind::kRetried});
  }
  void NoteRecovered(FaultSite site, SimTime now) {
    ++counters_[Index(site)].recovered;
    events_.push_back({now, site, FaultTraceEvent::Kind::kRecovered});
  }
  void NoteAborted(FaultSite site, SimTime now) {
    ++counters_[Index(site)].aborted;
    events_.push_back({now, site, FaultTraceEvent::Kind::kAborted});
  }

  // Chronological fault-lifecycle log (injections, retries, recoveries,
  // aborts) for the trace exporter.
  const std::vector<FaultTraceEvent>& trace_events() const { return events_; }

  const SiteFaultCounters& counters(FaultSite site) const {
    return counters_[Index(site)];
  }
  const FaultPlan& plan() const { return plan_; }

  uint64_t TotalInjected() const;
  uint64_t TotalRetried() const;
  uint64_t TotalRecovered() const;
  uint64_t TotalAborted() const;

 private:
  static int Index(FaultSite site) { return static_cast<int>(site); }
  // Pure decision step: updates call counters and the private RNG; returns
  // the fault to raise, if any.
  struct Injection {
    bool transient;
    SimTime penalty;
  };
  std::optional<Injection> Decide(FaultSite site);

  FaultPlan plan_;
  Rng rng_;
  std::array<SiteFaultCounters, kNumFaultSites> counters_{};
  std::vector<FaultTraceEvent> events_;
};

}  // namespace fastiov

#endif  // SRC_FAULT_FAULT_H_
