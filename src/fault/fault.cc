#include "src/fault/fault.h"

#include <cstdlib>
#include <sstream>

#include "src/simcore/simulation.h"

namespace fastiov {
namespace {

struct SiteNameEntry {
  FaultSite site;
  const char* name;
};

constexpr SiteNameEntry kSiteNames[] = {
    {FaultSite::kVfioGroupOpen, "vfio-group"},
    {FaultSite::kVfioDeviceOpen, "vfio-dev"},
    {FaultSite::kDmaMap, "dma-map"},
    {FaultSite::kDmaPin, "dma-pin"},
    {FaultSite::kVfBind, "vf-bind"},
    {FaultSite::kVfFlr, "vf-flr"},
    {FaultSite::kVfLinkUp, "link-up"},
    {FaultSite::kVdpaAttach, "vdpa-attach"},
    {FaultSite::kKvmMemslot, "kvm-memslot"},
    {FaultSite::kCni, "cni"},
    {FaultSite::kVirtioFs, "virtiofs"},
    {FaultSite::kGuestBoot, "guest-boot"},
    {FaultSite::kPhaseTimeout, "phase-timeout"},
    {FaultSite::kIpamAlloc, "ipam-alloc"},
    {FaultSite::kCniAssign, "cni-assign"},
    {FaultSite::kRegistryFetch, "registry-fetch"},
};
static_assert(sizeof(kSiteNames) / sizeof(kSiteNames[0]) == kNumFaultSites);

std::string DescribeFault(FaultSite site, bool transient) {
  std::string s = transient ? "transient" : "permanent";
  s += " fault at ";
  s += FaultSiteName(site);
  return s;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseDoubleStrict(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  for (const auto& e : kSiteNames) {
    if (e.site == site) {
      return e.name;
    }
  }
  return "?";
}

const char* FaultTraceEventKindName(FaultTraceEvent::Kind kind) {
  switch (kind) {
    case FaultTraceEvent::Kind::kInjected:
      return "injected";
    case FaultTraceEvent::Kind::kRetried:
      return "retried";
    case FaultTraceEvent::Kind::kRecovered:
      return "recovered";
    case FaultTraceEvent::Kind::kAborted:
      return "aborted";
  }
  return "?";
}

std::optional<FaultSite> FaultSiteFromName(const std::string& name) {
  for (const auto& e : kSiteNames) {
    if (name == e.name) {
      return e.site;
    }
  }
  return std::nullopt;
}

FaultError::FaultError(FaultSite site, bool transient)
    : std::runtime_error(DescribeFault(site, transient)),
      site_(site),
      transient_(transient) {}

std::optional<FaultPlan> FaultPlan::Parse(const std::string& spec, std::string* error) {
  FaultPlan plan;
  std::stringstream entries(spec);
  std::string entry;
  while (std::getline(entries, entry, ';')) {
    if (entry.empty()) {
      continue;
    }
    const size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      *error = "fault entry '" + entry + "' missing ':'";
      return std::nullopt;
    }
    const std::string site_name = entry.substr(0, colon);
    const auto site = FaultSiteFromName(site_name);
    if (!site.has_value()) {
      *error = "unknown fault site '" + site_name + "'";
      return std::nullopt;
    }
    SiteFaultSpec fault;
    std::stringstream kvs(entry.substr(colon + 1));
    std::string kv;
    while (std::getline(kvs, kv, ',')) {
      const size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        *error = "malformed key=value '" + kv + "' for site '" + site_name + "'";
        return std::nullopt;
      }
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      bool ok = true;
      if (key == "p") {
        ok = ParseDoubleStrict(value, &fault.probability) && fault.probability >= 0.0 &&
             fault.probability <= 1.0;
      } else if (key == "nth") {
        ok = ParseU64(value, &fault.nth_call) && fault.nth_call > 0;
      } else if (key == "kind") {
        if (value == "transient") {
          fault.transient = true;
        } else if (value == "permanent") {
          fault.transient = false;
        } else {
          ok = false;
        }
      } else if (key == "penalty_ms") {
        double ms = 0.0;
        ok = ParseDoubleStrict(value, &ms) && ms >= 0.0;
        if (ok) {
          fault.penalty = SimTime(static_cast<int64_t>(ms * 1e6));
        }
      } else if (key == "max") {
        ok = ParseU64(value, &fault.max_faults) && fault.max_faults > 0;
      } else {
        *error = "unknown fault key '" + key + "' for site '" + site_name + "'";
        return std::nullopt;
      }
      if (!ok) {
        *error = "bad value '" + value + "' for key '" + key + "' at site '" + site_name + "'";
        return std::nullopt;
      }
    }
    plan.sites[*site] = fault;
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [site, fault] : sites) {
    if (!first) {
      os << ';';
    }
    first = false;
    os << FaultSiteName(site) << ':';
    bool first_kv = true;
    auto sep = [&] {
      if (!first_kv) {
        os << ',';
      }
      first_kv = false;
    };
    if (fault.probability > 0.0) {
      sep();
      os << "p=" << fault.probability;
    }
    if (fault.nth_call > 0) {
      sep();
      os << "nth=" << fault.nth_call;
    }
    sep();
    os << "kind=" << (fault.transient ? "transient" : "permanent");
    if (fault.penalty > SimTime::Zero()) {
      sep();
      os << "penalty_ms=" << fault.penalty.ToSecondsF() * 1e3;
    }
    if (fault.max_faults != UINT64_MAX) {
      sep();
      os << "max=" << fault.max_faults;
    }
  }
  return os.str();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)), rng_(plan_.seed) {}

std::optional<FaultInjector::Injection> FaultInjector::Decide(FaultSite site) {
  SiteFaultCounters& c = counters_[Index(site)];
  ++c.calls;
  const auto it = plan_.sites.find(site);
  if (it == plan_.sites.end()) {
    return std::nullopt;
  }
  const SiteFaultSpec& fault = it->second;
  if (c.injected >= fault.max_faults) {
    return std::nullopt;
  }
  bool fire = false;
  if (fault.nth_call > 0 && c.calls == fault.nth_call) {
    fire = true;
  }
  // The probability draw happens for every call at an armed site, fired or
  // not, so the private RNG stream stays aligned across replays regardless
  // of which trigger hits first.
  if (fault.probability > 0.0 && rng_.NextDouble() < fault.probability) {
    fire = true;
  }
  if (!fire) {
    return std::nullopt;
  }
  ++c.injected;
  if (fault.transient) {
    ++c.transient_injected;
  } else {
    ++c.permanent_injected;
  }
  return Injection{fault.transient, fault.penalty};
}

Task FaultInjector::MaybeInject(Simulation& sim, FaultSite site) {
  const std::optional<Injection> injection = Decide(site);
  if (!injection.has_value()) {
    co_return;
  }
  if (injection->penalty > SimTime::Zero()) {
    co_await sim.Delay(injection->penalty);
  }
  // Stamped after the penalty: the instant marks when the fault surfaced.
  events_.push_back(
      {sim.Now(), site, FaultTraceEvent::Kind::kInjected, injection->transient});
  throw FaultError(site, injection->transient);
}

uint64_t FaultInjector::TotalInjected() const {
  uint64_t total = 0;
  for (const auto& c : counters_) {
    total += c.injected;
  }
  return total;
}

uint64_t FaultInjector::TotalRetried() const {
  uint64_t total = 0;
  for (const auto& c : counters_) {
    total += c.retried;
  }
  return total;
}

uint64_t FaultInjector::TotalRecovered() const {
  uint64_t total = 0;
  for (const auto& c : counters_) {
    total += c.recovered;
  }
  return total;
}

uint64_t FaultInjector::TotalAborted() const {
  uint64_t total = 0;
  for (const auto& c : counters_) {
    total += c.aborted;
  }
  return total;
}

}  // namespace fastiov
