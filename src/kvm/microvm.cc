#include "src/kvm/microvm.h"

#include <cassert>
#include <utility>

#include "src/fault/fault.h"

namespace fastiov {

std::optional<PageId> Ept::Lookup(uint64_t gpa_page) const {
  auto it = entries_.find(gpa_page);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void Ept::Insert(uint64_t gpa_page, PageId frame) { entries_[gpa_page] = frame; }
void Ept::Remove(uint64_t gpa_page) { entries_.erase(gpa_page); }

MicroVm::MicroVm(Simulation& sim, CpuPool& cpu, PhysicalMemory& pmem, const CostModel& cost,
                 int pid)
    : sim_(&sim), cpu_(&cpu), pmem_(&pmem), cost_(cost), pid_(pid) {}

GuestMemoryRegion& MicroVm::AddRegion(std::string name, RegionType type, uint64_t gpa_base,
                                      uint64_t size) {
  assert(size % pmem_->page_size() == 0);
  assert(gpa_base % pmem_->page_size() == 0);
  GuestMemoryRegion region;
  region.name = std::move(name);
  region.type = type;
  region.gpa_base = gpa_base;
  region.size = size;
  region.frames.Reset(size / pmem_->page_size());
  regions_.push_back(std::move(region));
  return regions_.back();
}

Task MicroVm::RegisterRegion(std::string name, RegionType type, uint64_t gpa_base,
                             uint64_t size) {
  if (FaultInjector* injector = sim_->fault_injector()) {
    co_await injector->MaybeInject(*sim_, FaultSite::kKvmMemslot);
  }
  AddRegion(std::move(name), type, gpa_base, size);
}

GuestMemoryRegion* MicroVm::FindRegion(const std::string& name) {
  for (auto& r : regions_) {
    if (r.name == name) {
      return &r;
    }
  }
  return nullptr;
}

GuestMemoryRegion* MicroVm::RegionForGpa(uint64_t gpa) {
  for (auto& r : regions_) {
    if (r.Contains(gpa)) {
      return &r;
    }
  }
  return nullptr;
}

void MicroVm::HostWritePages(GuestMemoryRegion& region, uint64_t first_page,
                             uint64_t num_pages) {
  for (uint64_t i = 0; i < num_pages; ++i) {
    const PageId frame = region.frames.Get(first_page + i);
    assert(frame != kInvalidPage && "host write to unallocated guest page");
    pmem_->frame(frame).content = PageContent::kData;
  }
}

Task MicroVm::ResolveFrame(GuestMemoryRegion& region, uint64_t page_index, PageId* out) {
  PageId frame = region.frames.Get(page_index);
  if (frame == kInvalidPage) {
    // On-demand allocation (the no-SR-IOV path, §3.2.3): the host kernel
    // pulls a page from the per-owner refill cache — one batched retrieval
    // amortized over kRefillCachePages faults, like the kernel's per-CPU
    // page lists — and zeroes it at first touch.
    assert(!region.dma_mapped && "DMA-mapped region must be fully populated");
    co_await pmem_->RetrieveSinglePage(pid_, &frame);
    co_await pmem_->ZeroPage(frame);
    region.frames.Set(page_index, frame);
    ++pages_allocated_on_demand_;
  }
  *out = frame;
}

Task MicroVm::HandleEptFault(uint64_t gpa_page, PageId frame) {
  ++ept_faults_;
  co_await cpu_->Compute(cost_.ept_fault_base);
  if (fault_hook_ != nullptr) {
    bool zeroed_here = false;
    co_await fault_hook_->OnEptFault(pid_, frame, &zeroed_here);
  }
  ept_.Insert(gpa_page, frame);
}

Task MicroVm::TouchRange(uint64_t gpa, uint64_t size, bool write) {
  const uint64_t page_size = pmem_->page_size();
  const uint64_t first = gpa / page_size;
  const uint64_t last = (gpa + size - 1) / page_size;
  for (uint64_t gpa_page = first; gpa_page <= last; ++gpa_page) {
    const uint64_t addr = gpa_page * page_size;
    GuestMemoryRegion* region = RegionForGpa(addr);
    assert(region != nullptr && "guest access outside any memory region");
    const uint64_t index = (addr - region->gpa_base) / page_size;

    if (!ept_.Lookup(gpa_page).has_value()) {
      PageId frame = kInvalidPage;
      co_await ResolveFrame(*region, index, &frame);
      co_await HandleEptFault(gpa_page, frame);
    }
    const PageId frame = region->frames.Get(index);
    PageFrame& pf = pmem_->frame(frame);
    if (write) {
      pf.content = PageContent::kData;
    } else if (pf.content == PageContent::kResidue) {
      // The guest just read another tenant's leftover data.
      ++residue_reads_;
    }
  }
}

Task MicroVm::ProactiveFault(uint64_t gpa, uint64_t size) {
  // "performing a data read to the first byte of each page of the buffer"
  co_await TouchRange(gpa, size, /*write=*/false);
}

void MicroVm::ReleaseMemory() {
  // Pages batched for future faults go back first.
  pmem_->DrainRefillCache(pid_);
  std::vector<PageRun> owned;
  for (auto& region : regions_) {
    if (region.shared_backing) {
      region.frames.Clear();
      continue;
    }
    region.frames.ForEachRun([&](uint64_t /*slot*/, const PageRun& run) {
      for (PageId frame = run.first; frame < run.first + run.count; ++frame) {
        if (pmem_->frame(frame).pin_count == 0) {
          AppendPageToRuns(&owned, frame);
        }
      }
    });
    region.frames.Clear();
  }
  pmem_->FreePages(std::span<const PageRun>(owned));
}

}  // namespace fastiov
