// KVM-side model: guest memory regions, the EPT, and the fault path that
// FastIOV's lazy zeroing hooks into (§4.3.2, Fig. 9).
//
// Guest accesses go through TouchRange: an EPT miss triggers a fault, the
// fault handler consults the (optional) EptFaultHook — fastiovd — which may
// zero the page before the GPA->HPA entry is inserted. Page-content tags
// make the correctness properties observable:
//   - a guest read observing kResidue is a cross-tenant data leak,
//   - zeroing a page that holds live data (hypervisor pre-writes, virtio
//     buffer fills) is a corruption; both are counted, never hidden.
#ifndef SRC_KVM_MICROVM_H_
#define SRC_KVM_MICROVM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/config/cost_model.h"
#include "src/mem/frame_map.h"
#include "src/mem/page_run.h"
#include "src/mem/physical_memory.h"
#include "src/simcore/resources.h"
#include "src/simcore/simulation.h"

namespace fastiov {

enum class RegionType {
  kRam,    // guest RAM (DMA-mapped when SR-IOV is enabled)
  kImage,  // microVM system image (read-only; FastIOV skips its DMA map)
};

struct GuestMemoryRegion {
  std::string name;
  RegionType type = RegionType::kRam;
  uint64_t gpa_base = 0;
  uint64_t size = 0;
  // Backing frames as contiguous extents (slot index -> frame run); holes
  // read as kInvalidPage until allocated. Shared regions (skip-mapping
  // image) may alias frames owned by the host.
  FrameMap frames;
  bool dma_mapped = false;
  bool shared_backing = false;  // frames not owned by this VM (page cache)

  uint64_t num_pages(uint64_t page_size) const { return size / page_size; }
  bool Contains(uint64_t gpa) const { return gpa >= gpa_base && gpa < gpa_base + size; }
};

// Extended page table: GPA page index -> frame.
class Ept {
 public:
  std::optional<PageId> Lookup(uint64_t gpa_page) const;
  void Insert(uint64_t gpa_page, PageId frame);
  void Remove(uint64_t gpa_page);
  uint64_t num_entries() const { return entries_.size(); }

 private:
  std::unordered_map<uint64_t, PageId> entries_;
};

// Implemented by fastiovd: invoked inside the EPT-violation handler before
// the new entry is inserted. Sets *zeroed_here if the hook scrubbed the page.
class EptFaultHook {
 public:
  virtual ~EptFaultHook() = default;
  virtual Task OnEptFault(int pid, PageId page, bool* zeroed_here) = 0;
};

class MicroVm {
 public:
  MicroVm(Simulation& sim, CpuPool& cpu, PhysicalMemory& pmem, const CostModel& cost, int pid);

  int pid() const { return pid_; }
  Ept& ept() { return ept_; }
  PhysicalMemory& pmem() { return *pmem_; }

  GuestMemoryRegion& AddRegion(std::string name, RegionType type, uint64_t gpa_base,
                               uint64_t size);
  // AddRegion through the KVM_SET_USER_MEMORY_REGION ioctl: same effect,
  // but consults the fault injector first (the memslot registration site).
  Task RegisterRegion(std::string name, RegionType type, uint64_t gpa_base, uint64_t size);
  GuestMemoryRegion* FindRegion(const std::string& name);
  GuestMemoryRegion* RegionForGpa(uint64_t gpa);
  const std::vector<GuestMemoryRegion>& regions() const { return regions_; }

  void SetFaultHook(EptFaultHook* hook) { fault_hook_ = hook; }

  // Hypervisor-side write (before the VM starts, or a virtio backend):
  // bypasses the EPT. Pages must already be allocated. Marks content kData.
  void HostWritePages(GuestMemoryRegion& region, uint64_t first_page, uint64_t num_pages);

  // Guest access to [gpa, gpa+size): walks pages, faulting and (for writes)
  // dirtying them. Reads count residue observations.
  Task TouchRange(uint64_t gpa, uint64_t size, bool write);

  // Proactive EPT faults (§4.3.2): read the first byte of each page of the
  // buffer so the fault (and lazy zeroing) happens before a device/back-end
  // writes into it.
  Task ProactiveFault(uint64_t gpa, uint64_t size);

  // Frees all VM-owned frames (container teardown).
  void ReleaseMemory();

  // --- statistics / correctness counters ---
  uint64_t ept_faults() const { return ept_faults_; }
  uint64_t residue_reads() const { return residue_reads_; }
  uint64_t pages_allocated_on_demand() const { return pages_allocated_on_demand_; }
  uint64_t interrupts_received() const { return interrupts_received_; }
  void NotifyInterrupt() { ++interrupts_received_; }

 private:
  // Resolve (and on-demand allocate, for non-DMA-mapped regions) the frame
  // backing a GPA page; returns kInvalidPage only on a bug.
  Task ResolveFrame(GuestMemoryRegion& region, uint64_t page_index, PageId* out);
  Task HandleEptFault(uint64_t gpa_page, PageId frame);

  Simulation* sim_;
  CpuPool* cpu_;
  PhysicalMemory* pmem_;
  const CostModel cost_;
  int pid_;
  std::vector<GuestMemoryRegion> regions_;
  Ept ept_;
  EptFaultHook* fault_hook_ = nullptr;

  uint64_t ept_faults_ = 0;
  uint64_t residue_reads_ = 0;
  uint64_t pages_allocated_on_demand_ = 0;
  uint64_t interrupts_received_ = 0;
};

}  // namespace fastiov

#endif  // SRC_KVM_MICROVM_H_
