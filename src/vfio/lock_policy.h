// Devset locking strategies.
//
// Vanilla VFIO guards every operation on any device of a devset — and the
// devset's global state — with one mutex (§3.2.2), serializing concurrent
// VF opens. FastIOV replaces it with the hierarchical framework of §4.2.1:
// a parent rwlock plus one mutex per child, which lets inter-child
// operations run in parallel while parent-state operations stay exclusive.
#ifndef SRC_VFIO_LOCK_POLICY_H_
#define SRC_VFIO_LOCK_POLICY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/simcore/sync.h"
#include "src/simcore/task.h"

namespace fastiov {

class DevsetLockPolicy {
 public:
  virtual ~DevsetLockPolicy() = default;

  // Registers child `index` (devices are added to a devset as they bind).
  virtual void AddChild(int index) = 0;

  // An operation touching the local state of child `index` (e.g. opening
  // one VF: its open count). `ctx` attributes any lock wait to the calling
  // container's current pipeline phase.
  virtual Task AcquireDeviceOp(int index, WaitCtx ctx = {}) = 0;
  virtual void ReleaseDeviceOp(int index) = 0;

  // An operation touching the devset's global state (e.g. a bus-level
  // reset checking the total open count of all members).
  virtual Task AcquireGlobalOp(WaitCtx ctx = {}) = 0;
  virtual void ReleaseGlobalOp() = 0;

  // Attaches named contention probes for every lock the policy owns
  // ("vfio.devset.global" / "vfio.devset.parent" / "vfio.devset.child.<i>").
  // Locks added later (AddChild) are instrumented on creation.
  virtual void Instrument(LockStatsRegistry* registry) = 0;

  virtual const char* name() const = 0;
  // Number of acquisitions that had to wait.
  virtual uint64_t contention_count() const = 0;
};

// Vanilla: one mutex for everything.
class GlobalMutexPolicy : public DevsetLockPolicy {
 public:
  explicit GlobalMutexPolicy(Simulation& sim) : mutex_(sim) {}

  void AddChild(int /*index*/) override {}
  Task AcquireDeviceOp(int index, WaitCtx ctx = {}) override;
  void ReleaseDeviceOp(int index) override;
  Task AcquireGlobalOp(WaitCtx ctx = {}) override;
  void ReleaseGlobalOp() override;
  void Instrument(LockStatsRegistry* registry) override;
  const char* name() const override { return "global-mutex"; }
  uint64_t contention_count() const override { return mutex_.contention_count(); }

 private:
  SimMutex mutex_;
};

// FastIOV: parent rwlock + per-child mutexes (Fig. 8b).
//  - child op:   rwlock.read + mutex[child]
//  - global op:  rwlock.write
// Two child ops on different children hold independent mutexes plus shared
// read permission, so they proceed in parallel; every other pairing is
// mutually exclusive (Fig. 8a).
class HierarchicalLockPolicy : public DevsetLockPolicy {
 public:
  explicit HierarchicalLockPolicy(Simulation& sim) : sim_(&sim), parent_(sim) {}

  void AddChild(int index) override;
  Task AcquireDeviceOp(int index, WaitCtx ctx = {}) override;
  void ReleaseDeviceOp(int index) override;
  Task AcquireGlobalOp(WaitCtx ctx = {}) override;
  void ReleaseGlobalOp() override;
  void Instrument(LockStatsRegistry* registry) override;
  const char* name() const override { return "hierarchical"; }
  uint64_t contention_count() const override;

 private:
  Simulation* sim_;
  SimRwLock parent_;
  std::vector<std::unique_ptr<SimMutex>> children_;
  LockStatsRegistry* registry_ = nullptr;
};

}  // namespace fastiov

#endif  // SRC_VFIO_LOCK_POLICY_H_
