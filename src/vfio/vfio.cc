#include "src/vfio/vfio.h"

#include <atomic>
#include <cassert>
#include <stdexcept>

#include "src/fault/fault.h"

namespace fastiov {
namespace {

std::atomic<bool> g_legacy_per_page_dma{false};

}  // namespace

void SetLegacyPerPageDma(bool enabled) {
  g_legacy_per_page_dma.store(enabled, std::memory_order_relaxed);
}

bool LegacyPerPageDma() { return g_legacy_per_page_dma.load(std::memory_order_relaxed); }

const char* ZeroingModeName(ZeroingMode m) {
  switch (m) {
    case ZeroingMode::kEager:
      return "eager";
    case ZeroingMode::kPreZeroed:
      return "pre-zeroed";
    case ZeroingMode::kDecoupled:
      return "decoupled";
    case ZeroingMode::kNone:
      return "none (insecure)";
  }
  return "?";
}

DevSet::DevSet(Simulation& sim, CpuPool& cpu, const CostModel& cost, PciBus* bus,
               std::unique_ptr<DevsetLockPolicy> lock_policy, bool scan_on_open)
    : sim_(&sim),
      cpu_(&cpu),
      cost_(cost),
      bus_(bus),
      lock_policy_(std::move(lock_policy)),
      scan_on_open_(scan_on_open) {}

VfioDevice* DevSet::AddDevice(PciDevice* pci) {
  const int index = static_cast<int>(devices_.size());
  devices_.push_back(std::make_unique<VfioDevice>(pci, this, index));
  lock_policy_->AddChild(index);
  pci->BindDriver(BoundDriver::kVfio);
  return devices_.back().get();
}

SimTime DevSet::BusScanCost() const {
  return cost_.vfio_pci_scan_per_device * static_cast<double>(bus_->num_devices());
}

Task DevSet::OpenDevice(VfioDevice* dev, WaitCtx ctx) {
  if (FaultInjector* injector = sim_->fault_injector()) {
    co_await injector->MaybeInject(*sim_, FaultSite::kVfioDeviceOpen);
  }
  co_await lock_policy_->AcquireDeviceOp(dev->index_in_devset(), ctx);
  // Critical section. Vanilla VFIO re-verifies devset membership by walking
  // the PCI bus and updates the global open count; the hierarchical policy
  // only touches this device's local state.
  SimTime crit = cost_.vfio_open_bookkeeping;
  if (scan_on_open_) {
    crit += BusScanCost();
  }
  co_await cpu_->Compute(sim_->rng().Jitter(crit, cost_.jitter_sigma), ctx);
  ++dev->open_count_;
  ++opens_performed_;
  lock_policy_->ReleaseDeviceOp(dev->index_in_devset());

  // fd setup and region-info queries happen outside the devset lock.
  co_await cpu_->Compute(sim_->rng().Jitter(cost_.vfio_device_fd_cpu, cost_.jitter_sigma),
                         ctx);
}

Task DevSet::CloseDevice(VfioDevice* dev, WaitCtx ctx) {
  co_await lock_policy_->AcquireDeviceOp(dev->index_in_devset(), ctx);
  co_await cpu_->Compute(cost_.vfio_open_bookkeeping, ctx);
  assert(dev->open_count_ > 0);
  --dev->open_count_;
  lock_policy_->ReleaseDeviceOp(dev->index_in_devset());
}

Task DevSet::TryBusReset(bool* ok, WaitCtx ctx) {
  co_await lock_policy_->AcquireGlobalOp(ctx);
  // The reset path always verifies the whole devset.
  co_await cpu_->Compute(BusScanCost(), ctx);
  if (TotalOpenCount() > 0) {
    *ok = false;
  } else {
    // Reset cost scales with the member count.
    co_await cpu_->Compute(cost_.vfio_open_bookkeeping * static_cast<double>(num_devices()),
                           ctx);
    *ok = true;
  }
  lock_policy_->ReleaseGlobalOp();
}

int DevSet::TotalOpenCount() const {
  int total = 0;
  for (const auto& d : devices_) {
    total += d->open_count_;
  }
  return total;
}

VfioContainer::VfioContainer(Simulation& sim, CpuPool& cpu, const CostModel& cost,
                             PhysicalMemory& pmem, Iommu& iommu)
    : sim_(&sim), cpu_(&cpu), cost_(cost), pmem_(&pmem), iommu_(&iommu) {
  domain_ = iommu_->CreateDomain();
}

VfioContainer::~VfioContainer() {
  UnmapAll();
  iommu_->DestroyDomain(domain_->id());
}

Task VfioContainer::MapDma(uint64_t iova, uint64_t size, const DmaMapOptions& options,
                           std::vector<PageRun>* out_runs) {
  const uint64_t page_size = pmem_->page_size();
  assert(size % page_size == 0 && iova % page_size == 0);
  const uint64_t num_pages = size / page_size;
  const bool legacy = LegacyPerPageDma();

  if (FaultInjector* injector = sim_->fault_injector()) {
    // The VFIO_IOMMU_MAP_DMA ioctl fails before any frame is taken.
    co_await injector->MaybeInject(*sim_, FaultSite::kDmaMap);
  }

  DmaMapping mapping;
  mapping.iova_base = iova;
  mapping.size = size;

  // 1. Page retrieving (batched; the free store hands out extents — the
  // legacy mode pulls pages one at a time like the pre-extent allocator).
  std::vector<PageId> flat;
  if (legacy) {
    co_await pmem_->RetrievePages(options.pid, num_pages, &flat, options.wait_ctx);
  } else {
    co_await pmem_->RetrievePages(options.pid, num_pages, &mapping.runs,
                                  options.wait_ctx);
  }

  if (FaultInjector* injector = sim_->fault_injector()) {
    // Pinning fails mid-map: the frames were retrieved but are not yet
    // pinned, registered with a lazy-zero registry, or IOMMU-mapped, so the
    // cleanup is a plain free of exactly what step 1 handed out.
    std::exception_ptr pin_fault;
    try {
      co_await injector->MaybeInject(*sim_, FaultSite::kDmaPin);
    } catch (const FaultError&) {
      pin_fault = std::current_exception();
    }
    if (pin_fault != nullptr) {
      if (legacy) {
        pmem_->FreePages(std::span<const PageId>(flat));
      } else {
        pmem_->FreePages(std::span<const PageRun>(mapping.runs));
      }
      std::rethrow_exception(pin_fault);
    }
  }

  // 2. Page zeroing, per policy (§3.2.3 P3: with hugepages this dominates
  // the whole DMA-map step).
  switch (options.zeroing) {
    case ZeroingMode::kEager: {
      if (legacy) {
        co_await pmem_->ZeroPages(flat, options.wait_ctx);
      } else {
        co_await pmem_->ZeroPages(mapping.runs, options.wait_ctx);
      }
      break;
    }
    case ZeroingMode::kPreZeroed: {
      // Pages that came from the pre-zero pool are already clean.
      if (legacy) {
        std::vector<PageId> dirty;
        for (PageId id : flat) {
          if (pmem_->frame(id).content != PageContent::kZeroed) {
            dirty.push_back(id);
          }
        }
        co_await pmem_->ZeroPages(dirty, options.wait_ctx);
      } else {
        std::vector<PageRun> dirty;
        for (const PageRun& run : mapping.runs) {
          for (PageId id = run.first; id < run.first + run.count; ++id) {
            if (pmem_->frame(id).content != PageContent::kZeroed) {
              AppendPageToRuns(&dirty, id);
            }
          }
        }
        co_await pmem_->ZeroPages(dirty, options.wait_ctx);
      }
      break;
    }
    case ZeroingMode::kDecoupled: {
      if (options.lazy_registry == nullptr) {
        throw std::invalid_argument("decoupled zeroing requires a lazy-zero registry");
      }
      if (legacy) {
        const std::vector<PageRun> runs = RunsFromPages(flat);
        co_await options.lazy_registry->RegisterPages(options.pid, runs, iova);
      } else {
        co_await options.lazy_registry->RegisterPages(options.pid, mapping.runs, iova);
      }
      break;
    }
    case ZeroingMode::kNone:
      break;  // insecure ablation: hand residue to the guest
  }

  // 3. Page pinning.
  if (legacy) {
    co_await pmem_->PinPages(flat, options.wait_ctx);
  } else {
    co_await pmem_->PinPages(mapping.runs, options.wait_ctx);
  }

  // 4. IOMMU page-table updates: one range descent per extent (legacy mode
  // walks once per page, like the pre-extent code).
  if (legacy) {
    uint64_t cur = iova;
    for (PageId id : flat) {
      const bool mapped = domain_->Map(cur, id, page_size);
      assert(mapped && "IOVA range already mapped");
      (void)mapped;
      cur += page_size;
    }
  } else {
    const bool mapped = domain_->MapExtents(iova, mapping.runs, page_size);
    assert(mapped && "IOVA range already mapped");
    (void)mapped;
  }
  co_await cpu_->Compute(cost_.iommu_map_entry * static_cast<double>(num_pages),
                         options.wait_ctx);

  if (legacy) {
    if (out_runs != nullptr) {
      for (const PageRun& run : RunsFromPages(flat)) {
        AppendRunToRuns(out_runs, run);
      }
    }
    mapping.legacy_pages = std::move(flat);
  } else if (out_runs != nullptr) {
    for (const PageRun& run : mapping.runs) {
      AppendRunToRuns(out_runs, run);
    }
  }
  mappings_.push_back(std::move(mapping));
}

Task VfioContainer::MapDmaPrepinned(uint64_t iova, std::span<const PageRun> runs) {
  const uint64_t page_size = pmem_->page_size();
  DmaMapping mapping;
  mapping.iova_base = iova;
  mapping.size = PageCountOfRuns(runs) * page_size;
  mapping.runs.assign(runs.begin(), runs.end());

  co_await pmem_->PinPages(mapping.runs);
  uint64_t cur = iova;
  for (const PageRun& run : mapping.runs) {
    const bool mapped = domain_->MapRange(cur, run, page_size);
    assert(mapped && "IOVA range already mapped");
    (void)mapped;
    cur += run.count * page_size;
  }
  co_await cpu_->Compute(cost_.iommu_map_entry *
                         static_cast<double>(mapping.num_pages(page_size)));
  mappings_.push_back(std::move(mapping));
}

Task VfioContainer::MapDmaPrepinned(uint64_t iova, std::span<const PageId> pages) {
  const std::vector<PageRun> runs = RunsFromPages(pages);
  co_await MapDmaPrepinned(iova, std::span<const PageRun>(runs));
}

void VfioContainer::UnmapAll() {
  const uint64_t page_size = pmem_->page_size();
  const bool legacy = LegacyPerPageDma();
  for (auto& m : mappings_) {
    if (legacy && !m.legacy_pages.empty()) {
      uint64_t cur = m.iova_base;
      for (size_t i = 0; i < m.legacy_pages.size(); ++i) {
        domain_->Unmap(cur);
        cur += page_size;
      }
      pmem_->UnpinPages(std::span<const PageId>(m.legacy_pages));
    } else {
      uint64_t cur = m.iova_base;
      for (const PageRun& run : m.runs) {
        domain_->UnmapRange(cur, run.count, page_size);
        cur += run.count * page_size;
      }
      pmem_->UnpinPages(m.runs);
    }
  }
  mappings_.clear();
}

}  // namespace fastiov
