// VFIO: devices, devsets, groups and the container DMA-map path.
//
// This mirrors the Linux VFIO object model at the granularity the paper
// analyzes: a VfioDevice wraps a PCI function bound to vfio-pci; devices
// whose reset scope is the whole bus share a DevSet (§3.2.2); a VfioGroup
// is the IOMMU isolation unit; a VfioContainer owns an IOMMU domain and
// performs DMA memory mapping (retrieve -> zero -> pin -> map, Fig. 6).
#ifndef SRC_VFIO_VFIO_H_
#define SRC_VFIO_VFIO_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/config/cost_model.h"
#include "src/iommu/iommu.h"
#include "src/mem/physical_memory.h"
#include "src/mem/zero_policy.h"
#include "src/pci/pci.h"
#include "src/simcore/resources.h"
#include "src/simcore/simulation.h"
#include "src/vfio/lock_policy.h"

namespace fastiov {

class DevSet;

class VfioDevice {
 public:
  VfioDevice(PciDevice* pci, DevSet* devset, int index_in_devset)
      : pci_(pci), devset_(devset), index_(index_in_devset) {}

  PciDevice* pci() const { return pci_; }
  DevSet* devset() const { return devset_; }
  int index_in_devset() const { return index_; }
  int open_count() const { return open_count_; }

 private:
  friend class DevSet;
  PciDevice* pci_;
  DevSet* devset_;
  int index_;
  int open_count_ = 0;
};

// A set of VFIO devices that reset together. `scan_on_open` reproduces the
// vanilla behaviour where each open verifies the devset by walking the PCI
// bus under the global lock; FastIOV's hierarchical policy only needs the
// per-device bookkeeping.
class DevSet {
 public:
  DevSet(Simulation& sim, CpuPool& cpu, const CostModel& cost, PciBus* bus,
         std::unique_ptr<DevsetLockPolicy> lock_policy, bool scan_on_open);

  VfioDevice* AddDevice(PciDevice* pci);

  // Opens a device (hypervisor registration path). The critical section —
  // under the policy's device-op lock — covers the devset consistency check
  // (bus scan, vanilla only) and the open-count update. `ctx` attributes
  // lock and CPU waits to the calling container's current phase.
  Task OpenDevice(VfioDevice* dev, WaitCtx ctx = {});
  Task CloseDevice(VfioDevice* dev, WaitCtx ctx = {});

  // Bus-level reset: requires that no member is open; global-op lock.
  // Returns (via *ok) whether the reset was performed.
  Task TryBusReset(bool* ok, WaitCtx ctx = {});

  int TotalOpenCount() const;
  size_t num_devices() const { return devices_.size(); }
  VfioDevice* device(int index) { return devices_.at(index).get(); }
  DevsetLockPolicy& lock_policy() { return *lock_policy_; }
  uint64_t opens_performed() const { return opens_performed_; }

 private:
  // Cost of walking all functions on the bus (devset verification).
  SimTime BusScanCost() const;

  Simulation* sim_;
  CpuPool* cpu_;
  const CostModel cost_;
  PciBus* bus_;
  std::unique_ptr<DevsetLockPolicy> lock_policy_;
  bool scan_on_open_;
  std::vector<std::unique_ptr<VfioDevice>> devices_;
  uint64_t opens_performed_ = 0;
};

// One DMA mapping registered in a container. Backing frames are stored as
// contiguous extents, in IOVA order. Under the legacy per-page mode the
// frames live in `legacy_pages` instead (one entry per page, like the
// pre-extent implementation) and `runs` stays empty.
struct DmaMapping {
  uint64_t iova_base = 0;
  uint64_t size = 0;
  std::vector<PageRun> runs;
  std::vector<PageId> legacy_pages;

  uint64_t num_pages(uint64_t page_size) const { return size / page_size; }
};

// Benchmark/diagnostic switch: when enabled, the container DMA path runs the
// pre-extent per-page operations (flat page vectors, one IoPageTable descent
// per page) instead of run-granular ones. Simulated time is identical either
// way — simbench asserts that byte-identity — but wall-clock is not; this is
// the baseline the membench speedup is measured against. Process-global.
void SetLegacyPerPageDma(bool enabled);
bool LegacyPerPageDma();

struct DmaMapOptions {
  ZeroingMode zeroing = ZeroingMode::kEager;
  // Required when zeroing == kDecoupled.
  LazyZeroRegistry* lazy_registry = nullptr;
  int pid = -1;  // owning microVM
  // Attributes retrieval/zeroing/pinning waits to a container phase.
  WaitCtx wait_ctx;
};

// The VFIO container: an IOMMU domain plus its DMA mappings.
class VfioContainer {
 public:
  VfioContainer(Simulation& sim, CpuPool& cpu, const CostModel& cost, PhysicalMemory& pmem,
                Iommu& iommu);
  ~VfioContainer();

  IommuDomain* domain() { return domain_; }

  // VFIO_IOMMU_MAP_DMA: allocates backing frames for [iova, iova+size),
  // applies the zeroing policy, pins, and installs IOMMU entries — one
  // IoPageTable range descent per extent, like type1's iommu_map batching.
  // Appends the allocated extents to *out_runs.
  Task MapDma(uint64_t iova, uint64_t size, const DmaMapOptions& options,
              std::vector<PageRun>* out_runs);

  // Maps pre-allocated frames (used when the region's memory already
  // exists, e.g. hypervisor-populated regions).
  Task MapDmaPrepinned(uint64_t iova, std::span<const PageRun> runs);
  Task MapDmaPrepinned(uint64_t iova, std::span<const PageId> pages);

  // VFIO_IOMMU_UNMAP_DMA: removes entries, unpins and frees the frames.
  void UnmapAll();

  const std::vector<DmaMapping>& mappings() const { return mappings_; }

 private:
  Simulation* sim_;
  CpuPool* cpu_;
  const CostModel cost_;
  PhysicalMemory* pmem_;
  Iommu* iommu_;
  IommuDomain* domain_;
  std::vector<DmaMapping> mappings_;
};

}  // namespace fastiov

#endif  // SRC_VFIO_VFIO_H_
