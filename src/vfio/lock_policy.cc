#include "src/vfio/lock_policy.h"

#include <cassert>

namespace fastiov {

Task GlobalMutexPolicy::AcquireDeviceOp(int /*index*/) { co_await mutex_.Lock(); }
void GlobalMutexPolicy::ReleaseDeviceOp(int /*index*/) { mutex_.Unlock(); }
Task GlobalMutexPolicy::AcquireGlobalOp() { co_await mutex_.Lock(); }
void GlobalMutexPolicy::ReleaseGlobalOp() { mutex_.Unlock(); }

void HierarchicalLockPolicy::AddChild(int index) {
  if (static_cast<size_t>(index) >= children_.size()) {
    children_.resize(index + 1);
  }
  if (!children_[index]) {
    children_[index] = std::make_unique<SimMutex>(*sim_);
  }
}

Task HierarchicalLockPolicy::AcquireDeviceOp(int index) {
  assert(static_cast<size_t>(index) < children_.size() && children_[index]);
  // ac-read then ac-mutex_i (§4.2.1). Lock order is uniform (parent before
  // child), so the framework cannot deadlock.
  co_await parent_.LockRead();
  co_await children_[index]->Lock();
}

void HierarchicalLockPolicy::ReleaseDeviceOp(int index) {
  children_[index]->Unlock();
  parent_.UnlockRead();
}

Task HierarchicalLockPolicy::AcquireGlobalOp() { co_await parent_.LockWrite(); }
void HierarchicalLockPolicy::ReleaseGlobalOp() { parent_.UnlockWrite(); }

uint64_t HierarchicalLockPolicy::contention_count() const {
  uint64_t total = parent_.contention_count();
  for (const auto& child : children_) {
    if (child) {
      total += child->contention_count();
    }
  }
  return total;
}

}  // namespace fastiov
