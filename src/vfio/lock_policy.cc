#include "src/vfio/lock_policy.h"

#include <cassert>
#include <string>

namespace fastiov {

Task GlobalMutexPolicy::AcquireDeviceOp(int /*index*/, WaitCtx ctx) {
  co_await mutex_.Lock(ctx);
}
void GlobalMutexPolicy::ReleaseDeviceOp(int /*index*/) { mutex_.Unlock(); }
Task GlobalMutexPolicy::AcquireGlobalOp(WaitCtx ctx) { co_await mutex_.Lock(ctx); }
void GlobalMutexPolicy::ReleaseGlobalOp() { mutex_.Unlock(); }

void GlobalMutexPolicy::Instrument(LockStatsRegistry* registry) {
  mutex_.Instrument(registry == nullptr ? nullptr
                                        : registry->Create("vfio.devset.global"));
}

void HierarchicalLockPolicy::AddChild(int index) {
  if (static_cast<size_t>(index) >= children_.size()) {
    children_.resize(index + 1);
  }
  if (!children_[index]) {
    children_[index] = std::make_unique<SimMutex>(*sim_);
    if (registry_ != nullptr) {
      children_[index]->Instrument(
          registry_->Create("vfio.devset.child." + std::to_string(index)));
    }
  }
}

Task HierarchicalLockPolicy::AcquireDeviceOp(int index, WaitCtx ctx) {
  assert(static_cast<size_t>(index) < children_.size() && children_[index]);
  // ac-read then ac-mutex_i (§4.2.1). Lock order is uniform (parent before
  // child), so the framework cannot deadlock.
  co_await parent_.LockRead(ctx);
  co_await children_[index]->Lock(ctx);
}

void HierarchicalLockPolicy::ReleaseDeviceOp(int index) {
  children_[index]->Unlock();
  parent_.UnlockRead();
}

Task HierarchicalLockPolicy::AcquireGlobalOp(WaitCtx ctx) {
  co_await parent_.LockWrite(ctx);
}
void HierarchicalLockPolicy::ReleaseGlobalOp() { parent_.UnlockWrite(); }

void HierarchicalLockPolicy::Instrument(LockStatsRegistry* registry) {
  registry_ = registry;
  parent_.Instrument(registry == nullptr ? nullptr
                                         : registry->Create("vfio.devset.parent"));
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i]) {
      children_[i]->Instrument(
          registry == nullptr
              ? nullptr
              : registry->Create("vfio.devset.child." + std::to_string(i)));
    }
  }
}

uint64_t HierarchicalLockPolicy::contention_count() const {
  uint64_t total = parent_.contention_count();
  for (const auto& child : children_) {
    if (child) {
      total += child->contention_count();
    }
  }
  return total;
}

}  // namespace fastiov
