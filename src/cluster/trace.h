// Synthetic cluster launch traces.
//
// A trace is the cluster-level workload: a time-ordered sequence of container
// launch requests (10^5–10^6 of them for the fleet-scale experiments), each
// tagged with the zone it wants to run near and the image it boots from. The
// generator is pure: one (spec, seed) pair always produces the same trace, so
// trace replay identity is a property of the inputs, not of any recorded
// file (tests/cluster_test.cc pins this).
#ifndef SRC_CLUSTER_TRACE_H_
#define SRC_CLUSTER_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/simcore/time.h"

namespace fastiov {

// One container launch in a cluster trace.
struct ClusterLaunch {
  uint32_t id = 0;        // trace index; unique across the cluster
  SimTime arrival = SimTime::Zero();
  uint32_t zone = 0;      // locality domain the workload prefers
  uint32_t image_id = 0;  // which image it boots (zones share images)
  uint32_t image_mb = 0;  // registry bytes a cold fetch moves
};

struct ClusterTraceSpec {
  uint64_t launches = 1000;
  // Cluster-wide Poisson arrival rate. Launch arrivals are an open-loop
  // process: the cluster keeps receiving requests whether or not hosts have
  // finished earlier ones.
  double arrival_rate_per_s = 1000.0;
  uint32_t zones = 8;
  // Candidate image sizes, drawn uniformly per launch.
  std::vector<uint32_t> image_mb = {64, 128, 256};
};

// Deterministic generation from (spec, seed): exponential inter-arrival gaps
// at `arrival_rate_per_s`, zone and image size drawn from the same private
// stream. Arrivals are non-decreasing; ids are 0..launches-1 in time order.
std::vector<ClusterLaunch> GenerateLaunchTrace(const ClusterTraceSpec& spec, uint64_t seed);

}  // namespace fastiov

#endif  // SRC_CLUSTER_TRACE_H_
