// Pluggable cluster placement policies.
//
// The scheduler decides, before the simulation starts, which host runs each
// launch of a trace. Placement is deterministic and purely a function of
// (trace, hosts, slots, policy) — it consumes no RNG and no simulated time —
// so every policy keeps the cluster determinism contract: the same placement
// at any driver thread count, under either event-queue backend.
#ifndef SRC_CLUSTER_SCHEDULER_H_
#define SRC_CLUSTER_SCHEDULER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/cluster/trace.h"

namespace fastiov {

enum class ClusterSchedPolicy {
  kBinPack,      // fill host 0 to its slot budget, then host 1, ...
  kLeastLoaded,  // host with the fewest assigned launches (ties: lowest index)
  kLocality,     // the launch's zone-preferred host, overflowing to least-loaded
};

const char* ClusterSchedPolicyName(ClusterSchedPolicy policy);
std::optional<ClusterSchedPolicy> ClusterSchedPolicyFromName(const std::string& name);

// The outcome of placing one trace.
struct ClusterPlacement {
  std::vector<int> host_of;        // per launch (trace order)
  std::vector<uint64_t> per_host;  // assigned launch count per host
  uint64_t slots_per_host = 0;
  // Launches that landed on their zone-preferred host (zone % hosts). Counted
  // for every policy so placement quality is comparable across them.
  uint64_t locality_hits = 0;

  // max/mean assigned count; 1.0 is perfectly balanced.
  double Imbalance() const;
  double LocalityHitRate() const;
};

// Places every launch. `slots_per_host` caps a host's assignments for the
// bin-pack fill and the locality preference; when every host is at its cap
// the policies fall back to least-loaded so no launch is ever unplaceable.
ClusterPlacement PlaceLaunches(const std::vector<ClusterLaunch>& trace, int hosts,
                               uint64_t slots_per_host, ClusterSchedPolicy policy);

}  // namespace fastiov

#endif  // SRC_CLUSTER_SCHEDULER_H_
