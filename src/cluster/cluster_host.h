// ClusterHostCell: a HostCell driven by a cluster trace through the shared
// control plane.
//
// The base HostCell runs a closed burst: N containers, arrival schedule from
// the host's own RNG, no outside world. A ClusterHostCell instead replays the
// slice of a cluster launch trace the scheduler placed on it, and every
// launch must clear three control-plane gates — registry fetch (unless the
// image is already in the host's cache), IPAM allocation, CNI assignment —
// before the local start pipeline runs. Gates are CellPort round-trips to the
// ControlPlaneCell: the launch coroutine suspends on a GateAwaiter, the
// grant/reject message resumes it. After the container's dwell time it is
// stopped, its IP released back to the pool, and its bookkeeping record
// reaped — so resident memory tracks the *live* container count, not the
// 10^4+ launches a trace replays through each host.
//
// In bypass mode (no control plane, lookahead = Max) the cell is exactly a
// HostCell: RootTask() returns the base Orchestrate(), so a one-host cluster
// is byte-identical to RunStandalone (tests/cluster_test.cc pins this).
#ifndef SRC_CLUSTER_CLUSTER_HOST_H_
#define SRC_CLUSTER_CLUSTER_HOST_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/cluster/control_plane.h"
#include "src/cluster/trace.h"
#include "src/experiments/host_cell.h"

namespace fastiov {

// Cluster-side per-host outcome, reported next to the base ExperimentResult.
struct ClusterHostExtras {
  uint64_t assigned = 0;
  uint64_t completed = 0;     // started, dwelled, stopped cleanly
  uint64_t cp_rejected = 0;   // a control-plane gate rejected the launch
  uint64_t aborted = 0;       // local start pipeline aborted (fault injection)
  uint64_t registry_cache_hits = 0;
  uint64_t registry_cache_misses = 0;  // cold fetches this host issued
  uint64_t ipam_releases = 0;
  // Host-side admission queueing (waiting for a live-container slot).
  Summary admission_wait;
  // Per-gate round-trip seconds (request sent -> response resumed): queue
  // wait + service + 2x RTT.
  Summary ipam_gate;
  Summary cni_gate;
  Summary registry_gate;
  // Total control-plane time per launch (arrival to all gates cleared).
  Summary gate_wait;
  // Simulated time at which this host's cell drained (cluster makespan is
  // the max across hosts).
  SimTime end_sim_time = SimTime::Zero();
  // End-of-run leak snapshot, taken after the final reap. The conformance
  // and chaos suites assert these against the host's quiescent baseline.
  uint64_t final_live_instances = 0;
  uint64_t end_pinned_pages = 0;
  uint64_t end_used_pages = 0;
  uint64_t end_shared_image_pages = 0;
  uint64_t end_vfio_open = 0;
  uint64_t end_fastiovd_pending = 0;
  uint64_t end_iommu_domains = 0;
  uint64_t end_nic_vfs_in_use = 0;
};

struct ClusterHostParams {
  uint32_t control_plane_cell = 0;  // cell index of the ControlPlaneCell
  SimTime rtt = Microseconds(200);  // one-way latency == driver lookahead
  SimTime dwell = Seconds(2);       // container lifetime after ready
  // Admission cap: launches past this many live containers queue host-side
  // (kubelet pod-capacity admission). Sized to the VF pool by the runner so
  // an arrival burst can never exhaust VFs mid-pipeline.
  uint64_t max_live = 256;
  // When set, skip the control plane entirely and run the base closed-burst
  // Orchestrate — the standalone-identity pin.
  bool bypass_control_plane = false;
};

class ClusterHostCell : public HostCell {
 public:
  // `assigned` is this host's slice of the trace, in trace order.
  ClusterHostCell(const StackConfig& config, const ExperimentOptions& options,
                  const ClusterHostParams& params, std::vector<ClusterLaunch> assigned);

  void OnCellMessage(const CellMessage& msg) override;
  // Earliest-send promise for the driver's window planner. A host's sends
  // (gate requests, IP releases) are all triggered by (a) a launch being
  // admitted at its trace arrival, (b) a control-plane response arriving, or
  // (c) a dwell expiring — so the bound is min(next unspawned arrival,
  // earliest pending delivery, earliest release floor), which usually lies
  // well beyond the host's next local event (timer ticks, pipeline stages).
  // Only active when no fault injection / phase timeout can trigger the
  // abort paths, which send at times the components above do not cover.
  SimTime NextSendBound(SimTime next_event, SimTime earliest_inbox) override;
  void CellEnd() override;

  // Valid once finished(); plain values, safe to read from the main thread.
  const ClusterHostExtras& extras() const { return extras_; }

 protected:
  Task RootTask() override;

 private:
  // One control-plane round trip. The coroutine parks here until
  // OnCellMessage resumes it with the verdict.
  struct GateAwaiter {
    ClusterHostCell* cell;
    uint32_t launch_id;
    uint64_t kind;
    uint64_t payload;
    std::coroutine_handle<> handle{};
    bool ok = false;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    bool await_resume() const noexcept { return ok; }
  };

  // Parks a launch until the in-flight fetch of its image resolves.
  struct ImageWaitAwaiter {
    ClusterHostCell* cell;
    uint32_t image_id;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  struct ImageState {
    bool cached = false;
    bool fetching = false;
    std::vector<std::coroutine_handle<>> waiters;
  };

  // FIFO admission slot. A free slot is consumed in await_ready; otherwise
  // the launch parks and ReleaseSlot hands the freed slot directly to the
  // head waiter (never through the counter, so a newly arriving launch can
  // never overtake the queue).
  struct SlotAwaiter {
    ClusterHostCell* cell;

    bool await_ready() const noexcept {
      if (cell->free_slots_ == 0) {
        return false;
      }
      --cell->free_slots_;
      return true;
    }
    void await_suspend(std::coroutine_handle<> h) {
      cell->slot_waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  void ReleaseSlot();

  Task ClusterOrchestrate();
  Task LaunchOne(ClusterLaunch launch);
  // Registry gate with the per-host image cache: the first launch of an
  // image fetches, concurrent launches of the same image wait for that fetch
  // instead of piling onto the registry queue. Returns false when the fetch
  // was rejected for this launch.
  Task EnsureImage(const ClusterLaunch& launch, bool* ok);
  void SendIpamRelease(uint32_t launch_id);
  void ResumeImageWaiters(uint32_t image_id);

  ClusterHostParams params_;
  std::vector<ClusterLaunch> assigned_;

  // Earliest-send bound bookkeeping (NextSendBound above). spawn_cursor_
  // counts launches handed to LaunchOne; release_floors_ holds, for every
  // in-dwell container, the earliest time its IP release can be sent
  // (CNI-grant time + dwell). Maintained only when track_bounds_ — with
  // fault injection or a phase timeout the abort paths can send at
  // unpredictable times, so the cell falls back to the default bound.
  bool track_bounds_ = false;
  size_t spawn_cursor_ = 0;
  std::multiset<SimTime> release_floors_;

  // Launches parked on a control-plane response, keyed by launch id. One
  // launch holds at most one gate at a time, so the key is unique.
  std::unordered_map<uint32_t, GateAwaiter*> gates_;
  std::unordered_map<uint32_t, ImageState> images_;

  uint64_t free_slots_ = 0;
  std::deque<std::coroutine_handle<>> slot_waiters_;

  ClusterHostExtras extras_;
};

}  // namespace fastiov

#endif  // SRC_CLUSTER_CLUSTER_HOST_H_
