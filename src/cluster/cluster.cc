#include "src/cluster/cluster.h"

#include <algorithm>
#include <iomanip>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/experiments/result_json.h"
#include "src/simcore/parallel_exec.h"
#include "src/stats/json_writer.h"

namespace fastiov {
namespace {

void WriteWaitSummary(JsonWriter& json, const Summary& s) {
  json.BeginObject().KV("count", static_cast<uint64_t>(s.Count()));
  if (!s.Empty()) {
    json.KV("mean", s.Mean())
        .KV("p50", s.Percentile(50))
        .KV("p99", s.Percentile(99))
        .KV("max", s.Max());
  }
  json.EndObject();
}

void WriteResourceReport(JsonWriter& json, const CpResourceReport& r) {
  json.BeginObject()
      .KV("requests", r.requests)
      .KV("granted", r.granted)
      .KV("rejected", r.rejected)
      .KV("busy_seconds", r.busy.ToSecondsF());
  json.Key("queue_wait_seconds");
  WriteWaitSummary(json, r.queue_wait);
  json.EndObject();
}

void WriteHostExtras(JsonWriter& json, const ClusterHostExtras& e) {
  json.BeginObject()
      .KV("assigned", e.assigned)
      .KV("completed", e.completed)
      .KV("cp_rejected", e.cp_rejected)
      .KV("aborted", e.aborted)
      .KV("registry_cache_hits", e.registry_cache_hits)
      .KV("registry_cache_misses", e.registry_cache_misses)
      .KV("ipam_releases", e.ipam_releases)
      .KV("end_sim_seconds", e.end_sim_time.ToSecondsF());
  json.Key("admission_wait_seconds");
  WriteWaitSummary(json, e.admission_wait);
  json.Key("gate_wait_seconds");
  WriteWaitSummary(json, e.gate_wait);
  json.Key("ipam_gate_seconds");
  WriteWaitSummary(json, e.ipam_gate);
  json.Key("cni_gate_seconds");
  WriteWaitSummary(json, e.cni_gate);
  json.Key("registry_gate_seconds");
  WriteWaitSummary(json, e.registry_gate);
  json.Key("leak_check");
  json.BeginObject()
      .KV("live_instances", e.final_live_instances)
      .KV("pinned_pages", e.end_pinned_pages)
      .KV("used_pages", e.end_used_pages)
      .KV("shared_image_pages", e.end_shared_image_pages)
      .KV("vfio_open", e.end_vfio_open)
      .KV("fastiovd_pending", e.end_fastiovd_pending)
      .KV("iommu_domains", e.end_iommu_domains)
      .KV("nic_vfs_in_use", e.end_nic_vfs_in_use)
      .EndObject();
  json.EndObject();
}

}  // namespace

ExperimentOptions ClusterHostBaseOptions(const ClusterOptions& options, int host_index,
                                         uint64_t assigned) {
  ExperimentOptions o;
  // Same convention as the multi-cell fleet: host i draws from seed + i; the
  // control-plane cell takes seed + hosts (never colliding with a host).
  o.seed = options.seed + static_cast<uint64_t>(host_index);
  // In bypass mode the base Orchestrate drives exactly `concurrency`
  // containers, so it must equal the assignment. In control-plane mode the
  // trace drives the launches and concurrency only pre-sizes the event
  // queue for the live set — cap it so a 10^5-launch assignment does not
  // reserve a million-slot queue up front.
  o.concurrency = options.bypass_control_plane
                      ? static_cast<int>(assigned)
                      : static_cast<int>(std::min<uint64_t>(assigned, 2048));
  o.host = options.host;
  o.cost = options.cost;
  o.app = options.app;
  o.fault_plan = options.host_fault_plan;
  o.collect_metrics = options.collect_metrics;
  o.scheduler = options.scheduler;
  o.timeline_span_sample = options.timeline_span_sample;
  return o;
}

ClusterResult RunClusterExperiment(const ClusterOptions& options) {
  if (options.hosts <= 0) {
    throw std::invalid_argument("RunClusterExperiment: hosts must be positive");
  }
  if (options.trace.launches == 0) {
    throw std::invalid_argument("RunClusterExperiment: trace needs at least one launch");
  }

  const std::vector<ClusterLaunch> trace = GenerateLaunchTrace(options.trace, options.seed);
  const ClusterPlacement placement =
      PlaceLaunches(trace, options.hosts, options.slots_per_host, options.policy);

  std::vector<std::vector<ClusterLaunch>> per_host(static_cast<size_t>(options.hosts));
  for (int h = 0; h < options.hosts; ++h) {
    per_host[static_cast<size_t>(h)].reserve(placement.per_host[static_cast<size_t>(h)]);
  }
  for (size_t i = 0; i < trace.size(); ++i) {
    per_host[static_cast<size_t>(placement.host_of[i])].push_back(trace[i]);
  }

  ControlPlaneConfig cp_config = options.control_plane;
  if (cp_config.ipam_pool == 0) {
    cp_config.ipam_pool = trace.size();
  }

  std::vector<std::unique_ptr<ClusterHostCell>> hosts;
  hosts.reserve(static_cast<size_t>(options.hosts));
  std::vector<SimCell*> cells;
  cells.reserve(static_cast<size_t>(options.hosts) + 1);
  for (int h = 0; h < options.hosts; ++h) {
    const uint64_t assigned = placement.per_host[static_cast<size_t>(h)];
    ClusterHostParams params;
    params.control_plane_cell = static_cast<uint32_t>(options.hosts);
    params.rtt = options.rtt;
    params.dwell = options.dwell;
    params.max_live = options.max_live_per_host > 0
                          ? options.max_live_per_host
                          : static_cast<uint64_t>(options.host.num_vfs);
    params.bypass_control_plane = options.bypass_control_plane;
    hosts.push_back(std::make_unique<ClusterHostCell>(
        options.stack, ClusterHostBaseOptions(options, h, assigned), params,
        std::move(per_host[static_cast<size_t>(h)])));
    cells.push_back(hosts.back().get());
  }

  std::unique_ptr<ControlPlaneCell> control_plane;
  if (!options.bypass_control_plane) {
    control_plane = std::make_unique<ControlPlaneCell>(
        cp_config, options.rtt, options.seed + static_cast<uint64_t>(options.hosts),
        options.control_plane_fault_plan);
    cells.push_back(control_plane.get());
  }

  ParallelExecOptions po;
  po.threads = options.threads;
  po.lookahead = options.bypass_control_plane ? SimTime::Max() : options.rtt;
  po.profile = options.profile_driver;

  ClusterResult result;
  result.exec = RunCells(cells, po);

  result.hosts = options.hosts;
  result.policy = options.policy;
  result.launches = trace.size();
  result.seed = options.seed;
  result.rtt = options.rtt;
  result.dwell = options.dwell;
  result.bypass_control_plane = options.bypass_control_plane;
  result.slots_per_host = placement.slots_per_host;
  result.imbalance = placement.Imbalance();
  result.locality_hit_rate = placement.LocalityHitRate();
  result.per_host_assigned = placement.per_host;

  result.host_results.reserve(hosts.size());
  for (auto& host : hosts) {
    ClusterHostOutcome outcome;
    outcome.extras = host->extras();
    outcome.result = host->TakeResult();
    result.completed += outcome.extras.completed;
    result.cp_rejected += outcome.extras.cp_rejected;
    result.aborted += outcome.extras.aborted;
    result.registry_cache_hits += outcome.extras.registry_cache_hits;
    result.registry_cache_misses += outcome.extras.registry_cache_misses;
    result.sim_makespan = std::max(result.sim_makespan, outcome.extras.end_sim_time);
    result.host_results.push_back(std::move(outcome));
  }
  if (control_plane) {
    result.control_plane = control_plane->TakeReport();
  }
  return result;
}

void WriteClusterResultJson(const ClusterResult& result, std::ostream& os,
                            bool include_exec) {
  JsonWriter json(os);
  json.BeginObject();
  json.Key("cluster");
  json.BeginObject()
      .KV("hosts", static_cast<int64_t>(result.hosts))
      .KV("policy", ClusterSchedPolicyName(result.policy))
      .KV("launches", result.launches)
      .KV("seed", result.seed)
      .KV("rtt_us", result.rtt.ToMicrosF())
      .KV("dwell_ms", result.dwell.ToMillisF())
      .KV("bypass_control_plane", result.bypass_control_plane)
      .EndObject();
  json.Key("placement");
  json.BeginObject()
      .KV("slots_per_host", result.slots_per_host)
      .KV("imbalance", result.imbalance)
      .KV("locality_hit_rate", result.locality_hit_rate);
  json.Key("per_host_assigned");
  json.BeginArray();
  for (uint64_t n : result.per_host_assigned) {
    json.Value(n);
  }
  json.EndArray();
  json.EndObject();
  json.Key("totals");
  json.BeginObject()
      .KV("completed", result.completed)
      .KV("cp_rejected", result.cp_rejected)
      .KV("aborted", result.aborted)
      .KV("registry_cache_hits", result.registry_cache_hits)
      .KV("registry_cache_misses", result.registry_cache_misses)
      .KV("sim_makespan_seconds", result.sim_makespan.ToSecondsF())
      .EndObject();
  json.Key("hosts_detail");
  json.BeginArray();
  for (const ClusterHostOutcome& outcome : result.host_results) {
    json.BeginObject();
    json.Key("result");
    WriteExperimentResultJson(outcome.result, json);
    json.Key("cluster");
    WriteHostExtras(json, outcome.extras);
    json.EndObject();
  }
  json.EndArray();
  if (result.control_plane.has_value()) {
    const ControlPlaneReport& cp = *result.control_plane;
    json.Key("control_plane");
    json.BeginObject();
    json.Key("ipam");
    WriteResourceReport(json, cp.ipam);
    json.Key("cni");
    WriteResourceReport(json, cp.cni);
    json.Key("registry");
    WriteResourceReport(json, cp.registry);
    json.KV("ipam_pool", cp.ipam_pool)
        .KV("ipam_free_end", cp.ipam_free_end)
        .KV("ipam_released", cp.ipam_released);
    if (cp.fault_stats.has_value()) {
      json.Key("fault_injection");
      WriteFaultStatsJson(*cp.fault_stats, json);
    }
    json.EndObject();
  }
  if (include_exec) {
    const ParallelExecStats& exec = result.exec;
    json.Key("exec");
    json.BeginObject()
        .KV("threads_used", static_cast<int64_t>(exec.threads_used))
        .KV("windows", exec.windows)
        .KV("messages_delivered", exec.messages_delivered)
        .KV("cell_rounds", exec.cell_rounds)
        .KV("cell_rounds_elided", exec.cell_rounds_elided)
        .KV("mean_window_span_us", exec.mean_window_span_us)
        .KV("barrier_wait_seconds", exec.barrier_wait_seconds)
        .KV("wall_seconds", exec.wall_seconds)
        .KV("utilization", exec.Utilization());
    if (exec.profile_deliver_seconds > 0.0 || exec.profile_execute_seconds > 0.0 ||
        exec.profile_plan_seconds > 0.0) {
      json.Key("profile");
      json.BeginObject()
          .KV("deliver_seconds", exec.profile_deliver_seconds)
          .KV("execute_seconds", exec.profile_execute_seconds)
          .KV("plan_seconds", exec.profile_plan_seconds)
          .EndObject();
    }
    json.EndObject();
  }
  json.EndObject();
}

std::string ClusterDigest(const ClusterResult& result) {
  std::ostringstream os;
  WriteClusterResultJson(result, os, /*include_exec=*/false);
  return os.str();
}

void PrintClusterReport(const ClusterResult& result, std::ostream& os) {
  os << "cluster: " << result.hosts << " hosts, policy " << ClusterSchedPolicyName(result.policy)
     << ", " << result.launches << " launches, seed " << result.seed;
  if (result.bypass_control_plane) {
    os << ", control plane bypassed";
  }
  os << "\n";
  os << std::fixed << std::setprecision(3);
  os << "  placement: slots/host " << result.slots_per_host << ", imbalance "
     << result.imbalance << ", locality hit rate " << result.locality_hit_rate << "\n";
  os << "  outcome: " << result.completed << " completed, " << result.cp_rejected
     << " rejected, " << result.aborted << " aborted; registry cache "
     << result.registry_cache_hits << " hits / " << result.registry_cache_misses
     << " misses\n";
  os << "  simulated makespan: " << result.sim_makespan.ToSecondsF() << " s";
  if (result.sim_makespan > SimTime::Zero()) {
    os << " (" << static_cast<double>(result.launches) / result.sim_makespan.ToSecondsF()
       << " launches/s simulated)";
  }
  os << "\n";
  if (result.control_plane.has_value()) {
    const ControlPlaneReport& cp = *result.control_plane;
    auto line = [&os](const CpResourceReport& r) {
      os << "    " << r.name << ": " << r.requests << " requests, " << r.granted
         << " granted, " << r.rejected << " rejected";
      if (!r.queue_wait.Empty()) {
        os << "; queue wait p50 " << r.queue_wait.Percentile(50) * 1e3 << " ms, p99 "
           << r.queue_wait.Percentile(99) * 1e3 << " ms";
      }
      os << "\n";
    };
    os << "  control plane (pool " << cp.ipam_pool << ", free at end " << cp.ipam_free_end
       << "):\n";
    line(cp.ipam);
    line(cp.cni);
    line(cp.registry);
  }
  const ParallelExecStats& exec = result.exec;
  os << "  wall: " << exec.wall_seconds << " s on " << exec.threads_used
     << " thread(s), " << exec.windows << " windows, "
     << exec.messages_delivered << " messages\n";
  if (exec.cell_rounds + exec.cell_rounds_elided > 0) {
    os << "  driver: " << exec.cell_rounds << " cell-rounds run, "
       << exec.cell_rounds_elided << " elided ("
       << 100.0 * static_cast<double>(exec.cell_rounds_elided) /
              static_cast<double>(exec.cell_rounds + exec.cell_rounds_elided)
       << "%), mean window span " << exec.mean_window_span_us << " us, barrier wait "
       << exec.barrier_wait_seconds << " s\n";
  }
  if (exec.profile_deliver_seconds > 0.0 || exec.profile_execute_seconds > 0.0 ||
      exec.profile_plan_seconds > 0.0) {
    os << "  driver profile: deliver " << exec.profile_deliver_seconds << " s, execute "
       << exec.profile_execute_seconds << " s, plan " << exec.profile_plan_seconds
       << " s\n";
  }
}

std::optional<std::string> ValidateClusterCli(int cluster_hosts, int cells, int waves,
                                              bool chrome_trace,
                                              std::optional<int64_t> lookahead_us,
                                              int64_t rtt_us) {
  if (cluster_hosts <= 0) {
    return std::nullopt;  // not in cluster mode; nothing to check
  }
  if (cells > 1) {
    return "--cells and --cluster-hosts are contradictory: a cluster run owns the "
           "cell topology (hosts + control plane); drop --cells";
  }
  if (waves > 1) {
    return "--waves cannot be combined with --cluster-hosts: cluster load comes from "
           "the launch trace, not repeated waves";
  }
  if (chrome_trace) {
    return "--trace (Chrome trace export) is not supported with --cluster-hosts; "
           "use --json for the cluster report";
  }
  if (lookahead_us.has_value()) {
    if (*lookahead_us < rtt_us) {
      std::ostringstream os;
      os << "--lookahead-us " << *lookahead_us << " is below the control-plane minimum RTT ("
         << rtt_us << " us): the cluster's conservative lookahead must equal the "
         << "control-plane RTT (--cluster-rtt-us)";
      return os.str();
    }
    if (*lookahead_us > rtt_us) {
      std::ostringstream os;
      os << "--lookahead-us " << *lookahead_us << " exceeds the control-plane RTT (" << rtt_us
         << " us): control-plane messages would land inside the execution window, "
         << "violating conservative synchronization";
      return os.str();
    }
  }
  return std::nullopt;
}

}  // namespace fastiov
