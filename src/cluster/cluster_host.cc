#include "src/cluster/cluster_host.h"

#include <stdexcept>
#include <utility>

namespace fastiov {

ClusterHostCell::ClusterHostCell(const StackConfig& config, const ExperimentOptions& options,
                                 const ClusterHostParams& params,
                                 std::vector<ClusterLaunch> assigned)
    : HostCell(config, options), params_(params), assigned_(std::move(assigned)) {
  extras_.assigned = assigned_.size();
  free_slots_ = params_.max_live;
  // The abort paths (which send IP releases at times NextSendBound's
  // components do not predict) only run under fault injection or a phase
  // timeout; without either, the tighter send bound is sound.
  track_bounds_ = !params_.bypass_control_plane && !options.fault_plan.has_value() &&
                  config.phase_timeout <= SimTime::Zero();
}

SimTime ClusterHostCell::NextSendBound(SimTime next_event, SimTime earliest_inbox) {
  if (!track_bounds_) {
    return SimCell::NextSendBound(next_event, earliest_inbox);
  }
  // Every send is triggered by a control-plane response (>= earliest_inbox),
  // a launch admitted at its trace arrival (the orchestrator hands launches
  // out in trace order, so none past the cursor starts before
  // assigned_[spawn_cursor_].arrival), or a dwell expiry (>= its floor).
  // Slot-queue handoffs and image-fetch wakeups only happen at one of those
  // same moments, so they are covered too.
  SimTime bound = earliest_inbox;
  if (spawn_cursor_ < assigned_.size()) {
    bound = std::min(bound, assigned_[spawn_cursor_].arrival);
  }
  if (!release_floors_.empty()) {
    bound = std::min(bound, *release_floors_.begin());
  }
  return bound;
}

Task ClusterHostCell::RootTask() {
  return params_.bypass_control_plane ? Orchestrate() : ClusterOrchestrate();
}

void ClusterHostCell::GateAwaiter::await_suspend(std::coroutine_handle<> h) {
  handle = h;
  cell->gates_[launch_id] = this;
  cell->port_->Send(cell->params_.control_plane_cell, cell->params_.rtt, kind, payload);
}

void ClusterHostCell::ImageWaitAwaiter::await_suspend(std::coroutine_handle<> h) {
  cell->images_[image_id].waiters.push_back(h);
}

void ClusterHostCell::OnCellMessage(const CellMessage& msg) {
  bool granted = false;
  switch (static_cast<CpMessage>(msg.kind)) {
    case CpMessage::kIpamGrant:
    case CpMessage::kCniGrant:
    case CpMessage::kRegistryGrant:
      granted = true;
      break;
    case CpMessage::kIpamReject:
    case CpMessage::kCniReject:
    case CpMessage::kRegistryReject:
      granted = false;
      break;
    default:
      throw std::logic_error("ClusterHostCell: unexpected message kind");
  }
  const uint32_t launch_id = CpPayloadLaunchId(msg.payload);
  auto it = gates_.find(launch_id);
  if (it == gates_.end()) {
    throw std::logic_error("ClusterHostCell: response for a launch with no open gate");
  }
  GateAwaiter* gate = it->second;
  gates_.erase(it);
  // The awaiter lives in the launch coroutine's frame; after resume() the
  // frame may already be gone, so the verdict is written first and the
  // pointer never touched again.
  gate->ok = granted;
  gate->handle.resume();
}

Task ClusterHostCell::ClusterOrchestrate() {
  Simulation& sim = *sim_;
  co_await BeginHostServices();
  std::vector<Process> launches;
  launches.reserve(256);
  size_t spawned = 0;
  for (const ClusterLaunch& launch : assigned_) {
    if (launch.arrival > sim.Now()) {
      co_await sim.Delay(launch.arrival - sim.Now());
    }
    ++spawn_cursor_;
    launches.push_back(sim.Spawn(LaunchOne(launch), "launch"));
    // Drop handles of finished launches so the in-flight list tracks live
    // containers, not the 10^4+ a trace replays. A dropped process that
    // failed is still rethrown by the simulation at drain time.
    if (++spawned % 256 == 0) {
      std::erase_if(launches, [](const Process& p) { return p.Done(); });
    }
  }
  co_await WaitAll(std::move(launches));
  host_->fastiovd().StopBackgroundZeroer();
}

Task ClusterHostCell::EnsureImage(const ClusterLaunch& launch, bool* ok) {
  Simulation& sim = *sim_;
  ImageState& state = images_[launch.image_id];  // node-based map: stable ref
  while (true) {
    if (state.cached) {
      ++extras_.registry_cache_hits;
      *ok = true;
      co_return;
    }
    if (state.fetching) {
      co_await ImageWaitAwaiter{this, launch.image_id};
      continue;
    }
    state.fetching = true;
    ++extras_.registry_cache_misses;
    const SimTime t0 = sim.Now();
    GateAwaiter gate{this, launch.id, static_cast<uint64_t>(CpMessage::kRegistryRequest),
                     CpRequestPayload(launch.id, launch.image_mb)};
    const bool granted = co_await gate;
    extras_.registry_gate.AddTime(sim.Now() - t0);
    state.fetching = false;
    if (granted) {
      state.cached = true;
    }
    // Either way the fetch resolved: waiters re-check and the first one
    // becomes the new fetcher if this one was rejected.
    ResumeImageWaiters(launch.image_id);
    *ok = granted;
    co_return;
  }
}

void ClusterHostCell::ResumeImageWaiters(uint32_t image_id) {
  ImageState& state = images_[image_id];
  if (state.waiters.empty()) {
    return;
  }
  std::vector<std::coroutine_handle<>> waiters = std::move(state.waiters);
  state.waiters.clear();
  // Each waiter resumes as its own event at the current timestamp, in wait
  // order — deterministic, and no deep synchronous resume chains.
  for (std::coroutine_handle<> h : waiters) {
    sim_->ScheduleHandle(sim_->Now(), h);
  }
}

void ClusterHostCell::ReleaseSlot() {
  if (!slot_waiters_.empty()) {
    // Hand the slot straight to the head waiter; it resumes as its own event
    // at the current timestamp (deterministic FIFO, no counter round trip).
    std::coroutine_handle<> h = slot_waiters_.front();
    slot_waiters_.pop_front();
    sim_->ScheduleHandle(sim_->Now(), h);
  } else {
    ++free_slots_;
  }
}

void ClusterHostCell::SendIpamRelease(uint32_t launch_id) {
  port_->Send(params_.control_plane_cell, params_.rtt,
              static_cast<uint64_t>(CpMessage::kIpamRelease),
              CpRequestPayload(launch_id, 0));
  ++extras_.ipam_releases;
}

Task ClusterHostCell::LaunchOne(ClusterLaunch launch) {
  Simulation& sim = *sim_;
  ContainerRuntime& runtime = *runtime_;

  {
    const SimTime t0 = sim.Now();
    co_await SlotAwaiter{this};
    extras_.admission_wait.AddTime(sim.Now() - t0);
  }
  // From here the launch holds an admission slot; every exit path below
  // releases it (after the reap, so the slot really is free capacity).
  const SimTime gates_begin = sim.Now();

  bool image_ok = true;
  co_await EnsureImage(launch, &image_ok);
  if (!image_ok) {
    ++extras_.cp_rejected;
    ReleaseSlot();
    co_return;
  }

  {
    const SimTime t0 = sim.Now();
    GateAwaiter gate{this, launch.id, static_cast<uint64_t>(CpMessage::kIpamRequest),
                     CpRequestPayload(launch.id, 0)};
    const bool granted = co_await gate;
    extras_.ipam_gate.AddTime(sim.Now() - t0);
    if (!granted) {
      ++extras_.cp_rejected;
      ReleaseSlot();
      co_return;
    }
  }
  // From here the launch also holds an IP; every exit path returns it.
  {
    const SimTime t0 = sim.Now();
    GateAwaiter gate{this, launch.id, static_cast<uint64_t>(CpMessage::kCniRequest),
                     CpRequestPayload(launch.id, 0)};
    const bool granted = co_await gate;
    extras_.cni_gate.AddTime(sim.Now() - t0);
    if (!granted) {
      SendIpamRelease(launch.id);
      ++extras_.cp_rejected;
      ReleaseSlot();
      co_return;
    }
  }
  extras_.gate_wait.AddTime(sim.Now() - gates_begin);

  // From the CNI grant on, this launch's only remaining send is its IP
  // release, which cannot happen before the dwell has elapsed — publish
  // that floor so the driver can widen windows past local pipeline events.
  std::multiset<SimTime>::iterator floor_it{};
  if (track_bounds_) {
    floor_it = release_floors_.insert(sim.Now() + params_.dwell);
  }

  const ServerlessApp* app = options_.app.has_value() ? &*options_.app : nullptr;
  ContainerInstance* inst = nullptr;
  co_await runtime.StartContainer(app, &inst);
  if (inst == nullptr || inst->aborted) {
    ++extras_.aborted;
    if (track_bounds_) {
      release_floors_.erase(floor_it);
    }
    SendIpamRelease(launch.id);
    runtime.ReapTerminated();
    ReleaseSlot();
    co_return;
  }
  // The raw pointer is not safe across the dwell: a post-ready async-network
  // failure can abort the container, and once its supervision processes
  // finish, any sibling's ReapTerminated may free the record. Re-find it by
  // cid afterwards.
  const int cid = inst->cid;
  co_await sim.Delay(params_.dwell);
  ContainerInstance* live = nullptr;
  for (const auto& candidate : runtime.instances()) {
    if (candidate->cid == cid) {
      live = candidate.get();
      break;
    }
  }
  if (live == nullptr || live->aborted) {
    // Aborted (and possibly already reaped) during the dwell.
    ++extras_.aborted;
    if (track_bounds_) {
      release_floors_.erase(floor_it);
    }
    SendIpamRelease(launch.id);
    runtime.ReapTerminated();
    ReleaseSlot();
    co_return;
  }
  co_await runtime.StopContainer(*live);
  ++extras_.completed;
  if (track_bounds_) {
    release_floors_.erase(floor_it);
  }
  SendIpamRelease(launch.id);
  runtime.ReapTerminated();
  ReleaseSlot();
}

void ClusterHostCell::CellEnd() {
  // Final reap and leak snapshot before the base collects the result and
  // tears the host down.
  extras_.end_sim_time = sim_->Now();
  runtime_->ReapTerminated();
  extras_.final_live_instances = runtime_->instances().size();
  Host& host = *host_;
  extras_.end_pinned_pages = host.pmem().total_pinned_pages();
  extras_.end_used_pages = host.pmem().used_pages();
  extras_.end_shared_image_pages = host.shared_image_frames().size();
  extras_.end_vfio_open = static_cast<uint64_t>(host.devset().TotalOpenCount());
  extras_.end_fastiovd_pending = host.fastiovd().total_pending_pages();
  extras_.end_iommu_domains = host.iommu().num_domains();
  extras_.end_nic_vfs_in_use = host.nic().vfs_in_use();
  HostCell::CellEnd();
}

}  // namespace fastiov
