// The shared cluster control plane, modeled as its own simulation cell.
//
// Every host in the cluster launches containers through three shared
// services: the IPAM pool (a finite block of cluster IPs, etcd-backed), the
// CNI assignment service, and the image registry (a shared egress pipe whose
// service time scales with image size). Each service is a single-server FIFO
// queue living inside one ControlPlaneCell; host cells reach it exclusively
// through CellPort messages, so the control plane obeys the same conservative
// synchronization contract as everything else: requests ride one RTT to the
// cell, queue, get served, and the grant/reject rides one RTT back. The
// cluster's lookahead is exactly that RTT — the minimum control-plane latency.
//
// Determinism: the cell's inbox is delivered in (deliver_at, from_cell, seq)
// order — a total order independent of driver thread count — and each FIFO
// serves in arrival order, so queue waits, grants, and rejections are
// byte-identical across {1, N} threads and both event-queue backends.
#ifndef SRC_CLUSTER_CONTROL_PLANE_H_
#define SRC_CLUSTER_CONTROL_PLANE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "src/fault/fault.h"
#include "src/simcore/parallel_exec.h"
#include "src/simcore/simulation.h"
#include "src/stats/fault_stats.h"
#include "src/stats/summary.h"

namespace fastiov {

// Cross-cell message kinds on the host <-> control-plane wire. Requests carry
// payload = launch_id | (image_mb << 32); responses carry payload = launch_id
// so the host can wake the right gated launch.
enum class CpMessage : uint64_t {
  kIpamRequest = 1,
  kCniRequest = 2,
  kRegistryRequest = 3,
  kIpamRelease = 4,  // fire-and-forget; returns the launch's IP to the pool
  kIpamGrant = 5,
  kCniGrant = 6,
  kRegistryGrant = 7,
  kIpamReject = 8,
  kCniReject = 9,
  kRegistryReject = 10,
};

inline uint64_t CpRequestPayload(uint32_t launch_id, uint32_t image_mb) {
  return static_cast<uint64_t>(launch_id) | (static_cast<uint64_t>(image_mb) << 32);
}
inline uint32_t CpPayloadLaunchId(uint64_t payload) {
  return static_cast<uint32_t>(payload & 0xffffffffull);
}
inline uint32_t CpPayloadImageMb(uint64_t payload) {
  return static_cast<uint32_t>(payload >> 32);
}

struct ControlPlaneConfig {
  SimTime ipam_service = Microseconds(300);   // etcd compare-and-swap round
  SimTime cni_service = Microseconds(200);    // allocation bookkeeping
  // Shared registry egress; a cold fetch of image_mb MiB occupies the pipe
  // for max(min_service, bits / bandwidth).
  double registry_bandwidth_bps = 2.0e9;
  SimTime registry_min_service = Microseconds(100);
  // IP pool size. 0 = sized by the runner to the trace's launch count, so
  // pool exhaustion only happens when a test asks for it.
  uint64_t ipam_pool = 0;
  // Transient-fault retry policy for the three control-plane sites.
  int retry_limit = 3;
  SimTime retry_backoff = Milliseconds(1);
};

// Per-service outcome, decoupled from the live cell so results outlive it.
struct CpResourceReport {
  std::string name;
  uint64_t requests = 0;
  uint64_t granted = 0;
  uint64_t rejected = 0;
  Summary queue_wait;       // seconds from enqueue to service start
  SimTime busy = SimTime::Zero();  // simulated time the server spent serving
};

struct ControlPlaneReport {
  CpResourceReport ipam;
  CpResourceReport cni;
  CpResourceReport registry;
  uint64_t ipam_pool = 0;
  uint64_t ipam_free_end = 0;   // free IPs when the run drained
  uint64_t ipam_released = 0;   // releases received back from hosts
  uint64_t events_processed = 0;
  std::optional<FaultStatsReport> fault_stats;
};

class ControlPlaneCell : public SimCell {
 public:
  // `rtt` is the one-way host <-> control-plane latency; it must equal the
  // driver's lookahead (responses are sent with exactly this latency).
  ControlPlaneCell(const ControlPlaneConfig& config, SimTime rtt, uint64_t seed,
                   std::optional<FaultPlan> fault_plan);
  ~ControlPlaneCell() override;
  ControlPlaneCell(const ControlPlaneCell&) = delete;
  ControlPlaneCell& operator=(const ControlPlaneCell&) = delete;

  Simulation& cell_sim() override { return *sim_; }
  void CellBegin(CellPort* port) override;
  void OnCellMessage(const CellMessage& msg) override;
  // Earliest-send promise for the driver's window planner: every reply to a
  // request delivered at t is sent at t + (queue wait) + service >= t +
  // min_service_, and a reply from an in-flight service rides an event that
  // is already queued (>= next_event). Fault injection can reject with zero
  // service time, so an injector disables the widening.
  SimTime NextSendBound(SimTime next_event, SimTime earliest_inbox) override;
  void CellEnd() override;
  void CellAbandon() noexcept override;

  bool finished() const { return collected_; }
  ControlPlaneReport TakeReport();

 private:
  struct Pending {
    uint32_t from_cell = 0;
    uint32_t launch_id = 0;
    uint32_t image_mb = 0;
    SimTime enqueued_at = SimTime::Zero();
  };

  // One single-server FIFO service.
  struct Resource {
    const char* name = "";
    FaultSite site = FaultSite::kIpamAlloc;
    CpMessage grant = CpMessage::kIpamGrant;
    CpMessage reject = CpMessage::kIpamReject;
    std::deque<Pending> queue;
    bool busy = false;
    uint64_t requests = 0;
    uint64_t granted = 0;
    uint64_t rejected = 0;
    Summary queue_wait;
    SimTime busy_time = SimTime::Zero();
  };

  void Enqueue(Resource& resource, const CellMessage& msg);
  SimTime ServiceTime(const Resource& resource, const Pending& request) const;
  // Drains `resource.queue` one request at a time; spawned on demand when a
  // request lands on an idle server, exits when the queue is empty.
  Task ServeLoop(Resource* resource);
  void Teardown();

  ControlPlaneConfig config_;
  SimTime rtt_;
  SimTime min_service_ = SimTime::Zero();  // min over the three services
  uint64_t seed_;
  std::optional<FaultPlan> fault_plan_;

  std::optional<Simulation> sim_;
  std::optional<FaultInjector> injector_;
  CellPort* port_ = nullptr;

  Resource ipam_;
  Resource cni_;
  Resource registry_;
  uint64_t free_ips_ = 0;
  uint64_t ipam_released_ = 0;

  bool collected_ = false;
  ControlPlaneReport report_;
};

}  // namespace fastiov

#endif  // SRC_CLUSTER_CONTROL_PLANE_H_
