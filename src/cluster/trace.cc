#include "src/cluster/trace.h"

#include "src/simcore/rng.h"

namespace fastiov {

std::vector<ClusterLaunch> GenerateLaunchTrace(const ClusterTraceSpec& spec, uint64_t seed) {
  // A private stream, decorrelated from the per-host simulation seeds (which
  // are seed+host_index): the trace must not change when the host count does.
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x436c7573ull);
  std::vector<ClusterLaunch> trace;
  trace.reserve(spec.launches);
  const double mean_gap_s =
      spec.arrival_rate_per_s > 0.0 ? 1.0 / spec.arrival_rate_per_s : 0.0;
  SimTime t = SimTime::Zero();
  for (uint64_t i = 0; i < spec.launches; ++i) {
    if (i > 0 && mean_gap_s > 0.0) {
      t += Seconds(rng.Exponential(mean_gap_s));
    }
    ClusterLaunch launch;
    launch.id = static_cast<uint32_t>(i);
    launch.arrival = t;
    launch.zone = spec.zones > 0
                      ? static_cast<uint32_t>(rng.UniformInt(0, spec.zones - 1))
                      : 0;
    // Images are zone-affine: workloads in one zone boot the same image, so a
    // locality-aware placement turns registry fetches into per-host cache
    // hits. This is what gives the locality policy something real to win.
    launch.image_id = launch.zone;
    launch.image_mb =
        spec.image_mb.empty()
            ? 128u
            : spec.image_mb[static_cast<size_t>(rng.UniformInt(
                  0, static_cast<int64_t>(spec.image_mb.size()) - 1))];
    trace.push_back(launch);
  }
  return trace;
}

}  // namespace fastiov
