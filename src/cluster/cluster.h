// Cluster-scale fleet simulation: N hosts + a shared control plane.
//
// RunClusterExperiment assembles the whole topology: a synthetic launch
// trace (trace.h) is placed onto H hosts by a pluggable scheduler policy
// (scheduler.h); cells 0..H-1 are ClusterHostCells and cell H is the
// ControlPlaneCell; the conservative parallel driver runs them with
// lookahead equal to the control-plane RTT — the minimum cross-cell latency,
// so every CellPort::Send is legal and windows are as wide as the physics
// allows. In bypass mode (no control plane) the cells are uncoupled
// (lookahead = Max) and a one-host cluster is byte-identical to
// HostCell::RunStandalone.
//
// Determinism contract (tests/cluster_test.cc): for a fixed ClusterOptions,
// ClusterDigest is byte-identical across driver thread counts {1, N}, both
// event-queue backends, and is a pure function of (options) — replaying the
// same --cluster-seed reproduces the run exactly.
#ifndef SRC_CLUSTER_CLUSTER_H_
#define SRC_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "src/cluster/cluster_host.h"
#include "src/cluster/control_plane.h"
#include "src/cluster/scheduler.h"
#include "src/cluster/trace.h"
#include "src/container/stack_config.h"
#include "src/experiments/startup_experiment.h"

namespace fastiov {

struct ClusterOptions {
  int hosts = 4;
  // Worker threads for the parallel driver; <= 0 means hardware concurrency.
  int threads = 1;
  ClusterSchedPolicy policy = ClusterSchedPolicy::kLeastLoaded;
  ClusterTraceSpec trace;
  uint64_t seed = 42;

  StackConfig stack = StackConfig::FastIov();
  HostSpec host;
  CostModel cost;
  std::optional<ServerlessApp> app;

  // One-way host <-> control-plane latency; doubles as the driver lookahead.
  SimTime rtt = Microseconds(200);
  // Container lifetime after ready; the stop + IPAM release follow it.
  SimTime dwell = Seconds(2.0);
  // Scheduler slot budget per host; 0 = ceil(launches / hosts).
  uint64_t slots_per_host = 0;
  // Host admission cap on live containers; 0 = the host's VF pool size.
  uint64_t max_live_per_host = 0;

  ControlPlaneConfig control_plane;
  bool bypass_control_plane = false;

  // Collect the driver's per-phase wall-time breakdown (deliver / execute /
  // plan) in the exec stats — the --profile-driver CLI flag.
  bool profile_driver = false;

  // Event-queue backend override (determinism-matrix knob); unset = default.
  std::optional<SchedulerPolicy> scheduler;
  std::optional<FaultPlan> host_fault_plan;           // host-local sites
  std::optional<FaultPlan> control_plane_fault_plan;  // ipam/cni/registry sites
  size_t timeline_span_sample = 32;
  bool collect_metrics = false;
};

struct ClusterHostOutcome {
  ExperimentResult result;
  ClusterHostExtras extras;
};

struct ClusterResult {
  int hosts = 0;
  ClusterSchedPolicy policy = ClusterSchedPolicy::kLeastLoaded;
  uint64_t launches = 0;
  uint64_t seed = 0;
  SimTime rtt = SimTime::Zero();
  SimTime dwell = SimTime::Zero();
  bool bypass_control_plane = false;

  // Placement quality of the chosen policy on this trace.
  uint64_t slots_per_host = 0;
  double imbalance = 1.0;
  double locality_hit_rate = 0.0;
  std::vector<uint64_t> per_host_assigned;

  std::vector<ClusterHostOutcome> host_results;  // in host-index order
  std::optional<ControlPlaneReport> control_plane;  // absent in bypass mode

  // Cluster totals (sums over hosts).
  uint64_t completed = 0;
  uint64_t cp_rejected = 0;
  uint64_t aborted = 0;
  uint64_t registry_cache_hits = 0;
  uint64_t registry_cache_misses = 0;
  SimTime sim_makespan = SimTime::Zero();  // max host end time

  ParallelExecStats exec;  // wall-clock; excluded from the digest
};

// The per-host ExperimentOptions the runner derives for host `host_index`
// with `assigned` launches. Exposed so the single-host-identity test can
// build the exact standalone twin of a cluster host.
ExperimentOptions ClusterHostBaseOptions(const ClusterOptions& options, int host_index,
                                         uint64_t assigned);

// Generates the trace, places it, runs the cells, collects everything.
ClusterResult RunClusterExperiment(const ClusterOptions& options);

// Deterministic serialization: everything except wall-clock execution stats.
// Two runs are equivalent iff their digests are byte-identical.
void WriteClusterResultJson(const ClusterResult& result, std::ostream& os,
                            bool include_exec);
std::string ClusterDigest(const ClusterResult& result);

// Human-readable report for the CLI.
void PrintClusterReport(const ClusterResult& result, std::ostream& os);

// CLI contradiction checks for fastiov_sim's cluster mode. Returns an error
// message when the flag combination is invalid, nullopt when fine.
// `lookahead_us` is the user's explicit --lookahead-us value (unset if the
// flag was not given); `chrome_trace` is whether --trace was given.
std::optional<std::string> ValidateClusterCli(int cluster_hosts, int cells, int waves,
                                              bool chrome_trace,
                                              std::optional<int64_t> lookahead_us,
                                              int64_t rtt_us);

}  // namespace fastiov

#endif  // SRC_CLUSTER_CLUSTER_H_
