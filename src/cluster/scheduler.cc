#include "src/cluster/scheduler.h"

#include <algorithm>

namespace fastiov {
namespace {

// Least-loaded with deterministic tie-break: lowest index wins.
int LeastLoadedHost(const std::vector<uint64_t>& per_host) {
  int best = 0;
  for (int h = 1; h < static_cast<int>(per_host.size()); ++h) {
    if (per_host[static_cast<size_t>(h)] < per_host[static_cast<size_t>(best)]) {
      best = h;
    }
  }
  return best;
}

}  // namespace

const char* ClusterSchedPolicyName(ClusterSchedPolicy policy) {
  switch (policy) {
    case ClusterSchedPolicy::kBinPack:
      return "bin-pack";
    case ClusterSchedPolicy::kLeastLoaded:
      return "least-loaded";
    case ClusterSchedPolicy::kLocality:
      return "locality";
  }
  return "?";
}

std::optional<ClusterSchedPolicy> ClusterSchedPolicyFromName(const std::string& name) {
  if (name == "bin-pack") {
    return ClusterSchedPolicy::kBinPack;
  }
  if (name == "least-loaded") {
    return ClusterSchedPolicy::kLeastLoaded;
  }
  if (name == "locality") {
    return ClusterSchedPolicy::kLocality;
  }
  return std::nullopt;
}

double ClusterPlacement::Imbalance() const {
  if (per_host.empty() || host_of.empty()) {
    return 1.0;
  }
  const uint64_t max = *std::max_element(per_host.begin(), per_host.end());
  const double mean =
      static_cast<double>(host_of.size()) / static_cast<double>(per_host.size());
  return mean > 0.0 ? static_cast<double>(max) / mean : 1.0;
}

double ClusterPlacement::LocalityHitRate() const {
  return host_of.empty()
             ? 0.0
             : static_cast<double>(locality_hits) / static_cast<double>(host_of.size());
}

ClusterPlacement PlaceLaunches(const std::vector<ClusterLaunch>& trace, int hosts,
                               uint64_t slots_per_host, ClusterSchedPolicy policy) {
  ClusterPlacement placement;
  if (hosts <= 0) {
    return placement;
  }
  placement.per_host.assign(static_cast<size_t>(hosts), 0);
  placement.host_of.reserve(trace.size());
  if (slots_per_host == 0) {
    slots_per_host =
        (trace.size() + static_cast<size_t>(hosts) - 1) / static_cast<size_t>(hosts);
    slots_per_host = std::max<uint64_t>(slots_per_host, 1);
  }
  placement.slots_per_host = slots_per_host;

  int pack_cursor = 0;  // bin-pack's current fill target
  for (const ClusterLaunch& launch : trace) {
    const int preferred = static_cast<int>(launch.zone % static_cast<uint32_t>(hosts));
    int target = 0;
    switch (policy) {
      case ClusterSchedPolicy::kBinPack:
        while (pack_cursor < hosts - 1 &&
               placement.per_host[static_cast<size_t>(pack_cursor)] >= slots_per_host) {
          ++pack_cursor;
        }
        target = placement.per_host[static_cast<size_t>(pack_cursor)] < slots_per_host
                     ? pack_cursor
                     : LeastLoadedHost(placement.per_host);
        break;
      case ClusterSchedPolicy::kLeastLoaded:
        target = LeastLoadedHost(placement.per_host);
        break;
      case ClusterSchedPolicy::kLocality:
        target = placement.per_host[static_cast<size_t>(preferred)] < slots_per_host
                     ? preferred
                     : LeastLoadedHost(placement.per_host);
        break;
    }
    if (target == preferred) {
      ++placement.locality_hits;
    }
    ++placement.per_host[static_cast<size_t>(target)];
    placement.host_of.push_back(target);
  }
  return placement;
}

}  // namespace fastiov
