#include "src/cluster/control_plane.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace fastiov {

ControlPlaneCell::ControlPlaneCell(const ControlPlaneConfig& config, SimTime rtt,
                                   uint64_t seed, std::optional<FaultPlan> fault_plan)
    : config_(config), rtt_(rtt), seed_(seed), fault_plan_(std::move(fault_plan)) {
  ipam_.name = "ipam";
  ipam_.site = FaultSite::kIpamAlloc;
  ipam_.grant = CpMessage::kIpamGrant;
  ipam_.reject = CpMessage::kIpamReject;
  cni_.name = "cni";
  cni_.site = FaultSite::kCniAssign;
  cni_.grant = CpMessage::kCniGrant;
  cni_.reject = CpMessage::kCniReject;
  registry_.name = "registry";
  registry_.site = FaultSite::kRegistryFetch;
  registry_.grant = CpMessage::kRegistryGrant;
  registry_.reject = CpMessage::kRegistryReject;
  min_service_ = std::min(config_.ipam_service,
                          std::min(config_.cni_service, config_.registry_min_service));
}

SimTime ControlPlaneCell::NextSendBound(SimTime next_event, SimTime earliest_inbox) {
  if (injector_.has_value()) {
    // An injected fault can reject a request with no service delay, i.e.
    // send at the request's own delivery time.
    return SimCell::NextSendBound(next_event, earliest_inbox);
  }
  SimTime inbox_bound = SimTime::Max();
  if (earliest_inbox != SimTime::Max()) {
    inbox_bound = earliest_inbox + min_service_;
  }
  return std::min(next_event, inbox_bound);
}

ControlPlaneCell::~ControlPlaneCell() {
  Teardown();
}

void ControlPlaneCell::CellBegin(CellPort* port) {
  if (port == nullptr) {
    throw std::logic_error("ControlPlaneCell requires the parallel driver's port");
  }
  port_ = port;
  sim_.emplace(seed_);
  if (fault_plan_.has_value()) {
    injector_.emplace(*fault_plan_);
    sim_->set_fault_injector(&*injector_);
  }
  free_ips_ = config_.ipam_pool;
  ipam_released_ = 0;
}

void ControlPlaneCell::Enqueue(Resource& resource, const CellMessage& msg) {
  Pending request;
  request.from_cell = msg.from_cell;
  request.launch_id = CpPayloadLaunchId(msg.payload);
  request.image_mb = CpPayloadImageMb(msg.payload);
  request.enqueued_at = sim_->Now();
  resource.queue.push_back(request);
  ++resource.requests;
  if (!resource.busy) {
    // The serve loop exits when the queue drains; re-arm it for this burst.
    resource.busy = true;
    sim_->Spawn(ServeLoop(&resource), resource.name);
  }
}

void ControlPlaneCell::OnCellMessage(const CellMessage& msg) {
  switch (static_cast<CpMessage>(msg.kind)) {
    case CpMessage::kIpamRequest:
      Enqueue(ipam_, msg);
      break;
    case CpMessage::kCniRequest:
      Enqueue(cni_, msg);
      break;
    case CpMessage::kRegistryRequest:
      Enqueue(registry_, msg);
      break;
    case CpMessage::kIpamRelease:
      // Releases are fire-and-forget: the etcd write happens off the
      // launch's critical path, so it costs the pool no server time.
      ++free_ips_;
      ++ipam_released_;
      break;
    default:
      throw std::logic_error("ControlPlaneCell: unexpected message kind");
  }
}

SimTime ControlPlaneCell::ServiceTime(const Resource& resource,
                                      const Pending& request) const {
  if (&resource == &ipam_) {
    return config_.ipam_service;
  }
  if (&resource == &cni_) {
    return config_.cni_service;
  }
  // Registry: the fetch occupies the shared egress pipe for the image's
  // transfer time.
  const double bits = static_cast<double>(request.image_mb) * 1024.0 * 1024.0 * 8.0;
  const SimTime transfer =
      config_.registry_bandwidth_bps > 0.0
          ? Seconds(bits / config_.registry_bandwidth_bps)
          : SimTime::Zero();
  return std::max(transfer, config_.registry_min_service);
}

Task ControlPlaneCell::ServeLoop(Resource* resource) {
  Simulation& sim = *sim_;
  while (!resource->queue.empty()) {
    const Pending request = resource->queue.front();
    resource->queue.pop_front();
    resource->queue_wait.AddTime(sim.Now() - request.enqueued_at);
    bool ok = true;
    if (injector_.has_value()) {
      bool faulted = false;
      for (int attempt = 0;; ++attempt) {
        bool transient_fault = false;
        try {
          co_await injector_->MaybeInject(sim, resource->site);
          break;
        } catch (const FaultError& err) {
          faulted = true;
          transient_fault = err.transient() && attempt < config_.retry_limit;
          if (!transient_fault) {
            injector_->NoteAborted(resource->site, sim.Now());
            ok = false;
          }
        }
        if (!ok) {
          break;
        }
        // Retry with exponential backoff, outside the catch block so the
        // co_await does not run during exception unwinding.
        injector_->NoteRetry(resource->site, sim.Now());
        co_await sim.Delay(config_.retry_backoff * static_cast<double>(1ll << attempt));
      }
      if (ok && faulted) {
        injector_->NoteRecovered(resource->site, sim.Now());
      }
    }
    if (ok) {
      const SimTime service = ServiceTime(*resource, request);
      co_await sim.Delay(service);
      resource->busy_time += service;
    }
    if (ok && resource == &ipam_) {
      // Pool accounting happens at grant time, after the etcd round: a
      // drained pool rejects even though the request was served.
      if (free_ips_ == 0) {
        ok = false;
      } else {
        --free_ips_;
      }
    }
    if (ok) {
      ++resource->granted;
    } else {
      ++resource->rejected;
    }
    port_->Send(request.from_cell, rtt_,
                static_cast<uint64_t>(ok ? resource->grant : resource->reject),
                request.launch_id);
  }
  resource->busy = false;
}

void ControlPlaneCell::CellEnd() {
  ControlPlaneReport report;
  auto snapshot = [](const Resource& r) {
    CpResourceReport out;
    out.name = r.name;
    out.requests = r.requests;
    out.granted = r.granted;
    out.rejected = r.rejected;
    out.queue_wait = r.queue_wait;
    out.busy = r.busy_time;
    return out;
  };
  report.ipam = snapshot(ipam_);
  report.cni = snapshot(cni_);
  report.registry = snapshot(registry_);
  report.ipam_pool = config_.ipam_pool;
  report.ipam_free_end = free_ips_;
  report.ipam_released = ipam_released_;
  report.events_processed = sim_->num_events_processed();
  if (injector_.has_value()) {
    report.fault_stats = FaultStatsReport::FromInjector(*injector_);
  }
  report_ = std::move(report);
  collected_ = true;
  Teardown();
}

void ControlPlaneCell::CellAbandon() noexcept {
  Teardown();
}

void ControlPlaneCell::Teardown() {
  ipam_.queue.clear();
  cni_.queue.clear();
  registry_.queue.clear();
  injector_.reset();
  sim_.reset();
}

ControlPlaneReport ControlPlaneCell::TakeReport() {
  if (!collected_) {
    throw std::logic_error("ControlPlaneCell::TakeReport: cell has not finished");
  }
  collected_ = false;
  return std::move(report_);
}

}  // namespace fastiov
