#include "src/nic/sriov_nic.h"

#include <cassert>

#include "src/fault/fault.h"

namespace fastiov {

VirtualFunction::VirtualFunction(PciIdAllocator& ids, PciAddress addr, int vf_index)
    : PciDevice(ids, addr, kIntelVendorId, kE810VfDeviceId, ResetScope::kBus,
                "e810-vf" + std::to_string(vf_index)),
      vf_index_(vf_index) {}

SriovNic::SriovNic(Simulation& sim, CpuPool& cpu, const CostModel& cost, const HostSpec& host,
                   PciBus& bus, PciIdAllocator& pci_ids)
    : sim_(&sim),
      cpu_(&cpu),
      cost_(cost),
      bus_(&bus),
      pci_ids_(&pci_ids),
      pf_lock_(sim),
      mailbox_lock_(sim),
      data_plane_(sim, host.nic_bandwidth_bps, "nic.data-plane") {}

void SriovNic::CreateVfs(int count) {
  for (int i = 0; i < count; ++i) {
    // VFs appear as functions behind the PF's bus: device = 2 + i/8,
    // function = i%8, like real SR-IOV VF BDF assignment.
    PciAddress addr{0, 0x3b, static_cast<uint8_t>(2 + i / 8), static_cast<uint8_t>(i % 8)};
    auto vf = std::make_unique<VirtualFunction>(*pci_ids_, addr, i);
    bus_->AddDevice(vf.get());
    vfs_.push_back(std::move(vf));
  }
}

VirtualFunction* SriovNic::AllocateFreeVf() {
  for (auto& vf : vfs_) {
    if (vf->assigned_pid() < 0 && !vf->configured()) {
      vf->set_configured(true);
      ++vfs_in_use_;
      SampleVfTrack();
      return vf.get();
    }
  }
  return nullptr;
}

void SriovNic::ReleaseVf(VirtualFunction* vf) {
  vf->set_configured(false);
  vf->set_assigned_pid(-1);
  vf->AssignAddresses({}, {});
  assert(vfs_in_use_ > 0);
  --vfs_in_use_;
  SampleVfTrack();
}

Task SriovNic::ConfigureVf(VirtualFunction* vf, WaitCtx ctx) {
  if (FaultInjector* injector = sim_->fault_injector()) {
    co_await injector->MaybeInject(*sim_, FaultSite::kVfBind);
  }
  co_await pf_lock_.Lock(ctx);
  co_await cpu_->Compute(sim_->rng().Jitter(cost_.pf_driver_lock_crit, cost_.jitter_sigma),
                         ctx);
  pf_lock_.Unlock();
  co_await cpu_->Compute(sim_->rng().Jitter(cost_.cni_vf_config_cpu, cost_.jitter_sigma),
                         ctx);
  vf->set_configured(true);
}

Task SriovNic::ResetVf(VirtualFunction* vf, WaitCtx ctx) {
  if (FaultInjector* injector = sim_->fault_injector()) {
    co_await injector->MaybeInject(*sim_, FaultSite::kVfFlr);
  }
  // FLR is requested through the PF driver and waits for firmware
  // completion; per-VF state (rings, filters) is wiped by hardware.
  co_await pf_lock_.Lock(ctx);
  co_await cpu_->Compute(cost_.vf_flr_cpu, ctx);
  pf_lock_.Unlock();
  (void)vf;
}

void SriovNic::Instrument(LockStatsRegistry* locks, CounterTrack* vfs_in_use) {
  pf_lock_.Instrument(locks == nullptr ? nullptr : locks->Create("nic.pf-driver"));
  mailbox_lock_.Instrument(locks == nullptr ? nullptr : locks->Create("nic.mailbox"));
  vf_track_ = vfs_in_use;
}

Task SriovNic::DeliverInterrupt(MicroVm& vm) {
  co_await cpu_->Compute(cost_.interrupt_relay);
  vm.NotifyInterrupt();
}

uint64_t SriovNic::DmaWrite(IommuDomain& domain, MicroVm& vm, uint64_t iova, uint64_t bytes) {
  const uint64_t page_size = vm.pmem().page_size();
  uint64_t failures = 0;
  const uint64_t first = iova / page_size;
  const uint64_t last = (iova + bytes - 1) / page_size;
  for (uint64_t page = first; page <= last; ++page) {
    auto translation = domain.TranslateCached(page * page_size);
    if (!translation.has_value()) {
      domain.CountTranslationFault();
      ++failures;
      continue;
    }
    // Device store: bypasses the EPT entirely.
    vm.pmem().frame(translation->page).content = PageContent::kData;
  }
  return failures;
}

}  // namespace fastiov
