// SR-IOV NIC model: physical function, virtual functions, DMA engine.
//
// The PF driver pre-creates VFs once at host boot (§2.3); the CNI plugin
// configures per-VF parameters through the PF (serialized on the PF driver
// lock); the DMA engine moves packet bytes into guest memory through the
// IOMMU domain — writes that bypass the EPT, which is exactly the
// third-exception scenario of §4.3.2.
#ifndef SRC_NIC_SRIOV_NIC_H_
#define SRC_NIC_SRIOV_NIC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/config/cost_model.h"
#include "src/iommu/iommu.h"
#include "src/kvm/microvm.h"
#include "src/pci/pci.h"
#include "src/simcore/resources.h"
#include "src/simcore/simulation.h"
#include "src/simcore/sync.h"

namespace fastiov {

class VirtualFunction : public PciDevice {
 public:
  VirtualFunction(PciIdAllocator& ids, PciAddress addr, int vf_index);

  int vf_index() const { return vf_index_; }

  bool configured() const { return configured_; }
  void set_configured(bool v) { configured_ = v; }

  int assigned_pid() const { return assigned_pid_; }
  void set_assigned_pid(int pid) { assigned_pid_ = pid; }

  const std::string& mac() const { return mac_; }
  const std::string& ip() const { return ip_; }
  void AssignAddresses(std::string mac, std::string ip) {
    mac_ = std::move(mac);
    ip_ = std::move(ip);
  }

 private:
  int vf_index_;
  bool configured_ = false;
  int assigned_pid_ = -1;
  std::string mac_;
  std::string ip_;
};

class SriovNic {
 public:
  SriovNic(Simulation& sim, CpuPool& cpu, const CostModel& cost, const HostSpec& host,
           PciBus& bus, PciIdAllocator& pci_ids);

  // PF driver: one-time VF pre-creation at host boot (hardware
  // configuration; deliberately uncharged, see §2.3).
  void CreateVfs(int count);

  VirtualFunction* AllocateFreeVf();
  void ReleaseVf(VirtualFunction* vf);

  // CNI path: set VF parameters (MAC filter, VLAN, rate) via the PF driver.
  Task ConfigureVf(VirtualFunction* vf, WaitCtx ctx = {});

  // Function-level reset of a VF (recovery path): issued through the PF
  // before retrying a failed VF operation or recycling a half-attached VF.
  // Leaves allocation state (configured/assigned_pid) untouched — the
  // caller decides whether the VF goes back to the pool.
  Task ResetVf(VirtualFunction* vf, WaitCtx ctx = {});

  size_t num_vfs() const { return vfs_.size(); }
  VirtualFunction* vf(int index) { return vfs_.at(index).get(); }
  BandwidthResource& data_plane() { return data_plane_; }
  PciBus& bus() { return *bus_; }
  // Firmware mailbox: PF<->VF control messages are serialized here.
  SimMutex& mailbox_lock() { return mailbox_lock_; }

  // DMA write into guest memory: translates IOVA->HPA through the domain's
  // IOTLB/page table and stores directly into the frames (no EPT
  // involvement). Returns the number of pages whose translation failed
  // (should be 0 when properly mapped).
  uint64_t DmaWrite(IommuDomain& domain, MicroVm& vm, uint64_t iova, uint64_t bytes);

  // Completion interrupt, relayed through the hypervisor (§2.2).
  Task DeliverInterrupt(MicroVm& vm);

  // Observability: named probes on the PF-driver and mailbox locks, plus a
  // counter track of VFs currently configured/assigned.
  void Instrument(LockStatsRegistry* locks, CounterTrack* vfs_in_use);
  uint64_t vfs_in_use() const { return vfs_in_use_; }

 private:
  void SampleVfTrack() {
    if (vf_track_ != nullptr) {
      vf_track_->Record(sim_->Now(), static_cast<double>(vfs_in_use_));
    }
  }

  Simulation* sim_;
  CpuPool* cpu_;
  const CostModel cost_;
  PciBus* bus_;
  PciIdAllocator* pci_ids_;
  SimMutex pf_lock_;
  SimMutex mailbox_lock_;
  BandwidthResource data_plane_;
  std::vector<std::unique_ptr<VirtualFunction>> vfs_;
  uint64_t vfs_in_use_ = 0;
  CounterTrack* vf_track_ = nullptr;
};

}  // namespace fastiov

#endif  // SRC_NIC_SRIOV_NIC_H_
