// vDPA (virtio data path acceleration) — the §7 extension.
//
// vDPA keeps the SR-IOV VF's hardware data plane but presents the device to
// the guest as a standard virtio-net device: the host registers the VF with
// the vDPA framework, and the guest runs the stock virtio driver instead of
// the vendor's. Two consequences the paper calls out:
//   * the vendor guest driver — and its serialized PF-mailbox link
//     negotiation — is gone, replaced by virtio feature negotiation;
//   * buffer-memory EPT faulting no longer depends on a (possibly
//     closed-source) vendor driver scrubbing its rings: the FastIOV-patched
//     virtio frontend proactively faults every ring before DRIVER_OK, so
//     lazy zeroing is safe by construction.
// The paper leaves vDPA's effect on concurrent startup as future work;
// bench/sec7_vdpa investigates it.
#ifndef SRC_NIC_VDPA_H_
#define SRC_NIC_VDPA_H_

#include <cstdint>

#include "src/config/cost_model.h"
#include "src/iommu/iommu.h"
#include "src/kvm/microvm.h"
#include "src/nic/sriov_nic.h"
#include "src/simcore/simulation.h"
#include "src/simcore/sync.h"

namespace fastiov {

// Host-side vDPA framework: registers VFs as vdpa devices.
class VdpaBus {
 public:
  VdpaBus(Simulation& sim, CpuPool& cpu, const CostModel& cost)
      : sim_(&sim), cpu_(&cpu), cost_(cost), lock_(sim) {}

  // `vdpa dev add`: creates the vdpa device for a VF (serialized on the
  // vdpa bus lock).
  Task AddDevice(VirtualFunction* vf, WaitCtx ctx = {});

  // Observability: named probe on the vdpa bus lock.
  void Instrument(LockStatsRegistry* locks) {
    lock_.Instrument(locks == nullptr ? nullptr : locks->Create("vdpa.bus"));
  }

  uint64_t devices_added() const { return devices_added_; }
  uint64_t lock_contention() const { return lock_.contention_count(); }

 private:
  Simulation* sim_;
  CpuPool* cpu_;
  const CostModel cost_;
  SimMutex lock_;
  uint64_t devices_added_ = 0;
};

// Guest-side standard virtio-net driver over a vDPA device.
class VirtioNetDriver {
 public:
  VirtioNetDriver(Simulation& sim, CpuPool& cpu, const CostModel& cost, MicroVm& vm,
                  VirtualFunction& vf, SriovNic& nic, IommuDomain& domain, uint64_t ring_gpa,
                  uint64_t ring_bytes);

  // Probe + feature negotiation + ring setup + DRIVER_OK. The FastIOV
  // virtio-frontend patch proactively EPT-faults the rings before the
  // device may DMA — unconditionally, no vendor cooperation needed.
  Task Initialize();

  // Agent MAC/IP assignment; virtio link state comes from config space, so
  // there is no firmware-mailbox wait.
  Task AssignAddresses();

  bool interface_up() const { return up_event_.IsSet(); }
  SimEvent& up_event() { return up_event_; }

  // Hardware data plane (same VF DMA engine as passthrough).
  Task Receive(uint64_t bytes);

  uint64_t corrupted_reads() const { return corrupted_reads_; }
  uint64_t dma_translation_failures() const { return dma_translation_failures_; }

 private:
  Simulation* sim_;
  CpuPool* cpu_;
  const CostModel cost_;
  MicroVm* vm_;
  VirtualFunction* vf_;
  SriovNic* nic_;
  IommuDomain* domain_;
  uint64_t ring_gpa_;
  uint64_t ring_bytes_;
  SimEvent up_event_;
  bool initialized_ = false;

  uint64_t corrupted_reads_ = 0;
  uint64_t dma_translation_failures_ = 0;
};

}  // namespace fastiov

#endif  // SRC_NIC_VDPA_H_
