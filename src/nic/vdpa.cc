#include "src/nic/vdpa.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "src/fault/fault.h"

namespace fastiov {

Task VdpaBus::AddDevice(VirtualFunction* vf, WaitCtx ctx) {
  if (FaultInjector* injector = sim_->fault_injector()) {
    co_await injector->MaybeInject(*sim_, FaultSite::kVdpaAttach);
  }
  co_await lock_.Lock(ctx);
  co_await cpu_->Compute(sim_->rng().Jitter(cost_.vdpa_bus_crit, cost_.jitter_sigma), ctx);
  lock_.Unlock();
  co_await cpu_->Compute(sim_->rng().Jitter(cost_.vdpa_dev_add_cpu, cost_.jitter_sigma), ctx);
  vf->BindDriver(BoundDriver::kVfio);  // vhost-vdpa keeps the VF off host netdevs
  ++devices_added_;
}

VirtioNetDriver::VirtioNetDriver(Simulation& sim, CpuPool& cpu, const CostModel& cost,
                                 MicroVm& vm, VirtualFunction& vf, SriovNic& nic,
                                 IommuDomain& domain, uint64_t ring_gpa, uint64_t ring_bytes)
    : sim_(&sim),
      cpu_(&cpu),
      cost_(cost),
      vm_(&vm),
      vf_(&vf),
      nic_(&nic),
      domain_(&domain),
      ring_gpa_(ring_gpa),
      ring_bytes_(ring_bytes),
      up_event_(sim) {}

Task VirtioNetDriver::Initialize() {
  auto& rng = sim_->rng();
  // virtio PCI probe.
  co_await cpu_->Compute(rng.Jitter(cost_.virtio_net_probe_cpu, cost_.jitter_sigma));
  vf_->ConfigWrite16(kPciCommand, vf_->ConfigRead16(kPciCommand) | kPciCommandBusMaster);
  // Feature negotiation with the vDPA backend.
  co_await cpu_->Compute(rng.Jitter(cost_.virtio_feature_negotiation, cost_.jitter_sigma));
  // Ring setup. The FastIOV frontend patch proactively faults every ring
  // page before DRIVER_OK — this is what makes lazy zeroing safe even when
  // the data-plane vendor silicon (not a modifiable driver) does the DMA.
  co_await vm_->ProactiveFault(ring_gpa_, ring_bytes_);
  // Link state is read from virtio config space — no firmware mailbox.
  co_await sim_->Delay(rng.Jitter(cost_.virtio_link_settle, cost_.jitter_sigma));
  initialized_ = true;
}

Task VirtioNetDriver::AssignAddresses() {
  assert(initialized_);
  co_await cpu_->Compute(sim_->rng().Jitter(cost_.agent_ip_assign_cpu, cost_.jitter_sigma));
  char mac[32];
  std::snprintf(mac, sizeof(mac), "02:0d:0a:00:%02x:%02x", (vf_->vf_index() >> 8) & 0xff,
                vf_->vf_index() & 0xff);
  char ip[32];
  std::snprintf(ip, sizeof(ip), "10.1.%d.%d", vf_->vf_index() / 250 + 1,
                vf_->vf_index() % 250 + 2);
  vf_->AssignAddresses(mac, ip);
  up_event_.Set();
}

Task VirtioNetDriver::Receive(uint64_t bytes) {
  assert(up_event_.IsSet());
  co_await nic_->data_plane().Transfer(static_cast<double>(bytes));
  // The payload streams through the RX ring in ring-sized chunks, with a
  // (coalesced) completion interrupt per chunk — which is what makes the
  // IOTLB's ring locality visible.
  uint64_t remaining = bytes;
  uint64_t window = 0;
  while (remaining > 0) {
    window = std::min(remaining, ring_bytes_);
    dma_translation_failures_ += nic_->DmaWrite(*domain_, *vm_, ring_gpa_, window);
    co_await nic_->DeliverInterrupt(*vm_);
    remaining -= window;
  }
  co_await vm_->TouchRange(ring_gpa_, window, /*write=*/false);
  const uint64_t page_size = vm_->pmem().page_size();
  GuestMemoryRegion* region = vm_->RegionForGpa(ring_gpa_);
  assert(region != nullptr);
  const uint64_t first = (ring_gpa_ - region->gpa_base) / page_size;
  const uint64_t pages = (window + page_size - 1) / page_size;
  for (uint64_t i = 0; i < pages; ++i) {
    const PageId frame = region->frames.Get(first + i);
    if (frame == kInvalidPage ||
        vm_->pmem().frame(frame).content != PageContent::kData) {
      ++corrupted_reads_;
    }
  }
}

}  // namespace fastiov
