#include "src/nic/vf_driver.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "src/fault/fault.h"

namespace fastiov {

VfDriver::VfDriver(Simulation& sim, CpuPool& cpu, const CostModel& cost, MicroVm& vm,
                   VirtualFunction& vf, SriovNic& nic, IommuDomain& domain, uint64_t ring_gpa,
                   uint64_t ring_bytes)
    : sim_(&sim),
      cpu_(&cpu),
      cost_(cost),
      vm_(&vm),
      vf_(&vf),
      nic_(&nic),
      domain_(&domain),
      ring_gpa_(ring_gpa),
      ring_bytes_(ring_bytes),
      link_settled_(sim),
      up_event_(sim) {}

Task VfDriver::Initialize(bool zero_rx_buffers) {
  auto& rng = sim_->rng();
  // PCI device enumeration inside the guest.
  co_await cpu_->Compute(rng.Jitter(cost_.vf_pci_enumeration_cpu, cost_.jitter_sigma));
  // Enable bus mastering so the VF may DMA.
  vf_->ConfigWrite16(kPciCommand, vf_->ConfigRead16(kPciCommand) | kPciCommandBusMaster);
  // Register the device as a Linux network interface.
  co_await cpu_->Compute(rng.Jitter(cost_.vf_netdev_register_cpu, cost_.jitter_sigma));
  // Allocate TX/RX rings. Standard drivers scrub freshly allocated DMA
  // buffers, which EPT-faults (and lazily zeroes) the pages before the NIC
  // can ever write into them.
  if (zero_rx_buffers) {
    co_await vm_->TouchRange(ring_gpa_, ring_bytes_, /*write=*/true);
  }
  // Configure device parameters.
  co_await cpu_->Compute(rng.Jitter(cost_.vf_configure_link_cpu, cost_.jitter_sigma));
  initialized_ = true;
}

Task VfDriver::BringUpLink(WaitCtx ctx) {
  assert(initialized_);
  if (FaultInjector* injector = sim_->fault_injector()) {
    co_await injector->MaybeInject(*sim_, FaultSite::kVfLinkUp);
  }
  // VF link requests funnel through the PF firmware mailbox one at a time.
  co_await nic_->mailbox_lock().Lock(ctx);
  co_await cpu_->Compute(sim_->rng().Jitter(cost_.pf_mailbox_crit, cost_.jitter_sigma), ctx);
  nic_->mailbox_lock().Unlock();
  co_await sim_->Delay(sim_->rng().Jitter(cost_.vf_link_settle, cost_.jitter_sigma));
  link_settled_.Set();
}

void VfDriver::MarkLinkFailed() {
  link_failed_ = true;
  // Wake both the agent's poll loop and anything blocked on interface
  // availability; link_settled()/interface_up() still read false.
  link_settled_.Set();
  up_event_.Set();
}

Task VfDriver::AssignAddresses() {
  assert(initialized_ && "agent configures the interface after the driver registers it");
  co_await cpu_->Compute(sim_->rng().Jitter(cost_.agent_ip_assign_cpu, cost_.jitter_sigma));
  char mac[32];
  std::snprintf(mac, sizeof(mac), "02:00:00:00:%02x:%02x", (vf_->vf_index() >> 8) & 0xff,
                vf_->vf_index() & 0xff);
  char ip[32];
  std::snprintf(ip, sizeof(ip), "10.0.%d.%d", vf_->vf_index() / 250 + 1,
                vf_->vf_index() % 250 + 2);
  vf_->AssignAddresses(mac, ip);
  // Poll until the link is up (the agent's periodic status check).
  while (!link_settled_.IsSet()) {
    co_await sim_->Delay(cost_.agent_poll_interval);
  }
  if (link_failed_) {
    throw FaultError(FaultSite::kVfLinkUp, /*transient=*/false);
  }
  up_event_.Set();
}

Task VfDriver::Receive(uint64_t bytes) {
  assert(up_event_.IsSet() && "interface must be up before receiving");
  // Wire time on the shared 25 GbE data plane.
  co_await nic_->data_plane().Transfer(static_cast<double>(bytes));
  // The DMA engine writes into the RX ring (bypassing the EPT)...
  // The payload streams through the RX ring in ring-sized chunks, with a
  // (coalesced) completion interrupt per chunk — which is what makes the
  // IOTLB's ring locality visible.
  uint64_t remaining = bytes;
  uint64_t window = 0;
  while (remaining > 0) {
    window = std::min(remaining, ring_bytes_);
    dma_translation_failures_ += nic_->DmaWrite(*domain_, *vm_, ring_gpa_, window);
    co_await nic_->DeliverInterrupt(*vm_);
    remaining -= window;
  }
  // ...and the guest consumes it.
  co_await vm_->TouchRange(ring_gpa_, window, /*write=*/false);
  const uint64_t page_size = vm_->pmem().page_size();
  GuestMemoryRegion* region = vm_->RegionForGpa(ring_gpa_);
  assert(region != nullptr);
  const uint64_t first = (ring_gpa_ - region->gpa_base) / page_size;
  const uint64_t pages = (window + page_size - 1) / page_size;
  for (uint64_t i = 0; i < pages; ++i) {
    const PageId frame = region->frames.Get(first + i);
    if (frame == kInvalidPage ||
        vm_->pmem().frame(frame).content != PageContent::kData) {
      // The payload the device wrote was destroyed (e.g. zeroed by a late
      // EPT fault) — the corruption §4.3.2's third exception warns about.
      ++corrupted_reads_;
    }
  }
}

}  // namespace fastiov
