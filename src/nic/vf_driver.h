// Guest-side VF (iavf-style) network driver and the data-receive path.
//
// Initialization follows §3.2.4 in three pieces:
//   1. Initialize(): PCI enumeration, netdev registration, ring allocation
//      (standard drivers scrub fresh DMA buffers, which EPT-faults the
//      pages — the property that keeps NIC DMA safe under lazy zeroing),
//      device configuration. This is the `5-vf-driver` span of Fig. 5.
//   2. BringUpLink(): firmware link negotiation through the PF mailbox —
//      serialized across VFs, so at high concurrency this is the
//      "few hundred milliseconds up to seconds" availability wait.
//   3. AssignAddresses(): the secure-container agent sets MAC/IP and polls
//      until the link settles; only then is the interface available.
//
// FastIOV runs all three asynchronously with the remaining startup stages
// (§4.2.2); vanilla executes them serially on the startup critical path.
#ifndef SRC_NIC_VF_DRIVER_H_
#define SRC_NIC_VF_DRIVER_H_

#include <cstdint>

#include "src/config/cost_model.h"
#include "src/iommu/iommu.h"
#include "src/kvm/microvm.h"
#include "src/nic/sriov_nic.h"
#include "src/simcore/resources.h"
#include "src/simcore/simulation.h"
#include "src/simcore/sync.h"

namespace fastiov {

class VfDriver {
 public:
  // `ring_gpa` / `ring_bytes`: where in guest RAM the driver places its
  // TX/RX rings.
  VfDriver(Simulation& sim, CpuPool& cpu, const CostModel& cost, MicroVm& vm,
           VirtualFunction& vf, SriovNic& nic, IommuDomain& domain, uint64_t ring_gpa,
           uint64_t ring_bytes);

  // Driver probe: enumeration, netdev registration, ring allocation,
  // configuration. If `zero_rx_buffers` is false the driver skips scrubbing
  // its rings (failure injection for §4.3.2's third exception).
  Task Initialize(bool zero_rx_buffers = true);

  // Firmware link negotiation (PF mailbox serialized). Sets link_settled.
  Task BringUpLink(WaitCtx ctx = {});

  // Recovery path: marks link negotiation as permanently failed so the
  // agent's poll loop terminates. AssignAddresses then throws instead of
  // bringing the interface up.
  void MarkLinkFailed();

  // Agent step: MAC/IP assignment, then poll until the link settles; the
  // interface is available (up_event) afterwards. Throws FaultError if the
  // link failed permanently.
  Task AssignAddresses();

  bool initialized() const { return initialized_; }
  bool link_settled() const { return link_settled_.IsSet() && !link_failed_; }
  bool link_failed() const { return link_failed_; }
  bool interface_up() const { return up_event_.IsSet() && !link_failed_; }
  SimEvent& up_event() { return up_event_; }

  // Receives `bytes` from the network: charges the NIC data plane, DMA-
  // writes into the RX ring, and has the guest consume the data.
  Task Receive(uint64_t bytes);

  uint64_t dma_translation_failures() const { return dma_translation_failures_; }
  uint64_t corrupted_reads() const { return corrupted_reads_; }

 private:
  Simulation* sim_;
  CpuPool* cpu_;
  const CostModel cost_;
  MicroVm* vm_;
  VirtualFunction* vf_;
  SriovNic* nic_;
  IommuDomain* domain_;
  uint64_t ring_gpa_;
  uint64_t ring_bytes_;
  SimEvent link_settled_;
  SimEvent up_event_;
  bool initialized_ = false;
  bool link_failed_ = false;

  uint64_t dma_translation_failures_ = 0;
  uint64_t corrupted_reads_ = 0;
};

}  // namespace fastiov

#endif  // SRC_NIC_VF_DRIVER_H_
