#include "src/experiments/startup_experiment.h"

#include <vector>

#include "src/container/host.h"
#include "src/container/runtime.h"
#include "src/simcore/arena.h"
#include "src/simcore/simulation.h"

namespace fastiov {
namespace {

// Root orchestration: mirrors `crictl` concurrently invoking N containers
// (§3.1), with the small dispatch stagger a real client exhibits.
Task Orchestrate(Simulation& sim, Host& host, ContainerRuntime& runtime,
                 const ExperimentOptions& options) {
  co_await host.PrepareSharedImage();
  if (host.config().cni == CniKind::kVanillaFixed || host.config().cni == CniKind::kFastIov) {
    host.PreBindVfsToVfio();
  }
  if (host.config().decoupled_zeroing) {
    host.fastiovd().StartBackgroundZeroer();
  }
  const ServerlessApp* app = options.app.has_value() ? &*options.app : nullptr;
  const ArrivalSchedule schedule =
      ArrivalSchedule::Generate(options.arrival, options.concurrency,
                                options.arrival_rate_per_s, host.cost().crictl_dispatch_gap,
                                sim.rng());
  std::vector<Process> containers;
  containers.reserve(options.concurrency);
  for (int i = 0; i < options.concurrency; ++i) {
    if (schedule.times[i] > sim.Now()) {
      co_await sim.Delay(schedule.times[i] - sim.Now());
    }
    containers.push_back(sim.Spawn(runtime.StartContainer(app), "container"));
  }
  co_await WaitAll(std::move(containers));
  host.fastiovd().StopBackgroundZeroer();
}

}  // namespace

SimTime VfRelatedTime(const ContainerTimeline& lane) {
  return lane.StepTime(kStepDmaRam) + lane.StepTime(kStepDmaImage) +
         lane.StepTime(kStepVfioDev) + lane.StepTime(kStepVfDriver);
}

ExperimentResult RunStartupExperiment(const StackConfig& config,
                                      const ExperimentOptions& options) {
  // Per-run arena numbers are deltas over the thread-cumulative counters.
  const FramePool::Stats arena_before = FramePool::ThreadStats();
  Simulation sim(options.seed, options.scheduler);
  // Each container keeps a handful of events outstanding (its own step plus
  // zeroer/timer wakeups); 16 per container absorbs the burst peak without
  // the queue ever growing mid-run.
  sim.ReserveEvents(static_cast<size_t>(options.concurrency) * 16);
  std::optional<FaultInjector> injector;
  if (options.fault_plan.has_value()) {
    injector.emplace(*options.fault_plan);
    sim.set_fault_injector(&*injector);
  }
  Host host(sim, options.host, options.cost, config);
  if (options.collect_metrics) {
    // Before any container starts, so every lock acquisition is observed.
    host.EnableObservability();
  }
  ContainerRuntime runtime(host);

  Process root = sim.Spawn(Orchestrate(sim, host, runtime, options), "orchestrator");
  sim.Run();
  (void)root;

  ExperimentResult result;
  result.config = config;
  result.options = options;
  result.timeline = host.timeline();
  result.startup = host.timeline().StartupSummary();
  result.task_completion = host.timeline().TaskCompletionSummary();
  for (const auto& lane : host.timeline().containers()) {
    result.vf_related.AddTime(VfRelatedTime(lane));
  }
  result.residue_reads = runtime.TotalResidueReads();
  result.corruptions = runtime.TotalCorruptions();
  result.devset_lock_contention = host.devset().lock_policy().contention_count();
  result.pages_zeroed = host.pmem().total_pages_zeroed();
  result.fault_zeroed_pages = host.fastiovd().fault_zeroed_pages();
  result.background_zeroed_pages = host.fastiovd().background_zeroed_pages();
  result.local_allocations = host.pmem().local_allocations();
  result.remote_allocations = host.pmem().remote_allocations();
  result.events_processed = sim.num_events_processed();
  if (injector.has_value()) {
    for (const auto& inst : runtime.instances()) {
      if (inst->aborted) {
        ++result.aborted_containers;
      }
    }
    result.fault_stats = FaultStatsReport::FromInjector(*injector);
    result.fault_events = injector->trace_events();
  }
  if (ObservabilityHub* obs = host.observability()) {
    result.blocked_time = BuildBlockedTimeReport(obs->blocked, host.timeline());
    // Fold the run's headline counters and distributions into the registry
    // so one export surface carries them all.
    MetricsRegistry& m = obs->metrics;
    m.SetCounter("runtime.residue_reads", result.residue_reads);
    m.SetCounter("runtime.corruptions", result.corruptions);
    m.SetCounter("runtime.aborted_containers", result.aborted_containers);
    m.SetCounter("vfio.devset.lock_contention", result.devset_lock_contention);
    m.SetCounter("vfio.devset.opens", host.devset().opens_performed());
    m.SetCounter("mem.pages_zeroed", result.pages_zeroed);
    m.SetCounter("mem.local_allocations", result.local_allocations);
    m.SetCounter("mem.remote_allocations", result.remote_allocations);
    m.SetCounter("fastiovd.fault_zeroed_pages", result.fault_zeroed_pages);
    m.SetCounter("fastiovd.background_zeroed_pages", result.background_zeroed_pages);
    m.SetGauge("mem.free_pages", static_cast<double>(host.pmem().free_pages()));
    m.SetGauge("iommu.mapped_pages", static_cast<double>(host.iommu().total_mapped_pages()));
    m.SetGauge("nic.vfs_in_use", static_cast<double>(host.nic().vfs_in_use()));
    m.MergeSummary("startup.seconds", result.startup);
    m.MergeSummary("startup.vf_related_seconds", result.vf_related);
    if (!result.task_completion.Empty()) {
      m.MergeSummary("task.completion_seconds", result.task_completion);
    }
    for (size_t i = 0; i < obs->lock_stats.size(); ++i) {
      const LockStats& lock = obs->lock_stats.at(i);
      m.SetCounter("lock." + lock.name() + ".acquisitions", lock.acquisitions());
      m.SetCounter("lock." + lock.name() + ".contended", lock.contended());
      m.MergeSummary("lock." + lock.name() + ".wait_seconds", lock.wait_seconds());
    }
    // Engine self-observability: event throughput, arena pool traffic, and
    // (under the calendar policy) queue-tier occupancy. Only run-deterministic
    // counters go into the registry — warm-pool state (pool hits, slab
    // carves) varies with what previously ran on this thread, and registry
    // contents must be repeatable byte-for-byte (MetricsRunIsRepeatable).
    // Benchmarks read the full warm/cold picture from FramePool::ThreadStats.
    m.SetCounter("sim.events_processed", result.events_processed);
    const FramePool::Stats arena = FramePool::ThreadStats();
    m.SetCounter("sim.arena.allocs", arena.allocs - arena_before.allocs);
    m.SetCounter("sim.arena.frees", arena.frees - arena_before.frees);
    m.SetCounter("sim.arena.upstream_allocs",
                 arena.upstream_allocs - arena_before.upstream_allocs);
    if (const CalendarQueueStats* cal = sim.calendar_stats()) {
      m.SetCounter("sim.calendar.immediate_pushes", cal->immediate_pushes);
      m.SetCounter("sim.calendar.due_pushes", cal->due_pushes);
      m.SetCounter("sim.calendar.ring_pushes", cal->ring_pushes);
      m.SetCounter("sim.calendar.overflow_pushes", cal->overflow_pushes);
      m.SetCounter("sim.calendar.windows_advanced", cal->windows_advanced);
      m.SetCounter("sim.calendar.rebuilds", cal->rebuilds);
      m.SetGauge("sim.calendar.bucket_ns", static_cast<double>(cal->bucket_ns));
    }
    result.observability = host.observability_ptr();
  }
  return result;
}

}  // namespace fastiov
