#include "src/experiments/startup_experiment.h"

#include "src/experiments/host_cell.h"

namespace fastiov {

SimTime VfRelatedTime(const ContainerTimeline& lane) {
  return lane.StepTime(kStepDmaRam) + lane.StepTime(kStepDmaImage) +
         lane.StepTime(kStepVfioDev) + lane.StepTime(kStepVfDriver);
}

ExperimentResult RunStartupExperiment(const StackConfig& config,
                                      const ExperimentOptions& options) {
  // One cell, driven inline: the same Begin/run/End sequence the parallel
  // driver executes, which is what keeps standalone and multi-cell runs
  // byte-identical (multi_cell_test pins this).
  HostCell cell(config, options);
  cell.RunStandalone();
  return cell.TakeResult();
}

}  // namespace fastiov
