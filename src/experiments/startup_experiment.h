// Reusable experiment driver: concurrently start N secure containers on a
// fresh simulated host under a given stack configuration, optionally run a
// serverless task in each, and collect the measurements every figure/table
// of §6 is built from.
#ifndef SRC_EXPERIMENTS_STARTUP_EXPERIMENT_H_
#define SRC_EXPERIMENTS_STARTUP_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "src/config/cost_model.h"
#include "src/container/stack_config.h"
#include "src/fault/fault.h"
#include "src/simcore/event_queue.h"
#include "src/stats/blocked_time.h"
#include "src/stats/fault_stats.h"
#include "src/stats/observability.h"
#include "src/stats/summary.h"
#include "src/stats/timeline.h"
#include "src/workload/arrivals.h"
#include "src/workload/serverless.h"

namespace fastiov {

struct ExperimentOptions {
  int concurrency = 200;
  uint64_t seed = 42;
  HostSpec host;
  CostModel cost;
  // When set, every container runs this task and task-completion times are
  // recorded (§6.6).
  std::optional<ServerlessApp> app;
  // Invocation arrival process. The paper's closed burst is the default;
  // kUniform/kPoisson model open-loop serverless load at `arrival_rate`.
  ArrivalPattern arrival = ArrivalPattern::kBurst;
  double arrival_rate_per_s = 50.0;
  // Retain the full per-run ExperimentResult (timeline included) in
  // RepeatedResult::runs. Off by default: aggregates don't need the
  // timelines, and keeping every one alive is what makes large multi-seed
  // sweeps memory-hungry.
  bool keep_runs = false;
  // When set, a FaultInjector seeded from the plan is attached to the
  // simulation for this run. Unset (the default) leaves the run bit-for-bit
  // identical to a build without the fault subsystem.
  std::optional<FaultPlan> fault_plan;
  // Contention-aware observability: lock/resource probes, blocked-time
  // attribution, counter tracks, and the metrics registry. Probes are
  // memory-only (no events, no RNG, no simulated time), so enabling this
  // leaves the base result JSON byte-identical — it only ADDS an
  // "observability" section.
  bool collect_metrics = false;
  // Pending-event queue implementation for this run's Simulation. Unset uses
  // the process-wide default. Both policies produce byte-identical results
  // (asserted by tests/sched_equiv_test.cc); the knob exists so benchmarks
  // and equivalence tests can pin one side. Not serialized into result JSON.
  std::optional<SchedulerPolicy> scheduler;
  // Bounded timeline recording: keep full span vectors only for the first K
  // containers (deterministic sample, for trace export). Aggregate per-step
  // sums stay on for every container, so all summary statistics — and the
  // result JSON — are byte-identical to unbounded recording. The default
  // records everything. Not serialized into result JSON.
  size_t timeline_span_sample = static_cast<size_t>(-1);
};

struct ExperimentResult {
  StackConfig config;
  ExperimentOptions options;
  TimelineRecorder timeline;

  Summary startup;          // seconds, per container
  Summary task_completion;  // seconds, per container (empty without an app)
  Summary vf_related;       // per-container critical-path VF step time

  uint64_t residue_reads = 0;   // guest observations of another tenant's data
  uint64_t corruptions = 0;     // data destroyed by mistimed zeroing
  uint64_t devset_lock_contention = 0;
  uint64_t pages_zeroed = 0;
  uint64_t fault_zeroed_pages = 0;
  uint64_t background_zeroed_pages = 0;
  uint64_t local_allocations = 0;
  uint64_t remote_allocations = 0;  // NUMA spillover
  // Total simulation events dispatched by the run. Scheduler-policy
  // independent (both queues pop the same sequence); used by the scale
  // benchmarks to report events/sec. Not serialized into result JSON.
  uint64_t events_processed = 0;

  // Fault-injection bookkeeping; present only when options.fault_plan was.
  uint64_t aborted_containers = 0;
  std::optional<FaultStatsReport> fault_stats;

  // Observability payload; set only when options.collect_metrics was. The
  // hub (lock stats, counter tracks, metrics registry) is shared so results
  // stay copyable and outlive the Host that recorded into it.
  std::shared_ptr<ObservabilityHub> observability;
  std::optional<BlockedTimeReport> blocked_time;
  // Fault-lifecycle events for the trace exporter (copied out of the
  // injector; empty without a fault plan).
  std::vector<FaultTraceEvent> fault_events;

  double MeanStartupSeconds() const { return startup.Mean(); }
  double P99StartupSeconds() const { return startup.Percentile(99.0); }
};

// VF-related critical-path time of one container (steps 1, 3, 4, 5).
SimTime VfRelatedTime(const ContainerTimeline& lane);

// Runs one experiment on a fresh host. Deterministic for a fixed
// (config, options) pair.
ExperimentResult RunStartupExperiment(const StackConfig& config,
                                      const ExperimentOptions& options);

}  // namespace fastiov

#endif  // SRC_EXPERIMENTS_STARTUP_EXPERIMENT_H_
