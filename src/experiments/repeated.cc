#include "src/experiments/repeated.h"

#include <cassert>
#include <cstddef>
#include <iterator>
#include <utility>

#include "src/experiments/sweep.h"

namespace fastiov {
namespace {

RepeatedMetric Aggregate(const std::vector<double>& values) {
  Summary s;
  for (double v : values) {
    s.Add(v);
  }
  return RepeatedMetric{s.Mean(), s.Stddev(), s.Min(), s.Max()};
}

// Per-config fold state for the streaming aggregation: headline scalars are
// extracted the moment a run arrives (in index order, so the aggregate is
// byte-identical to the historical buffered path) and the run itself is
// dropped — or moved into `runs` — immediately instead of the whole
// (config × seed) matrix staying alive until the end.
struct ConfigFold {
  std::vector<double> startup_means;
  std::vector<double> startup_p99s;
  std::vector<double> task_means;
  std::vector<double> vf_means;
  std::vector<ExperimentResult> runs;  // only populated when keep_runs

  void Absorb(ExperimentResult&& run, bool keep_runs) {
    startup_means.push_back(run.startup.Mean());
    startup_p99s.push_back(run.startup.Percentile(99));
    if (!run.task_completion.Empty()) {
      task_means.push_back(run.task_completion.Mean());
    }
    vf_means.push_back(run.vf_related.Mean());
    if (keep_runs) {
      runs.push_back(std::move(run));
    }
  }

  RepeatedResult Finish(const StackConfig& config, int repeats) {
    RepeatedResult result;
    result.config = config;
    result.repeats = repeats;
    result.startup_mean = Aggregate(startup_means);
    result.startup_p99 = Aggregate(startup_p99s);
    if (!task_means.empty()) {
      result.task_mean = Aggregate(task_means);
    }
    result.vf_related_mean = Aggregate(vf_means);
    result.runs = std::move(runs);
    return result;
  }
};

std::vector<uint64_t> SeedRange(uint64_t base, int repeats) {
  std::vector<uint64_t> seeds;
  seeds.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    seeds.push_back(base + static_cast<uint64_t>(r));
  }
  return seeds;
}

}  // namespace

RepeatedResult RunRepeated(const StackConfig& config, const ExperimentOptions& options,
                           int repeats, int jobs) {
  return std::move(
      RunRepeatedSweep(std::vector<StackConfig>{config}, options, repeats, jobs).front());
}

std::vector<RepeatedResult> RunRepeatedSweep(const std::vector<StackConfig>& configs,
                                             const ExperimentOptions& options, int repeats,
                                             int jobs) {
  assert(repeats > 0);
  const std::vector<SweepCell> cells =
      CrossProduct(configs, options, SeedRange(options.seed, repeats));
  std::vector<ConfigFold> folds(configs.size());
  RunSweepStream(cells, jobs, [&](size_t i, ExperimentResult&& run) {
    folds[i / static_cast<size_t>(repeats)].Absorb(std::move(run), options.keep_runs);
  });
  std::vector<RepeatedResult> results;
  results.reserve(configs.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    results.push_back(folds[c].Finish(configs[c], repeats));
  }
  return results;
}

}  // namespace fastiov
