#include "src/experiments/repeated.h"

#include <cassert>

namespace fastiov {
namespace {

RepeatedMetric Aggregate(const std::vector<double>& values) {
  Summary s;
  for (double v : values) {
    s.Add(v);
  }
  return RepeatedMetric{s.Mean(), s.Stddev(), s.Min(), s.Max()};
}

}  // namespace

RepeatedResult RunRepeated(const StackConfig& config, const ExperimentOptions& options,
                           int repeats) {
  assert(repeats > 0);
  RepeatedResult result;
  result.config = config;
  result.repeats = repeats;

  std::vector<double> startup_means;
  std::vector<double> startup_p99s;
  std::vector<double> task_means;
  std::vector<double> vf_means;
  for (int r = 0; r < repeats; ++r) {
    ExperimentOptions run_options = options;
    run_options.seed = options.seed + static_cast<uint64_t>(r);
    result.runs.push_back(RunStartupExperiment(config, run_options));
    const ExperimentResult& run = result.runs.back();
    startup_means.push_back(run.startup.Mean());
    startup_p99s.push_back(run.startup.Percentile(99));
    if (!run.task_completion.Empty()) {
      task_means.push_back(run.task_completion.Mean());
    }
    vf_means.push_back(run.vf_related.Mean());
  }
  result.startup_mean = Aggregate(startup_means);
  result.startup_p99 = Aggregate(startup_p99s);
  if (!task_means.empty()) {
    result.task_mean = Aggregate(task_means);
  }
  result.vf_related_mean = Aggregate(vf_means);
  return result;
}

}  // namespace fastiov
