#include "src/experiments/repeated.h"

#include <cassert>
#include <cstddef>
#include <iterator>
#include <utility>

#include "src/experiments/sweep.h"

namespace fastiov {
namespace {

RepeatedMetric Aggregate(const std::vector<double>& values) {
  Summary s;
  for (double v : values) {
    s.Add(v);
  }
  return RepeatedMetric{s.Mean(), s.Stddev(), s.Min(), s.Max()};
}

// Folds `repeats` consecutive runs into one aggregate. Consumes the runs
// from `first` so the timelines can be moved (or dropped) instead of copied.
RepeatedResult AggregateRuns(const StackConfig& config, const ExperimentOptions& options,
                             std::vector<ExperimentResult>::iterator first, int repeats) {
  RepeatedResult result;
  result.config = config;
  result.repeats = repeats;

  std::vector<double> startup_means;
  std::vector<double> startup_p99s;
  std::vector<double> task_means;
  std::vector<double> vf_means;
  for (int r = 0; r < repeats; ++r) {
    const ExperimentResult& run = *(first + r);
    startup_means.push_back(run.startup.Mean());
    startup_p99s.push_back(run.startup.Percentile(99));
    if (!run.task_completion.Empty()) {
      task_means.push_back(run.task_completion.Mean());
    }
    vf_means.push_back(run.vf_related.Mean());
  }
  result.startup_mean = Aggregate(startup_means);
  result.startup_p99 = Aggregate(startup_p99s);
  if (!task_means.empty()) {
    result.task_mean = Aggregate(task_means);
  }
  result.vf_related_mean = Aggregate(vf_means);
  if (options.keep_runs) {
    result.runs.assign(std::make_move_iterator(first),
                       std::make_move_iterator(first + repeats));
  }
  return result;
}

std::vector<uint64_t> SeedRange(uint64_t base, int repeats) {
  std::vector<uint64_t> seeds;
  seeds.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    seeds.push_back(base + static_cast<uint64_t>(r));
  }
  return seeds;
}

}  // namespace

RepeatedResult RunRepeated(const StackConfig& config, const ExperimentOptions& options,
                           int repeats, int jobs) {
  return std::move(
      RunRepeatedSweep(std::vector<StackConfig>{config}, options, repeats, jobs).front());
}

std::vector<RepeatedResult> RunRepeatedSweep(const std::vector<StackConfig>& configs,
                                             const ExperimentOptions& options, int repeats,
                                             int jobs) {
  assert(repeats > 0);
  std::vector<ExperimentResult> runs =
      RunSweep(CrossProduct(configs, options, SeedRange(options.seed, repeats)), jobs);
  std::vector<RepeatedResult> results;
  results.reserve(configs.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    results.push_back(AggregateRuns(
        configs[c], options, runs.begin() + static_cast<ptrdiff_t>(c) * repeats, repeats));
  }
  return results;
}

}  // namespace fastiov
