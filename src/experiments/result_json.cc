#include "src/experiments/result_json.h"

#include <sstream>

#include "src/stats/fault_stats.h"
#include "src/stats/json_writer.h"
#include "src/stats/lock_stats.h"
#include "src/stats/metrics.h"

namespace fastiov {
namespace {

void WriteObservabilityJson(const ExperimentResult& r, JsonWriter& json) {
  json.Key("observability");
  json.BeginObject();
  json.Key("metrics");
  r.observability->metrics.WriteJson(json);
  json.Key("locks");
  json.BeginArray();
  for (const LockStats* lock : r.observability->lock_stats.ByTotalWait()) {
    json.BeginObject()
        .KV("name", lock->name())
        .KV("acquisitions", lock->acquisitions())
        .KV("contended", lock->contended())
        .KV("max_queue_depth", static_cast<uint64_t>(lock->max_queue_depth()))
        .KV("mean_queue_depth", lock->mean_queue_depth())
        .KV("wait_total_seconds", lock->wait_seconds().Sum())
        .KV("wait_mean_seconds", lock->wait_seconds().Mean())
        .KV("wait_max_seconds", lock->wait_seconds().Max())
        .KV("hold_mean_seconds", lock->hold_seconds().Mean())
        .EndObject();
  }
  json.EndArray();
  if (r.blocked_time.has_value()) {
    json.Key("blocked_time");
    json.BeginObject()
        .KV("mean_startup_seconds", r.blocked_time->mean_startup_seconds)
        .KV("p99_startup_seconds", r.blocked_time->p99_startup_seconds);
    json.Key("rows");
    json.BeginArray();
    for (const BlockedTimeRow& row : r.blocked_time->rows) {
      json.BeginObject()
          .KV("phase", row.phase)
          .KV("cause", row.cause)
          .KV("mean_seconds", row.mean_seconds)
          .KV("share_of_mean", row.share_of_mean)
          .KV("tail_seconds", row.tail_seconds)
          .KV("share_of_p99_tail", row.share_of_p99_tail)
          .KV("events", row.events)
          .EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
}

void WriteExperimentResultBody(const ExperimentResult& r, JsonWriter& json) {
  json.BeginObject();
  json.KV("stack", r.config.name);
  json.KV("concurrency", static_cast<int64_t>(r.options.concurrency));
  json.KV("seed", r.options.seed);
  json.KV("arrival", ArrivalPatternName(r.options.arrival));
  json.Key("startup_seconds");
  json.BeginObject()
      .KV("mean", r.startup.Mean())
      .KV("p50", r.startup.Percentile(50))
      .KV("p90", r.startup.Percentile(90))
      .KV("p99", r.startup.Percentile(99))
      .KV("min", r.startup.Min())
      .KV("max", r.startup.Max())
      .EndObject();
  if (!r.task_completion.Empty()) {
    json.Key("task_completion_seconds");
    json.BeginObject()
        .KV("mean", r.task_completion.Mean())
        .KV("p99", r.task_completion.Percentile(99))
        .EndObject();
  }
  json.KV("vf_related_mean_seconds", r.vf_related.Mean());
  json.Key("step_share_of_average");
  json.BeginObject();
  for (const std::string& step : r.timeline.StepNames()) {
    json.KV(step, r.timeline.StepShareOfAverage(step));
  }
  json.EndObject();
  json.Key("counters");
  json.BeginObject()
      .KV("residue_reads", r.residue_reads)
      .KV("corruptions", r.corruptions)
      .KV("devset_lock_contention", r.devset_lock_contention)
      .KV("pages_zeroed", r.pages_zeroed)
      .KV("fault_zeroed_pages", r.fault_zeroed_pages)
      .KV("background_zeroed_pages", r.background_zeroed_pages)
      .EndObject();
  // Only fault-injection runs carry this section, so disabled runs keep a
  // byte-identical digest.
  if (r.fault_stats.has_value()) {
    json.KV("aborted_containers", r.aborted_containers);
    json.Key("fault_injection");
    WriteFaultStatsJson(*r.fault_stats, json);
  }
  // Same conditional-section pattern: metrics-off runs emit no observability
  // key, and because the probes are memory-only the rest of the document is
  // byte-identical either way.
  if (r.observability != nullptr) {
    WriteObservabilityJson(r, json);
  }
  json.EndObject();
}

void WriteMetric(JsonWriter& json, std::string_view name, const RepeatedMetric& m) {
  json.Key(name);
  json.BeginObject()
      .KV("mean", m.mean)
      .KV("stddev", m.stddev)
      .KV("min", m.min)
      .KV("max", m.max)
      .EndObject();
}

}  // namespace

void WriteExperimentResultJson(const ExperimentResult& r, std::ostream& os) {
  JsonWriter json(os);
  WriteExperimentResultBody(r, json);
}

void WriteExperimentResultJson(const ExperimentResult& r, JsonWriter& json) {
  WriteExperimentResultBody(r, json);
}

void WriteRepeatedResultJson(const RepeatedResult& r, std::ostream& os) {
  JsonWriter json(os);
  json.BeginObject();
  json.KV("stack", r.config.name);
  json.KV("repeats", static_cast<int64_t>(r.repeats));
  WriteMetric(json, "startup_mean_seconds", r.startup_mean);
  WriteMetric(json, "startup_p99_seconds", r.startup_p99);
  WriteMetric(json, "task_mean_seconds", r.task_mean);
  WriteMetric(json, "vf_related_mean_seconds", r.vf_related_mean);
  json.Key("runs");
  json.BeginArray();
  for (const ExperimentResult& run : r.runs) {
    WriteExperimentResultBody(run, json);
  }
  json.EndArray();
  json.EndObject();
}

std::string ExperimentResultJson(const ExperimentResult& r) {
  std::string out;
  JsonWriter json(out);
  WriteExperimentResultBody(r, json);
  return out;
}

std::string RepeatedResultJson(const RepeatedResult& r) {
  std::ostringstream os;
  WriteRepeatedResultJson(r, os);
  return os.str();
}

}  // namespace fastiov
