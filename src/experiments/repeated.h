// Multi-seed repetition: runs the same experiment across R seeds and
// aggregates the headline metrics with spread, so reported numbers carry
// run-to-run variance instead of a single draw.
#ifndef SRC_EXPERIMENTS_REPEATED_H_
#define SRC_EXPERIMENTS_REPEATED_H_

#include <vector>

#include "src/experiments/startup_experiment.h"

namespace fastiov {

struct RepeatedMetric {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct RepeatedResult {
  StackConfig config;
  int repeats = 0;
  RepeatedMetric startup_mean;      // of per-run average startup
  RepeatedMetric startup_p99;       // of per-run p99 startup
  RepeatedMetric task_mean;         // of per-run average task completion
  RepeatedMetric vf_related_mean;   // of per-run average VF-related time
  // Full per-run results, retained only when ExperimentOptions::keep_runs is
  // set — each one holds the whole timeline, which adds up fast across a
  // large multi-seed sweep.
  std::vector<ExperimentResult> runs;
};

// Runs `repeats` experiments with seeds base_seed, base_seed+1, ..., fanned
// out over `jobs` worker threads (1 = sequential; <= 0 = all hardware
// threads). The aggregate is identical for every jobs value.
RepeatedResult RunRepeated(const StackConfig& config, const ExperimentOptions& options,
                           int repeats, int jobs = 1);

// Same, for a whole list of configurations at once: the full
// (config × seed) matrix is flattened into one sweep so all cells share the
// worker pool, instead of parallelising only within one config's seeds.
// Results are in `configs` order.
std::vector<RepeatedResult> RunRepeatedSweep(const std::vector<StackConfig>& configs,
                                             const ExperimentOptions& options, int repeats,
                                             int jobs);

}  // namespace fastiov

#endif  // SRC_EXPERIMENTS_REPEATED_H_
