// Multi-seed repetition: runs the same experiment across R seeds and
// aggregates the headline metrics with spread, so reported numbers carry
// run-to-run variance instead of a single draw.
#ifndef SRC_EXPERIMENTS_REPEATED_H_
#define SRC_EXPERIMENTS_REPEATED_H_

#include <vector>

#include "src/experiments/startup_experiment.h"

namespace fastiov {

struct RepeatedMetric {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct RepeatedResult {
  StackConfig config;
  int repeats = 0;
  RepeatedMetric startup_mean;      // of per-run average startup
  RepeatedMetric startup_p99;       // of per-run p99 startup
  RepeatedMetric task_mean;         // of per-run average task completion
  RepeatedMetric vf_related_mean;   // of per-run average VF-related time
  std::vector<ExperimentResult> runs;
};

// Runs `repeats` experiments with seeds base_seed, base_seed+1, ...
RepeatedResult RunRepeated(const StackConfig& config, const ExperimentOptions& options,
                           int repeats);

}  // namespace fastiov

#endif  // SRC_EXPERIMENTS_REPEATED_H_
