// Parallel experiment sweep engine.
//
// A sweep is an arbitrary matrix of independent simulation runs — typically
// a (StackConfig × seed) cross product. Each cell constructs its own
// Simulation, Host, and runtime, so cells share no mutable state and can
// execute on any thread; results land in a pre-sized vector indexed by cell
// position, which keeps aggregation order — and therefore every reported
// number — byte-identical to the sequential path. The thread-safety
// boundary of the whole codebase is this layer: simcore and everything
// below it stay single-threaded per run.
#ifndef SRC_EXPERIMENTS_SWEEP_H_
#define SRC_EXPERIMENTS_SWEEP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/experiments/startup_experiment.h"

namespace fastiov {

// Worker-thread count used when the caller does not pick one: the hardware
// concurrency, at least 1.
int DefaultJobs();

// Resolves a user-facing --jobs value: <= 0 means "use all hardware
// threads"; anything else is taken literally.
int ResolveJobs(int jobs);

// Resolve, then clamp to the hardware thread count. The CLI entry points use
// this: sweep cells are CPU-bound, so oversubscribing buys nothing but
// context-switch overhead and has manufactured fake "regressions" on small
// CI boxes (--jobs 4 on a 1-CPU host measured 0.83x of --jobs 1). Tests that
// deliberately want more workers than cores call ParallelFor directly, which
// takes the value literally.
int ClampJobsToHardware(int jobs);

// Runs body(i) for every i in [0, n), fanned out across `jobs` worker
// threads with work stealing: indices are dealt round-robin into per-worker
// queues, and a worker whose queue drains steals from its siblings, so one
// slow cell cannot idle the rest of the pool. jobs <= 1 executes inline on
// the calling thread in index order — the exact sequential behaviour, with
// no threads created. If bodies throw, the exception with the lowest task
// index propagates to the caller after all workers drain (deterministic
// regardless of thread timing). body must not touch shared mutable state.
void ParallelFor(size_t n, int jobs, const std::function<void(size_t)>& body);

// One cell of a sweep matrix.
struct SweepCell {
  StackConfig config;
  ExperimentOptions options;
};

// Expands a (configs × seeds) cross product in row-major order — all seeds
// of configs[0] first — matching how the bench binaries aggregate.
std::vector<SweepCell> CrossProduct(const std::vector<StackConfig>& configs,
                                    const ExperimentOptions& base,
                                    const std::vector<uint64_t>& seeds);

// Runs every cell (one isolated Simulation each) on `jobs` workers and
// returns results in cell order.
std::vector<ExperimentResult> RunSweep(const std::vector<SweepCell>& cells, int jobs);

// Streaming variant: each result is moved to `sink` strictly in cell order
// as soon as ordering allows, instead of buffering the whole matrix.
// Out-of-order completions park in a reorder buffer bounded by the worker
// count's completion skew; with jobs <= 1 exactly one result is alive at a
// time. Per-cell results are identical to RunSweep's.
using SweepResultSink = std::function<void(size_t index, ExperimentResult&&)>;
void RunSweepStream(const std::vector<SweepCell>& cells, int jobs,
                    const SweepResultSink& sink);

}  // namespace fastiov

#endif  // SRC_EXPERIMENTS_SWEEP_H_
