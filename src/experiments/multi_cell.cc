#include "src/experiments/multi_cell.h"

#include <memory>
#include <stdexcept>

#include "src/experiments/host_cell.h"
#include "src/experiments/result_json.h"

namespace fastiov {

MultiCellResult RunMultiCellExperiment(const StackConfig& config,
                                       const ExperimentOptions& base,
                                       const MultiCellOptions& mc) {
  if (mc.cells <= 0) {
    throw std::invalid_argument("RunMultiCellExperiment: cells must be positive");
  }
  std::vector<std::unique_ptr<HostCell>> cells;
  cells.reserve(static_cast<size_t>(mc.cells));
  std::vector<SimCell*> ptrs;
  ptrs.reserve(static_cast<size_t>(mc.cells));
  for (int i = 0; i < mc.cells; ++i) {
    ExperimentOptions options = base;
    options.seed = base.seed + static_cast<uint64_t>(i);
    cells.push_back(std::make_unique<HostCell>(config, options));
    ptrs.push_back(cells.back().get());
  }

  ParallelExecOptions po;
  po.threads = mc.cell_threads;
  po.lookahead = mc.lookahead;

  MultiCellResult result;
  result.exec = RunCells(ptrs, po);
  result.cells.reserve(cells.size());
  for (auto& cell : cells) {
    result.cells.push_back(cell->TakeResult());
  }
  return result;
}

std::string MultiCellDigest(const MultiCellResult& result) {
  std::string digest;
  for (const ExperimentResult& cell : result.cells) {
    digest += ExperimentResultJson(cell);
    digest += '\n';
  }
  return digest;
}

}  // namespace fastiov
