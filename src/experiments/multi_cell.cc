#include "src/experiments/multi_cell.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "src/experiments/host_cell.h"
#include "src/experiments/result_json.h"
#include "src/experiments/sweep.h"

namespace fastiov {

MultiCellResult RunMultiCellExperiment(const StackConfig& config,
                                       const ExperimentOptions& base,
                                       const MultiCellOptions& mc) {
  if (mc.cells <= 0) {
    throw std::invalid_argument("RunMultiCellExperiment: cells must be positive");
  }
  std::vector<std::unique_ptr<HostCell>> cells;
  cells.reserve(static_cast<size_t>(mc.cells));
  std::vector<SimCell*> ptrs;
  ptrs.reserve(static_cast<size_t>(mc.cells));
  for (int i = 0; i < mc.cells; ++i) {
    ExperimentOptions options = base;
    options.seed = base.seed + static_cast<uint64_t>(i);
    cells.push_back(std::make_unique<HostCell>(config, options));
    ptrs.push_back(cells.back().get());
  }

  ParallelExecOptions po;
  po.threads = mc.cell_threads;
  po.lookahead = mc.lookahead;

  MultiCellResult result;
  result.exec = RunCells(ptrs, po);
  result.cells.reserve(cells.size());
  for (auto& cell : cells) {
    result.cells.push_back(cell->TakeResult());
  }
  return result;
}

MultiCellStreamStats RunMultiCellStream(const StackConfig& config,
                                        const ExperimentOptions& base,
                                        const MultiCellOptions& mc,
                                        const CellResultSink& sink) {
  if (mc.cells <= 0) {
    throw std::invalid_argument("RunMultiCellStream: cells must be positive");
  }
  MultiCellStreamStats stats;
  stats.cells = mc.cells;
  const auto wall_begin = std::chrono::steady_clock::now();

  if (mc.lookahead != SimTime::Max()) {
    // Coupled cells advance in lockstep windows; none can finish early, so
    // there is nothing to stream — run buffered, then drain in order.
    MultiCellResult buffered = RunMultiCellExperiment(config, base, mc);
    stats.exec = buffered.exec;
    stats.threads_used = buffered.exec.threads_used;
    for (int i = 0; i < mc.cells; ++i) {
      sink(i, std::move(buffered.cells[static_cast<size_t>(i)]));
    }
    stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_begin)
            .count();
    return stats;
  }

  const int threads =
      std::min(mc.cell_threads <= 0 ? DefaultJobs() : mc.cell_threads, mc.cells);
  stats.threads_used = threads;
  stats.streamed = true;

  // In-order emission with bounded buffering: results completing ahead of
  // the next expected index park in a map until the gap closes. With one
  // worker the map never holds more than the cell just finished, so exactly
  // one cell's result is alive at a time.
  std::mutex mu;
  std::map<int, ExperimentResult> parked;
  int next = 0;
  ParallelFor(static_cast<size_t>(mc.cells), threads, [&](size_t i) {
    ExperimentOptions options = base;
    options.seed = base.seed + static_cast<uint64_t>(i);
    ExperimentResult result;
    {
      // The cell (sim state, arenas, host) dies before the sink runs; only
      // the collected result crosses the scope.
      HostCell cell(config, options);
      cell.RunStandalone();
      result = cell.TakeResult();
    }
    std::lock_guard<std::mutex> lock(mu);
    parked.emplace(static_cast<int>(i), std::move(result));
    while (!parked.empty() && parked.begin()->first == next) {
      auto it = parked.begin();
      sink(it->first, std::move(it->second));
      parked.erase(it);
      ++next;
    }
  });

  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_begin)
          .count();
  return stats;
}

std::string MultiCellDigest(const MultiCellResult& result) {
  std::string digest;
  for (const ExperimentResult& cell : result.cells) {
    digest += ExperimentResultJson(cell);
    digest += '\n';
  }
  return digest;
}

}  // namespace fastiov
