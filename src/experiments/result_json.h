// Machine-readable serialization of experiment results.
//
// Shared by the CLI front end, the simbench perf harness, and the sweep
// determinism tests: the parallel sweep engine promises byte-identical
// output to the sequential path, and "byte-identical" is checked against
// exactly these serializations.
#ifndef SRC_EXPERIMENTS_RESULT_JSON_H_
#define SRC_EXPERIMENTS_RESULT_JSON_H_

#include <ostream>
#include <string>

#include "src/experiments/repeated.h"
#include "src/experiments/startup_experiment.h"

namespace fastiov {

class JsonWriter;

// One experiment run: headline summaries, step shares, and counters.
void WriteExperimentResultJson(const ExperimentResult& r, std::ostream& os);

// Same document, written as the next value of an existing JsonWriter — lets
// callers stream per-cell results directly into an enclosing array without
// materializing intermediate strings (byte-identical to embedding
// ExperimentResultJson(r) via RawValue).
void WriteExperimentResultJson(const ExperimentResult& r, JsonWriter& json);

// A multi-seed aggregate: the four spread metrics plus every retained run.
void WriteRepeatedResultJson(const RepeatedResult& r, std::ostream& os);

// Convenience for comparisons in tests and simbench.
std::string ExperimentResultJson(const ExperimentResult& r);
std::string RepeatedResultJson(const RepeatedResult& r);

}  // namespace fastiov

#endif  // SRC_EXPERIMENTS_RESULT_JSON_H_
