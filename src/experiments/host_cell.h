// HostCell: one experiment run packaged as a self-contained simulation cell.
//
// A cell bundles everything RunStartupExperiment used to hold on its stack —
// Simulation (clock, queue, RNG stream), fault injector, Host (CPU pools,
// memory, IOMMU, PCI id space, NIC, VFIO, fastiovd, observability hub) and
// the container runtime — behind the SimCell interface, so N of them run
// under the parallel driver (src/simcore/parallel_exec.h) or one of them
// runs standalone on the calling thread. Nothing in a cell is process-global:
// two cells in one process produce byte-identical results to two processes.
//
// Lifecycle honours the FramePool thread-affinity contract (parallel_exec.h):
// all sim-side state is constructed in CellBegin and destroyed in CellEnd —
// both on the owning worker thread — so every coroutine frame is returned to
// the thread-local pool that carved it. The constructor and TakeResult are
// main-thread safe: they only touch plain config/result values.
#ifndef SRC_EXPERIMENTS_HOST_CELL_H_
#define SRC_EXPERIMENTS_HOST_CELL_H_

#include <cstdint>
#include <optional>

#include "src/container/host.h"
#include "src/container/runtime.h"
#include "src/experiments/startup_experiment.h"
#include "src/simcore/parallel_exec.h"
#include "src/simcore/simulation.h"

namespace fastiov {

class HostCell : public SimCell {
 public:
  HostCell(const StackConfig& config, const ExperimentOptions& options);
  ~HostCell() override;
  HostCell(const HostCell&) = delete;
  HostCell& operator=(const HostCell&) = delete;

  // SimCell interface (driven by RunCells, or by RunStandalone inline).
  Simulation& cell_sim() override { return *sim_; }
  void CellBegin(CellPort* port) override;
  void ExecuteWindow(SimTime horizon) override;
  void CellEnd() override;
  void CellAbandon() noexcept override;

  // The sequential path: Begin, run to completion, End — all inline on the
  // calling thread. Exactly the event sequence the pre-cell
  // RunStartupExperiment executed.
  void RunStandalone();

  bool finished() const { return collected_; }
  // Valid once finished(); moves the collected result out.
  ExperimentResult TakeResult();

 protected:
  // The root coroutine CellBegin spawns. The default is Orchestrate() — the
  // closed-burst/arrival-schedule experiment. Subclasses (the cluster layer's
  // ClusterHostCell) override it to drive launches from a cluster trace
  // through the control plane instead; returning Orchestrate() unchanged
  // keeps the event sequence — and the result bytes — identical to a
  // standalone run.
  virtual Task RootTask() { return Orchestrate(); }

  // The shared preamble every orchestration flavor runs before its first
  // container: shared image preparation, VF pre-binding (for the CNI modes
  // that do it at host setup), and the background zeroer.
  Task BeginHostServices();

  Task Orchestrate();
  void CollectResult();
  void Teardown();

  StackConfig config_;
  ExperimentOptions options_;

  // Sim-side state; alive between CellBegin and CellEnd, on the owner
  // thread. Declaration order is teardown-relevant: Teardown() resets in
  // reverse construction order (runtime, host, injector, sim), matching the
  // old stack-frame destruction.
  std::optional<Simulation> sim_;
  std::optional<FaultInjector> injector_;
  std::optional<Host> host_;
  std::optional<ContainerRuntime> runtime_;

  // The driver's message port; valid between CellBegin and the end of the
  // run. Null in standalone runs (no driver, no peers to message).
  CellPort* port_ = nullptr;

  bool collected_ = false;
  ExperimentResult result_;

 private:
  // Arena traffic attributed to this cell, accumulated per execution slice
  // so the numbers are identical whichever worker threads the slices ran on.
  struct ArenaDelta {
    uint64_t allocs = 0;
    uint64_t frees = 0;
    uint64_t upstream_allocs = 0;
  };
  ArenaDelta arena_;
};

}  // namespace fastiov

#endif  // SRC_EXPERIMENTS_HOST_CELL_H_
