// Multi-cell experiments: N independent hosts simulated in one process,
// executed by the conservative parallel driver on up to `cell_threads`
// worker threads. Cell i runs the base options with seed base.seed + i, so a
// multi-cell run is exactly N standalone runs — byte-for-byte, at any thread
// count (multi_cell_test and sched_equiv_test pin this).
#ifndef SRC_EXPERIMENTS_MULTI_CELL_H_
#define SRC_EXPERIMENTS_MULTI_CELL_H_

#include <string>
#include <vector>

#include "src/experiments/startup_experiment.h"
#include "src/simcore/parallel_exec.h"

namespace fastiov {

struct MultiCellOptions {
  int cells = 2;
  // Worker threads for the parallel driver; <= 0 means hardware concurrency.
  // Always clamped to `cells`.
  int cell_threads = 1;
  // Conservative lookahead. The default (Max) means the cells are uncoupled
  // and each runs to completion in one window — today's FastIOV regime. A
  // finite value exercises the windowed protocol (the cluster layer's mode).
  SimTime lookahead = SimTime::Max();
};

struct MultiCellResult {
  std::vector<ExperimentResult> cells;  // in cell-index order
  ParallelExecStats exec;
};

MultiCellResult RunMultiCellExperiment(const StackConfig& config,
                                       const ExperimentOptions& base,
                                       const MultiCellOptions& mc);

// Digest for identity checks: the concatenated per-cell result JSON. Two
// runs are equivalent iff their digests are byte-identical.
std::string MultiCellDigest(const MultiCellResult& result);

}  // namespace fastiov

#endif  // SRC_EXPERIMENTS_MULTI_CELL_H_
