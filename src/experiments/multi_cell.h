// Multi-cell experiments: N independent hosts simulated in one process,
// executed by the conservative parallel driver on up to `cell_threads`
// worker threads. Cell i runs the base options with seed base.seed + i, so a
// multi-cell run is exactly N standalone runs — byte-for-byte, at any thread
// count (multi_cell_test and sched_equiv_test pin this).
#ifndef SRC_EXPERIMENTS_MULTI_CELL_H_
#define SRC_EXPERIMENTS_MULTI_CELL_H_

#include <functional>
#include <string>
#include <vector>

#include "src/experiments/startup_experiment.h"
#include "src/simcore/parallel_exec.h"

namespace fastiov {

struct MultiCellOptions {
  int cells = 2;
  // Worker threads for the parallel driver; <= 0 means hardware concurrency.
  // Always clamped to `cells`.
  int cell_threads = 1;
  // Conservative lookahead. The default (Max) means the cells are uncoupled
  // and each runs to completion in one window — today's FastIOV regime. A
  // finite value exercises the windowed protocol (the cluster layer's mode).
  SimTime lookahead = SimTime::Max();
};

struct MultiCellResult {
  std::vector<ExperimentResult> cells;  // in cell-index order
  ParallelExecStats exec;
};

MultiCellResult RunMultiCellExperiment(const StackConfig& config,
                                       const ExperimentOptions& base,
                                       const MultiCellOptions& mc);

// Receives cell results strictly in cell-index order, as they become
// available. The result is moved in; the callee owns (and frees) it.
using CellResultSink = std::function<void(int cell_index, ExperimentResult&&)>;

struct MultiCellStreamStats {
  int cells = 0;
  int threads_used = 0;
  double wall_seconds = 0.0;
  // True when the uncoupled streaming path ran: at most `threads + in-flight
  // reorder window` cells are alive at once, so peak memory is O(per-cell)
  // instead of O(fleet). False means the coupled (finite-lookahead) path
  // buffered via RunMultiCellExperiment before draining the sink.
  bool streamed = false;
  // Populated only by the coupled path (the streaming path never enters the
  // windowed driver).
  ParallelExecStats exec;
};

// Streaming counterpart of RunMultiCellExperiment: emits each cell's result
// to `sink` in cell-index order instead of buffering the whole fleet.
// Uncoupled fleets (lookahead == SimTime::Max(), today's FastIOV regime) run
// each cell to completion independently and free it as soon as the sink
// returns; per-cell results are byte-identical to the buffered path
// (multi_cell_test pins cells == standalone). Finite-lookahead fleets are
// coupled — no cell can finish before the whole window protocol does — so
// they fall back to the buffered path and then drain in order.
MultiCellStreamStats RunMultiCellStream(const StackConfig& config,
                                        const ExperimentOptions& base,
                                        const MultiCellOptions& mc,
                                        const CellResultSink& sink);

// Digest for identity checks: the concatenated per-cell result JSON. Two
// runs are equivalent iff their digests are byte-identical.
std::string MultiCellDigest(const MultiCellResult& result);

}  // namespace fastiov

#endif  // SRC_EXPERIMENTS_MULTI_CELL_H_
