// Churn experiment: repeated waves of start -> run -> terminate on one
// host, the serverless steady state. Exercises VF recycling, DMA
// unmap/unpin, fastiovd state teardown, and — critically — physical-frame
// reuse across tenants: wave k+1's containers are handed wave k's dirty
// frames, and the zeroing policy is all that stands between tenants.
#ifndef SRC_EXPERIMENTS_CHURN_EXPERIMENT_H_
#define SRC_EXPERIMENTS_CHURN_EXPERIMENT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/config/cost_model.h"
#include "src/container/stack_config.h"
#include "src/stats/summary.h"
#include "src/workload/serverless.h"

namespace fastiov {

struct ChurnOptions {
  int waves = 3;
  int concurrency_per_wave = 50;
  uint64_t seed = 42;
  HostSpec host;
  CostModel cost;
  std::optional<ServerlessApp> app;
};

struct ChurnResult {
  StackConfig config;
  // Startup time of each wave's containers (warm waves reuse dirty frames).
  std::vector<Summary> wave_startup;
  Summary all_startup;
  uint64_t residue_reads = 0;
  uint64_t corruptions = 0;
  uint64_t pages_zeroed = 0;
  // Frames that were recycled at least once across waves.
  uint64_t frames_reused = 0;
};

ChurnResult RunChurnExperiment(const StackConfig& config, const ChurnOptions& options);

}  // namespace fastiov

#endif  // SRC_EXPERIMENTS_CHURN_EXPERIMENT_H_
