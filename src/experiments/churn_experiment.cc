#include "src/experiments/churn_experiment.h"

#include <unordered_set>

#include "src/container/host.h"
#include "src/container/runtime.h"
#include "src/simcore/simulation.h"

namespace fastiov {
namespace {

Task RunWaves(Simulation& sim, Host& host, ContainerRuntime& runtime,
              const ChurnOptions& options, ChurnResult* result) {
  co_await host.PrepareSharedImage();
  if (host.config().cni == CniKind::kVanillaFixed || host.config().cni == CniKind::kFastIov) {
    host.PreBindVfsToVfio();
  }
  if (host.config().decoupled_zeroing) {
    host.fastiovd().StartBackgroundZeroer();
  }
  const ServerlessApp* app = options.app.has_value() ? &*options.app : nullptr;

  size_t first_instance = 0;
  for (int wave = 0; wave < options.waves; ++wave) {
    std::vector<Process> starts;
    for (int i = 0; i < options.concurrency_per_wave; ++i) {
      starts.push_back(sim.Spawn(runtime.StartContainer(app)));
      co_await sim.Delay(host.cost().crictl_dispatch_gap);
    }
    co_await WaitAll(std::move(starts));

    // Collect the wave's startup times.
    Summary wave_summary;
    const auto& instances = runtime.instances();
    for (size_t i = first_instance; i < instances.size(); ++i) {
      wave_summary.AddTime(
          host.timeline().Container(instances[i]->timeline_id).StartupTime());
    }
    result->wave_startup.push_back(wave_summary);

    // Terminate the wave, returning every frame (dirty) to the allocator.
    std::vector<Process> stops;
    for (size_t i = first_instance; i < instances.size(); ++i) {
      stops.push_back(sim.Spawn(runtime.StopContainer(*instances[i])));
    }
    co_await WaitAll(std::move(stops));
    first_instance = instances.size();
  }
  host.fastiovd().StopBackgroundZeroer();
}

}  // namespace

ChurnResult RunChurnExperiment(const StackConfig& config, const ChurnOptions& options) {
  Simulation sim(options.seed);
  Host host(sim, options.host, options.cost, config);
  ContainerRuntime runtime(host);

  ChurnResult result;
  result.config = config;
  sim.Spawn(RunWaves(sim, host, runtime, options, &result), "churn");
  sim.Run();

  result.all_startup = host.timeline().StartupSummary();
  result.residue_reads = runtime.TotalResidueReads();
  result.corruptions = runtime.TotalCorruptions();
  result.pages_zeroed = host.pmem().total_pages_zeroed();

  result.frames_reused = host.pmem().reused_allocations();
  return result;
}

}  // namespace fastiov
