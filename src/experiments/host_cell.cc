#include "src/experiments/host_cell.h"

#include <stdexcept>
#include <utility>
#include <vector>

#include "src/simcore/arena.h"

namespace fastiov {
namespace {

// Accumulate the FramePool counter movement across one execution slice.
void Accumulate(const FramePool::Stats& before, uint64_t* allocs, uint64_t* frees,
                uint64_t* upstream) {
  const FramePool::Stats after = FramePool::ThreadStats();
  *allocs += after.allocs - before.allocs;
  *frees += after.frees - before.frees;
  *upstream += after.upstream_allocs - before.upstream_allocs;
}

}  // namespace

HostCell::HostCell(const StackConfig& config, const ExperimentOptions& options)
    : config_(config), options_(options) {}

HostCell::~HostCell() {
  // Normally a no-op: CellEnd (or CellAbandon) already tore everything down
  // on the owning thread. Only a cell that never ran reaches here with live
  // state.
  Teardown();
}

Task HostCell::BeginHostServices() {
  Host& host = *host_;
  co_await host.PrepareSharedImage();
  if (host.config().cni == CniKind::kVanillaFixed || host.config().cni == CniKind::kFastIov) {
    host.PreBindVfsToVfio();
  }
  if (host.config().decoupled_zeroing) {
    host.fastiovd().StartBackgroundZeroer();
  }
}

// Root orchestration: mirrors `crictl` concurrently invoking N containers
// (§3.1), with the small dispatch stagger a real client exhibits.
Task HostCell::Orchestrate() {
  Simulation& sim = *sim_;
  Host& host = *host_;
  co_await BeginHostServices();
  const ServerlessApp* app = options_.app.has_value() ? &*options_.app : nullptr;
  const ArrivalSchedule schedule =
      ArrivalSchedule::Generate(options_.arrival, options_.concurrency,
                                options_.arrival_rate_per_s, host.cost().crictl_dispatch_gap,
                                sim.rng());
  std::vector<Process> containers;
  containers.reserve(options_.concurrency);
  for (int i = 0; i < options_.concurrency; ++i) {
    if (schedule.times[i] > sim.Now()) {
      co_await sim.Delay(schedule.times[i] - sim.Now());
    }
    containers.push_back(sim.Spawn(runtime_->StartContainer(app), "container"));
  }
  co_await WaitAll(std::move(containers));
  host.fastiovd().StopBackgroundZeroer();
}

void HostCell::CellBegin(CellPort* port) {
  // Fleet hosts are independent; the cluster layer's ClusterHostCell talks
  // to its control-plane cell through this port.
  port_ = port;
  const FramePool::Stats before = FramePool::ThreadStats();
  sim_.emplace(options_.seed, options_.scheduler);
  // Each container keeps a handful of events outstanding (its own step plus
  // zeroer/timer wakeups); 16 per container absorbs the burst peak without
  // the queue ever growing mid-run.
  sim_->ReserveEvents(static_cast<size_t>(options_.concurrency) * 16);
  if (options_.fault_plan.has_value()) {
    injector_.emplace(*options_.fault_plan);
    sim_->set_fault_injector(&*injector_);
  }
  host_.emplace(*sim_, options_.host, options_.cost, config_);
  // Before any container registers a lane, so the sampling decision covers
  // every container from id 0.
  host_->timeline().set_span_sample_limit(options_.timeline_span_sample);
  if (options_.collect_metrics) {
    // Before any container starts, so every lock acquisition is observed.
    host_->EnableObservability();
  }
  runtime_.emplace(*host_);
  Process root = sim_->Spawn(RootTask(), "orchestrator");
  (void)root;
  Accumulate(before, &arena_.allocs, &arena_.frees, &arena_.upstream_allocs);
}

void HostCell::ExecuteWindow(SimTime horizon) {
  const FramePool::Stats before = FramePool::ThreadStats();
  sim_->RunWindow(horizon);
  Accumulate(before, &arena_.allocs, &arena_.frees, &arena_.upstream_allocs);
}

void HostCell::CellEnd() {
  CollectResult();
  Teardown();
}

void HostCell::CellAbandon() noexcept {
  Teardown();
}

void HostCell::RunStandalone() {
  CellBegin(nullptr);
  try {
    ExecuteWindow(SimTime::Max());
  } catch (...) {
    CellAbandon();
    throw;
  }
  CellEnd();
}

void HostCell::CollectResult() {
  Host& host = *host_;
  ContainerRuntime& runtime = *runtime_;
  Simulation& sim = *sim_;

  ExperimentResult result;
  result.config = config_;
  result.options = options_;
  result.timeline = host.timeline();
  result.startup = host.timeline().StartupSummary();
  result.task_completion = host.timeline().TaskCompletionSummary();
  for (const auto& lane : host.timeline().containers()) {
    result.vf_related.AddTime(VfRelatedTime(lane));
  }
  result.residue_reads = runtime.TotalResidueReads();
  result.corruptions = runtime.TotalCorruptions();
  result.devset_lock_contention = host.devset().lock_policy().contention_count();
  result.pages_zeroed = host.pmem().total_pages_zeroed();
  result.fault_zeroed_pages = host.fastiovd().fault_zeroed_pages();
  result.background_zeroed_pages = host.fastiovd().background_zeroed_pages();
  result.local_allocations = host.pmem().local_allocations();
  result.remote_allocations = host.pmem().remote_allocations();
  result.events_processed = sim.num_events_processed();
  if (injector_.has_value()) {
    result.aborted_containers = runtime.AbortedContainers();
    result.fault_stats = FaultStatsReport::FromInjector(*injector_);
    result.fault_events = injector_->trace_events();
  }
  if (ObservabilityHub* obs = host.observability()) {
    result.blocked_time = BuildBlockedTimeReport(obs->blocked, host.timeline());
    // Fold the run's headline counters and distributions into the registry
    // so one export surface carries them all.
    MetricsRegistry& m = obs->metrics;
    m.SetCounter("runtime.residue_reads", result.residue_reads);
    m.SetCounter("runtime.corruptions", result.corruptions);
    m.SetCounter("runtime.aborted_containers", result.aborted_containers);
    m.SetCounter("vfio.devset.lock_contention", result.devset_lock_contention);
    m.SetCounter("vfio.devset.opens", host.devset().opens_performed());
    m.SetCounter("mem.pages_zeroed", result.pages_zeroed);
    m.SetCounter("mem.local_allocations", result.local_allocations);
    m.SetCounter("mem.remote_allocations", result.remote_allocations);
    m.SetCounter("fastiovd.fault_zeroed_pages", result.fault_zeroed_pages);
    m.SetCounter("fastiovd.background_zeroed_pages", result.background_zeroed_pages);
    m.SetGauge("mem.free_pages", static_cast<double>(host.pmem().free_pages()));
    m.SetGauge("iommu.mapped_pages", static_cast<double>(host.iommu().total_mapped_pages()));
    m.SetGauge("nic.vfs_in_use", static_cast<double>(host.nic().vfs_in_use()));
    m.MergeSummary("startup.seconds", result.startup);
    m.MergeSummary("startup.vf_related_seconds", result.vf_related);
    if (!result.task_completion.Empty()) {
      m.MergeSummary("task.completion_seconds", result.task_completion);
    }
    for (size_t i = 0; i < obs->lock_stats.size(); ++i) {
      const LockStats& lock = obs->lock_stats.at(i);
      m.SetCounter("lock." + lock.name() + ".acquisitions", lock.acquisitions());
      m.SetCounter("lock." + lock.name() + ".contended", lock.contended());
      m.MergeSummary("lock." + lock.name() + ".wait_seconds", lock.wait_seconds());
    }
    // Engine self-observability: event throughput, arena pool traffic, and
    // (under the calendar policy) queue-tier occupancy. Only run-deterministic
    // counters go into the registry — warm-pool state (pool hits, slab
    // carves) varies with what previously ran on this thread, and registry
    // contents must be repeatable byte-for-byte (MetricsRunIsRepeatable).
    // The arena numbers are the per-slice deltas attributed to this cell, so
    // they are identical whether the cell ran standalone, interleaved with
    // siblings on one worker, or alone on its own thread. Benchmarks read
    // the full warm/cold picture from FramePool::ThreadStats.
    m.SetCounter("sim.events_processed", result.events_processed);
    m.SetCounter("sim.arena.allocs", arena_.allocs);
    m.SetCounter("sim.arena.frees", arena_.frees);
    m.SetCounter("sim.arena.upstream_allocs", arena_.upstream_allocs);
    if (const CalendarQueueStats* cal = sim.calendar_stats()) {
      m.SetCounter("sim.calendar.immediate_pushes", cal->immediate_pushes);
      m.SetCounter("sim.calendar.due_pushes", cal->due_pushes);
      m.SetCounter("sim.calendar.ring_pushes", cal->ring_pushes);
      m.SetCounter("sim.calendar.overflow_pushes", cal->overflow_pushes);
      m.SetCounter("sim.calendar.windows_advanced", cal->windows_advanced);
      m.SetCounter("sim.calendar.rebuilds", cal->rebuilds);
      m.SetGauge("sim.calendar.bucket_ns", static_cast<double>(cal->bucket_ns));
    }
    result.observability = host.observability_ptr();
  }
  result_ = std::move(result);
  collected_ = true;
}

void HostCell::Teardown() {
  runtime_.reset();
  host_.reset();
  injector_.reset();
  sim_.reset();
}

ExperimentResult HostCell::TakeResult() {
  if (!collected_) {
    throw std::logic_error("HostCell::TakeResult: cell has not finished");
  }
  collected_ = false;
  return std::move(result_);
}

}  // namespace fastiov
