#include "src/experiments/sweep.h"

#include <algorithm>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

namespace fastiov {
namespace {

// One worker's task queue. The owner pops from the front; thieves take from
// the back, so an owner working through its own deal order collides with a
// thief only on the last item.
struct WorkerQueue {
  std::mutex mu;
  std::deque<size_t> items;

  bool PopFront(size_t* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (items.empty()) {
      return false;
    }
    *out = items.front();
    items.pop_front();
    return true;
  }

  bool StealBack(size_t* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (items.empty()) {
      return false;
    }
    *out = items.back();
    items.pop_back();
    return true;
  }
};

}  // namespace

int DefaultJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ResolveJobs(int jobs) { return jobs <= 0 ? DefaultJobs() : jobs; }

int ClampJobsToHardware(int jobs) {
  return std::min(ResolveJobs(jobs), DefaultJobs());
}

void ParallelFor(size_t n, int jobs, const std::function<void(size_t)>& body) {
  if (n == 0) {
    return;
  }
  jobs = ResolveJobs(jobs);
  const size_t workers = std::min(n, static_cast<size_t>(jobs));
  if (workers <= 1) {
    // Sequential fast path: same code the pre-sweep binaries ran — no
    // threads, exceptions propagate straight out of the loop.
    for (size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }

  // All work is dealt up front (nothing spawns new tasks), so "every queue
  // is empty" is a sound termination condition for the stealing loop.
  std::vector<std::unique_ptr<WorkerQueue>> queues;
  queues.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    queues.push_back(std::make_unique<WorkerQueue>());
  }
  for (size_t i = 0; i < n; ++i) {
    queues[i % workers]->items.push_back(i);
  }

  // Per-index slots keep error reporting deterministic: whatever the thread
  // timing, the caller sees the exception of the lowest failing index.
  std::vector<std::exception_ptr> errors(n);

  auto worker_loop = [&](size_t self) {
    size_t index = 0;
    for (;;) {
      bool found = queues[self]->PopFront(&index);
      for (size_t off = 1; !found && off < workers; ++off) {
        found = queues[(self + off) % workers]->StealBack(&index);
      }
      if (!found) {
        return;
      }
      try {
        body(index);
      } catch (...) {
        errors[index] = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) {
    threads.emplace_back(worker_loop, w);
  }
  worker_loop(0);
  for (std::thread& t : threads) {
    t.join();
  }

  for (const std::exception_ptr& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
}

std::vector<SweepCell> CrossProduct(const std::vector<StackConfig>& configs,
                                    const ExperimentOptions& base,
                                    const std::vector<uint64_t>& seeds) {
  std::vector<SweepCell> cells;
  cells.reserve(configs.size() * seeds.size());
  for (const StackConfig& config : configs) {
    for (uint64_t seed : seeds) {
      SweepCell cell{config, base};
      cell.options.seed = seed;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

std::vector<ExperimentResult> RunSweep(const std::vector<SweepCell>& cells, int jobs) {
  std::vector<ExperimentResult> results(cells.size());
  ParallelFor(cells.size(), jobs, [&](size_t i) {
    results[i] = RunStartupExperiment(cells[i].config, cells[i].options);
  });
  return results;
}

void RunSweepStream(const std::vector<SweepCell>& cells, int jobs,
                    const SweepResultSink& sink) {
  std::mutex mu;
  std::map<size_t, ExperimentResult> parked;
  size_t next = 0;
  ParallelFor(cells.size(), jobs, [&](size_t i) {
    ExperimentResult result = RunStartupExperiment(cells[i].config, cells[i].options);
    std::lock_guard<std::mutex> lock(mu);
    parked.emplace(i, std::move(result));
    while (!parked.empty() && parked.begin()->first == next) {
      auto it = parked.begin();
      sink(it->first, std::move(it->second));
      parked.erase(it);
      ++next;
    }
  });
}

}  // namespace fastiov
