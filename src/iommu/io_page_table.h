// Multi-level I/O page table (VT-d style).
//
// A 4-level radix table with 9 bits per level over 4 KiB leaves; 2 MiB
// hugepage mappings terminate one level early, exactly like real second-
// level translation. The table tracks how many intermediate table pages it
// allocates, which feeds the per-entry mapping cost in the DMA-map path.
#ifndef SRC_IOMMU_IO_PAGE_TABLE_H_
#define SRC_IOMMU_IO_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "src/mem/page.h"
#include "src/mem/page_run.h"

namespace fastiov {

// Result of a translation.
struct IoTranslation {
  PageId page = kInvalidPage;
  uint64_t page_size = 0;   // size of the mapping that matched
  uint64_t offset = 0;      // offset of the IOVA within that mapping
};

class IoPageTable {
 public:
  static constexpr int kLevels = 4;
  static constexpr int kBitsPerLevel = 9;
  static constexpr uint64_t kLeafShift = 12;  // 4 KiB
  static constexpr uint64_t kHugeShift = 21;  // 2 MiB

  IoPageTable();
  ~IoPageTable();
  IoPageTable(const IoPageTable&) = delete;
  IoPageTable& operator=(const IoPageTable&) = delete;

  // Maps [iova, iova + page_size) -> frame. page_size must be 4 KiB or
  // 2 MiB and iova must be aligned to it. Returns false if any part of the
  // range is already mapped.
  bool Map(uint64_t iova, PageId frame, uint64_t page_size);

  // Maps run.count contiguous frames as IOVA-consecutive page_size mappings
  // starting at iova, installing all leaf entries that share a leaf-level
  // node in one descent (intermediate nodes are allocated once per 2 MiB of
  // IOVA for 4 KiB leaves, once per 1 GiB for huge leaves). Observationally
  // equivalent to calling Map() per page — including the prefix that stays
  // mapped when a conflict makes it return false.
  bool MapRange(uint64_t iova, PageRun run, uint64_t page_size);

  // Maps a whole extent list at consecutive IOVAs starting at iova — the
  // shape VfioContainer::MapDma produces. Equivalent to MapRange per run at
  // the accumulated IOVA offsets, but the leaf-level descent is cached
  // across runs, so short extents that share a leaf node (common under
  // fragmentation) do not re-walk the upper levels.
  bool MapExtents(uint64_t iova, std::span<const PageRun> runs, uint64_t page_size);

  // Removes the mapping that covers `iova`, reclaiming intermediate table
  // pages that become empty. Returns false if unmapped.
  bool Unmap(uint64_t iova);

  // Removes num_pages consecutive page_size mappings starting at iova,
  // clearing all leaves that share a leaf-level node in one descent and
  // reclaiming empty intermediate nodes once per node instead of once per
  // page. Equivalent to calling Unmap() per iova stride; returns the number
  // of mappings removed (absent entries are skipped, as per-page Unmap
  // calls returning false would be).
  uint64_t UnmapRange(uint64_t iova, uint64_t num_pages, uint64_t page_size);

  // Walks the table.
  std::optional<IoTranslation> Translate(uint64_t iova) const;

  uint64_t num_mappings() const { return num_mappings_; }
  uint64_t num_table_pages() const { return num_table_pages_; }

 private:
  static constexpr uint64_t kFanout = 1ull << kBitsPerLevel;

  struct Node;
  struct NodeChildren {
    std::array<std::unique_ptr<Node>, kFanout> slot;
  };
  // Bitmap + SoA layout: an entry is one bit in `present` (plus one in
  // `leaf` to disambiguate interior pointers from translations) and, for
  // leaves, a packed 32-bit frame number. Child pointers live out of line
  // and are only allocated once a node gains its first interior entry, so a
  // leaf-level node costs 4 bytes of write traffic per installed entry and
  // emptiness / conflict / subtree checks run word-wide over the bitmaps.
  // Frame slots under cleared bits are never read, so `frames` stays
  // deliberately uninitialized (the nodes are built with
  // make_unique_for_overwrite).
  struct Node {
    std::array<uint64_t, kFanout / 64> present{};
    std::array<uint64_t, kFanout / 64> leaf{};
    std::array<uint32_t, kFanout> frames;    // valid only under present & leaf
    std::unique_ptr<NodeChildren> children;  // allocated on first interior entry
  };

  static int IndexAt(uint64_t iova, int level);
  Node* EnsureChild(Node* node, uint64_t idx);

  std::unique_ptr<Node> root_;
  uint64_t num_mappings_ = 0;
  uint64_t num_table_pages_ = 1;  // the root
};

}  // namespace fastiov

#endif  // SRC_IOMMU_IO_PAGE_TABLE_H_
