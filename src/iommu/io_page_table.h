// Multi-level I/O page table (VT-d style).
//
// A 4-level radix table with 9 bits per level over 4 KiB leaves; 2 MiB
// hugepage mappings terminate one level early, exactly like real second-
// level translation. The table tracks how many intermediate table pages it
// allocates, which feeds the per-entry mapping cost in the DMA-map path.
#ifndef SRC_IOMMU_IO_PAGE_TABLE_H_
#define SRC_IOMMU_IO_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "src/mem/page.h"

namespace fastiov {

// Result of a translation.
struct IoTranslation {
  PageId page = kInvalidPage;
  uint64_t page_size = 0;   // size of the mapping that matched
  uint64_t offset = 0;      // offset of the IOVA within that mapping
};

class IoPageTable {
 public:
  static constexpr int kLevels = 4;
  static constexpr int kBitsPerLevel = 9;
  static constexpr uint64_t kLeafShift = 12;  // 4 KiB
  static constexpr uint64_t kHugeShift = 21;  // 2 MiB

  IoPageTable();
  ~IoPageTable();
  IoPageTable(const IoPageTable&) = delete;
  IoPageTable& operator=(const IoPageTable&) = delete;

  // Maps [iova, iova + page_size) -> frame. page_size must be 4 KiB or
  // 2 MiB and iova must be aligned to it. Returns false if any part of the
  // range is already mapped.
  bool Map(uint64_t iova, PageId frame, uint64_t page_size);

  // Removes the mapping that covers `iova`, reclaiming intermediate table
  // pages that become empty. Returns false if unmapped.
  bool Unmap(uint64_t iova);

  // Walks the table.
  std::optional<IoTranslation> Translate(uint64_t iova) const;

  uint64_t num_mappings() const { return num_mappings_; }
  uint64_t num_table_pages() const { return num_table_pages_; }

 private:
  struct Node;
  struct Entry {
    // Exactly one of child / frame is meaningful; `is_leaf` disambiguates.
    std::unique_ptr<Node> child;
    PageId frame = kInvalidPage;
    bool present = false;
    bool is_leaf = false;
  };
  struct Node {
    std::array<Entry, 1ull << kBitsPerLevel> entries;
  };

  static int IndexAt(uint64_t iova, int level);

  std::unique_ptr<Node> root_;
  uint64_t num_mappings_ = 0;
  uint64_t num_table_pages_ = 1;  // the root
};

}  // namespace fastiov

#endif  // SRC_IOMMU_IO_PAGE_TABLE_H_
