#include "src/iommu/io_page_table.h"

#include <bit>
#include <cassert>

#include "src/config/cost_model.h"

namespace fastiov {

namespace {

using Bitmap = std::array<uint64_t, (1ull << IoPageTable::kBitsPerLevel) / 64>;

inline bool TestBit(const Bitmap& b, uint64_t i) { return (b[i >> 6] >> (i & 63)) & 1; }
inline void SetBit(Bitmap& b, uint64_t i) { b[i >> 6] |= 1ull << (i & 63); }
inline void ClearBit(Bitmap& b, uint64_t i) { b[i >> 6] &= ~(1ull << (i & 63)); }

// Mask of the bits of word `w` that fall inside [begin, end).
inline uint64_t RangeMask(uint64_t w, uint64_t begin, uint64_t end) {
  uint64_t mask = ~0ull;
  if (w == begin >> 6) {
    mask &= ~0ull << (begin & 63);
  }
  if (w == (end - 1) >> 6) {
    const uint64_t top = end & 63;
    if (top != 0) {
      mask &= ~(~0ull << top);
    }
  }
  return mask;
}

inline void SetBitRange(Bitmap& b, uint64_t begin, uint64_t end) {
  for (uint64_t w = begin >> 6; w <= (end - 1) >> 6; ++w) {
    b[w] |= RangeMask(w, begin, end);
  }
}

inline void ClearBitRange(Bitmap& b, uint64_t begin, uint64_t end) {
  for (uint64_t w = begin >> 6; w <= (end - 1) >> 6; ++w) {
    b[w] &= ~RangeMask(w, begin, end);
  }
}

inline bool AnyInRange(const Bitmap& b, uint64_t begin, uint64_t end) {
  for (uint64_t w = begin >> 6; w <= (end - 1) >> 6; ++w) {
    if (b[w] & RangeMask(w, begin, end)) {
      return true;
    }
  }
  return false;
}

inline uint64_t CountInRange(const Bitmap& b, uint64_t begin, uint64_t end) {
  uint64_t count = 0;
  for (uint64_t w = begin >> 6; w <= (end - 1) >> 6; ++w) {
    count += static_cast<uint64_t>(std::popcount(b[w] & RangeMask(w, begin, end)));
  }
  return count;
}

inline bool AllClear(const Bitmap& b) {
  for (uint64_t w : b) {
    if (w != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

IoPageTable::IoPageTable() : root_(std::make_unique<Node>()) {}
IoPageTable::~IoPageTable() = default;

// Level 0 is the root. A 4 KiB leaf lives at level 3; a 2 MiB leaf at
// level 2.
int IoPageTable::IndexAt(uint64_t iova, int level) {
  const int shift = static_cast<int>(kLeafShift) + (kLevels - 1 - level) * kBitsPerLevel;
  return static_cast<int>((iova >> shift) & (kFanout - 1));
}

IoPageTable::Node* IoPageTable::EnsureChild(Node* node, uint64_t idx) {
  if (node->children == nullptr) {
    node->children = std::make_unique<NodeChildren>();
  }
  std::unique_ptr<Node>& slot = node->children->slot[idx];
  slot = std::make_unique_for_overwrite<Node>();
  SetBit(node->present, idx);
  ++num_table_pages_;
  return slot.get();
}

bool IoPageTable::Map(uint64_t iova, PageId frame, uint64_t page_size) {
  assert(page_size == kSmallPageSize || page_size == kHugePageSize);
  assert(iova % page_size == 0 && "IOVA must be aligned to the mapping size");
  assert(frame <= UINT32_MAX && "frame number exceeds the packed-entry width");
  const int leaf_level = (page_size == kHugePageSize) ? kLevels - 2 : kLevels - 1;

  Node* node = root_.get();
  for (int level = 0; level < leaf_level; ++level) {
    const uint64_t idx = static_cast<uint64_t>(IndexAt(iova, level));
    if (TestBit(node->present, idx)) {
      if (TestBit(node->leaf, idx)) {
        return false;  // a larger mapping already covers this range
      }
      node = node->children->slot[idx].get();
    } else {
      node = EnsureChild(node, idx);
    }
  }
  const uint64_t idx = static_cast<uint64_t>(IndexAt(iova, leaf_level));
  if (TestBit(node->present, idx)) {
    return false;
  }
  SetBit(node->present, idx);
  SetBit(node->leaf, idx);
  node->frames[idx] = static_cast<uint32_t>(frame);
  ++num_mappings_;
  return true;
}

bool IoPageTable::MapRange(uint64_t iova, PageRun run, uint64_t page_size) {
  assert(page_size == kSmallPageSize || page_size == kHugePageSize);
  assert(iova % page_size == 0 && "IOVA must be aligned to the mapping size");
  assert(run.first + run.count <= UINT32_MAX + 1ull &&
         "frame number exceeds the packed-entry width");
  const int leaf_level = (page_size == kHugePageSize) ? kLevels - 2 : kLevels - 1;

  uint64_t remaining = run.count;
  PageId frame = run.first;
  uint64_t cur = iova;
  while (remaining > 0) {
    // One descent serves every leaf sharing this leaf-level node.
    Node* node = root_.get();
    for (int level = 0; level < leaf_level; ++level) {
      const uint64_t idx = static_cast<uint64_t>(IndexAt(cur, level));
      if (TestBit(node->present, idx)) {
        if (TestBit(node->leaf, idx)) {
          return false;  // a larger mapping already covers this range
        }
        node = node->children->slot[idx].get();
      } else {
        node = EnsureChild(node, idx);
      }
    }
    const uint64_t idx = static_cast<uint64_t>(IndexAt(cur, leaf_level));
    const uint64_t span = std::min(remaining, kFanout - idx);
    if (AnyInRange(node->present, idx, idx + span)) {
      // Like per-page Map: entries before the conflict stay installed, the
      // conflicting one fails the whole call.
      for (uint64_t i = 0; !TestBit(node->present, idx + i); ++i) {
        SetBit(node->present, idx + i);
        SetBit(node->leaf, idx + i);
        node->frames[idx + i] = static_cast<uint32_t>(frame + i);
        ++num_mappings_;
      }
      return false;
    }
    // Conflict-free group: install word-wide.
    SetBitRange(node->present, idx, idx + span);
    SetBitRange(node->leaf, idx, idx + span);
    for (uint64_t i = 0; i < span; ++i) {
      node->frames[idx + i] = static_cast<uint32_t>(frame + i);
    }
    num_mappings_ += span;
    remaining -= span;
    frame += span;
    cur += span * page_size;
  }
  return true;
}

bool IoPageTable::MapExtents(uint64_t iova, std::span<const PageRun> runs, uint64_t page_size) {
  assert(page_size == kSmallPageSize || page_size == kHugePageSize);
  assert(iova % page_size == 0 && "IOVA must be aligned to the mapping size");
  const int leaf_level = (page_size == kHugePageSize) ? kLevels - 2 : kLevels - 1;
  // IOVA bits above the leaf-level index identify the leaf node.
  const int group_shift =
      static_cast<int>(kLeafShift) + (kLevels - leaf_level) * kBitsPerLevel;

  uint64_t cur = iova;
  uint64_t cached_group = ~0ull;
  Node* cached_node = nullptr;
  for (const PageRun& run : runs) {
    assert(run.first + run.count <= UINT32_MAX + 1ull &&
           "frame number exceeds the packed-entry width");
    uint64_t remaining = run.count;
    PageId frame = run.first;
    while (remaining > 0) {
      Node* node;
      const uint64_t group = cur >> group_shift;
      if (group == cached_group) {
        node = cached_node;
      } else {
        node = root_.get();
        for (int level = 0; level < leaf_level; ++level) {
          const uint64_t i = static_cast<uint64_t>(IndexAt(cur, level));
          if (TestBit(node->present, i)) {
            if (TestBit(node->leaf, i)) {
              return false;  // a larger mapping already covers this range
            }
            node = node->children->slot[i].get();
          } else {
            node = EnsureChild(node, i);
          }
        }
        cached_group = group;
        cached_node = node;
      }
      const uint64_t idx = static_cast<uint64_t>(IndexAt(cur, leaf_level));
      const uint64_t span = std::min(remaining, kFanout - idx);
      if (AnyInRange(node->present, idx, idx + span)) {
        for (uint64_t i = 0; !TestBit(node->present, idx + i); ++i) {
          SetBit(node->present, idx + i);
          SetBit(node->leaf, idx + i);
          node->frames[idx + i] = static_cast<uint32_t>(frame + i);
          ++num_mappings_;
        }
        return false;
      }
      SetBitRange(node->present, idx, idx + span);
      SetBitRange(node->leaf, idx, idx + span);
      for (uint64_t i = 0; i < span; ++i) {
        node->frames[idx + i] = static_cast<uint32_t>(frame + i);
      }
      num_mappings_ += span;
      remaining -= span;
      frame += span;
      cur += span * page_size;
    }
  }
  return true;
}

bool IoPageTable::Unmap(uint64_t iova) {
  // Walk down, remembering the path so empty intermediate nodes can be
  // reclaimed on the way back up (real IOMMU drivers free page-table pages
  // the same way when a domain unmaps its last entry in a subtree).
  Node* path[kLevels] = {};
  uint64_t index[kLevels] = {};
  Node* node = root_.get();
  int leaf_level = -1;
  for (int level = 0; level < kLevels; ++level) {
    const uint64_t idx = static_cast<uint64_t>(IndexAt(iova, level));
    if (!TestBit(node->present, idx)) {
      return false;
    }
    path[level] = node;
    index[level] = idx;
    if (TestBit(node->leaf, idx)) {
      leaf_level = level;
      break;
    }
    node = node->children->slot[idx].get();
  }
  if (leaf_level < 0) {
    return false;
  }
  ClearBit(path[leaf_level]->present, index[leaf_level]);
  ClearBit(path[leaf_level]->leaf, index[leaf_level]);
  --num_mappings_;
  // Reclaim now-empty intermediate nodes bottom-up (never the root).
  for (int level = leaf_level; level > 0; --level) {
    if (!AllClear(path[level]->present)) {
      break;
    }
    Node* parent = path[level - 1];
    parent->children->slot[index[level - 1]].reset();
    ClearBit(parent->present, index[level - 1]);
    --num_table_pages_;
  }
  return true;
}

uint64_t IoPageTable::UnmapRange(uint64_t iova, uint64_t num_pages, uint64_t page_size) {
  assert(page_size == kSmallPageSize || page_size == kHugePageSize);
  assert(iova % page_size == 0 && "IOVA must be aligned to the mapping size");
  const int target_level = (page_size == kHugePageSize) ? kLevels - 2 : kLevels - 1;

  uint64_t removed = 0;
  uint64_t remaining = num_pages;
  uint64_t cur = iova;
  while (remaining > 0) {
    const uint64_t idx = static_cast<uint64_t>(IndexAt(cur, target_level));
    const uint64_t span = std::min(remaining, kFanout - idx);
    // Descend once per group, remembering the chain for reclaim:
    // chain[l] is the node at level l, link[l] the index in chain[l]
    // leading to chain[l+1].
    Node* chain[kLevels] = {root_.get()};
    uint64_t link[kLevels] = {};
    Node* node = root_.get();
    int depth = 0;
    bool missing = false;
    bool covered_above = false;
    for (int level = 0; level < target_level; ++level) {
      const uint64_t i = static_cast<uint64_t>(IndexAt(cur, level));
      if (!TestBit(node->present, i)) {
        // All iovas in the group share this prefix: per-page Unmap would
        // return false for each of them.
        missing = true;
        break;
      }
      if (TestBit(node->leaf, i)) {
        covered_above = true;
        break;
      }
      link[level] = i;
      node = node->children->slot[i].get();
      chain[level + 1] = node;
      depth = level + 1;
    }
    if (missing) {
      cur += span * page_size;
      remaining -= span;
      continue;
    }
    if (covered_above) {
      // A larger mapping covers the whole group (its reach is exactly one
      // leaf-level node): a per-page loop removes it at the first stride
      // and finds the rest absent.
      if (Unmap(cur)) {
        ++removed;
      }
      cur += span * page_size;
      remaining -= span;
      continue;
    }
    // Mixed granularity (4 KiB subtrees under a 2 MiB stride) falls back to
    // per-page semantics — Unmap descends into the subtree itself.
    bool has_subtree = false;
    for (uint64_t w = idx >> 6; w <= (idx + span - 1) >> 6; ++w) {
      if (node->present[w] & ~node->leaf[w] & RangeMask(w, idx, idx + span)) {
        has_subtree = true;
        break;
      }
    }
    if (has_subtree) {
      for (uint64_t i = 0; i < span; ++i) {
        if (Unmap(cur + i * page_size)) {
          ++removed;
        }
      }
      cur += span * page_size;
      remaining -= span;
      continue;
    }
    // Every present entry in the group is a leaf: clear them word-wide.
    const uint64_t cleared = CountInRange(node->present, idx, idx + span);
    ClearBitRange(node->present, idx, idx + span);
    ClearBitRange(node->leaf, idx, idx + span);
    num_mappings_ -= cleared;
    removed += cleared;
    // Reclaim empty nodes bottom-up, once for the whole group (never the
    // root). Final state matches a per-page Unmap loop: emptiness is only
    // reached at the same points, just checked once.
    for (int level = depth; level > 0; --level) {
      if (!AllClear(chain[level]->present)) {
        break;
      }
      Node* parent = chain[level - 1];
      parent->children->slot[link[level - 1]].reset();
      ClearBit(parent->present, link[level - 1]);
      --num_table_pages_;
    }
    cur += span * page_size;
    remaining -= span;
  }
  return removed;
}

std::optional<IoTranslation> IoPageTable::Translate(uint64_t iova) const {
  const Node* node = root_.get();
  for (int level = 0; level < kLevels; ++level) {
    const uint64_t idx = static_cast<uint64_t>(IndexAt(iova, level));
    if (!TestBit(node->present, idx)) {
      return std::nullopt;
    }
    if (TestBit(node->leaf, idx)) {
      const uint64_t size = (level == kLevels - 1) ? kSmallPageSize : kHugePageSize;
      return IoTranslation{static_cast<PageId>(node->frames[idx]), size, iova % size};
    }
    node = node->children->slot[idx].get();
  }
  return std::nullopt;
}

}  // namespace fastiov
