#include "src/iommu/io_page_table.h"

#include <cassert>

#include "src/config/cost_model.h"

namespace fastiov {

IoPageTable::IoPageTable() : root_(std::make_unique<Node>()) {}
IoPageTable::~IoPageTable() = default;

// Level 0 is the root. A 4 KiB leaf lives at level 3; a 2 MiB leaf at
// level 2.
int IoPageTable::IndexAt(uint64_t iova, int level) {
  const int shift = static_cast<int>(kLeafShift) + (kLevels - 1 - level) * kBitsPerLevel;
  return static_cast<int>((iova >> shift) & ((1ull << kBitsPerLevel) - 1));
}

bool IoPageTable::Map(uint64_t iova, PageId frame, uint64_t page_size) {
  assert(page_size == kSmallPageSize || page_size == kHugePageSize);
  assert(iova % page_size == 0 && "IOVA must be aligned to the mapping size");
  const int leaf_level = (page_size == kHugePageSize) ? kLevels - 2 : kLevels - 1;

  Node* node = root_.get();
  for (int level = 0; level < leaf_level; ++level) {
    Entry& e = node->entries[IndexAt(iova, level)];
    if (e.present && e.is_leaf) {
      return false;  // a larger mapping already covers this range
    }
    if (!e.present) {
      e.child = std::make_unique<Node>();
      e.present = true;
      e.is_leaf = false;
      ++num_table_pages_;
    }
    node = e.child.get();
  }
  Entry& leaf = node->entries[IndexAt(iova, leaf_level)];
  if (leaf.present) {
    return false;
  }
  leaf.present = true;
  leaf.is_leaf = true;
  leaf.frame = frame;
  ++num_mappings_;
  return true;
}

bool IoPageTable::Unmap(uint64_t iova) {
  // Walk down, remembering the path so empty intermediate nodes can be
  // reclaimed on the way back up (real IOMMU drivers free page-table pages
  // the same way when a domain unmaps its last entry in a subtree).
  Node* path[kLevels] = {};
  Entry* entries[kLevels] = {};
  Node* node = root_.get();
  int leaf_level = -1;
  for (int level = 0; level < kLevels; ++level) {
    Entry& e = node->entries[IndexAt(iova, level)];
    if (!e.present) {
      return false;
    }
    path[level] = node;
    entries[level] = &e;
    if (e.is_leaf) {
      leaf_level = level;
      break;
    }
    node = e.child.get();
  }
  if (leaf_level < 0) {
    return false;
  }
  entries[leaf_level]->present = false;
  entries[leaf_level]->frame = kInvalidPage;
  --num_mappings_;
  // Reclaim now-empty intermediate nodes bottom-up (never the root).
  for (int level = leaf_level; level > 0; --level) {
    Node* candidate = path[level];
    bool empty = true;
    for (const Entry& e : candidate->entries) {
      if (e.present) {
        empty = false;
        break;
      }
    }
    if (!empty) {
      break;
    }
    Entry* parent_entry = entries[level - 1];
    parent_entry->child.reset();
    parent_entry->present = false;
    --num_table_pages_;
  }
  return true;
}

std::optional<IoTranslation> IoPageTable::Translate(uint64_t iova) const {
  const Node* node = root_.get();
  for (int level = 0; level < kLevels; ++level) {
    const Entry& e = node->entries[IndexAt(iova, level)];
    if (!e.present) {
      return std::nullopt;
    }
    if (e.is_leaf) {
      const uint64_t size = (level == kLevels - 1) ? kSmallPageSize : kHugePageSize;
      return IoTranslation{e.frame, size, iova % size};
    }
    node = e.child.get();
  }
  return std::nullopt;
}

}  // namespace fastiov
