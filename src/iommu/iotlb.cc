#include "src/iommu/iotlb.h"

namespace fastiov {

bool IoTlb::Lookup(uint64_t iova_page) {
  auto it = map_.find(iova_page);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void IoTlb::Insert(uint64_t iova_page) {
  auto it = map_.find(iova_page);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(iova_page);
  map_[iova_page] = lru_.begin();
}

void IoTlb::Invalidate(uint64_t iova_page) {
  auto it = map_.find(iova_page);
  if (it != map_.end()) {
    lru_.erase(it->second);
    map_.erase(it);
  }
}

void IoTlb::InvalidateRange(uint64_t first_iova_page, uint64_t count) {
  if (count == 0) {
    return;
  }
  if (count >= map_.size()) {
    // Range at least as large as the cache: one scan beats `count` probes
    // (an unmap of a big DMA mapping covers millions of tags).
    for (auto it = map_.begin(); it != map_.end();) {
      if (it->first >= first_iova_page && it->first - first_iova_page < count) {
        lru_.erase(it->second);
        it = map_.erase(it);
      } else {
        ++it;
      }
    }
    return;
  }
  for (uint64_t i = 0; i < count; ++i) {
    Invalidate(first_iova_page + i);
  }
}

void IoTlb::Flush() {
  lru_.clear();
  map_.clear();
}

}  // namespace fastiov
