#include "src/iommu/iotlb.h"

namespace fastiov {

bool IoTlb::Lookup(uint64_t iova_page) {
  auto it = map_.find(iova_page);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void IoTlb::Insert(uint64_t iova_page) {
  auto it = map_.find(iova_page);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(iova_page);
  map_[iova_page] = lru_.begin();
}

void IoTlb::Invalidate(uint64_t iova_page) {
  auto it = map_.find(iova_page);
  if (it != map_.end()) {
    lru_.erase(it->second);
    map_.erase(it);
  }
}

void IoTlb::Flush() {
  lru_.clear();
  map_.clear();
}

}  // namespace fastiov
