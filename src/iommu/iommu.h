// IOMMU unit with per-guest translation domains.
//
// Each microVM gets one IommuDomain; VFIO maps the guest's memory into it
// (IOVA chosen identical to GPA, §2.2), and the NIC's DMA engine translates
// through it on every transfer.
#ifndef SRC_IOMMU_IOMMU_H_
#define SRC_IOMMU_IOMMU_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/config/cost_model.h"
#include "src/iommu/io_page_table.h"
#include "src/iommu/iotlb.h"
#include "src/stats/counter_track.h"

namespace fastiov {

class Iommu;
class Simulation;

class IommuDomain {
 public:
  explicit IommuDomain(int id) : id_(id) {}

  int id() const { return id_; }
  IoPageTable& table() { return table_; }
  const IoPageTable& table() const { return table_; }

  bool Map(uint64_t iova, PageId frame, uint64_t page_size) {
    const bool ok = table_.Map(iova, frame, page_size);
    if (ok) {
      NoteMapped(1);
    }
    return ok;
  }
  bool MapRange(uint64_t iova, PageRun run, uint64_t page_size) {
    const bool ok = table_.MapRange(iova, run, page_size);
    if (ok) {
      NoteMapped(static_cast<int64_t>(run.count));
    }
    return ok;
  }
  bool MapExtents(uint64_t iova, std::span<const PageRun> runs, uint64_t page_size) {
    const bool ok = table_.MapExtents(iova, runs, page_size);
    if (ok) {
      NoteMapped(static_cast<int64_t>(PageCountOfRuns(runs)));
    }
    return ok;
  }
  bool Unmap(uint64_t iova) {
    // Invalidate every small-page tag the mapping covers: TranslateCached
    // keys the IOTLB at 4 KiB granularity, so a 2 MiB mapping can have up
    // to 512 live tags — dropping only the base tag would leave the other
    // 511 translating through a freed entry.
    const auto t = table_.Translate(iova);
    if (t.has_value()) {
      iotlb_.InvalidateRange((iova - t->offset) / kSmallPageSize,
                             t->page_size / kSmallPageSize);
    } else {
      iotlb_.Invalidate(iova / kSmallPageSize);
    }
    const bool ok = table_.Unmap(iova);
    if (ok) {
      NoteMapped(-1);
    }
    return ok;
  }
  uint64_t UnmapRange(uint64_t iova, uint64_t num_pages, uint64_t page_size) {
    iotlb_.InvalidateRange(iova / kSmallPageSize,
                           num_pages * (page_size / kSmallPageSize));
    const uint64_t removed = table_.UnmapRange(iova, num_pages, page_size);
    NoteMapped(-static_cast<int64_t>(removed));
    return removed;
  }
  std::optional<IoTranslation> Translate(uint64_t iova) const {
    return table_.Translate(iova);
  }
  // Device-side translation through the IOTLB: hits skip the page-table
  // walk, misses walk and install the entry. Counters on the IoTlb.
  std::optional<IoTranslation> TranslateCached(uint64_t iova) {
    const uint64_t iova_page = iova / kSmallPageSize;
    if (iotlb_.Lookup(iova_page)) {
      return table_.Translate(iova);
    }
    auto result = table_.Translate(iova);
    if (result.has_value()) {
      iotlb_.Insert(iova_page);
    }
    return result;
  }
  IoTlb& iotlb() { return iotlb_; }

  // Devices currently attached (by PCI device id).
  void AttachDevice(int device_id) { devices_.push_back(device_id); }
  void DetachDevice(int device_id) { std::erase(devices_, device_id); }
  const std::vector<int>& devices() const { return devices_; }

  uint64_t translation_faults() const { return translation_faults_; }
  void CountTranslationFault() { ++translation_faults_; }

 private:
  friend class Iommu;
  void NoteMapped(int64_t delta);

  int id_;
  Iommu* parent_ = nullptr;
  IoPageTable table_;
  IoTlb iotlb_;
  std::vector<int> devices_;
  uint64_t translation_faults_ = 0;
};

class Iommu {
 public:
  IommuDomain* CreateDomain();
  void DestroyDomain(int id);
  IommuDomain* domain(int id);
  size_t num_domains() const { return domains_.size(); }

  // Unit-wide count of live IOMMU mappings (pages) across all domains.
  uint64_t total_mapped_pages() const { return total_mapped_pages_; }
  // Attaches a counter track sampled at every map/unmap (nullptr detaches).
  void InstrumentTrack(Simulation* sim, CounterTrack* track) {
    track_sim_ = sim;
    track_ = track;
  }

 private:
  friend class IommuDomain;
  void NoteMapped(int64_t delta);

  int next_id_ = 1;
  std::map<int, std::unique_ptr<IommuDomain>> domains_;
  uint64_t total_mapped_pages_ = 0;
  Simulation* track_sim_ = nullptr;
  CounterTrack* track_ = nullptr;
};

}  // namespace fastiov

#endif  // SRC_IOMMU_IOMMU_H_
