#include "src/iommu/iommu.h"

#include "src/simcore/simulation.h"

namespace fastiov {

void IommuDomain::NoteMapped(int64_t delta) {
  if (parent_ != nullptr && delta != 0) {
    parent_->NoteMapped(delta);
  }
}

void Iommu::NoteMapped(int64_t delta) {
  total_mapped_pages_ = static_cast<uint64_t>(
      static_cast<int64_t>(total_mapped_pages_) + delta);
  if (track_ != nullptr && track_sim_ != nullptr) {
    track_->Record(track_sim_->Now(), static_cast<double>(total_mapped_pages_));
  }
}

IommuDomain* Iommu::CreateDomain() {
  const int id = next_id_++;
  auto [it, inserted] = domains_.emplace(id, std::make_unique<IommuDomain>(id));
  it->second->parent_ = this;
  return it->second.get();
}

void Iommu::DestroyDomain(int id) {
  auto it = domains_.find(id);
  if (it == domains_.end()) {
    return;
  }
  // Mappings still live in the dying domain leave the unit-wide count.
  NoteMapped(-static_cast<int64_t>(it->second->table().num_mappings()));
  domains_.erase(it);
}

IommuDomain* Iommu::domain(int id) {
  auto it = domains_.find(id);
  return it == domains_.end() ? nullptr : it->second.get();
}

}  // namespace fastiov
