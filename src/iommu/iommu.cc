#include "src/iommu/iommu.h"

namespace fastiov {

IommuDomain* Iommu::CreateDomain() {
  const int id = next_id_++;
  auto [it, inserted] = domains_.emplace(id, std::make_unique<IommuDomain>(id));
  return it->second.get();
}

void Iommu::DestroyDomain(int id) { domains_.erase(id); }

IommuDomain* Iommu::domain(int id) {
  auto it = domains_.find(id);
  return it == domains_.end() ? nullptr : it->second.get();
}

}  // namespace fastiov
