// IOTLB: the IOMMU's translation cache.
//
// Real IOMMUs cache IOVA->HPA translations; ring-buffer DMA exhibits high
// locality, so hits dominate after warmup (the observation behind rIOMMU
// [44] and the IOTLB-bottleneck literature [5] the paper cites). The model
// is a plain LRU keyed by IOVA page.
#ifndef SRC_IOMMU_IOTLB_H_
#define SRC_IOMMU_IOTLB_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

namespace fastiov {

class IoTlb {
 public:
  explicit IoTlb(size_t capacity = 64) : capacity_(capacity) {}

  // True on hit (entry refreshed), false on miss.
  bool Lookup(uint64_t iova_page);

  // Installs a translation after a page-table walk.
  void Insert(uint64_t iova_page);

  // Invalidates one entry (unmap) or everything (domain flush).
  void Invalidate(uint64_t iova_page);
  // Invalidates every cached tag in [first_iova_page, first_iova_page +
  // count): a 2 MiB unmap must drop all 512 small-page tags it spans, not
  // just the base one. Large ranges scan the cache instead of probing per
  // tag.
  void InvalidateRange(uint64_t first_iova_page, uint64_t count);
  void Flush();

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  size_t capacity_;
  std::list<uint64_t> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace fastiov

#endif  // SRC_IOMMU_IOTLB_H_
