#include "src/core/fastiovd.h"

#include <cassert>

namespace fastiov {

Fastiovd::Fastiovd(Simulation& sim, CpuPool& cpu, PhysicalMemory& pmem, const CostModel& cost)
    : sim_(&sim), cpu_(&cpu), pmem_(&pmem), cost_(cost) {}

Fastiovd::~Fastiovd() = default;

void Fastiovd::RegisterInstantZeroRange(int pid, uint64_t gpa_base, uint64_t size) {
  instant_ranges_[pid].push_back(GpaRange{gpa_base, size});
}

bool Fastiovd::InInstantRange(int pid, uint64_t gpa) const {
  auto it = instant_ranges_.find(pid);
  if (it == instant_ranges_.end()) {
    return false;
  }
  for (const GpaRange& r : it->second) {
    if (gpa >= r.base && gpa < r.base + r.size) {
      return true;
    }
  }
  return false;
}

Task Fastiovd::RegisterPages(int pid, std::span<const PageRun> runs, uint64_t gpa_base) {
  const uint64_t page_size = pmem_->page_size();
  std::vector<PageRun> instant;
  uint64_t deferred = 0;
  uint64_t gpa = gpa_base;
  for (const PageRun& run : runs) {
    for (PageId id = run.first; id < run.first + run.count; ++id) {
      if (InInstantRange(pid, gpa)) {
        AppendPageToRuns(&instant, id);
      } else {
        table_[pid].insert(id);
        frame_to_pid_[id] = pid;
        pmem_->frame(id).in_lazy_table = true;
        ++deferred;
      }
      gpa += page_size;
    }
  }
  instant_zeroed_pages_ += PageCountOfRuns(instant);
  // Hash-table inserts are cheap but not free.
  co_await cpu_->Compute(cost_.fastiovd_table_insert * static_cast<double>(deferred));
  co_await pmem_->ZeroPages(instant);
}

Task Fastiovd::RegisterPages(int pid, std::span<const PageId> pages, uint64_t gpa_base) {
  const std::vector<PageRun> runs = RunsFromPages(pages);
  co_await RegisterPages(pid, std::span<const PageRun>(runs), gpa_base);
}

Task Fastiovd::OnEptFault(int pid, PageId page, bool* zeroed_here) {
  co_await cpu_->Compute(cost_.fastiovd_lookup);
  // If a background round has claimed this page, wait for its completion:
  // KVM must not insert the EPT entry while the scrub is in flight, or the
  // guest could read the not-yet-zeroed frame.
  while (scrubbing_.contains(page)) {
    std::shared_ptr<SimEvent> round = scrub_round_done_;
    co_await round->Wait();
  }
  PageFrame& frame = pmem_->frame(page);
  if (!frame.in_lazy_table) {
    co_return;
  }
  // Remove from the table *before* the (time-consuming) zeroing so a
  // concurrent scrubber round does not double-process it; the EPT entry is
  // only inserted after we return, so the guest cannot slip past us.
  frame.in_lazy_table = false;
  auto it = table_.find(pid);
  if (it != table_.end()) {
    it->second.erase(page);
  }
  frame_to_pid_.erase(page);
  co_await pmem_->ZeroPage(page);
  ++fault_zeroed_pages_;
  if (zeroed_here != nullptr) {
    *zeroed_here = true;
  }
}

void Fastiovd::StartBackgroundZeroer() {
  if (background_running_) {
    return;
  }
  background_running_ = true;
  sim_->Spawn(BackgroundLoop(), "fastiovd-zeroer");
}

Task Fastiovd::BackgroundLoop() {
  // Runs periodically while enabled; once stopped, drains the remaining
  // table back-to-back (the kernel thread finishes its scrubbing) so no
  // registered page is ever left as residue.
  while (background_running_ || !table_.empty()) {
    if (background_running_) {
      co_await sim_->Delay(cost_.background_zero_period);
    }
    // Collect up to one batch of pending pages across all VMs.
    std::vector<PageId> batch;
    for (auto& [pid, pages] : table_) {
      for (PageId id : pages) {
        batch.push_back(id);
        if (batch.size() >= cost_.background_zero_batch_pages) {
          break;
        }
      }
      if (batch.size() >= cost_.background_zero_batch_pages) {
        break;
      }
    }
    if (batch.empty()) {
      continue;
    }
    // Claim the batch, then scrub. A fault racing with this round finds the
    // page in `scrubbing_` and waits for the round-completion event.
    std::vector<PageId> claimed;
    for (PageId id : batch) {
      PageFrame& frame = pmem_->frame(id);
      if (!frame.in_lazy_table) {
        continue;
      }
      frame.in_lazy_table = false;
      auto pid_it = frame_to_pid_.find(id);
      if (pid_it != frame_to_pid_.end()) {
        auto table_it = table_.find(pid_it->second);
        if (table_it != table_.end()) {
          table_it->second.erase(id);
          if (table_it->second.empty()) {
            table_.erase(table_it);
          }
        }
        frame_to_pid_.erase(pid_it);
      }
      claimed.push_back(id);
    }
    scrubbing_.insert(claimed.begin(), claimed.end());
    scrub_round_done_ = std::make_shared<SimEvent>(*sim_);
    co_await pmem_->ZeroPages(claimed);
    for (PageId id : claimed) {
      scrubbing_.erase(id);
    }
    scrub_round_done_->Set();
    background_zeroed_pages_ += claimed.size();
  }
}

void Fastiovd::ForgetVm(int pid) {
  auto it = table_.find(pid);
  if (it != table_.end()) {
    for (PageId id : it->second) {
      pmem_->frame(id).in_lazy_table = false;
      frame_to_pid_.erase(id);
    }
    table_.erase(it);
  }
  instant_ranges_.erase(pid);
}

uint64_t Fastiovd::pending_pages(int pid) const {
  auto it = table_.find(pid);
  return it == table_.end() ? 0 : it->second.size();
}

uint64_t Fastiovd::total_pending_pages() const {
  uint64_t total = 0;
  for (const auto& [pid, pages] : table_) {
    total += pages.size();
  }
  return total;
}

}  // namespace fastiov
