// fastiovd — the portable kernel module at the heart of FastIOV (§5).
//
// Responsibilities (matching Fig. 10):
//   * owns the two-tier hash table of pages whose zeroing was deferred
//     (first tier keyed by microVM PID, second by HPA),
//   * receives pages from the modified VFIO DMA-map path (LazyZeroRegistry),
//     honoring the instant-zeroing list for hypervisor-prewritten regions,
//   * hooks the KVM EPT-violation path (EptFaultHook) to zero a page right
//     before its GPA->HPA entry is inserted,
//   * runs a background thread that scrubs leftover table entries, moving
//     zeroing work off the fault path.
#ifndef SRC_CORE_FASTIOVD_H_
#define SRC_CORE_FASTIOVD_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/simcore/sync.h"

#include "src/config/cost_model.h"
#include "src/kvm/microvm.h"
#include "src/mem/physical_memory.h"
#include "src/mem/zero_policy.h"
#include "src/simcore/simulation.h"

namespace fastiov {

class Fastiovd : public LazyZeroRegistry, public EptFaultHook {
 public:
  Fastiovd(Simulation& sim, CpuPool& cpu, PhysicalMemory& pmem, const CostModel& cost);
  ~Fastiovd() override;

  // Registers a GPA range whose pages must be zeroed instantly at DMA-map
  // time (BIOS/kernel regions the hypervisor writes before launch). Must be
  // called before the VM's DMA memory mapping.
  void RegisterInstantZeroRange(int pid, uint64_t gpa_base, uint64_t size);

  // LazyZeroRegistry: called from the VFIO DMA-map path instead of eager
  // zeroing. Pages inside an instant-zero range are scrubbed now; the rest
  // enter the two-tier table.
  Task RegisterPages(int pid, std::span<const PageRun> runs, uint64_t gpa_base) override;
  // Flat-list convenience (tests, non-contiguous callers): identical cost.
  Task RegisterPages(int pid, std::span<const PageId> pages, uint64_t gpa_base);

  // EptFaultHook: zero-on-first-access.
  Task OnEptFault(int pid, PageId page, bool* zeroed_here) override;

  // Background scrubber (one host-wide kernel thread).
  void StartBackgroundZeroer();
  void StopBackgroundZeroer() { background_running_ = false; }

  // Drops all state for a terminated microVM (pages it still had pending
  // are zeroed synchronously by the caller or recycled as residue).
  void ForgetVm(int pid);

  // --- introspection ---
  uint64_t pending_pages(int pid) const;
  uint64_t total_pending_pages() const;
  uint64_t fault_zeroed_pages() const { return fault_zeroed_pages_; }
  uint64_t background_zeroed_pages() const { return background_zeroed_pages_; }
  uint64_t instant_zeroed_pages() const { return instant_zeroed_pages_; }

 private:
  Task BackgroundLoop();
  bool InInstantRange(int pid, uint64_t gpa) const;

  Simulation* sim_;
  CpuPool* cpu_;
  PhysicalMemory* pmem_;
  const CostModel cost_;

  // Two-tier table: pid -> set of pending HPAs. Reverse index maps a frame
  // back to its pid for the O(1) fault-path lookup.
  std::unordered_map<int, std::unordered_set<PageId>> table_;
  std::unordered_map<PageId, int> frame_to_pid_;

  struct GpaRange {
    uint64_t base;
    uint64_t size;
  };
  std::unordered_map<int, std::vector<GpaRange>> instant_ranges_;

  bool background_running_ = false;
  // Pages a scrubber round has claimed but not finished zeroing. A fault on
  // such a page waits for the round's completion event — the analogue of
  // KVM waiting for fastiovd's completion notification (§5).
  std::unordered_set<PageId> scrubbing_;
  std::shared_ptr<SimEvent> scrub_round_done_;
  uint64_t fault_zeroed_pages_ = 0;
  uint64_t background_zeroed_pages_ = 0;
  uint64_t instant_zeroed_pages_ = 0;
};

}  // namespace fastiov

#endif  // SRC_CORE_FASTIOVD_H_
