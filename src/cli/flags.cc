#include "src/cli/flags.h"

#include <cstdlib>
#include <sstream>

namespace fastiov {
namespace {

bool LooksLikeFlag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

void FlagParser::AddString(const std::string& name, std::string default_value,
                           std::string help) {
  flags_[name] = Flag{Type::kString, default_value, std::move(default_value),
                      std::move(help)};
}

void FlagParser::AddInt(const std::string& name, int64_t default_value, std::string help) {
  const std::string v = std::to_string(default_value);
  flags_[name] = Flag{Type::kInt, v, v, std::move(help)};
}

void FlagParser::AddDouble(const std::string& name, double default_value, std::string help) {
  std::ostringstream os;
  os << default_value;
  flags_[name] = Flag{Type::kDouble, os.str(), os.str(), std::move(help)};
}

void FlagParser::AddBool(const std::string& name, bool default_value, std::string help) {
  const std::string v = default_value ? "true" : "false";
  flags_[name] = Flag{Type::kBool, v, v, std::move(help)};
}

bool FlagParser::SetValue(const std::string& name, const std::string& value,
                          std::string* error) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    *error = "unknown flag --" + name;
    return false;
  }
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kInt: {
      char* end = nullptr;
      std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        *error = "flag --" + name + " expects an integer, got '" + value + "'";
        return false;
      }
      break;
    }
    case Type::kDouble: {
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        *error = "flag --" + name + " expects a number, got '" + value + "'";
        return false;
      }
      break;
    }
    case Type::kBool: {
      if (value != "true" && value != "false" && value != "1" && value != "0") {
        *error = "flag --" + name + " expects true/false, got '" + value + "'";
        return false;
      }
      break;
    }
    case Type::kString:
      break;
  }
  flag.value = value;
  return true;
}

bool FlagParser::Parse(int argc, const char* const* argv, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!LooksLikeFlag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    std::string name;
    std::string value;
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        value = "true";  // bare boolean flag
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        *error = "flag --" + name + " is missing a value";
        return false;
      }
    }
    if (!SetValue(name, value, error)) {
      return false;
    }
  }
  return true;
}

std::string FlagParser::GetString(const std::string& name) const {
  return flags_.at(name).value;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  return std::strtoll(flags_.at(name).value.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name) const {
  return std::strtod(flags_.at(name).value.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name) const {
  const std::string& v = flags_.at(name).value;
  return v == "true" || v == "1";
}

void AddJobsFlag(FlagParser& parser) {
  parser.AddInt("jobs", 0,
                "worker threads for independent simulation runs "
                "(0 = all hardware threads, 1 = sequential)");
}

int GetJobsFlag(const FlagParser& parser) {
  return static_cast<int>(parser.GetInt("jobs"));
}

std::string FlagParser::HelpText(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n\nflags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")\n      " << flag.help
       << "\n";
  }
  return os.str();
}

}  // namespace fastiov
