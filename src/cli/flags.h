// A small command-line flag parser for the simulator binaries.
//
// Supports --name=value and --name value, typed access with defaults,
// --help text generation, and unknown-flag diagnostics. Deliberately tiny —
// no external dependency.
#ifndef SRC_CLI_FLAGS_H_
#define SRC_CLI_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fastiov {

class FlagParser {
 public:
  void AddString(const std::string& name, std::string default_value, std::string help);
  void AddInt(const std::string& name, int64_t default_value, std::string help);
  void AddDouble(const std::string& name, double default_value, std::string help);
  void AddBool(const std::string& name, bool default_value, std::string help);

  // Returns false (with *error set) on unknown flags, malformed values, or
  // a missing value. `--help` sets help_requested() and returns true.
  bool Parse(int argc, const char* const* argv, std::string* error);

  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  bool help_requested() const { return help_requested_; }
  // Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string HelpText(const std::string& program) const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string value;  // canonical textual form
    std::string default_value;
    std::string help;
  };
  bool SetValue(const std::string& name, const std::string& value, std::string* error);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

// Registers the standard --jobs flag shared by every sweep-capable binary
// (benches, calibrate, simbench). 0 means "all hardware threads"; 1 is the
// exact sequential code path.
void AddJobsFlag(FlagParser& parser);

// Reads back --jobs as registered by AddJobsFlag. Returns the raw value;
// resolve <= 0 to a worker count with ResolveJobs (src/experiments/sweep.h).
int GetJobsFlag(const FlagParser& parser);

}  // namespace fastiov

#endif  // SRC_CLI_FLAGS_H_
