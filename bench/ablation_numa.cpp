// Ablation: NUMA effects on concurrent startup. The testbed is a
// dual-socket server; when per-node memory runs out (high utilization),
// allocations spill to the remote socket and zeroing crosses the
// interconnect. This bench sweeps the remote penalty and compares a
// (hypothetical) single-node host.
#include "bench/bench_common.h"

using namespace fastiov;

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Ablation — NUMA: remote spillover under memory pressure",
              "120 containers x 1.5 GiB homed on socket 0 (packing policy)\n"
              "overflow the node and spill to the remote socket; remote\n"
              "zeroing pays the interconnect penalty. FastIOV dodges most of\n"
              "it by not zeroing on the startup path at all.",
              env.jobs);

  struct Row {
    double penalty;
    int nodes;
  };
  std::vector<Row> rows;
  std::vector<SweepCell> cells;
  for (double penalty : {1.0, 1.45, 2.0}) {
    for (int nodes : {1, 2}) {
      if (nodes == 1 && penalty != 1.0) {
        continue;  // penalty is meaningless on one node
      }
      for (const StackConfig& base : {StackConfig::Vanilla(), StackConfig::FastIov()}) {
        StackConfig config = base;
        config.guest_memory_bytes = 3 * kGiB / 2;
        ExperimentOptions options = DefaultOptions(120);
        options.host.numa_nodes = nodes;
        options.host.remote_zeroing_penalty = penalty;
        // A packing CPU-manager policy: all homes on socket 0, so half the
        // fleet spills to the remote socket under this memory pressure.
        options.host.numa_interleave_homes = false;
        rows.push_back({penalty, nodes});
        cells.push_back({config, options});
      }
    }
  }
  const std::vector<ExperimentResult> results = RunSweep(cells, env.jobs);

  TextTable table({"host", "stack", "avg (s)", "p99 (s)", "remote allocs"});
  for (size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    char host_label[48];
    if (rows[i].nodes == 1) {
      std::snprintf(host_label, sizeof(host_label), "1 node");
    } else {
      std::snprintf(host_label, sizeof(host_label), "2 nodes, penalty %.2fx",
                    rows[i].penalty);
    }
    table.AddRow({host_label, r.config.name, FormatSeconds(r.startup.Mean()),
                  FormatSeconds(r.startup.Percentile(99)),
                  std::to_string(r.remote_allocations)});
  }
  table.Print(std::cout);
  std::printf("\nFinding: spillover is common under a packing policy (about a third\n"
              "of all allocations go remote), but the interconnect penalty only\n"
              "shows up at the vanilla tail — with ~100 concurrent zeroers the\n"
              "aggregate DRAM bandwidth, not the per-thread rate, is the binding\n"
              "constraint, so NUMA placement is second-order for startup. FastIOV\n"
              "is flat regardless: it does not zero on the startup path at all.\n");
  return 0;
}
