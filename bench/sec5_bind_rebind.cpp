// §5: the SR-IOV CNI implementation flaw — binding each VF to the host
// network driver at container start and rebinding it to VFIO at attach —
// versus the fixed CNI that pre-binds VFIO once at host boot.
#include "bench/bench_common.h"

using namespace fastiov;

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Section 5 — The bind/rebind implementation flaw",
              "Original SR-IOV CNI vs the fixed (pre-bound, dummy-netdev) CNI.\n"
              "Paper: the fix takes 200-container startup from several minutes\n"
              "down to 16.2 s.",
              env.jobs);

  const std::vector<int> levels = {25, 50, 100, 200};
  std::vector<SweepCell> cells;
  for (int n : levels) {
    cells.push_back({StackConfig::VanillaUnfixed(), DefaultOptions(n)});
    cells.push_back({StackConfig::Vanilla(), DefaultOptions(n)});
  }
  const std::vector<ExperimentResult> results = RunSweep(cells, env.jobs);

  TextTable table({"concurrency", "unfixed avg (s)", "unfixed makespan (s)", "fixed avg (s)",
                   "speedup"});
  for (size_t i = 0; i < levels.size(); ++i) {
    const int n = levels[i];
    const ExperimentResult& unfixed = results[2 * i];
    const ExperimentResult& fixed = results[2 * i + 1];
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  unfixed.startup.Mean() / fixed.startup.Mean());
    table.AddRow({std::to_string(n), FormatSeconds(unfixed.startup.Mean()),
                  FormatSeconds(unfixed.startup.Max()), FormatSeconds(fixed.startup.Mean()),
                  speedup});
  }
  table.Print(std::cout);
  std::printf("\nEvery bind/rebind performs a serialized driver probe + device reset,\n"
              "so the unfixed CNI's makespan at 200 approaches the paper's\n"
              "\"several minutes\" while the fixed CNI stays in seconds.\n");
  return 0;
}
