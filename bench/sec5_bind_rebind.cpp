// §5: the SR-IOV CNI implementation flaw — binding each VF to the host
// network driver at container start and rebinding it to VFIO at attach —
// versus the fixed CNI that pre-binds VFIO once at host boot.
#include "bench/bench_common.h"

using namespace fastiov;

int main() {
  PrintHeader("Section 5 — The bind/rebind implementation flaw",
              "Original SR-IOV CNI vs the fixed (pre-bound, dummy-netdev) CNI.\n"
              "Paper: the fix takes 200-container startup from several minutes\n"
              "down to 16.2 s.");

  TextTable table({"concurrency", "unfixed avg (s)", "unfixed makespan (s)", "fixed avg (s)",
                   "speedup"});
  for (int n : {25, 50, 100, 200}) {
    const ExperimentOptions options = DefaultOptions(n);
    const ExperimentResult unfixed =
        RunStartupExperiment(StackConfig::VanillaUnfixed(), options);
    const ExperimentResult fixed = RunStartupExperiment(StackConfig::Vanilla(), options);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  unfixed.startup.Mean() / fixed.startup.Mean());
    table.AddRow({std::to_string(n), FormatSeconds(unfixed.startup.Mean()),
                  FormatSeconds(unfixed.startup.Max()), FormatSeconds(fixed.startup.Mean()),
                  speedup});
  }
  table.Print(std::cout);
  std::printf("\nEvery bind/rebind performs a serialized driver probe + device reset,\n"
              "so the unfixed CNI's makespan at 200 approaches the paper's\n"
              "\"several minutes\" while the fixed CNI stays in seconds.\n");
  return 0;
}
