// Ablation: P2 of Fig. 6 — fragmented small pages vs hugepages in the
// DMA-map path. The paper observes that 4 KiB pages make page *retrieval*
// a bottleneck (more, smaller batches as free memory fragments) and that
// enabling 2 MiB hugepages — standard production practice — mitigates it,
// which is why FastIOV does not target P2.
//
// Uses a reduced host (8 GiB) so 4 KiB frames stay cheap to model; the
// relative costs are what matters.
#include "bench/bench_common.h"
#include "src/vfio/vfio.h"

using namespace fastiov;

namespace {

struct MapCost {
  double seconds;
  uint64_t batches;
};

MapCost MeasureMap(uint64_t page_size, double fragmentation, uint64_t map_bytes) {
  Simulation sim(3);
  HostSpec spec;
  spec.memory_bytes = 8 * kGiB;
  CostModel cost;
  cost.jitter_sigma = 0.0;
  CpuPool cpu(sim, spec.physical_cores);
  PhysicalMemory pmem(sim, spec, cost, page_size, fragmentation);
  pmem.set_cpu(&cpu);
  Iommu iommu;
  VfioContainer container(sim, cpu, cost, pmem, iommu);
  DmaMapOptions options;
  options.pid = 1;
  options.zeroing = ZeroingMode::kNone;  // isolate retrieval + pin + map
  auto mapper = [](VfioContainer* c, DmaMapOptions o, uint64_t bytes) -> Task {
    co_await c->MapDma(0, bytes, o, nullptr);
  };
  sim.Spawn(mapper(&container, options, map_bytes));
  sim.Run();
  return MapCost{sim.Now().ToSecondsF(), pmem.total_batches_retrieved()};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Ablation — page size & fragmentation in DMA mapping (Fig. 6, P2)",
              "Retrieval/pin/map cost (zeroing excluded) of a 512 MiB guest\n"
              "RAM mapping. 4 KiB pages need 131072 operations vs 256 with\n"
              "hugepages, and fragmentation multiplies the retrieval batches.",
              env.jobs);

  struct Point {
    uint64_t page_size;
    double frag;
    const char* label;
  };
  const std::vector<Point> points = {
      {kSmallPageSize, 0.0, "4 KiB"}, {kSmallPageSize, 0.5, "4 KiB"},
      {kSmallPageSize, 0.9, "4 KiB"}, {kSmallPageSize, 1.0, "4 KiB"},
      {kHugePageSize, 0.0, "2 MiB"},  {kHugePageSize, 0.9, "2 MiB"},
  };
  const uint64_t map_bytes = 512 * kMiB;
  std::vector<MapCost> costs(points.size());
  ParallelFor(points.size(), env.jobs, [&](size_t i) {
    costs[i] = MeasureMap(points[i].page_size, points[i].frag, map_bytes);
  });

  TextTable table({"page size", "fragmentation", "map time", "retrieval batches"});
  for (size_t i = 0; i < points.size(); ++i) {
    char frag_label[16];
    std::snprintf(frag_label, sizeof(frag_label), "%.0f%%", points[i].frag * 100.0);
    table.AddRow({points[i].label, frag_label, FormatSeconds(costs[i].seconds) + " s",
                  std::to_string(costs[i].batches)});
  }
  table.Print(std::cout);
  std::printf("\nHugepages cut the page count 512x, which is why the paper treats\n"
              "P2 as solved by configuration and focuses on P3 (zeroing).\n");
  return 0;
}
