// Figure 16: serverless performance under varying concurrency (a-d),
// varying per-container resources (e-h), and a fully loaded server (i-l).
// Prints the average task-completion time and the reduction ratio (R-ratio)
// FastIOV achieves over vanilla — one section per row of panels.
#include "bench/bench_common.h"

using namespace fastiov;

namespace {

struct Point {
  double vanilla;
  double fastiov;
};

Point RunPair(const StackConfig& vanilla_cfg, const StackConfig& fast_cfg,
              const ServerlessApp& app, int concurrency) {
  ExperimentOptions options = DefaultOptions(concurrency);
  options.app = app;
  const ExperimentResult v = RunStartupExperiment(vanilla_cfg, options);
  const ExperimentResult f = RunStartupExperiment(fast_cfg, options);
  return Point{v.task_completion.Mean(), f.task_completion.Mean()};
}

std::string Cell(const Point& p) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f/%.1f (%.0f%%)", p.vanilla, p.fastiov,
                100.0 * (1.0 - p.fastiov / p.vanilla));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Figure 16 — Serverless performance: impacting factors",
              "Cells: vanilla_avg/fastiov_avg (R-ratio). Paper shapes: (a-d)\n"
              "gain grows with concurrency; (e-h) FastIOV reaps larger\n"
              "allocations; (i-l) large gains across a fully loaded server.",
              env.jobs);

  const auto apps = ServerlessApp::All();

  // --- (a-d): varying concurrency, 512 MiB / 0.5 vCPU each.
  std::printf("(a-d) varying concurrency:\n");
  {
    TextTable table({"app", "n=10", "n=50", "n=100", "n=200"});
    for (const ServerlessApp& app : apps) {
      std::vector<std::string> row{app.name};
      for (int n : {10, 50, 100, 200}) {
        row.push_back(Cell(RunPair(StackConfig::Vanilla(), StackConfig::FastIov(), app, n)));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }

  // --- (e-h): varying per-container allocation at concurrency 50; vCPU
  // scales with memory (0.5 vCPU per 512 MiB).
  std::printf("\n(e-h) varying resource allocation (concurrency 50):\n");
  {
    TextTable table({"app", "512MiB/0.5c", "1GiB/1c", "2GiB/2c"});
    for (const ServerlessApp& app : apps) {
      std::vector<std::string> row{app.name};
      for (uint64_t mem : {512 * kMiB, 1 * kGiB, 2 * kGiB}) {
        StackConfig vanilla_cfg = StackConfig::Vanilla();
        StackConfig fast_cfg = StackConfig::FastIov();
        vanilla_cfg.guest_memory_bytes = fast_cfg.guest_memory_bytes = mem;
        vanilla_cfg.vcpus = fast_cfg.vcpus = 0.5 * static_cast<double>(mem) / (512 * kMiB);
        row.push_back(Cell(RunPair(vanilla_cfg, fast_cfg, app, 50)));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }

  // --- (i-l): fully loaded server.
  std::printf("\n(i-l) fully loaded server (resources divided evenly):\n");
  {
    HostSpec spec;
    TextTable table({"app", "n=10", "n=50", "n=200"});
    for (const ServerlessApp& app : apps) {
      std::vector<std::string> row{app.name};
      for (int n : {10, 50, 200}) {
        uint64_t mem =
            static_cast<uint64_t>(static_cast<double>(spec.memory_bytes) * 0.92) / n -
            CostModel{}.image_bytes;
        mem -= mem % kHugePageSize;
        StackConfig vanilla_cfg = StackConfig::Vanilla();
        StackConfig fast_cfg = StackConfig::FastIov();
        vanilla_cfg.guest_memory_bytes = fast_cfg.guest_memory_bytes = mem;
        vanilla_cfg.vcpus = fast_cfg.vcpus = static_cast<double>(spec.logical_cores) / n;
        row.push_back(Cell(RunPair(vanilla_cfg, fast_cfg, app, n)));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }

  std::printf("\nWith larger allocations FastIOV's completion time stays flat or\n"
              "drops (faster execution), while vanilla pays more zeroing (§6.6).\n");
  return 0;
}
