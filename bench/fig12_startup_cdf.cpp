// Figure 12: startup-time distribution (CDF) at concurrency 200 for the
// main baselines, plus tail statistics.
#include "bench/bench_common.h"

using namespace fastiov;

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Figure 12 — Startup time distribution (concurrency 200)",
              "Empirical CDFs; the paper's headline is the 75.4% reduction of\n"
              "the 99th percentile by FastIOV.",
              env.jobs);

  const ExperimentOptions options = DefaultOptions();
  const std::vector<StackConfig> configs = {StackConfig::NoNetwork(), StackConfig::Vanilla(),
                                            StackConfig::FastIov(), StackConfig::PreZero(1.0)};
  const std::vector<ExperimentResult> results =
      RunSweep(CrossProduct(configs, options, {options.seed}), env.jobs);

  TextTable table({"stack", "p50 (s)", "p90 (s)", "p99 (s)", "max (s)"});
  for (const auto& r : results) {
    table.AddRow({r.config.name, FormatSeconds(r.startup.Percentile(50)),
                  FormatSeconds(r.startup.Percentile(90)),
                  FormatSeconds(r.startup.Percentile(99)), FormatSeconds(r.startup.Max())});
  }
  table.Print(std::cout);

  // CDF series (16 points each), printable as curves.
  std::printf("\nCDF points (value_s:fraction):\n");
  for (const auto& r : results) {
    std::printf("%-10s", r.config.name.c_str());
    for (const CdfPoint& p : ComputeCdf(r.startup, 16)) {
      std::printf(" %.2f:%.2f", p.value, p.fraction);
    }
    std::printf("\n");
  }

  const double vanilla_p99 = results[1].startup.Percentile(99);
  const double fast_p99 = results[2].startup.Percentile(99);
  const double nonet_p99 = results[0].startup.Percentile(99);
  std::printf("\nheadline numbers:\n");
  std::printf("  p99 reduction (FastIOV vs Vanilla): %s  (paper: 75.4%%)\n",
              FormatPercent(1.0 - fast_p99 / vanilla_p99).c_str());
  std::printf("  FastIOV p99 above No-Net:           %s  (paper: 11.6%%)\n",
              FormatPercent(fast_p99 / nonet_p99 - 1.0).c_str());
  std::printf("  Vanilla p99 above No-Net:           %s  (paper: 354.5%%)\n",
              FormatPercent(vanilla_p99 / nonet_p99 - 1.0).c_str());
  return 0;
}
